//! Reproduction-harness root crate: re-exports the workspace so the
//! examples and the cross-crate integration tests in `tests/` have one
//! import surface.

pub use perfvec;
pub use perfvec_baselines;
pub use perfvec_isa;
pub use perfvec_ml;
pub use perfvec_serve;
pub use perfvec_sim;
pub use perfvec_trace;
pub use perfvec_workloads;
