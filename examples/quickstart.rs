//! Quickstart: the PerfVec pipeline end to end on a small budget.
//!
//! 1. Build workloads in the bundled ISA and collect their traces.
//! 2. Simulate them on a population of machines for incremental-latency
//!    targets (the gem5 substitute).
//! 3. Train the foundation model jointly with the microarchitecture
//!    representation table.
//! 4. Predict an *unseen* program's execution time on every machine with
//!    one representation and `k` dot products.
//!
//! Run with: `cargo run --release --example quickstart`

use perfvec::compose::program_representation;
use perfvec::data::build_program_data;
use perfvec::foundation::ArchSpec;
use perfvec::predict::predict_total_tenths;
use perfvec::refit::refit_march_table;
use perfvec::trainer::{train_foundation, TrainConfig};
use perfvec_ml::schedule::StepDecay;
use perfvec_sim::sample::predefined_configs;
use perfvec_trace::features::{extract_features, FeatureMask};
use perfvec_workloads::{by_name, training_suite};

fn main() {
    // --- 1 + 2: datasets for three training programs on 7 machines ---
    let configs = predefined_configs();
    println!(
        "simulating training programs on {} machines...",
        configs.len()
    );
    let data: Vec<_> = training_suite()
        .iter()
        .take(3)
        .map(|w| build_program_data(&w.name, &w.trace(6_000), &configs, FeatureMask::Full))
        .collect();

    // --- 3: train a small foundation model ---
    let cfg = TrainConfig {
        arch: ArchSpec::default_lstm(16),
        context: 8,
        epochs: 10,
        windows_per_epoch: 2_000,
        schedule: StepDecay {
            initial: 5e-3,
            gamma: 0.5,
            every: 4,
        },
        ..TrainConfig::default()
    };
    println!(
        "training {}...",
        cfg.arch.build(cfg.context + 1, 0).describe()
    );
    let mut trained = train_foundation(&data, &cfg);
    // Closed-form refit of the machine table against the frozen
    // foundation — the converged fixed point the short SGD schedule
    // above only approaches (same recipe as the figure harnesses).
    trained.march_table = refit_march_table(&trained.foundation, &data, 3e-3);
    println!(
        "trained in {:.1}s (best epoch {})",
        trained.report.wall_seconds, trained.report.best_epoch
    );

    // --- 4: one representation for an unseen program, then k dots ---
    let unseen = by_name("505.mcf-like").expect("workload exists");
    let trace = unseen.trace(6_000);
    let feats = extract_features(&trace, FeatureMask::Full);
    let rp = program_representation(&trained.foundation, &feats);
    println!(
        "\n{} on every machine (predicted vs simulated):",
        unseen.name
    );
    for (j, cfg) in configs.iter().enumerate() {
        let pred = predict_total_tenths(
            &rp,
            trained.march_table.rep(j),
            trained.foundation.target_scale,
        );
        let truth = perfvec_sim::simulate(&trace, cfg).total_tenths;
        println!(
            "  {:<16} predicted {:>9.2} us   simulated {:>9.2} us   error {:>5.1}%",
            cfg.name,
            pred * 1e-4,
            truth * 1e-4,
            (pred - truth).abs() / truth * 100.0
        );
    }
}
