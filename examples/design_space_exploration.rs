//! Design-space exploration with a pre-trained foundation model
//! (the Section VI-A workflow on a small budget).
//!
//! Picks L1/L2 cache sizes for a Cortex-A7-like core by (1) simulating a
//! few sampled cache points to tune a configuration-to-representation
//! MLP, then (2) sweeping the whole grid with dot products.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use perfvec::compose::program_representation;
use perfvec::data::build_program_data;
use perfvec::dse::{cache_param_vector, objective, with_cache_sizes, CacheGrid};
use perfvec::finetune::cache_representations;
use perfvec::foundation::ArchSpec;
use perfvec::march_model::{train_march_model, MarchModelConfig};
use perfvec::trainer::{train_foundation, TrainConfig};
use perfvec_ml::schedule::StepDecay;
use perfvec_sim::sample::predefined_configs;
use perfvec_sim::simulate;
use perfvec_trace::features::{extract_features, FeatureMask};
use perfvec_workloads::{by_name, training_suite};

fn main() {
    // A pre-trained foundation model (small budget for the example).
    let base_cfgs = predefined_configs();
    let data: Vec<_> = training_suite()
        .iter()
        .take(3)
        .map(|w| build_program_data(&w.name, &w.trace(5_000), &base_cfgs, FeatureMask::Full))
        .collect();
    let trained = train_foundation(
        &data,
        &TrainConfig {
            arch: ArchSpec::default_lstm(16),
            context: 8,
            epochs: 8,
            windows_per_epoch: 1_500,
            schedule: StepDecay {
                initial: 5e-3,
                gamma: 0.5,
                every: 4,
            },
            ..TrainConfig::default()
        },
    );
    println!("foundation ready: {}", trained.foundation.describe());

    // DSE over a 4x4 cache grid for one target program.
    let a7 = base_cfgs
        .iter()
        .find(|c| c.name == "cortex-a7-like")
        .unwrap();
    let grid = CacheGrid {
        l1_kb: vec![8, 16, 32, 64],
        l2_kb: vec![256, 512, 1024, 2048],
    };
    let points = grid.points();

    // Tuning data: 6 sampled points x 2 programs.
    let sampled: Vec<(u64, u64)> = points.iter().step_by(3).cloned().collect();
    let tune_cfgs: Vec<_> = sampled
        .iter()
        .map(|&(a, b)| with_cache_sizes(a7, a, b))
        .collect();
    let tune_params: Vec<Vec<f32>> = sampled
        .iter()
        .map(|&(a, b)| cache_param_vector(a, b))
        .collect();
    let tuning: Vec<_> = training_suite()
        .iter()
        .take(2)
        .map(|w| build_program_data(&w.name, &w.trace(5_000), &tune_cfgs, FeatureMask::Full))
        .collect();
    let cached = cache_representations(&trained.foundation, &tuning, 2_000, 7);
    let (march_model, loss) = train_march_model(
        &cached,
        &tune_params,
        trained.foundation.dim(),
        trained.foundation.target_scale,
        &MarchModelConfig::default(),
    );
    println!("cache-size representation model trained (loss {loss:.4})");

    // Sweep the grid for the target program.
    let target = by_name("508.namd-like").unwrap();
    let trace = target.trace(5_000);
    let feats = extract_features(&trace, FeatureMask::Full);
    let rp = program_representation(&trained.foundation, &feats);
    println!("\n{}: objective (lower is better)", target.name);
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "L1/L2", "predicted", "simulated", "pred. rank"
    );
    let mut scored: Vec<(usize, f64, f64)> = points
        .iter()
        .enumerate()
        .map(|(i, &(l1, l2))| {
            let pred_t = march_model.predict_total_tenths(&rp, &cache_param_vector(l1, l2));
            let sim_t = simulate(&trace, &with_cache_sizes(a7, l1, l2)).total_tenths;
            (
                i,
                objective(l1, l2, pred_t.max(0.0)),
                objective(l1, l2, sim_t),
            )
        })
        .collect();
    let by_pred = {
        let mut v = scored.clone();
        v.sort_by(|a, b| a.1.total_cmp(&b.1));
        v
    };
    scored.sort_by(|a, b| a.2.total_cmp(&b.2));
    for (i, pred_o, sim_o) in scored.iter().take(8) {
        let (l1, l2) = points[*i];
        let rank = by_pred.iter().position(|(j, _, _)| j == i).unwrap();
        println!(
            "{:>6}/{:<5} {:>12.2} {:>12.2} {:>12}",
            l1,
            l2,
            pred_o,
            sim_o,
            rank + 1
        );
    }
    let best_pred = points[by_pred[0].0];
    let best_true = points[scored[0].0];
    println!(
        "\nPerfVec selects L1={}kB L2={}kB; the true optimum is L1={}kB L2={}kB",
        best_pred.0, best_pred.1, best_true.0, best_true.1
    );
}
