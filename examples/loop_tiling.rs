//! Loop-tiling analysis with a pre-trained foundation model (the
//! Section VI-B application on a small budget): rank matmul tile sizes
//! without per-variant training.
//!
//! Run with: `cargo run --release --example loop_tiling`

use perfvec::analysis::{best_variants, sweep_variants};
use perfvec::data::build_program_data;
use perfvec::foundation::ArchSpec;
use perfvec::trainer::{train_foundation, TrainConfig};
use perfvec_isa::Emulator;
use perfvec_ml::schedule::StepDecay;
use perfvec_sim::sample::predefined_configs;
use perfvec_trace::features::FeatureMask;
use perfvec_workloads::matmul::matmul_tiled;
use perfvec_workloads::training_suite;

fn main() {
    let configs = predefined_configs();
    let data: Vec<_> = training_suite()
        .iter()
        .take(3)
        .map(|w| build_program_data(&w.name, &w.trace(5_000), &configs, FeatureMask::Full))
        .collect();
    let trained = train_foundation(
        &data,
        &TrainConfig {
            arch: ArchSpec::default_lstm(16),
            context: 8,
            epochs: 8,
            windows_per_epoch: 1_500,
            schedule: StepDecay {
                initial: 5e-3,
                gamma: 0.5,
                every: 4,
            },
            ..TrainConfig::default()
        },
    );
    let a7_idx = configs
        .iter()
        .position(|c| c.name == "cortex-a7-like")
        .unwrap();
    let a7_rep = trained.march_table.rep(a7_idx).to_vec();

    // Tile-size variants of a 32x32 matmul.
    let n = 32;
    let variants: Vec<(String, perfvec_isa::Trace)> = [1usize, 2, 4, 8, 16, 32]
        .iter()
        .map(|&t| {
            let prog = matmul_tiled(n, t);
            let trace = Emulator::new(&prog).run(5_000_000).expect("matmul runs");
            (format!("tile {t}"), trace)
        })
        .collect();

    let points = sweep_variants(&trained.foundation, &a7_rep, &variants, &configs[a7_idx]);
    println!("{n}x{n} matmul on cortex-a7-like:");
    for p in &points {
        println!(
            "  {:<8} simulated {:>8.1} us   perfvec {:>8.1} us",
            p.label,
            p.simulated_tenths * 1e-4,
            p.predicted_tenths * 1e-4
        );
    }
    let (sim_best, pred_best) = best_variants(&points);
    println!(
        "\nbest tile by simulation: {}; best tile by PerfVec: {}",
        points[sim_best].label, points[pred_best].label
    );
}
