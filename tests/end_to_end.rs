//! Cross-crate integration tests: the full PerfVec pipeline from ISA
//! emulation through training to prediction.

use perfvec::compose::program_representation;
use perfvec::data::build_program_data;
use perfvec::foundation::ArchSpec;
use perfvec::predict::predict_total_tenths;
use perfvec::refit::refit_march_table;
use perfvec::trainer::{train_foundation, TrainConfig};
use perfvec_ml::schedule::StepDecay;
use perfvec_sim::sample::predefined_configs;
use perfvec_sim::simulate;
use perfvec_trace::features::{extract_features, FeatureMask};
use perfvec_trace::ProgramData;
use perfvec_workloads::{by_name, training_suite};

fn small_dataset(n_programs: usize, trace_len: u64) -> Vec<ProgramData> {
    let configs = predefined_configs();
    training_suite()
        .iter()
        .take(n_programs)
        .map(|w| build_program_data(&w.name, &w.trace(trace_len), &configs, FeatureMask::Full))
        .collect()
}

fn small_cfg() -> TrainConfig {
    TrainConfig {
        arch: ArchSpec::default_lstm(16),
        context: 8,
        epochs: 12,
        windows_per_epoch: 2_000,
        schedule: StepDecay {
            initial: 8e-3,
            gamma: 0.5,
            every: 5,
        },
        ..TrainConfig::default()
    }
}

#[test]
fn trained_model_predicts_seen_programs_on_seen_machines() {
    let data = small_dataset(3, 4_000);
    let mut trained = train_foundation(&data, &small_cfg());
    trained.march_table = refit_march_table(&trained.foundation, &data, 3e-3);
    let mut errs = Vec::new();
    for d in &data {
        let rp = program_representation(&trained.foundation, &d.features);
        for j in 0..d.num_marches() {
            let pred = predict_total_tenths(
                &rp,
                trained.march_table.rep(j),
                trained.foundation.target_scale,
            );
            let truth = d.total_time(j);
            errs.push((pred - truth).abs() / truth);
        }
    }
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    assert!(mean < 0.25, "seen-program mean error {mean:.3}");
}

#[test]
fn program_representation_transfers_to_an_unseen_program() {
    let data = small_dataset(4, 4_000);
    let mut trained = train_foundation(&data, &small_cfg());
    trained.march_table = refit_march_table(&trained.foundation, &data, 3e-3);

    // A program never seen in training.
    let unseen = by_name("523.xalancbmk-like").unwrap();
    let trace = unseen.trace(4_000);
    let feats = extract_features(&trace, FeatureMask::Full);
    let rp = program_representation(&trained.foundation, &feats);
    let configs = predefined_configs();
    let mut errs = Vec::new();
    for (j, c) in configs.iter().enumerate() {
        let pred = predict_total_tenths(
            &rp,
            trained.march_table.rep(j),
            trained.foundation.target_scale,
        );
        let truth = simulate(&trace, c).total_tenths;
        errs.push((pred - truth).abs() / truth);
    }
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    assert!(
        mean < 0.6,
        "unseen-program mean error {mean:.3} (small-budget bound)"
    );
}

#[test]
fn compositionality_prediction_is_sum_of_per_instruction_predictions() {
    // The paper's central theorem, verified end to end: predicting the
    // whole program with R_p . M equals summing per-instruction
    // predictions R_i . M.
    let data = small_dataset(1, 1_500);
    let trained = train_foundation(&data, &{
        let mut c = small_cfg();
        c.epochs = 2;
        c.windows_per_epoch = 300;
        c
    });
    let d = &data[0];
    let rp = program_representation(&trained.foundation, &d.features);
    for j in [0usize, 3, 6] {
        let whole = predict_total_tenths(
            &rp,
            trained.march_table.rep(j),
            trained.foundation.target_scale,
        );
        let mut summed = 0.0f64;
        for i in 0..d.len() {
            let ri = trained.foundation.repr_at(&d.features, i);
            summed += predict_total_tenths(
                &ri,
                trained.march_table.rep(j),
                trained.foundation.target_scale,
            );
        }
        let denom = whole.abs().max(1.0);
        assert!(
            (whole - summed).abs() / denom < 1e-3,
            "march {j}: whole {whole} vs summed {summed}"
        );
    }
}

#[test]
fn march_representations_are_program_independent() {
    // The same machine representation must serve different programs: the
    // error on a second seen program should be comparable, not require a
    // new table.
    let data = small_dataset(2, 3_000);
    let mut trained = train_foundation(&data, &small_cfg());
    trained.march_table = refit_march_table(&trained.foundation, &data, 3e-3);
    for d in &data {
        let rp = program_representation(&trained.foundation, &d.features);
        let j = 0;
        let pred = predict_total_tenths(
            &rp,
            trained.march_table.rep(j),
            trained.foundation.target_scale,
        );
        let truth = d.total_time(j);
        assert!(
            (pred - truth).abs() / truth < 0.5,
            "{}: error {:.3}",
            d.name,
            (pred - truth).abs() / truth
        );
    }
}
