//! Cross-crate property-based tests (proptest) on the reproduction's
//! core invariants.

use perfvec::checkpoint;
use perfvec::compose::{instruction_representations, program_representation};
use perfvec::foundation::{ArchKind, ArchSpec, Foundation};
use perfvec::march_table::MarchTable;
use perfvec::predict::predict_total_tenths;
use perfvec_isa::{Emulator, ProgramBuilder, Reg};
use perfvec_sim::sample::{predefined_configs, sample_configs};
use perfvec_sim::simulate;
use perfvec_trace::binio;
use perfvec_trace::features::{
    extract_features, FeatureMask, Matrix, BRANCH_FEATURES, MEM_FEATURES, NUM_FEATURES,
};
use perfvec_trace::stack_distance::{naive_stack_distances, StackDistance};
use perfvec_trace::ProgramData;
use proptest::prelude::*;

/// Build a random-but-valid program from a compact genome: a list of
/// operation choices executed inside a bounded loop.
fn genome_program(ops: &[u8], iters: i64) -> perfvec_isa::Program {
    let mut b = ProgramBuilder::new();
    let buf = b.alloc_zeroed(4096);
    let (base, i, t0, t1) = (Reg::x(1), Reg::x(2), Reg::x(3), Reg::x(4));
    let f0 = Reg::f(0);
    b.li(base, buf as i64);
    b.li(i, 0);
    b.fli(f0, 1.5);
    let top = b.label();
    for &op in ops {
        match op % 8 {
            0 => {
                b.addi(t0, t0, 3);
            }
            1 => {
                b.muli(t0, t0, 7);
            }
            2 => {
                b.andi(t1, i, 511);
                b.ld_idx(t0, base, t1, 8, 0, 8);
            }
            3 => {
                b.andi(t1, i, 511);
                b.st_idx(t0, base, t1, 8, 0, 8);
            }
            4 => {
                b.fadd(f0, f0, f0);
            }
            5 => {
                b.fmul(f0, f0, f0);
            }
            6 => {
                let skip = b.fwd_label();
                b.andi(t1, t0, 1);
                b.beq_imm(t1, 0, skip);
                b.xori(t0, t0, 0x5a);
                b.bind(skip);
            }
            _ => {
                b.nop();
            }
        }
    }
    b.addi(i, i, 1);
    b.blt_imm(i, iters, top);
    b.halt();
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Incremental latencies must sum to total time on every machine,
    /// for arbitrary programs — the integrability property PerfVec's
    /// compositionality proof rests on.
    #[test]
    fn incremental_latencies_always_telescope(
        ops in prop::collection::vec(0u8..8, 1..12),
        iters in 5i64..40,
        cfg_idx in 0usize..7,
    ) {
        let p = genome_program(&ops, iters);
        let trace = Emulator::new(&p).run(100_000).unwrap();
        let cfg = &predefined_configs()[cfg_idx];
        let r = simulate(&trace, cfg);
        let sum = r.sum_incremental();
        prop_assert!((sum - r.total_tenths).abs() <= 1e-5 * r.total_tenths.max(1.0),
            "sum {sum} vs total {}", r.total_tenths);
        prop_assert!(r.inc_latency_tenths.iter().all(|&t| t >= 0.0));
    }

    /// The dynamic trace is microarchitecture-independent: features are
    /// identical regardless of which machine later simulates it.
    #[test]
    fn features_are_march_independent(
        ops in prop::collection::vec(0u8..8, 1..10),
        iters in 5i64..30,
    ) {
        let p = genome_program(&ops, iters);
        let t1 = Emulator::new(&p).run(50_000).unwrap();
        let t2 = Emulator::new(&p).run(50_000).unwrap();
        let f1 = extract_features(&t1, FeatureMask::Full);
        let f2 = extract_features(&t2, FeatureMask::Full);
        prop_assert_eq!(f1.data, f2.data);
        prop_assert_eq!(f1.cols, NUM_FEATURES);
    }

    /// Fenwick-tree stack distances equal the quadratic reference on
    /// arbitrary address streams.
    #[test]
    fn stack_distance_matches_reference(
        addrs in prop::collection::vec(0u64..64, 1..300),
    ) {
        let mut sd = StackDistance::new();
        let fast: Vec<u64> = addrs.iter().map(|&a| sd.access(a)).collect();
        prop_assert_eq!(fast, naive_stack_distances(&addrs));
    }

    /// Faster clocks never make a program slower in wall time (same
    /// machine otherwise) — a sanity invariant of the timing model.
    #[test]
    fn frequency_scaling_is_monotone(
        ops in prop::collection::vec(0u8..8, 1..10),
        iters in 5i64..30,
    ) {
        let p = genome_program(&ops, iters);
        let trace = Emulator::new(&p).run(50_000).unwrap();
        let mut slow = predefined_configs().remove(1);
        slow.freq_ghz = 1.0;
        let mut fast = slow.clone();
        fast.freq_ghz = 4.0;
        let ts = simulate(&trace, &slow).total_tenths;
        let tf = simulate(&trace, &fast).total_tenths;
        prop_assert!(tf <= ts * 1.001, "fast {tf} vs slow {ts}");
    }

    /// Randomly sampled machines always produce valid simulations.
    #[test]
    fn sampled_machines_simulate_any_program(
        ops in prop::collection::vec(0u8..8, 1..8),
        seed in 0u64..50,
    ) {
        let p = genome_program(&ops, 20);
        let trace = Emulator::new(&p).run(20_000).unwrap();
        for cfg in sample_configs(seed, 2, 1) {
            let r = simulate(&trace, &cfg);
            prop_assert!(r.total_tenths > 0.0);
            prop_assert_eq!(r.len(), trace.len());
        }
    }

    /// Linearity of the bias-free predictor — the paper's central
    /// theorem as an algebraic identity: predicting from the summed
    /// program representation equals summing per-instruction
    /// predictions, `(sum_i R_i) . M == sum_i (R_i . M)`.
    #[test]
    fn predictor_is_linear_in_instruction_representations(
        vals in prop::collection::vec(0.0f32..1.0, 1..40),
        mseed in 0u64..1000,
        scale_q in 1u32..20,
    ) {
        let n = vals.len();
        let mut feats = Matrix::zeros(n, NUM_FEATURES);
        for (i, &v) in vals.iter().enumerate() {
            feats.row_mut(i)[i % 11] = 1.0;
            feats.row_mut(i)[45] = v;
        }
        let target_scale = scale_q as f32 * 0.1;
        let f = Foundation::new(ArchSpec::default_lstm(8), 2, target_scale, 7);
        let table = MarchTable::new(1, 8, mseed);
        let m = table.rep(0);

        let rp = program_representation(&f, &feats);
        let whole = predict_total_tenths(&rp, m, f.target_scale);
        let per = instruction_representations(&f, &feats, 0..n);
        let mut summed = 0.0f64;
        for i in 0..n {
            summed += predict_total_tenths(per.row(i), m, f.target_scale);
        }
        let denom = whole.abs().max(1.0);
        prop_assert!(
            (whole - summed).abs() / denom < 1e-3,
            "whole {whole} vs summed {summed}"
        );
    }

    /// Checkpoint round-trip: any foundation (every architecture family,
    /// any small shape), with or without a table, restores to a model
    /// with identical parameters and identical representations.
    #[test]
    fn checkpoint_roundtrip_is_exact(
        kind_idx in 0usize..6,
        layers in 1usize..3,
        context in 0usize..5,
        with_table in 0u8..2,
        seed in 0u64..500,
    ) {
        let kind = [
            ArchKind::Linear,
            ArchKind::Mlp,
            ArchKind::Lstm,
            ArchKind::BiLstm,
            ArchKind::Gru,
            ArchKind::Transformer,
        ][kind_idx];
        let spec = ArchSpec { kind, layers, dim: 8 };
        let f = Foundation::new(spec, context, 0.5, seed);
        let table = MarchTable::new(3, 8, seed ^ 0xbeef);
        let table_opt = if with_table == 1 { Some(&table) } else { None };

        let bytes = checkpoint::encode(&f, spec, table_opt);
        let (f2, spec2, table2) = checkpoint::decode(&bytes).unwrap();
        prop_assert_eq!(spec2, spec);
        prop_assert_eq!(f2.context, f.context);
        prop_assert_eq!(f2.model.get_params(), f.model.get_params());
        prop_assert_eq!(table2.is_some(), with_table == 1);
        if let Some(t2) = table2 {
            prop_assert_eq!(t2.reps, table.reps);
        }
        let mut feats = Matrix::zeros(8, NUM_FEATURES);
        for i in 0..8 {
            feats.row_mut(i)[(seed as usize + i) % NUM_FEATURES] = 0.6;
        }
        prop_assert_eq!(f.repr_at(&feats, 7), f2.repr_at(&feats, 7));
    }

    /// Feature masking is shape-preserving and surgical: `NoMemBranch`
    /// zeroes exactly the memory/branch blocks and leaves every other
    /// column bit-identical to the full extraction.
    #[test]
    fn feature_mask_preserves_shape_and_zeroes_only_masked_columns(
        ops in prop::collection::vec(0u8..8, 1..10),
        iters in 5i64..30,
    ) {
        let p = genome_program(&ops, iters);
        let trace = Emulator::new(&p).run(50_000).unwrap();
        let full = extract_features(&trace, FeatureMask::Full);
        let masked = extract_features(&trace, FeatureMask::NoMemBranch);
        prop_assert_eq!(masked.rows, full.rows);
        prop_assert_eq!(masked.cols, full.cols);
        prop_assert_eq!(masked.cols, NUM_FEATURES);
        for i in 0..full.rows {
            let (fr, mr) = (full.row(i), masked.row(i));
            for c in 0..NUM_FEATURES {
                if MEM_FEATURES.contains(&c) || BRANCH_FEATURES.contains(&c) {
                    prop_assert!(mr[c] == 0.0, "row {i} col {c}: masked value {}", mr[c]);
                } else {
                    prop_assert!(fr[c] == mr[c], "row {i} col {c}: {} vs {}", fr[c], mr[c]);
                }
            }
        }
    }

    /// Dataset binary round-trip is lossless for arbitrary shapes and
    /// payloads, including empty matrices and non-ASCII names.
    #[test]
    fn binio_roundtrip_is_lossless(
        rows in 0usize..20,
        k in 0usize..6,
        fill in 0.0f32..10.0,
        name_len in 0usize..12,
    ) {
        let mut features = Matrix::zeros(rows, NUM_FEATURES);
        let mut targets = Matrix::zeros(rows, k);
        for i in 0..rows {
            features.row_mut(i)[i % NUM_FEATURES] = fill + i as f32;
            if k > 0 {
                targets.row_mut(i)[i % k] = -fill * i as f32;
            }
        }
        let name: String = "π505.mcf".chars().cycle().take(name_len).collect();
        let d = ProgramData { name, features, targets };
        let decoded = binio::decode_program_data(&binio::encode_program_data(&d)).unwrap();
        prop_assert_eq!(decoded.name, d.name);
        prop_assert_eq!(decoded.features, d.features);
        prop_assert_eq!(decoded.targets, d.targets);
    }
}
