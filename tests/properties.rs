//! Cross-crate property-based tests (proptest) on the reproduction's
//! core invariants.

use perfvec_isa::{Emulator, ProgramBuilder, Reg};
use perfvec_sim::sample::{predefined_configs, sample_configs};
use perfvec_sim::simulate;
use perfvec_trace::features::{extract_features, FeatureMask, NUM_FEATURES};
use perfvec_trace::stack_distance::{naive_stack_distances, StackDistance};
use proptest::prelude::*;

/// Build a random-but-valid program from a compact genome: a list of
/// operation choices executed inside a bounded loop.
fn genome_program(ops: &[u8], iters: i64) -> perfvec_isa::Program {
    let mut b = ProgramBuilder::new();
    let buf = b.alloc_zeroed(4096);
    let (base, i, t0, t1) = (Reg::x(1), Reg::x(2), Reg::x(3), Reg::x(4));
    let f0 = Reg::f(0);
    b.li(base, buf as i64);
    b.li(i, 0);
    b.fli(f0, 1.5);
    let top = b.label();
    for &op in ops {
        match op % 8 {
            0 => {
                b.addi(t0, t0, 3);
            }
            1 => {
                b.muli(t0, t0, 7);
            }
            2 => {
                b.andi(t1, i, 511);
                b.ld_idx(t0, base, t1, 8, 0, 8);
            }
            3 => {
                b.andi(t1, i, 511);
                b.st_idx(t0, base, t1, 8, 0, 8);
            }
            4 => {
                b.fadd(f0, f0, f0);
            }
            5 => {
                b.fmul(f0, f0, f0);
            }
            6 => {
                let skip = b.fwd_label();
                b.andi(t1, t0, 1);
                b.beq_imm(t1, 0, skip);
                b.xori(t0, t0, 0x5a);
                b.bind(skip);
            }
            _ => {
                b.nop();
            }
        }
    }
    b.addi(i, i, 1);
    b.blt_imm(i, iters, top);
    b.halt();
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Incremental latencies must sum to total time on every machine,
    /// for arbitrary programs — the integrability property PerfVec's
    /// compositionality proof rests on.
    #[test]
    fn incremental_latencies_always_telescope(
        ops in prop::collection::vec(0u8..8, 1..12),
        iters in 5i64..40,
        cfg_idx in 0usize..7,
    ) {
        let p = genome_program(&ops, iters);
        let trace = Emulator::new(&p).run(100_000).unwrap();
        let cfg = &predefined_configs()[cfg_idx];
        let r = simulate(&trace, cfg);
        let sum = r.sum_incremental();
        prop_assert!((sum - r.total_tenths).abs() <= 1e-5 * r.total_tenths.max(1.0),
            "sum {sum} vs total {}", r.total_tenths);
        prop_assert!(r.inc_latency_tenths.iter().all(|&t| t >= 0.0));
    }

    /// The dynamic trace is microarchitecture-independent: features are
    /// identical regardless of which machine later simulates it.
    #[test]
    fn features_are_march_independent(
        ops in prop::collection::vec(0u8..8, 1..10),
        iters in 5i64..30,
    ) {
        let p = genome_program(&ops, iters);
        let t1 = Emulator::new(&p).run(50_000).unwrap();
        let t2 = Emulator::new(&p).run(50_000).unwrap();
        let f1 = extract_features(&t1, FeatureMask::Full);
        let f2 = extract_features(&t2, FeatureMask::Full);
        prop_assert_eq!(f1.data, f2.data);
        prop_assert_eq!(f1.cols, NUM_FEATURES);
    }

    /// Fenwick-tree stack distances equal the quadratic reference on
    /// arbitrary address streams.
    #[test]
    fn stack_distance_matches_reference(
        addrs in prop::collection::vec(0u64..64, 1..300),
    ) {
        let mut sd = StackDistance::new();
        let fast: Vec<u64> = addrs.iter().map(|&a| sd.access(a)).collect();
        prop_assert_eq!(fast, naive_stack_distances(&addrs));
    }

    /// Faster clocks never make a program slower in wall time (same
    /// machine otherwise) — a sanity invariant of the timing model.
    #[test]
    fn frequency_scaling_is_monotone(
        ops in prop::collection::vec(0u8..8, 1..10),
        iters in 5i64..30,
    ) {
        let p = genome_program(&ops, iters);
        let trace = Emulator::new(&p).run(50_000).unwrap();
        let mut slow = predefined_configs().remove(1);
        slow.freq_ghz = 1.0;
        let mut fast = slow.clone();
        fast.freq_ghz = 4.0;
        let ts = simulate(&trace, &slow).total_tenths;
        let tf = simulate(&trace, &fast).total_tenths;
        prop_assert!(tf <= ts * 1.001, "fast {tf} vs slow {ts}");
    }

    /// Randomly sampled machines always produce valid simulations.
    #[test]
    fn sampled_machines_simulate_any_program(
        ops in prop::collection::vec(0u8..8, 1..8),
        seed in 0u64..50,
    ) {
        let p = genome_program(&ops, 20);
        let trace = Emulator::new(&p).run(20_000).unwrap();
        for cfg in sample_configs(seed, 2, 1) {
            let r = simulate(&trace, &cfg);
            prop_assert!(r.total_tenths > 0.0);
            prop_assert_eq!(r.len(), trace.len());
        }
    }
}
