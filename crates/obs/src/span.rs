//! Lightweight span timers for phase profiling.

use std::time::Instant;

use crate::Histogram;

/// A started span: a name plus a wall-clock start time.
///
/// Spans are plain values (no global collector): finish one into a
/// number of seconds for a bench report phase, or record its duration
/// into a [`Histogram`] in microseconds. Either way a `debug`-level
/// log line is emitted so `PERFVEC_LOG=debug` traces phase timing.
#[derive(Debug)]
pub struct Span {
    name: String,
    start: Instant,
}

impl Span {
    /// Start a span now.
    pub fn start(name: impl Into<String>) -> Self {
        Self { name: name.into(), start: Instant::now() }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Seconds elapsed so far without consuming the span.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Microseconds elapsed so far without consuming the span.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Finish the span, log it at `debug`, and return elapsed seconds.
    pub fn finish(self) -> f64 {
        let secs = self.elapsed_secs();
        crate::debug!("obs", "span {} finished in {:.6}s", self.name, secs);
        secs
    }

    /// Finish the span into a histogram (microseconds); returns the
    /// recorded duration.
    pub fn record(self, hist: &Histogram) -> u64 {
        let us = self.elapsed_us();
        hist.record(us);
        crate::debug!("obs", "span {} finished in {}us", self.name, us);
        us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_measures_time() {
        let sp = Span::start("unit");
        assert_eq!(sp.name(), "unit");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let secs = sp.finish();
        assert!(secs >= 0.002, "span too short: {secs}");
    }

    #[test]
    fn span_records_into_histogram() {
        let h = Histogram::new();
        let sp = Span::start("hist");
        let us = sp.record(&h);
        assert_eq!(h.count(), 1);
        assert!(h.max() >= us.min(h.max()));
    }
}
