//! Named metric families with labels, rendered as Prometheus text.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::{Counter, Gauge, Histogram};

/// Kind of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Series {
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<Series>,
}

/// A set of metric families. Registration takes a lock; the returned
/// `Arc` instruments record lock-free, so hot paths never touch the
/// registry after setup.
///
/// `counter`/`gauge`/`histogram` are get-or-create on
/// `(name, labels)`: asking again with the same identity returns the
/// same instrument. Reusing a name with a different kind panics —
/// that is a programming error, not a runtime condition.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_create(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        assert!(valid_metric_name(name), "invalid metric name: {name}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name: {k}");
        }
        let owned: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        let mut fams = self.families.lock().expect("obs registry poisoned");
        let fam = match fams.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric {name} registered as {} and {}",
                    f.kind.as_str(),
                    kind.as_str()
                );
                f
            }
            None => {
                fams.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                fams.last_mut().expect("just pushed")
            }
        };
        if let Some(s) = fam.series.iter().find(|s| s.labels == owned) {
            return s.instrument.clone();
        }
        let instrument = make();
        fam.series.push(Series { labels: owned, instrument: instrument.clone() });
        instrument
    }

    /// Get or create a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_create(name, help, MetricKind::Counter, labels, || {
            Instrument::Counter(Arc::new(Counter::new()))
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked by get_or_create"),
        }
    }

    /// Get or create a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_create(name, help, MetricKind::Gauge, labels, || {
            Instrument::Gauge(Arc::new(Gauge::new()))
        }) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked by get_or_create"),
        }
    }

    /// Get or create a histogram series.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.get_or_create(name, help, MetricKind::Histogram, labels, || {
            Instrument::Histogram(Arc::new(Histogram::new()))
        }) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked by get_or_create"),
        }
    }

    /// Render every family in Prometheus text exposition format
    /// (version 0.0.4). Families and series appear in registration
    /// order; histogram buckets are cumulative with a final `+Inf`.
    pub fn render(&self) -> String {
        let fams = self.families.lock().expect("obs registry poisoned");
        let mut out = String::new();
        for fam in fams.iter() {
            let _ = writeln!(out, "# HELP {} {}", fam.name, fam.help);
            let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.as_str());
            for s in &fam.series {
                match &s.instrument {
                    Instrument::Counter(c) => {
                        let _ =
                            writeln!(out, "{}{} {}", fam.name, render_labels(&s.labels, None), c.get());
                    }
                    Instrument::Gauge(g) => {
                        let _ =
                            writeln!(out, "{}{} {}", fam.name, render_labels(&s.labels, None), g.get());
                    }
                    Instrument::Histogram(h) => {
                        // Snapshot buckets once so cumulative counts,
                        // _count, and _sum agree within this render.
                        let mut snap: Vec<(u64, u64)> = Vec::new();
                        h.for_each_nonzero(|_, hi, c| snap.push((hi, c)));
                        let mut cum = 0u64;
                        for (hi, c) in &snap {
                            cum += c;
                            let le = format!("{hi}");
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {}",
                                fam.name,
                                render_labels(&s.labels, Some(("le", &le))),
                                cum
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            fam.name,
                            render_labels(&s.labels, Some(("le", "+Inf"))),
                            cum
                        );
                        let _ = writeln!(
                            out,
                            "{}_sum{} {}",
                            fam.name,
                            render_labels(&s.labels, None),
                            h.sum()
                        );
                        let _ = writeln!(
                            out,
                            "{}_count{} {}",
                            fam.name,
                            render_labels(&s.labels, None),
                            cum
                        );
                    }
                }
            }
        }
        out
    }

    /// Counter totals as `name{labels} -> value`, for tests and stats.
    pub fn counter_values(&self, name: &str) -> BTreeMap<String, u64> {
        let fams = self.families.lock().expect("obs registry poisoned");
        let mut out = BTreeMap::new();
        if let Some(fam) = fams.iter().find(|f| f.name == name) {
            for s in &fam.series {
                if let Instrument::Counter(c) = &s.instrument {
                    out.insert(render_labels(&s.labels, None), c.get());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_instrument() {
        let r = Registry::new();
        let a = r.counter("reqs_total", "requests", &[("route", "/x")]);
        let b = r.counter("reqs_total", "requests", &[("route", "/x")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        let other = r.counter("reqs_total", "requests", &[("route", "/y")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _c = r.counter("thing", "help", &[]);
        let _g = r.gauge("thing", "help", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        let r = Registry::new();
        let _ = r.counter("9bad", "help", &[]);
    }

    #[test]
    fn render_counter_and_gauge() {
        let r = Registry::new();
        r.counter("c_total", "a counter", &[("k", "v\"q\\n")]).add(3);
        r.gauge("g_now", "a gauge", &[]).set(-2);
        let text = r.render();
        assert!(text.contains("# HELP c_total a counter"));
        assert!(text.contains("# TYPE c_total counter"));
        assert!(text.contains("c_total{k=\"v\\\"q\\\\n\"} 3"));
        assert!(text.contains("# TYPE g_now gauge"));
        assert!(text.contains("g_now -2"));
        crate::prom::validate(&text).expect("render passes validator");
    }

    #[test]
    fn render_histogram_is_cumulative() {
        let r = Registry::new();
        let h = r.histogram("lat_us", "latency", &[]);
        h.record(1);
        h.record(1);
        h.record(5);
        let text = r.render();
        assert!(text.contains("lat_us_bucket{le=\"1\"} 2"));
        assert!(text.contains("lat_us_bucket{le=\"5\"} 3"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_us_sum 7"));
        assert!(text.contains("lat_us_count 3"));
        crate::prom::validate(&text).expect("render passes validator");
    }
}
