//! Prometheus text exposition format (version 0.0.4) helpers: the
//! content type constant and a line-grammar validator used by tests
//! and the `/metrics` e2e check.

/// Content-Type for the text exposition format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

fn is_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn is_sample_value(s: &str) -> bool {
    matches!(s, "+Inf" | "-Inf" | "Inf" | "NaN") || s.parse::<f64>().is_ok()
}

/// Parse the `{...}` label block; returns the label pairs.
fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let inner = s
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| format!("malformed label block: {s}"))?;
    let mut out = Vec::new();
    let mut rest = inner;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or_else(|| format!("label missing '=': {rest}"))?;
        let name = &rest[..eq];
        if !is_label_name(name) {
            return Err(format!("bad label name: {name}"));
        }
        let after = &rest[eq + 1..];
        let mut chars = after.char_indices();
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(format!("label value must be quoted: {after}")),
        }
        let mut value = String::new();
        let mut end = None;
        let mut escaped = false;
        for (i, c) in chars {
            if escaped {
                match c {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    other => return Err(format!("bad escape \\{other}")),
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value: {after}"))?;
        out.push((name.to_string(), value));
        rest = &after[end + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
            if rest.is_empty() {
                return Err("trailing comma in label block".to_string());
            }
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {rest}"));
        }
    }
    Ok(out)
}

/// Validate a full exposition document against the text-format line
/// grammar, plus histogram semantics: every `histogram`-typed family
/// must expose a `+Inf` bucket per series, bucket counts must be
/// cumulative (non-decreasing in `le` order), and `_count` must equal
/// the `+Inf` bucket. Returns `Err(reason)` on the first violation.
pub fn validate(text: &str) -> Result<(), String> {
    struct HistSeries {
        family: String,
        labels: Vec<(String, String)>, // labels minus `le`
        last_le: f64,
        last_cum: f64,
        saw_inf: bool,
    }
    struct CountSample {
        family: String,
        labels: Vec<(String, String)>,
        value: f64,
    }
    let mut typed: Vec<(String, String)> = Vec::new(); // (name, type)
    let mut hist: Vec<HistSeries> = Vec::new();
    let mut counts: Vec<CountSample> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw;
        let ctx = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(spec) = rest.strip_prefix("TYPE ") {
                let mut it = spec.split_whitespace();
                let name = it.next().ok_or_else(|| ctx("TYPE missing name".into()))?;
                let kind = it.next().ok_or_else(|| ctx("TYPE missing kind".into()))?;
                if !is_metric_name(name) {
                    return Err(ctx(format!("bad TYPE metric name: {name}")));
                }
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(ctx(format!("unknown metric type: {kind}")));
                }
                typed.push((name.to_string(), kind.to_string()));
            } else if let Some(spec) = rest.strip_prefix("HELP ") {
                let name = spec.split_whitespace().next().unwrap_or("");
                if !is_metric_name(name) {
                    return Err(ctx(format!("bad HELP metric name: {name}")));
                }
            }
            // Other comments are legal and ignored.
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let name_end = line
            .find(|c: char| c == '{' || c.is_whitespace())
            .ok_or_else(|| ctx(format!("sample missing value: {line}")))?;
        let name = &line[..name_end];
        if !is_metric_name(name) {
            return Err(ctx(format!("bad sample metric name: {name}")));
        }
        let rest = &line[name_end..];
        let (labels, rest) = if rest.starts_with('{') {
            let close = rest.find('}').ok_or_else(|| ctx("unclosed label block".into()))?;
            (parse_labels(&rest[..=close]).map_err(&ctx)?, &rest[close + 1..])
        } else {
            (Vec::new(), rest)
        };
        let mut fields = rest.split_whitespace();
        let value = fields.next().ok_or_else(|| ctx(format!("sample missing value: {line}")))?;
        if !is_sample_value(value) {
            return Err(ctx(format!("bad sample value: {value}")));
        }
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return Err(ctx(format!("bad timestamp: {ts}")));
            }
        }
        if fields.next().is_some() {
            return Err(ctx(format!("trailing fields on sample: {line}")));
        }

        // Histogram bookkeeping for families declared `histogram`.
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_count"))
            .or_else(|| name.strip_suffix("_sum"))
            .unwrap_or(name);
        let is_hist_family =
            typed.iter().any(|(n, k)| n == base && k == "histogram");
        if is_hist_family {
            let val: f64 = if value == "+Inf" { f64::INFINITY } else { value.parse().unwrap_or(f64::NAN) };
            if name.ends_with("_bucket") {
                let le_raw = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| ctx(format!("{name} sample missing le label")))?;
                let le = if le_raw == "+Inf" {
                    f64::INFINITY
                } else {
                    le_raw.parse::<f64>().map_err(|_| ctx(format!("bad le: {le_raw}")))?
                };
                let key: Vec<(String, String)> =
                    labels.iter().filter(|(k, _)| k != "le").cloned().collect();
                match hist.iter_mut().find(|s| s.family == base && s.labels == key) {
                    Some(entry) => {
                        if le <= entry.last_le {
                            return Err(ctx(format!("{base} buckets not in increasing le order")));
                        }
                        if val < entry.last_cum {
                            return Err(ctx(format!("{base} bucket counts not cumulative")));
                        }
                        entry.last_le = le;
                        entry.last_cum = val;
                        entry.saw_inf |= le.is_infinite();
                    }
                    None => {
                        hist.push(HistSeries {
                            family: base.to_string(),
                            labels: key,
                            last_le: le,
                            last_cum: val,
                            saw_inf: le.is_infinite(),
                        });
                    }
                }
            } else if name.ends_with("_count") {
                counts.push(CountSample {
                    family: base.to_string(),
                    labels: labels.clone(),
                    value: val,
                });
            }
        }
    }

    for s in &hist {
        let name = &s.family;
        if !s.saw_inf {
            return Err(format!("histogram {name} series missing +Inf bucket"));
        }
        if let Some(c) = counts.iter().find(|c| c.family == *name && c.labels == s.labels) {
            if c.value != s.last_cum {
                return Err(format!(
                    "histogram {name} _count {} != +Inf bucket {}",
                    c.value, s.last_cum
                ));
            }
        } else {
            return Err(format!("histogram {name} series missing _count"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_document() {
        let doc = "\
# HELP reqs_total total requests\n\
# TYPE reqs_total counter\n\
reqs_total{route=\"/v1/predict\",model=\"m\\\"x\"} 12\n\
# TYPE depth gauge\n\
depth 3\n\
# TYPE lat_us histogram\n\
lat_us_bucket{le=\"1\"} 2\n\
lat_us_bucket{le=\"8\"} 5\n\
lat_us_bucket{le=\"+Inf\"} 5\n\
lat_us_sum 23\n\
lat_us_count 5\n";
        validate(doc).expect("valid document");
    }

    #[test]
    fn rejects_bad_value() {
        assert!(validate("# TYPE x counter\nx twelve\n").is_err());
    }

    #[test]
    fn rejects_bad_name() {
        assert!(validate("9x 1\n").is_err());
    }

    #[test]
    fn rejects_unquoted_label() {
        assert!(validate("# TYPE x counter\nx{a=b} 1\n").is_err());
    }

    #[test]
    fn rejects_histogram_without_inf() {
        let doc = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        let err = validate(doc).unwrap_err();
        assert!(err.contains("+Inf"), "unexpected error: {err}");
    }

    #[test]
    fn rejects_non_cumulative_histogram() {
        let doc = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        let err = validate(doc).unwrap_err();
        assert!(err.contains("cumulative"), "unexpected error: {err}");
    }

    #[test]
    fn rejects_count_mismatch() {
        let doc = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 4\n";
        let err = validate(doc).unwrap_err();
        assert!(err.contains("_count"), "unexpected error: {err}");
    }
}
