//! Lock-free scalar instruments: monotonic counters and signed gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// All updates are relaxed atomics: increments from any number of
/// threads are never lost, and `get` observes an exact total once the
/// incrementing threads have been joined.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (e.g. queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_basics() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }
}
