//! Log-bucketed histogram over `u64` values.
//!
//! # Bucket layout (bit-pinned)
//!
//! The layout is log-linear with 8 sub-buckets per octave:
//!
//! - values `0..=7` each get their own exact bucket (`index == value`);
//! - a value `v >= 8` with most-significant bit `m = 63 - v.leading_zeros()`
//!   lands in `index = 8 + (m - 3) * 8 + ((v >> (m - 3)) & 7)`.
//!
//! Every bucket therefore spans an inclusive `[lower, upper]` range
//! whose width is `2^(m-3)`: the worst-case relative error of reporting
//! a bucket upper bound is ≤ 12.5%. The full `u64` domain fits in
//! [`NUM_BUCKETS`] (496) buckets; there is no underflow or overflow
//! bucket because index 0 holds exactly the value 0 and the last bucket
//! ends exactly at `u64::MAX`.
//!
//! # Quantile semantics (bit-pinned)
//!
//! `quantile(q)` over `n` recorded values computes the 1-based rank
//! `r = ceil(q * n)` clamped to `[1, n]`, walks cumulative bucket counts
//! to the first bucket whose cumulative count reaches `r`, and reports
//! `min(bucket_upper_bound, recorded_max)`. With `n == 0` it reports 0.
//! These semantics are frozen: bench reports pin their p50/p95/p99 to
//! them and `tests` assert exact edge values.
//!
//! Recording is lock-free (one relaxed `fetch_add` per bucket plus
//! count/sum/max updates). Reads taken while writers are active are
//! internally consistent per-bucket but not a point-in-time snapshot;
//! quiesce writers for exact totals.

use std::sync::atomic::{AtomicU64, Ordering};

/// Total number of buckets covering the whole `u64` domain.
pub const NUM_BUCKETS: usize = 496;

/// Sub-buckets per octave for values `>= 8`.
const SUBS: u64 = 8;

/// Summary statistics derived from a histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub mean: f64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub max: u64,
}

impl HistogramSummary {
    /// The summary as a JSON object (bench reports embed these).
    pub fn to_json(&self) -> perfvec_json::Json {
        use perfvec_json::{obj, Json};
        obj(vec![
            ("count", Json::Num(self.count as f64)),
            ("mean", Json::Num(self.mean)),
            ("p50", Json::Num(self.p50 as f64)),
            ("p95", Json::Num(self.p95 as f64)),
            ("p99", Json::Num(self.p99 as f64)),
            ("max", Json::Num(self.max as f64)),
        ])
    }
}

/// Fixed-layout concurrent histogram. See the module docs for the
/// bucket and quantile contracts.
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

/// Bucket index for a value. Total over all of `u64`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        v as usize
    } else {
        let m = 63 - v.leading_zeros() as u64;
        let shift = m - 3;
        (SUBS + shift * SUBS + ((v >> shift) & (SUBS - 1))) as usize
    }
}

/// Inclusive `[lower, upper]` value range of bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < NUM_BUCKETS, "bucket index out of range");
    let i = index as u64;
    if i < SUBS {
        (i, i)
    } else {
        let shift = (i - SUBS) / SUBS;
        let sub = (i - SUBS) % SUBS;
        let width = 1u64 << shift;
        let lower = (SUBS << shift) + sub * width;
        // `lower + (width - 1)`: the naive `lower + width - 1` would
        // overflow u64 on the final bucket, whose upper bound is MAX.
        (lower, lower + (width - 1))
    }
}

impl Histogram {
    pub fn new() -> Self {
        // Box the bucket array directly; [AtomicU64; N] has no Copy
        // initializer, so build it from a Vec of default atomics.
        let v: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> = match v.into_boxed_slice().try_into() {
            Ok(b) => b,
            Err(_) => unreachable!("NUM_BUCKETS-sized vec converts exactly"),
        };
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Lock-free; no-op while recording is disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Time `f` and record its wall duration in microseconds.
    #[inline]
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = f();
        self.record(start.elapsed().as_micros() as u64);
        out
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Exact count in the bucket holding `v`-like values, by index.
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.buckets[index].load(Ordering::Relaxed)
    }

    /// Visit `(lower, upper, count)` for every non-empty bucket in
    /// ascending value order.
    pub fn for_each_nonzero(&self, mut f: impl FnMut(u64, u64, u64)) {
        for i in 0..NUM_BUCKETS {
            let c = self.buckets[i].load(Ordering::Relaxed);
            if c > 0 {
                let (lo, hi) = bucket_bounds(i);
                f(lo, hi, c);
            }
        }
    }

    /// Quantile estimate per the module-level contract.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for i in 0..NUM_BUCKETS {
            cum += self.buckets[i].load(Ordering::Relaxed);
            if cum >= rank {
                let (_, hi) = bucket_bounds(i);
                return hi.min(self.max());
            }
        }
        // Writers raced count ahead of bucket updates; fall back to max.
        self.max()
    }

    /// Count, sum, mean, p50/p95/p99, max in one pass-per-quantile.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let sum = self.sum();
        HistogramSummary {
            count,
            sum,
            mean: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn layout_is_total_and_monotone() {
        // Spot-check edges of every octave plus neighbours.
        let mut probes = vec![0u64, 1, 7, 8, 9, 15, 16, 17];
        for shift in 3..=60u32 {
            let lo = 8u64 << (shift - 3);
            probes.extend_from_slice(&[lo - 1, lo, lo + 1]);
        }
        probes.extend_from_slice(&[u64::MAX - 1, u64::MAX]);
        probes.sort_unstable();
        let mut last = 0usize;
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            assert!(i >= last, "index not monotone at {v}");
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "{v} outside bucket [{lo},{hi}]");
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn bounds_partition_the_domain() {
        // Consecutive buckets tile u64 with no gaps or overlaps.
        let mut expect_lo = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expect_lo, "gap/overlap at bucket {i}");
            assert!(hi >= lo);
            if i + 1 < NUM_BUCKETS {
                expect_lo = hi + 1;
            } else {
                assert_eq!(hi, u64::MAX);
            }
        }
    }

    #[test]
    fn octave_edges() {
        // First bucket of the (m=4) octave: [16, 17].
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_bounds(16), (16, 17));
        assert_eq!(bucket_index(17), 16);
        assert_eq!(bucket_index(18), 17);
        // 1024 starts an octave: width 128.
        let i = bucket_index(1024);
        assert_eq!(bucket_bounds(i), (1024, 1151));
        assert_eq!(bucket_index(1151), i);
        assert_eq!(bucket_index(1152), i + 1);
    }

    #[test]
    fn quantiles_follow_documented_semantics() {
        let h = Histogram::new();
        // 100 values: 1..=100. Bucket uppers cap the estimate; max caps p100.
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        // rank(0.5, 100) = 50 -> value 50 lives in bucket [48,51].
        assert_eq!(h.quantile(0.50), 51);
        // rank(0.95) = 95 -> bucket [88,95] -> 95.
        assert_eq!(h.quantile(0.95), 95);
        // rank(0.99) = 99 -> bucket [96,103] -> min(103, max=100) = 100.
        assert_eq!(h.quantile(0.99), 100);
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.quantile(0.0), 1); // rank clamps to 1
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn exact_small_value_counts() {
        let h = Histogram::new();
        for _ in 0..3 {
            h.record(0);
        }
        h.record(7);
        h.record(u64::MAX);
        assert_eq!(h.bucket_count(0), 3);
        assert_eq!(h.bucket_count(7), 1);
        assert_eq!(h.bucket_count(NUM_BUCKETS - 1), 1);
        let mut seen = Vec::new();
        h.for_each_nonzero(|lo, hi, c| seen.push((lo, hi, c)));
        assert_eq!(seen[0], (0, 0, 3));
        assert_eq!(seen[1], (7, 7, 1));
        assert_eq!(seen[2].2, 1);
        assert_eq!(seen[2].1, u64::MAX);
    }
}
