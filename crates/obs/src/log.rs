//! Leveled JSONL structured logger.
//!
//! Every line is a single compact JSON object on stderr:
//!
//! ```text
//! {"ts":1723111845.123456,"level":"info","target":"serve","msg":"listening on 127.0.0.1:7411"}
//! ```
//!
//! Filtering: the `PERFVEC_LOG` environment variable picks the maximum
//! emitted level (`off`, `error`, `warn`, `info`, `debug`, `trace`).
//! When unset, the threshold is whatever the binary passed to
//! [`init_default`] — or `warn` if nothing initialised the logger, so
//! library code and tests stay quiet by default.

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};

use perfvec_json::{obj, Json};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
    Trace = 5,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// Threshold encoding: 0 = off, 1..=5 = up-to-level, `UNINIT` = lazily
/// resolve from the environment on first use.
const OFF: u8 = 0;
const UNINIT: u8 = u8::MAX;

static THRESHOLD: AtomicU8 = AtomicU8::new(UNINIT);

fn parse_spec(s: &str) -> Option<u8> {
    match s.trim().to_ascii_lowercase().as_str() {
        "off" | "none" | "0" => Some(OFF),
        "error" => Some(Level::Error as u8),
        "warn" | "warning" => Some(Level::Warn as u8),
        "info" => Some(Level::Info as u8),
        "debug" => Some(Level::Debug as u8),
        "trace" => Some(Level::Trace as u8),
        _ => None,
    }
}

fn env_threshold() -> Option<u8> {
    std::env::var("PERFVEC_LOG").ok().and_then(|s| parse_spec(&s))
}

/// Initialise the logger with a default level for when `PERFVEC_LOG`
/// is unset or unparseable. The environment always wins. Binaries that
/// print progress (the bench CLI, the server) call this with
/// [`Level::Info`]; anything that never calls it filters at `warn`.
pub fn init_default(default: Level) {
    let t = env_threshold().unwrap_or(default as u8);
    THRESHOLD.store(t, Ordering::Relaxed);
}

/// Force the threshold, ignoring the environment (tests, tooling).
pub fn set_level(level: Level) {
    THRESHOLD.store(level as u8, Ordering::Relaxed);
}

fn threshold() -> u8 {
    let t = THRESHOLD.load(Ordering::Relaxed);
    if t != UNINIT {
        return t;
    }
    let t = env_threshold().unwrap_or(Level::Warn as u8);
    THRESHOLD.store(t, Ordering::Relaxed);
    t
}

/// Whether a message at `level` would currently be emitted.
#[inline]
pub fn level_enabled(level: Level) -> bool {
    (level as u8) <= threshold()
}

/// Render one JSONL log line (pure; used by [`log`] and by tests).
pub fn format_line(ts: f64, level: Level, target: &str, msg: &str) -> String {
    obj(vec![
        ("ts", Json::Num(ts)),
        ("level", Json::Str(level.as_str().to_string())),
        ("target", Json::Str(target.to_string())),
        ("msg", Json::Str(msg.to_string())),
    ])
    .to_string()
}

/// Emit one structured line to stderr if `level` passes the filter.
/// Called by the `error!`/`warn!`/`info!`/`debug!`/`trace!` macros.
pub fn log(level: Level, target: &str, args: fmt::Arguments<'_>) {
    if !level_enabled(level) {
        return;
    }
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0);
    let line = format_line(ts, level, target, &args.to_string());
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{line}");
}

/// Log at `error` level: `error!("target", "fmt {}", args)`.
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)+) => {
        $crate::log::log($crate::log::Level::Error, $target, ::core::format_args!($($arg)+))
    };
}

/// Log at `warn` level.
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)+) => {
        $crate::log::log($crate::log::Level::Warn, $target, ::core::format_args!($($arg)+))
    };
}

/// Log at `info` level.
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)+) => {
        $crate::log::log($crate::log::Level::Info, $target, ::core::format_args!($($arg)+))
    };
}

/// Log at `debug` level.
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)+) => {
        $crate::log::log($crate::log::Level::Debug, $target, ::core::format_args!($($arg)+))
    };
}

/// Log at `trace` level.
#[macro_export]
macro_rules! trace {
    ($target:expr, $($arg:tt)+) => {
        $crate::log::log($crate::log::Level::Trace, $target, ::core::format_args!($($arg)+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_spec_accepts_all_levels() {
        assert_eq!(parse_spec("off"), Some(OFF));
        assert_eq!(parse_spec("ERROR"), Some(1));
        assert_eq!(parse_spec(" warn "), Some(2));
        assert_eq!(parse_spec("warning"), Some(2));
        assert_eq!(parse_spec("info"), Some(3));
        assert_eq!(parse_spec("debug"), Some(4));
        assert_eq!(parse_spec("trace"), Some(5));
        assert_eq!(parse_spec("verbose"), None);
    }

    #[test]
    fn format_line_is_valid_compact_json() {
        let line = format_line(1234.5, Level::Info, "serve", "hello \"world\"\n");
        let parsed = Json::parse(&line).expect("log line parses");
        let o = parsed.as_obj().expect("object");
        assert_eq!(o[0].0, "ts");
        assert_eq!(o[1], ("level".to_string(), Json::Str("info".into())));
        assert_eq!(o[2], ("target".to_string(), Json::Str("serve".into())));
        assert_eq!(o[3], ("msg".to_string(), Json::Str("hello \"world\"\n".into())));
        assert!(!line.contains('\n'), "line must be single-line JSONL");
    }

    #[test]
    fn level_ordering() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Debug < Level::Trace);
    }
}
