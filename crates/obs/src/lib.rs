//! `perfvec_obs` — the workspace observability substrate.
//!
//! Std-only building blocks shared by every layer of the stack:
//!
//! - [`Counter`] / [`Gauge`]: lock-free atomic instruments.
//! - [`Histogram`]: log-bucketed latency histogram with exact bucket
//!   counts and documented quantile semantics (see [`histogram`]).
//! - [`Span`]: lightweight span timer for phase profiling.
//! - [`Registry`]: named metric families with labels, rendered in
//!   Prometheus text exposition format (version 0.0.4).
//! - [`log`]: leveled JSONL structured logger on stderr, filtered by
//!   the `PERFVEC_LOG` environment variable (default `warn`).
//!
//! Instrumentation is observational only: recording never influences
//! the values being measured, and the whole layer can be switched off
//! at runtime with [`set_enabled`] so overhead gates can compare
//! metrics-on vs metrics-off throughput of the same binary.

use std::sync::atomic::{AtomicBool, Ordering};

pub mod histogram;
pub mod log;
pub mod prom;
mod metrics;
mod registry;
mod span;

pub use histogram::{Histogram, HistogramSummary};
pub use log::Level;
pub use metrics::{Counter, Gauge};
pub use registry::{MetricKind, Registry};
pub use span::Span;

/// Global record-enable switch. `true` at startup.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable all metric recording process-wide.
///
/// Disabling turns `Counter::inc`, `Gauge` updates, and
/// `Histogram::record` into a single relaxed atomic load. This exists
/// for the `obs_overhead` gate, which measures the cost of the
/// instrumentation itself; it is not meant as an operational toggle
/// (a gauge inc/dec pair that straddles the flip can leave the gauge
/// offset).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}
