//! The global enable switch turns recording into a no-op.
//!
//! Lives in its own integration-test binary because `set_enabled` is
//! process-global: flipping it must not race other tests.

use perfvec_obs::{set_enabled, Counter, Gauge, Histogram};

#[test]
fn disabled_recording_is_a_noop() {
    let c = Counter::new();
    let g = Gauge::new();
    let h = Histogram::new();

    set_enabled(false);
    c.inc();
    c.add(10);
    g.inc();
    g.set(9);
    h.record(42);
    set_enabled(true);

    assert_eq!(c.get(), 0);
    assert_eq!(g.get(), 0);
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);

    // And back on: everything records again.
    c.inc();
    g.set(5);
    h.record(7);
    assert_eq!(c.get(), 1);
    assert_eq!(g.get(), 5);
    assert_eq!(h.count(), 1);
}
