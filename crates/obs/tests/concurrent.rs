//! Concurrency guarantees: increments from N threads are never lost.

use std::sync::Arc;

use perfvec_obs::{Counter, Histogram};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N threads each incrementing k times always sum to exactly N*k.
    #[test]
    fn concurrent_counter_increments_sum_exactly(
        threads in 2usize..9,
        per_thread in 1u64..2000,
    ) {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("incrementer thread panicked");
        }
        prop_assert_eq!(c.get(), threads as u64 * per_thread);
    }

    /// Histogram recording from N threads loses no samples and keeps
    /// count == sum of bucket counts.
    #[test]
    fn concurrent_histogram_records_sum_exactly(
        threads in 2usize..7,
        per_thread in 1u64..800,
        base in 0u64..100_000,
    ) {
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(base + t as u64 * 37 + i);
                    }
                })
            })
            .collect();
        for jh in handles {
            jh.join().expect("recorder thread panicked");
        }
        let total = threads as u64 * per_thread;
        prop_assert_eq!(h.count(), total);
        let mut bucket_total = 0u64;
        h.for_each_nonzero(|_, _, c| bucket_total += c);
        prop_assert_eq!(bucket_total, total);
        prop_assert!(h.max() >= base);
    }
}
