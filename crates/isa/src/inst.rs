//! Static instruction representation.

use crate::op::Op;
use crate::reg::Reg;
use serde::{Deserialize, Serialize};

/// Maximum number of source register operands an instruction may name.
///
/// Mirrors the PerfVec feature layout, which reserves 8 source slots.
pub const MAX_SRC: usize = 8;

/// Maximum number of destination register operands.
///
/// Mirrors the PerfVec feature layout, which reserves 6 destination slots.
pub const MAX_DST: usize = 6;

/// Memory operand: effective address is
/// `regs[base] + regs[index] * scale + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRef {
    /// Base address register.
    pub base: Reg,
    /// Optional scaled index register.
    pub index: Option<Reg>,
    /// Scale applied to the index register value (1, 2, 4, 8, or 16).
    pub scale: u8,
    /// Constant byte offset.
    pub offset: i64,
    /// Access size in bytes (1, 2, 4, 8, or 16).
    pub size: u8,
}

impl MemRef {
    /// A plain `base + offset` reference.
    pub fn base_offset(base: Reg, offset: i64, size: u8) -> MemRef {
        MemRef {
            base,
            index: None,
            scale: 1,
            offset,
            size,
        }
    }

    /// A `base + index*scale + offset` reference.
    pub fn indexed(base: Reg, index: Reg, scale: u8, offset: i64, size: u8) -> MemRef {
        MemRef {
            base,
            index: Some(index),
            scale,
            offset,
            size,
        }
    }
}

/// A static instruction: opcode plus register operands, immediate, memory
/// operand, and (for direct control flow) the target instruction index.
///
/// Operand slots are fixed-size arrays so that `Inst` is `Copy` and the
/// static program is stored contiguously.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Inst {
    /// Opcode.
    pub op: Op,
    /// Destination registers (first `n_dst` entries valid).
    pub dsts: [Reg; MAX_DST],
    /// Number of valid destination registers.
    pub n_dst: u8,
    /// Source registers (first `n_src` entries valid).
    pub srcs: [Reg; MAX_SRC],
    /// Number of valid source registers.
    pub n_src: u8,
    /// Immediate operand (second ALU operand when `uses_imm`, shift
    /// amounts, `Li` values, ...).
    pub imm: i64,
    /// Whether the immediate replaces the second source operand.
    pub uses_imm: bool,
    /// Memory operand for loads and stores.
    pub mem: Option<MemRef>,
    /// Static target (instruction index) for direct branches/jumps/calls.
    pub target: Option<u32>,
}

impl Inst {
    /// A new instruction with no operands; builders fill in the rest.
    pub fn new(op: Op) -> Inst {
        Inst {
            op,
            dsts: [Reg::ZERO; MAX_DST],
            n_dst: 0,
            srcs: [Reg::ZERO; MAX_SRC],
            n_src: 0,
            imm: 0,
            uses_imm: false,
            mem: None,
            target: None,
        }
    }

    /// Add a destination register. Panics beyond [`MAX_DST`].
    pub fn with_dst(mut self, r: Reg) -> Inst {
        assert!(
            (self.n_dst as usize) < MAX_DST,
            "too many destination registers"
        );
        self.dsts[self.n_dst as usize] = r;
        self.n_dst += 1;
        self
    }

    /// Add a source register. Panics beyond [`MAX_SRC`].
    pub fn with_src(mut self, r: Reg) -> Inst {
        assert!((self.n_src as usize) < MAX_SRC, "too many source registers");
        self.srcs[self.n_src as usize] = r;
        self.n_src += 1;
        self
    }

    /// Set the immediate (marking the instruction as immediate-form).
    pub fn with_imm(mut self, imm: i64) -> Inst {
        self.imm = imm;
        self.uses_imm = true;
        self
    }

    /// Attach a memory operand; its base and index registers are appended
    /// to the source list automatically.
    pub fn with_mem(mut self, mem: MemRef) -> Inst {
        self = self.with_src(mem.base);
        if let Some(idx) = mem.index {
            self = self.with_src(idx);
        }
        self.mem = Some(mem);
        self
    }

    /// Set the static branch target (an instruction index).
    pub fn with_target(mut self, target: u32) -> Inst {
        self.target = Some(target);
        self
    }

    /// Valid destination registers.
    #[inline]
    pub fn dsts(&self) -> &[Reg] {
        &self.dsts[..self.n_dst as usize]
    }

    /// Valid source registers.
    #[inline]
    pub fn srcs(&self) -> &[Reg] {
        &self.srcs[..self.n_src as usize]
    }
}

impl std::fmt::Display for Inst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.op)?;
        for (i, d) in self.dsts().iter().enumerate() {
            write!(f, "{}{}", if i == 0 { " " } else { ", " }, d)?;
        }
        for d in self.srcs() {
            write!(f, ", {d}")?;
        }
        if self.uses_imm {
            write!(f, ", #{}", self.imm)?;
        }
        if let Some(m) = &self.mem {
            write!(f, " [{}", m.base)?;
            if let Some(i) = m.index {
                write!(f, " + {}*{}", i, m.scale)?;
            }
            write!(f, " + {}] ({}B)", m.offset, m.size)?;
        }
        if let Some(t) = self.target {
            write!(f, " -> @{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_operand_counts() {
        let i = Inst::new(Op::Add)
            .with_dst(Reg::x(1))
            .with_src(Reg::x(2))
            .with_src(Reg::x(3));
        assert_eq!(i.dsts(), &[Reg::x(1)]);
        assert_eq!(i.srcs(), &[Reg::x(2), Reg::x(3)]);
        assert!(!i.uses_imm);
    }

    #[test]
    fn mem_operand_registers_become_sources() {
        let m = MemRef::indexed(Reg::x(5), Reg::x(6), 8, 16, 8);
        let i = Inst::new(Op::Ld).with_dst(Reg::x(1)).with_mem(m);
        assert_eq!(i.srcs(), &[Reg::x(5), Reg::x(6)]);
        assert_eq!(i.mem.unwrap().size, 8);
    }

    #[test]
    fn imm_form_flags() {
        let i = Inst::new(Op::Add)
            .with_dst(Reg::x(1))
            .with_src(Reg::x(1))
            .with_imm(4);
        assert!(i.uses_imm);
        assert_eq!(i.imm, 4);
    }

    #[test]
    #[should_panic(expected = "too many destination registers")]
    fn too_many_dsts_panics() {
        let mut i = Inst::new(Op::Nop);
        for k in 0..=MAX_DST as u8 {
            i = i.with_dst(Reg::x(k));
        }
    }

    #[test]
    fn display_is_readable() {
        let i = Inst::new(Op::Beq)
            .with_src(Reg::x(1))
            .with_src(Reg::x(2))
            .with_target(7);
        let s = i.to_string();
        assert!(s.contains("beq"));
        assert!(s.contains("@7"));
    }
}
