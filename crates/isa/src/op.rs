//! Opcodes and their static properties.
//!
//! [`Op`] is the full opcode enumeration; [`OpClass`] is the coarse
//! execution-resource class the timing simulator schedules on (which
//! functional-unit pool an instruction occupies, and for how long).

use serde::{Deserialize, Serialize};

/// Operation codes of the ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    // --- integer ALU ---
    /// `dst = src0 + src1` (or `src0 + imm`).
    Add,
    /// `dst = src0 - src1`.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sra,
    /// `dst = (src0 < src1) as i64`, signed compare.
    Slt,
    /// `dst = (src0 < src1) as i64`, unsigned compare.
    Sltu,
    /// Load immediate: `dst = imm`.
    Li,
    /// Register move: `dst = src0`.
    Mov,
    // --- integer multiply / divide ---
    /// 64-bit multiply (low half).
    Mul,
    /// Signed divide; divide-by-zero faults (result 0, fault flag set).
    Div,
    /// Signed remainder; divide-by-zero faults.
    Rem,
    // --- scalar floating point ---
    /// `fd = fs0 + fs1`.
    Fadd,
    /// `fd = fs0 - fs1`.
    Fsub,
    /// `fd = fs0 * fs1`.
    Fmul,
    /// `fd = fs0 / fs1`; divide-by-zero faults (result 0.0).
    Fdiv,
    /// `fd = sqrt(fs0)`; negative input faults (result 0.0).
    Fsqrt,
    /// Fused multiply-add: `fd = fs0 * fs1 + fs2`.
    Fmadd,
    /// `fd = min(fs0, fs1)`.
    Fmin,
    /// `fd = max(fs0, fs1)`.
    Fmax,
    /// `fd = -fs0`.
    Fneg,
    /// FP compare less-than into an integer register: `xd = (fs0 < fs1) as i64`.
    Fclt,
    /// Convert integer to double: `fd = xs0 as f64`.
    Icvtf,
    /// Convert double to integer (truncating): `xd = fs0 as i64`.
    Fcvti,
    /// FP register move.
    Fmov,
    // --- SIMD (4 × f32 lanes) ---
    /// Lane-wise add.
    Vadd,
    /// Lane-wise multiply.
    Vmul,
    /// Lane-wise fused multiply-add: `vd = vs0 * vs1 + vs2`.
    Vfma,
    /// Broadcast the low 32 bits of an fp register into all lanes.
    Vsplat,
    /// Horizontal sum of lanes into a scalar fp register.
    Vredsum,
    // --- memory ---
    /// Integer load (zero-extended); access size in `MemRef::size`.
    Ld,
    /// Integer store; access size in `MemRef::size`.
    St,
    /// FP load (8 bytes).
    Fld,
    /// FP store (8 bytes).
    Fst,
    /// SIMD load (16 bytes).
    Vld,
    /// SIMD store (16 bytes).
    Vst,
    // --- control flow ---
    /// Branch if equal.
    Beq,
    /// Branch if not equal.
    Bne,
    /// Branch if signed less-than.
    Blt,
    /// Branch if signed greater-or-equal.
    Bge,
    /// Unconditional direct jump.
    J,
    /// Direct call: writes the return address to the link register.
    Jal,
    /// Indirect jump through a register (also used for returns).
    Jr,
    // --- other ---
    /// Memory barrier: orders all earlier memory operations before later ones.
    Fence,
    /// No operation.
    Nop,
    /// Stop the program.
    Halt,
}

/// Coarse execution-resource class, used by the timing simulator to pick
/// a functional-unit pool and an execution latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum OpClass {
    /// Simple integer ops (add/logic/shift/compare/moves).
    IntAlu = 0,
    /// Integer multiply.
    IntMul = 1,
    /// Integer divide / remainder (unpipelined).
    IntDiv = 2,
    /// FP add/sub/compare/convert/move.
    FpAlu = 3,
    /// FP multiply and fused multiply-add.
    FpMul = 4,
    /// FP divide and square root (unpipelined).
    FpDiv = 5,
    /// SIMD arithmetic.
    Simd = 6,
    /// Loads of any register class.
    Load = 7,
    /// Stores of any register class.
    Store = 8,
    /// All control-flow instructions.
    Branch = 9,
    /// Fences and other serializing ops; Nop/Halt also land here.
    Other = 10,
}

impl OpClass {
    /// Number of distinct classes (for sizing per-class tables).
    pub const COUNT: usize = 11;

    /// All classes in discriminant order.
    pub const ALL: [OpClass; OpClass::COUNT] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAlu,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Simd,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Other,
    ];
}

impl Op {
    /// The execution-resource class of this opcode.
    pub const fn class(self) -> OpClass {
        use Op::*;
        match self {
            Add | Sub | And | Or | Xor | Shl | Shr | Sra | Slt | Sltu | Li | Mov => OpClass::IntAlu,
            Mul => OpClass::IntMul,
            Div | Rem => OpClass::IntDiv,
            Fadd | Fsub | Fmin | Fmax | Fneg | Fclt | Icvtf | Fcvti | Fmov => OpClass::FpAlu,
            Fmul | Fmadd => OpClass::FpMul,
            Fdiv | Fsqrt => OpClass::FpDiv,
            Vadd | Vmul | Vfma | Vsplat | Vredsum => OpClass::Simd,
            Ld | Fld | Vld => OpClass::Load,
            St | Fst | Vst => OpClass::Store,
            Beq | Bne | Blt | Bge | J | Jal | Jr => OpClass::Branch,
            Fence | Nop | Halt => OpClass::Other,
        }
    }

    /// True for any control-flow instruction.
    pub const fn is_branch(self) -> bool {
        matches!(self.class(), OpClass::Branch)
    }

    /// True for conditional branches.
    pub const fn is_cond_branch(self) -> bool {
        matches!(self, Op::Beq | Op::Bne | Op::Blt | Op::Bge)
    }

    /// True for direct (target known statically) control flow.
    pub const fn is_direct_branch(self) -> bool {
        matches!(
            self,
            Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::J | Op::Jal
        )
    }

    /// True for indirect control flow.
    pub const fn is_indirect_branch(self) -> bool {
        matches!(self, Op::Jr)
    }

    /// True for calls (write the link register).
    pub const fn is_call(self) -> bool {
        matches!(self, Op::Jal)
    }

    /// True for loads.
    pub const fn is_load(self) -> bool {
        matches!(self, Op::Ld | Op::Fld | Op::Vld)
    }

    /// True for stores.
    pub const fn is_store(self) -> bool {
        matches!(self, Op::St | Op::Fst | Op::Vst)
    }

    /// True for any memory access.
    pub const fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// True for memory barriers.
    pub const fn is_barrier(self) -> bool {
        matches!(self, Op::Fence)
    }

    /// True if this opcode can raise an execution fault (and on which the
    /// `fault` dynamic feature can therefore be set).
    pub const fn can_fault(self) -> bool {
        matches!(self, Op::Div | Op::Rem | Op::Fdiv | Op::Fsqrt)
    }

    /// True if the op ends the program.
    pub const fn is_halt(self) -> bool {
        matches!(self, Op::Halt)
    }

    /// Short mnemonic for display / debugging.
    pub const fn mnemonic(self) -> &'static str {
        use Op::*;
        match self {
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            Shr => "shr",
            Sra => "sra",
            Slt => "slt",
            Sltu => "sltu",
            Li => "li",
            Mov => "mov",
            Mul => "mul",
            Div => "div",
            Rem => "rem",
            Fadd => "fadd",
            Fsub => "fsub",
            Fmul => "fmul",
            Fdiv => "fdiv",
            Fsqrt => "fsqrt",
            Fmadd => "fmadd",
            Fmin => "fmin",
            Fmax => "fmax",
            Fneg => "fneg",
            Fclt => "fclt",
            Icvtf => "icvtf",
            Fcvti => "fcvti",
            Fmov => "fmov",
            Vadd => "vadd",
            Vmul => "vmul",
            Vfma => "vfma",
            Vsplat => "vsplat",
            Vredsum => "vredsum",
            Ld => "ld",
            St => "st",
            Fld => "fld",
            Fst => "fst",
            Vld => "vld",
            Vst => "vst",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            J => "j",
            Jal => "jal",
            Jr => "jr",
            Fence => "fence",
            Nop => "nop",
            Halt => "halt",
        }
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_partition_is_consistent() {
        use Op::*;
        let all = [
            Add, Sub, And, Or, Xor, Shl, Shr, Sra, Slt, Sltu, Li, Mov, Mul, Div, Rem, Fadd, Fsub,
            Fmul, Fdiv, Fsqrt, Fmadd, Fmin, Fmax, Fneg, Fclt, Icvtf, Fcvti, Fmov, Vadd, Vmul, Vfma,
            Vsplat, Vredsum, Ld, St, Fld, Fst, Vld, Vst, Beq, Bne, Blt, Bge, J, Jal, Jr, Fence,
            Nop, Halt,
        ];
        for op in all {
            // every load is mem, every branch kind implies is_branch, etc.
            if op.is_load() || op.is_store() {
                assert!(op.is_mem(), "{op}");
            }
            if op.is_cond_branch() || op.is_call() || op.is_indirect_branch() {
                assert!(op.is_branch(), "{op}");
            }
            if op.is_direct_branch() {
                assert!(!op.is_indirect_branch(), "{op}");
            }
        }
    }

    #[test]
    fn branch_kinds() {
        assert!(Op::Beq.is_cond_branch());
        assert!(Op::J.is_direct_branch() && !Op::J.is_cond_branch());
        assert!(Op::Jal.is_call());
        assert!(Op::Jr.is_indirect_branch());
        assert!(!Op::Add.is_branch());
    }

    #[test]
    fn fault_capable_ops() {
        assert!(Op::Div.can_fault());
        assert!(Op::Fsqrt.can_fault());
        assert!(!Op::Add.can_fault());
        assert!(!Op::Ld.can_fault());
    }

    #[test]
    fn opclass_all_matches_discriminants() {
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }
}
