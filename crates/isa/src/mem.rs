//! Sparse byte-addressable memory for the functional emulator.
//!
//! Pages are allocated lazily on first touch; reads of untouched memory
//! return zero, like an OS-zeroed address space.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// Sparse, lazily allocated memory.
#[derive(Debug, Default, Clone)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Empty memory; all addresses read as zero.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of 4 KiB pages currently materialized.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    #[inline]
    fn page_of(addr: u64) -> (u64, usize) {
        (addr >> PAGE_SHIFT, (addr & PAGE_MASK) as usize)
    }

    /// Read one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        let (pn, off) = Self::page_of(addr);
        self.pages.get(&pn).map_or(0, |p| p[off])
    }

    /// Write one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        let (pn, off) = Self::page_of(addr);
        self.pages
            .entry(pn)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))[off] = val;
    }

    /// Read `N` little-endian bytes starting at `addr` (may straddle pages).
    pub fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let (pn, off) = Self::page_of(addr);
        // Fast path: the access fits inside one page.
        if off + N <= PAGE_SIZE {
            match self.pages.get(&pn) {
                Some(p) => {
                    let mut out = [0u8; N];
                    out.copy_from_slice(&p[off..off + N]);
                    out
                }
                None => [0u8; N],
            }
        } else {
            let mut out = [0u8; N];
            for (i, b) in out.iter_mut().enumerate() {
                *b = self.read_u8(addr + i as u64);
            }
            out
        }
    }

    /// Write `N` little-endian bytes starting at `addr` (may straddle pages).
    pub fn write_bytes<const N: usize>(&mut self, addr: u64, bytes: [u8; N]) {
        let (pn, off) = Self::page_of(addr);
        if off + N <= PAGE_SIZE {
            let page = self
                .pages
                .entry(pn)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[off..off + N].copy_from_slice(&bytes);
        } else {
            for (i, b) in bytes.iter().enumerate() {
                self.write_u8(addr + i as u64, *b);
            }
        }
    }

    /// Read a zero-extended integer of `size` ∈ {1, 2, 4, 8} bytes.
    pub fn read_uint(&self, addr: u64, size: u8) -> u64 {
        match size {
            1 => self.read_u8(addr) as u64,
            2 => u16::from_le_bytes(self.read_bytes::<2>(addr)) as u64,
            4 => u32::from_le_bytes(self.read_bytes::<4>(addr)) as u64,
            8 => u64::from_le_bytes(self.read_bytes::<8>(addr)),
            s => panic!("unsupported integer access size {s}"),
        }
    }

    /// Write the low `size` ∈ {1, 2, 4, 8} bytes of `val`.
    pub fn write_uint(&mut self, addr: u64, val: u64, size: u8) {
        match size {
            1 => self.write_u8(addr, val as u8),
            2 => self.write_bytes::<2>(addr, (val as u16).to_le_bytes()),
            4 => self.write_bytes::<4>(addr, (val as u32).to_le_bytes()),
            8 => self.write_bytes::<8>(addr, val.to_le_bytes()),
            s => panic!("unsupported integer access size {s}"),
        }
    }

    /// Read an `f64`.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_uint(addr, 8))
    }

    /// Write an `f64`.
    pub fn write_f64(&mut self, addr: u64, val: f64) {
        self.write_uint(addr, val.to_bits(), 8)
    }

    /// Read a 128-bit SIMD value as 4 × f32 lanes.
    pub fn read_v128(&self, addr: u64) -> [f32; 4] {
        let raw = self.read_bytes::<16>(addr);
        let mut lanes = [0f32; 4];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = f32::from_le_bytes(raw[i * 4..i * 4 + 4].try_into().unwrap());
        }
        lanes
    }

    /// Write a 128-bit SIMD value from 4 × f32 lanes.
    pub fn write_v128(&mut self, addr: u64, lanes: [f32; 4]) {
        let mut raw = [0u8; 16];
        for (i, lane) in lanes.iter().enumerate() {
            raw[i * 4..i * 4 + 4].copy_from_slice(&lane.to_le_bytes());
        }
        self.write_bytes::<16>(addr, raw);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_uint(0xdead_beef, 8), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn roundtrip_all_sizes() {
        let mut m = Memory::new();
        for (size, val) in [
            (1u8, 0xabu64),
            (2, 0xbeef),
            (4, 0xdead_beef),
            (8, 0x0123_4567_89ab_cdef),
        ] {
            m.write_uint(0x1000, val, size);
            assert_eq!(m.read_uint(0x1000, size), val);
        }
    }

    #[test]
    fn page_straddling_access() {
        let mut m = Memory::new();
        let addr = (1 << 12) - 3; // 3 bytes before a page boundary
        m.write_uint(addr, 0x1122_3344_5566_7788, 8);
        assert_eq!(m.read_uint(addr, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn float_and_vector_roundtrip() {
        let mut m = Memory::new();
        m.write_f64(64, -3.75);
        assert_eq!(m.read_f64(64), -3.75);
        m.write_v128(128, [1.0, -2.0, 3.5, 0.25]);
        assert_eq!(m.read_v128(128), [1.0, -2.0, 3.5, 0.25]);
    }

    #[test]
    fn byte_writes_are_independent() {
        let mut m = Memory::new();
        m.write_u8(10, 0xaa);
        m.write_u8(11, 0xbb);
        assert_eq!(m.read_uint(10, 2), 0xbbaa);
    }
}
