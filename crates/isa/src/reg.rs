//! Architectural registers.
//!
//! Three register files exist: 32 integer registers (`x0`..`x31`, with
//! `x0` hardwired to zero and `x30` used as the link register by
//! convention), 32 scalar floating-point registers (`f0`..`f31`), and 16
//! 128-bit SIMD registers (`v0`..`v15`, four `f32` lanes each).

use serde::{Deserialize, Serialize};

/// The register file a [`Reg`] belongs to.
///
/// The numeric discriminants are stable: feature extraction encodes a
/// register operand's *category* as this discriminant (with `0` reserved
/// for "no operand in this slot").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum RegClass {
    /// 64-bit integer register.
    Int = 1,
    /// 64-bit scalar floating-point register.
    Fp = 2,
    /// 128-bit SIMD register (4 × f32 lanes).
    Vec = 3,
}

impl RegClass {
    /// Number of registers in this file.
    pub const fn count(self) -> u8 {
        match self {
            RegClass::Int | RegClass::Fp => 32,
            RegClass::Vec => 16,
        }
    }
}

/// An architectural register operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg {
    class: RegClass,
    index: u8,
}

impl Reg {
    /// The always-zero integer register `x0`.
    pub const ZERO: Reg = Reg {
        class: RegClass::Int,
        index: 0,
    };
    /// Conventional link register (`x30`), written by calls.
    pub const LINK: Reg = Reg {
        class: RegClass::Int,
        index: 30,
    };
    /// Conventional stack pointer (`x29`).
    pub const SP: Reg = Reg {
        class: RegClass::Int,
        index: 29,
    };

    /// Integer register `x<i>`. Panics if `i >= 32`.
    #[inline]
    pub const fn x(i: u8) -> Reg {
        assert!(i < 32, "integer register index out of range");
        Reg {
            class: RegClass::Int,
            index: i,
        }
    }

    /// Floating-point register `f<i>`. Panics if `i >= 32`.
    #[inline]
    pub const fn f(i: u8) -> Reg {
        assert!(i < 32, "fp register index out of range");
        Reg {
            class: RegClass::Fp,
            index: i,
        }
    }

    /// SIMD register `v<i>`. Panics if `i >= 16`.
    #[inline]
    pub const fn v(i: u8) -> Reg {
        assert!(i < 16, "vector register index out of range");
        Reg {
            class: RegClass::Vec,
            index: i,
        }
    }

    /// The register file this register belongs to.
    #[inline]
    pub const fn class(self) -> RegClass {
        self.class
    }

    /// Index within its register file.
    #[inline]
    pub const fn index(self) -> u8 {
        self.index
    }

    /// True for the hardwired zero register `x0`.
    #[inline]
    pub const fn is_zero(self) -> bool {
        matches!(self.class, RegClass::Int) && self.index == 0
    }

    /// A dense identifier unique across all register files, usable as a
    /// scoreboard index: integers occupy 0..32, fp 32..64, vectors 64..80.
    #[inline]
    pub const fn flat_id(self) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Fp => 32 + self.index as usize,
            RegClass::Vec => 64 + self.index as usize,
        }
    }

    /// Total number of distinct [`Reg::flat_id`] values.
    pub const NUM_FLAT: usize = 80;
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let prefix = match self.class {
            RegClass::Int => 'x',
            RegClass::Fp => 'f',
            RegClass::Vec => 'v',
        };
        write!(f, "{}{}", prefix, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_identity() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::x(1).is_zero());
        assert!(!Reg::f(0).is_zero());
        assert_eq!(Reg::ZERO, Reg::x(0));
    }

    #[test]
    fn flat_ids_are_dense_and_unique() {
        let mut seen = [false; Reg::NUM_FLAT];
        for i in 0..32 {
            for r in [Reg::x(i), Reg::f(i)] {
                assert!(!seen[r.flat_id()], "duplicate flat id for {r}");
                seen[r.flat_id()] = true;
            }
        }
        for i in 0..16 {
            let r = Reg::v(i);
            assert!(!seen[r.flat_id()]);
            seen[r.flat_id()] = true;
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 80);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Reg::v(16);
    }

    #[test]
    fn display_format() {
        assert_eq!(Reg::x(3).to_string(), "x3");
        assert_eq!(Reg::f(31).to_string(), "f31");
        assert_eq!(Reg::v(0).to_string(), "v0");
    }

    #[test]
    fn class_counts() {
        assert_eq!(RegClass::Int.count(), 32);
        assert_eq!(RegClass::Fp.count(), 32);
        assert_eq!(RegClass::Vec.count(), 16);
    }
}
