//! Dynamic instruction records — the logical execution trace.
//!
//! A [`Trace`] is microarchitecture-independent: it depends only on the
//! program and its input. The timing simulator replays the same trace
//! under many microarchitectures, and the PerfVec feature extractor
//! derives the 51 instruction features from it.

use crate::op::OpClass;
use crate::program::Program;
use crate::{CODE_BASE, INST_BYTES};
use serde::{Deserialize, Serialize};

/// One executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynInst {
    /// Static instruction index into [`Program::insts`].
    pub sidx: u32,
    /// Static index of the dynamically next instruction (the actual
    /// successor, after any branch resolution).
    pub next_sidx: u32,
    /// Effective memory address for loads/stores (0 otherwise).
    pub addr: u64,
    /// For control flow: whether the branch was taken.
    pub taken: bool,
    /// Whether execution faulted (divide by zero, sqrt of a negative).
    pub fault: bool,
}

impl DynInst {
    /// Fetch address of this dynamic instruction.
    #[inline]
    pub fn pc(&self) -> u64 {
        CODE_BASE + self.sidx as u64 * INST_BYTES
    }

    /// Fetch address of the dynamic successor.
    #[inline]
    pub fn next_pc(&self) -> u64 {
        CODE_BASE + self.next_sidx as u64 * INST_BYTES
    }
}

/// A dynamic execution trace plus the program it came from.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// The executed program (shared so the static instruction for any
    /// record is one index away).
    pub program: Program,
    /// Executed instructions in program order.
    pub records: Vec<DynInst>,
    /// True when the program reached `halt` (as opposed to the
    /// instruction budget running out).
    pub halted: bool,
}

impl Trace {
    /// Number of executed instructions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was executed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The static instruction behind record `i`.
    #[inline]
    pub fn inst(&self, i: usize) -> &crate::inst::Inst {
        &self.program.insts[self.records[i].sidx as usize]
    }

    /// Count executed instructions per [`OpClass`].
    pub fn class_mix(&self) -> [u64; OpClass::COUNT] {
        let mut mix = [0u64; OpClass::COUNT];
        for r in &self.records {
            mix[self.program.insts[r.sidx as usize].op.class() as usize] += 1;
        }
        mix
    }

    /// Fraction of executed instructions that access memory.
    pub fn mem_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let mix = self.class_mix();
        (mix[OpClass::Load as usize] + mix[OpClass::Store as usize]) as f64
            / self.records.len() as f64
    }

    /// Fraction of executed instructions that are control flow.
    pub fn branch_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.class_mix()[OpClass::Branch as usize] as f64 / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use crate::reg::Reg;

    fn tiny_trace() -> Trace {
        let mut b = ProgramBuilder::new();
        let base = b.alloc_zeroed(64);
        b.li(Reg::x(1), base as i64);
        b.ld(Reg::x(2), Reg::x(1), 0, 8);
        b.halt();
        let p = b.build();
        let mut e = crate::emu::Emulator::new(&p);
        e.run(100).unwrap()
    }

    #[test]
    fn pcs_follow_static_indices() {
        let t = tiny_trace();
        assert_eq!(t.records[0].pc(), CODE_BASE);
        assert_eq!(t.records[1].pc(), CODE_BASE + INST_BYTES);
    }

    #[test]
    fn class_mix_counts_all_records() {
        let t = tiny_trace();
        let mix = t.class_mix();
        assert_eq!(mix.iter().sum::<u64>(), t.len() as u64);
        assert_eq!(mix[OpClass::Load as usize], 1);
    }

    #[test]
    fn fractions_are_bounded() {
        let t = tiny_trace();
        assert!(t.mem_fraction() > 0.0 && t.mem_fraction() <= 1.0);
        assert!(t.branch_fraction() >= 0.0 && t.branch_fraction() < 1.0);
    }
}
