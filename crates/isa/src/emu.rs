//! Functional (architectural) emulator.
//!
//! Executes a [`Program`] with exact ISA semantics — no timing — and
//! records the dynamic instruction trace that the timing simulator and
//! the feature extractor consume.

use crate::dynrec::{DynInst, Trace};
use crate::inst::Inst;
use crate::mem::Memory;
use crate::op::Op;
use crate::program::Program;
use crate::reg::{Reg, RegClass};
use crate::{CODE_BASE, INST_BYTES, STACK_BASE};

/// Errors that indicate a broken program (not normal termination).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// The program counter left the code segment.
    PcOutOfRange {
        /// Offending instruction index.
        idx: u64,
    },
    /// An indirect jump targeted a non-code or misaligned address.
    BadJumpTarget {
        /// The bad target address.
        addr: u64,
    },
    /// `Li` into a vector register (unsupported).
    UnsupportedOperand,
}

impl std::fmt::Display for EmuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmuError::PcOutOfRange { idx } => write!(f, "pc out of range (index {idx})"),
            EmuError::BadJumpTarget { addr } => write!(f, "bad indirect jump target {addr:#x}"),
            EmuError::UnsupportedOperand => write!(f, "unsupported operand combination"),
        }
    }
}

impl std::error::Error for EmuError {}

/// The functional emulator.
pub struct Emulator<'p> {
    program: &'p Program,
    x: [i64; 32],
    f: [f64; 32],
    v: [[f32; 4]; 16],
    mem: Memory,
    pc_idx: u64,
    executed: u64,
    halted: bool,
}

impl<'p> Emulator<'p> {
    /// Set up an emulator: zeroed registers (stack pointer at
    /// [`STACK_BASE`]), memory initialized from the program's data
    /// segments, pc at the entry point.
    pub fn new(program: &'p Program) -> Emulator<'p> {
        let mut mem = Memory::new();
        for seg in &program.data {
            for (i, b) in seg.bytes.iter().enumerate() {
                mem.write_u8(seg.addr + i as u64, *b);
            }
        }
        let mut x = [0i64; 32];
        x[Reg::SP.index() as usize] = STACK_BASE as i64;
        Emulator {
            program,
            x,
            f: [0.0; 32],
            v: [[0.0; 4]; 16],
            mem,
            pc_idx: program.entry as u64,
            executed: 0,
            halted: false,
        }
    }

    /// Read an integer register (`x0` reads zero).
    #[inline]
    pub fn read_x(&self, r: Reg) -> i64 {
        debug_assert_eq!(r.class(), RegClass::Int);
        if r.is_zero() {
            0
        } else {
            self.x[r.index() as usize]
        }
    }

    #[inline]
    fn write_x(&mut self, r: Reg, val: i64) {
        debug_assert_eq!(r.class(), RegClass::Int);
        if !r.is_zero() {
            self.x[r.index() as usize] = val;
        }
    }

    /// Read an FP register.
    #[inline]
    pub fn read_f(&self, r: Reg) -> f64 {
        debug_assert_eq!(r.class(), RegClass::Fp);
        self.f[r.index() as usize]
    }

    #[inline]
    fn write_f(&mut self, r: Reg, val: f64) {
        self.f[r.index() as usize] = val;
    }

    /// Read a SIMD register.
    #[inline]
    pub fn read_v(&self, r: Reg) -> [f32; 4] {
        debug_assert_eq!(r.class(), RegClass::Vec);
        self.v[r.index() as usize]
    }

    /// Architectural memory (for inspecting results after a run).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Number of instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// True once `halt` has executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    #[inline]
    fn effective_addr(&self, inst: &Inst) -> u64 {
        let m = inst.mem.expect("memory op without mem operand");
        let mut addr = self.read_x(m.base) as u64;
        if let Some(idx) = m.index {
            addr = addr.wrapping_add((self.read_x(idx) as u64).wrapping_mul(m.scale as u64));
        }
        addr.wrapping_add(m.offset as u64)
    }

    #[inline]
    fn src1_or_imm(&self, inst: &Inst) -> i64 {
        if inst.uses_imm {
            inst.imm
        } else {
            self.read_x(inst.srcs()[1])
        }
    }

    /// Run until `halt`, the instruction budget `max_instrs` is
    /// exhausted, or an error; returns the dynamic trace.
    ///
    /// Budget exhaustion is a normal outcome (workloads are deliberately
    /// truncated, as the paper truncates SPEC runs at 100 M instructions);
    /// check [`Trace::halted`] to distinguish.
    pub fn run(&mut self, max_instrs: u64) -> Result<Trace, EmuError> {
        let mut records = Vec::with_capacity(max_instrs.min(1 << 20) as usize);
        while !self.halted && (self.executed as usize) < max_instrs as usize {
            let rec = self.step()?;
            records.push(rec);
        }
        Ok(Trace {
            program: self.program.clone(),
            records,
            halted: self.halted,
        })
    }

    /// Execute one instruction, returning its dynamic record.
    pub fn step(&mut self) -> Result<DynInst, EmuError> {
        let idx = self.pc_idx;
        if idx as usize >= self.program.insts.len() {
            return Err(EmuError::PcOutOfRange { idx });
        }
        let inst = self.program.insts[idx as usize];
        let mut next = idx + 1;
        let mut taken = false;
        let mut fault = false;
        let mut addr = 0u64;

        match inst.op {
            // ---- integer ALU ----
            Op::Add => {
                let v = self
                    .read_x(inst.srcs()[0])
                    .wrapping_add(self.src1_or_imm(&inst));
                self.write_x(inst.dsts()[0], v);
            }
            Op::Sub => {
                let v = self
                    .read_x(inst.srcs()[0])
                    .wrapping_sub(self.src1_or_imm(&inst));
                self.write_x(inst.dsts()[0], v);
            }
            Op::And => {
                let v = self.read_x(inst.srcs()[0]) & self.src1_or_imm(&inst);
                self.write_x(inst.dsts()[0], v);
            }
            Op::Or => {
                let v = self.read_x(inst.srcs()[0]) | self.src1_or_imm(&inst);
                self.write_x(inst.dsts()[0], v);
            }
            Op::Xor => {
                let v = self.read_x(inst.srcs()[0]) ^ self.src1_or_imm(&inst);
                self.write_x(inst.dsts()[0], v);
            }
            Op::Shl => {
                let v = (self.read_x(inst.srcs()[0]) as u64)
                    .wrapping_shl(self.src1_or_imm(&inst) as u32 & 63);
                self.write_x(inst.dsts()[0], v as i64);
            }
            Op::Shr => {
                let v = (self.read_x(inst.srcs()[0]) as u64)
                    .wrapping_shr(self.src1_or_imm(&inst) as u32 & 63);
                self.write_x(inst.dsts()[0], v as i64);
            }
            Op::Sra => {
                let v = self
                    .read_x(inst.srcs()[0])
                    .wrapping_shr(self.src1_or_imm(&inst) as u32 & 63);
                self.write_x(inst.dsts()[0], v);
            }
            Op::Slt => {
                let v = (self.read_x(inst.srcs()[0]) < self.src1_or_imm(&inst)) as i64;
                self.write_x(inst.dsts()[0], v);
            }
            Op::Sltu => {
                let v = ((self.read_x(inst.srcs()[0]) as u64) < (self.src1_or_imm(&inst) as u64))
                    as i64;
                self.write_x(inst.dsts()[0], v);
            }
            Op::Li => {
                let d = inst.dsts()[0];
                match d.class() {
                    RegClass::Int => self.write_x(d, inst.imm),
                    RegClass::Fp => self.write_f(d, f64::from_bits(inst.imm as u64)),
                    RegClass::Vec => return Err(EmuError::UnsupportedOperand),
                }
            }
            Op::Mov => {
                let v = self.read_x(inst.srcs()[0]);
                self.write_x(inst.dsts()[0], v);
            }
            Op::Mul => {
                let v = self
                    .read_x(inst.srcs()[0])
                    .wrapping_mul(self.src1_or_imm(&inst));
                self.write_x(inst.dsts()[0], v);
            }
            Op::Div => {
                let a = self.read_x(inst.srcs()[0]);
                let b = self.src1_or_imm(&inst);
                let v = if b == 0 {
                    fault = true;
                    0
                } else {
                    a.wrapping_div(b)
                };
                self.write_x(inst.dsts()[0], v);
            }
            Op::Rem => {
                let a = self.read_x(inst.srcs()[0]);
                let b = self.src1_or_imm(&inst);
                let v = if b == 0 {
                    fault = true;
                    0
                } else {
                    a.wrapping_rem(b)
                };
                self.write_x(inst.dsts()[0], v);
            }
            // ---- scalar FP ----
            Op::Fadd => {
                let v = self.read_f(inst.srcs()[0]) + self.read_f(inst.srcs()[1]);
                self.write_f(inst.dsts()[0], v);
            }
            Op::Fsub => {
                let v = self.read_f(inst.srcs()[0]) - self.read_f(inst.srcs()[1]);
                self.write_f(inst.dsts()[0], v);
            }
            Op::Fmul => {
                let v = self.read_f(inst.srcs()[0]) * self.read_f(inst.srcs()[1]);
                self.write_f(inst.dsts()[0], v);
            }
            Op::Fdiv => {
                let a = self.read_f(inst.srcs()[0]);
                let b = self.read_f(inst.srcs()[1]);
                let v = if b == 0.0 {
                    fault = true;
                    0.0
                } else {
                    a / b
                };
                self.write_f(inst.dsts()[0], v);
            }
            Op::Fsqrt => {
                let a = self.read_f(inst.srcs()[0]);
                let v = if a < 0.0 {
                    fault = true;
                    0.0
                } else {
                    a.sqrt()
                };
                self.write_f(inst.dsts()[0], v);
            }
            Op::Fmadd => {
                let v = self.read_f(inst.srcs()[0]) * self.read_f(inst.srcs()[1])
                    + self.read_f(inst.srcs()[2]);
                self.write_f(inst.dsts()[0], v);
            }
            Op::Fmin => {
                let v = self.read_f(inst.srcs()[0]).min(self.read_f(inst.srcs()[1]));
                self.write_f(inst.dsts()[0], v);
            }
            Op::Fmax => {
                let v = self.read_f(inst.srcs()[0]).max(self.read_f(inst.srcs()[1]));
                self.write_f(inst.dsts()[0], v);
            }
            Op::Fneg => {
                let v = -self.read_f(inst.srcs()[0]);
                self.write_f(inst.dsts()[0], v);
            }
            Op::Fclt => {
                let v = (self.read_f(inst.srcs()[0]) < self.read_f(inst.srcs()[1])) as i64;
                self.write_x(inst.dsts()[0], v);
            }
            Op::Icvtf => {
                let v = self.read_x(inst.srcs()[0]) as f64;
                self.write_f(inst.dsts()[0], v);
            }
            Op::Fcvti => {
                let v = self.read_f(inst.srcs()[0]) as i64;
                self.write_x(inst.dsts()[0], v);
            }
            Op::Fmov => {
                let v = self.read_f(inst.srcs()[0]);
                self.write_f(inst.dsts()[0], v);
            }
            // ---- SIMD ----
            Op::Vadd => {
                let (a, b) = (self.read_v(inst.srcs()[0]), self.read_v(inst.srcs()[1]));
                let mut out = [0f32; 4];
                for i in 0..4 {
                    out[i] = a[i] + b[i];
                }
                self.v[inst.dsts()[0].index() as usize] = out;
            }
            Op::Vmul => {
                let (a, b) = (self.read_v(inst.srcs()[0]), self.read_v(inst.srcs()[1]));
                let mut out = [0f32; 4];
                for i in 0..4 {
                    out[i] = a[i] * b[i];
                }
                self.v[inst.dsts()[0].index() as usize] = out;
            }
            Op::Vfma => {
                let a = self.read_v(inst.srcs()[0]);
                let b = self.read_v(inst.srcs()[1]);
                let c = self.read_v(inst.srcs()[2]);
                let mut out = [0f32; 4];
                for i in 0..4 {
                    out[i] = a[i] * b[i] + c[i];
                }
                self.v[inst.dsts()[0].index() as usize] = out;
            }
            Op::Vsplat => {
                let s = self.read_f(inst.srcs()[0]) as f32;
                self.v[inst.dsts()[0].index() as usize] = [s; 4];
            }
            Op::Vredsum => {
                let a = self.read_v(inst.srcs()[0]);
                let v = a.iter().map(|&x| x as f64).sum();
                self.write_f(inst.dsts()[0], v);
            }
            // ---- memory ----
            Op::Ld => {
                addr = self.effective_addr(&inst);
                let size = inst.mem.unwrap().size;
                let v = self.mem.read_uint(addr, size) as i64;
                self.write_x(inst.dsts()[0], v);
            }
            Op::St => {
                addr = self.effective_addr(&inst);
                let size = inst.mem.unwrap().size;
                let v = self.read_x(inst.srcs()[0]) as u64;
                self.mem.write_uint(addr, v, size);
            }
            Op::Fld => {
                addr = self.effective_addr(&inst);
                let v = if inst.mem.unwrap().size == 4 {
                    f32::from_bits(self.mem.read_uint(addr, 4) as u32) as f64
                } else {
                    self.mem.read_f64(addr)
                };
                self.write_f(inst.dsts()[0], v);
            }
            Op::Fst => {
                addr = self.effective_addr(&inst);
                let v = self.read_f(inst.srcs()[0]);
                if inst.mem.unwrap().size == 4 {
                    self.mem.write_uint(addr, (v as f32).to_bits() as u64, 4);
                } else {
                    self.mem.write_f64(addr, v);
                }
            }
            Op::Vld => {
                addr = self.effective_addr(&inst);
                let v = self.mem.read_v128(addr);
                self.v[inst.dsts()[0].index() as usize] = v;
            }
            Op::Vst => {
                addr = self.effective_addr(&inst);
                let v = self.read_v(inst.srcs()[0]);
                self.mem.write_v128(addr, v);
            }
            // ---- control flow ----
            Op::Beq | Op::Bne | Op::Blt | Op::Bge => {
                let a = self.read_x(inst.srcs()[0]);
                let b = self.src1_or_imm(&inst);
                taken = match inst.op {
                    Op::Beq => a == b,
                    Op::Bne => a != b,
                    Op::Blt => a < b,
                    Op::Bge => a >= b,
                    _ => unreachable!(),
                };
                if taken {
                    next = inst.target.expect("cond branch without target") as u64;
                }
            }
            Op::J => {
                taken = true;
                next = inst.target.expect("jump without target") as u64;
            }
            Op::Jal => {
                taken = true;
                let ret_pc = CODE_BASE + (idx + 1) * INST_BYTES;
                self.write_x(inst.dsts()[0], ret_pc as i64);
                next = inst.target.expect("call without target") as u64;
            }
            Op::Jr => {
                taken = true;
                let target = self.read_x(inst.srcs()[0]) as u64;
                if target < CODE_BASE
                    || !(target - CODE_BASE).is_multiple_of(INST_BYTES)
                    || ((target - CODE_BASE) / INST_BYTES) as usize >= self.program.insts.len()
                {
                    return Err(EmuError::BadJumpTarget { addr: target });
                }
                next = (target - CODE_BASE) / INST_BYTES;
            }
            // ---- misc ----
            Op::Fence | Op::Nop => {}
            Op::Halt => {
                self.halted = true;
                next = idx; // no successor
            }
        }

        self.pc_idx = next;
        self.executed += 1;
        Ok(DynInst {
            sidx: idx as u32,
            next_sidx: next as u32,
            addr,
            taken,
            fault,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn run_prog(b: ProgramBuilder) -> (Program, Trace) {
        let p = b.build();
        let mut e = Emulator::new(&p);
        let t = e.run(1_000_000).unwrap();
        (p, t)
    }

    #[test]
    fn arithmetic_loop_sums_correctly() {
        let mut b = ProgramBuilder::new();
        let (acc, i) = (Reg::x(1), Reg::x(2));
        b.li(acc, 0);
        b.li(i, 0);
        let top = b.label();
        b.add(acc, acc, i);
        b.addi(i, i, 1);
        b.blt_imm(i, 100, top);
        b.halt();
        let p = b.build();
        let mut e = Emulator::new(&p);
        let t = e.run(10_000).unwrap();
        assert!(t.halted);
        assert_eq!(e.read_x(acc), 4950);
    }

    #[test]
    fn zero_register_ignores_writes() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::ZERO, 42);
        b.addi(Reg::x(1), Reg::ZERO, 7);
        b.halt();
        let p = b.build();
        let mut e = Emulator::new(&p);
        e.run(10).unwrap();
        assert_eq!(e.read_x(Reg::ZERO), 0);
        assert_eq!(e.read_x(Reg::x(1)), 7);
    }

    #[test]
    fn loads_and_stores_roundtrip_through_memory() {
        let mut b = ProgramBuilder::new();
        let arr = b.alloc_u64_slice(&[10, 20, 30]);
        let (base, v, i) = (Reg::x(1), Reg::x(2), Reg::x(3));
        b.li(base, arr as i64);
        b.li(i, 1);
        b.ld_idx(v, base, i, 8, 0, 8); // v = arr[1]
        b.addi(v, v, 5);
        b.st_idx(v, base, i, 8, 8, 8); // arr[2] = v
        b.halt();
        let p = b.build();
        let mut e = Emulator::new(&p);
        e.run(100).unwrap();
        assert_eq!(e.memory().read_uint(arr + 16, 8), 25);
    }

    #[test]
    fn call_and_return() {
        let mut b = ProgramBuilder::new();
        let func = b.fwd_label();
        b.li(Reg::x(1), 3);
        b.call(func);
        b.halt();
        b.bind(func);
        b.muli(Reg::x(1), Reg::x(1), 7);
        b.ret();
        let p = b.build();
        let mut e = Emulator::new(&p);
        let t = e.run(100).unwrap();
        assert!(t.halted);
        assert_eq!(e.read_x(Reg::x(1)), 21);
        // the call and the return are both recorded as taken branches
        let takens: Vec<_> = t.records.iter().filter(|r| r.taken).collect();
        assert_eq!(takens.len(), 2);
    }

    #[test]
    fn divide_by_zero_faults_without_trapping() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::x(1), 10);
        b.li(Reg::x(2), 0);
        b.div(Reg::x(3), Reg::x(1), Reg::x(2));
        b.halt();
        let (_, t) = run_prog(b);
        assert!(t.records[2].fault);
        assert!(t.halted);
    }

    #[test]
    fn fsqrt_negative_faults() {
        let mut b = ProgramBuilder::new();
        b.fli(Reg::f(0), -4.0);
        b.fsqrt(Reg::f(1), Reg::f(0));
        b.halt();
        let (_, t) = run_prog(b);
        assert!(t.records[1].fault);
    }

    #[test]
    fn fp_and_simd_math() {
        let mut b = ProgramBuilder::new();
        let arr = b.alloc_f32_slice(&[1.0, 2.0, 3.0, 4.0]);
        b.li(Reg::x(1), arr as i64);
        b.vld(Reg::v(0), Reg::x(1), 0);
        b.vmul(Reg::v(1), Reg::v(0), Reg::v(0));
        b.vredsum(Reg::f(0), Reg::v(1)); // 1+4+9+16 = 30
        b.fsqrt(Reg::f(1), Reg::f(0));
        b.halt();
        let p = b.build();
        let mut e = Emulator::new(&p);
        e.run(100).unwrap();
        assert_eq!(e.read_f(Reg::f(0)), 30.0);
        assert!((e.read_f(Reg::f(1)) - 30f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_precision_load_store_roundtrip() {
        let mut b = ProgramBuilder::new();
        let arr = b.alloc_f32_slice(&[1.5, -2.25]);
        b.li(Reg::x(1), arr as i64);
        b.flw(Reg::f(0), Reg::x(1), 4); // -2.25
        b.fadd(Reg::f(1), Reg::f(0), Reg::f(0));
        b.fsw(Reg::f(1), Reg::x(1), 0);
        b.halt();
        let p = b.build();
        let mut e = Emulator::new(&p);
        e.run(10).unwrap();
        assert_eq!(e.read_f(Reg::f(0)), -2.25);
        let raw = e.memory().read_uint(arr, 4) as u32;
        assert_eq!(f32::from_bits(raw), -4.5);
    }

    #[test]
    fn fuel_exhaustion_is_normal_termination() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.addi(Reg::x(1), Reg::x(1), 1);
        b.j(top);
        let p = b.build();
        let mut e = Emulator::new(&p);
        let t = e.run(50).unwrap();
        assert!(!t.halted);
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn branch_records_expose_taken_and_next() {
        let mut b = ProgramBuilder::new();
        let skip = b.fwd_label();
        b.li(Reg::x(1), 1);
        b.beq_imm(Reg::x(1), 0, skip); // not taken
        b.bne_imm(Reg::x(1), 0, skip); // taken
        b.li(Reg::x(2), 99); // skipped
        b.bind(skip);
        b.halt();
        let (_, t) = run_prog(b);
        assert!(!t.records[1].taken);
        assert_eq!(t.records[1].next_sidx, 2);
        assert!(t.records[2].taken);
        assert_eq!(t.records[2].next_sidx, 4);
    }

    #[test]
    fn indirect_jump_to_bad_target_errors() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::x(1), 3); // not a code address
        b.jr(Reg::x(1));
        let p = b.build();
        let mut e = Emulator::new(&p);
        assert!(matches!(e.run(100), Err(EmuError::BadJumpTarget { .. })));
    }

    #[test]
    fn trace_is_microarchitecture_independent_by_construction() {
        // Running the same program twice yields identical traces.
        let mk = || {
            let mut b = ProgramBuilder::new();
            let (acc, i) = (Reg::x(1), Reg::x(2));
            b.li(acc, 1);
            b.li(i, 0);
            let top = b.label();
            b.muli(acc, acc, 3);
            b.remi(acc, acc, 1000);
            b.addi(i, i, 1);
            b.blt_imm(i, 40, top);
            b.halt();
            b.build()
        };
        let (p1, p2) = (mk(), mk());
        let t1 = Emulator::new(&p1).run(10_000).unwrap();
        let t2 = Emulator::new(&p2).run(10_000).unwrap();
        assert_eq!(t1.records, t2.records);
    }
}
