//! Programs and the in-memory assembler ([`ProgramBuilder`]).
//!
//! Workloads construct programs through the builder, which provides one
//! method per instruction plus conveniences (labels with forward
//! references, a data-segment bump allocator, call/return pseudo-ops).

use crate::inst::{Inst, MemRef};
use crate::op::Op;
use crate::reg::Reg;
use crate::{CODE_BASE, DATA_BASE, INST_BYTES};
use serde::{Deserialize, Serialize};

/// An initialized region of the data segment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataSegment {
    /// Starting virtual address.
    pub addr: u64,
    /// Initial contents.
    pub bytes: Vec<u8>,
}

/// A complete program: code, initialized data, and an entry point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Program {
    /// Human-readable program name (used in reports).
    pub name: String,
    /// The instruction stream; instruction `i` lives at
    /// [`Program::pc_of`]`(i)`.
    pub insts: Vec<Inst>,
    /// Initialized data segments.
    pub data: Vec<DataSegment>,
    /// Entry instruction index.
    pub entry: u32,
}

impl Program {
    /// Virtual address of instruction `idx`.
    #[inline]
    pub fn pc_of(&self, idx: u32) -> u64 {
        CODE_BASE + idx as u64 * INST_BYTES
    }

    /// Instruction index at virtual address `pc` (must be in the code
    /// segment and aligned).
    #[inline]
    pub fn idx_of(&self, pc: u64) -> u32 {
        debug_assert!(pc >= CODE_BASE && (pc - CODE_BASE).is_multiple_of(INST_BYTES));
        ((pc - CODE_BASE) / INST_BYTES) as u32
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// A code label. Obtained from [`ProgramBuilder::label`] (bound
/// immediately) or [`ProgramBuilder::fwd_label`] (bound later with
/// [`ProgramBuilder::bind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Incremental program assembler.
pub struct ProgramBuilder {
    name: String,
    insts: Vec<Inst>,
    data: Vec<DataSegment>,
    /// Label id -> bound instruction index (u32::MAX while unbound).
    labels: Vec<u32>,
    /// Instructions whose `target` holds a label id awaiting patching.
    fixups: Vec<usize>,
    /// `Li` instructions whose immediate is the code address of a label
    /// (`(inst index, label id)`), patched at build time.
    addr_fixups: Vec<(usize, usize)>,
    data_cursor: u64,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Fresh builder with an empty program.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder {
            name: "anonymous".to_string(),
            insts: Vec::new(),
            data: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            addr_fixups: Vec::new(),
            data_cursor: DATA_BASE,
        }
    }

    /// Set the program name.
    pub fn with_name(mut self, name: impl Into<String>) -> ProgramBuilder {
        self.name = name.into();
        self
    }

    /// Finish assembly, patching all label references.
    ///
    /// Panics if any forward label was never bound.
    pub fn build(mut self) -> Program {
        for &i in &self.fixups {
            let lbl = self.insts[i].target.expect("fixup without label id") as usize;
            let bound = self.labels[lbl];
            assert!(
                bound != u32::MAX,
                "label {lbl} used but never bound (inst {i})"
            );
            self.insts[i].target = Some(bound);
        }
        for &(i, lbl) in &self.addr_fixups {
            let bound = self.labels[lbl];
            assert!(
                bound != u32::MAX,
                "label {lbl} used but never bound (inst {i})"
            );
            self.insts[i].imm = (CODE_BASE + bound as u64 * INST_BYTES) as i64;
        }
        Program {
            name: self.name,
            insts: self.insts,
            data: self.data,
            entry: 0,
        }
    }

    /// Current instruction index (where the next emitted instruction goes).
    pub fn here(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Create a label bound to the current position.
    pub fn label(&mut self) -> Label {
        let l = Label(self.labels.len());
        self.labels.push(self.here());
        l
    }

    /// Create an unbound (forward) label.
    pub fn fwd_label(&mut self) -> Label {
        let l = Label(self.labels.len());
        self.labels.push(u32::MAX);
        l
    }

    /// Bind a forward label to the current position.
    pub fn bind(&mut self, l: Label) {
        assert_eq!(self.labels[l.0], u32::MAX, "label bound twice");
        self.labels[l.0] = self.here();
    }

    fn emit(&mut self, inst: Inst) -> u32 {
        let idx = self.here();
        self.insts.push(inst);
        idx
    }

    fn emit_branch(&mut self, inst: Inst, l: Label) -> u32 {
        let idx = self.emit(inst.with_target(l.0 as u32));
        self.fixups.push(idx as usize);
        idx
    }

    // ---- data segment -------------------------------------------------

    /// Allocate and initialize `bytes` in the data segment; returns its
    /// virtual address. Allocations are 64-byte aligned so distinct
    /// arrays never share a cache line.
    pub fn alloc_data(&mut self, bytes: Vec<u8>) -> u64 {
        let addr = self.data_cursor;
        self.data_cursor += (bytes.len() as u64 + 63) & !63;
        self.data.push(DataSegment { addr, bytes });
        addr
    }

    /// Allocate `len` zeroed bytes (no segment recorded; memory reads
    /// zero by default). Returns the virtual address.
    pub fn alloc_zeroed(&mut self, len: u64) -> u64 {
        let addr = self.data_cursor;
        self.data_cursor += (len + 63) & !63;
        addr
    }

    /// Allocate a slice of little-endian `u64` values.
    pub fn alloc_u64_slice(&mut self, vals: &[u64]) -> u64 {
        let bytes = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.alloc_data(bytes)
    }

    /// Allocate a slice of `f64` values.
    pub fn alloc_f64_slice(&mut self, vals: &[f64]) -> u64 {
        let bytes = vals
            .iter()
            .flat_map(|v| v.to_bits().to_le_bytes())
            .collect();
        self.alloc_data(bytes)
    }

    /// Allocate a slice of `f32` values.
    pub fn alloc_f32_slice(&mut self, vals: &[f32]) -> u64 {
        let bytes = vals
            .iter()
            .flat_map(|v| v.to_bits().to_le_bytes())
            .collect();
        self.alloc_data(bytes)
    }

    // ---- integer ALU ---------------------------------------------------

    fn alu3(&mut self, op: Op, d: Reg, a: Reg, b: Reg) -> u32 {
        self.emit(Inst::new(op).with_dst(d).with_src(a).with_src(b))
    }

    fn alu_imm(&mut self, op: Op, d: Reg, a: Reg, imm: i64) -> u32 {
        self.emit(Inst::new(op).with_dst(d).with_src(a).with_imm(imm))
    }

    /// `d = a + b`
    pub fn add(&mut self, d: Reg, a: Reg, b: Reg) -> u32 {
        self.alu3(Op::Add, d, a, b)
    }
    /// `d = a + imm`
    pub fn addi(&mut self, d: Reg, a: Reg, imm: i64) -> u32 {
        self.alu_imm(Op::Add, d, a, imm)
    }
    /// `d = a - b`
    pub fn sub(&mut self, d: Reg, a: Reg, b: Reg) -> u32 {
        self.alu3(Op::Sub, d, a, b)
    }
    /// `d = a - imm`
    pub fn subi(&mut self, d: Reg, a: Reg, imm: i64) -> u32 {
        self.alu_imm(Op::Sub, d, a, imm)
    }
    /// `d = a & b`
    pub fn and(&mut self, d: Reg, a: Reg, b: Reg) -> u32 {
        self.alu3(Op::And, d, a, b)
    }
    /// `d = a & imm`
    pub fn andi(&mut self, d: Reg, a: Reg, imm: i64) -> u32 {
        self.alu_imm(Op::And, d, a, imm)
    }
    /// `d = a | b`
    pub fn or(&mut self, d: Reg, a: Reg, b: Reg) -> u32 {
        self.alu3(Op::Or, d, a, b)
    }
    /// `d = a | imm`
    pub fn ori(&mut self, d: Reg, a: Reg, imm: i64) -> u32 {
        self.alu_imm(Op::Or, d, a, imm)
    }
    /// `d = a ^ b`
    pub fn xor(&mut self, d: Reg, a: Reg, b: Reg) -> u32 {
        self.alu3(Op::Xor, d, a, b)
    }
    /// `d = a ^ imm`
    pub fn xori(&mut self, d: Reg, a: Reg, imm: i64) -> u32 {
        self.alu_imm(Op::Xor, d, a, imm)
    }
    /// `d = a << b`
    pub fn shl(&mut self, d: Reg, a: Reg, b: Reg) -> u32 {
        self.alu3(Op::Shl, d, a, b)
    }
    /// `d = a << imm`
    pub fn shli(&mut self, d: Reg, a: Reg, imm: i64) -> u32 {
        self.alu_imm(Op::Shl, d, a, imm)
    }
    /// `d = a >> b` (logical)
    pub fn shr(&mut self, d: Reg, a: Reg, b: Reg) -> u32 {
        self.alu3(Op::Shr, d, a, b)
    }
    /// `d = a >> imm` (logical)
    pub fn shri(&mut self, d: Reg, a: Reg, imm: i64) -> u32 {
        self.alu_imm(Op::Shr, d, a, imm)
    }
    /// `d = a >> imm` (arithmetic)
    pub fn srai(&mut self, d: Reg, a: Reg, imm: i64) -> u32 {
        self.alu_imm(Op::Sra, d, a, imm)
    }
    /// `d = (a < b)` signed
    pub fn slt(&mut self, d: Reg, a: Reg, b: Reg) -> u32 {
        self.alu3(Op::Slt, d, a, b)
    }
    /// `d = (a < imm)` signed
    pub fn slti(&mut self, d: Reg, a: Reg, imm: i64) -> u32 {
        self.alu_imm(Op::Slt, d, a, imm)
    }
    /// `d = (a < b)` unsigned
    pub fn sltu(&mut self, d: Reg, a: Reg, b: Reg) -> u32 {
        self.alu3(Op::Sltu, d, a, b)
    }
    /// `d = imm`
    pub fn li(&mut self, d: Reg, imm: i64) -> u32 {
        self.emit(Inst::new(Op::Li).with_dst(d).with_imm(imm))
    }
    /// `d = code address of label` (patched at build time). Enables
    /// jump tables and computed indirect control flow.
    pub fn li_label(&mut self, d: Reg, l: Label) -> u32 {
        let idx = self.emit(Inst::new(Op::Li).with_dst(d).with_imm(0));
        self.addr_fixups.push((idx as usize, l.0));
        idx
    }
    /// `fd = value` (FP immediate; encoded through the `Li` opcode).
    pub fn fli(&mut self, d: Reg, value: f64) -> u32 {
        self.emit(
            Inst::new(Op::Li)
                .with_dst(d)
                .with_imm(value.to_bits() as i64),
        )
    }
    /// `d = a`
    pub fn mov(&mut self, d: Reg, a: Reg) -> u32 {
        self.emit(Inst::new(Op::Mov).with_dst(d).with_src(a))
    }
    /// `d = a * b`
    pub fn mul(&mut self, d: Reg, a: Reg, b: Reg) -> u32 {
        self.alu3(Op::Mul, d, a, b)
    }
    /// `d = a * imm`
    pub fn muli(&mut self, d: Reg, a: Reg, imm: i64) -> u32 {
        self.alu_imm(Op::Mul, d, a, imm)
    }
    /// `d = a / b` (signed; faults on b == 0)
    pub fn div(&mut self, d: Reg, a: Reg, b: Reg) -> u32 {
        self.alu3(Op::Div, d, a, b)
    }
    /// `d = a % b` (signed; faults on b == 0)
    pub fn rem(&mut self, d: Reg, a: Reg, b: Reg) -> u32 {
        self.alu3(Op::Rem, d, a, b)
    }
    /// `d = a % imm`
    pub fn remi(&mut self, d: Reg, a: Reg, imm: i64) -> u32 {
        self.alu_imm(Op::Rem, d, a, imm)
    }

    // ---- scalar FP ------------------------------------------------------

    /// `fd = fa + fb`
    pub fn fadd(&mut self, d: Reg, a: Reg, b: Reg) -> u32 {
        self.alu3(Op::Fadd, d, a, b)
    }
    /// `fd = fa - fb`
    pub fn fsub(&mut self, d: Reg, a: Reg, b: Reg) -> u32 {
        self.alu3(Op::Fsub, d, a, b)
    }
    /// `fd = fa * fb`
    pub fn fmul(&mut self, d: Reg, a: Reg, b: Reg) -> u32 {
        self.alu3(Op::Fmul, d, a, b)
    }
    /// `fd = fa / fb`
    pub fn fdiv(&mut self, d: Reg, a: Reg, b: Reg) -> u32 {
        self.alu3(Op::Fdiv, d, a, b)
    }
    /// `fd = sqrt(fa)`
    pub fn fsqrt(&mut self, d: Reg, a: Reg) -> u32 {
        self.emit(Inst::new(Op::Fsqrt).with_dst(d).with_src(a))
    }
    /// `fd = fa * fb + fc`
    pub fn fmadd(&mut self, d: Reg, a: Reg, b: Reg, c: Reg) -> u32 {
        self.emit(
            Inst::new(Op::Fmadd)
                .with_dst(d)
                .with_src(a)
                .with_src(b)
                .with_src(c),
        )
    }
    /// `fd = min(fa, fb)`
    pub fn fmin(&mut self, d: Reg, a: Reg, b: Reg) -> u32 {
        self.alu3(Op::Fmin, d, a, b)
    }
    /// `fd = max(fa, fb)`
    pub fn fmax(&mut self, d: Reg, a: Reg, b: Reg) -> u32 {
        self.alu3(Op::Fmax, d, a, b)
    }
    /// `fd = -fa`
    pub fn fneg(&mut self, d: Reg, a: Reg) -> u32 {
        self.emit(Inst::new(Op::Fneg).with_dst(d).with_src(a))
    }
    /// `xd = (fa < fb)`
    pub fn fclt(&mut self, d: Reg, a: Reg, b: Reg) -> u32 {
        self.alu3(Op::Fclt, d, a, b)
    }
    /// `fd = xa as f64`
    pub fn icvtf(&mut self, d: Reg, a: Reg) -> u32 {
        self.emit(Inst::new(Op::Icvtf).with_dst(d).with_src(a))
    }
    /// `xd = fa as i64` (truncating)
    pub fn fcvti(&mut self, d: Reg, a: Reg) -> u32 {
        self.emit(Inst::new(Op::Fcvti).with_dst(d).with_src(a))
    }
    /// `fd = fa`
    pub fn fmov(&mut self, d: Reg, a: Reg) -> u32 {
        self.emit(Inst::new(Op::Fmov).with_dst(d).with_src(a))
    }

    // ---- SIMD -----------------------------------------------------------

    /// `vd = va + vb` lane-wise
    pub fn vadd(&mut self, d: Reg, a: Reg, b: Reg) -> u32 {
        self.alu3(Op::Vadd, d, a, b)
    }
    /// `vd = va * vb` lane-wise
    pub fn vmul(&mut self, d: Reg, a: Reg, b: Reg) -> u32 {
        self.alu3(Op::Vmul, d, a, b)
    }
    /// `vd = va * vb + vc` lane-wise
    pub fn vfma(&mut self, d: Reg, a: Reg, b: Reg, c: Reg) -> u32 {
        self.emit(
            Inst::new(Op::Vfma)
                .with_dst(d)
                .with_src(a)
                .with_src(b)
                .with_src(c),
        )
    }
    /// Broadcast scalar `fa` into all lanes of `vd`.
    pub fn vsplat(&mut self, d: Reg, a: Reg) -> u32 {
        self.emit(Inst::new(Op::Vsplat).with_dst(d).with_src(a))
    }
    /// `fd = Σ lanes(va)`
    pub fn vredsum(&mut self, d: Reg, a: Reg) -> u32 {
        self.emit(Inst::new(Op::Vredsum).with_dst(d).with_src(a))
    }

    // ---- memory ---------------------------------------------------------

    /// Integer load of `size` bytes: `d = mem[base + offset]`.
    pub fn ld(&mut self, d: Reg, base: Reg, offset: i64, size: u8) -> u32 {
        self.emit(
            Inst::new(Op::Ld)
                .with_dst(d)
                .with_mem(MemRef::base_offset(base, offset, size)),
        )
    }

    /// Indexed integer load: `d = mem[base + index*scale + offset]`.
    pub fn ld_idx(
        &mut self,
        d: Reg,
        base: Reg,
        index: Reg,
        scale: u8,
        offset: i64,
        size: u8,
    ) -> u32 {
        self.emit(
            Inst::new(Op::Ld)
                .with_dst(d)
                .with_mem(MemRef::indexed(base, index, scale, offset, size)),
        )
    }

    /// Integer store of `size` bytes: `mem[base + offset] = s`.
    pub fn st(&mut self, s: Reg, base: Reg, offset: i64, size: u8) -> u32 {
        self.emit(
            Inst::new(Op::St)
                .with_src(s)
                .with_mem(MemRef::base_offset(base, offset, size)),
        )
    }

    /// Indexed integer store.
    pub fn st_idx(
        &mut self,
        s: Reg,
        base: Reg,
        index: Reg,
        scale: u8,
        offset: i64,
        size: u8,
    ) -> u32 {
        self.emit(
            Inst::new(Op::St)
                .with_src(s)
                .with_mem(MemRef::indexed(base, index, scale, offset, size)),
        )
    }

    /// FP load (8 bytes).
    pub fn fld(&mut self, d: Reg, base: Reg, offset: i64) -> u32 {
        self.emit(
            Inst::new(Op::Fld)
                .with_dst(d)
                .with_mem(MemRef::base_offset(base, offset, 8)),
        )
    }

    /// Indexed FP load.
    pub fn fld_idx(&mut self, d: Reg, base: Reg, index: Reg, scale: u8, offset: i64) -> u32 {
        self.emit(
            Inst::new(Op::Fld)
                .with_dst(d)
                .with_mem(MemRef::indexed(base, index, scale, offset, 8)),
        )
    }

    /// Single-precision FP load (4 bytes, widened to f64 in the register).
    pub fn flw(&mut self, d: Reg, base: Reg, offset: i64) -> u32 {
        self.emit(
            Inst::new(Op::Fld)
                .with_dst(d)
                .with_mem(MemRef::base_offset(base, offset, 4)),
        )
    }

    /// Indexed single-precision FP load.
    pub fn flw_idx(&mut self, d: Reg, base: Reg, index: Reg, scale: u8, offset: i64) -> u32 {
        self.emit(
            Inst::new(Op::Fld)
                .with_dst(d)
                .with_mem(MemRef::indexed(base, index, scale, offset, 4)),
        )
    }

    /// FP store (8 bytes).
    pub fn fst(&mut self, s: Reg, base: Reg, offset: i64) -> u32 {
        self.emit(
            Inst::new(Op::Fst)
                .with_src(s)
                .with_mem(MemRef::base_offset(base, offset, 8)),
        )
    }

    /// Single-precision FP store (4 bytes, narrowing from f64).
    pub fn fsw(&mut self, s: Reg, base: Reg, offset: i64) -> u32 {
        self.emit(
            Inst::new(Op::Fst)
                .with_src(s)
                .with_mem(MemRef::base_offset(base, offset, 4)),
        )
    }

    /// Indexed single-precision FP store.
    pub fn fsw_idx(&mut self, s: Reg, base: Reg, index: Reg, scale: u8, offset: i64) -> u32 {
        self.emit(
            Inst::new(Op::Fst)
                .with_src(s)
                .with_mem(MemRef::indexed(base, index, scale, offset, 4)),
        )
    }

    /// Indexed FP store.
    pub fn fst_idx(&mut self, s: Reg, base: Reg, index: Reg, scale: u8, offset: i64) -> u32 {
        self.emit(
            Inst::new(Op::Fst)
                .with_src(s)
                .with_mem(MemRef::indexed(base, index, scale, offset, 8)),
        )
    }

    /// SIMD load (16 bytes).
    pub fn vld(&mut self, d: Reg, base: Reg, offset: i64) -> u32 {
        self.emit(
            Inst::new(Op::Vld)
                .with_dst(d)
                .with_mem(MemRef::base_offset(base, offset, 16)),
        )
    }

    /// Indexed SIMD load.
    pub fn vld_idx(&mut self, d: Reg, base: Reg, index: Reg, scale: u8, offset: i64) -> u32 {
        self.emit(
            Inst::new(Op::Vld)
                .with_dst(d)
                .with_mem(MemRef::indexed(base, index, scale, offset, 16)),
        )
    }

    /// SIMD store (16 bytes).
    pub fn vst(&mut self, s: Reg, base: Reg, offset: i64) -> u32 {
        self.emit(
            Inst::new(Op::Vst)
                .with_src(s)
                .with_mem(MemRef::base_offset(base, offset, 16)),
        )
    }

    /// Indexed SIMD store.
    pub fn vst_idx(&mut self, s: Reg, base: Reg, index: Reg, scale: u8, offset: i64) -> u32 {
        self.emit(
            Inst::new(Op::Vst)
                .with_src(s)
                .with_mem(MemRef::indexed(base, index, scale, offset, 16)),
        )
    }

    // ---- control flow ----------------------------------------------------

    /// Branch to `l` if `a == b`.
    pub fn beq(&mut self, a: Reg, b: Reg, l: Label) -> u32 {
        self.emit_branch(Inst::new(Op::Beq).with_src(a).with_src(b), l)
    }
    /// Branch to `l` if `a == imm`.
    pub fn beq_imm(&mut self, a: Reg, imm: i64, l: Label) -> u32 {
        self.emit_branch(Inst::new(Op::Beq).with_src(a).with_imm(imm), l)
    }
    /// Branch to `l` if `a != b`.
    pub fn bne(&mut self, a: Reg, b: Reg, l: Label) -> u32 {
        self.emit_branch(Inst::new(Op::Bne).with_src(a).with_src(b), l)
    }
    /// Branch to `l` if `a != imm`.
    pub fn bne_imm(&mut self, a: Reg, imm: i64, l: Label) -> u32 {
        self.emit_branch(Inst::new(Op::Bne).with_src(a).with_imm(imm), l)
    }
    /// Branch to `l` if `a < b` (signed).
    pub fn blt(&mut self, a: Reg, b: Reg, l: Label) -> u32 {
        self.emit_branch(Inst::new(Op::Blt).with_src(a).with_src(b), l)
    }
    /// Branch to `l` if `a < imm` (signed).
    pub fn blt_imm(&mut self, a: Reg, imm: i64, l: Label) -> u32 {
        self.emit_branch(Inst::new(Op::Blt).with_src(a).with_imm(imm), l)
    }
    /// Branch to `l` if `a >= b` (signed).
    pub fn bge(&mut self, a: Reg, b: Reg, l: Label) -> u32 {
        self.emit_branch(Inst::new(Op::Bge).with_src(a).with_src(b), l)
    }
    /// Branch to `l` if `a >= imm` (signed).
    pub fn bge_imm(&mut self, a: Reg, imm: i64, l: Label) -> u32 {
        self.emit_branch(Inst::new(Op::Bge).with_src(a).with_imm(imm), l)
    }
    /// Unconditional jump to `l`.
    pub fn j(&mut self, l: Label) -> u32 {
        self.emit_branch(Inst::new(Op::J), l)
    }
    /// Call `l`: the return address is written to [`Reg::LINK`].
    pub fn call(&mut self, l: Label) -> u32 {
        self.emit_branch(Inst::new(Op::Jal).with_dst(Reg::LINK), l)
    }
    /// Indirect jump to the address in `a`.
    pub fn jr(&mut self, a: Reg) -> u32 {
        self.emit(Inst::new(Op::Jr).with_src(a))
    }
    /// Return: indirect jump through [`Reg::LINK`].
    pub fn ret(&mut self) -> u32 {
        self.jr(Reg::LINK)
    }

    // ---- misc -------------------------------------------------------------

    /// Memory barrier.
    pub fn fence(&mut self) -> u32 {
        self.emit(Inst::new(Op::Fence))
    }
    /// No-op.
    pub fn nop(&mut self) -> u32 {
        self.emit(Inst::new(Op::Nop))
    }
    /// Stop the program.
    pub fn halt(&mut self) -> u32 {
        self.emit(Inst::new(Op::Halt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_labels_are_patched() {
        let mut b = ProgramBuilder::new();
        let done = b.fwd_label();
        b.li(Reg::x(1), 5);
        b.beq_imm(Reg::x(1), 5, done); // index 1
        b.li(Reg::x(1), 99); // skipped
        b.bind(done);
        b.halt(); // index 3
        let p = b.build();
        assert_eq!(p.insts[1].target, Some(3));
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics_on_build() {
        let mut b = ProgramBuilder::new();
        let l = b.fwd_label();
        b.j(l);
        let _ = b.build();
    }

    #[test]
    fn backward_label_targets_loop_head() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::x(1), 0);
        let top = b.label(); // index 1
        b.addi(Reg::x(1), Reg::x(1), 1);
        b.blt_imm(Reg::x(1), 10, top);
        b.halt();
        let p = b.build();
        assert_eq!(p.insts[2].target, Some(1));
    }

    #[test]
    fn data_allocations_are_aligned_and_disjoint() {
        let mut b = ProgramBuilder::new();
        let a1 = b.alloc_data(vec![1, 2, 3]);
        let a2 = b.alloc_u64_slice(&[7, 8]);
        let a3 = b.alloc_zeroed(100);
        assert_eq!(a1 % 64, 0);
        assert_eq!(a2 % 64, 0);
        assert_eq!(a3 % 64, 0);
        assert!(a2 >= a1 + 3);
        assert!(a3 >= a2 + 16);
    }

    #[test]
    fn li_label_materializes_code_addresses() {
        let mut b = ProgramBuilder::new();
        let tramp = b.fwd_label();
        b.li_label(Reg::x(1), tramp); // index 0
        b.jr(Reg::x(1));
        b.bind(tramp);
        b.halt(); // index 2
        let p = b.build();
        assert_eq!(p.insts[0].imm, p.pc_of(2) as i64);
        // And the emulator actually lands there.
        let mut e = crate::emu::Emulator::new(&p);
        let t = e.run(10).unwrap();
        assert!(t.halted);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn pc_mapping_roundtrips() {
        let mut b = ProgramBuilder::new();
        b.nop();
        b.nop();
        b.halt();
        let p = b.build();
        for i in 0..p.len() as u32 {
            assert_eq!(p.idx_of(p.pc_of(i)), i);
        }
    }
}
