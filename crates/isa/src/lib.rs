//! # perfvec-isa
//!
//! A compact 64-bit RISC instruction set, an in-memory "assembler"
//! ([`ProgramBuilder`]), and a functional emulator ([`Emulator`]) that
//! executes programs and records a *dynamic instruction trace*
//! ([`DynInst`] records).
//!
//! This crate is the substrate that stands in for "SPEC CPU2017 compiled
//! to ARMv8" in the PerfVec reproduction: workloads are written against
//! this ISA, the emulator produces their logical execution traces, and the
//! timing simulator in `perfvec-sim` replays those traces under different
//! microarchitectures. Crucially — and this is the property PerfVec's
//! *instruction representation reuse* exploits — the logical trace of a
//! program depends only on the program and its input, never on the
//! microarchitecture.
//!
//! ## Quick tour
//!
//! ```
//! use perfvec_isa::{ProgramBuilder, Reg, Emulator};
//!
//! // Sum the integers 0..10 into x1.
//! let mut b = ProgramBuilder::new();
//! let (x1, x2) = (Reg::x(1), Reg::x(2));
//! b.li(x1, 0);
//! b.li(x2, 0);
//! let loop_top = b.label();
//! b.add(x1, x1, x2);
//! b.addi(x2, x2, 1);
//! b.blt_imm(x2, 10, loop_top);
//! b.halt();
//! let prog = b.build();
//!
//! let mut emu = Emulator::new(&prog);
//! let trace = emu.run(1_000_000).expect("program terminates");
//! assert_eq!(emu.read_x(x1), 45);
//! assert!(trace.len() > 10);
//! ```

pub mod dynrec;
pub mod emu;
pub mod inst;
pub mod mem;
pub mod op;
pub mod program;
pub mod reg;

pub use dynrec::{DynInst, Trace};
pub use emu::{EmuError, Emulator};
pub use inst::{Inst, MemRef, MAX_DST, MAX_SRC};
pub use mem::Memory;
pub use op::{Op, OpClass};
pub use program::{DataSegment, Label, Program, ProgramBuilder};
pub use reg::{Reg, RegClass};

/// Byte size of one encoded instruction (fixed-width ISA); instruction
/// fetch addresses advance by this much.
pub const INST_BYTES: u64 = 4;

/// Base virtual address of the code segment.
pub const CODE_BASE: u64 = 0x0001_0000;

/// Base virtual address of the statically allocated data region.
pub const DATA_BASE: u64 = 0x1000_0000;

/// Base virtual address of the downward-growing stack.
pub const STACK_BASE: u64 = 0x7fff_0000;
