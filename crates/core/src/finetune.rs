//! Learning representations of *unseen* microarchitectures
//! (Section V-A, Figure 5).
//!
//! The pre-trained foundation model is frozen; only new rows of the
//! microarchitecture table are learned, from a small tuning dataset
//! obtained by simulating a few *seen* programs on the target machines.
//! Because the foundation never changes, instruction representations are
//! computed once and cached — fine-tuning is orders of magnitude cheaper
//! than foundation training.

use crate::foundation::Foundation;
use crate::march_table::MarchTable;
use crate::refit::{try_solve_table, NormalEq};
use perfvec_ml::adam::Adam;
use perfvec_ml::parallel::{parallel_map, BatchStep};
use perfvec_ml::tensor::{axpy, dot};
use perfvec_trace::ProgramData;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Fine-tuning hyperparameters.
#[derive(Debug, Clone)]
pub struct FinetuneConfig {
    /// Training epochs over the cached representations.
    pub epochs: u32,
    /// Windows per gradient step.
    pub batch_size: usize,
    /// Number of instruction windows sampled from the tuning set.
    pub windows: usize,
    /// Learning rate (fixed; the run is short).
    pub lr: f32,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for FinetuneConfig {
    fn default() -> FinetuneConfig {
        FinetuneConfig {
            epochs: 30,
            batch_size: 64,
            windows: 4_000,
            lr: 5e-3,
            seed: 0xf1e7,
        }
    }
}

/// Cached instruction representations and their targets for fine-tuning.
pub struct CachedReps {
    /// `n x d` representations (frozen foundation outputs).
    pub reps: Vec<Vec<f32>>,
    /// `n x k_new` scaled targets.
    pub targets: Vec<Vec<f32>>,
}

/// Sample windows from the tuning programs and compute their (frozen)
/// representations once.
pub fn cache_representations(
    foundation: &Foundation,
    tuning: &[ProgramData],
    windows: usize,
    seed: u64,
) -> CachedReps {
    let mut pool: Vec<(usize, usize)> = Vec::new();
    for (p, d) in tuning.iter().enumerate() {
        for i in 0..d.len() {
            pool.push((p, i));
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    pool.shuffle(&mut rng);
    pool.truncate(windows.min(pool.len()));

    let scale = foundation.target_scale;
    let reps = parallel_map(pool.len(), |n| {
        let (p, i) = pool[n];
        foundation.repr_at(&tuning[p].features, i)
    });
    let targets = pool
        .iter()
        .map(|&(p, i)| {
            tuning[p]
                .targets
                .row(i)
                .iter()
                .map(|&t| t * scale)
                .collect()
        })
        .collect();
    CachedReps { reps, targets }
}

/// Closed-form ridge solution of the fine-tuning least squares over the
/// cached windows, against the *normalized* targets (`t_j / s_j`).
/// Returns `None` if the factorization fails (degenerate Gram matrix).
fn warm_start_table(
    reps: &[Vec<f32>],
    targets: &[Vec<f32>],
    col_scale: &[f32],
    k: usize,
    d: usize,
) -> Option<MarchTable> {
    let mut eq = NormalEq::zeros(d, k);
    let mut scaled = vec![0.0f32; k];
    for (r, t) in reps.iter().zip(targets) {
        for (s, (&tv, &cs)) in scaled.iter_mut().zip(t.iter().zip(col_scale)) {
            *s = tv / cs;
        }
        eq.accumulate(r, &scaled, 1.0);
    }
    try_solve_table(&eq, 1e-6)
}

/// Learn a fresh microarchitecture table (one row per tuning-target
/// machine) against the frozen foundation model. Returns the table and
/// the final training loss.
pub fn learn_march_reps(
    foundation: &Foundation,
    tuning: &[ProgramData],
    cfg: &FinetuneConfig,
) -> (MarchTable, f64) {
    assert!(!tuning.is_empty());
    let k = tuning[0].num_marches();
    let d = foundation.dim();
    let cached = cache_representations(foundation, tuning, cfg.windows, cfg.seed);
    let n = cached.reps.len();
    assert!(n > 0, "no tuning windows");

    // Per-machine target normalization (same conditioning trick as the
    // main trainer): train against t_j / s_j, then bake s_j back into
    // the learned row so the prediction contract is unchanged.
    let mut col_scale = vec![0.0f64; k];
    for t in &cached.targets {
        for (j, &v) in t.iter().enumerate() {
            col_scale[j] += v.abs() as f64;
        }
    }
    let col_scale: Vec<f32> = col_scale
        .iter()
        .map(|s| ((s / n as f64) as f32).max(1e-3))
        .collect();

    // Warm start: with the foundation frozen the problem is linear least
    // squares, so the closed-form ridge solution over the cached windows
    // is (nearly) the answer; the SGD epochs below only polish it. This
    // is what makes fine-tuning "orders of magnitude cheaper" in
    // practice — without it, the correlated representations of the
    // tuning windows condition the problem badly enough that Adam needs
    // thousands of epochs from a random start.
    let mut table = warm_start_table(&cached.reps, &cached.targets, &col_scale, k, d)
        .unwrap_or_else(|| MarchTable::new(k, d, cfg.seed ^ 0xf00d));
    let mut opt = Adam::new(table.num_params());
    let mut last_loss = f64::INFINITY;
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0dd);
    // The same deterministic lane-chunked gradient step the trainer
    // uses: fine-tuning results are bit-reproducible on any core count.
    let step = BatchStep::new();
    for _epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        for batch in order.chunks(cfg.batch_size) {
            let (loss, grads) =
                step.accumulate_items(batch.len(), table.num_params(), |b, grads| {
                    let i = batch[b];
                    let r = &cached.reps[i];
                    let t = &cached.targets[i];
                    let mut loss = 0.0f64;
                    let inv_k = 2.0 / k as f32;
                    for j in 0..k {
                        let err = dot(r, table.rep(j)) - t[j] / col_scale[j];
                        loss += (err * err) as f64;
                        axpy(inv_k * err, r, &mut grads[j * d..(j + 1) * d]);
                    }
                    loss / k as f64
                });
            let inv = 1.0 / batch.len() as f32;
            let mean_grads: Vec<f32> = grads.iter().map(|g| g * inv).collect();
            opt.step(&mut table.reps, &mean_grads, cfg.lr);
            epoch_loss += loss / batch.len() as f64;
            batches += 1;
        }
        last_loss = epoch_loss / batches.max(1) as f64;
    }
    for (j, &s) in col_scale.iter().enumerate() {
        for v in table.rep_mut(j) {
            *v *= s;
        }
    }
    (table, last_loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foundation::ArchSpec;
    use perfvec_ml::init::seeded_rng;
    use perfvec_trace::features::Matrix;
    use perfvec_trace::NUM_FEATURES;
    use rand::Rng;

    /// Synthetic tuning data whose targets are exactly linear in the
    /// (frozen, random) foundation representations: fine-tuning must
    /// recover the generating vectors.
    fn synthetic_tuning(
        foundation: &Foundation,
        k: usize,
        n: usize,
    ) -> (Vec<ProgramData>, Vec<Vec<f32>>) {
        let d = foundation.dim();
        let mut rng = seeded_rng(99);
        let true_reps: Vec<Vec<f32>> = (0..k)
            .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0f32)).collect())
            .collect();
        let mut features = Matrix::zeros(n, NUM_FEATURES);
        for i in 0..n {
            for j in 0..8 {
                features.row_mut(i)[j * 6] = rng.gen_range(0.0..1.0f32);
            }
        }
        let mut targets = Matrix::zeros(n, k);
        for i in 0..n {
            let r = foundation.repr_at(&features, i);
            for (j, tr) in true_reps.iter().enumerate() {
                // target in tenths; trainer rescales by target_scale
                targets.row_mut(i)[j] = dot(&r, tr) / foundation.target_scale;
            }
        }
        (
            vec![ProgramData {
                name: "synthetic".into(),
                features,
                targets,
            }],
            true_reps,
        )
    }

    #[test]
    fn recovers_linear_generating_behaviour() {
        // The learned rows need only match the generating vectors on the
        // subspace spanned by real representations, so the meaningful
        // check is *prediction* agreement on held-out windows.
        let foundation = Foundation::new(ArchSpec::default_lstm(8), 3, 0.5, 17);
        let (tuning, true_reps) = synthetic_tuning(&foundation, 3, 400);
        let cfg = FinetuneConfig {
            epochs: 60,
            windows: 300,
            lr: 1e-2,
            ..Default::default()
        };
        let (table, loss) = learn_march_reps(&foundation, &tuning, &cfg);
        assert!(
            loss < 0.3,
            "fine-tuning should fit a linear target, loss {loss}"
        );
        // Held-out windows: the last 50 instructions (sampling may have
        // seen some; representations still generalize within-distribution).
        let feats = &tuning[0].features;
        for i in 350..400 {
            let r = foundation.repr_at(feats, i);
            for (j, tr) in true_reps.iter().enumerate() {
                let truth = dot(&r, tr) as f64;
                let pred = dot(&r, table.rep(j)) as f64;
                assert!(
                    (pred - truth).abs() < 0.15 * (1.0 + truth.abs()),
                    "window {i} march {j}: pred {pred} vs truth {truth}"
                );
            }
        }
    }

    #[test]
    fn cache_respects_window_budget() {
        let foundation = Foundation::new(ArchSpec::default_lstm(8), 2, 0.1, 3);
        let (tuning, _) = synthetic_tuning(&foundation, 2, 300);
        let cached = cache_representations(&foundation, &tuning, 100, 1);
        assert_eq!(cached.reps.len(), 100);
        assert_eq!(cached.targets[0].len(), 2);
    }
}
