//! Joint training of the foundation model and the microarchitecture
//! representation table (Section IV).
//!
//! The gradient step is **batch-major by default**: each lane chunk of
//! the minibatch runs one `forward_batch`/`backward_batch` pair, so the
//! foundation's weight matrices are traversed once per timestep for the
//! whole chunk on vectorizable batch-major kernels, while the chunk's
//! representations are still *reused* across all `k` microarchitectures
//! (Section IV-B). The reuse × batch product is the training-cost win:
//! per-step cost stays near-constant in `k` *and* is amortized across
//! lanes. A scalar per-window step (`TrainConfig::batched = false`)
//! remains for ablation — by construction it produces **byte-identical
//! checkpoints** to the batched step at equal seeds, because both
//! accumulate gradients through the same deterministic lane-chunk tree
//! ([`BatchStep`]) and the batched kernels are bit-identical per
//! sequence to the scalar passes.
//!
//! Orthogonally, two training *procedures* are implemented:
//!
//! * **representation reuse** (the paper's optimization, Section IV-B):
//!   each sampled instruction window runs one forward/backward pass of
//!   the foundation model, and its representation is *reused* across all
//!   `k` microarchitectures — per-window cost is near-constant in `k`;
//! * **naive** (kept for the `train_opt` ablation): one forward/backward
//!   per (window, microarchitecture) pair — cost linear in `k`. The two
//!   procedures compute identical gradients (backward is linear in the
//!   upstream gradient), which a unit test asserts. The naive ablation
//!   always runs the scalar step.
//!
//! Long runs snapshot-and-resume: `TrainConfig::snapshot_every` writes a
//! [`crate::checkpoint::TrainSnapshot`] (model + table + Adam moments +
//! RNG state) at an epoch cadence, and `TrainConfig::resume_from`
//! restarts from one bit-identically.

use crate::foundation::{ArchSpec, Foundation};
use crate::march_table::MarchTable;
use perfvec_ml::adam::Adam;
use perfvec_ml::parallel::BatchStep;
use perfvec_ml::schedule::StepDecay;
use perfvec_ml::tensor::{axpy, dot};
use perfvec_trace::{fill_window, ProgramData, NUM_FEATURES};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Foundation architecture.
    pub arch: ArchSpec,
    /// Lookback context `c` (window = `c + 1`). Paper full scale: 255.
    pub context: usize,
    /// Training epochs (paper: 50).
    pub epochs: u32,
    /// Windows per gradient step.
    pub batch_size: usize,
    /// Instruction windows sampled per epoch.
    pub windows_per_epoch: usize,
    /// Windows used for validation (model selection).
    pub val_windows: usize,
    /// Learning-rate schedule (paper: 1e-3, x0.1 every 10 epochs).
    pub schedule: StepDecay,
    /// RNG seed (sampling + initialization).
    pub seed: u64,
    /// Representation reuse on (paper) or off (naive ablation mode).
    pub reuse: bool,
    /// Target scale: incremental latencies are multiplied by this during
    /// training for conditioning (0.1 converts 0.1 ns units to ns).
    pub target_scale: f32,
    /// Global-norm gradient clipping (rare cache-miss latency spikes
    /// produce outlier MSE gradients; clipping keeps LSTM training
    /// stable). `None` disables.
    pub clip_norm: Option<f32>,
    /// Batch-major gradient step (default) vs the scalar per-window
    /// step. Both produce byte-identical checkpoints at equal seeds;
    /// batched is faster. The naive (`reuse = false`) ablation always
    /// uses the scalar step.
    pub batched: bool,
    /// Write a resumable epoch snapshot to [`TrainConfig::snapshot_path`]
    /// every N epochs (`None` disables).
    pub snapshot_every: Option<u32>,
    /// Destination for epoch snapshots (required when
    /// [`TrainConfig::snapshot_every`] is set).
    pub snapshot_path: Option<std::path::PathBuf>,
    /// Resume a run from a snapshot written by a previous invocation
    /// with the same data, architecture, and hyperparameters; the
    /// resumed run continues bit-identically.
    pub resume_from: Option<std::path::PathBuf>,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            arch: ArchSpec::default_lstm(32),
            context: 12,
            epochs: 12,
            batch_size: 32,
            windows_per_epoch: 4_000,
            val_windows: 1_500,
            // The paper uses 1e-3 with x0.1 decay every 10 epochs on an
            // LSTM-2-256 trained for 50 epochs over 737M instructions;
            // at this reproduction's scale (far fewer steps, far smaller
            // models) a proportionally higher initial rate converges to
            // the same place.
            schedule: StepDecay {
                initial: 3e-3,
                gamma: 0.1,
                every: 10,
            },
            seed: 0xbeef,
            reuse: true,
            target_scale: 1.0,
            clip_norm: Some(5.0),
            batched: true,
            snapshot_every: None,
            snapshot_path: None,
            resume_from: None,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub train_loss: Vec<f64>,
    /// Validation loss per epoch.
    pub val_loss: Vec<f64>,
    /// Epoch whose parameters were kept (lowest validation loss).
    pub best_epoch: u32,
    /// Wall-clock seconds spent in training.
    pub wall_seconds: f64,
    /// Per-gradient-step wall-time distribution in microseconds
    /// (sample + gradients + optimizer update), from a log-bucketed
    /// [`perfvec_obs::Histogram`]. Observational only: timestamps are
    /// taken around the step, never inside the numeric path. All-zero
    /// when obs recording is globally disabled.
    pub step_time_us: perfvec_obs::HistogramSummary,
    /// Gradient steps per second over time spent inside steps (excludes
    /// validation and snapshot I/O; 0.0 when no steps ran).
    pub steps_per_sec: f64,
}

/// A trained foundation model plus the learned microarchitecture table.
pub struct TrainedFoundation {
    /// The instruction-representation model.
    pub foundation: Foundation,
    /// Representations of the `k` training microarchitectures.
    pub march_table: MarchTable,
    /// Training history.
    pub report: TrainReport,
}

/// A `(program, instruction)` window reference into the dataset pool.
type Item = (usize, usize);

fn build_pool(data: &[ProgramData]) -> Vec<Item> {
    let mut pool = Vec::new();
    for (p, d) in data.iter().enumerate() {
        for i in 0..d.len() {
            pool.push((p, i));
        }
    }
    pool
}

/// The per-window loss and gradient computation shared by training and
/// validation. Returns the mean squared error over the k machines on
/// normalized targets (`t_ij * target_scale * inv_scale[j]`); when
/// `grads` is `Some`, accumulates model gradients into
/// `grads[..model_len]` and table gradients into the remainder.
#[allow(clippy::too_many_arguments)]
fn window_pass(
    foundation: &Foundation,
    table: &MarchTable,
    data: &ProgramData,
    i: usize,
    inv_scale: &[f32],
    buf: &mut [f32],
    preds: &mut [f32],
    grads: Option<&mut [f32]>,
    model_len: usize,
    reuse: bool,
) -> f64 {
    let w = foundation.window();
    let k = table.k;
    let dim = table.dim;
    fill_window(&data.features, i, foundation.context, buf);
    let scale = foundation.target_scale;
    let targets = data.targets.row(i);

    match grads {
        // Naive: a full forward/backward per microarchitecture.
        Some(grads) if !reuse => {
            let mut loss = 0.0f64;
            let inv_k = 2.0 / k as f32;
            for j in 0..k {
                let (r, cache) = foundation.model.forward(buf, w);
                let pred = dot(&r, table.rep(j));
                let err = pred - targets[j] * scale * inv_scale[j];
                loss += (err * err) as f64;
                let (g_model, g_table) = grads.split_at_mut(model_len);
                axpy(inv_k * err, &r, &mut g_table[j * dim..(j + 1) * dim]);
                let mut dr = vec![0.0f32; dim];
                axpy(inv_k * err, table.rep(j), &mut dr);
                foundation.model.backward(buf, w, &cache, &dr, g_model);
            }
            loss / k as f64
        }
        // Representation reuse (or pure evaluation): one forward,
        // shared by all k machines.
        grads => {
            let (r, cache) = foundation.model.forward(buf, w);
            table.predict_all(&r, preds);
            let mut loss = 0.0f64;
            let inv_k = 2.0 / k as f32;
            if let Some(grads) = grads {
                let mut dr = vec![0.0f32; dim];
                let (g_model, g_table) = grads.split_at_mut(model_len);
                for j in 0..k {
                    let err = preds[j] - targets[j] * scale * inv_scale[j];
                    loss += (err * err) as f64;
                    // dL/dM_j and the reused dL/dR contribution
                    axpy(inv_k * err, &r, &mut g_table[j * dim..(j + 1) * dim]);
                    axpy(inv_k * err, table.rep(j), &mut dr);
                }
                foundation.model.backward(buf, w, &cache, &dr, g_model);
            } else {
                for j in 0..k {
                    let err = preds[j] - targets[j] * scale * inv_scale[j];
                    loss += (err * err) as f64;
                }
            }
            loss / k as f64
        }
    }
}

/// The batch-major twin of [`window_pass`] (reuse mode): one lane chunk
/// of windows through a single `forward_batch`/`backward_batch` pair,
/// with each lane's representation reused across all `k` machines.
///
/// Accumulates exactly the gradients of per-item `window_pass` calls in
/// item order — bit-identically: the batched forward/backward are
/// bit-identical per sequence to the scalar passes, the table gradients
/// and upstream `dR` are computed lane-by-lane in the scalar order, and
/// the disjoint model/table gradient regions make the interleaving
/// difference invisible.
fn batched_chunk_pass(
    foundation: &Foundation,
    table: &MarchTable,
    data: &[ProgramData],
    items: &[Item],
    inv_scale: &[f32],
    grads: &mut [f32],
    model_len: usize,
) -> f64 {
    let w = foundation.window();
    let k = table.k;
    let dim = table.dim;
    let b = items.len();
    let scale = foundation.target_scale;
    let mut xs = vec![0.0f32; b * w * NUM_FEATURES];
    for (li, &(p, i)) in items.iter().enumerate() {
        fill_window(
            &data[p].features,
            i,
            foundation.context,
            &mut xs[li * w * NUM_FEATURES..(li + 1) * w * NUM_FEATURES],
        );
    }
    let (reps, cache) = foundation.model.forward_batch_cached(&xs, w, b);
    let mut douts = vec![0.0f32; b * dim];
    let mut preds = vec![0.0f32; k];
    let mut loss = 0.0f64;
    let inv_k = 2.0 / k as f32;
    let (g_model, g_table) = grads.split_at_mut(model_len);
    for (li, &(p, i)) in items.iter().enumerate() {
        let r = &reps[li * dim..(li + 1) * dim];
        table.predict_all(r, &mut preds);
        let targets = data[p].targets.row(i);
        let dr = &mut douts[li * dim..(li + 1) * dim];
        let mut item_loss = 0.0f64;
        for j in 0..k {
            let err = preds[j] - targets[j] * scale * inv_scale[j];
            item_loss += (err * err) as f64;
            axpy(inv_k * err, r, &mut g_table[j * dim..(j + 1) * dim]);
            axpy(inv_k * err, table.rep(j), dr);
        }
        loss += item_loss / k as f64;
    }
    foundation
        .model
        .backward_batch(&xs, w, b, &cache, &douts, g_model);
    loss
}

/// Train a foundation model + microarchitecture table on the given
/// per-program datasets (all sharing the same `k` machines).
pub fn train_foundation(data: &[ProgramData], cfg: &TrainConfig) -> TrainedFoundation {
    assert!(!data.is_empty(), "training requires at least one program");
    let k = data[0].num_marches();
    assert!(
        data.iter().all(|d| d.num_marches() == k),
        "inconsistent microarchitecture count"
    );
    // Fail a misconfigured snapshot setup before any epoch runs, not at
    // the first snapshot boundary hours into a long run.
    assert!(
        cfg.snapshot_every.is_none() || cfg.snapshot_path.is_some(),
        "snapshot_every requires snapshot_path"
    );

    let start = std::time::Instant::now();
    let mut foundation = Foundation::new(cfg.arch, cfg.context, cfg.target_scale, cfg.seed);
    let mut table = MarchTable::new(k, cfg.arch.dim, cfg.seed ^ 0x7ab1e);
    let model_len = foundation.model.num_params();
    let total_len = model_len + table.num_params();

    let mut params = foundation.model.get_params();
    params.extend_from_slice(&table.reps);
    let mut opt = Adam::new(total_len);

    let pool = build_pool(data);
    // Per-machine target normalization: machines differ wildly in mean
    // incremental latency (frequency, IPC, memory technology), so each
    // target column is normalized by its mean magnitude for training and
    // the scale is baked back into the learned table rows afterwards —
    // `R . (s_j M'_j) = s_j (R . M'_j)`, so compositionality and the
    // prediction contract are untouched.
    let col_scale = column_scales(data, cfg.target_scale);
    let inv_scale: Vec<f32> = col_scale.iter().map(|s| 1.0 / s).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5a5a);
    // Held-out validation windows (fixed for the whole run).
    let mut shuffled = pool.clone();
    shuffled.shuffle(&mut rng);
    let val_n = cfg.val_windows.min(shuffled.len() / 10);
    let val_items: Vec<Item> = shuffled[..val_n].to_vec();
    let train_items: Vec<Item> = shuffled[val_n..].to_vec();

    let mut report = TrainReport {
        train_loss: Vec::new(),
        val_loss: Vec::new(),
        best_epoch: 0,
        wall_seconds: 0.0,
        step_time_us: perfvec_obs::HistogramSummary::default(),
        steps_per_sec: 0.0,
    };
    let step_hist = perfvec_obs::Histogram::new();
    let mut step_secs = 0.0f64;
    let mut steps_taken = 0u64;
    let mut best_val = f64::INFINITY;
    let mut best_params = params.clone();
    let mut start_epoch = 0u32;

    // Resume: overwrite the freshly-initialized state with the
    // snapshot's. The pool/validation split above was already rebuilt
    // deterministically from the seed; the RNG state restore then
    // places the sampling stream exactly where the snapshot run left
    // it, so the continued run is bit-identical to an uninterrupted
    // one.
    if let Some(path) = &cfg.resume_from {
        let snap = crate::checkpoint::load_snapshot(path)
            .unwrap_or_else(|e| panic!("cannot resume from {}: {e}", path.display()));
        assert_eq!(
            snap.spec, cfg.arch,
            "snapshot architecture differs from TrainConfig::arch"
        );
        assert_eq!(
            snap.foundation.context, cfg.context,
            "snapshot context differs from TrainConfig::context"
        );
        assert_eq!(
            snap.foundation.model.num_params() + snap.table.num_params(),
            total_len,
            "snapshot parameter count mismatch"
        );
        assert!(
            snap.next_epoch <= cfg.epochs,
            "snapshot is beyond this run's epoch budget"
        );
        params[..model_len].copy_from_slice(&snap.foundation.model.get_params());
        params[model_len..].copy_from_slice(&snap.table.reps);
        foundation.model.set_params(&params[..model_len]);
        table.reps.copy_from_slice(&params[model_len..]);
        opt = Adam::from_state(snap.adam_m, snap.adam_v, snap.adam_t);
        rng = StdRng::from_state(snap.rng_state);
        start_epoch = snap.next_epoch;
        best_val = snap.best_val;
        best_params = snap.best_params;
        report.best_epoch = snap.best_epoch;
        report.train_loss = snap.train_loss;
        report.val_loss = snap.val_loss;
    }

    let w = foundation.window();
    let step = BatchStep::new();
    // The naive (no-reuse) ablation has no batched form: it exists to
    // measure the per-(window, machine) cost the paper optimizes away.
    let use_batched = cfg.batched && cfg.reuse;
    for epoch in start_epoch..cfg.epochs {
        let lr = cfg.schedule.lr(epoch);
        // Sample this epoch's windows.
        let mut epoch_items: Vec<Item> = Vec::with_capacity(cfg.windows_per_epoch);
        for _ in 0..cfg.windows_per_epoch {
            epoch_items.push(train_items[rand::Rng::gen_range(&mut rng, 0..train_items.len())]);
        }
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for batch in epoch_items.chunks(cfg.batch_size) {
            let t_step = std::time::Instant::now();
            let (loss, grads) = if use_batched {
                step.accumulate(batch.len(), total_len, |range, grads| {
                    batched_chunk_pass(
                        &foundation,
                        &table,
                        data,
                        &batch[range],
                        &inv_scale,
                        grads,
                        model_len,
                    )
                })
            } else {
                step.accumulate_items(batch.len(), total_len, |b, grads| {
                    let (p, i) = batch[b];
                    let mut buf = vec![0.0f32; w * NUM_FEATURES];
                    let mut preds = vec![0.0f32; k];
                    window_pass(
                        &foundation,
                        &table,
                        &data[p],
                        i,
                        &inv_scale,
                        &mut buf,
                        &mut preds,
                        Some(grads),
                        model_len,
                        cfg.reuse,
                    )
                })
            };
            // Mean over the batch, then optional global-norm clipping.
            let inv = 1.0 / batch.len() as f32;
            let mut mean_grads: Vec<f32> = grads.iter().map(|g| g * inv).collect();
            if let Some(max_norm) = cfg.clip_norm {
                let norm = mean_grads
                    .iter()
                    .map(|g| (*g as f64) * (*g as f64))
                    .sum::<f64>()
                    .sqrt() as f32;
                if norm > max_norm {
                    let s = max_norm / norm;
                    for g in &mut mean_grads {
                        *g *= s;
                    }
                }
            }
            opt.step(&mut params, &mean_grads, lr);
            foundation.model.set_params(&params[..model_len]);
            table.reps.copy_from_slice(&params[model_len..]);
            epoch_loss += loss / batch.len() as f64;
            batches += 1;
            let dt = t_step.elapsed();
            step_hist.record(dt.as_micros() as u64);
            step_secs += dt.as_secs_f64();
            steps_taken += 1;
        }
        report.train_loss.push(epoch_loss / batches.max(1) as f64);

        // Validation.
        let val_loss = validation_loss(&foundation, &table, data, &val_items, &inv_scale);
        report.val_loss.push(val_loss);
        if val_loss < best_val {
            best_val = val_loss;
            best_params = params.clone();
            report.best_epoch = epoch;
        }

        // Epoch snapshot (end-of-epoch state: next run continues at
        // `epoch + 1` with the RNG exactly where it stands now).
        if let Some(every) = cfg.snapshot_every {
            if every > 0 && (epoch + 1) % every == 0 {
                let path = cfg
                    .snapshot_path
                    .as_ref()
                    .expect("snapshot_every requires snapshot_path");
                let (m, v, t) = opt.state();
                let mut snap_foundation =
                    Foundation::new(cfg.arch, cfg.context, cfg.target_scale, 0);
                snap_foundation.model.set_params(&params[..model_len]);
                let snap = crate::checkpoint::TrainSnapshot {
                    foundation: snap_foundation,
                    spec: cfg.arch,
                    table: MarchTable::from_rows(k, cfg.arch.dim, params[model_len..].to_vec()),
                    next_epoch: epoch + 1,
                    adam_m: m.to_vec(),
                    adam_v: v.to_vec(),
                    adam_t: t,
                    rng_state: rng.state(),
                    best_val,
                    best_params: best_params.clone(),
                    best_epoch: report.best_epoch,
                    train_loss: report.train_loss.clone(),
                    val_loss: report.val_loss.clone(),
                };
                crate::checkpoint::save_snapshot(&snap, path)
                    .unwrap_or_else(|e| panic!("cannot write snapshot {}: {e}", path.display()));
            }
        }
    }

    foundation.model.set_params(&best_params[..model_len]);
    table.reps.copy_from_slice(&best_params[model_len..]);
    // Bake the normalization scales into the table rows so that
    // `dot(R, M_j) = target_scale * t_tenths` downstream.
    for (j, &s) in col_scale.iter().enumerate() {
        for v in table.rep_mut(j) {
            *v *= s;
        }
    }
    report.wall_seconds = start.elapsed().as_secs_f64();
    report.step_time_us = step_hist.summary();
    report.steps_per_sec = if step_secs > 0.0 {
        steps_taken as f64 / step_secs
    } else {
        0.0
    };
    TrainedFoundation {
        foundation,
        march_table: table,
        report,
    }
}

/// Mean magnitude of each target column over the dataset (after
/// `target_scale`), floored away from zero.
pub fn column_scales(data: &[ProgramData], target_scale: f32) -> Vec<f32> {
    let k = data[0].num_marches();
    let mut sums = vec![0.0f64; k];
    let mut n = 0u64;
    for d in data {
        for i in 0..d.len() {
            for (j, &t) in d.targets.row(i).iter().enumerate() {
                sums[j] += (t * target_scale).abs() as f64;
            }
            n += 1;
        }
    }
    sums.iter()
        .map(|s| ((s / n.max(1) as f64) as f32).max(1e-3))
        .collect()
}

/// Mean per-window validation loss (on normalized targets).
pub fn validation_loss(
    foundation: &Foundation,
    table: &MarchTable,
    data: &[ProgramData],
    items: &[Item],
    inv_scale: &[f32],
) -> f64 {
    if items.is_empty() {
        return 0.0;
    }
    let w = foundation.window();
    let k = table.k;
    let (loss, _) = BatchStep::new().accumulate_items(items.len(), 0, |b, _| {
        let (p, i) = items[b];
        let mut buf = vec![0.0f32; w * NUM_FEATURES];
        let mut preds = vec![0.0f32; k];
        window_pass(
            foundation, table, &data[p], i, inv_scale, &mut buf, &mut preds, None, 0, true,
        )
    });
    loss / items.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::build_program_data;
    use perfvec_sim::sample::predefined_configs;
    use perfvec_trace::features::FeatureMask;
    use perfvec_workloads::by_name;

    fn tiny_dataset() -> Vec<ProgramData> {
        let configs = predefined_configs();
        ["specrand", "xz"]
            .iter()
            .map(|n| {
                let t = by_name(n).unwrap().trace(1_500);
                build_program_data(n, &t, &configs, FeatureMask::Full)
            })
            .collect()
    }

    fn tiny_cfg() -> TrainConfig {
        TrainConfig {
            arch: ArchSpec::default_lstm(8),
            context: 4,
            epochs: 3,
            batch_size: 16,
            windows_per_epoch: 300,
            val_windows: 100,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn training_learns_program_totals() {
        // Window-level MSE is dominated by rare latency spikes and
        // improves slowly; what PerfVec needs is accurate program
        // *totals*, where MSE's bias-correctness makes per-window errors
        // cancel. Train briefly and check totals beat the untrained
        // model by a wide margin.
        use crate::compose::program_representation;
        use crate::predict::predict_total_tenths;
        let data = tiny_dataset();
        let mut cfg = tiny_cfg();
        cfg.epochs = 16;
        cfg.windows_per_epoch = 1_000;
        cfg.schedule = StepDecay {
            initial: 1e-2,
            gamma: 0.5,
            every: 6,
        };
        let trained = train_foundation(&data, &cfg);

        let mean_total_err = |f: &Foundation, table: &MarchTable| -> f64 {
            let mut errs = Vec::new();
            for d in &data {
                let rp = program_representation(f, &d.features);
                for j in 0..table.k {
                    let truth = d.total_time(j);
                    let pred = predict_total_tenths(&rp, table.rep(j), f.target_scale);
                    errs.push((pred - truth).abs() / truth);
                }
            }
            errs.iter().sum::<f64>() / errs.len() as f64
        };
        let untrained = Foundation::new(cfg.arch, cfg.context, cfg.target_scale, cfg.seed);
        let untrained_table = MarchTable::new(data[0].num_marches(), cfg.arch.dim, 1);
        let base_err = mean_total_err(&untrained, &untrained_table);
        let err = mean_total_err(&trained.foundation, &trained.march_table);
        assert!(
            err < 0.35 && err < 0.5 * base_err,
            "trained total error {err:.3} should beat untrained {base_err:.3}"
        );
        // And the fixed validation loss must not diverge.
        let v = &trained.report.val_loss;
        assert!(v.last().unwrap().is_finite());
        assert!(v.iter().cloned().fold(f64::INFINITY, f64::min) <= v[0]);
    }

    #[test]
    fn reuse_and_naive_compute_identical_gradients() {
        let data = tiny_dataset();
        let foundation = Foundation::new(ArchSpec::default_lstm(8), 4, 0.1, 3);
        let table = MarchTable::new(data[0].num_marches(), 8, 5);
        let model_len = foundation.model.num_params();
        let total = model_len + table.num_params();
        let w = foundation.window();
        let mut buf = vec![0.0f32; w * NUM_FEATURES];
        let mut preds = vec![0.0f32; table.k];
        let mut g_reuse = vec![0.0f32; total];
        let mut g_naive = vec![0.0f32; total];
        let inv_scale = vec![1.0f32; table.k];
        let l1 = window_pass(
            &foundation,
            &table,
            &data[0],
            42,
            &inv_scale,
            &mut buf,
            &mut preds,
            Some(&mut g_reuse),
            model_len,
            true,
        );
        let l2 = window_pass(
            &foundation,
            &table,
            &data[0],
            42,
            &inv_scale,
            &mut buf,
            &mut preds,
            Some(&mut g_naive),
            model_len,
            false,
        );
        assert!((l1 - l2).abs() < 1e-9 * (1.0 + l1.abs()));
        for (a, b) in g_reuse.iter().zip(&g_naive) {
            assert!((a - b).abs() < 1e-4 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn validation_selects_best_epoch() {
        let data = tiny_dataset();
        let trained = train_foundation(&data, &tiny_cfg());
        let best = trained.report.best_epoch as usize;
        let v = &trained.report.val_loss;
        assert_eq!(v.iter().cloned().fold(f64::INFINITY, f64::min), v[best]);
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let data = tiny_dataset();
        let mut cfg = tiny_cfg();
        cfg.epochs = 2;
        let a = train_foundation(&data, &cfg);
        let b = train_foundation(&data, &cfg);
        assert_eq!(a.report.train_loss, b.report.train_loss);
        assert_eq!(a.march_table.reps, b.march_table.reps);
    }

    /// Full train() runs through the batched and the scalar step must
    /// produce byte-identical checkpoints at the same seed — the
    /// refactor's core acceptance criterion.
    #[test]
    fn batched_and_scalar_steps_produce_byte_identical_checkpoints() {
        use crate::checkpoint::encode;
        let data = tiny_dataset();
        let mut cfg = tiny_cfg();
        cfg.epochs = 2;
        cfg.windows_per_epoch = 200;
        // A batch size above the lane width and not a multiple of it,
        // so full chunks, a partial chunk, and the cross-chunk
        // reduction are all exercised.
        cfg.batch_size = 40;
        cfg.batched = true;
        let batched = train_foundation(&data, &cfg);
        cfg.batched = false;
        let scalar = train_foundation(&data, &cfg);
        assert_eq!(
            batched.report.train_loss, scalar.report.train_loss,
            "training losses diverged between steps"
        );
        assert_eq!(batched.report.val_loss, scalar.report.val_loss);
        assert_eq!(batched.report.best_epoch, scalar.report.best_epoch);
        let b_bytes = encode(&batched.foundation, cfg.arch, Some(&batched.march_table));
        let s_bytes = encode(&scalar.foundation, cfg.arch, Some(&scalar.march_table));
        assert_eq!(b_bytes, s_bytes, "checkpoints must match byte-for-byte");
    }

    /// The batched/scalar byte-identity must hold for a fallback
    /// (window-only) architecture riding the per-sequence batch path
    /// too, not just the recurrent kernels.
    #[test]
    fn batched_scalar_identity_holds_for_fallback_architectures() {
        use crate::checkpoint::encode;
        use crate::foundation::ArchKind;
        let data = tiny_dataset();
        let mut cfg = tiny_cfg();
        cfg.arch = ArchSpec {
            kind: ArchKind::Mlp,
            layers: 2,
            dim: 8,
        };
        cfg.epochs = 1;
        cfg.windows_per_epoch = 120;
        cfg.batched = true;
        let batched = train_foundation(&data, &cfg);
        cfg.batched = false;
        let scalar = train_foundation(&data, &cfg);
        assert_eq!(
            encode(&batched.foundation, cfg.arch, Some(&batched.march_table)),
            encode(&scalar.foundation, cfg.arch, Some(&scalar.march_table))
        );
    }

    /// Snapshot at epoch 2 of 4, resume, and compare against an
    /// uninterrupted 4-epoch run: the final checkpoint and the full
    /// report history must be bit-identical.
    #[test]
    fn snapshot_resume_restarts_bit_identically() {
        use crate::checkpoint::encode;
        let data = tiny_dataset();
        let dir = std::env::temp_dir().join("perfvec_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap_path = dir.join("epoch.pfs");

        let mut straight_cfg = tiny_cfg();
        straight_cfg.epochs = 4;
        straight_cfg.windows_per_epoch = 200;
        let straight = train_foundation(&data, &straight_cfg);

        // Phase 1: stop after 2 epochs, snapshotting every 2.
        let mut phase1 = straight_cfg.clone();
        phase1.epochs = 2;
        phase1.snapshot_every = Some(2);
        phase1.snapshot_path = Some(snap_path.clone());
        train_foundation(&data, &phase1);

        // Phase 2: resume to the full 4 epochs.
        let mut phase2 = straight_cfg.clone();
        phase2.resume_from = Some(snap_path.clone());
        let resumed = train_foundation(&data, &phase2);

        assert_eq!(resumed.report.train_loss, straight.report.train_loss);
        assert_eq!(resumed.report.val_loss, straight.report.val_loss);
        assert_eq!(resumed.report.best_epoch, straight.report.best_epoch);
        assert_eq!(
            encode(
                &resumed.foundation,
                straight_cfg.arch,
                Some(&resumed.march_table)
            ),
            encode(
                &straight.foundation,
                straight_cfg.arch,
                Some(&straight.march_table)
            ),
            "resumed checkpoint must be byte-identical to the uninterrupted run"
        );
        std::fs::remove_file(&snap_path).ok();
    }
}
