//! The microarchitecture representation table.
//!
//! Microarchitecture *sampling* (Section IV-A) replaces a full
//! configuration-to-representation model during foundation training:
//! the representations `M_1..M_k` of the `k` sampled machines are
//! trained directly as a `k x d` table. The table rows are exactly the
//! vectors whose dot product with a program representation predicts
//! execution time.

use perfvec_ml::init::{seeded_rng, uniform};
use perfvec_ml::tensor::dot;

/// A `k x d` table of learnable microarchitecture representations.
#[derive(Debug, Clone)]
pub struct MarchTable {
    /// Number of microarchitectures.
    pub k: usize,
    /// Representation dimensionality.
    pub dim: usize,
    /// Row-major `k x d` representations.
    pub reps: Vec<f32>,
}

impl MarchTable {
    /// Randomly initialized table.
    pub fn new(k: usize, dim: usize, seed: u64) -> MarchTable {
        let mut reps = vec![0.0f32; k * dim];
        uniform(&mut reps, 0.2, &mut seeded_rng(seed));
        MarchTable { k, dim, reps }
    }

    /// Table with given rows (`reps.len() == k * dim`).
    pub fn from_rows(k: usize, dim: usize, reps: Vec<f32>) -> MarchTable {
        assert_eq!(reps.len(), k * dim);
        MarchTable { k, dim, reps }
    }

    /// Representation of microarchitecture `j`.
    #[inline]
    pub fn rep(&self, j: usize) -> &[f32] {
        &self.reps[j * self.dim..(j + 1) * self.dim]
    }

    /// Mutable representation of microarchitecture `j`.
    #[inline]
    pub fn rep_mut(&mut self, j: usize) -> &mut [f32] {
        &mut self.reps[j * self.dim..(j + 1) * self.dim]
    }

    /// Predicted (scaled) latencies of a representation on all `k`
    /// machines: `out[j] = r . M_j`.
    pub fn predict_all(&self, r: &[f32], out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.k);
        for (j, o) in out.iter_mut().enumerate() {
            *o = dot(r, self.rep(j));
        }
    }

    /// Number of trainable parameters — the quantity the paper contrasts
    /// against a hypothetical microarchitecture representation *model*
    /// (Section IV-A: `77 x 256 = 19.7k` vs ~1.3 M).
    pub fn num_params(&self) -> usize {
        self.reps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_independent() {
        let mut t = MarchTable::new(3, 4, 1);
        t.rep_mut(1).copy_from_slice(&[9.0, 9.0, 9.0, 9.0]);
        assert_ne!(t.rep(0), t.rep(1));
        assert_eq!(t.rep(1), &[9.0, 9.0, 9.0, 9.0]);
    }

    #[test]
    fn predict_all_is_per_row_dot() {
        let t = MarchTable::from_rows(2, 3, vec![1.0, 0.0, 0.0, 0.0, 2.0, 0.0]);
        let mut out = vec![0.0f32; 2];
        t.predict_all(&[5.0, 7.0, 9.0], &mut out);
        assert_eq!(out, vec![5.0, 14.0]);
    }

    #[test]
    fn paper_scale_parameter_count() {
        // 77 microarchitectures x 256 dims = 19.7k parameters.
        let t = MarchTable::new(77, 256, 0);
        assert_eq!(t.num_params(), 19_712);
    }

    #[test]
    fn seeded_init_is_reproducible() {
        assert_eq!(MarchTable::new(4, 8, 7).reps, MarchTable::new(4, 8, 7).reps);
        assert_ne!(MarchTable::new(4, 8, 7).reps, MarchTable::new(4, 8, 8).reps);
    }
}
