//! The foundation model: the instruction-representation model of
//! Section III, wrapped with its context length and target scaling.
//!
//! Once trained it is microarchitecture-independent and program-
//! independent: it maps any instruction (plus its `c` predecessors,
//! described by the 51 features of Table I) to a `d`-dimensional
//! representation whose dot product with a microarchitecture
//! representation predicts the instruction's incremental latency.

use perfvec_ml::seq::SeqModel;
use perfvec_trace::features::Matrix;
use perfvec_trace::{fill_window, NUM_FEATURES};

/// Architecture family (the Figure 6 ablation set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchKind {
    /// Flattened-window linear regression.
    Linear,
    /// Flattened-window MLP.
    Mlp,
    /// Unidirectional LSTM (the paper's default).
    Lstm,
    /// Bidirectional LSTM.
    BiLstm,
    /// GRU.
    Gru,
    /// Transformer encoder.
    Transformer,
}

/// An architecture specification: family, depth, representation width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchSpec {
    /// Family.
    pub kind: ArchKind,
    /// Layer count (ignored by `Linear`).
    pub layers: usize,
    /// Representation dimensionality `d`.
    pub dim: usize,
}

impl ArchSpec {
    /// The paper's default foundation architecture, scaled to `dim`
    /// (`LSTM-2-256` at full scale).
    pub fn default_lstm(dim: usize) -> ArchSpec {
        ArchSpec {
            kind: ArchKind::Lstm,
            layers: 2,
            dim,
        }
    }

    /// Instantiate the model for a given window length.
    pub fn build(&self, window: usize, seed: u64) -> SeqModel {
        match self.kind {
            ArchKind::Linear => SeqModel::linear(NUM_FEATURES, self.dim, window, seed),
            ArchKind::Mlp => SeqModel::mlp(NUM_FEATURES, self.dim, window, seed),
            ArchKind::Lstm => SeqModel::lstm(NUM_FEATURES, self.dim, self.layers, seed),
            ArchKind::BiLstm => SeqModel::bilstm(NUM_FEATURES, self.dim, self.layers, seed),
            ArchKind::Gru => SeqModel::gru(NUM_FEATURES, self.dim, self.layers, seed),
            ArchKind::Transformer => {
                SeqModel::transformer(NUM_FEATURES, self.dim, self.layers, seed)
            }
        }
    }
}

/// A (possibly trained) instruction-representation model.
pub struct Foundation {
    /// The sequence model.
    pub model: SeqModel,
    /// Number of preceding instructions in the input window (the paper's
    /// `c`; 255 at full scale).
    pub context: usize,
    /// Scale applied to incremental-latency targets during training
    /// (predictions divide by it to return to 0.1 ns units).
    pub target_scale: f32,
}

impl Foundation {
    /// Fresh, untrained foundation model.
    pub fn new(spec: ArchSpec, context: usize, target_scale: f32, seed: u64) -> Foundation {
        Foundation {
            model: spec.build(context + 1, seed),
            context,
            target_scale,
        }
    }

    /// Window length (`c + 1`).
    pub fn window(&self) -> usize {
        self.context + 1
    }

    /// Representation dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.model.out_dim()
    }

    /// Representation of instruction `i` of a feature matrix, using the
    /// training-time window (zero-padded at the trace head).
    pub fn repr_at(&self, features: &Matrix, i: usize) -> Vec<f32> {
        let w = self.window();
        let mut buf = vec![0.0f32; w * NUM_FEATURES];
        fill_window(features, i, self.context, &mut buf);
        let (r, _) = self.model.forward(&buf, w);
        r
    }

    /// Short description, e.g. `LSTM-2-256 (c=255)`.
    pub fn describe(&self) -> String {
        format!("{} (c={})", self.model.describe(), self.context)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_arch_specs_build() {
        for kind in [
            ArchKind::Linear,
            ArchKind::Mlp,
            ArchKind::Lstm,
            ArchKind::BiLstm,
            ArchKind::Gru,
            ArchKind::Transformer,
        ] {
            let spec = ArchSpec {
                kind,
                layers: 2,
                dim: 8,
            };
            let f = Foundation::new(spec, 3, 0.1, 7);
            assert_eq!(f.dim(), 8);
            assert_eq!(f.window(), 4);
        }
    }

    #[test]
    fn repr_at_handles_trace_head_padding() {
        let f = Foundation::new(ArchSpec::default_lstm(8), 4, 0.1, 1);
        let mut m = Matrix::zeros(10, NUM_FEATURES);
        for i in 0..10 {
            m.row_mut(i)[0] = 1.0;
        }
        // Instruction 0 has an all-padding context; must still work.
        let r0 = f.repr_at(&m, 0);
        let r9 = f.repr_at(&m, 9);
        assert_eq!(r0.len(), 8);
        assert!(r0.iter().all(|v| v.is_finite()));
        assert_ne!(
            r0, r9,
            "different contexts should give different representations"
        );
    }

    #[test]
    fn identical_windows_give_identical_representations() {
        let f = Foundation::new(ArchSpec::default_lstm(8), 2, 0.1, 3);
        let mut m = Matrix::zeros(20, NUM_FEATURES);
        for i in 0..20 {
            m.row_mut(i)[i % 5] = 1.0; // period-5 pattern
        }
        // Windows ending at 10 and 15 see identical feature content.
        assert_eq!(f.repr_at(&m, 10), f.repr_at(&m, 15));
    }
}
