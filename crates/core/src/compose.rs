//! Composing program representations from instruction representations
//! (Section III-B).
//!
//! The paper's central theorem: with a bias-free linear predictor and an
//! integrable target (incremental latency), the representation of a
//! program is the **sum** of the representations of its executed
//! instructions, so total time is `R_p . M`.
//!
//! Representation generation is embarrassingly parallel across
//! instructions — the property the paper highlights for GPU/HPC
//! execution. Here the windowed generator fans out over rayon; a
//! stateful streaming generator (LSTM only) is provided as the fast
//! single-pass alternative, with chunk-level parallelism and warmup
//! context.

use crate::foundation::Foundation;
use perfvec_ml::parallel::parallel_map;
use perfvec_trace::features::Matrix;
use perfvec_trace::{fill_window, NUM_FEATURES};

/// Per-instruction representations for `range` (windowed, exact
/// training-time semantics); returns an `len x d` matrix.
pub fn instruction_representations(
    foundation: &Foundation,
    features: &Matrix,
    range: std::ops::Range<usize>,
) -> Matrix {
    let d = foundation.dim();
    let idx: Vec<usize> = range.collect();
    let rows = parallel_map(idx.len(), |n| foundation.repr_at(features, idx[n]));
    let mut m = Matrix::zeros(idx.len(), d);
    for (i, r) in rows.iter().enumerate() {
        m.row_mut(i).copy_from_slice(r);
    }
    m
}

/// Instructions summed per accumulator before folding into the total.
///
/// Shared by the windowed, blocked, and batched generators: identical
/// chunking (and therefore identical floating-point summation order) is
/// what makes their results bit-identical to one another.
pub const SUM_CHUNK: usize = 2_048;

/// The program representation `R_p = sum_i R_i` over the whole trace,
/// computed with the exact windowed semantics. Chunk-parallel: each
/// rayon task sums a contiguous block of instruction representations.
pub fn program_representation(foundation: &Foundation, features: &Matrix) -> Vec<f32> {
    let d = foundation.dim();
    let n = features.rows;
    if n == 0 {
        return vec![0.0; d];
    }
    let chunk = SUM_CHUNK;
    let n_chunks = n.div_ceil(chunk);
    let partials = parallel_map(n_chunks, |c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        let w = foundation.window();
        let mut buf = vec![0.0f32; w * NUM_FEATURES];
        let mut acc = vec![0.0f32; d];
        for i in lo..hi {
            fill_window(features, i, foundation.context, &mut buf);
            let (r, _) = foundation.model.forward(&buf, w);
            for (a, &v) in acc.iter_mut().zip(&r) {
                *a += v;
            }
        }
        acc
    });
    let mut total = vec![0.0f32; d];
    for p in partials {
        for (t, &v) in total.iter_mut().zip(&p) {
            *t += v;
        }
    }
    total
}

/// Coalesced batched representations for several programs at once: the
/// windows of all `programs` form one stream (program-major,
/// instructions ascending), processed `block` windows at a time through
/// [`perfvec_ml::seq::SeqModel::forward_batch`] — one batched pass can
/// carry windows from several programs, which is the inference server's
/// micro-batching coalescing itself.
///
/// Single-threaded by design (the server's worker pool provides the
/// parallelism). Because each batched window is bit-identical to a
/// `forward` call, per-program windows are visited in ascending order,
/// and the summation replays [`program_representation`]'s exact
/// [`SUM_CHUNK`] structure, every returned representation is
/// **bit-identical** to `program_representation` on that program alone
/// — for any `block` size and any grouping of programs.
pub fn program_representations_coalesced(
    foundation: &Foundation,
    programs: &[&Matrix],
    block: usize,
) -> Vec<Vec<f32>> {
    let d = foundation.dim();
    let w = foundation.window();
    let block = block.max(1);
    let mut totals: Vec<Vec<f32>> = programs.iter().map(|_| vec![0.0f32; d]).collect();
    let mut accs: Vec<Vec<f32>> = programs.iter().map(|_| vec![0.0f32; d]).collect();
    let mut seqbuf = vec![0.0f32; block * w * NUM_FEATURES];
    // (program, instruction) pending in the current window block.
    let mut pending: Vec<(usize, usize)> = Vec::with_capacity(block);
    for (req, feats) in programs.iter().enumerate() {
        for i in 0..feats.rows {
            let s = pending.len();
            fill_window(
                feats,
                i,
                foundation.context,
                &mut seqbuf[s * w * NUM_FEATURES..(s + 1) * w * NUM_FEATURES],
            );
            pending.push((req, i));
            if pending.len() == block {
                run_window_block(
                    foundation,
                    &mut pending,
                    &seqbuf,
                    programs,
                    &mut accs,
                    &mut totals,
                );
            }
        }
    }
    run_window_block(
        foundation,
        &mut pending,
        &seqbuf,
        programs,
        &mut accs,
        &mut totals,
    );
    totals
}

fn run_window_block(
    foundation: &Foundation,
    pending: &mut Vec<(usize, usize)>,
    seqbuf: &[f32],
    programs: &[&Matrix],
    accs: &mut [Vec<f32>],
    totals: &mut [Vec<f32>],
) {
    if pending.is_empty() {
        return;
    }
    let d = foundation.dim();
    let w = foundation.window();
    let b = pending.len();
    // One code path for every block size: batch 1's batch-major layout
    // coincides with sequence-major, and forward_batch is bit-identical
    // per sequence to the scalar forward.
    let outs = foundation
        .model
        .forward_batch(&seqbuf[..b * w * NUM_FEATURES], w, b);
    for (s, &(req, i)) in pending.iter().enumerate() {
        for (a, &v) in accs[req].iter_mut().zip(&outs[s * d..(s + 1) * d]) {
            *a += v;
        }
        // Fold the chunk accumulator into the total at chunk
        // boundaries and at the end of the program's trace.
        let n = programs[req].rows;
        if (i + 1) % SUM_CHUNK == 0 || i + 1 == n {
            for (t, a) in totals[req].iter_mut().zip(accs[req].iter_mut()) {
                *t += *a;
                *a = 0.0;
            }
        }
    }
    pending.clear();
}

/// [`program_representation`] computed single-threaded through the
/// batched forward pass — the single-program case of
/// [`program_representations_coalesced`], with the same bit-identity
/// guarantee.
pub fn program_representation_blocked(
    foundation: &Foundation,
    features: &Matrix,
    block: usize,
) -> Vec<f32> {
    program_representations_coalesced(foundation, &[features], block)
        .pop()
        .expect("one program in, one representation out")
}

/// Fast single-pass streaming representation (stateful recurrent
/// foundation models — LSTM and GRU): one stateful step per instruction
/// instead of a full window.
///
/// The trace is split into chunks processed in parallel; each chunk
/// replays `warmup` preceding instructions to rebuild recurrent state
/// before contributing, so the result approaches the windowed sum as
/// `warmup` grows past the training context. Returns `None` for
/// window-only architectures (see
/// [`perfvec_ml::seq::SeqModel::supports_streaming`]).
pub fn program_representation_streaming(
    foundation: &Foundation,
    features: &Matrix,
    chunk: usize,
    warmup: usize,
) -> Option<Vec<f32>> {
    let model = &foundation.model;
    model.supports_streaming().then_some(())?;
    let d = foundation.dim();
    let n = features.rows;
    if n == 0 {
        return Some(vec![0.0; d]);
    }
    let chunk = chunk.max(1);
    let n_chunks = n.div_ceil(chunk);
    let partials = parallel_map(n_chunks, |c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        let start = lo.saturating_sub(warmup);
        let mut state = model
            .stream_state()
            .expect("streaming support checked above");
        let mut out = vec![0.0f32; d];
        let mut acc = vec![0.0f32; d];
        for i in start..hi {
            model.stream_step(&mut state, features.row(i), &mut out);
            if i >= lo {
                for (a, &v) in acc.iter_mut().zip(&out) {
                    *a += v;
                }
            }
        }
        acc
    });
    let mut total = vec![0.0f32; d];
    for p in partials {
        for (t, &v) in total.iter_mut().zip(&p) {
            *t += v;
        }
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foundation::{ArchKind, ArchSpec};

    fn toy_features(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, NUM_FEATURES);
        for i in 0..n {
            m.row_mut(i)[i % 7] = 1.0;
            m.row_mut(i)[45] = (i as f32 * 0.01).fract();
        }
        m
    }

    fn lstm_foundation() -> Foundation {
        Foundation::new(ArchSpec::default_lstm(8), 3, 0.1, 11)
    }

    #[test]
    fn program_representation_is_sum_of_instruction_representations() {
        let f = lstm_foundation();
        let feats = toy_features(100);
        let rp = program_representation(&f, &feats);
        let per = instruction_representations(&f, &feats, 0..100);
        let mut sum = vec![0.0f32; 8];
        for i in 0..100 {
            for (s, &v) in sum.iter_mut().zip(per.row(i)) {
                *s += v;
            }
        }
        for (a, b) in rp.iter().zip(&sum) {
            assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn empty_trace_has_zero_representation() {
        let f = lstm_foundation();
        let feats = Matrix::zeros(0, NUM_FEATURES);
        assert_eq!(program_representation(&f, &feats), vec![0.0; 8]);
    }

    #[test]
    fn streaming_approaches_windowed_with_enough_warmup() {
        // The window must cover the LSTM's effective memory for the two
        // modes to agree: with the standard forget-gate-bias init the
        // per-step retention is ~sigmoid(1) ≈ 0.73, so a context of 12
        // leaves < 3% of long-range state outside the window, while the
        // module-default context of 3 would leave ~40%.
        let f = Foundation::new(ArchSpec::default_lstm(8), 12, 0.1, 11);
        let feats = toy_features(400);
        let windowed = program_representation(&f, &feats);
        let streamed = program_representation_streaming(&f, &feats, 64, 32).unwrap();
        // Streaming carries longer context than the window, so the two
        // differ, but they must be strongly correlated in scale/sign.
        let dot: f32 = windowed.iter().zip(&streamed).map(|(a, b)| a * b).sum();
        let na: f32 = windowed.iter().map(|a| a * a).sum::<f32>().sqrt();
        let nb: f32 = streamed.iter().map(|b| b * b).sum::<f32>().sqrt();
        assert!(
            dot / (na * nb) > 0.9,
            "cosine similarity too low: {}",
            dot / (na * nb)
        );
    }

    #[test]
    fn streaming_chunking_is_consistent() {
        // With warmup >= the full prefix, chunked == single-chunk.
        let f = lstm_foundation();
        let feats = toy_features(120);
        let one = program_representation_streaming(&f, &feats, 400, 0).unwrap();
        let many = program_representation_streaming(&f, &feats, 30, 120).unwrap();
        for (a, b) in one.iter().zip(&many) {
            assert!((a - b).abs() < 1e-4 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn window_only_models_do_not_stream_but_recurrent_ones_do() {
        for (kind, streams) in [
            (ArchKind::Mlp, false),
            (ArchKind::Transformer, false),
            (ArchKind::BiLstm, false),
            (ArchKind::Lstm, true),
            (ArchKind::Gru, true),
        ] {
            let f = Foundation::new(
                ArchSpec {
                    kind,
                    layers: 1,
                    dim: 8,
                },
                3,
                0.1,
                1,
            );
            assert_eq!(
                program_representation_streaming(&f, &toy_features(10), 4, 2).is_some(),
                streams,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn gru_streaming_chunking_is_consistent() {
        // The GRU fast path must show the same chunk-invariance as the
        // LSTM one: with warmup >= the full prefix, chunked == one pass.
        let f = Foundation::new(
            ArchSpec {
                kind: ArchKind::Gru,
                layers: 2,
                dim: 8,
            },
            3,
            0.1,
            11,
        );
        let feats = toy_features(120);
        let one = program_representation_streaming(&f, &feats, 400, 0).unwrap();
        let many = program_representation_streaming(&f, &feats, 30, 120).unwrap();
        for (a, b) in one.iter().zip(&many) {
            assert!((a - b).abs() < 1e-4 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn gru_streaming_approaches_windowed_with_enough_warmup() {
        let f = Foundation::new(
            ArchSpec {
                kind: ArchKind::Gru,
                layers: 2,
                dim: 8,
            },
            12,
            0.1,
            11,
        );
        let feats = toy_features(400);
        let windowed = program_representation(&f, &feats);
        let streamed = program_representation_streaming(&f, &feats, 64, 48).unwrap();
        let dot: f32 = windowed.iter().zip(&streamed).map(|(a, b)| a * b).sum();
        let na: f32 = windowed.iter().map(|a| a * a).sum::<f32>().sqrt();
        let nb: f32 = streamed.iter().map(|b| b * b).sum::<f32>().sqrt();
        assert!(
            dot / (na * nb) > 0.9,
            "cosine similarity too low: {}",
            dot / (na * nb)
        );
    }

    #[test]
    fn blocked_representation_is_bit_identical_for_every_block_size() {
        // The inference server relies on this exact equality for its
        // served-equals-offline parity guarantee, across architectures
        // (specialized batched paths and the generic fallback alike).
        for kind in [ArchKind::Lstm, ArchKind::Gru, ArchKind::Transformer] {
            let f = Foundation::new(
                ArchSpec {
                    kind,
                    layers: 2,
                    dim: 8,
                },
                3,
                0.1,
                7,
            );
            let feats = toy_features(100);
            let reference = program_representation(&f, &feats);
            for block in [1usize, 7, 32, 256] {
                let blocked = program_representation_blocked(&f, &feats, block);
                assert_eq!(reference, blocked, "{kind:?} block {block}");
            }
        }
    }

    #[test]
    fn coalesced_representations_are_bit_identical_per_program() {
        // Windows of several programs share forward_batch blocks; each
        // program's representation must still equal the windowed
        // reference exactly — the serving engine's parity foundation.
        for kind in [ArchKind::Lstm, ArchKind::Gru] {
            let f = Foundation::new(
                ArchSpec {
                    kind,
                    layers: 2,
                    dim: 8,
                },
                3,
                0.1,
                7,
            );
            let feats: Vec<Matrix> = (0..5).map(|s| toy_features(40 + 13 * s)).collect();
            let refs: Vec<&Matrix> = feats.iter().collect();
            for block in [1usize, 3, 8, 64] {
                let reps = program_representations_coalesced(&f, &refs, block);
                for (m, rep) in feats.iter().zip(&reps) {
                    assert_eq!(
                        rep,
                        &program_representation(&f, m),
                        "{kind:?} block {block}"
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_representation_spans_chunk_boundaries_exactly() {
        // More instructions than SUM_CHUNK forces the chunk-partial fold
        // to run; a block size that does not divide the chunk exercises
        // ragged block tails.
        let f = lstm_foundation();
        let feats = toy_features(SUM_CHUNK + 513);
        assert_eq!(
            program_representation(&f, &feats),
            program_representation_blocked(&f, &feats, 30)
        );
    }

    #[test]
    fn blocked_representation_of_empty_trace_is_zero() {
        let f = lstm_foundation();
        let feats = Matrix::zeros(0, NUM_FEATURES);
        assert_eq!(program_representation_blocked(&f, &feats, 8), vec![0.0; 8]);
    }

    #[test]
    fn representation_is_additive_over_trace_concatenation() {
        // R(ab) == R(a) + R(b) when the window is fully contained (no
        // cross-boundary context): verify with context 0.
        let f = Foundation::new(ArchSpec::default_lstm(8), 0, 0.1, 2);
        let a = toy_features(37);
        let b = toy_features(53);
        let mut ab = Matrix::zeros(90, NUM_FEATURES);
        for i in 0..37 {
            ab.row_mut(i).copy_from_slice(a.row(i));
        }
        for i in 0..53 {
            ab.row_mut(37 + i).copy_from_slice(b.row(i));
        }
        let ra = program_representation(&f, &a);
        let rb = program_representation(&f, &b);
        let rab = program_representation(&f, &ab);
        for i in 0..8 {
            assert!(
                (rab[i] - ra[i] - rb[i]).abs() < 1e-3 * (1.0 + rab[i].abs()),
                "dim {i}: {} vs {} + {}",
                rab[i],
                ra[i],
                rb[i]
            );
        }
    }
}
