//! Composing program representations from instruction representations
//! (Section III-B).
//!
//! The paper's central theorem: with a bias-free linear predictor and an
//! integrable target (incremental latency), the representation of a
//! program is the **sum** of the representations of its executed
//! instructions, so total time is `R_p . M`.
//!
//! Representation generation is embarrassingly parallel across
//! instructions — the property the paper highlights for GPU/HPC
//! execution. Here the windowed generator fans out over rayon; a
//! stateful streaming generator (LSTM only) is provided as the fast
//! single-pass alternative, with chunk-level parallelism and warmup
//! context.

use crate::foundation::Foundation;
use perfvec_ml::parallel::parallel_map;
use perfvec_trace::features::Matrix;
use perfvec_trace::{fill_window, NUM_FEATURES};

/// Per-instruction representations for `range` (windowed, exact
/// training-time semantics); returns an `len x d` matrix.
pub fn instruction_representations(
    foundation: &Foundation,
    features: &Matrix,
    range: std::ops::Range<usize>,
) -> Matrix {
    let d = foundation.dim();
    let idx: Vec<usize> = range.collect();
    let rows = parallel_map(idx.len(), |n| foundation.repr_at(features, idx[n]));
    let mut m = Matrix::zeros(idx.len(), d);
    for (i, r) in rows.iter().enumerate() {
        m.row_mut(i).copy_from_slice(r);
    }
    m
}

/// The program representation `R_p = sum_i R_i` over the whole trace,
/// computed with the exact windowed semantics. Chunk-parallel: each
/// rayon task sums a contiguous block of instruction representations.
pub fn program_representation(foundation: &Foundation, features: &Matrix) -> Vec<f32> {
    let d = foundation.dim();
    let n = features.rows;
    if n == 0 {
        return vec![0.0; d];
    }
    let chunk = 2_048usize;
    let n_chunks = n.div_ceil(chunk);
    let partials = parallel_map(n_chunks, |c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        let w = foundation.window();
        let mut buf = vec![0.0f32; w * NUM_FEATURES];
        let mut acc = vec![0.0f32; d];
        for i in lo..hi {
            fill_window(features, i, foundation.context, &mut buf);
            let (r, _) = foundation.model.forward(&buf, w);
            for (a, &v) in acc.iter_mut().zip(&r) {
                *a += v;
            }
        }
        acc
    });
    let mut total = vec![0.0f32; d];
    for p in partials {
        for (t, &v) in total.iter_mut().zip(&p) {
            *t += v;
        }
    }
    total
}

/// Fast single-pass streaming representation (LSTM foundation models
/// only): one stateful step per instruction instead of a full window.
///
/// The trace is split into chunks processed in parallel; each chunk
/// replays `warmup` preceding instructions to rebuild recurrent state
/// before contributing, so the result approaches the windowed sum as
/// `warmup` grows past the training context. Returns `None` for
/// non-streaming architectures.
pub fn program_representation_streaming(
    foundation: &Foundation,
    features: &Matrix,
    chunk: usize,
    warmup: usize,
) -> Option<Vec<f32>> {
    let lstm = foundation.model.as_lstm()?;
    let d = foundation.dim();
    let n = features.rows;
    if n == 0 {
        return Some(vec![0.0; d]);
    }
    let chunk = chunk.max(1);
    let n_chunks = n.div_ceil(chunk);
    let partials = parallel_map(n_chunks, |c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        let start = lo.saturating_sub(warmup);
        let mut state = lstm.zero_state();
        let mut out = vec![0.0f32; d];
        let mut acc = vec![0.0f32; d];
        for i in start..hi {
            lstm.step(&mut state, features.row(i), &mut out);
            if i >= lo {
                for (a, &v) in acc.iter_mut().zip(&out) {
                    *a += v;
                }
            }
        }
        acc
    });
    let mut total = vec![0.0f32; d];
    for p in partials {
        for (t, &v) in total.iter_mut().zip(&p) {
            *t += v;
        }
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foundation::{ArchKind, ArchSpec};

    fn toy_features(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, NUM_FEATURES);
        for i in 0..n {
            m.row_mut(i)[i % 7] = 1.0;
            m.row_mut(i)[45] = (i as f32 * 0.01).fract();
        }
        m
    }

    fn lstm_foundation() -> Foundation {
        Foundation::new(ArchSpec::default_lstm(8), 3, 0.1, 11)
    }

    #[test]
    fn program_representation_is_sum_of_instruction_representations() {
        let f = lstm_foundation();
        let feats = toy_features(100);
        let rp = program_representation(&f, &feats);
        let per = instruction_representations(&f, &feats, 0..100);
        let mut sum = vec![0.0f32; 8];
        for i in 0..100 {
            for (s, &v) in sum.iter_mut().zip(per.row(i)) {
                *s += v;
            }
        }
        for (a, b) in rp.iter().zip(&sum) {
            assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn empty_trace_has_zero_representation() {
        let f = lstm_foundation();
        let feats = Matrix::zeros(0, NUM_FEATURES);
        assert_eq!(program_representation(&f, &feats), vec![0.0; 8]);
    }

    #[test]
    fn streaming_approaches_windowed_with_enough_warmup() {
        // The window must cover the LSTM's effective memory for the two
        // modes to agree: with the standard forget-gate-bias init the
        // per-step retention is ~sigmoid(1) ≈ 0.73, so a context of 12
        // leaves < 3% of long-range state outside the window, while the
        // module-default context of 3 would leave ~40%.
        let f = Foundation::new(ArchSpec::default_lstm(8), 12, 0.1, 11);
        let feats = toy_features(400);
        let windowed = program_representation(&f, &feats);
        let streamed = program_representation_streaming(&f, &feats, 64, 32).unwrap();
        // Streaming carries longer context than the window, so the two
        // differ, but they must be strongly correlated in scale/sign.
        let dot: f32 = windowed.iter().zip(&streamed).map(|(a, b)| a * b).sum();
        let na: f32 = windowed.iter().map(|a| a * a).sum::<f32>().sqrt();
        let nb: f32 = streamed.iter().map(|b| b * b).sum::<f32>().sqrt();
        assert!(dot / (na * nb) > 0.9, "cosine similarity too low: {}", dot / (na * nb));
    }

    #[test]
    fn streaming_chunking_is_consistent() {
        // With warmup >= the full prefix, chunked == single-chunk.
        let f = lstm_foundation();
        let feats = toy_features(120);
        let one = program_representation_streaming(&f, &feats, 400, 0).unwrap();
        let many = program_representation_streaming(&f, &feats, 30, 120).unwrap();
        for (a, b) in one.iter().zip(&many) {
            assert!((a - b).abs() < 1e-4 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn non_lstm_models_do_not_stream() {
        let f = Foundation::new(
            ArchSpec { kind: ArchKind::Gru, layers: 1, dim: 8 },
            3,
            0.1,
            1,
        );
        assert!(program_representation_streaming(&f, &toy_features(10), 4, 2).is_none());
    }

    #[test]
    fn representation_is_additive_over_trace_concatenation() {
        // R(ab) == R(a) + R(b) when the window is fully contained (no
        // cross-boundary context): verify with context 0.
        let f = Foundation::new(ArchSpec::default_lstm(8), 0, 0.1, 2);
        let a = toy_features(37);
        let b = toy_features(53);
        let mut ab = Matrix::zeros(90, NUM_FEATURES);
        for i in 0..37 {
            ab.row_mut(i).copy_from_slice(a.row(i));
        }
        for i in 0..53 {
            ab.row_mut(37 + i).copy_from_slice(b.row(i));
        }
        let ra = program_representation(&f, &a);
        let rb = program_representation(&f, &b);
        let rab = program_representation(&f, &ab);
        for i in 0..8 {
            assert!(
                (rab[i] - ra[i] - rb[i]).abs() < 1e-3 * (1.0 + rab[i].abs()),
                "dim {i}: {} vs {} + {}",
                rab[i],
                ra[i],
                rb[i]
            );
        }
    }
}
