//! The microarchitecture representation *model* for design-space
//! exploration (Section VI-A).
//!
//! Unlike the table of [`crate::march_table`], this is a small MLP
//! mapping configuration parameters to representations, so it
//! generalizes to configurations never simulated. It is trained exactly
//! like fine-tuning — foundation frozen, instruction representations
//! cached — but the gradient flows through the MLP instead of directly
//! into table rows.

use crate::finetune::CachedReps;
use perfvec_ml::adam::Adam;
use perfvec_ml::mlp::Mlp;
use perfvec_ml::tensor::{axpy, dot};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyperparameters for the microarchitecture representation
/// model.
#[derive(Debug, Clone)]
pub struct MarchModelConfig {
    /// Hidden width of the 2-layer MLP (the paper uses a 2-layer MLP
    /// with ~4.4k parameters for the cache DSE).
    pub hidden: usize,
    /// Training epochs.
    pub epochs: u32,
    /// Windows per gradient step.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for MarchModelConfig {
    fn default() -> MarchModelConfig {
        MarchModelConfig {
            hidden: 16,
            epochs: 40,
            batch_size: 64,
            lr: 3e-3,
            seed: 0xd5e,
        }
    }
}

/// A trained parameters-to-representation model.
pub struct MarchModel {
    /// The underlying MLP (`param_dim -> hidden -> d`).
    pub mlp: Mlp,
    /// The training-time target scale (inherited from the foundation).
    pub target_scale: f32,
}

impl MarchModel {
    /// Representation of a configuration parameter vector.
    pub fn rep(&self, params: &[f32]) -> Vec<f32> {
        self.mlp.forward(params).0
    }

    /// Predicted total time (0.1 ns) for a program representation on a
    /// configuration.
    pub fn predict_total_tenths(&self, prog_rep: &[f32], config_params: &[f32]) -> f64 {
        dot(prog_rep, &self.rep(config_params)) as f64 / self.target_scale as f64
    }
}

/// Train the representation model: `cached` holds frozen instruction
/// representations and their scaled targets on the `k` training
/// configurations, whose parameter vectors are `march_params` (one per
/// target column). Returns the model and the final epoch loss.
pub fn train_march_model(
    cached: &CachedReps,
    march_params: &[Vec<f32>],
    rep_dim: usize,
    target_scale: f32,
    cfg: &MarchModelConfig,
) -> (MarchModel, f64) {
    let k = march_params.len();
    assert!(k > 0 && !cached.reps.is_empty());
    assert_eq!(cached.targets[0].len(), k);
    let in_dim = march_params[0].len();
    let mut mlp = Mlp::new(&[in_dim, cfg.hidden, rep_dim], cfg.seed);
    let mut opt = Adam::new(mlp.params().len());

    let n = cached.reps.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xabc);
    let mut last_loss = f64::INFINITY;
    for _epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for batch in order.chunks(cfg.batch_size) {
            // Forward the MLP once per configuration for this batch.
            let forwards: Vec<_> = march_params.iter().map(|p| mlp.forward(p)).collect();
            // Accumulate dL/dM_j over the batch.
            let mut d_reps = vec![vec![0.0f32; rep_dim]; k];
            let mut loss = 0.0f64;
            let inv = 2.0 / (k * batch.len()) as f32;
            for &i in batch {
                let r = &cached.reps[i];
                let t = &cached.targets[i];
                for j in 0..k {
                    let err = dot(r, &forwards[j].0) - t[j];
                    loss += (err * err) as f64;
                    axpy(inv * err, r, &mut d_reps[j]);
                }
            }
            // Backprop through the MLP for every configuration.
            let mut grads = vec![0.0f32; mlp.params().len()];
            for (j, p) in march_params.iter().enumerate() {
                mlp.backward(p, &forwards[j].1, &d_reps[j], &mut grads);
            }
            let mut params = mlp.params().to_vec();
            opt.step(&mut params, &grads, cfg.lr);
            mlp.params_mut().copy_from_slice(&params);
            epoch_loss += loss / (k * batch.len()) as f64;
            batches += 1;
        }
        last_loss = epoch_loss / batches.max(1) as f64;
    }
    (MarchModel { mlp, target_scale }, last_loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfvec_ml::init::seeded_rng;
    use rand::Rng;

    /// Synthetic task: representations are random, targets are generated
    /// by a *smooth* function of a scalar configuration parameter. The
    /// model must interpolate to configurations between training points.
    fn synthetic(k: usize, n: usize, d: usize) -> (CachedReps, Vec<Vec<f32>>) {
        let mut rng = seeded_rng(5);
        let reps: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0f32)).collect())
            .collect();
        let march_params: Vec<Vec<f32>> = (0..k).map(|j| vec![j as f32 / (k - 1) as f32]).collect();
        // True latent rep: M(x) = [1 + x, 2 - x, x, ...]
        let true_rep = |x: f32| -> Vec<f32> {
            (0..d)
                .map(|i| ((i as f32 + 1.0) * 0.3) * (1.0 - x) + (i as f32 * 0.2) * x)
                .collect()
        };
        let targets: Vec<Vec<f32>> = reps
            .iter()
            .map(|r| {
                march_params
                    .iter()
                    .map(|p| dot(r, &true_rep(p[0])))
                    .collect()
            })
            .collect();
        (CachedReps { reps, targets }, march_params)
    }

    #[test]
    fn fits_and_interpolates_a_smooth_configuration_response() {
        let (cached, params) = synthetic(6, 400, 8);
        let cfg = MarchModelConfig {
            epochs: 300,
            lr: 5e-3,
            ..Default::default()
        };
        let (model, loss) = train_march_model(&cached, &params, 8, 1.0, &cfg);
        assert!(loss < 5e-3, "training loss {loss}");
        // Interpolation: predict at x = 0.3 (between training points 0.2 and 0.4).
        let r = &cached.reps[0];
        let interp = model.predict_total_tenths(r, &[0.3]);
        let lo = model.predict_total_tenths(r, &[0.2]);
        let hi = model.predict_total_tenths(r, &[0.4]);
        assert!(
            interp >= lo.min(hi) - 0.3 && interp <= lo.max(hi) + 0.3,
            "interpolated {interp} outside [{lo}, {hi}] band"
        );
    }

    #[test]
    fn rep_dimensionality_matches() {
        let (cached, params) = synthetic(3, 50, 4);
        let (model, _) = train_march_model(&cached, &params, 4, 0.1, &MarchModelConfig::default());
        assert_eq!(model.rep(&params[0]).len(), 4);
    }
}
