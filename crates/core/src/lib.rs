//! # perfvec
//!
//! A Rust reproduction of **PerfVec** (Li, Flynn, Hoisie — SC 2024):
//! learning generalizable program and microarchitecture representations
//! for performance modeling.
//!
//! The core idea: a **foundation model** maps every executed instruction
//! (plus a window of predecessors, described by 51
//! microarchitecture-independent features) to a d-dimensional
//! representation `R_i`; a **microarchitecture representation** `M` is
//! learned per machine; the **performance predictor** is a bias-free
//! linear model, so an instruction's incremental latency is `R_i . M`
//! and — because incremental latencies sum to total time — a whole
//! program's execution time is `(sum_i R_i) . M`. Program and
//! microarchitecture representations are thereby *independent*: either
//! can be reused against any counterpart.
//!
//! ## Crate map
//!
//! * [`foundation`] — instruction-representation model (+ architecture zoo)
//! * [`march_table`] — learnable representations of sampled machines
//! * [`trainer`] — joint training with microarchitecture sampling and
//!   instruction-representation reuse (Section IV)
//! * [`compose`] — program representation = sum of instruction
//!   representations, windowed or streaming, rayon-parallel
//! * [`predict`] — dot-product prediction and the paper's error metrics
//! * [`finetune`] — representations of unseen machines with the
//!   foundation frozen (Section V-A)
//! * [`march_model`] — configuration-to-representation MLP for DSE
//! * [`dse`] — the cache-geometry design-space exploration of Section VI-A
//! * [`analysis`] — program-variant sweeps (loop tiling, Section VI-B)
//! * [`data`] — dataset generation against the `perfvec-sim` simulator
//!
//! ## End-to-end sketch
//!
//! ```no_run
//! use perfvec::data::build_program_data;
//! use perfvec::trainer::{train_foundation, TrainConfig};
//! use perfvec::compose::program_representation;
//! use perfvec::predict::predict_total_tenths;
//! use perfvec_sim::sample::training_population;
//! use perfvec_trace::features::{extract_features, FeatureMask};
//! use perfvec_workloads::{training_suite, testing_suite};
//!
//! let configs = training_population(7);
//! let data: Vec<_> = training_suite()
//!     .iter()
//!     .map(|w| build_program_data(&w.name, &w.trace(20_000), &configs, FeatureMask::Full))
//!     .collect();
//! let trained = train_foundation(&data, &TrainConfig::default());
//!
//! // An unseen program: representation once, prediction per machine is a dot.
//! let trace = testing_suite()[0].trace(20_000);
//! let feats = extract_features(&trace, FeatureMask::Full);
//! let rp = program_representation(&trained.foundation, &feats);
//! let t = predict_total_tenths(&rp, trained.march_table.rep(0),
//!                              trained.foundation.target_scale);
//! println!("predicted {t} x 0.1ns");
//! ```

pub mod analysis;
pub mod checkpoint;
pub mod compose;
pub mod data;
pub mod dse;
pub mod finetune;
pub mod foundation;
pub mod march_model;
pub mod march_table;
pub mod predict;
pub mod refit;
pub mod trainer;

pub use compose::{
    program_representation, program_representation_blocked, program_representation_streaming,
    program_representations_coalesced,
};
pub use foundation::{ArchKind, ArchSpec, Foundation};
pub use march_table::MarchTable;
pub use predict::{evaluate_program, mean_error, predict_total_tenths, EvalRow};
pub use refit::refit_march_table;
pub use trainer::{train_foundation, TrainConfig, TrainedFoundation};
