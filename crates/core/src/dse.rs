//! Design-space exploration over cache geometries (Section VI-A,
//! Figure 7 and Table IV).
//!
//! The case study: choose L1-data and L2 sizes for a Cortex-A7-like
//! in-order core minimizing
//! `(1000 + 10 * L1_kB + L2_kB) * execution_time`, a chip-footprint /
//! performance tradeoff. PerfVec explores the grid with dot products
//! from a trained [`crate::march_model`]; exhaustive simulation provides
//! the ground truth for quality scoring.

use perfvec_sim::config::CacheConfig;
use perfvec_sim::MicroArchConfig;

/// The paper's 6x6 cache design space: L1D 4..128 kB, L2 256 kB..8 MB.
#[derive(Debug, Clone)]
pub struct CacheGrid {
    /// Candidate L1 data-cache sizes (kB).
    pub l1_kb: Vec<u64>,
    /// Candidate L2 sizes (kB).
    pub l2_kb: Vec<u64>,
}

impl Default for CacheGrid {
    fn default() -> CacheGrid {
        CacheGrid {
            l1_kb: vec![4, 8, 16, 32, 64, 128],
            l2_kb: vec![256, 512, 1024, 2048, 4096, 8192],
        }
    }
}

impl CacheGrid {
    /// All `(l1_kb, l2_kb)` points, row-major over L2 then L1 (matching
    /// the Figure 7 axes).
    pub fn points(&self) -> Vec<(u64, u64)> {
        let mut pts = Vec::with_capacity(self.l1_kb.len() * self.l2_kb.len());
        for &l2 in &self.l2_kb {
            for &l1 in &self.l1_kb {
                pts.push((l1, l2));
            }
        }
        pts
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.l1_kb.len() * self.l2_kb.len()
    }

    /// True when the grid is degenerate.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Derive a concrete machine from `base` with the given cache sizes
/// (associativity and latency follow the base configuration).
pub fn with_cache_sizes(base: &MicroArchConfig, l1_kb: u64, l2_kb: u64) -> MicroArchConfig {
    let mut cfg = base.clone();
    cfg.name = format!("{}-l1_{}k-l2_{}k", base.name, l1_kb, l2_kb);
    cfg.l1d = CacheConfig {
        size_bytes: l1_kb * 1024,
        ..base.l1d
    };
    cfg.l2 = CacheConfig {
        size_bytes: l2_kb * 1024,
        ..base.l2
    };
    cfg
}

/// The DSE input-parameter vector for a cache point: normalized log
/// sizes (what the microarchitecture representation model consumes).
pub fn cache_param_vector(l1_kb: u64, l2_kb: u64) -> Vec<f32> {
    vec![(l1_kb as f32).log2() / 8.0, (l2_kb as f32).log2() / 14.0]
}

/// The paper's objective: `(1000 + 10 * L1kB + L2kB) * T`, with `T` in
/// milliseconds of simulated time (units only scale the surface).
pub fn objective(l1_kb: u64, l2_kb: u64, time_tenths: f64) -> f64 {
    let area = 1000.0 + 10.0 * l1_kb as f64 + l2_kb as f64;
    area * (time_tenths * 1e-7) // 0.1 ns -> ms
}

/// Outcome of one program's DSE run.
#[derive(Debug, Clone)]
pub struct DseOutcome {
    /// Program name.
    pub program: String,
    /// Objective value per grid point under exhaustive simulation.
    pub true_objective: Vec<f64>,
    /// Objective value per grid point under PerfVec prediction.
    pub pred_objective: Vec<f64>,
    /// Index of the truly optimal design.
    pub true_best: usize,
    /// Index of the design PerfVec selects.
    pub pred_best: usize,
}

impl DseOutcome {
    /// Rank of the selected design in the true ordering (0 = optimal).
    pub fn selected_rank(&self) -> usize {
        let chosen = self.true_objective[self.pred_best];
        self.true_objective.iter().filter(|&&o| o < chosen).count()
    }

    /// The paper's quality metric: the fraction of designs that
    /// outperform the selected one (smaller is better; Table IV reports
    /// 3.6% for PerfVec).
    pub fn quality(&self) -> f64 {
        self.selected_rank() as f64 / self.true_objective.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfvec_sim::sample::predefined_configs;

    #[test]
    fn default_grid_matches_paper() {
        let g = CacheGrid::default();
        assert_eq!(g.len(), 36);
        assert_eq!(g.points()[0], (4, 256));
        assert_eq!(g.points()[35], (128, 8192));
    }

    #[test]
    fn derived_configs_change_only_cache_sizes() {
        let base = predefined_configs()
            .into_iter()
            .find(|c| c.name == "cortex-a7-like")
            .unwrap();
        let derived = with_cache_sizes(&base, 64, 2048);
        assert_eq!(derived.l1d.size_bytes, 64 * 1024);
        assert_eq!(derived.l2.size_bytes, 2048 * 1024);
        assert_eq!(derived.l1d.assoc, base.l1d.assoc);
        assert_eq!(derived.freq_ghz, base.freq_ghz);
        assert_eq!(derived.l1i, base.l1i);
    }

    #[test]
    fn objective_prefers_small_fast_designs() {
        // Same time: smaller caches win.
        assert!(objective(4, 256, 1e7) < objective(128, 8192, 1e7));
        // Same area: faster wins.
        assert!(objective(32, 1024, 1e6) < objective(32, 1024, 1e7));
    }

    #[test]
    fn quality_counts_strictly_better_designs() {
        let o = DseOutcome {
            program: "p".into(),
            true_objective: vec![5.0, 1.0, 3.0, 4.0],
            pred_objective: vec![9.0, 2.0, 1.0, 9.0],
            true_best: 1,
            pred_best: 2, // true objective 3.0; designs better: {1.0} -> rank 1
        };
        assert_eq!(o.selected_rank(), 1);
        assert!((o.quality() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn perfect_selection_has_zero_quality() {
        let o = DseOutcome {
            program: "p".into(),
            true_objective: vec![2.0, 1.0],
            pred_objective: vec![4.0, 3.0],
            true_best: 1,
            pred_best: 1,
        };
        assert_eq!(o.quality(), 0.0);
    }

    #[test]
    fn cache_params_are_monotone_in_size() {
        let a = cache_param_vector(4, 256);
        let b = cache_param_vector(128, 8192);
        assert!(b[0] > a[0] && b[1] > a[1]);
        assert!(b.iter().all(|v| *v <= 1.0));
    }
}
