//! Program analysis with the pre-trained foundation model
//! (Section VI-B: the loop-tiling study of Figure 8).
//!
//! Given program variants (e.g. a kernel compiled with different tile
//! sizes), the foundation model turns each variant's trace into a
//! representation; a single dot product against a microarchitecture
//! representation predicts its execution time — no per-variant training,
//! negligible inference cost.

use crate::compose::program_representation;
use crate::foundation::Foundation;
use crate::predict::predict_total_tenths;
use perfvec_isa::Trace;
use perfvec_sim::{simulate, MicroArchConfig};
use perfvec_trace::features::{extract_features, FeatureMask};

/// One point of a program-variant sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Variant label (e.g. the tile size).
    pub label: String,
    /// Simulator ground-truth time (0.1 ns).
    pub simulated_tenths: f64,
    /// PerfVec-predicted time (0.1 ns).
    pub predicted_tenths: f64,
}

impl SweepPoint {
    /// Relative prediction error.
    pub fn rel_error(&self) -> f64 {
        perfvec_ml::loss::abs_rel_error(self.predicted_tenths, self.simulated_tenths)
    }
}

/// Evaluate a set of program variants on one machine: simulate each for
/// ground truth and predict each with the foundation model + the given
/// microarchitecture representation.
pub fn sweep_variants(
    foundation: &Foundation,
    march_rep: &[f32],
    variants: &[(String, Trace)],
    target: &MicroArchConfig,
) -> Vec<SweepPoint> {
    variants
        .iter()
        .map(|(label, trace)| {
            let sim = simulate(trace, target);
            let feats = extract_features(trace, FeatureMask::Full);
            let rp = program_representation(foundation, &feats);
            let pred = predict_total_tenths(&rp, march_rep, foundation.target_scale);
            SweepPoint {
                label: label.clone(),
                simulated_tenths: sim.total_tenths,
                predicted_tenths: pred,
            }
        })
        .collect()
}

/// Index of the best (fastest) variant under each of the two series.
/// Returns `(simulated_best, predicted_best)`.
pub fn best_variants(points: &[SweepPoint]) -> (usize, usize) {
    let arg_min = |f: fn(&SweepPoint) -> f64| {
        points
            .iter()
            .enumerate()
            .min_by(|a, b| f(a.1).total_cmp(&f(b.1)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    };
    (
        arg_min(|p| p.simulated_tenths),
        arg_min(|p| p.predicted_tenths),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(label: &str, sim: f64, pred: f64) -> SweepPoint {
        SweepPoint {
            label: label.into(),
            simulated_tenths: sim,
            predicted_tenths: pred,
        }
    }

    #[test]
    fn best_variants_finds_minima() {
        let pts = vec![pt("1", 10.0, 12.0), pt("2", 5.0, 7.0), pt("4", 8.0, 6.0)];
        let (s, p) = best_variants(&pts);
        assert_eq!(s, 1);
        assert_eq!(p, 2);
    }

    #[test]
    fn rel_error_is_symmetric_enough() {
        assert!((pt("x", 100.0, 110.0).rel_error() - 0.1).abs() < 1e-12);
    }
}
