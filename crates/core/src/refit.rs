//! Closed-form refit of the microarchitecture table.
//!
//! With the foundation frozen, the optimal table row for machine `j` is
//! the least-squares solution of `R_i . M_j = t_ij` over every training
//! instruction — the fixed point the paper's long SGD schedule converges
//! to. At this reproduction's scale it is cheaper and exact: one pass to
//! accumulate the normal equations (instruction representations are
//! generated once, in parallel), one Cholesky factorization shared by
//! all machines.

use crate::foundation::Foundation;
use crate::march_table::MarchTable;
use perfvec_ml::linalg::ridge_solve;
use perfvec_ml::parallel::parallel_map;
use perfvec_trace::{fill_window, ProgramData, NUM_FEATURES};

/// Accumulated normal equations for a linear head of width `d` with `k`
/// right-hand sides.
pub struct NormalEq {
    /// `d x d` Gram matrix `sum R R^T`.
    pub xtx: Vec<f64>,
    /// `d x k` cross products `sum R t^T`.
    pub xty: Vec<f64>,
    /// Representation dimensionality.
    pub d: usize,
    /// Number of target machines.
    pub k: usize,
    /// Rows accumulated.
    pub count: u64,
}

impl NormalEq {
    /// Empty accumulator for a `d`-wide head with `k` right-hand sides.
    pub fn zeros(d: usize, k: usize) -> NormalEq {
        NormalEq {
            xtx: vec![0.0; d * d],
            xty: vec![0.0; d * k],
            d,
            k,
            count: 0,
        }
    }

    fn merge(mut self, other: NormalEq) -> NormalEq {
        for (a, b) in self.xtx.iter_mut().zip(&other.xtx) {
            *a += b;
        }
        for (a, b) in self.xty.iter_mut().zip(&other.xty) {
            *a += b;
        }
        self.count += other.count;
        self
    }

    /// Add one `(representation, targets)` row; each target is
    /// multiplied by `scale` before accumulation.
    pub fn accumulate(&mut self, r: &[f32], targets: &[f32], scale: f32) {
        let d = self.d;
        for i in 0..d {
            let ri = r[i] as f64;
            if ri == 0.0 {
                continue;
            }
            for (j, &rj) in r.iter().enumerate() {
                self.xtx[i * d + j] += ri * rj as f64;
            }
            for (j, &t) in targets.iter().enumerate() {
                self.xty[i * self.k + j] += ri * (t * scale) as f64;
            }
        }
        self.count += 1;
    }
}

/// Accumulate the normal equations over every instruction of every
/// program (chunk-parallel).
pub fn accumulate_normal_equations(foundation: &Foundation, data: &[ProgramData]) -> NormalEq {
    let d = foundation.dim();
    let k = data[0].num_marches();
    let scale = foundation.target_scale;
    let chunk = 2_048usize;
    // Flatten (program, chunk) work items.
    let mut items: Vec<(usize, usize, usize)> = Vec::new();
    for (p, dset) in data.iter().enumerate() {
        let mut lo = 0;
        while lo < dset.len() {
            let hi = (lo + chunk).min(dset.len());
            items.push((p, lo, hi));
            lo = hi;
        }
    }
    let partials = parallel_map(items.len(), |n| {
        let (p, lo, hi) = items[n];
        let dset = &data[p];
        let w = foundation.window();
        let mut buf = vec![0.0f32; w * NUM_FEATURES];
        let mut eq = NormalEq::zeros(d, k);
        for i in lo..hi {
            fill_window(&dset.features, i, foundation.context, &mut buf);
            let (r, _) = foundation.model.forward(&buf, w);
            eq.accumulate(&r, dset.targets.row(i), scale);
        }
        eq
    });
    partials
        .into_iter()
        .fold(NormalEq::zeros(d, k), NormalEq::merge)
}

/// Solve the accumulated system into a fresh table, or `None` if the
/// (ridge-regularized) Gram matrix is not positive definite. `ridge`
/// regularizes against rank-deficient representation spans.
pub fn try_solve_table(eq: &NormalEq, ridge: f64) -> Option<MarchTable> {
    let (d, k) = (eq.d, eq.k);
    // Effective per-row ridge scales with the sample count so the prior
    // stays weak relative to the data.
    let lambda = ridge * (eq.count.max(1) as f64);
    let mut reps = vec![0.0f32; k * d];
    for j in 0..k {
        let xty_j: Vec<f64> = (0..d).map(|i| eq.xty[i * k + j]).collect();
        let m = ridge_solve(&eq.xtx, &xty_j, d, lambda)?;
        for i in 0..d {
            reps[j * d + i] = m[i] as f32;
        }
    }
    Some(MarchTable::from_rows(k, d, reps))
}

/// Solve the accumulated system into a fresh table. `ridge` regularizes
/// against rank-deficient representation spans.
pub fn solve_table(eq: &NormalEq, ridge: f64) -> MarchTable {
    try_solve_table(eq, ridge).expect("gram matrix must be positive definite after ridge")
}

/// Refit the table against the frozen foundation over all training data.
pub fn refit_march_table(foundation: &Foundation, data: &[ProgramData], ridge: f64) -> MarchTable {
    let eq = accumulate_normal_equations(foundation, data);
    solve_table(&eq, ridge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foundation::ArchSpec;
    use perfvec_ml::init::seeded_rng;
    use perfvec_ml::tensor::dot;
    use perfvec_trace::features::Matrix;
    use rand::Rng;

    fn synthetic(foundation: &Foundation, k: usize, n: usize) -> (Vec<ProgramData>, Vec<Vec<f32>>) {
        let d = foundation.dim();
        let mut rng = seeded_rng(31);
        let true_reps: Vec<Vec<f32>> = (0..k)
            .map(|_| (0..d).map(|_| rng.gen_range(-0.5..0.5f32)).collect())
            .collect();
        let mut features = Matrix::zeros(n, NUM_FEATURES);
        for i in 0..n {
            for j in 0..6 {
                features.row_mut(i)[j * 7] = rng.gen_range(0.0..1.0f32);
            }
        }
        let mut targets = Matrix::zeros(n, k);
        for i in 0..n {
            let r = foundation.repr_at(&features, i);
            for (j, tr) in true_reps.iter().enumerate() {
                targets.row_mut(i)[j] = dot(&r, tr) / foundation.target_scale;
            }
        }
        (
            vec![ProgramData {
                name: "syn".into(),
                features,
                targets,
            }],
            true_reps,
        )
    }

    #[test]
    fn refit_recovers_exact_linear_targets() {
        let foundation = Foundation::new(ArchSpec::default_lstm(8), 2, 1.0, 5);
        let (data, true_reps) = synthetic(&foundation, 4, 300);
        let table = refit_march_table(&foundation, &data, 1e-10);
        // Predictions on every instruction must match near-exactly.
        for i in 0..data[0].len() {
            let r = foundation.repr_at(&data[0].features, i);
            for (j, tr) in true_reps.iter().enumerate() {
                let truth = dot(&r, tr);
                let pred = dot(&r, table.rep(j));
                assert!(
                    (pred - truth).abs() < 1e-3 * (1.0 + truth.abs()),
                    "i={i} j={j}: {pred} vs {truth}"
                );
            }
        }
    }

    #[test]
    fn normal_equations_count_every_instruction() {
        let foundation = Foundation::new(ArchSpec::default_lstm(8), 2, 1.0, 5);
        let (data, _) = synthetic(&foundation, 2, 123);
        let eq = accumulate_normal_equations(&foundation, &data);
        assert_eq!(eq.count, 123);
        // Gram matrix must be symmetric.
        for i in 0..8 {
            for j in 0..8 {
                assert!((eq.xtx[i * 8 + j] - eq.xtx[j * 8 + i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn heavier_ridge_shrinks_solutions() {
        let foundation = Foundation::new(ArchSpec::default_lstm(8), 2, 1.0, 5);
        let (data, _) = synthetic(&foundation, 2, 200);
        let eq = accumulate_normal_equations(&foundation, &data);
        let light = solve_table(&eq, 1e-10);
        let heavy = solve_table(&eq, 1e3);
        let norm = |t: &MarchTable| t.reps.iter().map(|v| (v * v) as f64).sum::<f64>();
        assert!(norm(&heavy) < 0.5 * norm(&light));
    }
}
