//! Performance prediction and evaluation metrics.
//!
//! Prediction is a single dot product: `T = R_p . M / target_scale`
//! (0.1 ns). Evaluation reproduces the paper's protocol: per program,
//! absolute relative error of the predicted total execution time against
//! the simulator's, aggregated across microarchitectures as mean /
//! standard deviation / min / max (the dots and caps of Figures 3-5).

use crate::foundation::Foundation;
use crate::march_table::MarchTable;
use perfvec_ml::loss::{abs_rel_error, error_stats};
use perfvec_ml::tensor::dot;

/// Predicted total execution time in 0.1 ns from a program
/// representation and a microarchitecture representation.
pub fn predict_total_tenths(prog_rep: &[f32], march_rep: &[f32], target_scale: f32) -> f64 {
    dot(prog_rep, march_rep) as f64 / target_scale as f64
}

/// Per-program evaluation row (one dot + caps of Figure 3).
#[derive(Debug, Clone)]
pub struct EvalRow {
    /// Program name.
    pub program: String,
    /// Whether the program was in the training set.
    pub seen: bool,
    /// Mean absolute relative error across microarchitectures.
    pub mean: f64,
    /// Standard deviation of errors.
    pub std: f64,
    /// Minimum error.
    pub min: f64,
    /// Maximum error.
    pub max: f64,
}

impl EvalRow {
    /// Render as a fixed-width report line.
    pub fn format(&self) -> String {
        format!(
            "{:<24} {:>6} mean {:>6.1}%  std {:>6.1}%  min {:>6.1}%  max {:>6.1}%",
            self.program,
            if self.seen { "seen" } else { "unseen" },
            self.mean * 100.0,
            self.std * 100.0,
            self.min * 100.0,
            self.max * 100.0
        )
    }
}

/// Evaluate one program: its representation against every
/// microarchitecture in the table, compared to ground-truth totals
/// (0.1 ns, one per table row).
pub fn evaluate_program(
    name: &str,
    seen: bool,
    prog_rep: &[f32],
    foundation: &Foundation,
    table: &MarchTable,
    truth_tenths: &[f64],
) -> EvalRow {
    assert_eq!(truth_tenths.len(), table.k);
    let errors: Vec<f64> = (0..table.k)
        .map(|j| {
            let pred = predict_total_tenths(prog_rep, table.rep(j), foundation.target_scale);
            abs_rel_error(pred, truth_tenths[j])
        })
        .collect();
    let (mean, std, min, max) = error_stats(&errors);
    EvalRow {
        program: name.to_string(),
        seen,
        mean,
        std,
        min,
        max,
    }
}

/// Mean error across a set of rows (the scalar the ablations report).
pub fn mean_error(rows: &[EvalRow]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|r| r.mean).sum::<f64>() / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foundation::ArchSpec;

    #[test]
    fn prediction_inverts_target_scale() {
        // R.M = 5.0 under scale 0.1 means 50 tenths.
        let t = predict_total_tenths(&[1.0, 2.0], &[1.0, 2.0], 0.1);
        assert!((t - 50.0).abs() < 1e-5);
    }

    #[test]
    fn evaluate_program_perfect_prediction_has_zero_error() {
        let foundation = Foundation::new(ArchSpec::default_lstm(2), 0, 1.0, 0);
        let table = MarchTable::from_rows(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let rp = vec![10.0, 20.0];
        let truth = vec![10.0, 20.0];
        let row = evaluate_program("p", true, &rp, &foundation, &table, &truth);
        assert!(row.mean < 1e-9);
        assert!(row.max < 1e-9);
    }

    #[test]
    fn evaluate_program_reports_spread() {
        let foundation = Foundation::new(ArchSpec::default_lstm(2), 0, 1.0, 0);
        let table = MarchTable::from_rows(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let rp = vec![11.0, 10.0];
        let truth = vec![10.0, 20.0]; // errors: 10% and 50%
        let row = evaluate_program("p", false, &rp, &foundation, &table, &truth);
        assert!((row.mean - 0.3).abs() < 1e-9);
        assert!((row.min - 0.1).abs() < 1e-9);
        assert!((row.max - 0.5).abs() < 1e-9);
        assert!(row.std > 0.0);
    }

    #[test]
    fn format_is_stable() {
        let row = EvalRow {
            program: "505.mcf-like".into(),
            seen: false,
            mean: 0.123,
            std: 0.05,
            min: 0.01,
            max: 0.3,
        };
        let s = row.format();
        assert!(s.contains("505.mcf-like"));
        assert!(s.contains("unseen"));
        assert!(s.contains("12.3%"));
    }
}
