//! Foundation-model checkpoints.
//!
//! The paper's adoption story is that users consume a *pre-trained*
//! foundation model the way LLM users consume weights — without paying
//! training cost. This module serializes a trained foundation (and
//! optionally its microarchitecture table) to a compact binary file and
//! restores it exactly.
//!
//! It also carries the **training snapshot** format
//! ([`TrainSnapshot`]): a mid-run epoch checkpoint — model + table (as
//! an embedded foundation checkpoint) plus Adam moments, RNG state, and
//! best-so-far tracking — from which `trainer::train_foundation`
//! resumes a long run bit-identically.

use crate::foundation::{ArchKind, ArchSpec, Foundation};
use crate::march_table::MarchTable;
use bytesless::{get_f32s, put_f32s};

const MAGIC: u32 = 0x5046_4d31; // "PFM1"
const SNAP_MAGIC: u32 = 0x5046_5331; // "PFS1"

/// Errors while reading a checkpoint.
#[derive(Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Wrong magic/version, unknown architecture tag, or a shape field
    /// outside the sane range (a corrupt header must never be allowed
    /// to drive allocations).
    BadHeader,
    /// Payload ended early or sizes disagree.
    Truncated,
    /// Bytes remain after a complete checkpoint — the file is not a
    /// checkpoint (or was corrupted by concatenation/append).
    Trailing,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadHeader => write!(f, "bad checkpoint header"),
            CheckpointError::Truncated => write!(f, "truncated checkpoint"),
            CheckpointError::Trailing => write!(f, "trailing bytes after checkpoint"),
        }
    }
}

impl std::error::Error for CheckpointError {}

// A tiny little-endian encoder kept local to this module to avoid
// dragging a serialization framework through the hot path.
mod bytesless {
    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    pub fn put_f32s(buf: &mut Vec<u8>, vs: &[f32]) {
        put_u32(buf, vs.len() as u32);
        for v in vs {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    pub fn put_f64s(buf: &mut Vec<u8>, vs: &[f64]) {
        put_u32(buf, vs.len() as u32);
        for v in vs {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    pub fn get_u32(buf: &[u8], off: &mut usize) -> Option<u32> {
        let v = u32::from_le_bytes(buf.get(*off..*off + 4)?.try_into().ok()?);
        *off += 4;
        Some(v)
    }
    pub fn get_u64(buf: &[u8], off: &mut usize) -> Option<u64> {
        let v = u64::from_le_bytes(buf.get(*off..*off + 8)?.try_into().ok()?);
        *off += 8;
        Some(v)
    }
    pub fn get_f32s(buf: &[u8], off: &mut usize) -> Option<Vec<f32>> {
        let n = get_u32(buf, off)? as usize;
        // A truncated or corrupt length prefix must fail cleanly, not
        // drive a multi-gigabyte allocation: the payload cannot be
        // longer than the bytes actually present.
        if n.checked_mul(4)? > buf.len().saturating_sub(*off) {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let v = f32::from_le_bytes(buf.get(*off..*off + 4)?.try_into().ok()?);
            *off += 4;
            out.push(v);
        }
        Some(out)
    }
    pub fn get_f64s(buf: &[u8], off: &mut usize) -> Option<Vec<f64>> {
        let n = get_u32(buf, off)? as usize;
        if n.checked_mul(8)? > buf.len().saturating_sub(*off) {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let v = f64::from_le_bytes(buf.get(*off..*off + 8)?.try_into().ok()?);
            *off += 8;
            out.push(v);
        }
        Some(out)
    }
}

/// Shape sanity bounds: a header whose layer count, dimensionality, or
/// context exceeds these is corrupt (the caps sit far above anything
/// the paper or this reproduction instantiates), and rejecting it early
/// keeps attacker-controlled headers from sizing model allocations.
const MAX_LAYERS: usize = 64;
/// See [`MAX_LAYERS`].
const MAX_DIM: usize = 1 << 16;
/// See [`MAX_LAYERS`].
const MAX_CONTEXT: usize = 1 << 24;

/// Conservative lower bound on a spec's parameter count, computed
/// without building the model. Decoding compares it against the
/// payload's actual length *before* instantiating anything, so a
/// small corrupt file can never amplify into a model-sized allocation:
/// any spec that passes has a parameter count of the same order as the
/// file itself, and the exact count is still verified after the build.
fn param_count_lower_bound(spec: &ArchSpec, window: usize) -> usize {
    use perfvec_trace::NUM_FEATURES;
    let d = spec.dim;
    match spec.kind {
        // First layer alone holds at least window * features * d weights.
        ArchKind::Linear | ArchKind::Mlp => window.saturating_mul(NUM_FEATURES).saturating_mul(d),
        // Each recurrent/attention layer holds at least d x d weights.
        ArchKind::Lstm => spec.layers.saturating_mul(4 * d).saturating_mul(d),
        ArchKind::Gru => spec.layers.saturating_mul(3 * d).saturating_mul(d),
        // Two stacks of hidden size d/2: each W_hh alone is 4(d/2)^2.
        ArchKind::BiLstm => (2 * d).saturating_mul(d),
        ArchKind::Transformer => spec.layers.saturating_mul(4 * d).saturating_mul(d),
    }
}

fn kind_tag(kind: ArchKind) -> u32 {
    match kind {
        ArchKind::Linear => 0,
        ArchKind::Mlp => 1,
        ArchKind::Lstm => 2,
        ArchKind::BiLstm => 3,
        ArchKind::Gru => 4,
        ArchKind::Transformer => 5,
    }
}

fn tag_kind(tag: u32) -> Option<ArchKind> {
    Some(match tag {
        0 => ArchKind::Linear,
        1 => ArchKind::Mlp,
        2 => ArchKind::Lstm,
        3 => ArchKind::BiLstm,
        4 => ArchKind::Gru,
        5 => ArchKind::Transformer,
        _ => return None,
    })
}

/// Serialize a foundation model (+ optional table) into bytes.
pub fn encode(f: &Foundation, spec: ArchSpec, table: Option<&MarchTable>) -> Vec<u8> {
    let mut buf = Vec::new();
    bytesless::put_u32(&mut buf, MAGIC);
    bytesless::put_u32(&mut buf, kind_tag(spec.kind));
    bytesless::put_u32(&mut buf, spec.layers as u32);
    bytesless::put_u32(&mut buf, spec.dim as u32);
    bytesless::put_u32(&mut buf, f.context as u32);
    bytesless::put_u32(&mut buf, f.target_scale.to_bits());
    put_f32s(&mut buf, &f.model.get_params());
    match table {
        Some(t) => {
            bytesless::put_u32(&mut buf, t.k as u32);
            put_f32s(&mut buf, &t.reps);
        }
        None => bytesless::put_u32(&mut buf, 0),
    }
    buf
}

/// Restore a foundation model (and table, if present) from bytes.
///
/// Hardened the way `perfvec_trace::binio` is: every truncated prefix
/// of a valid checkpoint fails with a clean [`CheckpointError`] (never
/// a panic or an unbounded allocation), and bytes left over after a
/// complete checkpoint are rejected as [`CheckpointError::Trailing`].
pub fn decode(buf: &[u8]) -> Result<(Foundation, ArchSpec, Option<MarchTable>), CheckpointError> {
    let mut off = 0usize;
    let magic = bytesless::get_u32(buf, &mut off).ok_or(CheckpointError::Truncated)?;
    if magic != MAGIC {
        return Err(CheckpointError::BadHeader);
    }
    let kind = tag_kind(bytesless::get_u32(buf, &mut off).ok_or(CheckpointError::Truncated)?)
        .ok_or(CheckpointError::BadHeader)?;
    let layers = bytesless::get_u32(buf, &mut off).ok_or(CheckpointError::Truncated)? as usize;
    let dim = bytesless::get_u32(buf, &mut off).ok_or(CheckpointError::Truncated)? as usize;
    let context = bytesless::get_u32(buf, &mut off).ok_or(CheckpointError::Truncated)? as usize;
    if layers == 0 || layers > MAX_LAYERS || dim == 0 || dim > MAX_DIM || context > MAX_CONTEXT {
        return Err(CheckpointError::BadHeader);
    }
    let target_scale =
        f32::from_bits(bytesless::get_u32(buf, &mut off).ok_or(CheckpointError::Truncated)?);
    // Training always produces a positive finite scale; anything else
    // is corruption and would turn every prediction into NaN/Inf.
    if !target_scale.is_finite() || target_scale <= 0.0 {
        return Err(CheckpointError::BadHeader);
    }
    let params = get_f32s(buf, &mut off).ok_or(CheckpointError::Truncated)?;
    let spec = ArchSpec { kind, layers, dim };
    if param_count_lower_bound(&spec, context + 1) > params.len() {
        return Err(CheckpointError::Truncated);
    }
    let mut foundation = Foundation::new(spec, context, target_scale, 0);
    if params.len() != foundation.model.num_params() {
        return Err(CheckpointError::Truncated);
    }
    foundation.model.set_params(&params);
    let k = bytesless::get_u32(buf, &mut off).ok_or(CheckpointError::Truncated)? as usize;
    let table = if k > 0 {
        let reps = get_f32s(buf, &mut off).ok_or(CheckpointError::Truncated)?;
        if reps.len() != k * dim {
            return Err(CheckpointError::Truncated);
        }
        Some(MarchTable::from_rows(k, dim, reps))
    } else {
        None
    };
    if off != buf.len() {
        return Err(CheckpointError::Trailing);
    }
    Ok((foundation, spec, table))
}

/// Save to a file.
pub fn save(
    f: &Foundation,
    spec: ArchSpec,
    table: Option<&MarchTable>,
    path: &std::path::Path,
) -> std::io::Result<()> {
    std::fs::write(path, encode(f, spec, table))
}

/// Load from a file.
pub fn load(path: &std::path::Path) -> std::io::Result<(Foundation, ArchSpec, Option<MarchTable>)> {
    let buf = std::fs::read(path)?;
    decode(&buf).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// A resumable mid-training state: everything `train_foundation` needs
/// to continue a run bit-identically from the end of an epoch.
///
/// The model + table travel as an embedded foundation checkpoint (the
/// same bytes [`encode`] produces, with the table rows still in their
/// *training-time* normalization — scale baking happens only at the end
/// of a run), alongside the optimizer moments, the sampling RNG state,
/// and the best-validation tracking that drives model selection.
pub struct TrainSnapshot {
    /// Restored foundation (current, not best, parameters).
    pub foundation: Foundation,
    /// Architecture of the embedded checkpoint.
    pub spec: ArchSpec,
    /// Current (unbaked) microarchitecture table.
    pub table: MarchTable,
    /// First epoch the resumed run should execute.
    pub next_epoch: u32,
    /// Adam first moments over `[model params | table rows]`.
    pub adam_m: Vec<f32>,
    /// Adam second moments.
    pub adam_v: Vec<f32>,
    /// Adam step counter.
    pub adam_t: u64,
    /// Sampling RNG state at the snapshot point.
    pub rng_state: [u64; 4],
    /// Best validation loss seen so far.
    pub best_val: f64,
    /// Parameters of the best epoch so far (`[model | table]`).
    pub best_params: Vec<f32>,
    /// Epoch index of `best_params`.
    pub best_epoch: u32,
    /// Per-epoch training losses so far.
    pub train_loss: Vec<f64>,
    /// Per-epoch validation losses so far.
    pub val_loss: Vec<f64>,
}

/// Serialize a training snapshot.
pub fn encode_snapshot(s: &TrainSnapshot) -> Vec<u8> {
    let mut buf = Vec::new();
    bytesless::put_u32(&mut buf, SNAP_MAGIC);
    let inner = encode(&s.foundation, s.spec, Some(&s.table));
    bytesless::put_u32(&mut buf, inner.len() as u32);
    buf.extend_from_slice(&inner);
    bytesless::put_u32(&mut buf, s.next_epoch);
    bytesless::put_u32(&mut buf, s.best_epoch);
    bytesless::put_u64(&mut buf, s.adam_t);
    for w in s.rng_state {
        bytesless::put_u64(&mut buf, w);
    }
    bytesless::put_u64(&mut buf, s.best_val.to_bits());
    bytesless::put_f32s(&mut buf, &s.adam_m);
    bytesless::put_f32s(&mut buf, &s.adam_v);
    bytesless::put_f32s(&mut buf, &s.best_params);
    bytesless::put_f64s(&mut buf, &s.train_loss);
    bytesless::put_f64s(&mut buf, &s.val_loss);
    buf
}

/// Restore a training snapshot, with the same hardening contract as
/// [`decode`]: every truncated prefix fails cleanly, trailing bytes are
/// rejected, and corrupt length prefixes cannot drive allocations past
/// the file's own size.
pub fn decode_snapshot(buf: &[u8]) -> Result<TrainSnapshot, CheckpointError> {
    let mut off = 0usize;
    let magic = bytesless::get_u32(buf, &mut off).ok_or(CheckpointError::Truncated)?;
    if magic != SNAP_MAGIC {
        return Err(CheckpointError::BadHeader);
    }
    let inner_len = bytesless::get_u32(buf, &mut off).ok_or(CheckpointError::Truncated)? as usize;
    if inner_len > buf.len().saturating_sub(off) {
        return Err(CheckpointError::Truncated);
    }
    let (foundation, spec, table) = decode(&buf[off..off + inner_len])?;
    let table = table.ok_or(CheckpointError::Truncated)?;
    off += inner_len;
    let next_epoch = bytesless::get_u32(buf, &mut off).ok_or(CheckpointError::Truncated)?;
    let best_epoch = bytesless::get_u32(buf, &mut off).ok_or(CheckpointError::Truncated)?;
    let adam_t = bytesless::get_u64(buf, &mut off).ok_or(CheckpointError::Truncated)?;
    let mut rng_state = [0u64; 4];
    for w in &mut rng_state {
        *w = bytesless::get_u64(buf, &mut off).ok_or(CheckpointError::Truncated)?;
    }
    let best_val =
        f64::from_bits(bytesless::get_u64(buf, &mut off).ok_or(CheckpointError::Truncated)?);
    let adam_m = get_f32s(buf, &mut off).ok_or(CheckpointError::Truncated)?;
    let adam_v = get_f32s(buf, &mut off).ok_or(CheckpointError::Truncated)?;
    let best_params = get_f32s(buf, &mut off).ok_or(CheckpointError::Truncated)?;
    let train_loss = bytesless::get_f64s(buf, &mut off).ok_or(CheckpointError::Truncated)?;
    let val_loss = bytesless::get_f64s(buf, &mut off).ok_or(CheckpointError::Truncated)?;
    if off != buf.len() {
        return Err(CheckpointError::Trailing);
    }
    let total = foundation.model.num_params() + table.num_params();
    if adam_m.len() != total || adam_v.len() != total || best_params.len() != total {
        return Err(CheckpointError::Truncated);
    }
    Ok(TrainSnapshot {
        foundation,
        spec,
        table,
        next_epoch,
        adam_m,
        adam_v,
        adam_t,
        rng_state,
        best_val,
        best_params,
        best_epoch,
        train_loss,
        val_loss,
    })
}

/// Save a snapshot atomically (write to a sibling temp file, then
/// rename): a crash mid-write can never leave a torn snapshot at the
/// published path.
pub fn save_snapshot(s: &TrainSnapshot, path: &std::path::Path) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, encode_snapshot(s))?;
    std::fs::rename(&tmp, path)
}

/// Load a snapshot from a file.
pub fn load_snapshot(path: &std::path::Path) -> std::io::Result<TrainSnapshot> {
    let buf = std::fs::read(path)?;
    decode_snapshot(&buf)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfvec_trace::features::Matrix;
    use perfvec_trace::NUM_FEATURES;

    fn sample_foundation(kind: ArchKind) -> (Foundation, ArchSpec) {
        let spec = ArchSpec {
            kind,
            layers: 2,
            dim: 8,
        };
        (Foundation::new(spec, 4, 0.5, 42), spec)
    }

    #[test]
    fn roundtrip_preserves_predictions_for_every_architecture() {
        let mut feats = Matrix::zeros(20, NUM_FEATURES);
        for i in 0..20 {
            feats.row_mut(i)[i % 11] = 0.7;
        }
        for kind in [
            ArchKind::Linear,
            ArchKind::Mlp,
            ArchKind::Lstm,
            ArchKind::BiLstm,
            ArchKind::Gru,
            ArchKind::Transformer,
        ] {
            let (f, spec) = sample_foundation(kind);
            let table = MarchTable::new(3, 8, 9);
            let bytes = encode(&f, spec, Some(&table));
            let (f2, spec2, table2) = decode(&bytes).unwrap();
            assert_eq!(spec, spec2);
            assert_eq!(table2.as_ref().unwrap().reps, table.reps);
            assert_eq!(f2.context, f.context);
            assert_eq!(f2.target_scale, f.target_scale);
            // identical representations after restore
            assert_eq!(f.repr_at(&feats, 10), f2.repr_at(&feats, 10), "{kind:?}");
        }
    }

    #[test]
    fn table_is_optional() {
        let (f, spec) = sample_foundation(ArchKind::Lstm);
        let (f2, _, table) = decode(&encode(&f, spec, None)).unwrap();
        assert!(table.is_none());
        assert_eq!(f2.model.num_params(), f.model.num_params());
    }

    #[test]
    fn corrupted_header_is_rejected() {
        let (f, spec) = sample_foundation(ArchKind::Lstm);
        let mut bytes = encode(&f, spec, None);
        bytes[0] ^= 0xff;
        assert!(matches!(decode(&bytes), Err(CheckpointError::BadHeader)));
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let (f, spec) = sample_foundation(ArchKind::Gru);
        let bytes = encode(&f, spec, None);
        assert!(matches!(
            decode(&bytes[..bytes.len() - 3]),
            Err(CheckpointError::Truncated)
        ));
    }

    #[test]
    fn every_truncated_prefix_fails_cleanly() {
        // The binio hardening contract, applied to checkpoints: no
        // prefix of a valid encoding may decode, panic, or allocate its
        // way to an abort — each must return a clean error.
        let table = MarchTable::new(3, 8, 9);
        for (kind, with_table) in [
            (ArchKind::Lstm, true),
            (ArchKind::Gru, false),
            (ArchKind::Transformer, true),
        ] {
            let (f, spec) = sample_foundation(kind);
            let bytes = encode(&f, spec, with_table.then_some(&table));
            assert!(decode(&bytes).is_ok());
            for cut in 0..bytes.len() {
                let err = decode(&bytes[..cut]).err();
                assert!(
                    matches!(
                        err,
                        Some(CheckpointError::Truncated | CheckpointError::BadHeader)
                    ),
                    "{kind:?} prefix of {cut}/{} bytes gave {err:?}",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let table = MarchTable::new(3, 8, 9);
        for table_opt in [None, Some(&table)] {
            let (f, spec) = sample_foundation(ArchKind::Lstm);
            let mut bytes = encode(&f, spec, table_opt);
            bytes.push(0);
            assert!(matches!(decode(&bytes), Err(CheckpointError::Trailing)));
        }
    }

    #[test]
    fn corrupt_length_prefix_cannot_drive_huge_allocations() {
        // Overwrite the parameter-count prefix with u32::MAX: decode
        // must fail with Truncated without attempting a 16 GiB Vec.
        let (f, spec) = sample_foundation(ArchKind::Lstm);
        let mut bytes = encode(&f, spec, None);
        bytes[24..28].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(CheckpointError::Truncated)));
    }

    #[test]
    fn corrupt_target_scale_is_rejected() {
        let (f, spec) = sample_foundation(ArchKind::Lstm);
        let valid = encode(&f, spec, None);
        // target_scale sits at bytes 20..24.
        for bits in [
            f32::NAN.to_bits(),
            f32::INFINITY.to_bits(),
            0u32,
            (-1.0f32).to_bits(),
        ] {
            let mut bytes = valid.clone();
            bytes[20..24].copy_from_slice(&bits.to_le_bytes());
            assert!(
                matches!(decode(&bytes), Err(CheckpointError::BadHeader)),
                "bits {bits:#x}"
            );
        }
    }

    #[test]
    fn absurd_shape_headers_are_rejected_before_model_construction() {
        let (f, spec) = sample_foundation(ArchKind::Lstm);
        let valid = encode(&f, spec, None);
        // layers field (offset 8) and dim field (offset 12)
        for (off, v) in [(8usize, u32::MAX), (8, 0), (12, u32::MAX), (12, 0)] {
            let mut bytes = valid.clone();
            bytes[off..off + 4].copy_from_slice(&v.to_le_bytes());
            assert!(
                matches!(decode(&bytes), Err(CheckpointError::BadHeader)),
                "offset {off}"
            );
        }
        // A plausible-looking dim with far too few parameter bytes must
        // be caught by the lower-bound check, not by building the model.
        let mut bytes = valid;
        bytes[12..16].copy_from_slice(&1024u32.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(CheckpointError::Truncated)));
    }

    fn sample_snapshot() -> TrainSnapshot {
        let (foundation, spec) = sample_foundation(ArchKind::Lstm);
        let table = MarchTable::new(3, 8, 9);
        let total = foundation.model.num_params() + table.num_params();
        TrainSnapshot {
            foundation,
            spec,
            table,
            next_epoch: 7,
            adam_m: (0..total).map(|i| i as f32 * 1e-4).collect(),
            adam_v: (0..total).map(|i| i as f32 * 1e-6).collect(),
            adam_t: 1234,
            rng_state: [1, u64::MAX, 0x9e37_79b9, 42],
            best_val: 0.0625,
            best_params: (0..total).map(|i| (i as f32).sin()).collect(),
            best_epoch: 5,
            train_loss: vec![1.5, 0.9, -0.0, 0.3],
            val_loss: vec![2.0, 1.1, 0.8, 0.85],
        }
    }

    #[test]
    fn snapshot_roundtrips_exactly() {
        let s = sample_snapshot();
        let bytes = encode_snapshot(&s);
        let s2 = decode_snapshot(&bytes).unwrap();
        assert_eq!(s2.spec, s.spec);
        assert_eq!(
            s2.foundation.model.get_params(),
            s.foundation.model.get_params()
        );
        assert_eq!(s2.table.reps, s.table.reps);
        assert_eq!(s2.next_epoch, s.next_epoch);
        assert_eq!(s2.best_epoch, s.best_epoch);
        assert_eq!(s2.adam_m, s.adam_m);
        assert_eq!(s2.adam_v, s.adam_v);
        assert_eq!(s2.adam_t, s.adam_t);
        assert_eq!(s2.rng_state, s.rng_state);
        assert_eq!(s2.best_val.to_bits(), s.best_val.to_bits());
        assert_eq!(s2.best_params, s.best_params);
        assert_eq!(
            s2.train_loss
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            s.train_loss.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(s2.val_loss, s.val_loss);
    }

    #[test]
    fn every_truncated_snapshot_prefix_fails_cleanly() {
        let bytes = encode_snapshot(&sample_snapshot());
        assert!(decode_snapshot(&bytes).is_ok());
        for cut in 0..bytes.len() {
            let err = decode_snapshot(&bytes[..cut]).err();
            assert!(
                matches!(
                    err,
                    Some(CheckpointError::Truncated | CheckpointError::BadHeader)
                ),
                "prefix of {cut}/{} bytes gave {err:?}",
                bytes.len()
            );
        }
    }

    #[test]
    fn snapshot_trailing_bytes_are_rejected() {
        let mut bytes = encode_snapshot(&sample_snapshot());
        bytes.push(0);
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(CheckpointError::Trailing)
        ));
    }

    #[test]
    fn snapshot_magic_is_distinct_from_checkpoint_magic() {
        // A plain checkpoint must not decode as a snapshot (and vice
        // versa): the formats fail closed against each other.
        let (f, spec) = sample_foundation(ArchKind::Lstm);
        let ckpt = encode(&f, spec, None);
        assert!(matches!(
            decode_snapshot(&ckpt),
            Err(CheckpointError::BadHeader)
        ));
        let snap = encode_snapshot(&sample_snapshot());
        assert!(matches!(decode(&snap), Err(CheckpointError::BadHeader)));
    }

    #[test]
    fn snapshot_with_mismatched_moment_lengths_is_rejected() {
        let mut s = sample_snapshot();
        s.adam_m.pop();
        let bytes = encode_snapshot(&s);
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(CheckpointError::Truncated)
        ));
    }

    #[test]
    fn snapshot_file_roundtrip_is_atomic_under_rename() {
        let dir = std::env::temp_dir().join("perfvec_snap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("epoch.pfs");
        let s = sample_snapshot();
        save_snapshot(&s, &path).unwrap();
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file must be renamed away"
        );
        let s2 = load_snapshot(&path).unwrap();
        assert_eq!(s2.best_params, s.best_params);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("perfvec_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("foundation.pfm");
        let (f, spec) = sample_foundation(ArchKind::Lstm);
        save(&f, spec, None, &path).unwrap();
        let (f2, spec2, _) = load(&path).unwrap();
        assert_eq!(spec, spec2);
        assert_eq!(f2.model.get_params(), f.model.get_params());
        std::fs::remove_file(&path).ok();
    }
}
