//! Dataset generation: run workloads through the functional emulator,
//! extract microarchitecture-independent features, and simulate the
//! trace on every sampled microarchitecture to obtain per-instruction
//! incremental-latency targets (the paper's Section IV-C pipeline, with
//! `perfvec-sim` standing in for gem5).

use perfvec_isa::Trace;
use perfvec_ml::parallel::{in_parallel_worker, parallel_map};
use perfvec_sim::{simulate, simulate_column, MicroArchConfig};
use perfvec_trace::features::{extract_features, FeatureMask, Matrix};
use perfvec_trace::ProgramData;
use perfvec_workloads::{suite, SuiteRole};

/// Datasets for the whole Table II suite against one machine
/// population, split into the paper's 9 training / 8 testing programs.
pub struct SuiteData {
    /// Training programs (9) with their datasets.
    pub train: Vec<ProgramData>,
    /// Testing programs (8) with their datasets.
    pub test: Vec<ProgramData>,
}

impl SuiteData {
    /// Assemble per-program datasets, given in [`suite()`] order, into
    /// the Table II train/test split. Each dataset is routed by its
    /// suite role; order within each split follows the suite registry.
    ///
    /// Panics if `parts` does not line up with the suite (a logic
    /// error, not a data error: callers produce `parts` by iterating
    /// the suite).
    pub fn assemble(parts: Vec<ProgramData>) -> SuiteData {
        SuiteData::assemble_from(&suite(), parts)
    }

    /// Assemble per-program datasets against an explicit workload list
    /// (built-in subsets or suites mixing in external `.pasm`
    /// programs), routing each dataset by its workload's role.
    ///
    /// Panics if `parts` does not line up with `workloads` (a logic
    /// error: callers produce `parts` by iterating the same list).
    pub fn assemble_from(workloads: &[perfvec_workloads::Workload], parts: Vec<ProgramData>) -> SuiteData {
        assert_eq!(
            parts.len(),
            workloads.len(),
            "SuiteData::assemble_from: {} datasets for {} workloads",
            parts.len(),
            workloads.len()
        );
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (w, d) in workloads.iter().zip(parts) {
            debug_assert_eq!(w.name, d.name, "dataset out of workload order");
            match w.role {
                SuiteRole::Training => train.push(d),
                SuiteRole::Testing => test.push(d),
            }
        }
        SuiteData { train, test }
    }
}

/// Build one program's dataset: `n x 51` features plus `n x k`
/// incremental latencies (0.1 ns) for the `k` given microarchitectures.
///
/// The machine grid is simulated with the lockstep column simulator
/// ([`simulate_column`]): the trace is decoded once and whole machine
/// chunks advance through it record by record, amortizing the
/// per-record walk. Chunks of distinct microarchitectures are
/// independent and run in parallel when this is the outermost parallel
/// region; inside a program-parallel generation wave (where nested
/// parallelism degrades to sequential) the whole column runs as one
/// lockstep chunk. Per-cell results are bit-identical either way, so
/// chunking never affects dataset contents or cache keys.
pub fn build_program_data(
    name: &str,
    trace: &Trace,
    configs: &[MicroArchConfig],
    mask: FeatureMask,
) -> ProgramData {
    let features = extract_features(trace, mask);
    let n = trace.len();
    let k = configs.len();
    let threads = if in_parallel_worker() {
        1
    } else {
        std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1)
    };
    let n_chunks = threads.clamp(1, k.max(1));
    // Contiguous chunk bounds covering 0..k (first `k % n_chunks`
    // chunks get one extra machine).
    let bounds: Vec<(usize, usize)> = (0..n_chunks)
        .map(|c| {
            let base = k / n_chunks;
            let extra = k % n_chunks;
            let start = c * base + c.min(extra);
            (start, start + base + usize::from(c < extra))
        })
        .collect();
    let columns: Vec<Vec<f32>> = parallel_map(n_chunks, |c| {
        let (lo, hi) = bounds[c];
        simulate_column(trace, &configs[lo..hi])
            .into_iter()
            .map(|r| r.inc_latency_tenths)
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let mut targets = Matrix::zeros(n, k);
    for (j, col) in columns.iter().enumerate() {
        debug_assert_eq!(col.len(), n);
        for (i, &v) in col.iter().enumerate() {
            targets.row_mut(i)[j] = v;
        }
    }
    ProgramData {
        name: name.to_string(),
        features,
        targets,
    }
}

/// Total simulated execution times (0.1 ns) per microarchitecture for a
/// trace — the evaluation ground truth.
pub fn ground_truth_times(trace: &Trace, configs: &[MicroArchConfig]) -> Vec<f64> {
    parallel_map(configs.len(), |j| simulate(trace, &configs[j]).total_tenths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfvec_sim::sample::predefined_configs;
    use perfvec_trace::NUM_FEATURES;
    use perfvec_workloads::by_name;

    #[test]
    fn dataset_dimensions_match_trace_and_configs() {
        let trace = by_name("specrand").unwrap().trace(2_000);
        let configs = predefined_configs();
        let d = build_program_data("t", &trace, &configs, FeatureMask::Full);
        assert_eq!(d.len(), trace.len());
        assert_eq!(d.features.cols, NUM_FEATURES);
        assert_eq!(d.num_marches(), configs.len());
    }

    #[test]
    fn target_columns_sum_to_ground_truth() {
        let trace = by_name("specrand").unwrap().trace(2_000);
        let configs = predefined_configs();
        let d = build_program_data("t", &trace, &configs, FeatureMask::Full);
        let truth = ground_truth_times(&trace, &configs);
        for (j, &t) in truth.iter().enumerate() {
            let sum = d.total_time(j);
            assert!(
                (sum - t).abs() < 1e-4 * t.max(1.0),
                "march {j}: column sum {sum} vs simulated total {t}"
            );
        }
    }

    #[test]
    fn assemble_splits_by_table_ii_role() {
        let parts: Vec<ProgramData> = perfvec_workloads::suite()
            .iter()
            .map(|w| ProgramData {
                name: w.name.to_string(),
                features: Matrix::zeros(0, 51),
                targets: Matrix::zeros(0, 0),
            })
            .collect();
        let s = SuiteData::assemble(parts);
        assert_eq!(s.train.len(), 9);
        assert_eq!(s.test.len(), 8);
        assert!(s.train.iter().all(|d| {
            perfvec_workloads::suite()
                .iter()
                .any(|w| w.name == d.name && w.role == perfvec_workloads::SuiteRole::Training)
        }));
    }

    #[test]
    fn lockstep_targets_match_per_cell_simulation() {
        // The chunked column simulator must produce exactly the bits the
        // per-cell path produces for every (instruction, machine) cell.
        let trace = by_name("specrand").unwrap().trace(1_500);
        let configs = predefined_configs();
        let d = build_program_data("t", &trace, &configs, FeatureMask::Full);
        for (j, c) in configs.iter().enumerate() {
            let r = simulate(&trace, c);
            for i in 0..trace.len() {
                assert_eq!(
                    d.targets.row(i)[j].to_bits(),
                    r.inc_latency_tenths[i].to_bits(),
                    "cell ({i}, {j}) diverged on {}",
                    c.name
                );
            }
        }
    }

    #[test]
    fn parallel_simulation_is_deterministic() {
        let trace = by_name("specrand").unwrap().trace(1_000);
        let configs = predefined_configs();
        let a = build_program_data("a", &trace, &configs, FeatureMask::Full);
        let b = build_program_data("b", &trace, &configs, FeatureMask::Full);
        assert_eq!(a.targets, b.targets);
    }
}
