//! Batched equivalence: batching must be invisible to results.
//!
//! Forward: every sequence of a `forward_batch` (and of its caching
//! twin `forward_batch_cached`) produces *bit-identical* output to an
//! independent `forward` call, for every architecture and any batch
//! size — the contract the inference server's micro-batching engine is
//! built on.
//!
//! Backward: `backward_batch` accumulates gradients *bit-identical* to
//! running the scalar `backward` once per sequence in batch order into
//! the same buffer — the contract the batched training step is built
//! on (it is what makes a batched trainer checkpoint byte-identical to
//! a scalar one).

use perfvec_ml::seq::SeqModel;

fn all_models(in_dim: usize, d: usize, window: usize) -> Vec<SeqModel> {
    vec![
        SeqModel::linear(in_dim, d, window, 1),
        SeqModel::mlp(in_dim, d, window, 2),
        SeqModel::lstm(in_dim, d, 2, 3),
        SeqModel::bilstm(in_dim, d, 1, 4),
        SeqModel::gru(in_dim, d, 2, 5),
        SeqModel::transformer(in_dim, d, 2, 6),
    ]
}

/// Deterministic, feature-varying pseudo-random inputs (no RNG needed:
/// the values just have to differ across sequences and steps).
fn batch_inputs(batch: usize, t: usize, in_dim: usize) -> Vec<f32> {
    (0..batch * t * in_dim)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            ((x >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

#[test]
fn batch_of_one_is_bit_identical_to_forward() {
    let (in_dim, d, t) = (6, 8, 5);
    let xs = batch_inputs(1, t, in_dim);
    for m in all_models(in_dim, d, t) {
        let (single, _) = m.forward(&xs, t);
        let batched = m.forward_batch(&xs, t, 1);
        assert_eq!(single, batched, "{}", m.describe());
    }
}

#[test]
fn every_sequence_of_a_batch_is_bit_identical_to_forward() {
    let (in_dim, d, t) = (6, 8, 5);
    // 32 exercises the widest (32-lane) gemm block, 7 every tail path.
    for batch in [2usize, 3, 7, 8, 17, 32] {
        let xs = batch_inputs(batch, t, in_dim);
        for m in all_models(in_dim, d, t) {
            let batched = m.forward_batch(&xs, t, batch);
            assert_eq!(batched.len(), batch * d, "{}", m.describe());
            for s in 0..batch {
                let (single, _) = m.forward(&xs[s * t * in_dim..(s + 1) * t * in_dim], t);
                assert_eq!(
                    &batched[s * d..(s + 1) * d],
                    single.as_slice(),
                    "{} sequence {s} of batch {batch}",
                    m.describe()
                );
            }
        }
    }
}

/// Deterministic upstream gradients, distinct per sequence and feature
/// (alternating signs so post-LN architectures see non-null probes).
fn batch_douts(batch: usize, d: usize) -> Vec<f32> {
    (0..batch * d)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(0xd134_2543_de82_ef95)
                .wrapping_add(0x9e37);
            ((x >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

#[test]
fn cached_batched_forward_is_bit_identical_to_forward_batch() {
    let (in_dim, d, t) = (6, 8, 5);
    for batch in [1usize, 2, 3, 7, 8, 17, 32] {
        let xs = batch_inputs(batch, t, in_dim);
        for m in all_models(in_dim, d, t) {
            let plain = m.forward_batch(&xs, t, batch);
            let (cached, _) = m.forward_batch_cached(&xs, t, batch);
            assert_eq!(plain, cached, "{} batch {batch}", m.describe());
        }
    }
}

#[test]
fn backward_batch_is_bit_identical_to_per_sequence_backward() {
    let (in_dim, d, t) = (6, 8, 5);
    // 32 exercises the widest (32-lane) gemm block, 7 and 17 every
    // tail path, 1 the degenerate single-lane batch.
    for batch in [1usize, 2, 3, 7, 8, 17, 32] {
        let xs = batch_inputs(batch, t, in_dim);
        let douts = batch_douts(batch, d);
        for m in all_models(in_dim, d, t) {
            // Reference: scalar backward per sequence, in batch order,
            // accumulating into one shared buffer.
            let mut g_ref = vec![0.0f32; m.num_params()];
            for s in 0..batch {
                let seq = &xs[s * t * in_dim..(s + 1) * t * in_dim];
                let (_, cache) = m.forward(seq, t);
                m.backward(seq, t, &cache, &douts[s * d..(s + 1) * d], &mut g_ref);
            }
            // Batched: one cached forward + one batch-major backward.
            let (_, bcache) = m.forward_batch_cached(&xs, t, batch);
            let mut g_bat = vec![0.0f32; m.num_params()];
            m.backward_batch(&xs, t, batch, &bcache, &douts, &mut g_bat);
            for (p, (a, b)) in g_ref.iter().zip(&g_bat).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} batch {batch} param {p}: scalar {a} vs batched {b}",
                    m.describe()
                );
            }
        }
    }
}

#[test]
fn backward_batch_of_deeper_recurrent_stacks_stays_bit_identical() {
    let (in_dim, d, t, batch) = (4, 6, 7, 5);
    let xs = batch_inputs(batch, t, in_dim);
    let douts = batch_douts(batch, d);
    for m in [
        SeqModel::lstm(in_dim, d, 3, 11),
        SeqModel::gru(in_dim, d, 3, 13),
    ] {
        let mut g_ref = vec![0.0f32; m.num_params()];
        for s in 0..batch {
            let seq = &xs[s * t * in_dim..(s + 1) * t * in_dim];
            let (_, cache) = m.forward(seq, t);
            m.backward(seq, t, &cache, &douts[s * d..(s + 1) * d], &mut g_ref);
        }
        let (_, bcache) = m.forward_batch_cached(&xs, t, batch);
        let mut g_bat = vec![0.0f32; m.num_params()];
        m.backward_batch(&xs, t, batch, &bcache, &douts, &mut g_bat);
        assert_eq!(
            g_ref.iter().map(|g| g.to_bits()).collect::<Vec<_>>(),
            g_bat.iter().map(|g| g.to_bits()).collect::<Vec<_>>(),
            "{}",
            m.describe()
        );
    }
}

#[test]
fn deeper_recurrent_stacks_stay_bit_identical() {
    // Lockstep layer interleaving must not change results for stacks
    // deeper than the default two layers.
    let (in_dim, d, t, batch) = (4, 6, 7, 5);
    let xs = batch_inputs(batch, t, in_dim);
    for m in [
        SeqModel::lstm(in_dim, d, 3, 11),
        SeqModel::gru(in_dim, d, 3, 13),
    ] {
        let batched = m.forward_batch(&xs, t, batch);
        for s in 0..batch {
            let (single, _) = m.forward(&xs[s * t * in_dim..(s + 1) * t * in_dim], t);
            assert_eq!(
                &batched[s * d..(s + 1) * d],
                single.as_slice(),
                "{}",
                m.describe()
            );
        }
    }
}
