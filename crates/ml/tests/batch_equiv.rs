//! Batched-forward equivalence: `forward_batch` must be invisible to
//! results — every sequence in a batch produces *bit-identical* output
//! to an independent `forward` call, for every architecture and any
//! batch size. This is the correctness contract the inference server's
//! micro-batching engine is built on (`gradcheck`-style: the batched
//! path is verified against the reference path, not against itself).

use perfvec_ml::seq::SeqModel;

fn all_models(in_dim: usize, d: usize, window: usize) -> Vec<SeqModel> {
    vec![
        SeqModel::linear(in_dim, d, window, 1),
        SeqModel::mlp(in_dim, d, window, 2),
        SeqModel::lstm(in_dim, d, 2, 3),
        SeqModel::bilstm(in_dim, d, 1, 4),
        SeqModel::gru(in_dim, d, 2, 5),
        SeqModel::transformer(in_dim, d, 2, 6),
    ]
}

/// Deterministic, feature-varying pseudo-random inputs (no RNG needed:
/// the values just have to differ across sequences and steps).
fn batch_inputs(batch: usize, t: usize, in_dim: usize) -> Vec<f32> {
    (0..batch * t * in_dim)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            ((x >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

#[test]
fn batch_of_one_is_bit_identical_to_forward() {
    let (in_dim, d, t) = (6, 8, 5);
    let xs = batch_inputs(1, t, in_dim);
    for m in all_models(in_dim, d, t) {
        let (single, _) = m.forward(&xs, t);
        let batched = m.forward_batch(&xs, t, 1);
        assert_eq!(single, batched, "{}", m.describe());
    }
}

#[test]
fn every_sequence_of_a_batch_is_bit_identical_to_forward() {
    let (in_dim, d, t) = (6, 8, 5);
    for batch in [2usize, 3, 8, 17] {
        let xs = batch_inputs(batch, t, in_dim);
        for m in all_models(in_dim, d, t) {
            let batched = m.forward_batch(&xs, t, batch);
            assert_eq!(batched.len(), batch * d, "{}", m.describe());
            for s in 0..batch {
                let (single, _) = m.forward(&xs[s * t * in_dim..(s + 1) * t * in_dim], t);
                assert_eq!(
                    &batched[s * d..(s + 1) * d],
                    single.as_slice(),
                    "{} sequence {s} of batch {batch}",
                    m.describe()
                );
            }
        }
    }
}

#[test]
fn deeper_recurrent_stacks_stay_bit_identical() {
    // Lockstep layer interleaving must not change results for stacks
    // deeper than the default two layers.
    let (in_dim, d, t, batch) = (4, 6, 7, 5);
    let xs = batch_inputs(batch, t, in_dim);
    for m in [SeqModel::lstm(in_dim, d, 3, 11), SeqModel::gru(in_dim, d, 3, 13)] {
        let batched = m.forward_batch(&xs, t, batch);
        for s in 0..batch {
            let (single, _) = m.forward(&xs[s * t * in_dim..(s + 1) * t * in_dim], t);
            assert_eq!(&batched[s * d..(s + 1) * d], single.as_slice(), "{}", m.describe());
        }
    }
}
