//! Finite-difference verification of every hand-written backward pass —
//! the guarantee the crate docs promise ("flat-parameter layers with
//! hand-written backward passes, verified by finite-difference tests").
//!
//! For each architecture, the analytic gradient of the scalar probe loss
//! `L = dout . forward(xs)` is compared against central differences
//! `(L(θ+ε) - L(θ-ε)) / 2ε` over an exhaustive stride of the parameter
//! vector. The test fails if any checked parameter diverges beyond
//! `1e-4 * (1 + max(|numeric|, |analytic|))` — `1e-4` relative with a
//! unit absolute floor, which sits well above f32 central-difference
//! noise (~2e-5 for unit-scale losses at ε = 1e-2) while catching any
//! genuinely wrong derivative term, whose error would be O(gradient).

use perfvec_ml::seq::SeqModel;

/// Deterministic pseudo-random stream for probe inputs (keeps the test
/// independent of any RNG crate details).
fn lcg_stream(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let unit = ((state >> 40) as f32) / (1u64 << 24) as f32;
            lo + unit * (hi - lo)
        })
        .collect()
}

/// Check analytic vs central-difference gradients for `model` on a
/// random window, sampling every `stride`-th parameter (at least 64 and
/// the first/last parameters, so every layer block is touched).
fn finite_difference_check(mut model: SeqModel, t: usize, seed: u64) {
    let name = model.describe();
    let in_dim = model.in_dim();
    let d = model.out_dim();
    let xs = lcg_stream(seed, t * in_dim, -1.0, 1.0);
    let dout = lcg_stream(seed ^ 0x5a5a, d, -0.5, 0.5);

    let (_, cache) = model.forward(&xs, t);
    let mut grads = vec![0.0f32; model.num_params()];
    model.backward(&xs, t, &cache, &dout, &mut grads);

    let loss = |m: &SeqModel| -> f64 {
        let (y, _) = m.forward(&xs, t);
        y.iter()
            .zip(&dout)
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum()
    };

    let n = model.num_params();
    let stride = (n / 64).max(1);
    let mut params = model.get_params();
    let mut checked = 0usize;
    let mut worst: (f64, usize) = (0.0, 0);
    for idx in (0..n).step_by(stride).chain([n - 1]) {
        let eps = 1e-2f32;
        let orig = params[idx];
        params[idx] = orig + eps;
        model.set_params(&params);
        let lp = loss(&model);
        params[idx] = orig - eps;
        model.set_params(&params);
        let lm = loss(&model);
        params[idx] = orig;
        model.set_params(&params);

        let numeric = (lp - lm) / (2.0 * eps as f64);
        let analytic = grads[idx] as f64;
        let tol = 1e-4 * (1.0 + numeric.abs().max(analytic.abs()));
        let err = (numeric - analytic).abs();
        assert!(
            err <= tol,
            "{name}: param {idx}: numeric {numeric:.6e} vs analytic {analytic:.6e} \
             (err {err:.2e} > tol {tol:.2e})"
        );
        if err > worst.0 {
            worst = (err, idx);
        }
        checked += 1;
    }
    assert!(
        checked >= 64 || checked >= n,
        "{name}: only {checked} params checked"
    );
    println!(
        "{name}: {checked} params checked, worst abs err {:.2e} (param {})",
        worst.0, worst.1
    );
}

/// The batched twin of [`finite_difference_check`]: the analytic
/// gradient comes from one `forward_batch_cached`/`backward_batch`
/// pair over a batch of sequences, the numeric one from central
/// differences of the summed batch probe loss. Verifies the batch-major
/// BPTT against ground truth directly (not just against the scalar
/// backward it mirrors), at the same `1e-4` tolerance.
fn finite_difference_check_batched(mut model: SeqModel, t: usize, batch: usize, seed: u64) {
    let name = model.describe();
    let in_dim = model.in_dim();
    let d = model.out_dim();
    let xs = lcg_stream(seed, batch * t * in_dim, -1.0, 1.0);
    let douts = lcg_stream(seed ^ 0x5a5a, batch * d, -0.5, 0.5);

    let (_, cache) = model.forward_batch_cached(&xs, t, batch);
    let mut grads = vec![0.0f32; model.num_params()];
    model.backward_batch(&xs, t, batch, &cache, &douts, &mut grads);

    let loss = |m: &SeqModel| -> f64 {
        let y = m.forward_batch(&xs, t, batch);
        y.iter()
            .zip(&douts)
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum()
    };

    let n = model.num_params();
    let stride = (n / 64).max(1);
    let mut params = model.get_params();
    let mut checked = 0usize;
    for idx in (0..n).step_by(stride).chain([n - 1]) {
        let eps = 1e-2f32;
        let orig = params[idx];
        params[idx] = orig + eps;
        model.set_params(&params);
        let lp = loss(&model);
        params[idx] = orig - eps;
        model.set_params(&params);
        let lm = loss(&model);
        params[idx] = orig;
        model.set_params(&params);

        let numeric = (lp - lm) / (2.0 * eps as f64);
        let analytic = grads[idx] as f64;
        let tol = 1e-4 * (1.0 + numeric.abs().max(analytic.abs()));
        let err = (numeric - analytic).abs();
        assert!(
            err <= tol,
            "{name} (batch {batch}): param {idx}: numeric {numeric:.6e} vs analytic \
             {analytic:.6e} (err {err:.2e} > tol {tol:.2e})"
        );
        checked += 1;
    }
    assert!(
        checked >= 64 || checked >= n,
        "{name}: only {checked} params checked"
    );
}

#[test]
fn linear_gradients_match_finite_differences() {
    finite_difference_check(SeqModel::linear(6, 8, 4, 11), 4, 1);
}

#[test]
fn mlp_gradients_match_finite_differences() {
    finite_difference_check(SeqModel::mlp(6, 8, 4, 12), 4, 2);
}

#[test]
fn lstm_gradients_match_finite_differences() {
    finite_difference_check(SeqModel::lstm(6, 8, 2, 13), 5, 3);
}

#[test]
fn bilstm_gradients_match_finite_differences() {
    finite_difference_check(SeqModel::bilstm(5, 6, 1, 14), 4, 4);
}

#[test]
fn gru_gradients_match_finite_differences() {
    finite_difference_check(SeqModel::gru(6, 8, 2, 15), 5, 5);
}

#[test]
fn transformer_attention_gradients_match_finite_differences() {
    // The transformer check exercises the attention path end to end:
    // q/k/v/o projections, softmax backward, layer norms, and FFN.
    finite_difference_check(SeqModel::transformer(6, 8, 2, 16), 4, 6);
}

#[test]
fn batched_lstm_gradients_match_finite_differences() {
    // A batch wider than one lane block (8), so both the chunked and
    // tail paths of the batch-major BPTT are exercised.
    finite_difference_check_batched(SeqModel::lstm(6, 8, 2, 23), 5, 11, 7);
}

#[test]
fn batched_gru_gradients_match_finite_differences() {
    finite_difference_check_batched(SeqModel::gru(6, 8, 2, 24), 5, 11, 8);
}

#[test]
fn batched_linear_gradients_match_finite_differences() {
    finite_difference_check_batched(SeqModel::linear(6, 8, 4, 27), 4, 5, 11);
}

#[test]
fn batched_mlp_gradients_match_finite_differences() {
    finite_difference_check_batched(SeqModel::mlp(6, 8, 4, 25), 4, 5, 9);
}

#[test]
fn batched_transformer_gradients_match_finite_differences() {
    // End to end through the batch-major attention backward: lane-wise
    // score dots, softmax backward, the zero-skip dq/dk recursion, and
    // the scalar-order parameter replays. The post-LN transformer's
    // curvature makes the summed probe loss's O(ε²·L''') truncation
    // grow with batch, so batch 3 keeps the FD noise inside the 1e-4
    // tolerance; wide-batch lane-block coverage comes from the
    // batch_equiv suite (bit-exact at batch 32, no FD noise budget).
    finite_difference_check_batched(SeqModel::transformer(6, 8, 2, 26), 4, 3, 10);
}

#[test]
fn batched_bilstm_gradients_match_finite_differences() {
    // Both direction stacks' batch-major BPTT over the shared reversed
    // window block.
    finite_difference_check_batched(SeqModel::bilstm(5, 6, 1, 28), 4, 11, 12);
}
