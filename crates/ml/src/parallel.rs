//! Deterministic data-parallel gradient accumulation.
//!
//! Training parallelism in this library lives at the batch level: a
//! gradient step's items are split into fixed-width **lane chunks**
//! ([`LANE_WIDTH`]), the chunks run in parallel (rayon's ordered
//! `chunk_ranges`), and the per-chunk partial gradients are reduced
//! left-to-right in chunk order. Because the chunk boundaries depend
//! only on the lane width — never on the core count — the float
//! accumulation tree is identical on every machine, so a seeded
//! training run is bit-reproducible anywhere, and the scalar and
//! batch-major step implementations (which share the chunking) produce
//! byte-identical checkpoints.
//!
//! [`BatchStep`] supersedes the old per-item-closure `batch_gradients`:
//! consumers either hand it a per-item closure
//! ([`BatchStep::accumulate_items`], the scalar path) or a per-chunk
//! closure ([`BatchStep::accumulate`]) that drives one batch-major
//! `forward_batch`/`backward_batch` pair per lane chunk.

use rayon::prelude::*;

pub use rayon::in_parallel_worker;

/// Canonical lane-chunk width for gradient steps.
///
/// Thirty-two lanes is the batch-major kernels' widest SIMD block
/// (`tensor::lane_block::<32>`), so a default 32-window batch runs as
/// **one** `forward_batch`/`backward_batch` pair at full vector width
/// (measured ~25% faster per step than 8-lane chunking on one core).
/// Batches larger than the lane width split into 32-lane chunks that
/// fan out across cores — thread scaling comes from raising the batch
/// size, never from changing the chunk tree, which depends only on
/// this constant.
pub const LANE_WIDTH: usize = 32;

/// One deterministic gradient step over a batch of items.
#[derive(Debug, Clone, Copy)]
pub struct BatchStep {
    lane: usize,
}

impl Default for BatchStep {
    fn default() -> BatchStep {
        BatchStep::new()
    }
}

impl BatchStep {
    /// A step with the canonical [`LANE_WIDTH`].
    pub fn new() -> BatchStep {
        BatchStep { lane: LANE_WIDTH }
    }

    /// A step with an explicit lane width (changing it changes the
    /// accumulation tree, so compare runs only at equal widths).
    pub fn with_lane(lane: usize) -> BatchStep {
        assert!(lane >= 1, "lane width must be at least 1");
        BatchStep { lane }
    }

    /// The lane-chunk width.
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// Run one gradient step over `0..n_items`: `chunk_fn` computes one
    /// lane chunk's summed loss, accumulating its gradients into a
    /// zeroed buffer of `param_len` entries **in ascending item order**.
    /// Chunks run in parallel; their partial losses and gradients are
    /// reduced left-to-right in chunk order, so the result is
    /// bit-deterministic for a given lane width regardless of core
    /// count.
    pub fn accumulate<F>(&self, n_items: usize, param_len: usize, chunk_fn: F) -> (f64, Vec<f32>)
    where
        F: Fn(std::ops::Range<usize>, &mut [f32]) -> f64 + Sync,
    {
        if n_items == 0 {
            return (0.0, vec![0.0; param_len]);
        }
        let partials: Vec<(f64, Vec<f32>)> = (0..n_items)
            .into_par_iter()
            .chunk_ranges(self.lane)
            .map(|range| {
                let mut grads = vec![0.0f32; param_len];
                let loss = chunk_fn(range, &mut grads);
                (loss, grads)
            })
            .collect();
        let mut it = partials.into_iter();
        let (mut loss, mut grads) = it.next().expect("at least one chunk");
        for (l, g) in it {
            loss += l;
            for (a, b) in grads.iter_mut().zip(&g) {
                *a += b;
            }
        }
        (loss, grads)
    }

    /// Per-item convenience over [`BatchStep::accumulate`]: the scalar
    /// step. `item_fn(i, grads)` accumulates item `i`'s gradients and
    /// returns its loss; items run in ascending order within each lane
    /// chunk.
    pub fn accumulate_items<F>(
        &self,
        n_items: usize,
        param_len: usize,
        item_fn: F,
    ) -> (f64, Vec<f32>)
    where
        F: Fn(usize, &mut [f32]) -> f64 + Sync,
    {
        self.accumulate(n_items, param_len, |range, grads| {
            let mut loss = 0.0f64;
            for i in range {
                loss += item_fn(i, grads);
            }
            loss
        })
    }
}

/// Map each item of `0..n_items` to a vector and collect in order
/// (parallel map preserving indices).
pub fn parallel_map<T: Send, F>(n_items: usize, f: F) -> Vec<T>
where
    F: Fn(usize) -> T + Sync + Send,
{
    (0..n_items).into_par_iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_accumulation() {
        let item = |i: usize, g: &mut [f32]| {
            g[i % 4] += i as f32;
            i as f64 * 0.5
        };
        let (loss_p, grads_p) = BatchStep::new().accumulate_items(100, 4, item);
        let mut grads_s = vec![0.0f32; 4];
        let mut loss_s = 0.0f64;
        for i in 0..100 {
            loss_s += item(i, &mut grads_s);
        }
        assert_eq!(loss_p, loss_s);
        assert_eq!(grads_p, grads_s);
    }

    #[test]
    fn empty_batch_is_zero() {
        let (loss, grads) = BatchStep::new().accumulate_items(0, 3, |_, _| 1.0);
        assert_eq!(loss, 0.0);
        assert_eq!(grads, vec![0.0; 3]);
    }

    #[test]
    fn chunk_closure_sees_canonical_lane_ranges() {
        let seen = std::sync::Mutex::new(Vec::new());
        BatchStep::with_lane(8).accumulate(19, 0, |range, _| {
            seen.lock().unwrap().push(range);
            0.0
        });
        let mut got = seen.into_inner().unwrap();
        got.sort_by_key(|r| r.start);
        assert_eq!(got, vec![0..8, 8..16, 16..19]);

        let seen = std::sync::Mutex::new(Vec::new());
        BatchStep::new().accumulate(70, 0, |range, _| {
            seen.lock().unwrap().push(range);
            0.0
        });
        let mut got = seen.into_inner().unwrap();
        got.sort_by_key(|r| r.start);
        assert_eq!(got, vec![0..32, 32..64, 64..70]);
    }

    #[test]
    fn item_and_chunk_forms_agree_bitwise() {
        // The scalar/batched parity contract in miniature: a per-item
        // closure and a per-chunk closure doing the same in-order work
        // must reduce to bit-identical float sums.
        let contribution = |i: usize| ((i * 37 % 19) as f32 - 9.0) * 1e-3;
        let (_, a) = BatchStep::new().accumulate_items(45, 2, |i, g| {
            g[0] += contribution(i);
            g[1] += contribution(i) * 0.5;
            0.0
        });
        let (_, b) = BatchStep::new().accumulate(45, 2, |range, g| {
            for i in range {
                g[0] += contribution(i);
                g[1] += contribution(i) * 0.5;
            }
            0.0
        });
        assert_eq!(a[0].to_bits(), b[0].to_bits());
        assert_eq!(a[1].to_bits(), b[1].to_bits());
    }

    #[test]
    fn custom_lane_width_changes_chunking_only() {
        let item = |i: usize, g: &mut [f32]| {
            g[0] += i as f32;
            1.0
        };
        let (l8, g8) = BatchStep::new().accumulate_items(30, 1, item);
        let (l3, g3) = BatchStep::with_lane(3).accumulate_items(30, 1, item);
        assert_eq!(l8, 30.0);
        assert_eq!(l3, 30.0);
        // Integer-valued sums are exact at any tree shape.
        assert_eq!(g8, g3);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let v = parallel_map(10, |i| i * i);
        assert_eq!(v, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
    }
}
