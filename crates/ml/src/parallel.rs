//! Data-parallel gradient accumulation.
//!
//! Training parallelism in this library lives at the batch level: each
//! item's forward/backward is independent, so rayon folds per-thread
//! gradient buffers and reduces them — the CPU analogue of the paper's
//! observation that instruction representations can be learned in
//! parallel on HPC systems. On a single-core machine this degrades
//! gracefully to a sequential loop.

use rayon::prelude::*;

/// Evaluate `item_fn` for every item in `0..n_items`, each accumulating
/// gradients into a thread-local buffer of `param_len` entries and
/// returning its loss. Returns the summed loss and summed gradients.
pub fn batch_gradients<F>(n_items: usize, param_len: usize, item_fn: F) -> (f64, Vec<f32>)
where
    F: Fn(usize, &mut [f32]) -> f64 + Sync,
{
    if n_items == 0 {
        return (0.0, vec![0.0; param_len]);
    }
    (0..n_items)
        .into_par_iter()
        .fold(
            || (0.0f64, vec![0.0f32; param_len]),
            |(mut loss, mut grads), i| {
                loss += item_fn(i, &mut grads);
                (loss, grads)
            },
        )
        .reduce(
            || (0.0f64, vec![0.0f32; param_len]),
            |(la, mut ga), (lb, gb)| {
                for (a, b) in ga.iter_mut().zip(&gb) {
                    *a += b;
                }
                (la + lb, ga)
            },
        )
}

/// Map each item of `0..n_items` to a vector and collect in order
/// (parallel map preserving indices).
pub fn parallel_map<T: Send, F>(n_items: usize, f: F) -> Vec<T>
where
    F: Fn(usize) -> T + Sync + Send,
{
    (0..n_items).into_par_iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_accumulation() {
        let item = |i: usize, g: &mut [f32]| {
            g[i % 4] += i as f32;
            i as f64 * 0.5
        };
        let (loss_p, grads_p) = batch_gradients(100, 4, item);
        let mut grads_s = vec![0.0f32; 4];
        let mut loss_s = 0.0f64;
        for i in 0..100 {
            loss_s += item(i, &mut grads_s);
        }
        assert_eq!(loss_p, loss_s);
        assert_eq!(grads_p, grads_s);
    }

    #[test]
    fn empty_batch_is_zero() {
        let (loss, grads) = batch_gradients(0, 3, |_, _| 1.0);
        assert_eq!(loss, 0.0);
        assert_eq!(grads, vec![0.0; 3]);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let v = parallel_map(10, |i| i * i);
        assert_eq!(v, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
    }
}
