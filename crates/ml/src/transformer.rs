//! Transformer encoder (the `Transformer-2-d` ablation architecture of
//! Figure 6).
//!
//! Post-LN encoder, as in the PyTorch `nn.TransformerEncoder` the paper
//! evaluated: embed + sinusoidal positions, then per layer
//! `h = LN(h + MHSA(h))`, `h = LN(h + FFN(h))`. The representation is
//! the final hidden state at the last window position.

use crate::init::seeded_rng;
use crate::linear::{relu_backward_inplace, relu_inplace, LinearShape};
use crate::tensor::{
    dot, for_lane_chunks, lane_dot_scaled_bm, softmax_backward_bm_inplace,
    softmax_backward_inplace, softmax_bm_inplace, softmax_inplace,
};

/// Layer normalization over the feature dimension.
///
/// Returns (output, xhat, inv_std-per-row); `x` is `rows x d`.
fn layernorm_forward(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    rows: usize,
    d: usize,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut y = vec![0.0f32; rows * d];
    let mut xhat = vec![0.0f32; rows * d];
    let mut inv_std = vec![0.0f32; rows];
    for r in 0..rows {
        let row = &x[r * d..(r + 1) * d];
        let mean = row.iter().sum::<f32>() / d as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let istd = 1.0 / (var + 1e-5).sqrt();
        inv_std[r] = istd;
        for k in 0..d {
            let xh = (row[k] - mean) * istd;
            xhat[r * d + k] = xh;
            y[r * d + k] = gamma[k] * xh + beta[k];
        }
    }
    (y, xhat, inv_std)
}

/// Backward through layer norm; returns dx and accumulates dgamma/dbeta.
#[allow(clippy::too_many_arguments)]
fn layernorm_backward(
    dy: &[f32],
    xhat: &[f32],
    inv_std: &[f32],
    gamma: &[f32],
    dgamma: &mut [f32],
    dbeta: &mut [f32],
    rows: usize,
    d: usize,
) -> Vec<f32> {
    let mut dx = vec![0.0f32; rows * d];
    for r in 0..rows {
        let dy_r = &dy[r * d..(r + 1) * d];
        let xh_r = &xhat[r * d..(r + 1) * d];
        let mut mean_dyg = 0.0f32;
        let mut mean_dyg_xh = 0.0f32;
        for k in 0..d {
            let dyg = dy_r[k] * gamma[k];
            mean_dyg += dyg;
            mean_dyg_xh += dyg * xh_r[k];
            dgamma[k] += dy_r[k] * xh_r[k];
            dbeta[k] += dy_r[k];
        }
        mean_dyg /= d as f32;
        mean_dyg_xh /= d as f32;
        for k in 0..d {
            let dyg = dy_r[k] * gamma[k];
            dx[r * d + k] = inv_std[r] * (dyg - mean_dyg - xh_r[k] * mean_dyg_xh);
        }
    }
    dx
}

/// Apply a linear shape row-by-row over `rows` feature vectors.
fn linear_rows(shape: &LinearShape, w: &[f32], x: &[f32], rows: usize) -> Vec<f32> {
    let mut y = vec![0.0f32; rows * shape.out_dim];
    for r in 0..rows {
        shape.forward(
            w,
            &x[r * shape.in_dim..(r + 1) * shape.in_dim],
            &mut y[r * shape.out_dim..(r + 1) * shape.out_dim],
        );
    }
    y
}

fn linear_rows_backward(
    shape: &LinearShape,
    w: &[f32],
    x: &[f32],
    dy: &[f32],
    grads: &mut [f32],
    rows: usize,
) -> Vec<f32> {
    let mut dx = vec![0.0f32; rows * shape.in_dim];
    for r in 0..rows {
        shape.backward(
            w,
            &x[r * shape.in_dim..(r + 1) * shape.in_dim],
            &dy[r * shape.out_dim..(r + 1) * shape.out_dim],
            grads,
            &mut dx[r * shape.in_dim..(r + 1) * shape.in_dim],
        );
    }
    dx
}

/// One lane chunk of the batch-major layer norm forward: each lane
/// replays [`layernorm_forward`]'s row loop exactly (ascending mean and
/// variance sums, one reciprocal square root, per-feature normalize),
/// so every lane's outputs are bit-identical to the scalar routine.
#[allow(clippy::too_many_arguments)]
#[inline]
fn ln_fwd_chunk<const L: usize>(
    x_row: &[f32],
    gamma: &[f32],
    beta: &[f32],
    y_row: &mut [f32],
    xh_row: &mut [f32],
    istd_row: &mut [f32],
    d: usize,
    batch: usize,
    s0: usize,
) {
    let mut mean = [0.0f32; L];
    for k in 0..d {
        let xr = &x_row[k * batch + s0..k * batch + s0 + L];
        for l in 0..L {
            mean[l] += xr[l];
        }
    }
    for m in mean.iter_mut() {
        *m /= d as f32;
    }
    let mut var = [0.0f32; L];
    for k in 0..d {
        let xr = &x_row[k * batch + s0..k * batch + s0 + L];
        for l in 0..L {
            let dv = xr[l] - mean[l];
            var[l] += dv * dv;
        }
    }
    let mut istd = [0.0f32; L];
    for l in 0..L {
        istd[l] = 1.0 / (var[l] / d as f32 + 1e-5).sqrt();
        istd_row[s0 + l] = istd[l];
    }
    for k in 0..d {
        let xr = &x_row[k * batch + s0..k * batch + s0 + L];
        for l in 0..L {
            let xh = (xr[l] - mean[l]) * istd[l];
            xh_row[k * batch + s0 + l] = xh;
            y_row[k * batch + s0 + l] = gamma[k] * xh + beta[k];
        }
    }
}

/// Batch-major layer norm forward over `rows` timesteps (`x` is
/// `rows x d x batch`); returns `(y, xhat, inv_std)` with `inv_std`
/// `rows x batch`. Bit-identical per lane to [`layernorm_forward`].
fn layernorm_forward_bm(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    rows: usize,
    d: usize,
    batch: usize,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut y = vec![0.0f32; rows * d * batch];
    let mut xhat = vec![0.0f32; rows * d * batch];
    let mut inv_std = vec![0.0f32; rows * batch];
    for r in 0..rows {
        let x_row = &x[r * d * batch..(r + 1) * d * batch];
        let y_row = &mut y[r * d * batch..(r + 1) * d * batch];
        let xh_row = &mut xhat[r * d * batch..(r + 1) * d * batch];
        let istd_row = &mut inv_std[r * batch..(r + 1) * batch];
        for_lane_chunks!(batch, s, LW => ln_fwd_chunk::<LW>(
            x_row, gamma, beta, y_row, xh_row, istd_row, d, batch, s
        ));
    }
    (y, xhat, inv_std)
}

/// One lane chunk of the batch-major layer norm input-gradient: the
/// `dx` arithmetic of [`layernorm_backward`] replayed per lane (the
/// dgamma/dbeta accumulation is replayed separately, in scalar order,
/// by [`replay_ln_params_bm`]).
#[allow(clippy::too_many_arguments)]
#[inline]
fn ln_bwd_chunk<const L: usize>(
    dy_row: &[f32],
    xh_row: &[f32],
    istd_row: &[f32],
    gamma: &[f32],
    dx_row: &mut [f32],
    d: usize,
    batch: usize,
    s0: usize,
) {
    let mut mean_dyg = [0.0f32; L];
    let mut mean_dyg_xh = [0.0f32; L];
    for k in 0..d {
        let dyr = &dy_row[k * batch + s0..k * batch + s0 + L];
        let xhr = &xh_row[k * batch + s0..k * batch + s0 + L];
        for l in 0..L {
            let dyg = dyr[l] * gamma[k];
            mean_dyg[l] += dyg;
            mean_dyg_xh[l] += dyg * xhr[l];
        }
    }
    for l in 0..L {
        mean_dyg[l] /= d as f32;
        mean_dyg_xh[l] /= d as f32;
    }
    for k in 0..d {
        let dyr = &dy_row[k * batch + s0..k * batch + s0 + L];
        let xhr = &xh_row[k * batch + s0..k * batch + s0 + L];
        for l in 0..L {
            let dyg = dyr[l] * gamma[k];
            dx_row[k * batch + s0 + l] =
                istd_row[s0 + l] * (dyg - mean_dyg[l] - xhr[l] * mean_dyg_xh[l]);
        }
    }
}

/// Batch-major layer norm input-gradient (`dy`, `xhat` are
/// `rows x d x batch`; `inv_std` is `rows x batch`); returns `dx`.
fn layernorm_backward_bm(
    dy: &[f32],
    xhat: &[f32],
    inv_std: &[f32],
    gamma: &[f32],
    rows: usize,
    d: usize,
    batch: usize,
) -> Vec<f32> {
    let mut dx = vec![0.0f32; rows * d * batch];
    for r in 0..rows {
        let dy_row = &dy[r * d * batch..(r + 1) * d * batch];
        let xh_row = &xhat[r * d * batch..(r + 1) * d * batch];
        let istd_row = &inv_std[r * batch..(r + 1) * batch];
        let dx_row = &mut dx[r * d * batch..(r + 1) * d * batch];
        for_lane_chunks!(batch, s, LW => ln_bwd_chunk::<LW>(
            dy_row, xh_row, istd_row, gamma, dx_row, d, batch, s
        ));
    }
    dx
}

/// Replay a layer norm's dgamma/dbeta accumulation in the scalar
/// path's per-location order: sequence ascending, row ascending,
/// feature ascending — exactly [`layernorm_backward`]'s adds per
/// sequence, in batch order.
fn replay_ln_params_bm(
    dy_bm: &[f32],
    xhat_bm: &[f32],
    dgamma: &mut [f32],
    dbeta: &mut [f32],
    rows: usize,
    d: usize,
    batch: usize,
) {
    for s in 0..batch {
        for r in 0..rows {
            for k in 0..d {
                let dy = dy_bm[(r * d + k) * batch + s];
                dgamma[k] += dy * xhat_bm[(r * d + k) * batch + s];
                dbeta[k] += dy;
            }
        }
    }
}

/// Apply a linear shape over `rows` batch-major feature matrices:
/// the batched twin of [`linear_rows`] (one [`LinearShape::forward_bm`]
/// gemm per row for the whole batch).
fn linear_rows_bm(
    shape: &LinearShape,
    w: &[f32],
    x_bm: &[f32],
    rows: usize,
    batch: usize,
    acc: &mut [f32],
) -> Vec<f32> {
    let mut y = vec![0.0f32; rows * shape.out_dim * batch];
    for r in 0..rows {
        shape.forward_bm(
            w,
            &x_bm[r * shape.in_dim * batch..(r + 1) * shape.in_dim * batch],
            &mut y[r * shape.out_dim * batch..(r + 1) * shape.out_dim * batch],
            batch,
            acc,
        );
    }
    y
}

/// The input-gradient transport half of [`linear_rows_backward`],
/// batch-major: `dx = W^T dy` per row via [`LinearShape::backward_dx_bm`]
/// (parameter gradients are replayed separately in scalar order by
/// [`replay_linear_params_bm`]).
fn linear_rows_bm_dx(
    shape: &LinearShape,
    w: &[f32],
    dy_bm: &[f32],
    rows: usize,
    batch: usize,
) -> Vec<f32> {
    let mut dx = vec![0.0f32; rows * shape.in_dim * batch];
    for r in 0..rows {
        shape.backward_dx_bm(
            w,
            &dy_bm[r * shape.out_dim * batch..(r + 1) * shape.out_dim * batch],
            &mut dx[r * shape.in_dim * batch..(r + 1) * shape.in_dim * batch],
            batch,
        );
    }
    dx
}

/// Replay a rows-wise linear layer's parameter accumulation in the
/// scalar order: sequence ascending, row ascending, one
/// [`LinearShape::backward_params`] rank-1 update per (sequence, row) —
/// exactly [`linear_rows_backward`]'s adds per sequence, in batch order.
fn replay_linear_params_bm(
    shape: &LinearShape,
    x_bm: &[f32],
    dy_bm: &[f32],
    grads: &mut [f32],
    rows: usize,
    batch: usize,
) {
    let mut x_s = vec![0.0f32; shape.in_dim];
    let mut dy_s = vec![0.0f32; shape.out_dim];
    for s in 0..batch {
        for r in 0..rows {
            for (k, xv) in x_s.iter_mut().enumerate() {
                *xv = x_bm[(r * shape.in_dim + k) * batch + s];
            }
            for (k, dv) in dy_s.iter_mut().enumerate() {
                *dv = dy_bm[(r * shape.out_dim + k) * batch + s];
            }
            shape.backward_params(&x_s, &dy_s, grads);
        }
    }
}

/// One encoder layer's retained activations.
#[derive(Debug, Clone)]
struct LayerCache {
    input: Vec<f32>, // T x d (layer input h)
    q: Vec<f32>,     // T x d
    k: Vec<f32>,     // T x d
    v: Vec<f32>,     // T x d
    probs: Vec<f32>, // heads x T x T softmax rows
    attn: Vec<f32>,  // T x d (concat heads, pre-Wo)
    xhat1: Vec<f32>,
    istd1: Vec<f32>,
    h1: Vec<f32>,         // post-LN1
    ffn_hidden: Vec<f32>, // T x ff (post-ReLU)
    xhat2: Vec<f32>,
    istd2: Vec<f32>,
}

/// Forward cache for [`TransformerEncoder::forward`].
#[derive(Debug, Clone)]
pub struct TransformerCache {
    layers: Vec<LayerCache>,
    t_steps: usize,
}

/// One encoder layer's retained batch-major activations (every buffer
/// is the batch-major twin of its [`LayerCache`] field: feature index
/// major, lane minor).
#[derive(Debug, Clone)]
struct LayerBatchCache {
    input: Vec<f32>, // T x d x batch (layer input h)
    q: Vec<f32>,     // T x d x batch
    k: Vec<f32>,     // T x d x batch
    v: Vec<f32>,     // T x d x batch
    probs: Vec<f32>, // heads x T x T x batch softmax rows
    attn: Vec<f32>,  // T x d x batch (concat heads, pre-Wo)
    xhat1: Vec<f32>,
    istd1: Vec<f32>,      // T x batch
    h1: Vec<f32>,         // post-LN1
    ffn_hidden: Vec<f32>, // T x ff x batch (post-ReLU)
    xhat2: Vec<f32>,
    istd2: Vec<f32>,
}

/// Forward cache for [`TransformerEncoder::forward_batch_cached`].
#[derive(Debug, Clone)]
pub struct TransformerBatchCache {
    layers: Vec<LayerBatchCache>,
    t_steps: usize,
    batch: usize,
}

impl TransformerBatchCache {
    /// Number of timesteps the cache covers.
    pub fn t_steps(&self) -> usize {
        self.t_steps
    }

    /// Number of sequences in the batch.
    pub fn batch(&self) -> usize {
        self.batch
    }
}

/// The Transformer encoder model.
#[derive(Debug, Clone)]
pub struct TransformerEncoder {
    in_dim: usize,
    d: usize,
    n_layers: usize,
    n_heads: usize,
    embed: LinearShape,
    qkv: LinearShape,
    ffn1: LinearShape,
    ffn2: LinearShape,
    params: Vec<f32>,
}

impl TransformerEncoder {
    /// Build an encoder with model width `d` (must be divisible by
    /// `n_heads`) and feed-forward width `2*d`.
    pub fn new(in_dim: usize, d: usize, n_layers: usize, n_heads: usize, seed: u64) -> Self {
        assert!(
            d.is_multiple_of(n_heads),
            "model dim must divide evenly into heads"
        );
        let embed = LinearShape::new(in_dim, d, true);
        let qkv = LinearShape::new(d, d, true);
        let ffn1 = LinearShape::new(d, 2 * d, true);
        let ffn2 = LinearShape::new(2 * d, d, true);
        let per_layer = 4 * qkv.param_len() + 2 * d + ffn1.param_len() + ffn2.param_len() + 2 * d;
        let total = embed.param_len() + n_layers * per_layer;
        let mut params = vec![0.0f32; total];
        let mut rng = seeded_rng(seed);
        embed.init(&mut params[..embed.param_len()], &mut rng);
        let mut off = embed.param_len();
        for _ in 0..n_layers {
            for _ in 0..4 {
                qkv.init(&mut params[off..off + qkv.param_len()], &mut rng);
                off += qkv.param_len();
            }
            params[off..off + d].fill(1.0); // gamma1
            off += d;
            params[off..off + d].fill(0.0); // beta1
            off += d;
            ffn1.init(&mut params[off..off + ffn1.param_len()], &mut rng);
            off += ffn1.param_len();
            ffn2.init(&mut params[off..off + ffn2.param_len()], &mut rng);
            off += ffn2.param_len();
            params[off..off + d].fill(1.0); // gamma2
            off += d;
            params[off..off + d].fill(0.0); // beta2
            off += d;
        }
        debug_assert_eq!(off, total);
        TransformerEncoder {
            in_dim,
            d,
            n_layers,
            n_heads,
            embed,
            qkv,
            ffn1,
            ffn2,
            params,
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Representation dimensionality.
    pub fn out_dim(&self) -> usize {
        self.d
    }

    /// Encoder block count.
    pub fn num_layers(&self) -> usize {
        self.n_layers
    }

    /// Flat parameters.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Flat parameters, mutable.
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn per_layer_len(&self) -> usize {
        4 * self.qkv.param_len()
            + 2 * self.d
            + self.ffn1.param_len()
            + self.ffn2.param_len()
            + 2 * self.d
    }

    fn layer_off(&self, l: usize) -> usize {
        self.embed.param_len() + l * self.per_layer_len()
    }

    fn positional(&self, t: usize, k: usize) -> f32 {
        let pos = t as f32;
        let i = (k / 2) as f32;
        let angle = pos / (10_000.0f32).powf(2.0 * i / self.d as f32);
        if k.is_multiple_of(2) {
            angle.sin()
        } else {
            angle.cos()
        }
    }

    /// Forward over a `T x in_dim` window; returns the last position's
    /// hidden vector and the cache.
    pub fn forward(&self, xs: &[f32], t_steps: usize) -> (Vec<f32>, TransformerCache) {
        let d = self.d;
        let dh = d / self.n_heads;
        let scale = 1.0 / (dh as f32).sqrt();
        // embed + positions
        let mut h = linear_rows(
            &self.embed,
            &self.params[..self.embed.param_len()],
            xs,
            t_steps,
        );
        for t in 0..t_steps {
            for k in 0..d {
                h[t * d + k] += self.positional(t, k);
            }
        }
        let mut layers = Vec::with_capacity(self.n_layers);
        for l in 0..self.n_layers {
            let mut off = self.layer_off(l);
            let qn = self.qkv.param_len();
            let w_q = &self.params[off..off + qn];
            off += qn;
            let w_k = &self.params[off..off + qn];
            off += qn;
            let w_v = &self.params[off..off + qn];
            off += qn;
            let w_o = &self.params[off..off + qn];
            off += qn;
            let g1 = &self.params[off..off + d];
            off += d;
            let b1 = &self.params[off..off + d];
            off += d;
            let w_f1 = &self.params[off..off + self.ffn1.param_len()];
            off += self.ffn1.param_len();
            let w_f2 = &self.params[off..off + self.ffn2.param_len()];
            off += self.ffn2.param_len();
            let g2 = &self.params[off..off + d];
            off += d;
            let b2 = &self.params[off..off + d];

            let input = h.clone();
            let q = linear_rows(&self.qkv, w_q, &h, t_steps);
            let k_m = linear_rows(&self.qkv, w_k, &h, t_steps);
            let v = linear_rows(&self.qkv, w_v, &h, t_steps);
            // attention per head
            let mut probs = vec![0.0f32; self.n_heads * t_steps * t_steps];
            let mut attn = vec![0.0f32; t_steps * d];
            for hd in 0..self.n_heads {
                let hoff = hd * dh;
                for t in 0..t_steps {
                    let row =
                        &mut probs[(hd * t_steps + t) * t_steps..(hd * t_steps + t + 1) * t_steps];
                    let qv = &q[t * d + hoff..t * d + hoff + dh];
                    for (s, rv) in row.iter_mut().enumerate() {
                        *rv = scale * dot(qv, &k_m[s * d + hoff..s * d + hoff + dh]);
                    }
                    softmax_inplace(row);
                    let out = &mut attn[t * d + hoff..t * d + hoff + dh];
                    for (s, &p) in row.iter().enumerate() {
                        let vv = &v[s * d + hoff..s * d + hoff + dh];
                        for (o, &x) in out.iter_mut().zip(vv) {
                            *o += p * x;
                        }
                    }
                }
            }
            let o = linear_rows(&self.qkv, w_o, &attn, t_steps);
            let mut res1 = input.clone();
            for (r, &ov) in res1.iter_mut().zip(&o) {
                *r += ov;
            }
            let (h1, xhat1, istd1) = layernorm_forward(&res1, g1, b1, t_steps, d);
            drop(res1);
            let mut ffn_hidden = linear_rows(&self.ffn1, w_f1, &h1, t_steps);
            relu_inplace(&mut ffn_hidden);
            let f = linear_rows(&self.ffn2, w_f2, &ffn_hidden, t_steps);
            let mut res2 = h1.clone();
            for (r, &fv) in res2.iter_mut().zip(&f) {
                *r += fv;
            }
            let (h2, xhat2, istd2) = layernorm_forward(&res2, g2, b2, t_steps, d);
            drop(res2);

            layers.push(LayerCache {
                input,
                q,
                k: k_m,
                v,
                probs,
                attn,
                xhat1,
                istd1,
                h1,
                ffn_hidden,
                xhat2,
                istd2,
            });
            h = h2;
        }
        let out = h[(t_steps - 1) * d..t_steps * d].to_vec();
        (out, TransformerCache { layers, t_steps })
    }

    /// Backward from `dout` w.r.t. the last position's hidden vector;
    /// accumulates into `grads` (same length as [`Self::params`]).
    pub fn backward(&self, xs: &[f32], cache: &TransformerCache, dout: &[f32], grads: &mut [f32]) {
        let d = self.d;
        let t_steps = cache.t_steps;
        let dh_dim = d / self.n_heads;
        let scale = 1.0 / (dh_dim as f32).sqrt();
        let qn = self.qkv.param_len();

        // dh over all positions: only the last position receives dout.
        let mut dh = vec![0.0f32; t_steps * d];
        dh[(t_steps - 1) * d..].copy_from_slice(dout);

        for l in (0..self.n_layers).rev() {
            let lc = &cache.layers[l];
            let base = self.layer_off(l);
            // parameter slices (immutable) and grad slices (mutable).
            let mut off = base;
            let w_q = self.params[off..off + qn].to_vec();
            off += qn;
            let w_k = self.params[off..off + qn].to_vec();
            off += qn;
            let w_v = self.params[off..off + qn].to_vec();
            off += qn;
            let w_o = self.params[off..off + qn].to_vec();
            off += qn;
            let g1 = self.params[off..off + d].to_vec();
            off += 2 * d;
            let w_f1 = self.params[off..off + self.ffn1.param_len()].to_vec();
            off += self.ffn1.param_len();
            let w_f2 = self.params[off..off + self.ffn2.param_len()].to_vec();
            off += self.ffn2.param_len();
            let g2 = self.params[off..off + d].to_vec();

            // ---- LN2 ----
            let ln2_start = base + 4 * qn + 2 * d + self.ffn1.param_len() + self.ffn2.param_len();
            let dres2 = {
                let s = &mut grads[ln2_start..ln2_start + 2 * d];
                let (dg2, db2) = s.split_at_mut(d);
                layernorm_backward(&dh, &lc.xhat2, &lc.istd2, &g2, dg2, db2, t_steps, d)
            };

            // ---- FFN ----
            let ffn2_start = base + 4 * qn + 2 * d + self.ffn1.param_len();
            let mut dffn_hidden = {
                let g_f2 = &mut grads[ffn2_start..ffn2_start + self.ffn2.param_len()];
                linear_rows_backward(&self.ffn2, &w_f2, &lc.ffn_hidden, &dres2, g_f2, t_steps)
            };
            relu_backward_inplace(&lc.ffn_hidden, &mut dffn_hidden);
            let ffn1_start = base + 4 * qn + 2 * d;
            let dh1_from_ffn = {
                let g_f1 = &mut grads[ffn1_start..ffn1_start + self.ffn1.param_len()];
                linear_rows_backward(&self.ffn1, &w_f1, &lc.h1, &dffn_hidden, g_f1, t_steps)
            };
            // residual: dh1 = dres2 + dh1_from_ffn
            let mut dh1 = dres2;
            for (a, &b) in dh1.iter_mut().zip(&dh1_from_ffn) {
                *a += b;
            }

            // ---- LN1 ----
            let ln1_start = base + 4 * qn;
            let dres1 = {
                let s = &mut grads[ln1_start..ln1_start + 2 * d];
                let (dg1, db1) = s.split_at_mut(d);
                layernorm_backward(&dh1, &lc.xhat1, &lc.istd1, &g1, dg1, db1, t_steps, d)
            };

            // ---- attention output projection ----
            let o_start = base + 3 * qn;
            let dattn = {
                let g_o = &mut grads[o_start..o_start + qn];
                linear_rows_backward(&self.qkv, &w_o, &lc.attn, &dres1, g_o, t_steps)
            };

            // ---- attention core ----
            let mut dq = vec![0.0f32; t_steps * d];
            let mut dk = vec![0.0f32; t_steps * d];
            let mut dv = vec![0.0f32; t_steps * d];
            for hd in 0..self.n_heads {
                let hoff = hd * dh_dim;
                for t in 0..t_steps {
                    let p_row =
                        &lc.probs[(hd * t_steps + t) * t_steps..(hd * t_steps + t + 1) * t_steps];
                    let da = &dattn[t * d + hoff..t * d + hoff + dh_dim];
                    // dp and dv
                    let mut dp = vec![0.0f32; t_steps];
                    for s in 0..t_steps {
                        let vv = &lc.v[s * d + hoff..s * d + hoff + dh_dim];
                        dp[s] = dot(da, vv);
                        let dvs = &mut dv[s * d + hoff..s * d + hoff + dh_dim];
                        for (dvk, &dak) in dvs.iter_mut().zip(da) {
                            *dvk += p_row[s] * dak;
                        }
                    }
                    softmax_backward_inplace(p_row, &mut dp);
                    let qv = lc.q[t * d + hoff..t * d + hoff + dh_dim].to_vec();
                    let dqv = &mut dq[t * d + hoff..t * d + hoff + dh_dim];
                    for s in 0..t_steps {
                        let ds = dp[s] * scale;
                        if ds == 0.0 {
                            continue;
                        }
                        let kv = &lc.k[s * d + hoff..s * d + hoff + dh_dim];
                        for (dqk, &kk) in dqv.iter_mut().zip(kv) {
                            *dqk += ds * kk;
                        }
                        let dks = &mut dk[s * d + hoff..s * d + hoff + dh_dim];
                        for (dkk, &qk) in dks.iter_mut().zip(&qv) {
                            *dkk += ds * qk;
                        }
                    }
                }
            }

            // ---- q/k/v projections ----
            let mut dinput = dres1; // residual path into the layer input
            let dq_in = {
                let g_q = &mut grads[base..base + qn];
                linear_rows_backward(&self.qkv, &w_q, &lc.input, &dq, g_q, t_steps)
            };
            let dk_in = {
                let g_k = &mut grads[base + qn..base + 2 * qn];
                linear_rows_backward(&self.qkv, &w_k, &lc.input, &dk, g_k, t_steps)
            };
            let dv_in = {
                let g_v = &mut grads[base + 2 * qn..base + 3 * qn];
                linear_rows_backward(&self.qkv, &w_v, &lc.input, &dv, g_v, t_steps)
            };
            for i in 0..dinput.len() {
                dinput[i] += dq_in[i] + dk_in[i] + dv_in[i];
            }
            dh = dinput;
        }

        // ---- embedding ----
        let mut dxs = vec![0.0f32; t_steps * self.in_dim];
        let g_e = &mut grads[..self.embed.param_len()];
        let w_e = self.params[..self.embed.param_len()].to_vec();
        for t in 0..t_steps {
            self.embed.backward(
                &w_e,
                &xs[t * self.in_dim..(t + 1) * self.in_dim],
                &dh[t * d..(t + 1) * d],
                g_e,
                &mut dxs[t * self.in_dim..(t + 1) * self.in_dim],
            );
        }
    }

    /// Batched forward over `batch` sequence-major windows
    /// (`batch x T x in_dim`); returns the per-sequence representations
    /// (`batch x d`, sequence-major). Every gemm, softmax, and layer
    /// norm runs batch-major with lane-blocked kernels that replay the
    /// scalar operation order per lane, so each sequence's result is
    /// bit-identical to [`TransformerEncoder::forward`].
    pub fn forward_batch(&self, xs: &[f32], t_steps: usize, batch: usize) -> Vec<f32> {
        self.forward_batch_inner(xs, t_steps, batch, false).0
    }

    /// Batched forward retaining every layer's batch-major activations
    /// for [`TransformerEncoder::backward_batch`].
    pub fn forward_batch_cached(
        &self,
        xs: &[f32],
        t_steps: usize,
        batch: usize,
    ) -> (Vec<f32>, TransformerBatchCache) {
        let (out, layers) = self.forward_batch_inner(xs, t_steps, batch, true);
        (
            out,
            TransformerBatchCache {
                layers,
                t_steps,
                batch,
            },
        )
    }

    fn forward_batch_inner(
        &self,
        xs: &[f32],
        t_steps: usize,
        batch: usize,
        keep: bool,
    ) -> (Vec<f32>, Vec<LayerBatchCache>) {
        let d = self.d;
        let dh = d / self.n_heads;
        let scale = 1.0 / (dh as f32).sqrt();
        debug_assert_eq!(xs.len(), batch * t_steps * self.in_dim);
        let mut acc = vec![0.0f32; batch];
        // embed + positions, batch-major
        let mut x_bm = vec![0.0f32; t_steps * self.in_dim * batch];
        for s in 0..batch {
            let seq = &xs[s * t_steps * self.in_dim..(s + 1) * t_steps * self.in_dim];
            for (i, &xv) in seq.iter().enumerate() {
                x_bm[i * batch + s] = xv;
            }
        }
        let mut h = linear_rows_bm(
            &self.embed,
            &self.params[..self.embed.param_len()],
            &x_bm,
            t_steps,
            batch,
            &mut acc,
        );
        drop(x_bm);
        for t in 0..t_steps {
            for k in 0..d {
                let p = self.positional(t, k);
                for hv in &mut h[(t * d + k) * batch..(t * d + k + 1) * batch] {
                    *hv += p;
                }
            }
        }
        let mut layers = Vec::with_capacity(if keep { self.n_layers } else { 0 });
        for l in 0..self.n_layers {
            let mut off = self.layer_off(l);
            let qn = self.qkv.param_len();
            let w_q = &self.params[off..off + qn];
            off += qn;
            let w_k = &self.params[off..off + qn];
            off += qn;
            let w_v = &self.params[off..off + qn];
            off += qn;
            let w_o = &self.params[off..off + qn];
            off += qn;
            let g1 = &self.params[off..off + d];
            off += d;
            let b1 = &self.params[off..off + d];
            off += d;
            let w_f1 = &self.params[off..off + self.ffn1.param_len()];
            off += self.ffn1.param_len();
            let w_f2 = &self.params[off..off + self.ffn2.param_len()];
            off += self.ffn2.param_len();
            let g2 = &self.params[off..off + d];
            off += d;
            let b2 = &self.params[off..off + d];

            let input = h;
            let q = linear_rows_bm(&self.qkv, w_q, &input, t_steps, batch, &mut acc);
            let k_m = linear_rows_bm(&self.qkv, w_k, &input, t_steps, batch, &mut acc);
            let v = linear_rows_bm(&self.qkv, w_v, &input, t_steps, batch, &mut acc);
            // attention per head: scores and softmax lane-replayed, then
            // the weighted-V sum in source ascending order per location.
            let mut probs = vec![0.0f32; self.n_heads * t_steps * t_steps * batch];
            let mut attn = vec![0.0f32; t_steps * d * batch];
            for hd in 0..self.n_heads {
                let hoff = hd * dh;
                for t in 0..t_steps {
                    let row = &mut probs[(hd * t_steps + t) * t_steps * batch
                        ..(hd * t_steps + t + 1) * t_steps * batch];
                    let qv = &q[(t * d + hoff) * batch..(t * d + hoff + dh) * batch];
                    for s_t in 0..t_steps {
                        lane_dot_scaled_bm(
                            qv,
                            &k_m[(s_t * d + hoff) * batch..(s_t * d + hoff + dh) * batch],
                            &mut row[s_t * batch..(s_t + 1) * batch],
                            dh,
                            batch,
                            scale,
                        );
                    }
                    softmax_bm_inplace(row, t_steps, batch);
                    for s_t in 0..t_steps {
                        let p_s = &row[s_t * batch..(s_t + 1) * batch];
                        for kk in 0..dh {
                            let vv = &v
                                [(s_t * d + hoff + kk) * batch..(s_t * d + hoff + kk + 1) * batch];
                            let out = &mut attn
                                [(t * d + hoff + kk) * batch..(t * d + hoff + kk + 1) * batch];
                            for ((o, &p), &x) in out.iter_mut().zip(p_s).zip(vv) {
                                *o += p * x;
                            }
                        }
                    }
                }
            }
            let o = linear_rows_bm(&self.qkv, w_o, &attn, t_steps, batch, &mut acc);
            let mut res1 = input.clone();
            for (r, &ov) in res1.iter_mut().zip(&o) {
                *r += ov;
            }
            let (h1, xhat1, istd1) = layernorm_forward_bm(&res1, g1, b1, t_steps, d, batch);
            drop(res1);
            let mut ffn_hidden = linear_rows_bm(&self.ffn1, w_f1, &h1, t_steps, batch, &mut acc);
            relu_inplace(&mut ffn_hidden);
            let f = linear_rows_bm(&self.ffn2, w_f2, &ffn_hidden, t_steps, batch, &mut acc);
            let mut res2 = h1.clone();
            for (r, &fv) in res2.iter_mut().zip(&f) {
                *r += fv;
            }
            let (h2, xhat2, istd2) = layernorm_forward_bm(&res2, g2, b2, t_steps, d, batch);
            drop(res2);

            if keep {
                layers.push(LayerBatchCache {
                    input,
                    q,
                    k: k_m,
                    v,
                    probs,
                    attn,
                    xhat1,
                    istd1,
                    h1,
                    ffn_hidden,
                    xhat2,
                    istd2,
                });
            }
            h = h2;
        }
        let mut out = vec![0.0f32; batch * d];
        for s in 0..batch {
            for k in 0..d {
                out[s * d + k] = h[((t_steps - 1) * d + k) * batch + s];
            }
        }
        (out, layers)
    }

    /// Batched backward from per-sequence upstream gradients `douts`
    /// (sequence-major `batch x d`), accumulating into `grads`.
    ///
    /// Gradient *transport* (layer norm dx, `W^T dy`, softmax backward,
    /// the attention dq/dk/dv recursion) runs batch-major with
    /// lane-replayed kernels; parameter *accumulation* is replayed per
    /// sequence ascending, group by group, in the scalar path's
    /// per-location addition order — so `grads` is bit-identical to
    /// calling [`TransformerEncoder::backward`] once per sequence in
    /// batch order.
    pub fn backward_batch(
        &self,
        xs: &[f32],
        cache: &TransformerBatchCache,
        douts: &[f32],
        grads: &mut [f32],
    ) {
        let d = self.d;
        let t_steps = cache.t_steps;
        let batch = cache.batch;
        let dh_dim = d / self.n_heads;
        let scale = 1.0 / (dh_dim as f32).sqrt();
        let qn = self.qkv.param_len();
        debug_assert_eq!(douts.len(), batch * d);

        // dh over all positions: only the last position receives douts.
        let mut dh = vec![0.0f32; t_steps * d * batch];
        for s in 0..batch {
            for k in 0..d {
                dh[((t_steps - 1) * d + k) * batch + s] = douts[s * d + k];
            }
        }

        for l in (0..self.n_layers).rev() {
            let lc = &cache.layers[l];
            let base = self.layer_off(l);
            let mut off = base;
            let w_q = self.params[off..off + qn].to_vec();
            off += qn;
            let w_k = self.params[off..off + qn].to_vec();
            off += qn;
            let w_v = self.params[off..off + qn].to_vec();
            off += qn;
            let w_o = self.params[off..off + qn].to_vec();
            off += qn;
            let g1 = self.params[off..off + d].to_vec();
            off += 2 * d;
            let w_f1 = self.params[off..off + self.ffn1.param_len()].to_vec();
            off += self.ffn1.param_len();
            let w_f2 = self.params[off..off + self.ffn2.param_len()].to_vec();
            off += self.ffn2.param_len();
            let g2 = self.params[off..off + d].to_vec();

            // ---- LN2 ----
            let ln2_start = base + 4 * qn + 2 * d + self.ffn1.param_len() + self.ffn2.param_len();
            let dres2 = layernorm_backward_bm(&dh, &lc.xhat2, &lc.istd2, &g2, t_steps, d, batch);
            {
                let s = &mut grads[ln2_start..ln2_start + 2 * d];
                let (dg2, db2) = s.split_at_mut(d);
                replay_ln_params_bm(&dh, &lc.xhat2, dg2, db2, t_steps, d, batch);
            }

            // ---- FFN ----
            let ffn2_start = base + 4 * qn + 2 * d + self.ffn1.param_len();
            let mut dffn_hidden = linear_rows_bm_dx(&self.ffn2, &w_f2, &dres2, t_steps, batch);
            replay_linear_params_bm(
                &self.ffn2,
                &lc.ffn_hidden,
                &dres2,
                &mut grads[ffn2_start..ffn2_start + self.ffn2.param_len()],
                t_steps,
                batch,
            );
            relu_backward_inplace(&lc.ffn_hidden, &mut dffn_hidden);
            let ffn1_start = base + 4 * qn + 2 * d;
            let dh1_from_ffn = linear_rows_bm_dx(&self.ffn1, &w_f1, &dffn_hidden, t_steps, batch);
            replay_linear_params_bm(
                &self.ffn1,
                &lc.h1,
                &dffn_hidden,
                &mut grads[ffn1_start..ffn1_start + self.ffn1.param_len()],
                t_steps,
                batch,
            );
            // residual: dh1 = dres2 + dh1_from_ffn
            let mut dh1 = dres2;
            for (a, &b) in dh1.iter_mut().zip(&dh1_from_ffn) {
                *a += b;
            }

            // ---- LN1 ----
            let ln1_start = base + 4 * qn;
            let dres1 = layernorm_backward_bm(&dh1, &lc.xhat1, &lc.istd1, &g1, t_steps, d, batch);
            {
                let s = &mut grads[ln1_start..ln1_start + 2 * d];
                let (dg1, db1) = s.split_at_mut(d);
                replay_ln_params_bm(&dh1, &lc.xhat1, dg1, db1, t_steps, d, batch);
            }

            // ---- attention output projection ----
            let o_start = base + 3 * qn;
            let dattn = linear_rows_bm_dx(&self.qkv, &w_o, &dres1, t_steps, batch);
            replay_linear_params_bm(
                &self.qkv,
                &lc.attn,
                &dres1,
                &mut grads[o_start..o_start + qn],
                t_steps,
                batch,
            );

            // ---- attention core ----
            let mut dq = vec![0.0f32; t_steps * d * batch];
            let mut dk = vec![0.0f32; t_steps * d * batch];
            let mut dv = vec![0.0f32; t_steps * d * batch];
            let mut dp = vec![0.0f32; t_steps * batch];
            for hd in 0..self.n_heads {
                let hoff = hd * dh_dim;
                for t in 0..t_steps {
                    let p_row = &lc.probs[(hd * t_steps + t) * t_steps * batch
                        ..(hd * t_steps + t + 1) * t_steps * batch];
                    let da = &dattn[(t * d + hoff) * batch..(t * d + hoff + dh_dim) * batch];
                    // dp and dv
                    for s_t in 0..t_steps {
                        lane_dot_scaled_bm(
                            da,
                            &lc.v[(s_t * d + hoff) * batch..(s_t * d + hoff + dh_dim) * batch],
                            &mut dp[s_t * batch..(s_t + 1) * batch],
                            dh_dim,
                            batch,
                            1.0,
                        );
                        let p_s = &p_row[s_t * batch..(s_t + 1) * batch];
                        for kk in 0..dh_dim {
                            let dvs = &mut dv
                                [(s_t * d + hoff + kk) * batch..(s_t * d + hoff + kk + 1) * batch];
                            let dak = &da[kk * batch..(kk + 1) * batch];
                            for ((dvv, &p), &a) in dvs.iter_mut().zip(p_s).zip(dak) {
                                *dvv += p * a;
                            }
                        }
                    }
                    softmax_backward_bm_inplace(p_row, &mut dp, t_steps, batch);
                    // dq/dk with the scalar path's exact zero-skip,
                    // replayed per lane.
                    for s_t in 0..t_steps {
                        for lane in 0..batch {
                            let ds = dp[s_t * batch + lane] * scale;
                            if ds == 0.0 {
                                continue;
                            }
                            for kk in 0..dh_dim {
                                dq[(t * d + hoff + kk) * batch + lane] +=
                                    ds * lc.k[(s_t * d + hoff + kk) * batch + lane];
                            }
                            for kk in 0..dh_dim {
                                dk[(s_t * d + hoff + kk) * batch + lane] +=
                                    ds * lc.q[(t * d + hoff + kk) * batch + lane];
                            }
                        }
                    }
                }
            }

            // ---- q/k/v projections ----
            let mut dinput = dres1; // residual path into the layer input
            let dq_in = linear_rows_bm_dx(&self.qkv, &w_q, &dq, t_steps, batch);
            replay_linear_params_bm(
                &self.qkv,
                &lc.input,
                &dq,
                &mut grads[base..base + qn],
                t_steps,
                batch,
            );
            let dk_in = linear_rows_bm_dx(&self.qkv, &w_k, &dk, t_steps, batch);
            replay_linear_params_bm(
                &self.qkv,
                &lc.input,
                &dk,
                &mut grads[base + qn..base + 2 * qn],
                t_steps,
                batch,
            );
            let dv_in = linear_rows_bm_dx(&self.qkv, &w_v, &dv, t_steps, batch);
            replay_linear_params_bm(
                &self.qkv,
                &lc.input,
                &dv,
                &mut grads[base + 2 * qn..base + 3 * qn],
                t_steps,
                batch,
            );
            for i in 0..dinput.len() {
                dinput[i] += dq_in[i] + dk_in[i] + dv_in[i];
            }
            dh = dinput;
        }

        // ---- embedding: per-sequence replay (timestep ascending) ----
        let g_e = &mut grads[..self.embed.param_len()];
        let mut dy_s = vec![0.0f32; d];
        for s in 0..batch {
            for t in 0..t_steps {
                for (k, dv_k) in dy_s.iter_mut().enumerate() {
                    *dv_k = dh[(t * d + k) * batch + s];
                }
                self.embed.backward_params(
                    &xs[s * t_steps * self.in_dim + t * self.in_dim..][..self.in_dim],
                    &dy_s,
                    g_e,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn forward_shapes_and_determinism() {
        let m = TransformerEncoder::new(7, 16, 2, 4, 3);
        let t = 6;
        let xs = vec![0.1f32; t * 7];
        let (a, _) = m.forward(&xs, t);
        let (b, _) = m.forward(&xs, t);
        assert_eq!(a.len(), 16);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn positions_distinguish_identical_tokens() {
        // With identical inputs at every position, attention still mixes
        // distinct positional encodings: moving the window must change
        // nothing, but permuting *distinct* inputs must.
        let m = TransformerEncoder::new(4, 8, 1, 2, 7);
        let t = 5;
        let mut rng = seeded_rng(9);
        let xs: Vec<f32> = (0..t * 4).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let mut swapped = xs.clone();
        swapped.swap(0, 4); // exchange part of steps 0 and 1
        swapped.swap(1, 5);
        swapped.swap(2, 6);
        swapped.swap(3, 7);
        let (o1, _) = m.forward(&xs, t);
        let (o2, _) = m.forward(&swapped, t);
        let diff: f32 = o1.iter().zip(&o2).map(|(a, b)| (a - b).abs()).sum();
        assert!(
            diff > 1e-5,
            "order must matter to a transformer with positions"
        );
    }

    #[test]
    fn gradient_check() {
        let mut m = TransformerEncoder::new(5, 8, 2, 2, 13);
        let t = 4;
        let mut rng = seeded_rng(17);
        let xs: Vec<f32> = (0..t * 5).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let dout: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let (_, cache) = m.forward(&xs, t);
        let mut grads = vec![0.0f32; m.params().len()];
        m.backward(&xs, &cache, &dout, &mut grads);

        let loss = |m: &TransformerEncoder| {
            let (o, _) = m.forward(&xs, t);
            dot(&o, &dout)
        };
        let n = m.params().len();
        let mut idx = 1usize;
        let mut checked = 0;
        while idx < n && checked < 30 {
            let eps = 3e-3;
            let orig = m.params()[idx];
            m.params_mut()[idx] = orig + eps;
            let lp = loss(&m);
            m.params_mut()[idx] = orig - eps;
            let lm = loss(&m);
            m.params_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads[idx];
            assert!(
                (num - ana).abs() < 3e-2 * (1.0 + num.abs().max(ana.abs())),
                "param {idx}: numeric {num} vs analytic {ana}"
            );
            checked += 1;
            idx = idx * 2 + 3;
        }
    }

    use crate::init::seeded_rng;
}
