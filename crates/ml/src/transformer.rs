//! Transformer encoder (the `Transformer-2-d` ablation architecture of
//! Figure 6).
//!
//! Post-LN encoder, as in the PyTorch `nn.TransformerEncoder` the paper
//! evaluated: embed + sinusoidal positions, then per layer
//! `h = LN(h + MHSA(h))`, `h = LN(h + FFN(h))`. The representation is
//! the final hidden state at the last window position.

use crate::init::seeded_rng;
use crate::linear::{relu_backward_inplace, relu_inplace, LinearShape};
use crate::tensor::{dot, softmax_backward_inplace, softmax_inplace};

/// Layer normalization over the feature dimension.
///
/// Returns (output, xhat, inv_std-per-row); `x` is `rows x d`.
fn layernorm_forward(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    rows: usize,
    d: usize,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut y = vec![0.0f32; rows * d];
    let mut xhat = vec![0.0f32; rows * d];
    let mut inv_std = vec![0.0f32; rows];
    for r in 0..rows {
        let row = &x[r * d..(r + 1) * d];
        let mean = row.iter().sum::<f32>() / d as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let istd = 1.0 / (var + 1e-5).sqrt();
        inv_std[r] = istd;
        for k in 0..d {
            let xh = (row[k] - mean) * istd;
            xhat[r * d + k] = xh;
            y[r * d + k] = gamma[k] * xh + beta[k];
        }
    }
    (y, xhat, inv_std)
}

/// Backward through layer norm; returns dx and accumulates dgamma/dbeta.
#[allow(clippy::too_many_arguments)]
fn layernorm_backward(
    dy: &[f32],
    xhat: &[f32],
    inv_std: &[f32],
    gamma: &[f32],
    dgamma: &mut [f32],
    dbeta: &mut [f32],
    rows: usize,
    d: usize,
) -> Vec<f32> {
    let mut dx = vec![0.0f32; rows * d];
    for r in 0..rows {
        let dy_r = &dy[r * d..(r + 1) * d];
        let xh_r = &xhat[r * d..(r + 1) * d];
        let mut mean_dyg = 0.0f32;
        let mut mean_dyg_xh = 0.0f32;
        for k in 0..d {
            let dyg = dy_r[k] * gamma[k];
            mean_dyg += dyg;
            mean_dyg_xh += dyg * xh_r[k];
            dgamma[k] += dy_r[k] * xh_r[k];
            dbeta[k] += dy_r[k];
        }
        mean_dyg /= d as f32;
        mean_dyg_xh /= d as f32;
        for k in 0..d {
            let dyg = dy_r[k] * gamma[k];
            dx[r * d + k] = inv_std[r] * (dyg - mean_dyg - xh_r[k] * mean_dyg_xh);
        }
    }
    dx
}

/// Apply a linear shape row-by-row over `rows` feature vectors.
fn linear_rows(shape: &LinearShape, w: &[f32], x: &[f32], rows: usize) -> Vec<f32> {
    let mut y = vec![0.0f32; rows * shape.out_dim];
    for r in 0..rows {
        shape.forward(
            w,
            &x[r * shape.in_dim..(r + 1) * shape.in_dim],
            &mut y[r * shape.out_dim..(r + 1) * shape.out_dim],
        );
    }
    y
}

fn linear_rows_backward(
    shape: &LinearShape,
    w: &[f32],
    x: &[f32],
    dy: &[f32],
    grads: &mut [f32],
    rows: usize,
) -> Vec<f32> {
    let mut dx = vec![0.0f32; rows * shape.in_dim];
    for r in 0..rows {
        shape.backward(
            w,
            &x[r * shape.in_dim..(r + 1) * shape.in_dim],
            &dy[r * shape.out_dim..(r + 1) * shape.out_dim],
            grads,
            &mut dx[r * shape.in_dim..(r + 1) * shape.in_dim],
        );
    }
    dx
}

/// One encoder layer's retained activations.
#[derive(Debug, Clone)]
struct LayerCache {
    input: Vec<f32>, // T x d (layer input h)
    q: Vec<f32>,     // T x d
    k: Vec<f32>,     // T x d
    v: Vec<f32>,     // T x d
    probs: Vec<f32>, // heads x T x T softmax rows
    attn: Vec<f32>,  // T x d (concat heads, pre-Wo)
    xhat1: Vec<f32>,
    istd1: Vec<f32>,
    h1: Vec<f32>,         // post-LN1
    ffn_hidden: Vec<f32>, // T x ff (post-ReLU)
    xhat2: Vec<f32>,
    istd2: Vec<f32>,
}

/// Forward cache for [`TransformerEncoder::forward`].
#[derive(Debug, Clone)]
pub struct TransformerCache {
    layers: Vec<LayerCache>,
    t_steps: usize,
}

/// The Transformer encoder model.
#[derive(Debug, Clone)]
pub struct TransformerEncoder {
    in_dim: usize,
    d: usize,
    n_layers: usize,
    n_heads: usize,
    embed: LinearShape,
    qkv: LinearShape,
    ffn1: LinearShape,
    ffn2: LinearShape,
    params: Vec<f32>,
}

impl TransformerEncoder {
    /// Build an encoder with model width `d` (must be divisible by
    /// `n_heads`) and feed-forward width `2*d`.
    pub fn new(in_dim: usize, d: usize, n_layers: usize, n_heads: usize, seed: u64) -> Self {
        assert!(
            d.is_multiple_of(n_heads),
            "model dim must divide evenly into heads"
        );
        let embed = LinearShape::new(in_dim, d, true);
        let qkv = LinearShape::new(d, d, true);
        let ffn1 = LinearShape::new(d, 2 * d, true);
        let ffn2 = LinearShape::new(2 * d, d, true);
        let per_layer = 4 * qkv.param_len() + 2 * d + ffn1.param_len() + ffn2.param_len() + 2 * d;
        let total = embed.param_len() + n_layers * per_layer;
        let mut params = vec![0.0f32; total];
        let mut rng = seeded_rng(seed);
        embed.init(&mut params[..embed.param_len()], &mut rng);
        let mut off = embed.param_len();
        for _ in 0..n_layers {
            for _ in 0..4 {
                qkv.init(&mut params[off..off + qkv.param_len()], &mut rng);
                off += qkv.param_len();
            }
            params[off..off + d].fill(1.0); // gamma1
            off += d;
            params[off..off + d].fill(0.0); // beta1
            off += d;
            ffn1.init(&mut params[off..off + ffn1.param_len()], &mut rng);
            off += ffn1.param_len();
            ffn2.init(&mut params[off..off + ffn2.param_len()], &mut rng);
            off += ffn2.param_len();
            params[off..off + d].fill(1.0); // gamma2
            off += d;
            params[off..off + d].fill(0.0); // beta2
            off += d;
        }
        debug_assert_eq!(off, total);
        TransformerEncoder {
            in_dim,
            d,
            n_layers,
            n_heads,
            embed,
            qkv,
            ffn1,
            ffn2,
            params,
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Representation dimensionality.
    pub fn out_dim(&self) -> usize {
        self.d
    }

    /// Flat parameters.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Flat parameters, mutable.
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn per_layer_len(&self) -> usize {
        4 * self.qkv.param_len()
            + 2 * self.d
            + self.ffn1.param_len()
            + self.ffn2.param_len()
            + 2 * self.d
    }

    fn layer_off(&self, l: usize) -> usize {
        self.embed.param_len() + l * self.per_layer_len()
    }

    fn positional(&self, t: usize, k: usize) -> f32 {
        let pos = t as f32;
        let i = (k / 2) as f32;
        let angle = pos / (10_000.0f32).powf(2.0 * i / self.d as f32);
        if k.is_multiple_of(2) {
            angle.sin()
        } else {
            angle.cos()
        }
    }

    /// Forward over a `T x in_dim` window; returns the last position's
    /// hidden vector and the cache.
    pub fn forward(&self, xs: &[f32], t_steps: usize) -> (Vec<f32>, TransformerCache) {
        let d = self.d;
        let dh = d / self.n_heads;
        let scale = 1.0 / (dh as f32).sqrt();
        // embed + positions
        let mut h = linear_rows(
            &self.embed,
            &self.params[..self.embed.param_len()],
            xs,
            t_steps,
        );
        for t in 0..t_steps {
            for k in 0..d {
                h[t * d + k] += self.positional(t, k);
            }
        }
        let mut layers = Vec::with_capacity(self.n_layers);
        for l in 0..self.n_layers {
            let mut off = self.layer_off(l);
            let qn = self.qkv.param_len();
            let w_q = &self.params[off..off + qn];
            off += qn;
            let w_k = &self.params[off..off + qn];
            off += qn;
            let w_v = &self.params[off..off + qn];
            off += qn;
            let w_o = &self.params[off..off + qn];
            off += qn;
            let g1 = &self.params[off..off + d];
            off += d;
            let b1 = &self.params[off..off + d];
            off += d;
            let w_f1 = &self.params[off..off + self.ffn1.param_len()];
            off += self.ffn1.param_len();
            let w_f2 = &self.params[off..off + self.ffn2.param_len()];
            off += self.ffn2.param_len();
            let g2 = &self.params[off..off + d];
            off += d;
            let b2 = &self.params[off..off + d];

            let input = h.clone();
            let q = linear_rows(&self.qkv, w_q, &h, t_steps);
            let k_m = linear_rows(&self.qkv, w_k, &h, t_steps);
            let v = linear_rows(&self.qkv, w_v, &h, t_steps);
            // attention per head
            let mut probs = vec![0.0f32; self.n_heads * t_steps * t_steps];
            let mut attn = vec![0.0f32; t_steps * d];
            for hd in 0..self.n_heads {
                let hoff = hd * dh;
                for t in 0..t_steps {
                    let row =
                        &mut probs[(hd * t_steps + t) * t_steps..(hd * t_steps + t + 1) * t_steps];
                    let qv = &q[t * d + hoff..t * d + hoff + dh];
                    for (s, rv) in row.iter_mut().enumerate() {
                        *rv = scale * dot(qv, &k_m[s * d + hoff..s * d + hoff + dh]);
                    }
                    softmax_inplace(row);
                    let out = &mut attn[t * d + hoff..t * d + hoff + dh];
                    for (s, &p) in row.iter().enumerate() {
                        let vv = &v[s * d + hoff..s * d + hoff + dh];
                        for (o, &x) in out.iter_mut().zip(vv) {
                            *o += p * x;
                        }
                    }
                }
            }
            let o = linear_rows(&self.qkv, w_o, &attn, t_steps);
            let mut res1 = input.clone();
            for (r, &ov) in res1.iter_mut().zip(&o) {
                *r += ov;
            }
            let (h1, xhat1, istd1) = layernorm_forward(&res1, g1, b1, t_steps, d);
            drop(res1);
            let mut ffn_hidden = linear_rows(&self.ffn1, w_f1, &h1, t_steps);
            relu_inplace(&mut ffn_hidden);
            let f = linear_rows(&self.ffn2, w_f2, &ffn_hidden, t_steps);
            let mut res2 = h1.clone();
            for (r, &fv) in res2.iter_mut().zip(&f) {
                *r += fv;
            }
            let (h2, xhat2, istd2) = layernorm_forward(&res2, g2, b2, t_steps, d);
            drop(res2);

            layers.push(LayerCache {
                input,
                q,
                k: k_m,
                v,
                probs,
                attn,
                xhat1,
                istd1,
                h1,
                ffn_hidden,
                xhat2,
                istd2,
            });
            h = h2;
        }
        let out = h[(t_steps - 1) * d..t_steps * d].to_vec();
        (out, TransformerCache { layers, t_steps })
    }

    /// Backward from `dout` w.r.t. the last position's hidden vector;
    /// accumulates into `grads` (same length as [`Self::params`]).
    pub fn backward(&self, xs: &[f32], cache: &TransformerCache, dout: &[f32], grads: &mut [f32]) {
        let d = self.d;
        let t_steps = cache.t_steps;
        let dh_dim = d / self.n_heads;
        let scale = 1.0 / (dh_dim as f32).sqrt();
        let qn = self.qkv.param_len();

        // dh over all positions: only the last position receives dout.
        let mut dh = vec![0.0f32; t_steps * d];
        dh[(t_steps - 1) * d..].copy_from_slice(dout);

        for l in (0..self.n_layers).rev() {
            let lc = &cache.layers[l];
            let base = self.layer_off(l);
            // parameter slices (immutable) and grad slices (mutable).
            let mut off = base;
            let w_q = self.params[off..off + qn].to_vec();
            off += qn;
            let w_k = self.params[off..off + qn].to_vec();
            off += qn;
            let w_v = self.params[off..off + qn].to_vec();
            off += qn;
            let w_o = self.params[off..off + qn].to_vec();
            off += qn;
            let g1 = self.params[off..off + d].to_vec();
            off += 2 * d;
            let w_f1 = self.params[off..off + self.ffn1.param_len()].to_vec();
            off += self.ffn1.param_len();
            let w_f2 = self.params[off..off + self.ffn2.param_len()].to_vec();
            off += self.ffn2.param_len();
            let g2 = self.params[off..off + d].to_vec();

            // ---- LN2 ----
            let ln2_start = base + 4 * qn + 2 * d + self.ffn1.param_len() + self.ffn2.param_len();
            let dres2 = {
                let s = &mut grads[ln2_start..ln2_start + 2 * d];
                let (dg2, db2) = s.split_at_mut(d);
                layernorm_backward(&dh, &lc.xhat2, &lc.istd2, &g2, dg2, db2, t_steps, d)
            };

            // ---- FFN ----
            let ffn2_start = base + 4 * qn + 2 * d + self.ffn1.param_len();
            let mut dffn_hidden = {
                let g_f2 = &mut grads[ffn2_start..ffn2_start + self.ffn2.param_len()];
                linear_rows_backward(&self.ffn2, &w_f2, &lc.ffn_hidden, &dres2, g_f2, t_steps)
            };
            relu_backward_inplace(&lc.ffn_hidden, &mut dffn_hidden);
            let ffn1_start = base + 4 * qn + 2 * d;
            let dh1_from_ffn = {
                let g_f1 = &mut grads[ffn1_start..ffn1_start + self.ffn1.param_len()];
                linear_rows_backward(&self.ffn1, &w_f1, &lc.h1, &dffn_hidden, g_f1, t_steps)
            };
            // residual: dh1 = dres2 + dh1_from_ffn
            let mut dh1 = dres2;
            for (a, &b) in dh1.iter_mut().zip(&dh1_from_ffn) {
                *a += b;
            }

            // ---- LN1 ----
            let ln1_start = base + 4 * qn;
            let dres1 = {
                let s = &mut grads[ln1_start..ln1_start + 2 * d];
                let (dg1, db1) = s.split_at_mut(d);
                layernorm_backward(&dh1, &lc.xhat1, &lc.istd1, &g1, dg1, db1, t_steps, d)
            };

            // ---- attention output projection ----
            let o_start = base + 3 * qn;
            let dattn = {
                let g_o = &mut grads[o_start..o_start + qn];
                linear_rows_backward(&self.qkv, &w_o, &lc.attn, &dres1, g_o, t_steps)
            };

            // ---- attention core ----
            let mut dq = vec![0.0f32; t_steps * d];
            let mut dk = vec![0.0f32; t_steps * d];
            let mut dv = vec![0.0f32; t_steps * d];
            for hd in 0..self.n_heads {
                let hoff = hd * dh_dim;
                for t in 0..t_steps {
                    let p_row =
                        &lc.probs[(hd * t_steps + t) * t_steps..(hd * t_steps + t + 1) * t_steps];
                    let da = &dattn[t * d + hoff..t * d + hoff + dh_dim];
                    // dp and dv
                    let mut dp = vec![0.0f32; t_steps];
                    for s in 0..t_steps {
                        let vv = &lc.v[s * d + hoff..s * d + hoff + dh_dim];
                        dp[s] = dot(da, vv);
                        let dvs = &mut dv[s * d + hoff..s * d + hoff + dh_dim];
                        for (dvk, &dak) in dvs.iter_mut().zip(da) {
                            *dvk += p_row[s] * dak;
                        }
                    }
                    softmax_backward_inplace(p_row, &mut dp);
                    let qv = lc.q[t * d + hoff..t * d + hoff + dh_dim].to_vec();
                    let dqv = &mut dq[t * d + hoff..t * d + hoff + dh_dim];
                    for s in 0..t_steps {
                        let ds = dp[s] * scale;
                        if ds == 0.0 {
                            continue;
                        }
                        let kv = &lc.k[s * d + hoff..s * d + hoff + dh_dim];
                        for (dqk, &kk) in dqv.iter_mut().zip(kv) {
                            *dqk += ds * kk;
                        }
                        let dks = &mut dk[s * d + hoff..s * d + hoff + dh_dim];
                        for (dkk, &qk) in dks.iter_mut().zip(&qv) {
                            *dkk += ds * qk;
                        }
                    }
                }
            }

            // ---- q/k/v projections ----
            let mut dinput = dres1; // residual path into the layer input
            let dq_in = {
                let g_q = &mut grads[base..base + qn];
                linear_rows_backward(&self.qkv, &w_q, &lc.input, &dq, g_q, t_steps)
            };
            let dk_in = {
                let g_k = &mut grads[base + qn..base + 2 * qn];
                linear_rows_backward(&self.qkv, &w_k, &lc.input, &dk, g_k, t_steps)
            };
            let dv_in = {
                let g_v = &mut grads[base + 2 * qn..base + 3 * qn];
                linear_rows_backward(&self.qkv, &w_v, &lc.input, &dv, g_v, t_steps)
            };
            for i in 0..dinput.len() {
                dinput[i] += dq_in[i] + dk_in[i] + dv_in[i];
            }
            dh = dinput;
        }

        // ---- embedding ----
        let mut dxs = vec![0.0f32; t_steps * self.in_dim];
        let g_e = &mut grads[..self.embed.param_len()];
        let w_e = self.params[..self.embed.param_len()].to_vec();
        for t in 0..t_steps {
            self.embed.backward(
                &w_e,
                &xs[t * self.in_dim..(t + 1) * self.in_dim],
                &dh[t * d..(t + 1) * d],
                g_e,
                &mut dxs[t * self.in_dim..(t + 1) * self.in_dim],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn forward_shapes_and_determinism() {
        let m = TransformerEncoder::new(7, 16, 2, 4, 3);
        let t = 6;
        let xs = vec![0.1f32; t * 7];
        let (a, _) = m.forward(&xs, t);
        let (b, _) = m.forward(&xs, t);
        assert_eq!(a.len(), 16);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn positions_distinguish_identical_tokens() {
        // With identical inputs at every position, attention still mixes
        // distinct positional encodings: moving the window must change
        // nothing, but permuting *distinct* inputs must.
        let m = TransformerEncoder::new(4, 8, 1, 2, 7);
        let t = 5;
        let mut rng = seeded_rng(9);
        let xs: Vec<f32> = (0..t * 4).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let mut swapped = xs.clone();
        swapped.swap(0, 4); // exchange part of steps 0 and 1
        swapped.swap(1, 5);
        swapped.swap(2, 6);
        swapped.swap(3, 7);
        let (o1, _) = m.forward(&xs, t);
        let (o2, _) = m.forward(&swapped, t);
        let diff: f32 = o1.iter().zip(&o2).map(|(a, b)| (a - b).abs()).sum();
        assert!(
            diff > 1e-5,
            "order must matter to a transformer with positions"
        );
    }

    #[test]
    fn gradient_check() {
        let mut m = TransformerEncoder::new(5, 8, 2, 2, 13);
        let t = 4;
        let mut rng = seeded_rng(17);
        let xs: Vec<f32> = (0..t * 5).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let dout: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let (_, cache) = m.forward(&xs, t);
        let mut grads = vec![0.0f32; m.params().len()];
        m.backward(&xs, &cache, &dout, &mut grads);

        let loss = |m: &TransformerEncoder| {
            let (o, _) = m.forward(&xs, t);
            dot(&o, &dout)
        };
        let n = m.params().len();
        let mut idx = 1usize;
        let mut checked = 0;
        while idx < n && checked < 30 {
            let eps = 3e-3;
            let orig = m.params()[idx];
            m.params_mut()[idx] = orig + eps;
            let lp = loss(&m);
            m.params_mut()[idx] = orig - eps;
            let lm = loss(&m);
            m.params_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads[idx];
            assert!(
                (num - ana).abs() < 3e-2 * (1.0 + num.abs().max(ana.abs())),
                "param {idx}: numeric {num} vs analytic {ana}"
            );
            checked += 1;
            idx = idx * 2 + 3;
        }
    }

    use crate::init::seeded_rng;
}
