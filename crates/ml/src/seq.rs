//! Unified sequence-model interface over every architecture the paper's
//! Figure 6 ablation compares: linear regression, MLP, GRU, LSTM,
//! biLSTM, and a Transformer encoder.
//!
//! All models map a `T x in_dim` instruction window to a `d`-dimensional
//! representation, expose flat parameters for the optimizer, and provide
//! manual backward passes.

use crate::bilstm::{BiLstm, BiLstmBatchCache, BiLstmCache};
use crate::gru::{Gru, GruBatchCache, GruCache, GruState};
use crate::linear::LinearShape;
use crate::lstm::{Lstm, LstmBatchCache, LstmCache, LstmState};
use crate::mlp::{Mlp, MlpBatchCache, MlpCache};
use crate::tensor::{bm_to_seq, seq_to_bm};
use crate::transformer::{TransformerBatchCache, TransformerCache, TransformerEncoder};

/// A sequence model (one of the Figure 6 architectures).
pub enum SeqModel {
    /// `Linear-1-d`: flatten the window, single linear map.
    Linear {
        /// The linear shape (over the flattened window).
        shape: LinearShape,
        /// Flat parameters.
        params: Vec<f32>,
        /// Window length the model was built for.
        window: usize,
    },
    /// `MLP-2-d`: flatten the window, two-layer perceptron.
    Mlp {
        /// Inner model.
        model: Mlp,
        /// Window length the model was built for.
        window: usize,
    },
    /// `LSTM-l-d` (the paper's default foundation model is `LSTM-2-256`).
    Lstm(Lstm),
    /// `biLSTM-l-d`.
    BiLstm(BiLstm),
    /// `GRU-l-d`.
    Gru(Gru),
    /// `Transformer-l-d`.
    Transformer(TransformerEncoder),
}

/// Recurrent state for the architectures that support one-step
/// streaming (stateful-by-construction models: LSTM and GRU).
///
/// Obtained from [`SeqModel::stream_state`] and advanced with
/// [`SeqModel::stream_step`]; window-only architectures (Linear, MLP,
/// biLSTM, Transformer) have no streaming state.
pub enum StreamState {
    /// LSTM hidden + cell state.
    Lstm(LstmState),
    /// GRU hidden state.
    Gru(GruState),
}

/// Opaque batched forward cache from [`SeqModel::forward_batch_cached`],
/// consumed by [`SeqModel::backward_batch`].
///
/// Every architecture retains lane-blocked batch-major activations —
/// there is exactly one batched code path per architecture, no
/// per-sequence fallback. (A linear map needs no activations beyond the
/// input, which the caller still holds.)
pub enum BatchCache {
    /// The linear model caches nothing (backward needs only the input).
    Linear,
    /// Batch-major MLP activations.
    Mlp(MlpBatchCache),
    /// Batch-major LSTM activations.
    Lstm(LstmBatchCache),
    /// Batch-major activations for both biLSTM direction stacks.
    BiLstm(BiLstmBatchCache),
    /// Batch-major GRU activations.
    Gru(GruBatchCache),
    /// Batch-major Transformer activations.
    Transformer(TransformerBatchCache),
}

/// Opaque forward cache matching the architecture.
pub enum SeqCache {
    /// No intermediate state needed.
    Linear,
    /// MLP activations.
    Mlp(MlpCache),
    /// LSTM activations.
    Lstm(LstmCache),
    /// biLSTM activations.
    BiLstm(BiLstmCache),
    /// GRU activations.
    Gru(GruCache),
    /// Transformer activations.
    Transformer(TransformerCache),
}

impl SeqModel {
    /// `Linear-1-d` over a fixed window.
    pub fn linear(in_dim: usize, out_dim: usize, window: usize, seed: u64) -> SeqModel {
        let shape = LinearShape::new(in_dim * window, out_dim, true);
        let mut params = vec![0.0f32; shape.param_len()];
        shape.init(&mut params, &mut crate::init::seeded_rng(seed));
        SeqModel::Linear {
            shape,
            params,
            window,
        }
    }

    /// `MLP-2-d` over a fixed window (`hidden` = d).
    pub fn mlp(in_dim: usize, out_dim: usize, window: usize, seed: u64) -> SeqModel {
        SeqModel::Mlp {
            model: Mlp::new(&[in_dim * window, out_dim, out_dim], seed),
            window,
        }
    }

    /// `LSTM-layers-d`.
    pub fn lstm(in_dim: usize, out_dim: usize, layers: usize, seed: u64) -> SeqModel {
        SeqModel::Lstm(Lstm::new(in_dim, out_dim, layers, seed))
    }

    /// `biLSTM-layers-d`.
    pub fn bilstm(in_dim: usize, out_dim: usize, layers: usize, seed: u64) -> SeqModel {
        SeqModel::BiLstm(BiLstm::new(in_dim, out_dim, layers, seed))
    }

    /// `GRU-layers-d`.
    pub fn gru(in_dim: usize, out_dim: usize, layers: usize, seed: u64) -> SeqModel {
        SeqModel::Gru(Gru::new(in_dim, out_dim, layers, seed))
    }

    /// `Transformer-layers-d` with 4 heads (2 when `d < 16`).
    pub fn transformer(in_dim: usize, out_dim: usize, layers: usize, seed: u64) -> SeqModel {
        let heads = if out_dim.is_multiple_of(4) && out_dim >= 16 {
            4
        } else {
            2
        };
        SeqModel::Transformer(TransformerEncoder::new(
            in_dim, out_dim, layers, heads, seed,
        ))
    }

    /// A short architecture name in the paper's `Arch-layers-dim` format.
    pub fn describe(&self) -> String {
        match self {
            SeqModel::Linear { shape, .. } => format!("Linear-1-{}", shape.out_dim),
            SeqModel::Mlp { model, .. } => {
                format!("MLP-{}-{}", model.num_layers(), model.out_dim())
            }
            SeqModel::Lstm(m) => format!("LSTM-{}-{}", m.num_layers(), m.out_dim()),
            SeqModel::BiLstm(m) => format!("biLSTM-{}-{}", m.num_layers(), m.out_dim()),
            SeqModel::Gru(m) => format!("GRU-{}-{}", m.num_layers(), m.out_dim()),
            SeqModel::Transformer(m) => format!("Transformer-{}-{}", m.num_layers(), m.out_dim()),
        }
    }

    /// Representation dimensionality.
    pub fn out_dim(&self) -> usize {
        match self {
            SeqModel::Linear { shape, .. } => shape.out_dim,
            SeqModel::Mlp { model, .. } => model.out_dim(),
            SeqModel::Lstm(m) => m.out_dim(),
            SeqModel::BiLstm(m) => m.out_dim(),
            SeqModel::Gru(m) => m.out_dim(),
            SeqModel::Transformer(m) => m.out_dim(),
        }
    }

    /// Per-step input feature count.
    pub fn in_dim(&self) -> usize {
        match self {
            SeqModel::Linear { shape, window, .. } => shape.in_dim / window,
            SeqModel::Mlp { model, window } => model.in_dim() / window,
            SeqModel::Lstm(m) => m.in_dim(),
            SeqModel::BiLstm(m) => m.in_dim(),
            SeqModel::Gru(m) => m.in_dim(),
            SeqModel::Transformer(m) => m.in_dim(),
        }
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        match self {
            SeqModel::Linear { params, .. } => params.len(),
            SeqModel::Mlp { model, .. } => model.params().len(),
            SeqModel::Lstm(m) => m.params().len(),
            SeqModel::BiLstm(m) => m.num_params(),
            SeqModel::Gru(m) => m.params().len(),
            SeqModel::Transformer(m) => m.params().len(),
        }
    }

    /// Copy the flat parameter vector out.
    pub fn get_params(&self) -> Vec<f32> {
        match self {
            SeqModel::Linear { params, .. } => params.clone(),
            SeqModel::Mlp { model, .. } => model.params().to_vec(),
            SeqModel::Lstm(m) => m.params().to_vec(),
            SeqModel::BiLstm(m) => m.params(),
            SeqModel::Gru(m) => m.params().to_vec(),
            SeqModel::Transformer(m) => m.params().to_vec(),
        }
    }

    /// Overwrite parameters from a flat vector.
    pub fn set_params(&mut self, p: &[f32]) {
        match self {
            SeqModel::Linear { params, .. } => params.copy_from_slice(p),
            SeqModel::Mlp { model, .. } => model.params_mut().copy_from_slice(p),
            SeqModel::Lstm(m) => m.params_mut().copy_from_slice(p),
            SeqModel::BiLstm(m) => m.set_params(p),
            SeqModel::Gru(m) => m.params_mut().copy_from_slice(p),
            SeqModel::Transformer(m) => m.params_mut().copy_from_slice(p),
        }
    }

    /// Forward over a `t x in_dim` window; returns the representation
    /// and a cache for backward.
    pub fn forward(&self, xs: &[f32], t: usize) -> (Vec<f32>, SeqCache) {
        match self {
            SeqModel::Linear {
                shape,
                params,
                window,
            } => {
                debug_assert_eq!(t, *window, "linear window model has a fixed window");
                let mut y = vec![0.0f32; shape.out_dim];
                shape.forward(params, xs, &mut y);
                (y, SeqCache::Linear)
            }
            SeqModel::Mlp { model, window } => {
                debug_assert_eq!(t, *window);
                let (y, c) = model.forward(xs);
                (y, SeqCache::Mlp(c))
            }
            SeqModel::Lstm(m) => {
                let (y, c) = m.forward(xs, t);
                (y, SeqCache::Lstm(c))
            }
            SeqModel::BiLstm(m) => {
                let (y, c) = m.forward(xs, t);
                (y, SeqCache::BiLstm(c))
            }
            SeqModel::Gru(m) => {
                let (y, c) = m.forward(xs, t);
                (y, SeqCache::Gru(c))
            }
            SeqModel::Transformer(m) => {
                let (y, c) = m.forward(xs, t);
                (y, SeqCache::Transformer(c))
            }
        }
    }

    /// Backward; accumulates into `grads` (length [`Self::num_params`]).
    pub fn backward(
        &self,
        xs: &[f32],
        t: usize,
        cache: &SeqCache,
        dout: &[f32],
        grads: &mut [f32],
    ) {
        match (self, cache) {
            (SeqModel::Linear { shape, params, .. }, SeqCache::Linear) => {
                let mut dx = vec![0.0f32; shape.in_dim];
                shape.backward(params, xs, dout, grads, &mut dx);
            }
            (SeqModel::Mlp { model, .. }, SeqCache::Mlp(c)) => {
                model.backward(xs, c, dout, grads);
            }
            (SeqModel::Lstm(m), SeqCache::Lstm(c)) => m.backward(xs, c, dout, grads),
            (SeqModel::BiLstm(m), SeqCache::BiLstm(c)) => m.backward(xs, c, dout, grads),
            (SeqModel::Gru(m), SeqCache::Gru(c)) => m.backward(xs, c, dout, grads),
            (SeqModel::Transformer(m), SeqCache::Transformer(c)) => m.backward(xs, c, dout, grads),
            _ => panic!("cache does not match model architecture"),
        }
        let _ = t;
    }

    /// Batched forward over `batch` independent `t x in_dim` sequences.
    ///
    /// `xs` is sequence-major (`batch` consecutive `t x in_dim` blocks);
    /// the result is sequence-major (`batch x out_dim`). Every
    /// architecture runs all sequences in lockstep over batch-major
    /// buffers so each weight matrix is traversed once per use for the
    /// whole batch, with lane-blocked (vectorizable) inner loops — and
    /// each sequence's output is bit-identical to an independent
    /// `forward` call, so batching is invisible to results.
    pub fn forward_batch(&self, xs: &[f32], t: usize, batch: usize) -> Vec<f32> {
        debug_assert_eq!(xs.len(), batch * t * self.in_dim());
        match self {
            SeqModel::Linear { shape, params, .. } => {
                let mut x_bm = vec![0.0f32; shape.in_dim * batch];
                seq_to_bm(xs, &mut x_bm, shape.in_dim, batch);
                let mut y_bm = vec![0.0f32; shape.out_dim * batch];
                let mut acc = vec![0.0f32; batch];
                shape.forward_bm(params, &x_bm, &mut y_bm, batch, &mut acc);
                let mut out = vec![0.0f32; batch * shape.out_dim];
                bm_to_seq(&y_bm, &mut out, shape.out_dim, batch);
                out
            }
            SeqModel::Mlp { model, .. } => model.forward_batch(xs, batch),
            SeqModel::Lstm(m) => m.forward_batch(xs, t, batch),
            SeqModel::BiLstm(m) => m.forward_batch(xs, t, batch),
            SeqModel::Gru(m) => m.forward_batch(xs, t, batch),
            SeqModel::Transformer(m) => m.forward_batch(xs, t, batch),
        }
    }

    /// Batched forward that also retains the activations needed for
    /// [`SeqModel::backward_batch`] — the training twin of
    /// [`SeqModel::forward_batch`].
    ///
    /// Layouts match `forward_batch` (`xs` sequence-major, result
    /// sequence-major `batch x out_dim`), and every sequence's output
    /// is bit-identical to an independent [`SeqModel::forward`] call.
    /// Every architecture keeps lane-blocked batch-major caches.
    pub fn forward_batch_cached(
        &self,
        xs: &[f32],
        t: usize,
        batch: usize,
    ) -> (Vec<f32>, BatchCache) {
        match self {
            SeqModel::Linear { .. } => (self.forward_batch(xs, t, batch), BatchCache::Linear),
            SeqModel::Mlp { model, .. } => {
                let (out, c) = model.forward_batch_cached(xs, batch);
                (out, BatchCache::Mlp(c))
            }
            SeqModel::Lstm(m) => {
                let (out, c) = m.forward_batch_cached(xs, t, batch);
                (out, BatchCache::Lstm(c))
            }
            SeqModel::BiLstm(m) => {
                let (out, c) = m.forward_batch_cached(xs, t, batch);
                (out, BatchCache::BiLstm(c))
            }
            SeqModel::Gru(m) => {
                let (out, c) = m.forward_batch_cached(xs, t, batch);
                (out, BatchCache::Gru(c))
            }
            SeqModel::Transformer(m) => {
                let (out, c) = m.forward_batch_cached(xs, t, batch);
                (out, BatchCache::Transformer(c))
            }
        }
    }

    /// Batched backward: BPTT over all `batch` sequences from
    /// per-sequence upstream gradients `douts` (sequence-major
    /// `batch x out_dim`), accumulating into `grads`.
    ///
    /// The accumulated gradients are bit-identical to calling the
    /// scalar [`SeqModel::backward`] once per sequence, in batch order,
    /// into the same buffer — so a batched training step computes
    /// exactly the scalar step's gradient sum, only on batch-major
    /// (vectorizable, weight-reusing) kernels.
    ///
    /// Panics if `cache` does not match the architecture.
    pub fn backward_batch(
        &self,
        xs: &[f32],
        t: usize,
        batch: usize,
        cache: &BatchCache,
        douts: &[f32],
        grads: &mut [f32],
    ) {
        debug_assert_eq!(douts.len(), batch * self.out_dim());
        match (self, cache) {
            (SeqModel::Linear { shape, .. }, BatchCache::Linear) => {
                // A linear map's whole backward IS parameter
                // accumulation (the input gradient is discarded), so the
                // scalar-order replay is the complete batched backward.
                debug_assert_eq!(xs.len(), batch * shape.in_dim);
                for s in 0..batch {
                    shape.backward_params(
                        &xs[s * shape.in_dim..(s + 1) * shape.in_dim],
                        &douts[s * shape.out_dim..(s + 1) * shape.out_dim],
                        grads,
                    );
                }
            }
            (SeqModel::Mlp { model, .. }, BatchCache::Mlp(c)) => {
                debug_assert_eq!(c.batch(), batch);
                model.backward_batch(xs, c, douts, grads);
            }
            (SeqModel::Lstm(m), BatchCache::Lstm(c)) => {
                debug_assert_eq!((c.t_steps(), c.batch()), (t, batch));
                m.backward_batch(xs, c, douts, grads);
            }
            (SeqModel::BiLstm(m), BatchCache::BiLstm(c)) => {
                debug_assert_eq!((c.t_steps(), c.batch()), (t, batch));
                m.backward_batch(xs, c, douts, grads);
            }
            (SeqModel::Gru(m), BatchCache::Gru(c)) => {
                debug_assert_eq!((c.t_steps(), c.batch()), (t, batch));
                m.backward_batch(xs, c, douts, grads);
            }
            (SeqModel::Transformer(m), BatchCache::Transformer(c)) => {
                debug_assert_eq!((c.t_steps(), c.batch()), (t, batch));
                m.backward_batch(xs, c, douts, grads);
            }
            _ => panic!("batch cache does not match model architecture"),
        }
    }

    /// Whether this architecture supports one-step streaming (a
    /// stateful recurrence: LSTM and GRU).
    pub fn supports_streaming(&self) -> bool {
        matches!(self, SeqModel::Lstm(_) | SeqModel::Gru(_))
    }

    /// Fresh zeroed streaming state, or `None` for window-only
    /// architectures.
    pub fn stream_state(&self) -> Option<StreamState> {
        match self {
            SeqModel::Lstm(m) => Some(StreamState::Lstm(m.zero_state())),
            SeqModel::Gru(m) => Some(StreamState::Gru(m.zero_state())),
            _ => None,
        }
    }

    /// One streaming step: feed `x` (length [`SeqModel::in_dim`]),
    /// update `state`, and write the representation into `out` (length
    /// [`SeqModel::out_dim`]).
    ///
    /// Panics if `state` does not match the architecture.
    pub fn stream_step(&self, state: &mut StreamState, x: &[f32], out: &mut [f32]) {
        match (self, state) {
            (SeqModel::Lstm(m), StreamState::Lstm(s)) => m.step(s, x, out),
            (SeqModel::Gru(m), StreamState::Gru(s)) => m.step(s, x, out),
            _ => panic!("stream state does not match model architecture"),
        }
    }

    /// The streaming-capable inner LSTM, when this model is an LSTM
    /// (used for fast trace-wide representation generation).
    pub fn as_lstm(&self) -> Option<&Lstm> {
        match self {
            SeqModel::Lstm(m) => Some(m),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_models(in_dim: usize, d: usize, window: usize) -> Vec<SeqModel> {
        vec![
            SeqModel::linear(in_dim, d, window, 1),
            SeqModel::mlp(in_dim, d, window, 2),
            SeqModel::lstm(in_dim, d, 2, 3),
            SeqModel::bilstm(in_dim, d, 1, 4),
            SeqModel::gru(in_dim, d, 2, 5),
            SeqModel::transformer(in_dim, d, 2, 6),
        ]
    }

    #[test]
    fn every_architecture_roundtrips_params() {
        for mut m in all_models(6, 8, 4) {
            let p = m.get_params();
            assert_eq!(p.len(), m.num_params(), "{}", m.describe());
            let mut p2 = p.clone();
            for v in &mut p2 {
                *v += 0.001;
            }
            m.set_params(&p2);
            assert_eq!(m.get_params(), p2, "{}", m.describe());
        }
    }

    #[test]
    fn every_architecture_produces_d_dimensional_output() {
        let (in_dim, d, w) = (6, 8, 4);
        let xs = vec![0.1f32; w * in_dim];
        for m in all_models(in_dim, d, w) {
            let (y, _) = m.forward(&xs, w);
            assert_eq!(y.len(), d, "{}", m.describe());
            assert!(y.iter().all(|v| v.is_finite()), "{}", m.describe());
        }
    }

    #[test]
    fn every_architecture_accumulates_gradients() {
        let (in_dim, d, w) = (5, 8, 3);
        let xs = vec![0.2f32; w * in_dim];
        // The probe gradient must vary across features: a uniform dout
        // is in the null space of post-LN architectures (the sum of a
        // LayerNorm's outputs is the constant sum(beta) when gamma is
        // uniform), which would make the transformer's upstream
        // gradients *exactly* zero rather than reveal a bug.
        let dout: Vec<f32> = (0..d)
            .map(|k| if k % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        for m in all_models(in_dim, d, w) {
            let (_, cache) = m.forward(&xs, w);
            let mut grads = vec![0.0f32; m.num_params()];
            m.backward(&xs, w, &cache, &dout, &mut grads);
            let nonzero = grads.iter().filter(|g| **g != 0.0).count();
            assert!(
                nonzero > grads.len() / 10,
                "{}: only {nonzero}/{} gradient entries nonzero",
                m.describe(),
                grads.len()
            );
        }
    }

    #[test]
    fn describe_uses_paper_naming() {
        assert_eq!(SeqModel::lstm(51, 256, 2, 0).describe(), "LSTM-2-256");
        assert_eq!(SeqModel::linear(51, 256, 16, 0).describe(), "Linear-1-256");
        assert_eq!(
            SeqModel::transformer(51, 32, 2, 0).describe(),
            "Transformer-2-32"
        );
        assert_eq!(SeqModel::bilstm(51, 64, 2, 0).describe(), "biLSTM-2-64");
        assert_eq!(SeqModel::gru(51, 32, 3, 0).describe(), "GRU-3-32");
    }

    #[test]
    fn lstm_exposes_streaming() {
        assert!(SeqModel::lstm(4, 8, 2, 0).as_lstm().is_some());
        assert!(SeqModel::gru(4, 8, 2, 0).as_lstm().is_none());
    }

    #[test]
    fn exactly_the_recurrent_architectures_stream() {
        for m in all_models(4, 8, 3) {
            let expect = matches!(m, SeqModel::Lstm(_) | SeqModel::Gru(_));
            assert_eq!(m.supports_streaming(), expect, "{}", m.describe());
            assert_eq!(m.stream_state().is_some(), expect, "{}", m.describe());
        }
    }

    #[test]
    fn stream_steps_match_windowed_forward_for_recurrent_models() {
        let (in_dim, d, t) = (5, 8, 6);
        let xs: Vec<f32> = (0..t * in_dim)
            .map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.07)
            .collect();
        for m in [
            SeqModel::lstm(in_dim, d, 2, 3),
            SeqModel::gru(in_dim, d, 2, 5),
        ] {
            let (win, _) = m.forward(&xs, t);
            let mut state = m.stream_state().unwrap();
            let mut out = vec![0.0f32; d];
            for step in 0..t {
                m.stream_step(
                    &mut state,
                    &xs[step * in_dim..(step + 1) * in_dim],
                    &mut out,
                );
            }
            assert_eq!(win, out, "{}", m.describe());
        }
    }
}
