//! Bidirectional LSTM (the `biLSTM-2-d` ablation architecture of
//! Figure 6): a forward stack and a backward stack, each of hidden size
//! `d/2`, concatenated into a `d`-dimensional representation.

use crate::lstm::{Lstm, LstmBatchCache, LstmCache};

/// Bidirectional LSTM: two independent stacks over the window, one
/// reading forward and one reading the reversed window.
#[derive(Debug, Clone)]
pub struct BiLstm {
    fwd: Lstm,
    bwd: Lstm,
    in_dim: usize,
    half: usize,
}

/// Cache for [`BiLstm::forward`].
#[derive(Debug, Clone)]
pub struct BiLstmCache {
    fwd: LstmCache,
    bwd: LstmCache,
    rev_xs: Vec<f32>,
    t_steps: usize,
}

fn reverse_steps(xs: &[f32], t: usize, dim: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; xs.len()];
    for s in 0..t {
        out[s * dim..(s + 1) * dim].copy_from_slice(&xs[(t - 1 - s) * dim..(t - s) * dim]);
    }
    out
}

/// Per-sequence step reversal of a sequence-major batch block (pure
/// data movement: each sequence's steps are mirrored exactly as
/// [`reverse_steps`] would for the scalar path).
fn reverse_steps_batch(xs: &[f32], t: usize, dim: usize, batch: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; xs.len()];
    let n = t * dim;
    for s in 0..batch {
        let src = &xs[s * n..(s + 1) * n];
        let dst = &mut out[s * n..(s + 1) * n];
        for step in 0..t {
            dst[step * dim..(step + 1) * dim]
                .copy_from_slice(&src[(t - 1 - step) * dim..(t - step) * dim]);
        }
    }
    out
}

/// Batched forward cache: both directions' lane-blocked batch-major
/// activations, plus the shared reversed input block the backward stack
/// consumed.
#[derive(Debug, Clone)]
pub struct BiLstmBatchCache {
    fwd: LstmBatchCache,
    bwd: LstmBatchCache,
    rev_xs: Vec<f32>,
}

impl BiLstmBatchCache {
    /// Number of timesteps the cache covers.
    pub fn t_steps(&self) -> usize {
        self.fwd.t_steps()
    }

    /// Number of sequences in the batch.
    pub fn batch(&self) -> usize {
        self.fwd.batch()
    }
}

impl BiLstm {
    /// Build a bidirectional LSTM whose concatenated output has `out_dim`
    /// dimensions (`out_dim` must be even).
    pub fn new(in_dim: usize, out_dim: usize, n_layers: usize, seed: u64) -> BiLstm {
        assert!(out_dim.is_multiple_of(2), "biLSTM output dim must be even");
        let half = out_dim / 2;
        BiLstm {
            fwd: Lstm::new(in_dim, half, n_layers, seed),
            bwd: Lstm::new(in_dim, half, n_layers, seed ^ 0xb1d1),
            in_dim,
            half,
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality (both directions concatenated).
    pub fn out_dim(&self) -> usize {
        2 * self.half
    }

    /// Layer count of each direction stack.
    pub fn num_layers(&self) -> usize {
        self.fwd.num_layers()
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.fwd.params().len() + self.bwd.params().len()
    }

    /// Flat parameters: forward stack then backward stack.
    pub fn params(&self) -> Vec<f32> {
        let mut p = self.fwd.params().to_vec();
        p.extend_from_slice(self.bwd.params());
        p
    }

    /// Overwrite parameters from a flat slice (same layout as
    /// [`BiLstm::params`]).
    pub fn set_params(&mut self, p: &[f32]) {
        let nf = self.fwd.params().len();
        self.fwd.params_mut().copy_from_slice(&p[..nf]);
        self.bwd.params_mut().copy_from_slice(&p[nf..]);
    }

    /// Full-window forward; returns the concatenated representation.
    pub fn forward(&self, xs: &[f32], t_steps: usize) -> (Vec<f32>, BiLstmCache) {
        let rev_xs = reverse_steps(xs, t_steps, self.in_dim);
        let (of, cf) = self.fwd.forward(xs, t_steps);
        let (ob, cb) = self.bwd.forward(&rev_xs, t_steps);
        let mut out = of;
        out.extend_from_slice(&ob);
        (
            out,
            BiLstmCache {
                fwd: cf,
                bwd: cb,
                rev_xs,
                t_steps,
            },
        )
    }

    /// Batched forward over `batch` independent sequences: both
    /// direction stacks run fully batched (lane-blocked batch-major
    /// kernels) over the shared window block — the forward stack on
    /// `xs` directly, the backward stack on one per-sequence-reversed
    /// copy — and the per-sequence outputs are concatenated. Each
    /// sequence's result is bit-identical to [`BiLstm::forward`].
    pub fn forward_batch(&self, xs: &[f32], t_steps: usize, batch: usize) -> Vec<f32> {
        let rev_xs = reverse_steps_batch(xs, t_steps, self.in_dim, batch);
        let of = self.fwd.forward_batch(xs, t_steps, batch);
        let ob = self.bwd.forward_batch(&rev_xs, t_steps, batch);
        self.concat_outputs(&of, &ob, batch)
    }

    /// Batched forward retaining both stacks' batch-major activations
    /// for [`BiLstm::backward_batch`].
    pub fn forward_batch_cached(
        &self,
        xs: &[f32],
        t_steps: usize,
        batch: usize,
    ) -> (Vec<f32>, BiLstmBatchCache) {
        let rev_xs = reverse_steps_batch(xs, t_steps, self.in_dim, batch);
        let (of, cf) = self.fwd.forward_batch_cached(xs, t_steps, batch);
        let (ob, cb) = self.bwd.forward_batch_cached(&rev_xs, t_steps, batch);
        let out = self.concat_outputs(&of, &ob, batch);
        (
            out,
            BiLstmBatchCache {
                fwd: cf,
                bwd: cb,
                rev_xs,
            },
        )
    }

    fn concat_outputs(&self, of: &[f32], ob: &[f32], batch: usize) -> Vec<f32> {
        let half = self.half;
        let d = 2 * half;
        let mut out = vec![0.0f32; batch * d];
        for s in 0..batch {
            out[s * d..s * d + half].copy_from_slice(&of[s * half..(s + 1) * half]);
            out[s * d + half..(s + 1) * d].copy_from_slice(&ob[s * half..(s + 1) * half]);
        }
        out
    }

    /// Batched backward from per-sequence upstream gradients `douts`
    /// (sequence-major `batch x out_dim`), accumulating into `grads`.
    ///
    /// The split halves go through each stack's batch-major BPTT
    /// ([`Lstm::backward_batch`]), whose parameter accumulation is
    /// already sequence-ascending in scalar order; the two stacks' grad
    /// regions are disjoint, so the result is bit-identical to calling
    /// [`BiLstm::backward`] once per sequence in batch order.
    pub fn backward_batch(
        &self,
        xs: &[f32],
        cache: &BiLstmBatchCache,
        douts: &[f32],
        grads: &mut [f32],
    ) {
        let batch = cache.batch();
        let half = self.half;
        let d = 2 * half;
        debug_assert_eq!(douts.len(), batch * d);
        let mut douts_f = vec![0.0f32; batch * half];
        let mut douts_b = vec![0.0f32; batch * half];
        for s in 0..batch {
            douts_f[s * half..(s + 1) * half].copy_from_slice(&douts[s * d..s * d + half]);
            douts_b[s * half..(s + 1) * half].copy_from_slice(&douts[s * d + half..(s + 1) * d]);
        }
        let nf = self.fwd.params().len();
        let (gf, gb) = grads.split_at_mut(nf);
        self.fwd.backward_batch(xs, &cache.fwd, &douts_f, gf);
        self.bwd
            .backward_batch(&cache.rev_xs, &cache.bwd, &douts_b, gb);
    }

    /// Backward; `grads` has [`BiLstm::num_params`] entries laid out as
    /// forward-stack grads then backward-stack grads.
    pub fn backward(&self, xs: &[f32], cache: &BiLstmCache, dout: &[f32], grads: &mut [f32]) {
        let nf = self.fwd.params().len();
        let (gf, gb) = grads.split_at_mut(nf);
        self.fwd.backward(xs, &cache.fwd, &dout[..self.half], gf);
        self.bwd
            .backward(&cache.rev_xs, &cache.bwd, &dout[self.half..], gb);
        let _ = cache.t_steps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;
    use crate::tensor::dot;
    use rand::Rng;

    #[test]
    fn output_concatenates_both_directions() {
        let m = BiLstm::new(3, 8, 1, 5);
        let xs = vec![0.3f32; 4 * 3];
        let (out, _) = m.forward(&xs, 4);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn backward_direction_sees_reversed_sequence() {
        let m = BiLstm::new(2, 4, 1, 9);
        let t = 5;
        let mut rng = seeded_rng(1);
        let xs: Vec<f32> = (0..t * 2).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let rev = reverse_steps(&xs, t, 2);
        let rev_rev = reverse_steps(&rev, t, 2);
        assert_eq!(xs, rev_rev);
        // Perturbing the LAST input changes the backward stack's view of
        // its FIRST step, so the full output must change substantially.
        let mut xs2 = xs.clone();
        xs2[(t - 1) * 2] += 1.0;
        let (o1, _) = m.forward(&xs, t);
        let (o2, _) = m.forward(&xs2, t);
        let back_diff: f32 = o1[2..]
            .iter()
            .zip(&o2[2..])
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(back_diff > 1e-4);
    }

    #[test]
    fn gradient_check() {
        let mut m = BiLstm::new(3, 6, 1, 21);
        let t = 4;
        let mut rng = seeded_rng(4);
        let xs: Vec<f32> = (0..t * 3).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let dout: Vec<f32> = (0..6).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let (_, cache) = m.forward(&xs, t);
        let mut grads = vec![0.0f32; m.num_params()];
        m.backward(&xs, &cache, &dout, &mut grads);

        let loss = |m: &BiLstm| {
            let (o, _) = m.forward(&xs, t);
            dot(&o, &dout)
        };
        let flat = m.params();
        let mut idx = 3usize;
        let mut checked = 0;
        while idx < flat.len() && checked < 16 {
            let eps = 3e-3;
            let mut p = flat.clone();
            p[idx] += eps;
            m.set_params(&p);
            let lp = loss(&m);
            p[idx] -= 2.0 * eps;
            m.set_params(&p);
            let lm = loss(&m);
            p[idx] += eps;
            m.set_params(&p);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grads[idx]).abs() < 2e-2 * (1.0 + num.abs().max(grads[idx].abs())),
                "param {idx}: numeric {num} vs analytic {}",
                grads[idx]
            );
            checked += 1;
            idx = idx * 2 + 5;
        }
    }
}
