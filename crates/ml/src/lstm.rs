//! Long short-term memory layers — the paper's default foundation-model
//! architecture (a 2-layer unidirectional LSTM, Section III-D).
//!
//! Provides full-sequence forward/backward (training) and a stateful
//! streaming step (fast trace-wide representation generation).

use crate::init::seeded_rng;
// The fast activations are deliberate: every path (scalar step,
// full-sequence forward, batched forward, backward's cell-tanh
// recomputation) must call the *same* straight-line-arithmetic
// functions so batched inference stays bit-identical to scalar
// inference while its inner loops vectorize (see `tensor::tanh_apx`).
use crate::tensor::{
    for_lane_chunks, gemm_bm_acc, gemm_bm_t_acc, gemv_acc, gemv_t_acc, outer_acc, sigmoid_apx,
    tanh_apx, BatchInput,
};

/// Shape of one LSTM layer with input size `in_dim` and hidden size `h`.
///
/// Flat parameter layout: `[W_ih (4h x in) | W_hh (4h x h) | b (4h)]`,
/// with gate order `i, f, g, o`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LstmLayerShape {
    /// Input features per step.
    pub in_dim: usize,
    /// Hidden size.
    pub hidden: usize,
}

/// Per-layer forward activations retained for backward.
#[derive(Debug, Clone)]
pub struct LstmLayerCache {
    /// Post-activation gates per step: `T x 4h` (`i, f, g, o`).
    pub gates: Vec<f32>,
    /// Cell states per step: `T x h`.
    pub cells: Vec<f32>,
    /// Hidden states per step: `T x h` (inputs to the next layer).
    pub hs: Vec<f32>,
}

impl LstmLayerShape {
    /// Number of parameters.
    pub fn param_len(&self) -> usize {
        4 * self.hidden * (self.in_dim + self.hidden) + 4 * self.hidden
    }

    fn split<'a>(&self, w: &'a [f32]) -> (&'a [f32], &'a [f32], &'a [f32]) {
        let (h, i) = (self.hidden, self.in_dim);
        let (w_ih, rest) = w.split_at(4 * h * i);
        let (w_hh, b) = rest.split_at(4 * h * h);
        (w_ih, w_hh, b)
    }

    fn split_mut<'a>(&self, w: &'a mut [f32]) -> (&'a mut [f32], &'a mut [f32], &'a mut [f32]) {
        let (h, i) = (self.hidden, self.in_dim);
        let (w_ih, rest) = w.split_at_mut(4 * h * i);
        let (w_hh, b) = rest.split_at_mut(4 * h * h);
        (w_ih, w_hh, b)
    }

    /// Initialize parameters (Xavier weights, zero bias except the
    /// forget gate, which starts at 1.0 per standard practice).
    pub fn init(&self, w: &mut [f32], rng: &mut rand::rngs::StdRng) {
        let h = self.hidden;
        let (w_ih, w_hh, b) = self.split_mut(w);
        crate::init::xavier_uniform(w_ih, self.in_dim, 4 * h, rng);
        crate::init::xavier_uniform(w_hh, h, 4 * h, rng);
        b.fill(0.0);
        b[h..2 * h].fill(1.0); // forget-gate bias
    }

    /// One streaming step: updates `(h_state, c_state)` from input `x`.
    pub fn step(&self, w: &[f32], x: &[f32], h_state: &mut [f32], c_state: &mut [f32]) {
        let h = self.hidden;
        let (w_ih, w_hh, b) = self.split(w);
        let mut z = b.to_vec();
        gemv_acc(w_ih, x, &mut z, 4 * h, self.in_dim);
        gemv_acc(w_hh, h_state, &mut z, 4 * h, h);
        for k in 0..h {
            let ig = sigmoid_apx(z[k]);
            let fg = sigmoid_apx(z[h + k]);
            let gg = tanh_apx(z[2 * h + k]);
            let og = sigmoid_apx(z[3 * h + k]);
            let c = fg * c_state[k] + ig * gg;
            c_state[k] = c;
            h_state[k] = og * tanh_apx(c);
        }
    }

    /// Full-sequence forward: `xs` is `T x in_dim`; returns the cache
    /// (which contains all hidden states).
    pub fn forward(&self, w: &[f32], xs: &[f32], t_steps: usize) -> LstmLayerCache {
        let h = self.hidden;
        let (w_ih, w_hh, b) = self.split(w);
        let mut cache = LstmLayerCache {
            gates: vec![0.0; t_steps * 4 * h],
            cells: vec![0.0; t_steps * h],
            hs: vec![0.0; t_steps * h],
        };
        let mut h_prev = vec![0.0f32; h];
        let mut c_prev = vec![0.0f32; h];
        for t in 0..t_steps {
            let x = &xs[t * self.in_dim..(t + 1) * self.in_dim];
            let mut z = b.to_vec();
            gemv_acc(w_ih, x, &mut z, 4 * h, self.in_dim);
            gemv_acc(w_hh, &h_prev, &mut z, 4 * h, h);
            let gates = &mut cache.gates[t * 4 * h..(t + 1) * 4 * h];
            let cells = &mut cache.cells[t * h..(t + 1) * h];
            let hs = &mut cache.hs[t * h..(t + 1) * h];
            for k in 0..h {
                let ig = sigmoid_apx(z[k]);
                let fg = sigmoid_apx(z[h + k]);
                let gg = tanh_apx(z[2 * h + k]);
                let og = sigmoid_apx(z[3 * h + k]);
                let c = fg * c_prev[k] + ig * gg;
                gates[k] = ig;
                gates[h + k] = fg;
                gates[2 * h + k] = gg;
                gates[3 * h + k] = og;
                cells[k] = c;
                hs[k] = og * tanh_apx(c);
            }
            h_prev.copy_from_slice(hs);
            c_prev.copy_from_slice(cells);
        }
        cache
    }

    /// Full-sequence backward.
    ///
    /// `dh` is `T x h`: the gradient w.r.t. each step's hidden output
    /// injected from above (consumed in place). Parameter gradients are
    /// accumulated into `grads`; input gradients into `dxs` (`T x in`).
    #[allow(clippy::too_many_arguments)]
    pub fn backward(
        &self,
        w: &[f32],
        xs: &[f32],
        t_steps: usize,
        cache: &LstmLayerCache,
        dh: &mut [f32],
        grads: &mut [f32],
        dxs: &mut [f32],
    ) {
        let h = self.hidden;
        let i_dim = self.in_dim;
        let (w_ih, w_hh, _) = self.split(w);
        let wn_ih = 4 * h * i_dim;
        let wn_hh = 4 * h * h;
        let (g_ih, rest) = grads.split_at_mut(wn_ih);
        let (g_hh, g_b) = rest.split_at_mut(wn_hh);

        let mut dc_next = vec![0.0f32; h];
        let mut dh_rec = vec![0.0f32; h];
        let mut dz = vec![0.0f32; 4 * h];
        for t in (0..t_steps).rev() {
            let gates = &cache.gates[t * 4 * h..(t + 1) * 4 * h];
            let cells = &cache.cells[t * h..(t + 1) * h];
            let c_prev: &[f32] = if t == 0 {
                &[]
            } else {
                &cache.cells[(t - 1) * h..t * h]
            };
            let h_prev: &[f32] = if t == 0 {
                &[]
            } else {
                &cache.hs[(t - 1) * h..t * h]
            };
            // total dh at step t = injected + recurrent
            let dh_t = &mut dh[t * h..(t + 1) * h];
            for (d, r) in dh_t.iter_mut().zip(&dh_rec) {
                *d += r;
            }
            for k in 0..h {
                let ig = gates[k];
                let fg = gates[h + k];
                let gg = gates[2 * h + k];
                let og = gates[3 * h + k];
                let tc = tanh_apx(cells[k]);
                let dh_k = dh_t[k];
                let mut dc = dc_next[k] + dh_k * og * (1.0 - tc * tc);
                let d_o = dh_k * tc;
                let d_i = dc * gg;
                let d_g = dc * ig;
                let cp = if t == 0 { 0.0 } else { c_prev[k] };
                let d_f = dc * cp;
                dc *= fg;
                dc_next[k] = dc;
                dz[k] = d_i * ig * (1.0 - ig);
                dz[h + k] = d_f * fg * (1.0 - fg);
                dz[2 * h + k] = d_g * (1.0 - gg * gg);
                dz[3 * h + k] = d_o * og * (1.0 - og);
            }
            let x = &xs[t * i_dim..(t + 1) * i_dim];
            outer_acc(g_ih, &dz, x);
            for (g, &d) in g_b.iter_mut().zip(&dz) {
                *g += d;
            }
            gemv_t_acc(
                w_ih,
                &dz,
                &mut dxs[t * i_dim..(t + 1) * i_dim],
                4 * h,
                i_dim,
            );
            dh_rec.fill(0.0);
            if t > 0 {
                outer_acc(g_hh, &dz, h_prev);
                gemv_t_acc(w_hh, &dz, &mut dh_rec, 4 * h, h);
            }
        }
    }
}

/// One LSTM gate-activation chunk of compile-time width `L` (all
/// slices have length `L`). The element math is exactly the scalar
/// path's: `i,f,g,o` gates through the shared fast activations, then
/// `c = f·c + i·g`, `h = o·tanh(c)`.
#[inline]
fn gates_chunk<const L: usize>(
    zi: &[f32],
    zf: &[f32],
    zg: &[f32],
    zo: &[f32],
    c_row: &mut [f32],
    h_row: &mut [f32],
) {
    for s in 0..L {
        let ig = sigmoid_apx(zi[s]);
        let fg = sigmoid_apx(zf[s]);
        let gg = tanh_apx(zg[s]);
        let og = sigmoid_apx(zo[s]);
        let c = fg * c_row[s] + ig * gg;
        c_row[s] = c;
        h_row[s] = og * tanh_apx(c);
    }
}

/// One LSTM gate-activation chunk that also records the post-activation
/// gates (the training variant of [`gates_chunk`]): element math is
/// identical, `c_prev` is read separately from the written `c_new`
/// (the cache keeps every timestep), and the four gate rows are stored
/// for backward.
#[allow(clippy::too_many_arguments)]
#[inline]
fn gates_chunk_cached<const L: usize>(
    zi: &[f32],
    zf: &[f32],
    zg: &[f32],
    zo: &[f32],
    c_prev: &[f32],
    c_new: &mut [f32],
    h_new: &mut [f32],
    gi: &mut [f32],
    gf: &mut [f32],
    gg_row: &mut [f32],
    go: &mut [f32],
) {
    for s in 0..L {
        let ig = sigmoid_apx(zi[s]);
        let fg = sigmoid_apx(zf[s]);
        let gg = tanh_apx(zg[s]);
        let og = sigmoid_apx(zo[s]);
        let c = fg * c_prev[s] + ig * gg;
        gi[s] = ig;
        gf[s] = fg;
        gg_row[s] = gg;
        go[s] = og;
        c_new[s] = c;
        h_new[s] = og * tanh_apx(c);
    }
}

/// One batch-major LSTM backward chunk of compile-time width `L`: the
/// per-element math is exactly [`LstmLayerShape::backward`]'s gate
/// loop, applied lane-wise (each lane follows the scalar operation
/// sequence, so batched deltas are bit-identical per sequence).
#[allow(clippy::too_many_arguments)]
#[inline]
fn lstm_bwd_chunk<const L: usize>(
    gi: &[f32],
    gf: &[f32],
    gg: &[f32],
    go: &[f32],
    cl: &[f32],
    cp: &[f32],
    dht: &[f32],
    dcn: &mut [f32],
    dzi: &mut [f32],
    dzf: &mut [f32],
    dzg: &mut [f32],
    dzo: &mut [f32],
) {
    for s in 0..L {
        let ig = gi[s];
        let fg = gf[s];
        let ggv = gg[s];
        let og = go[s];
        let tc = tanh_apx(cl[s]);
        let dh_k = dht[s];
        let mut dc = dcn[s] + dh_k * og * (1.0 - tc * tc);
        let d_o = dh_k * tc;
        let d_i = dc * ggv;
        let d_g = dc * ig;
        let d_f = dc * cp[s];
        dc *= fg;
        dcn[s] = dc;
        dzi[s] = d_i * ig * (1.0 - ig);
        dzf[s] = d_f * fg * (1.0 - fg);
        dzg[s] = d_g * (1.0 - ggv * ggv);
        dzo[s] = d_o * og * (1.0 - og);
    }
}

/// Batch-major forward activations of one LSTM layer, retained for the
/// batched backward pass. Row `r` of step `t` lives at
/// `t * rows * batch + r * batch + s` for sequence `s` (the same
/// lane-blocked layout the batched kernels compute in).
#[derive(Debug, Clone)]
pub struct LstmLayerBatchCache {
    /// `T x 4h x batch`: post-activation gates (`i, f, g, o`).
    pub gates: Vec<f32>,
    /// `T x h x batch`: cell states.
    pub cells: Vec<f32>,
    /// `T x h x batch`: hidden states (inputs to the next layer).
    pub hs: Vec<f32>,
}

/// Forward cache for [`Lstm::forward_batch_cached`].
#[derive(Debug, Clone)]
pub struct LstmBatchCache {
    layer_caches: Vec<LstmLayerBatchCache>,
    t_steps: usize,
    batch: usize,
}

impl LstmBatchCache {
    /// Number of timesteps the cache covers.
    pub fn t_steps(&self) -> usize {
        self.t_steps
    }

    /// Number of sequences in the batch.
    pub fn batch(&self) -> usize {
        self.batch
    }
}

impl LstmLayerShape {
    /// Batch-major full-sequence backward over a [`LstmLayerBatchCache`]
    /// (the lockstep mirror of [`LstmLayerShape::backward`]).
    ///
    /// `dh` is `T x h x batch` (consumed in place); input gradients go
    /// to `dxs` (`T x in x batch`). Lane deltas follow the scalar
    /// operation sequence exactly, and parameter gradients are
    /// accumulated *after* the timestep recursion in the scalar path's
    /// order — sequence-ascending, timestep-descending, through the
    /// same [`outer_acc`] — so the accumulated `grads` are bit-identical
    /// to running the scalar backward per sequence in batch order.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_batch(
        &self,
        w: &[f32],
        x: &BatchInput<'_>,
        t_steps: usize,
        batch: usize,
        cache: &LstmLayerBatchCache,
        dh: &mut [f32],
        grads: &mut [f32],
        dxs: &mut [f32],
    ) {
        let h = self.hidden;
        let i_dim = self.in_dim;
        let (w_ih, w_hh, _) = self.split(w);
        let (g_ih, rest) = grads.split_at_mut(4 * h * i_dim);
        let (g_hh, g_b) = rest.split_at_mut(4 * h * h);

        let mut dc_next = vec![0.0f32; h * batch];
        let mut dh_rec = vec![0.0f32; h * batch];
        // All timesteps' pre-activation deltas, batch-major, kept so the
        // parameter accumulation below can run in canonical order.
        let mut dzs = vec![0.0f32; t_steps * 4 * h * batch];
        let zero_row = vec![0.0f32; batch];
        for t in (0..t_steps).rev() {
            let gates = &cache.gates[t * 4 * h * batch..(t + 1) * 4 * h * batch];
            let cells = &cache.cells[t * h * batch..(t + 1) * h * batch];
            let dh_t = &mut dh[t * h * batch..(t + 1) * h * batch];
            for (d, r) in dh_t.iter_mut().zip(&dh_rec) {
                *d += r;
            }
            let dz = &mut dzs[t * 4 * h * batch..(t + 1) * 4 * h * batch];
            let (dz_i, dz_rest) = dz.split_at_mut(h * batch);
            let (dz_f, dz_rest) = dz_rest.split_at_mut(h * batch);
            let (dz_g, dz_o) = dz_rest.split_at_mut(h * batch);
            for k in 0..h {
                let row = |r: usize| &gates[r * batch..(r + 1) * batch];
                let (gi, gf, gg, go) = (row(k), row(h + k), row(2 * h + k), row(3 * h + k));
                let cl = &cells[k * batch..(k + 1) * batch];
                let cp: &[f32] = if t == 0 {
                    &zero_row
                } else {
                    &cache.cells
                        [(t - 1) * h * batch + k * batch..(t - 1) * h * batch + (k + 1) * batch]
                };
                let dht = &dh_t[k * batch..(k + 1) * batch];
                let dcn = &mut dc_next[k * batch..(k + 1) * batch];
                let dzi = &mut dz_i[k * batch..(k + 1) * batch];
                let dzf = &mut dz_f[k * batch..(k + 1) * batch];
                let dzg = &mut dz_g[k * batch..(k + 1) * batch];
                let dzo = &mut dz_o[k * batch..(k + 1) * batch];
                for_lane_chunks!(batch, s, LW => lstm_bwd_chunk::<LW>(
                    &gi[s..s + LW],
                    &gf[s..s + LW],
                    &gg[s..s + LW],
                    &go[s..s + LW],
                    &cl[s..s + LW],
                    &cp[s..s + LW],
                    &dht[s..s + LW],
                    &mut dcn[s..s + LW],
                    &mut dzi[s..s + LW],
                    &mut dzf[s..s + LW],
                    &mut dzg[s..s + LW],
                    &mut dzo[s..s + LW],
                ));
            }
            gemm_bm_t_acc(
                w_ih,
                dz,
                &mut dxs[t * i_dim * batch..(t + 1) * i_dim * batch],
                4 * h,
                i_dim,
                batch,
            );
            dh_rec.fill(0.0);
            if t > 0 {
                gemm_bm_t_acc(w_hh, dz, &mut dh_rec, 4 * h, h, batch);
            }
        }
        // Canonical parameter accumulation: per sequence (ascending),
        // per timestep (descending), exactly the scalar path's rank-1
        // updates and bias adds.
        let mut dz_s = vec![0.0f32; 4 * h];
        let mut x_s = vec![0.0f32; i_dim];
        let mut hp_s = vec![0.0f32; h];
        for s in 0..batch {
            for t in (0..t_steps).rev() {
                let dz = &dzs[t * 4 * h * batch..(t + 1) * 4 * h * batch];
                for (r, d) in dz_s.iter_mut().enumerate() {
                    *d = dz[r * batch + s];
                }
                x.gather(t, s, t_steps, batch, &mut x_s);
                outer_acc(g_ih, &dz_s, &x_s);
                for (g, &d) in g_b.iter_mut().zip(&dz_s) {
                    *g += d;
                }
                if t > 0 {
                    let hs = &cache.hs[(t - 1) * h * batch..t * h * batch];
                    for (k, hp) in hp_s.iter_mut().enumerate() {
                        *hp = hs[k * batch + s];
                    }
                    outer_acc(g_hh, &dz_s, &hp_s);
                }
            }
        }
    }
}

/// Streaming hidden state for a multi-layer LSTM.
#[derive(Debug, Clone)]
pub struct LstmState {
    /// Per-layer hidden vectors.
    pub h: Vec<Vec<f32>>,
    /// Per-layer cell vectors.
    pub c: Vec<Vec<f32>>,
}

impl LstmState {
    /// Reset all state to zero.
    pub fn reset(&mut self) {
        for v in self.h.iter_mut().chain(self.c.iter_mut()) {
            v.fill(0.0);
        }
    }
}

/// Multi-layer unidirectional LSTM with contiguous parameters.
#[derive(Debug, Clone)]
pub struct Lstm {
    layers: Vec<LstmLayerShape>,
    params: Vec<f32>,
}

/// Forward cache for [`Lstm::forward`].
#[derive(Debug, Clone)]
pub struct LstmCache {
    layer_caches: Vec<LstmLayerCache>,
    t_steps: usize,
}

impl Lstm {
    /// Build an `n_layers`-deep LSTM mapping `in_dim` inputs to a
    /// `hidden`-dimensional final state.
    pub fn new(in_dim: usize, hidden: usize, n_layers: usize, seed: u64) -> Lstm {
        assert!(n_layers >= 1);
        let mut layers = Vec::with_capacity(n_layers);
        for l in 0..n_layers {
            layers.push(LstmLayerShape {
                in_dim: if l == 0 { in_dim } else { hidden },
                hidden,
            });
        }
        let total: usize = layers.iter().map(|l| l.param_len()).sum();
        let mut params = vec![0.0f32; total];
        let mut rng = seeded_rng(seed);
        let mut off = 0;
        for l in &layers {
            l.init(&mut params[off..off + l.param_len()], &mut rng);
            off += l.param_len();
        }
        Lstm { layers, params }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Output (hidden) dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().unwrap().hidden
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Flat parameters.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Flat parameters, mutable (for the optimizer).
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn layer_param(&self, l: usize) -> &[f32] {
        let off: usize = self.layers[..l].iter().map(|s| s.param_len()).sum();
        &self.params[off..off + self.layers[l].param_len()]
    }

    /// Fresh zeroed streaming state.
    pub fn zero_state(&self) -> LstmState {
        LstmState {
            h: self.layers.iter().map(|l| vec![0.0; l.hidden]).collect(),
            c: self.layers.iter().map(|l| vec![0.0; l.hidden]).collect(),
        }
    }

    /// One streaming step: feed `x`, update `state`, and write the top
    /// layer's hidden vector into `out`.
    pub fn step(&self, state: &mut LstmState, x: &[f32], out: &mut [f32]) {
        let mut input = x.to_vec();
        for (l, shape) in self.layers.iter().enumerate() {
            let w = self.layer_param(l);
            let (hs, cs) = (&mut state.h[l], &mut state.c[l]);
            shape.step(w, &input, hs, cs);
            input.clear();
            input.extend_from_slice(hs);
        }
        out.copy_from_slice(&input);
    }

    /// Full-sequence forward over `xs` (`T x in_dim`); returns the final
    /// hidden vector and the cache for backward.
    pub fn forward(&self, xs: &[f32], t_steps: usize) -> (Vec<f32>, LstmCache) {
        let mut layer_caches = Vec::with_capacity(self.layers.len());
        let mut input: Vec<f32> = xs.to_vec();
        for (l, shape) in self.layers.iter().enumerate() {
            let cache = shape.forward(self.layer_param(l), &input, t_steps);
            input = cache.hs.clone();
            layer_caches.push(cache);
        }
        let h = self.out_dim();
        let out = input[(t_steps - 1) * h..t_steps * h].to_vec();
        (
            out,
            LstmCache {
                layer_caches,
                t_steps,
            },
        )
    }

    /// Batched full-sequence forward over `batch` independent sequences
    /// in lockstep.
    ///
    /// `xs` is sequence-major (`batch` consecutive `t_steps x in_dim`
    /// blocks); the result is sequence-major (`batch x hidden`). All
    /// sequences advance one timestep at a time, so each weight matrix
    /// is traversed once per timestep for the whole batch (see
    /// [`gemm_bm_acc`]) instead of once per sequence — the inference
    /// server's micro-batching win. Every sequence's arithmetic is
    /// performed in exactly the order of [`Lstm::forward`], so each
    /// output is bit-identical to an independent `forward` call.
    pub fn forward_batch(&self, xs: &[f32], t_steps: usize, batch: usize) -> Vec<f32> {
        let in_dim = self.in_dim();
        debug_assert_eq!(xs.len(), batch * t_steps * in_dim);
        assert!(batch >= 1);
        // Batch-major per-layer states: entry `k * batch + s`.
        let mut h_st: Vec<Vec<f32>> = self
            .layers
            .iter()
            .map(|l| vec![0.0f32; l.hidden * batch])
            .collect();
        let mut c_st = h_st.clone();
        let h_max = self.layers.iter().map(|l| l.hidden).max().unwrap();
        let mut x0 = vec![0.0f32; in_dim * batch];
        let mut z = vec![0.0f32; 4 * h_max * batch];
        let mut acc = vec![0.0f32; batch];
        for t in 0..t_steps {
            // Gather this timestep's inputs for layer 0 into batch-major
            // form; higher layers consume the layer below's fresh state.
            for k in 0..in_dim {
                for (s, x) in x0[k * batch..(k + 1) * batch].iter_mut().enumerate() {
                    *x = xs[s * t_steps * in_dim + t * in_dim + k];
                }
            }
            for (l, shape) in self.layers.iter().enumerate() {
                let h = shape.hidden;
                let (w_ih, w_hh, b) = shape.split(self.layer_param(l));
                let z = &mut z[..4 * h * batch];
                for (r, &bv) in b.iter().enumerate() {
                    z[r * batch..(r + 1) * batch].fill(bv);
                }
                let (below, cur_h) = h_st.split_at_mut(l);
                let x_bm: &[f32] = if l == 0 { &x0 } else { &below[l - 1] };
                gemm_bm_acc(w_ih, x_bm, z, 4 * h, shape.in_dim, batch, &mut acc);
                gemm_bm_acc(w_hh, &cur_h[0], z, 4 * h, h, batch, &mut acc);
                let (h_cur, c_cur) = (&mut cur_h[0], &mut c_st[l]);
                // Per-k row slices, processed in fixed-width chunks:
                // the const-width inner body reliably compiles to SIMD
                // (a runtime-trip-count loop over this much straight-
                // line math does not survive every pass pipeline). The
                // math per element is identical at every width, so
                // results never depend on the chunking.
                for k in 0..h {
                    let zi = &z[k * batch..(k + 1) * batch];
                    let zf = &z[(h + k) * batch..(h + k + 1) * batch];
                    let zg = &z[(2 * h + k) * batch..(2 * h + k + 1) * batch];
                    let zo = &z[(3 * h + k) * batch..(3 * h + k + 1) * batch];
                    let c_row = &mut c_cur[k * batch..(k + 1) * batch];
                    let h_row = &mut h_cur[k * batch..(k + 1) * batch];
                    for_lane_chunks!(batch, s, LW => gates_chunk::<LW>(
                        &zi[s..s + LW],
                        &zf[s..s + LW],
                        &zg[s..s + LW],
                        &zo[s..s + LW],
                        &mut c_row[s..s + LW],
                        &mut h_row[s..s + LW],
                    ));
                }
            }
        }
        let d = self.out_dim();
        let top = &h_st[self.layers.len() - 1];
        let mut out = vec![0.0f32; batch * d];
        for s in 0..batch {
            for k in 0..d {
                out[s * d + k] = top[k * batch + s];
            }
        }
        out
    }

    /// Batched full-sequence forward that also retains every layer's
    /// batch-major activations for [`Lstm::backward_batch`].
    ///
    /// Same layouts and — per sequence — the same arithmetic order as
    /// [`Lstm::forward_batch`], so each output (and every cached
    /// activation) is bit-identical to an independent [`Lstm::forward`]
    /// call on that sequence.
    pub fn forward_batch_cached(
        &self,
        xs: &[f32],
        t_steps: usize,
        batch: usize,
    ) -> (Vec<f32>, LstmBatchCache) {
        let in_dim = self.in_dim();
        debug_assert_eq!(xs.len(), batch * t_steps * in_dim);
        assert!(batch >= 1);
        let mut layer_caches: Vec<LstmLayerBatchCache> = self
            .layers
            .iter()
            .map(|l| LstmLayerBatchCache {
                gates: vec![0.0; t_steps * 4 * l.hidden * batch],
                cells: vec![0.0; t_steps * l.hidden * batch],
                hs: vec![0.0; t_steps * l.hidden * batch],
            })
            .collect();
        let h_max = self.layers.iter().map(|l| l.hidden).max().unwrap();
        let mut x0 = vec![0.0f32; in_dim * batch];
        let mut z = vec![0.0f32; 4 * h_max * batch];
        let mut acc = vec![0.0f32; batch];
        let zeros = vec![0.0f32; h_max * batch];
        for t in 0..t_steps {
            for k in 0..in_dim {
                for (s, x) in x0[k * batch..(k + 1) * batch].iter_mut().enumerate() {
                    *x = xs[s * t_steps * in_dim + t * in_dim + k];
                }
            }
            for (l, shape) in self.layers.iter().enumerate() {
                let h = shape.hidden;
                let (w_ih, w_hh, b) = shape.split(self.layer_param(l));
                let z = &mut z[..4 * h * batch];
                for (r, &bv) in b.iter().enumerate() {
                    z[r * batch..(r + 1) * batch].fill(bv);
                }
                let (below, cur) = layer_caches.split_at_mut(l);
                let x_bm: &[f32] = if l == 0 {
                    &x0
                } else {
                    &below[l - 1].hs[t * shape.in_dim * batch..(t + 1) * shape.in_dim * batch]
                };
                let cache = &mut cur[0];
                let h_prev: &[f32] = if t == 0 {
                    &zeros[..h * batch]
                } else {
                    &cache.hs[(t - 1) * h * batch..t * h * batch]
                };
                gemm_bm_acc(w_ih, x_bm, z, 4 * h, shape.in_dim, batch, &mut acc);
                gemm_bm_acc(w_hh, h_prev, z, 4 * h, h, batch, &mut acc);
                let (c_prev_all, c_new_all) = cache.cells.split_at_mut(t * h * batch);
                let c_prev_all: &[f32] = if t == 0 {
                    &zeros[..h * batch]
                } else {
                    &c_prev_all[(t - 1) * h * batch..]
                };
                let c_new = &mut c_new_all[..h * batch];
                let h_new_off = t * h * batch;
                let gates_off = t * 4 * h * batch;
                for k in 0..h {
                    let zi = &z[k * batch..(k + 1) * batch];
                    let zf = &z[(h + k) * batch..(h + k + 1) * batch];
                    let zg = &z[(2 * h + k) * batch..(2 * h + k + 1) * batch];
                    let zo = &z[(3 * h + k) * batch..(3 * h + k + 1) * batch];
                    let cp = &c_prev_all[k * batch..(k + 1) * batch];
                    let cn = &mut c_new[k * batch..(k + 1) * batch];
                    let hn = &mut cache.hs[h_new_off + k * batch..h_new_off + (k + 1) * batch];
                    let (g_i, g_rest) =
                        cache.gates[gates_off..gates_off + 4 * h * batch].split_at_mut(h * batch);
                    let (g_f, g_rest) = g_rest.split_at_mut(h * batch);
                    let (g_g, g_o) = g_rest.split_at_mut(h * batch);
                    let gi = &mut g_i[k * batch..(k + 1) * batch];
                    let gf = &mut g_f[k * batch..(k + 1) * batch];
                    let gg = &mut g_g[k * batch..(k + 1) * batch];
                    let go = &mut g_o[k * batch..(k + 1) * batch];
                    for_lane_chunks!(batch, s, LW => gates_chunk_cached::<LW>(
                        &zi[s..s + LW],
                        &zf[s..s + LW],
                        &zg[s..s + LW],
                        &zo[s..s + LW],
                        &cp[s..s + LW],
                        &mut cn[s..s + LW],
                        &mut hn[s..s + LW],
                        &mut gi[s..s + LW],
                        &mut gf[s..s + LW],
                        &mut gg[s..s + LW],
                        &mut go[s..s + LW],
                    ));
                }
            }
        }
        let d = self.out_dim();
        let top = &layer_caches[self.layers.len() - 1];
        let top_hs = &top.hs[(t_steps - 1) * d * batch..t_steps * d * batch];
        let mut out = vec![0.0f32; batch * d];
        for s in 0..batch {
            for k in 0..d {
                out[s * d + k] = top_hs[k * batch + s];
            }
        }
        (
            out,
            LstmBatchCache {
                layer_caches,
                t_steps,
                batch,
            },
        )
    }

    /// Batch-major BPTT from per-sequence gradients `douts`
    /// (sequence-major `batch x hidden`, the gradient w.r.t. each
    /// sequence's final hidden vector); accumulates into `grads`.
    ///
    /// The accumulated gradients are bit-identical to running the
    /// scalar [`Lstm::backward`] once per sequence, in batch order,
    /// into the same buffer (see [`LstmLayerShape::backward_batch`]).
    pub fn backward_batch(
        &self,
        xs: &[f32],
        cache: &LstmBatchCache,
        douts: &[f32],
        grads: &mut [f32],
    ) {
        let t = cache.t_steps;
        let batch = cache.batch;
        let top = self.layers.len() - 1;
        let h_top = self.layers[top].hidden;
        debug_assert_eq!(douts.len(), batch * h_top);
        // dh for the top layer, batch-major: only the last step receives
        // the injected gradient.
        let mut dh = vec![0.0f32; t * h_top * batch];
        let last = &mut dh[(t - 1) * h_top * batch..];
        for s in 0..batch {
            for k in 0..h_top {
                last[k * batch + s] = douts[s * h_top + k];
            }
        }
        let mut grad_off_ends: Vec<usize> = Vec::with_capacity(self.layers.len());
        let mut acc = 0;
        for s in &self.layers {
            acc += s.param_len();
            grad_off_ends.push(acc);
        }
        for l in (0..self.layers.len()).rev() {
            let shape = self.layers[l];
            let x = if l == 0 {
                BatchInput::Seq(xs)
            } else {
                BatchInput::Bm(&cache.layer_caches[l - 1].hs)
            };
            let mut dxs = vec![0.0f32; t * shape.in_dim * batch];
            let g_start = grad_off_ends[l] - shape.param_len();
            shape.backward_batch(
                self.layer_param(l),
                &x,
                t,
                batch,
                &cache.layer_caches[l],
                &mut dh,
                &mut grads[g_start..grad_off_ends[l]],
                &mut dxs,
            );
            dh = dxs;
        }
    }

    /// Backward from a gradient `dout` w.r.t. the final hidden vector;
    /// accumulates into `grads` (same length as [`Lstm::params`]).
    pub fn backward(&self, xs: &[f32], cache: &LstmCache, dout: &[f32], grads: &mut [f32]) {
        let t = cache.t_steps;
        let top = self.layers.len() - 1;
        let h_top = self.layers[top].hidden;
        // dh for the top layer: only the last step receives dout.
        let mut dh = vec![0.0f32; t * h_top];
        dh[(t - 1) * h_top..].copy_from_slice(dout);

        let mut grad_off_ends: Vec<usize> = Vec::with_capacity(self.layers.len());
        let mut acc = 0;
        for s in &self.layers {
            acc += s.param_len();
            grad_off_ends.push(acc);
        }

        for l in (0..self.layers.len()).rev() {
            let shape = self.layers[l];
            let xs_l: &[f32] = if l == 0 {
                xs
            } else {
                &cache.layer_caches[l - 1].hs
            };
            let mut dxs = vec![0.0f32; t * shape.in_dim];
            let g_start = grad_off_ends[l] - shape.param_len();
            shape.backward(
                self.layer_param(l),
                xs_l,
                t,
                &cache.layer_caches[l],
                &mut dh,
                &mut grads[g_start..grad_off_ends[l]],
                &mut dxs,
            );
            dh = dxs; // becomes the injected dh for the layer below
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::dot;

    fn numeric_check(in_dim: usize, hidden: usize, layers: usize, t: usize) {
        let mut model = Lstm::new(in_dim, hidden, layers, 42);
        let mut rng = seeded_rng(7);
        use rand::Rng;
        let xs: Vec<f32> = (0..t * in_dim)
            .map(|_| rng.gen_range(-1.0..1.0f32))
            .collect();
        let dout: Vec<f32> = (0..hidden).map(|_| rng.gen_range(-1.0..1.0f32)).collect();

        let (_, cache) = model.forward(&xs, t);
        let mut grads = vec![0.0f32; model.params().len()];
        model.backward(&xs, &cache, &dout, &mut grads);

        // Spot-check a deterministic sample of parameters.
        let n = model.params().len();
        let loss = |m: &Lstm| {
            let (out, _) = m.forward(&xs, t);
            dot(&out, &dout)
        };
        let mut checked = 0;
        let mut idx = 1usize;
        while idx < n && checked < 24 {
            let eps = 3e-3;
            let orig = model.params()[idx];
            model.params_mut()[idx] = orig + eps;
            let lp = loss(&model);
            model.params_mut()[idx] = orig - eps;
            let lm = loss(&model);
            model.params_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads[idx];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs().max(ana.abs())),
                "param {idx}: numeric {num} vs analytic {ana}"
            );
            checked += 1;
            idx = idx * 2 + 3; // pseudo-random walk over parameters
        }
    }

    #[test]
    fn gradient_check_single_layer() {
        numeric_check(5, 6, 1, 4);
    }

    #[test]
    fn gradient_check_two_layers() {
        numeric_check(4, 5, 2, 5);
    }

    #[test]
    fn streaming_matches_windowed_forward() {
        let model = Lstm::new(3, 8, 2, 9);
        let t = 6;
        let mut rng = seeded_rng(3);
        use rand::Rng;
        let xs: Vec<f32> = (0..t * 3).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let (win_out, _) = model.forward(&xs, t);
        let mut state = model.zero_state();
        let mut out = vec![0.0f32; 8];
        for step in 0..t {
            model.step(&mut state, &xs[step * 3..(step + 1) * 3], &mut out);
        }
        for (a, b) in win_out.iter().zip(&out) {
            assert!((a - b).abs() < 1e-5, "windowed {a} vs streaming {b}");
        }
    }

    #[test]
    fn state_reset_restores_determinism() {
        let model = Lstm::new(2, 4, 1, 1);
        let x = [0.5f32, -0.25];
        let mut out1 = vec![0.0f32; 4];
        let mut out2 = vec![0.0f32; 4];
        let mut state = model.zero_state();
        model.step(&mut state, &x, &mut out1);
        state.reset();
        model.step(&mut state, &x, &mut out2);
        assert_eq!(out1, out2);
    }

    #[test]
    fn deeper_models_have_more_parameters() {
        let p1 = Lstm::new(51, 32, 1, 0).params().len();
        let p2 = Lstm::new(51, 32, 2, 0).params().len();
        let p3 = Lstm::new(51, 32, 3, 0).params().len();
        assert!(p2 > p1);
        assert_eq!(p3 - p2, p2 - p1); // each extra layer adds hidden->hidden
    }

    #[test]
    fn output_depends_on_whole_sequence() {
        let model = Lstm::new(2, 4, 2, 5);
        let t = 5;
        let xs1 = vec![0.1f32; t * 2];
        let mut xs2 = xs1.clone();
        xs2[0] = 0.9; // perturb the FIRST step only
        let (o1, _) = model.forward(&xs1, t);
        let (o2, _) = model.forward(&xs2, t);
        let diff: f32 = o1.iter().zip(&o2).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-6, "early inputs must influence the final state");
    }
}
