//! Losses and error metrics.

/// Mean squared error between predictions and targets.
pub fn mse(pred: &[f32], target: &[f32]) -> f32 {
    debug_assert_eq!(pred.len(), target.len());
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(target)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f32>()
        / pred.len() as f32
}

/// Gradient of [`mse`] with respect to the predictions.
pub fn mse_grad(pred: &[f32], target: &[f32], grad: &mut [f32]) {
    debug_assert_eq!(pred.len(), target.len());
    let scale = 2.0 / pred.len() as f32;
    for ((g, p), t) in grad.iter_mut().zip(pred).zip(target) {
        *g = scale * (p - t);
    }
}

/// Absolute relative error `|pred - truth| / truth` — the paper's
/// prediction-error metric for program execution times.
pub fn abs_rel_error(pred: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        pred.abs()
    } else {
        (pred - truth).abs() / truth.abs()
    }
}

/// Summary statistics over a set of errors: (mean, std, min, max).
pub fn error_stats(errors: &[f64]) -> (f64, f64, f64, f64) {
    if errors.is_empty() {
        return (0.0, 0.0, 0.0, 0.0);
    }
    let n = errors.len() as f64;
    let mean = errors.iter().sum::<f64>() / n;
    let var = errors.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / n;
    let min = errors.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = errors.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (mean, var.sqrt(), min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_equal_vectors_is_zero() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn mse_matches_hand_computation() {
        // ((1)^2 + (3)^2) / 2 = 5
        assert_eq!(mse(&[2.0, 0.0], &[1.0, 3.0]), 5.0);
    }

    #[test]
    fn mse_grad_is_finite_difference_of_mse() {
        let pred = [1.0f32, -2.0, 0.5];
        let target = [0.5f32, 1.0, 0.0];
        let mut g = [0.0f32; 3];
        mse_grad(&pred, &target, &mut g);
        for i in 0..3 {
            let eps = 1e-3;
            let mut pp = pred;
            pp[i] += eps;
            let mut pm = pred;
            pm[i] -= eps;
            let num = (mse(&pp, &target) - mse(&pm, &target)) / (2.0 * eps);
            assert!((num - g[i]).abs() < 1e-3, "dim {i}: {num} vs {}", g[i]);
        }
    }

    #[test]
    fn relative_error_edge_cases() {
        assert_eq!(abs_rel_error(110.0, 100.0), 0.1);
        assert_eq!(abs_rel_error(90.0, 100.0), 0.1);
        assert_eq!(abs_rel_error(5.0, 0.0), 5.0);
    }

    #[test]
    fn stats_cover_spread() {
        let (mean, std, min, max) = error_stats(&[0.1, 0.2, 0.3]);
        assert!((mean - 0.2).abs() < 1e-12);
        assert!(std > 0.0);
        assert_eq!((min, max), (0.1, 0.3));
    }
}
