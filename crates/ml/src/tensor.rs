//! Dense math kernels: the small set of BLAS-1/2 routines every layer's
//! forward and backward pass is built from.
//!
//! All matrices are row-major `rows x cols` slices. These routines are
//! deliberately scalar-simple — the parallelism in this library lives at
//! the batch level (see [`crate::parallel`]), matching how the paper
//! trains: many independent instruction windows at once.

/// `y += W x` for row-major `W: rows x cols`, `x: cols`, `y: rows`.
#[inline]
pub fn gemv_acc(w: &[f32], x: &[f32], y: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(x.len(), cols);
    debug_assert_eq!(y.len(), rows);
    for (r, yr) in y.iter_mut().enumerate() {
        let row = &w[r * cols..(r + 1) * cols];
        let mut acc = 0.0f32;
        for (a, b) in row.iter().zip(x) {
            acc += a * b;
        }
        *yr += acc;
    }
}

/// `x_grad += W^T y` for row-major `W: rows x cols`.
#[inline]
pub fn gemv_t_acc(w: &[f32], y: &[f32], x_grad: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(y.len(), rows);
    debug_assert_eq!(x_grad.len(), cols);
    for (r, &yr) in y.iter().enumerate() {
        if yr == 0.0 {
            continue;
        }
        let row = &w[r * cols..(r + 1) * cols];
        for (g, &wv) in x_grad.iter_mut().zip(row) {
            *g += wv * yr;
        }
    }
}

/// Rank-1 update `W_grad += a b^T` (`a: rows`, `b: cols`).
#[inline]
pub fn outer_acc(w_grad: &mut [f32], a: &[f32], b: &[f32]) {
    debug_assert_eq!(w_grad.len(), a.len() * b.len());
    let cols = b.len();
    for (r, &av) in a.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        let row = &mut w_grad[r * cols..(r + 1) * cols];
        for (g, &bv) in row.iter_mut().zip(b) {
            *g += av * bv;
        }
    }
}

/// Dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// Elementwise `v += u`.
#[inline]
pub fn add_assign(v: &mut [f32], u: &[f32]) {
    axpy(1.0, u, v);
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// In-place softmax over a slice (numerically stabilized).
#[inline]
pub fn softmax_inplace(v: &mut [f32]) {
    let max = v.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in v.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    let inv = 1.0 / sum;
    for x in v.iter_mut() {
        *x *= inv;
    }
}

/// Backward through a softmax that produced `p`: given `dp`, overwrite
/// `dp` with the gradient w.r.t. the logits.
#[inline]
pub fn softmax_backward_inplace(p: &[f32], dp: &mut [f32]) {
    let inner = dot(p, dp);
    for (d, &pv) in dp.iter_mut().zip(p) {
        *d = pv * (*d - inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemv_matches_hand_computation() {
        // W = [[1,2],[3,4],[5,6]], x = [10, 100]
        let w = [1., 2., 3., 4., 5., 6.];
        let x = [10., 100.];
        let mut y = [1.0f32; 3];
        gemv_acc(&w, &x, &mut y, 3, 2);
        assert_eq!(y, [211., 431., 651.]);
    }

    #[test]
    fn gemv_t_is_transpose_of_gemv() {
        let w = [1., -2., 0.5, 3., 4., -1.];
        let y = [2., -1.];
        let mut xg = [0.0f32; 3];
        gemv_t_acc(&w, &y, &mut xg, 2, 3);
        // W^T y = [1*2+3*(-1), -2*2+4*(-1), 0.5*2 -1*(-1)]
        assert_eq!(xg, [-1., -8., 2.]);
    }

    #[test]
    fn outer_product_accumulates() {
        let a = [1., 2.];
        let b = [3., 4., 5.];
        let mut g = [1.0f32; 6];
        outer_acc(&mut g, &a, &b);
        assert_eq!(g, [4., 5., 6., 7., 9., 11.]);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut v = [1.0f32, 2.0, 3.0];
        softmax_inplace(&mut v);
        let s: f32 = v.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = [1.0f32, 2.0, 3.0];
        let mut b = [101.0f32, 102.0, 103.0];
        softmax_inplace(&mut a);
        softmax_inplace(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let logits = [0.3f32, -0.7, 1.1, 0.2];
        let upstream = [0.5f32, -1.0, 0.25, 0.0];
        // analytic
        let mut p = logits;
        softmax_inplace(&mut p);
        let mut dp = upstream;
        softmax_backward_inplace(&p, &mut dp);
        // numeric
        let f = |l: &[f32; 4]| {
            let mut q = *l;
            softmax_inplace(&mut q);
            dot(&q, &upstream)
        };
        for i in 0..4 {
            let eps = 1e-3;
            let mut lp = logits;
            lp[i] += eps;
            let mut lm = logits;
            lm[i] -= eps;
            let num = (f(&lp) - f(&lm)) / (2.0 * eps);
            assert!((num - dp[i]).abs() < 1e-3, "dim {i}: numeric {num} vs analytic {}", dp[i]);
        }
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(10.0) > 0.9999);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-6);
    }
}
