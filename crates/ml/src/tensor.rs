//! Dense math kernels: the small set of BLAS-1/2 routines every layer's
//! forward and backward pass is built from, plus the shared batch-major
//! substrate all six architectures' batched paths are ported onto
//! (layout helpers, lane-chunk driver, lane-replayed softmax).
//!
//! All matrices are row-major `rows x cols` slices. These routines are
//! deliberately scalar-simple — the parallelism in this library lives at
//! the batch level (see [`crate::parallel`]), matching how the paper
//! trains: many independent instruction windows at once.
//!
//! ## The batch-major substrate
//!
//! A batch-major matrix stores entry `[k][s]` (feature `k` of sequence
//! `s`) at `k * batch + s`: the batch dimension is contiguous, so inner
//! loops run over lanes with loop-invariant weights and vectorize. The
//! bit-identity contract every batched path obeys: per *memory
//! location*, the batched kernels perform exactly the scalar path's
//! sequence of floating-point operations (each lane replays the scalar
//! op order; parameter gradients are accumulated post-recursion in
//! scalar order, sequence-ascending). See [`gemm_bm_acc`],
//! [`softmax_bm_inplace`], and the `for_lane_chunks!` driver.

/// `y += W x` for row-major `W: rows x cols`, `x: cols`, `y: rows`.
#[inline]
pub fn gemv_acc(w: &[f32], x: &[f32], y: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(x.len(), cols);
    debug_assert_eq!(y.len(), rows);
    for (r, yr) in y.iter_mut().enumerate() {
        let row = &w[r * cols..(r + 1) * cols];
        let mut acc = 0.0f32;
        for (a, b) in row.iter().zip(x) {
            acc += a * b;
        }
        *yr += acc;
    }
}

/// Batch-major `Z += W X` for row-major `W: rows x cols` and
/// batch-major `X: cols x batch`, `Z: rows x batch` (entry `[k][s]` of a
/// batch-major matrix is sequence `s`'s value of feature `k`, stored at
/// `k * batch + s`).
///
/// This is [`gemv_acc`] amortized over a batch: each weight row is
/// traversed once for all `batch` sequences instead of once per
/// sequence, and the inner loop runs over the contiguous batch dimension
/// with a loop-invariant weight — a form the compiler can vectorize,
/// unlike `gemv_acc`'s dot-product reduction (float adds cannot be
/// reordered). Per sequence, products are accumulated in the same
/// ascending-`k` order into a separate accumulator that is added to `Z`
/// once, exactly mirroring `gemv_acc`, so results are bit-identical to
/// `batch` independent `gemv_acc` calls.
///
/// `acc` is caller-provided scratch of length >= `batch`.
#[inline]
pub fn gemm_bm_acc(
    w: &[f32],
    x_bm: &[f32],
    z_bm: &mut [f32],
    rows: usize,
    cols: usize,
    batch: usize,
    acc: &mut [f32],
) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(x_bm.len(), cols * batch);
    debug_assert_eq!(z_bm.len(), rows * batch);
    debug_assert!(acc.len() >= batch);
    // Lane blocking: fixed-width accumulator arrays live in vector
    // registers across the whole k loop (one x load + one multiply-add
    // per element), instead of bouncing a scratch row through memory
    // per (r, k). Each lane's per-sequence chain is a *serial* sum over
    // k (FP order fixed), so wide blocks matter: every extra lane is an
    // independent dependency chain hiding the add latency of the
    // others. Each lane still sums k-ascending — bit-identical to
    // [`gemv_acc`] per sequence, whatever the block width.
    for r in 0..rows {
        let wrow = &w[r * cols..(r + 1) * cols];
        let mut b0 = 0;
        while b0 + 32 <= batch {
            lane_block::<32>(wrow, x_bm, z_bm, r, cols, batch, b0);
            b0 += 32;
        }
        while b0 + 8 <= batch {
            lane_block::<8>(wrow, x_bm, z_bm, r, cols, batch, b0);
            b0 += 8;
        }
        if b0 < batch {
            let tail = batch - b0;
            let a = &mut acc[..tail];
            a.fill(0.0);
            for (k, &wv) in wrow.iter().enumerate() {
                let x = &x_bm[k * batch + b0..k * batch + b0 + tail];
                for (av, &xv) in a.iter_mut().zip(x) {
                    *av += wv * xv;
                }
            }
            for (z, &av) in z_bm[r * batch + b0..(r + 1) * batch]
                .iter_mut()
                .zip(a.iter())
            {
                *z += av;
            }
        }
    }
}

#[inline]
fn lane_block<const L: usize>(
    wrow: &[f32],
    x_bm: &[f32],
    z_bm: &mut [f32],
    r: usize,
    cols: usize,
    batch: usize,
    b0: usize,
) {
    debug_assert_eq!(wrow.len(), cols);
    let mut a = [0.0f32; L];
    for (k, &wv) in wrow.iter().enumerate() {
        let x = &x_bm[k * batch + b0..k * batch + b0 + L];
        for l in 0..L {
            a[l] += wv * x[l];
        }
    }
    let z = &mut z_bm[r * batch + b0..r * batch + b0 + L];
    for l in 0..L {
        z[l] += a[l];
    }
}

/// `x_grad += W^T y` for row-major `W: rows x cols`.
///
/// Deliberately dense (no skip of `y[r] == 0.0` rows): the batch-major
/// [`gemm_bm_t_acc`] must be bit-identical to this routine per
/// sequence, and zero entries in `y` *do* occur structurally (saturated
/// gates make backward deltas exactly zero), so a zero-skip here would
/// make the two paths diverge on `-0.0` accumulator states. Adding the
/// `w * 0.0` terms keeps both paths on the same addition sequence.
#[inline]
pub fn gemv_t_acc(w: &[f32], y: &[f32], x_grad: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(y.len(), rows);
    debug_assert_eq!(x_grad.len(), cols);
    for (r, &yr) in y.iter().enumerate() {
        let row = &w[r * cols..(r + 1) * cols];
        for (g, &wv) in x_grad.iter_mut().zip(row) {
            *g += wv * yr;
        }
    }
}

/// Batch-major `X_grad += W^T Y` for row-major `W: rows x cols`,
/// batch-major `Y: rows x batch` and `X_grad: cols x batch` (entry
/// `[k][s]` at `k * batch + s`, as in [`gemm_bm_acc`]).
///
/// This is [`gemv_t_acc`] amortized over a batch: `W` is traversed once
/// for all `batch` sequences, and the inner loop runs over the
/// contiguous batch dimension with a loop-invariant weight, so it
/// vectorizes. Each lane receives exactly the addition sequence of
/// `gemv_t_acc` (rows ascending, accumulating directly into `X_grad`),
/// so results are bit-identical to `batch` independent `gemv_t_acc`
/// calls — the contract the batched backward pass is built on.
#[inline]
pub fn gemm_bm_t_acc(
    w: &[f32],
    y_bm: &[f32],
    x_grad_bm: &mut [f32],
    rows: usize,
    cols: usize,
    batch: usize,
) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(y_bm.len(), rows * batch);
    debug_assert_eq!(x_grad_bm.len(), cols * batch);
    for r in 0..rows {
        let yrow = &y_bm[r * batch..(r + 1) * batch];
        let wrow = &w[r * cols..(r + 1) * cols];
        for (c, &wv) in wrow.iter().enumerate() {
            let xg = &mut x_grad_bm[c * batch..(c + 1) * batch];
            for (g, &yv) in xg.iter_mut().zip(yrow) {
                *g += wv * yv;
            }
        }
    }
}

/// Rank-1 update `W_grad += a b^T` (`a: rows`, `b: cols`).
#[inline]
pub fn outer_acc(w_grad: &mut [f32], a: &[f32], b: &[f32]) {
    debug_assert_eq!(w_grad.len(), a.len() * b.len());
    let cols = b.len();
    for (r, &av) in a.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        let row = &mut w_grad[r * cols..(r + 1) * cols];
        for (g, &bv) in row.iter_mut().zip(b) {
            *g += av * bv;
        }
    }
}

/// Dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// Elementwise `v += u`.
#[inline]
pub fn add_assign(v: &mut [f32], u: &[f32]) {
    axpy(1.0, u, v);
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Fast `tanh`: the Padé(7,6) continued-fraction approximant on a
/// clamped input, with the output clamped to `[-1, 1]`.
///
/// Accuracy vs libm `tanh` is ~1e-6 absolute over the core range and
/// ~1e-4 at the clamp boundary — far below f32 training noise. What
/// libm cannot offer is *vectorizability*: this is straight-line
/// arithmetic (one division, no calls, no branches), so loops over a
/// batch dimension compile to SIMD. The recurrent layers (LSTM, GRU)
/// use it in **both** their scalar and batched paths; since every lane
/// performs the identical operation sequence, batched results stay
/// bit-identical to per-sequence results — which a scalar-libm
/// fallback in one path would break.
#[inline]
pub fn tanh_apx(x: f32) -> f32 {
    let x = x.clamp(-4.97, 4.97);
    let x2 = x * x;
    let p = x * (135135.0 + x2 * (17325.0 + x2 * (378.0 + x2)));
    let q = 135135.0 + x2 * (62370.0 + x2 * (3150.0 + x2 * 28.0));
    (p / q).clamp(-1.0, 1.0)
}

/// Fast logistic sigmoid via [`tanh_apx`]
/// (`σ(x) = (1 + tanh(x/2)) / 2`); same vectorizability and
/// bit-identity rationale.
#[inline]
pub fn sigmoid_apx(x: f32) -> f32 {
    0.5 + 0.5 * tanh_apx(0.5 * x)
}

/// In-place softmax over a slice (numerically stabilized).
#[inline]
pub fn softmax_inplace(v: &mut [f32]) {
    let max = v.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in v.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    let inv = 1.0 / sum;
    for x in v.iter_mut() {
        *x *= inv;
    }
}

/// Backward through a softmax that produced `p`: given `dp`, overwrite
/// `dp` with the gradient w.r.t. the logits.
#[inline]
pub fn softmax_backward_inplace(p: &[f32], dp: &mut [f32]) {
    let inner = dot(p, dp);
    for (d, &pv) in dp.iter_mut().zip(p) {
        *d = pv * (*d - inner);
    }
}

/// Run a `<const L>` chunk helper over the whole batch: fixed-width
/// blocks of 8 lanes, then a width-1 tail (identical math at any
/// width, so the blocking never changes results).
macro_rules! for_lane_chunks {
    ($batch:expr, $s:ident, $w:ident => $body:expr) => {{
        let mut $s = 0usize;
        while $s + 8 <= $batch {
            const $w: usize = 8;
            $body;
            $s += 8;
        }
        while $s < $batch {
            const $w: usize = 1;
            $body;
            $s += 1;
        }
    }};
}
pub(crate) use for_lane_chunks;

/// Batch-major input view for the batched backward passes: layer 0 reads
/// the caller's sequence-major window block, higher layers read the
/// batch-major hidden states of the layer below.
pub enum BatchInput<'a> {
    /// Sequence-major `batch x T x in_dim` (the `forward_batch` input).
    Seq(&'a [f32]),
    /// Batch-major `T x in_dim x batch` (a layer cache's activations).
    Bm(&'a [f32]),
}

impl BatchInput<'_> {
    /// Copy sequence `s`'s step-`t` input vector into `out`
    /// (`out.len() == in_dim`). Pure data movement — no arithmetic —
    /// so the gathered values are exactly the scalar path's inputs.
    pub fn gather(&self, t: usize, s: usize, t_steps: usize, batch: usize, out: &mut [f32]) {
        let in_dim = out.len();
        match self {
            BatchInput::Seq(xs) => {
                let base = s * t_steps * in_dim + t * in_dim;
                out.copy_from_slice(&xs[base..base + in_dim]);
            }
            BatchInput::Bm(x_bm) => {
                let base = t * in_dim * batch;
                for (k, o) in out.iter_mut().enumerate() {
                    *o = x_bm[base + k * batch + s];
                }
            }
        }
    }
}

/// Transpose `batch` consecutive sequence-major vectors of length `n`
/// into one batch-major `n x batch` matrix. Pure data movement.
#[inline]
pub fn seq_to_bm(xs: &[f32], bm: &mut [f32], n: usize, batch: usize) {
    debug_assert_eq!(xs.len(), batch * n);
    debug_assert_eq!(bm.len(), n * batch);
    for s in 0..batch {
        let x = &xs[s * n..(s + 1) * n];
        for (k, &v) in x.iter().enumerate() {
            bm[k * batch + s] = v;
        }
    }
}

/// Inverse of [`seq_to_bm`]: scatter a batch-major `n x batch` matrix
/// back into `batch` consecutive sequence-major vectors.
#[inline]
pub fn bm_to_seq(bm: &[f32], xs: &mut [f32], n: usize, batch: usize) {
    debug_assert_eq!(bm.len(), n * batch);
    debug_assert_eq!(xs.len(), batch * n);
    for s in 0..batch {
        let x = &mut xs[s * n..(s + 1) * n];
        for (k, v) in x.iter_mut().enumerate() {
            *v = bm[k * batch + s];
        }
    }
}

/// Broadcast a per-row value into a batch-major `rows x batch` matrix
/// (the batched form of initializing an output vector with a bias).
#[inline]
pub fn fill_rows_bm(z_bm: &mut [f32], vals: &[f32], batch: usize) {
    debug_assert_eq!(z_bm.len(), vals.len() * batch);
    for (r, &v) in vals.iter().enumerate() {
        z_bm[r * batch..(r + 1) * batch].fill(v);
    }
}

/// One lane chunk of the batch-major softmax: each lane replays
/// [`softmax_inplace`]'s exact operation sequence (ascending max fold,
/// `exp`, ascending sum, one reciprocal, multiply), so every lane's
/// result is bit-identical to the scalar softmax of its column.
#[inline]
fn softmax_lanes_chunk<const L: usize>(v: &mut [f32], n: usize, batch: usize, s0: usize) {
    let mut max = [f32::NEG_INFINITY; L];
    for i in 0..n {
        let row = &v[i * batch + s0..i * batch + s0 + L];
        for l in 0..L {
            max[l] = max[l].max(row[l]);
        }
    }
    let mut sum = [0.0f32; L];
    for i in 0..n {
        let row = &mut v[i * batch + s0..i * batch + s0 + L];
        for l in 0..L {
            row[l] = (row[l] - max[l]).exp();
            sum[l] += row[l];
        }
    }
    let mut inv = [0.0f32; L];
    for l in 0..L {
        inv[l] = 1.0 / sum[l];
    }
    for i in 0..n {
        let row = &mut v[i * batch + s0..i * batch + s0 + L];
        for l in 0..L {
            row[l] *= inv[l];
        }
    }
}

/// Batch-major in-place softmax over `n` entries per lane (`v` is
/// `n x batch`): lane `s`'s column gets exactly [`softmax_inplace`]'s
/// result bits (libm `exp` is deterministic for a given input, and each
/// lane's fold/sum orders match the scalar routine).
#[inline]
pub fn softmax_bm_inplace(v: &mut [f32], n: usize, batch: usize) {
    debug_assert_eq!(v.len(), n * batch);
    for_lane_chunks!(batch, s, LW => softmax_lanes_chunk::<LW>(v, n, batch, s));
}

#[inline]
fn softmax_bwd_lanes_chunk<const L: usize>(
    p: &[f32],
    dp: &mut [f32],
    n: usize,
    batch: usize,
    s0: usize,
) {
    let mut inner = [0.0f32; L];
    for i in 0..n {
        let pr = &p[i * batch + s0..i * batch + s0 + L];
        let dr = &dp[i * batch + s0..i * batch + s0 + L];
        for l in 0..L {
            inner[l] += pr[l] * dr[l];
        }
    }
    for i in 0..n {
        let pr = &p[i * batch + s0..i * batch + s0 + L];
        let dr = &mut dp[i * batch + s0..i * batch + s0 + L];
        for l in 0..L {
            dr[l] = pr[l] * (dr[l] - inner[l]);
        }
    }
}

/// Batch-major twin of [`softmax_backward_inplace`] (`p`, `dp` are
/// `n x batch`); each lane replays the scalar inner-product order.
#[inline]
pub fn softmax_backward_bm_inplace(p: &[f32], dp: &mut [f32], n: usize, batch: usize) {
    debug_assert_eq!(p.len(), n * batch);
    debug_assert_eq!(dp.len(), n * batch);
    for_lane_chunks!(batch, s, LW => softmax_bwd_lanes_chunk::<LW>(p, dp, n, batch, s));
}

#[inline]
fn lane_dot_scaled_chunk<const L: usize>(
    a_bm: &[f32],
    b_bm: &[f32],
    out: &mut [f32],
    nk: usize,
    batch: usize,
    s0: usize,
    scale: f32,
) {
    let mut acc = [0.0f32; L];
    for k in 0..nk {
        let ar = &a_bm[k * batch + s0..k * batch + s0 + L];
        let br = &b_bm[k * batch + s0..k * batch + s0 + L];
        for l in 0..L {
            acc[l] += ar[l] * br[l];
        }
    }
    for l in 0..L {
        out[s0 + l] = scale * acc[l];
    }
}

/// Per-lane scaled dot product over batch-major `nk x batch` operands:
/// `out[s] = scale * dot(a[:, s], b[:, s])`, each lane summing in the
/// exact ascending order of [`dot`] before the single scale multiply —
/// the batched form of an attention score row.
#[inline]
pub fn lane_dot_scaled_bm(
    a_bm: &[f32],
    b_bm: &[f32],
    out: &mut [f32],
    nk: usize,
    batch: usize,
    scale: f32,
) {
    debug_assert_eq!(a_bm.len(), nk * batch);
    debug_assert_eq!(b_bm.len(), nk * batch);
    debug_assert_eq!(out.len(), batch);
    for_lane_chunks!(batch, s, LW => lane_dot_scaled_chunk::<LW>(a_bm, b_bm, out, nk, batch, s, scale));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemv_matches_hand_computation() {
        // W = [[1,2],[3,4],[5,6]], x = [10, 100]
        let w = [1., 2., 3., 4., 5., 6.];
        let x = [10., 100.];
        let mut y = [1.0f32; 3];
        gemv_acc(&w, &x, &mut y, 3, 2);
        assert_eq!(y, [211., 431., 651.]);
    }

    #[test]
    fn gemm_bm_is_bit_identical_to_per_sequence_gemv() {
        // 3x2 weights, batch of 4 inputs with distinct values.
        let w = [0.37f32, -1.2, 2.25, 0.11, -0.6, 0.93];
        let (rows, cols, batch) = (3usize, 2usize, 4usize);
        let xs: Vec<[f32; 2]> = vec![[0.1, -0.2], [1.5, 0.33], [-0.7, 0.9], [2.0, -1.25]];
        // batch-major X and bias-initialized batch-major Z
        let mut x_bm = vec![0.0f32; cols * batch];
        for (s, x) in xs.iter().enumerate() {
            for (k, &v) in x.iter().enumerate() {
                x_bm[k * batch + s] = v;
            }
        }
        let bias = [0.5f32, -0.25, 1.0];
        let mut z_bm = vec![0.0f32; rows * batch];
        for r in 0..rows {
            z_bm[r * batch..(r + 1) * batch].fill(bias[r]);
        }
        let mut acc = vec![0.0f32; batch];
        gemm_bm_acc(&w, &x_bm, &mut z_bm, rows, cols, batch, &mut acc);
        for (s, x) in xs.iter().enumerate() {
            let mut y = bias.to_vec();
            gemv_acc(&w, x, &mut y, rows, cols);
            for r in 0..rows {
                assert_eq!(z_bm[r * batch + s], y[r], "row {r} seq {s}");
            }
        }
    }

    #[test]
    fn gemv_t_is_transpose_of_gemv() {
        let w = [1., -2., 0.5, 3., 4., -1.];
        let y = [2., -1.];
        let mut xg = [0.0f32; 3];
        gemv_t_acc(&w, &y, &mut xg, 2, 3);
        // W^T y = [1*2+3*(-1), -2*2+4*(-1), 0.5*2 -1*(-1)]
        assert_eq!(xg, [-1., -8., 2.]);
    }

    #[test]
    fn gemm_bm_t_is_bit_identical_to_per_sequence_gemv_t() {
        // 3x4 weights, batch of 5; include exact zeros in Y (the
        // saturated-gate case) to pin the dense-accumulation contract.
        let w: Vec<f32> = (0..12).map(|i| (i as f32 - 5.5) * 0.27).collect();
        let (rows, cols, batch) = (3usize, 4usize, 5usize);
        let ys: Vec<Vec<f32>> = vec![
            vec![0.3, -1.1, 0.0],
            vec![0.0, 0.0, 0.0],
            vec![-0.5, 2.0, 1.5],
            vec![1e-4, -1e-4, 0.0],
            vec![0.9, 0.9, -0.9],
        ];
        let mut y_bm = vec![0.0f32; rows * batch];
        for (s, y) in ys.iter().enumerate() {
            for (r, &v) in y.iter().enumerate() {
                y_bm[r * batch + s] = v;
            }
        }
        let mut xg_bm = vec![0.0f32; cols * batch];
        gemm_bm_t_acc(&w, &y_bm, &mut xg_bm, rows, cols, batch);
        for (s, y) in ys.iter().enumerate() {
            let mut xg = vec![0.0f32; cols];
            gemv_t_acc(&w, y, &mut xg, rows, cols);
            for c in 0..cols {
                assert_eq!(
                    xg_bm[c * batch + s].to_bits(),
                    xg[c].to_bits(),
                    "col {c} seq {s}"
                );
            }
        }
    }

    #[test]
    fn outer_product_accumulates() {
        let a = [1., 2.];
        let b = [3., 4., 5.];
        let mut g = [1.0f32; 6];
        outer_acc(&mut g, &a, &b);
        assert_eq!(g, [4., 5., 6., 7., 9., 11.]);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut v = [1.0f32, 2.0, 3.0];
        softmax_inplace(&mut v);
        let s: f32 = v.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = [1.0f32, 2.0, 3.0];
        let mut b = [101.0f32, 102.0, 103.0];
        softmax_inplace(&mut a);
        softmax_inplace(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let logits = [0.3f32, -0.7, 1.1, 0.2];
        let upstream = [0.5f32, -1.0, 0.25, 0.0];
        // analytic
        let mut p = logits;
        softmax_inplace(&mut p);
        let mut dp = upstream;
        softmax_backward_inplace(&p, &mut dp);
        // numeric
        let f = |l: &[f32; 4]| {
            let mut q = *l;
            softmax_inplace(&mut q);
            dot(&q, &upstream)
        };
        for i in 0..4 {
            let eps = 1e-3;
            let mut lp = logits;
            lp[i] += eps;
            let mut lm = logits;
            lm[i] -= eps;
            let num = (f(&lp) - f(&lm)) / (2.0 * eps);
            assert!(
                (num - dp[i]).abs() < 1e-3,
                "dim {i}: numeric {num} vs analytic {}",
                dp[i]
            );
        }
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(10.0) > 0.9999);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tanh_apx_tracks_libm_and_stays_bounded() {
        let mut max_err = 0.0f32;
        for i in -2000..=2000 {
            let x = i as f32 * 0.01; // [-20, 20]
            let a = tanh_apx(x);
            assert!(
                (-1.0..=1.0).contains(&a),
                "tanh_apx({x}) = {a} out of range"
            );
            max_err = max_err.max((a - x.tanh()).abs());
        }
        assert!(max_err < 2e-4, "max |tanh_apx - tanh| = {max_err}");
        // Odd symmetry is exact (every operation is sign-symmetric).
        assert_eq!(tanh_apx(1.234), -tanh_apx(-1.234));
        assert_eq!(tanh_apx(0.0), 0.0);
    }

    #[test]
    fn sigmoid_apx_tracks_sigmoid() {
        let mut max_err = 0.0f32;
        for i in -1500..=1500 {
            let x = i as f32 * 0.01;
            let a = sigmoid_apx(x);
            assert!((0.0..=1.0).contains(&a));
            max_err = max_err.max((a - sigmoid(x)).abs());
        }
        assert!(max_err < 2e-4, "max |sigmoid_apx - sigmoid| = {max_err}");
        assert_eq!(sigmoid_apx(0.0), 0.5);
    }
}
