//! Small dense linear-algebra routines (f64): Cholesky factorization
//! and positive-definite solves, used for closed-form least-squares
//! refits of linear predictor heads.

/// In-place Cholesky factorization of a symmetric positive-definite
/// `n x n` matrix (row-major); on success the lower triangle holds `L`
/// with `A = L L^T`. Returns `false` if the matrix is not positive
/// definite.
pub fn cholesky(a: &mut [f64], n: usize) -> bool {
    debug_assert_eq!(a.len(), n * n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= a[i * n + k] * a[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return false;
                }
                a[i * n + i] = sum.sqrt();
            } else {
                a[i * n + j] = sum / a[j * n + j];
            }
        }
    }
    true
}

/// Solve `A x = b` given the Cholesky factor `L` (lower triangle of
/// `chol`); overwrites `b` with `x`.
pub fn cholesky_solve(chol: &[f64], b: &mut [f64], n: usize) {
    // forward: L y = b
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= chol[i * n + k] * b[k];
        }
        b[i] = sum / chol[i * n + i];
    }
    // backward: L^T x = y
    for i in (0..n).rev() {
        let mut sum = b[i];
        for k in i + 1..n {
            sum -= chol[k * n + i] * b[k];
        }
        b[i] = sum / chol[i * n + i];
    }
}

/// Ridge-regularized least squares: given accumulated normal equations
/// `XtX` (`n x n`) and one right-hand side `Xty` (`n`), solve
/// `(XtX + ridge I) w = Xty`. Returns `None` if the system is not
/// positive definite even after regularization.
pub fn ridge_solve(xtx: &[f64], xty: &[f64], n: usize, ridge: f64) -> Option<Vec<f64>> {
    let mut a = xtx.to_vec();
    for i in 0..n {
        a[i * n + i] += ridge;
    }
    if !cholesky(&mut a, n) {
        return None;
    }
    let mut x = xty.to_vec();
    cholesky_solve(&a, &mut x, n);
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_of_identity_is_identity() {
        let mut a = vec![0.0; 9];
        for i in 0..3 {
            a[i * 3 + i] = 1.0;
        }
        assert!(cholesky(&mut a, 3));
        for i in 0..3 {
            assert!((a[i * 3 + i] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn solves_a_known_spd_system() {
        // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2]
        let mut a = vec![4.0, 2.0, 2.0, 3.0];
        assert!(cholesky(&mut a, 2));
        let mut b = vec![10.0, 9.0];
        cholesky_solve(&a, &mut b, 2);
        assert!((b[0] - 1.5).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite_matrices() {
        let mut a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert!(!cholesky(&mut a, 2));
    }

    #[test]
    fn ridge_recovers_regression_weights() {
        // y = 2 x0 - x1, overdetermined sample.
        let xs = [[1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [2.0, 1.0], [1.0, 3.0]];
        let w_true = [2.0, -1.0];
        let mut xtx = vec![0.0; 4];
        let mut xty = vec![0.0; 2];
        for x in xs {
            let y = w_true[0] * x[0] + w_true[1] * x[1];
            for i in 0..2 {
                for j in 0..2 {
                    xtx[i * 2 + j] += x[i] * x[j];
                }
                xty[i] += x[i] * y;
            }
        }
        let w = ridge_solve(&xtx, &xty, 2, 1e-9).unwrap();
        assert!((w[0] - 2.0).abs() < 1e-6);
        assert!((w[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn heavy_ridge_shrinks_weights() {
        let xtx = vec![1.0, 0.0, 0.0, 1.0];
        let xty = vec![1.0, 1.0];
        let w0 = ridge_solve(&xtx, &xty, 2, 0.0).unwrap();
        let w9 = ridge_solve(&xtx, &xty, 2, 9.0).unwrap();
        assert!(w9[0] < w0[0]);
        assert!((w9[0] - 0.1).abs() < 1e-12);
    }
}
