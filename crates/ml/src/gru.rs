//! Gated recurrent unit layers (one of the Figure 6 ablation
//! architectures).

use crate::init::seeded_rng;
// Fast activations by design: scalar and batched paths share the same
// straight-line-arithmetic functions so batched inference stays
// bit-identical to scalar inference while its inner loops vectorize
// (see `tensor::tanh_apx`).
use crate::tensor::{for_lane_chunks, BatchInput};
use crate::tensor::{
    gemm_bm_acc, gemm_bm_t_acc, gemv_acc, gemv_t_acc, outer_acc, sigmoid_apx, tanh_apx,
};

/// Shape of one GRU layer.
///
/// Flat layout: `[W_ih (3h x in) | W_hh (3h x h) | b (3h)]` with gate
/// order `r, z, n`; the candidate gate uses the standard
/// `n = tanh(W_n x + r * (U_n h) + b_n)` coupling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GruLayerShape {
    /// Input features per step.
    pub in_dim: usize,
    /// Hidden size.
    pub hidden: usize,
}

/// Per-layer activations kept for backward.
#[derive(Debug, Clone)]
pub struct GruLayerCache {
    /// `T x 3h`: post-activation `r, z, n`.
    gates: Vec<f32>,
    /// `T x h`: `U_n h_{t-1}` pre-products (needed for dr).
    un_h: Vec<f32>,
    /// `T x h`: hidden states.
    hs: Vec<f32>,
}

impl GruLayerShape {
    /// Number of parameters.
    pub fn param_len(&self) -> usize {
        3 * self.hidden * (self.in_dim + self.hidden) + 3 * self.hidden
    }

    fn split<'a>(&self, w: &'a [f32]) -> (&'a [f32], &'a [f32], &'a [f32]) {
        let (h, i) = (self.hidden, self.in_dim);
        let (w_ih, rest) = w.split_at(3 * h * i);
        let (w_hh, b) = rest.split_at(3 * h * h);
        (w_ih, w_hh, b)
    }

    /// Initialize parameters.
    pub fn init(&self, w: &mut [f32], rng: &mut rand::rngs::StdRng) {
        let (h, i) = (self.hidden, self.in_dim);
        crate::init::xavier_uniform(&mut w[..3 * h * i], i, 3 * h, rng);
        let end = 3 * h * i + 3 * h * h;
        crate::init::xavier_uniform(&mut w[3 * h * i..end], h, 3 * h, rng);
        w[end..].fill(0.0);
    }

    /// One streaming step: updates `h_state` in place from input `x`.
    ///
    /// Arithmetic mirrors one timestep of [`GruLayerShape::forward`]
    /// exactly (same gate order, same accumulation order), so a step
    /// sequence reproduces the full-sequence forward bit-for-bit.
    pub fn step(&self, w: &[f32], x: &[f32], h_state: &mut [f32]) {
        let h = self.hidden;
        let (w_ih, w_hh, b) = self.split(w);
        let (w_hr, rest) = w_hh.split_at(h * h);
        let (w_hz, w_hn) = rest.split_at(h * h);
        let mut zx = b.to_vec();
        gemv_acc(w_ih, x, &mut zx, 3 * h, self.in_dim);
        gemv_acc(w_hr, h_state, &mut zx[..h], h, h);
        gemv_acc(w_hz, h_state, &mut zx[h..2 * h], h, h);
        let mut un_h = vec![0.0f32; h];
        gemv_acc(w_hn, h_state, &mut un_h, h, h);
        for k in 0..h {
            let r = sigmoid_apx(zx[k]);
            let z = sigmoid_apx(zx[h + k]);
            let n = tanh_apx(zx[2 * h + k] + r * un_h[k]);
            h_state[k] = (1.0 - z) * n + z * h_state[k];
        }
    }

    /// Full-sequence forward.
    pub fn forward(&self, w: &[f32], xs: &[f32], t_steps: usize) -> GruLayerCache {
        let h = self.hidden;
        let (w_ih, w_hh, b) = self.split(w);
        let (w_hr, rest) = w_hh.split_at(h * h);
        let (w_hz, w_hn) = rest.split_at(h * h);
        let mut cache = GruLayerCache {
            gates: vec![0.0; t_steps * 3 * h],
            un_h: vec![0.0; t_steps * h],
            hs: vec![0.0; t_steps * h],
        };
        let mut h_prev = vec![0.0f32; h];
        let mut zx = vec![0.0f32; 3 * h];
        for t in 0..t_steps {
            let x = &xs[t * self.in_dim..(t + 1) * self.in_dim];
            zx.copy_from_slice(b);
            gemv_acc(w_ih, x, &mut zx, 3 * h, self.in_dim);
            // recurrent contributions (r and z direct; n kept separate)
            gemv_acc(w_hr, &h_prev, &mut zx[..h], h, h);
            gemv_acc(w_hz, &h_prev, &mut zx[h..2 * h], h, h);
            let un_h = &mut cache.un_h[t * h..(t + 1) * h];
            un_h.fill(0.0);
            gemv_acc(w_hn, &h_prev, un_h, h, h);
            let gates = &mut cache.gates[t * 3 * h..(t + 1) * 3 * h];
            let hs = &mut cache.hs[t * h..(t + 1) * h];
            for k in 0..h {
                let r = sigmoid_apx(zx[k]);
                let z = sigmoid_apx(zx[h + k]);
                let n = tanh_apx(zx[2 * h + k] + r * un_h[k]);
                gates[k] = r;
                gates[h + k] = z;
                gates[2 * h + k] = n;
                hs[k] = (1.0 - z) * n + z * h_prev[k];
            }
            h_prev.copy_from_slice(hs);
        }
        cache
    }

    /// Full-sequence backward (mirrors [`crate::lstm::LstmLayerShape::backward`]).
    #[allow(clippy::too_many_arguments)]
    pub fn backward(
        &self,
        w: &[f32],
        xs: &[f32],
        t_steps: usize,
        cache: &GruLayerCache,
        dh: &mut [f32],
        grads: &mut [f32],
        dxs: &mut [f32],
    ) {
        let h = self.hidden;
        let i_dim = self.in_dim;
        let (w_ih, w_hh, _) = self.split(w);
        let (w_hr, rest) = w_hh.split_at(h * h);
        let (w_hz, w_hn) = rest.split_at(h * h);
        let wn_ih = 3 * h * i_dim;
        let (g_ih, rest_g) = grads.split_at_mut(wn_ih);
        let (g_hh, g_b) = rest_g.split_at_mut(3 * h * h);
        let (g_hr, rest_g2) = g_hh.split_at_mut(h * h);
        let (g_hz, g_hn) = rest_g2.split_at_mut(h * h);

        let mut dh_rec = vec![0.0f32; h];
        let mut dz_pre = vec![0.0f32; 3 * h]; // gradients w.r.t. pre-activations
        let mut dn_un = vec![0.0f32; h]; // gradient w.r.t. (U_n h_prev)
        for t in (0..t_steps).rev() {
            let gates = &cache.gates[t * 3 * h..(t + 1) * 3 * h];
            let un_h = &cache.un_h[t * h..(t + 1) * h];
            let zero_h;
            let h_prev: &[f32] = if t == 0 {
                zero_h = vec![0.0f32; h];
                &zero_h
            } else {
                &cache.hs[(t - 1) * h..t * h]
            };
            let dh_t = &mut dh[t * h..(t + 1) * h];
            for (d, r) in dh_t.iter_mut().zip(&dh_rec) {
                *d += r;
            }
            dh_rec.fill(0.0);
            for k in 0..h {
                let r = gates[k];
                let z = gates[h + k];
                let n = gates[2 * h + k];
                let dht = dh_t[k];
                // h = (1-z) n + z h_prev
                let dn = dht * (1.0 - z);
                let dz = dht * (h_prev[k] - n);
                dh_rec[k] += dht * z;
                let dn_pre = dn * (1.0 - n * n);
                let dr = dn_pre * un_h[k];
                dn_un[k] = dn_pre * r;
                dz_pre[k] = dr * r * (1.0 - r);
                dz_pre[h + k] = dz * z * (1.0 - z);
                dz_pre[2 * h + k] = dn_pre;
            }
            let x = &xs[t * i_dim..(t + 1) * i_dim];
            outer_acc(g_ih, &dz_pre, x);
            for (g, &d) in g_b.iter_mut().zip(&dz_pre) {
                *g += d;
            }
            gemv_t_acc(
                w_ih,
                &dz_pre,
                &mut dxs[t * i_dim..(t + 1) * i_dim],
                3 * h,
                i_dim,
            );
            // recurrent weight grads + recurrent dh contributions
            outer_acc(g_hr, &dz_pre[..h], h_prev);
            outer_acc(g_hz, &dz_pre[h..2 * h], h_prev);
            outer_acc(g_hn, &dn_un, h_prev);
            gemv_t_acc(w_hr, &dz_pre[..h], &mut dh_rec, h, h);
            gemv_t_acc(w_hz, &dz_pre[h..2 * h], &mut dh_rec, h, h);
            gemv_t_acc(w_hn, &dn_un, &mut dh_rec, h, h);
        }
    }
}

/// One GRU gate-activation chunk of compile-time width `L` (all slices
/// have length `L`); element math identical to the scalar path:
/// `r,z` sigmoids, `n = tanh(z_n + r·(U_n h))`, `h = (1-z)n + z·h`.
#[inline]
fn gru_gates_chunk<const L: usize>(
    zr: &[f32],
    zz: &[f32],
    zn: &[f32],
    un_row: &[f32],
    h_row: &mut [f32],
) {
    for s in 0..L {
        let r = sigmoid_apx(zr[s]);
        let z = sigmoid_apx(zz[s]);
        let n = tanh_apx(zn[s] + r * un_row[s]);
        h_row[s] = (1.0 - z) * n + z * h_row[s];
    }
}

/// The training variant of [`gru_gates_chunk`]: identical element math,
/// with `h_prev` read separately from the written `h_new` (the cache
/// keeps every timestep) and the post-activation gates stored for
/// backward.
#[allow(clippy::too_many_arguments)]
#[inline]
fn gru_gates_chunk_cached<const L: usize>(
    zr: &[f32],
    zz: &[f32],
    zn: &[f32],
    un_row: &[f32],
    h_prev: &[f32],
    h_new: &mut [f32],
    gr: &mut [f32],
    gz: &mut [f32],
    gn: &mut [f32],
) {
    for s in 0..L {
        let r = sigmoid_apx(zr[s]);
        let z = sigmoid_apx(zz[s]);
        let n = tanh_apx(zn[s] + r * un_row[s]);
        gr[s] = r;
        gz[s] = z;
        gn[s] = n;
        h_new[s] = (1.0 - z) * n + z * h_prev[s];
    }
}

/// One batch-major GRU backward chunk of compile-time width `L`: the
/// per-element math is exactly [`GruLayerShape::backward`]'s gate loop,
/// applied lane-wise (each lane follows the scalar operation sequence,
/// so batched deltas are bit-identical per sequence).
#[allow(clippy::too_many_arguments)]
#[inline]
fn gru_bwd_chunk<const L: usize>(
    gr: &[f32],
    gz: &[f32],
    gn: &[f32],
    un_row: &[f32],
    h_prev: &[f32],
    dht: &[f32],
    dh_rec: &mut [f32],
    dn_un: &mut [f32],
    dzr: &mut [f32],
    dzz: &mut [f32],
    dzn: &mut [f32],
) {
    for s in 0..L {
        let r = gr[s];
        let z = gz[s];
        let n = gn[s];
        let dhtv = dht[s];
        // h = (1-z) n + z h_prev
        let dn = dhtv * (1.0 - z);
        let dz = dhtv * (h_prev[s] - n);
        dh_rec[s] += dhtv * z;
        let dn_pre = dn * (1.0 - n * n);
        let dr = dn_pre * un_row[s];
        dn_un[s] = dn_pre * r;
        dzr[s] = dr * r * (1.0 - r);
        dzz[s] = dz * z * (1.0 - z);
        dzn[s] = dn_pre;
    }
}

/// Batch-major forward activations of one GRU layer (layout as in
/// [`crate::lstm::LstmLayerBatchCache`]: row `r` of step `t` at
/// `t * rows * batch + r * batch + s`).
#[derive(Debug, Clone)]
pub struct GruLayerBatchCache {
    /// `T x 3h x batch`: post-activation `r, z, n`.
    pub gates: Vec<f32>,
    /// `T x h x batch`: `U_n h_{t-1}` pre-products.
    pub un_h: Vec<f32>,
    /// `T x h x batch`: hidden states.
    pub hs: Vec<f32>,
}

/// Forward cache for [`Gru::forward_batch_cached`].
#[derive(Debug, Clone)]
pub struct GruBatchCache {
    layer_caches: Vec<GruLayerBatchCache>,
    t_steps: usize,
    batch: usize,
}

impl GruBatchCache {
    /// Number of timesteps the cache covers.
    pub fn t_steps(&self) -> usize {
        self.t_steps
    }

    /// Number of sequences in the batch.
    pub fn batch(&self) -> usize {
        self.batch
    }
}

impl GruLayerShape {
    /// Batch-major full-sequence backward over a [`GruLayerBatchCache`]
    /// (the lockstep mirror of [`GruLayerShape::backward`]; same
    /// bit-identity contract as
    /// [`crate::lstm::LstmLayerShape::backward_batch`]).
    #[allow(clippy::too_many_arguments)]
    pub fn backward_batch(
        &self,
        w: &[f32],
        x: &BatchInput<'_>,
        t_steps: usize,
        batch: usize,
        cache: &GruLayerBatchCache,
        dh: &mut [f32],
        grads: &mut [f32],
        dxs: &mut [f32],
    ) {
        let h = self.hidden;
        let i_dim = self.in_dim;
        let (w_ih, w_hh, _) = self.split(w);
        let (w_hr, rest) = w_hh.split_at(h * h);
        let (w_hz, w_hn) = rest.split_at(h * h);
        let (g_ih, rest_g) = grads.split_at_mut(3 * h * i_dim);
        let (g_hh, g_b) = rest_g.split_at_mut(3 * h * h);
        let (g_hr, rest_g2) = g_hh.split_at_mut(h * h);
        let (g_hz, g_hn) = rest_g2.split_at_mut(h * h);

        let mut dh_rec = vec![0.0f32; h * batch];
        // All timesteps' pre-activation deltas and candidate-gate
        // recurrent deltas, batch-major, for the canonical parameter
        // accumulation below.
        let mut dzs = vec![0.0f32; t_steps * 3 * h * batch];
        let mut dn_uns = vec![0.0f32; t_steps * h * batch];
        let zero_row = vec![0.0f32; batch];
        for t in (0..t_steps).rev() {
            let gates = &cache.gates[t * 3 * h * batch..(t + 1) * 3 * h * batch];
            let un_h = &cache.un_h[t * h * batch..(t + 1) * h * batch];
            let dh_t = &mut dh[t * h * batch..(t + 1) * h * batch];
            for (d, r) in dh_t.iter_mut().zip(&dh_rec) {
                *d += r;
            }
            dh_rec.fill(0.0);
            let dz = &mut dzs[t * 3 * h * batch..(t + 1) * 3 * h * batch];
            let (dz_r, dz_rest) = dz.split_at_mut(h * batch);
            let (dz_z, dz_n) = dz_rest.split_at_mut(h * batch);
            let dn_un = &mut dn_uns[t * h * batch..(t + 1) * h * batch];
            for k in 0..h {
                let row = |r: usize| &gates[r * batch..(r + 1) * batch];
                let (gr, gz, gn) = (row(k), row(h + k), row(2 * h + k));
                let un_row = &un_h[k * batch..(k + 1) * batch];
                let hp: &[f32] = if t == 0 {
                    &zero_row
                } else {
                    &cache.hs
                        [(t - 1) * h * batch + k * batch..(t - 1) * h * batch + (k + 1) * batch]
                };
                let dht = &dh_t[k * batch..(k + 1) * batch];
                let dhr = &mut dh_rec[k * batch..(k + 1) * batch];
                let dnu = &mut dn_un[k * batch..(k + 1) * batch];
                let dzr = &mut dz_r[k * batch..(k + 1) * batch];
                let dzz = &mut dz_z[k * batch..(k + 1) * batch];
                let dzn = &mut dz_n[k * batch..(k + 1) * batch];
                for_lane_chunks!(batch, s, LW => gru_bwd_chunk::<LW>(
                    &gr[s..s + LW],
                    &gz[s..s + LW],
                    &gn[s..s + LW],
                    &un_row[s..s + LW],
                    &hp[s..s + LW],
                    &dht[s..s + LW],
                    &mut dhr[s..s + LW],
                    &mut dnu[s..s + LW],
                    &mut dzr[s..s + LW],
                    &mut dzz[s..s + LW],
                    &mut dzn[s..s + LW],
                ));
            }
            let dz = &dzs[t * 3 * h * batch..(t + 1) * 3 * h * batch];
            gemm_bm_t_acc(
                w_ih,
                dz,
                &mut dxs[t * i_dim * batch..(t + 1) * i_dim * batch],
                3 * h,
                i_dim,
                batch,
            );
            // dh_rec feeds step t-1, so the recurrent products are dead
            // work at t == 0 (the scalar backward computes them anyway,
            // but never reads them — skipping is parity-safe).
            if t > 0 {
                gemm_bm_t_acc(w_hr, &dz[..h * batch], &mut dh_rec, h, h, batch);
                gemm_bm_t_acc(
                    w_hz,
                    &dz[h * batch..2 * h * batch],
                    &mut dh_rec,
                    h,
                    h,
                    batch,
                );
                gemm_bm_t_acc(w_hn, dn_un, &mut dh_rec, h, h, batch);
            }
        }
        // Canonical parameter accumulation: per sequence (ascending),
        // per timestep (descending), exactly the scalar path's rank-1
        // updates and bias adds (h_prev is the zero vector at t = 0,
        // matching the scalar backward).
        let mut dz_s = vec![0.0f32; 3 * h];
        let mut dn_s = vec![0.0f32; h];
        let mut x_s = vec![0.0f32; i_dim];
        let mut hp_s = vec![0.0f32; h];
        for s in 0..batch {
            for t in (0..t_steps).rev() {
                let dz = &dzs[t * 3 * h * batch..(t + 1) * 3 * h * batch];
                for (r, d) in dz_s.iter_mut().enumerate() {
                    *d = dz[r * batch + s];
                }
                let dn = &dn_uns[t * h * batch..(t + 1) * h * batch];
                for (k, d) in dn_s.iter_mut().enumerate() {
                    *d = dn[k * batch + s];
                }
                if t == 0 {
                    hp_s.fill(0.0);
                } else {
                    let hs = &cache.hs[(t - 1) * h * batch..t * h * batch];
                    for (k, hp) in hp_s.iter_mut().enumerate() {
                        *hp = hs[k * batch + s];
                    }
                }
                x.gather(t, s, t_steps, batch, &mut x_s);
                outer_acc(g_ih, &dz_s, &x_s);
                for (g, &d) in g_b.iter_mut().zip(&dz_s) {
                    *g += d;
                }
                outer_acc(g_hr, &dz_s[..h], &hp_s);
                outer_acc(g_hz, &dz_s[h..2 * h], &hp_s);
                outer_acc(g_hn, &dn_s, &hp_s);
            }
        }
    }
}

/// Streaming hidden state for a multi-layer GRU (the GRU is stateful by
/// construction, so it supports the same single-pass fast path as the
/// LSTM; see [`crate::lstm::LstmState`]).
#[derive(Debug, Clone)]
pub struct GruState {
    /// Per-layer hidden vectors.
    pub h: Vec<Vec<f32>>,
}

impl GruState {
    /// Reset all state to zero.
    pub fn reset(&mut self) {
        for v in self.h.iter_mut() {
            v.fill(0.0);
        }
    }
}

/// Multi-layer GRU with contiguous parameters.
#[derive(Debug, Clone)]
pub struct Gru {
    layers: Vec<GruLayerShape>,
    params: Vec<f32>,
}

/// Forward cache for [`Gru::forward`].
#[derive(Debug, Clone)]
pub struct GruCache {
    layer_caches: Vec<GruLayerCache>,
    t_steps: usize,
}

impl Gru {
    /// Build an `n_layers` GRU.
    pub fn new(in_dim: usize, hidden: usize, n_layers: usize, seed: u64) -> Gru {
        assert!(n_layers >= 1);
        let mut layers = Vec::with_capacity(n_layers);
        for l in 0..n_layers {
            layers.push(GruLayerShape {
                in_dim: if l == 0 { in_dim } else { hidden },
                hidden,
            });
        }
        let total: usize = layers.iter().map(|l| l.param_len()).sum();
        let mut params = vec![0.0f32; total];
        let mut rng = seeded_rng(seed);
        let mut off = 0;
        for l in &layers {
            l.init(&mut params[off..off + l.param_len()], &mut rng);
            off += l.param_len();
        }
        Gru { layers, params }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().unwrap().hidden
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Flat parameters.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Flat parameters, mutable.
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn layer_param(&self, l: usize) -> &[f32] {
        let off: usize = self.layers[..l].iter().map(|s| s.param_len()).sum();
        &self.params[off..off + self.layers[l].param_len()]
    }

    /// Full-sequence forward; returns the final hidden vector and cache.
    pub fn forward(&self, xs: &[f32], t_steps: usize) -> (Vec<f32>, GruCache) {
        let mut layer_caches = Vec::with_capacity(self.layers.len());
        let mut input: Vec<f32> = xs.to_vec();
        for (l, shape) in self.layers.iter().enumerate() {
            let cache = shape.forward(self.layer_param(l), &input, t_steps);
            input = cache.hs.clone();
            layer_caches.push(cache);
        }
        let h = self.out_dim();
        let out = input[(t_steps - 1) * h..t_steps * h].to_vec();
        (
            out,
            GruCache {
                layer_caches,
                t_steps,
            },
        )
    }

    /// Fresh zeroed streaming state.
    pub fn zero_state(&self) -> GruState {
        GruState {
            h: self.layers.iter().map(|l| vec![0.0; l.hidden]).collect(),
        }
    }

    /// One streaming step: feed `x`, update `state`, and write the top
    /// layer's hidden vector into `out`.
    pub fn step(&self, state: &mut GruState, x: &[f32], out: &mut [f32]) {
        let mut input = x.to_vec();
        for (l, shape) in self.layers.iter().enumerate() {
            let w = self.layer_param(l);
            shape.step(w, &input, &mut state.h[l]);
            input.clear();
            input.extend_from_slice(&state.h[l]);
        }
        out.copy_from_slice(&input);
    }

    /// Batched full-sequence forward over `batch` independent sequences
    /// in lockstep (see [`crate::lstm::Lstm::forward_batch`]; same
    /// layouts, same bit-identical-per-sequence guarantee).
    pub fn forward_batch(&self, xs: &[f32], t_steps: usize, batch: usize) -> Vec<f32> {
        let in_dim = self.in_dim();
        debug_assert_eq!(xs.len(), batch * t_steps * in_dim);
        assert!(batch >= 1);
        let mut h_st: Vec<Vec<f32>> = self
            .layers
            .iter()
            .map(|l| vec![0.0f32; l.hidden * batch])
            .collect();
        let h_max = self.layers.iter().map(|l| l.hidden).max().unwrap();
        let mut x0 = vec![0.0f32; in_dim * batch];
        let mut zx = vec![0.0f32; 3 * h_max * batch];
        let mut un = vec![0.0f32; h_max * batch];
        let mut acc = vec![0.0f32; batch];
        for t in 0..t_steps {
            for k in 0..in_dim {
                for (s, x) in x0[k * batch..(k + 1) * batch].iter_mut().enumerate() {
                    *x = xs[s * t_steps * in_dim + t * in_dim + k];
                }
            }
            for (l, shape) in self.layers.iter().enumerate() {
                let h = shape.hidden;
                let (w_ih, w_hh, b) = shape.split(self.layer_param(l));
                let (w_hr, rest) = w_hh.split_at(h * h);
                let (w_hz, w_hn) = rest.split_at(h * h);
                let zx = &mut zx[..3 * h * batch];
                for (r, &bv) in b.iter().enumerate() {
                    zx[r * batch..(r + 1) * batch].fill(bv);
                }
                let (below, cur) = h_st.split_at_mut(l);
                let x_bm: &[f32] = if l == 0 { &x0 } else { &below[l - 1] };
                gemm_bm_acc(w_ih, x_bm, zx, 3 * h, shape.in_dim, batch, &mut acc);
                let h_cur = &mut cur[0];
                gemm_bm_acc(w_hr, h_cur, &mut zx[..h * batch], h, h, batch, &mut acc);
                gemm_bm_acc(
                    w_hz,
                    h_cur,
                    &mut zx[h * batch..2 * h * batch],
                    h,
                    h,
                    batch,
                    &mut acc,
                );
                let un = &mut un[..h * batch];
                un.fill(0.0);
                gemm_bm_acc(w_hn, h_cur, un, h, h, batch, &mut acc);
                // Per-k row slices, processed in fixed-width chunks so
                // the gate math reliably compiles to SIMD (see the
                // LSTM's `gates_chunk`); identical math at any width.
                for k in 0..h {
                    let zr = &zx[k * batch..(k + 1) * batch];
                    let zz = &zx[(h + k) * batch..(h + k + 1) * batch];
                    let zn = &zx[(2 * h + k) * batch..(2 * h + k + 1) * batch];
                    let un_row = &un[k * batch..(k + 1) * batch];
                    let h_row = &mut h_cur[k * batch..(k + 1) * batch];
                    for_lane_chunks!(batch, s, LW => gru_gates_chunk::<LW>(
                        &zr[s..s + LW],
                        &zz[s..s + LW],
                        &zn[s..s + LW],
                        &un_row[s..s + LW],
                        &mut h_row[s..s + LW],
                    ));
                }
            }
        }
        let d = self.out_dim();
        let top = &h_st[self.layers.len() - 1];
        let mut out = vec![0.0f32; batch * d];
        for s in 0..batch {
            for k in 0..d {
                out[s * d + k] = top[k * batch + s];
            }
        }
        out
    }

    /// Batched full-sequence forward that also retains every layer's
    /// batch-major activations for [`Gru::backward_batch`] (same
    /// bit-identity contract as
    /// [`crate::lstm::Lstm::forward_batch_cached`]).
    pub fn forward_batch_cached(
        &self,
        xs: &[f32],
        t_steps: usize,
        batch: usize,
    ) -> (Vec<f32>, GruBatchCache) {
        let in_dim = self.in_dim();
        debug_assert_eq!(xs.len(), batch * t_steps * in_dim);
        assert!(batch >= 1);
        let mut layer_caches: Vec<GruLayerBatchCache> = self
            .layers
            .iter()
            .map(|l| GruLayerBatchCache {
                gates: vec![0.0; t_steps * 3 * l.hidden * batch],
                un_h: vec![0.0; t_steps * l.hidden * batch],
                hs: vec![0.0; t_steps * l.hidden * batch],
            })
            .collect();
        let h_max = self.layers.iter().map(|l| l.hidden).max().unwrap();
        let mut x0 = vec![0.0f32; in_dim * batch];
        let mut zx = vec![0.0f32; 3 * h_max * batch];
        let mut acc = vec![0.0f32; batch];
        let zeros = vec![0.0f32; h_max * batch];
        for t in 0..t_steps {
            for k in 0..in_dim {
                for (s, x) in x0[k * batch..(k + 1) * batch].iter_mut().enumerate() {
                    *x = xs[s * t_steps * in_dim + t * in_dim + k];
                }
            }
            for (l, shape) in self.layers.iter().enumerate() {
                let h = shape.hidden;
                let (w_ih, w_hh, b) = shape.split(self.layer_param(l));
                let (w_hr, rest) = w_hh.split_at(h * h);
                let (w_hz, w_hn) = rest.split_at(h * h);
                let zx = &mut zx[..3 * h * batch];
                for (r, &bv) in b.iter().enumerate() {
                    zx[r * batch..(r + 1) * batch].fill(bv);
                }
                let (below, cur) = layer_caches.split_at_mut(l);
                let x_bm: &[f32] = if l == 0 {
                    &x0
                } else {
                    &below[l - 1].hs[t * shape.in_dim * batch..(t + 1) * shape.in_dim * batch]
                };
                let cache = &mut cur[0];
                let h_prev: &[f32] = if t == 0 {
                    &zeros[..h * batch]
                } else {
                    &cache.hs[(t - 1) * h * batch..t * h * batch]
                };
                gemm_bm_acc(w_ih, x_bm, zx, 3 * h, shape.in_dim, batch, &mut acc);
                gemm_bm_acc(w_hr, h_prev, &mut zx[..h * batch], h, h, batch, &mut acc);
                gemm_bm_acc(
                    w_hz,
                    h_prev,
                    &mut zx[h * batch..2 * h * batch],
                    h,
                    h,
                    batch,
                    &mut acc,
                );
                let un = &mut cache.un_h[t * h * batch..(t + 1) * h * batch];
                gemm_bm_acc(w_hn, h_prev, un, h, h, batch, &mut acc);
                let un = &cache.un_h[t * h * batch..(t + 1) * h * batch];
                let h_new_off = t * h * batch;
                let gates_off = t * 3 * h * batch;
                for k in 0..h {
                    let zr = &zx[k * batch..(k + 1) * batch];
                    let zz = &zx[(h + k) * batch..(h + k + 1) * batch];
                    let zn = &zx[(2 * h + k) * batch..(2 * h + k + 1) * batch];
                    let un_row = &un[k * batch..(k + 1) * batch];
                    // Split hs so h_prev (shared) and h_new (mutable)
                    // can coexist: everything before step t is frozen.
                    let (hs_prev, hs_new) = cache.hs.split_at_mut(h_new_off);
                    let hp: &[f32] = if t == 0 {
                        &zeros[k * batch..(k + 1) * batch]
                    } else {
                        &hs_prev
                            [(t - 1) * h * batch + k * batch..(t - 1) * h * batch + (k + 1) * batch]
                    };
                    let hn = &mut hs_new[k * batch..(k + 1) * batch];
                    let (g_r, g_rest) =
                        cache.gates[gates_off..gates_off + 3 * h * batch].split_at_mut(h * batch);
                    let (g_z, g_n) = g_rest.split_at_mut(h * batch);
                    let gr = &mut g_r[k * batch..(k + 1) * batch];
                    let gz = &mut g_z[k * batch..(k + 1) * batch];
                    let gn = &mut g_n[k * batch..(k + 1) * batch];
                    for_lane_chunks!(batch, s, LW => gru_gates_chunk_cached::<LW>(
                        &zr[s..s + LW],
                        &zz[s..s + LW],
                        &zn[s..s + LW],
                        &un_row[s..s + LW],
                        &hp[s..s + LW],
                        &mut hn[s..s + LW],
                        &mut gr[s..s + LW],
                        &mut gz[s..s + LW],
                        &mut gn[s..s + LW],
                    ));
                }
            }
        }
        let d = self.out_dim();
        let top = &layer_caches[self.layers.len() - 1];
        let top_hs = &top.hs[(t_steps - 1) * d * batch..t_steps * d * batch];
        let mut out = vec![0.0f32; batch * d];
        for s in 0..batch {
            for k in 0..d {
                out[s * d + k] = top_hs[k * batch + s];
            }
        }
        (
            out,
            GruBatchCache {
                layer_caches,
                t_steps,
                batch,
            },
        )
    }

    /// Batch-major BPTT from per-sequence gradients `douts`
    /// (sequence-major `batch x hidden`); accumulates into `grads`,
    /// bit-identically to running the scalar [`Gru::backward`] once per
    /// sequence in batch order.
    pub fn backward_batch(
        &self,
        xs: &[f32],
        cache: &GruBatchCache,
        douts: &[f32],
        grads: &mut [f32],
    ) {
        let t = cache.t_steps;
        let batch = cache.batch;
        let top = self.layers.len() - 1;
        let h_top = self.layers[top].hidden;
        debug_assert_eq!(douts.len(), batch * h_top);
        let mut dh = vec![0.0f32; t * h_top * batch];
        let last = &mut dh[(t - 1) * h_top * batch..];
        for s in 0..batch {
            for k in 0..h_top {
                last[k * batch + s] = douts[s * h_top + k];
            }
        }
        let mut ends: Vec<usize> = Vec::with_capacity(self.layers.len());
        let mut acc = 0;
        for s in &self.layers {
            acc += s.param_len();
            ends.push(acc);
        }
        for l in (0..self.layers.len()).rev() {
            let shape = self.layers[l];
            let x = if l == 0 {
                BatchInput::Seq(xs)
            } else {
                BatchInput::Bm(&cache.layer_caches[l - 1].hs)
            };
            let mut dxs = vec![0.0f32; t * shape.in_dim * batch];
            let start = ends[l] - shape.param_len();
            shape.backward_batch(
                self.layer_param(l),
                &x,
                t,
                batch,
                &cache.layer_caches[l],
                &mut dh,
                &mut grads[start..ends[l]],
                &mut dxs,
            );
            dh = dxs;
        }
    }

    /// Backward from `dout` (gradient w.r.t. the final hidden vector).
    pub fn backward(&self, xs: &[f32], cache: &GruCache, dout: &[f32], grads: &mut [f32]) {
        let t = cache.t_steps;
        let top = self.layers.len() - 1;
        let h_top = self.layers[top].hidden;
        let mut dh = vec![0.0f32; t * h_top];
        dh[(t - 1) * h_top..].copy_from_slice(dout);
        let mut ends: Vec<usize> = Vec::with_capacity(self.layers.len());
        let mut acc = 0;
        for s in &self.layers {
            acc += s.param_len();
            ends.push(acc);
        }
        for l in (0..self.layers.len()).rev() {
            let shape = self.layers[l];
            let xs_l: &[f32] = if l == 0 {
                xs
            } else {
                &cache.layer_caches[l - 1].hs
            };
            let mut dxs = vec![0.0f32; t * shape.in_dim];
            let start = ends[l] - shape.param_len();
            shape.backward(
                self.layer_param(l),
                xs_l,
                t,
                &cache.layer_caches[l],
                &mut dh,
                &mut grads[start..ends[l]],
                &mut dxs,
            );
            dh = dxs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::dot;

    #[test]
    fn gradient_check_two_layers() {
        let mut model = Gru::new(4, 5, 2, 11);
        let t = 5;
        let mut rng = seeded_rng(2);
        use rand::Rng;
        let xs: Vec<f32> = (0..t * 4).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let dout: Vec<f32> = (0..5).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let (_, cache) = model.forward(&xs, t);
        let mut grads = vec![0.0f32; model.params().len()];
        model.backward(&xs, &cache, &dout, &mut grads);

        let loss = |m: &Gru| {
            let (out, _) = m.forward(&xs, t);
            dot(&out, &dout)
        };
        let n = model.params().len();
        let mut idx = 1usize;
        let mut checked = 0;
        while idx < n && checked < 24 {
            let eps = 3e-3;
            let orig = model.params()[idx];
            model.params_mut()[idx] = orig + eps;
            let lp = loss(&model);
            model.params_mut()[idx] = orig - eps;
            let lm = loss(&model);
            model.params_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads[idx];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs().max(ana.abs())),
                "param {idx}: numeric {num} vs analytic {ana}"
            );
            checked += 1;
            idx = idx * 2 + 3;
        }
    }

    #[test]
    fn gru_has_three_quarters_of_lstm_params() {
        let gru = Gru::new(8, 16, 1, 0).params().len();
        let lstm = crate::lstm::Lstm::new(8, 16, 1, 0).params().len();
        assert_eq!(gru * 4, lstm * 3);
    }

    #[test]
    fn forward_is_deterministic() {
        let m = Gru::new(3, 6, 2, 77);
        let xs = vec![0.25f32; 4 * 3];
        let (a, _) = m.forward(&xs, 4);
        let (b, _) = m.forward(&xs, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn streaming_matches_windowed_forward_bit_exactly() {
        let model = Gru::new(3, 8, 2, 9);
        let t = 6;
        let mut rng = seeded_rng(3);
        use rand::Rng;
        let xs: Vec<f32> = (0..t * 3).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let (win_out, _) = model.forward(&xs, t);
        let mut state = model.zero_state();
        let mut out = vec![0.0f32; 8];
        for step in 0..t {
            model.step(&mut state, &xs[step * 3..(step + 1) * 3], &mut out);
        }
        assert_eq!(win_out, out);
    }

    #[test]
    fn state_reset_restores_determinism() {
        let model = Gru::new(2, 4, 1, 1);
        let x = [0.5f32, -0.25];
        let mut out1 = vec![0.0f32; 4];
        let mut out2 = vec![0.0f32; 4];
        let mut state = model.zero_state();
        model.step(&mut state, &x, &mut out1);
        state.reset();
        model.step(&mut state, &x, &mut out2);
        assert_eq!(out1, out2);
    }
}
