//! Parameter initialization.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Xavier/Glorot uniform initialization for a `fan_out x fan_in` weight
/// block: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(w: &mut [f32], fan_in: usize, fan_out: usize, rng: &mut StdRng) {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
    for v in w {
        *v = rng.gen_range(-a..a);
    }
}

/// Small-uniform initialization used for biases/representation tables.
pub fn uniform(w: &mut [f32], scale: f32, rng: &mut StdRng) {
    for v in w {
        *v = rng.gen_range(-scale..scale);
    }
}

/// A seeded RNG for parameter initialization.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_bound_and_is_seeded() {
        let mut a = vec![0f32; 1000];
        let mut b = vec![0f32; 1000];
        xavier_uniform(&mut a, 64, 64, &mut seeded_rng(1));
        xavier_uniform(&mut b, 64, 64, &mut seeded_rng(1));
        assert_eq!(a, b);
        let bound = (6.0f64 / 128.0).sqrt() as f32;
        assert!(a.iter().all(|v| v.abs() <= bound));
        // Not degenerate.
        assert!(a.iter().any(|v| v.abs() > bound / 4.0));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = vec![0f32; 100];
        let mut b = vec![0f32; 100];
        xavier_uniform(&mut a, 10, 10, &mut seeded_rng(1));
        xavier_uniform(&mut b, 10, 10, &mut seeded_rng(2));
        assert_ne!(a, b);
    }
}
