//! Adam optimizer (Kingma & Ba), the paper's training optimizer
//! (Section IV-D: initial learning rate 1e-3, decayed 10x every 10
//! epochs — see [`crate::schedule`]).

/// Adam state over a flat parameter vector.
#[derive(Debug, Clone)]
pub struct Adam {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
}

impl Adam {
    /// Fresh optimizer state for `n` parameters.
    pub fn new(n: usize) -> Adam {
        Adam {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Apply one update with learning rate `lr` given gradients `grads`.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), self.m.len());
        assert_eq!(grads.len(), self.m.len());
        self.t += 1;
        let b1c = 1.0 - self.beta1.powi(self.t as i32);
        let b2c = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / b1c;
            let vhat = self.v[i] / b2c;
            params[i] -= lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    /// Number of updates applied so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Snapshot the optimizer state: first moments, second moments, and
    /// the step counter (for training checkpoint-resume).
    pub fn state(&self) -> (&[f32], &[f32], u64) {
        (&self.m, &self.v, self.t)
    }

    /// Rebuild an optimizer from a state captured by [`Adam::state`];
    /// stepping it continues the original run bit-identically.
    pub fn from_state(m: Vec<f32>, v: Vec<f32>, t: u64) -> Adam {
        assert_eq!(m.len(), v.len(), "moment vectors must have equal length");
        Adam {
            m,
            v,
            t,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_a_quadratic() {
        // f(x) = (x - 3)^2, df = 2(x - 3)
        let mut x = vec![10.0f32];
        let mut opt = Adam::new(1);
        for _ in 0..2000 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g, 0.05);
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "converged to {}", x[0]);
    }

    #[test]
    fn minimizes_a_rosenbrock_ish_coupled_pair() {
        // f(a, b) = (1-a)^2 + 5 (b - a^2)^2
        let mut p = vec![-1.0f32, 1.0];
        let mut opt = Adam::new(2);
        for _ in 0..8000 {
            let (a, b) = (p[0], p[1]);
            let g = vec![
                -2.0 * (1.0 - a) - 20.0 * a * (b - a * a),
                10.0 * (b - a * a),
            ];
            opt.step(&mut p, &g, 0.01);
        }
        assert!(
            (p[0] - 1.0).abs() < 0.1 && (p[1] - 1.0).abs() < 0.15,
            "got {p:?}"
        );
    }

    #[test]
    fn first_step_moves_by_about_lr() {
        // Bias correction makes the very first step ~= lr * sign(g).
        let mut x = vec![0.0f32];
        let mut opt = Adam::new(1);
        opt.step(&mut x, &[123.0], 0.001);
        assert!((x[0] + 0.001).abs() < 1e-5, "step was {}", x[0]);
    }

    #[test]
    fn state_roundtrip_continues_bit_identically() {
        let mut x = vec![4.0f32, -2.0];
        let mut opt = Adam::new(2);
        let g = |x: &[f32]| vec![2.0 * (x[0] - 1.0), 2.0 * (x[1] + 1.0)];
        for _ in 0..10 {
            let grads = g(&x);
            opt.step(&mut x, &grads, 0.01);
        }
        let (m, v, t) = opt.state();
        let (m, v) = (m.to_vec(), v.to_vec());
        let mut x2 = x.clone();
        let mut opt2 = Adam::from_state(m, v, t);
        for _ in 0..10 {
            let (ga, gb) = (g(&x), g(&x2));
            opt.step(&mut x, &ga, 0.01);
            opt2.step(&mut x2, &gb, 0.01);
        }
        assert_eq!(x, x2);
        assert_eq!(opt.steps(), opt2.steps());
    }

    #[test]
    fn zero_gradient_is_a_fixed_point() {
        let mut x = vec![5.0f32];
        let mut opt = Adam::new(1);
        opt.step(&mut x, &[0.0], 0.1);
        assert_eq!(x[0], 5.0);
    }
}
