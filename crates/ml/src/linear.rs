//! Linear (fully connected) layer as a stateless *shape*: parameters
//! live in a flat slice owned by the enclosing model, which keeps whole
//! models contiguous for the optimizer and for data-parallel gradient
//! reduction.

use crate::tensor::{fill_rows_bm, gemm_bm_acc, gemm_bm_t_acc, gemv_acc, gemv_t_acc, outer_acc};

/// Shape of a linear layer `y = W x (+ b)`.
///
/// Flat parameter layout: `[W (out x in row-major) | b (out, if bias)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearShape {
    /// Input features.
    pub in_dim: usize,
    /// Output features.
    pub out_dim: usize,
    /// Whether a bias vector is present. The PerfVec performance
    /// predictor is a linear model **without** bias — that is what makes
    /// program representations compositional (Section III-B).
    pub bias: bool,
}

impl LinearShape {
    /// New shape.
    pub fn new(in_dim: usize, out_dim: usize, bias: bool) -> LinearShape {
        LinearShape {
            in_dim,
            out_dim,
            bias,
        }
    }

    /// Number of parameters.
    pub fn param_len(&self) -> usize {
        self.out_dim * self.in_dim + if self.bias { self.out_dim } else { 0 }
    }

    /// `y = W x (+ b)`, overwriting `y`.
    pub fn forward(&self, w: &[f32], x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(w.len(), self.param_len());
        y.fill(0.0);
        if self.bias {
            y.copy_from_slice(&w[self.out_dim * self.in_dim..]);
        }
        gemv_acc(
            &w[..self.out_dim * self.in_dim],
            x,
            y,
            self.out_dim,
            self.in_dim,
        );
    }

    /// Batch-major forward: `Y_bm = W X_bm (+ b broadcast per lane)` for
    /// batch-major `X_bm: in x batch`, `Y_bm: out x batch`. Each lane
    /// sees exactly [`LinearShape::forward`]'s operation order (bias
    /// value, then the ascending-`k` accumulator of [`gemm_bm_acc`]), so
    /// results are bit-identical per sequence. `acc` is scratch of
    /// length >= `batch`.
    pub fn forward_bm(
        &self,
        w: &[f32],
        x_bm: &[f32],
        y_bm: &mut [f32],
        batch: usize,
        acc: &mut [f32],
    ) {
        debug_assert_eq!(w.len(), self.param_len());
        let wn = self.out_dim * self.in_dim;
        if self.bias {
            fill_rows_bm(y_bm, &w[wn..], batch);
        } else {
            y_bm.fill(0.0);
        }
        gemm_bm_acc(&w[..wn], x_bm, y_bm, self.out_dim, self.in_dim, batch, acc);
    }

    /// The parameter-gradient half of [`LinearShape::backward`] (rank-1
    /// weight update + bias adds, in the scalar order). The batched
    /// backward passes transport `dx` batch-major but replay this per
    /// sequence ascending, which reproduces the scalar path's
    /// per-location addition order exactly.
    pub fn backward_params(&self, x: &[f32], dy: &[f32], grads: &mut [f32]) {
        debug_assert_eq!(grads.len(), self.param_len());
        let wn = self.out_dim * self.in_dim;
        outer_acc(&mut grads[..wn], dy, x);
        if self.bias {
            for (g, &d) in grads[wn..].iter_mut().zip(dy) {
                *g += d;
            }
        }
    }

    /// Batch-major input-gradient transport: `dX_bm += W^T dY_bm`
    /// (the [`gemv_t_acc`] half of backward, amortized over the batch).
    pub fn backward_dx_bm(&self, w: &[f32], dy_bm: &[f32], dx_bm: &mut [f32], batch: usize) {
        let wn = self.out_dim * self.in_dim;
        gemm_bm_t_acc(&w[..wn], dy_bm, dx_bm, self.out_dim, self.in_dim, batch);
    }

    /// Backward: accumulates parameter gradients into `grads` and input
    /// gradients into `dx` given upstream `dy` and the forward input `x`.
    pub fn backward(&self, w: &[f32], x: &[f32], dy: &[f32], grads: &mut [f32], dx: &mut [f32]) {
        self.backward_params(x, dy, grads);
        gemv_t_acc(
            &w[..self.out_dim * self.in_dim],
            dy,
            dx,
            self.out_dim,
            self.in_dim,
        );
    }

    /// Initialize parameters in place (Xavier for weights, zero bias).
    pub fn init(&self, w: &mut [f32], rng: &mut rand::rngs::StdRng) {
        let wn = self.out_dim * self.in_dim;
        crate::init::xavier_uniform(&mut w[..wn], self.in_dim, self.out_dim, rng);
        if self.bias {
            w[wn..].fill(0.0);
        }
    }
}

/// ReLU forward in place; returns nothing, the mask is recoverable from
/// the output (`y > 0`).
#[inline]
pub fn relu_inplace(v: &mut [f32]) {
    for x in v {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
}

/// ReLU backward: zero gradient where the activation was clipped.
#[inline]
pub fn relu_backward_inplace(activated: &[f32], dv: &mut [f32]) {
    for (d, &a) in dv.iter_mut().zip(activated) {
        if a <= 0.0 {
            *d = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;

    #[test]
    fn forward_matches_hand_computation() {
        let shape = LinearShape::new(2, 2, true);
        // W = [[1,2],[3,4]], b = [10, 20]
        let w = [1., 2., 3., 4., 10., 20.];
        let mut y = [0f32; 2];
        shape.forward(&w, &[1., 1.], &mut y);
        assert_eq!(y, [13., 27.]);
    }

    #[test]
    fn no_bias_layout_is_tight() {
        let shape = LinearShape::new(3, 2, false);
        assert_eq!(shape.param_len(), 6);
        let shape_b = LinearShape::new(3, 2, true);
        assert_eq!(shape_b.param_len(), 8);
    }

    #[test]
    fn gradient_check() {
        let shape = LinearShape::new(4, 3, true);
        let mut w = vec![0f32; shape.param_len()];
        shape.init(&mut w, &mut seeded_rng(3));
        let x = [0.5f32, -1.0, 0.25, 2.0];
        let dy = [1.0f32, -0.5, 0.75];
        // analytic
        let mut grads = vec![0f32; shape.param_len()];
        let mut dx = vec![0f32; 4];
        shape.backward(&w, &x, &dy, &mut grads, &mut dx);
        // numeric: L = dot(y, dy)
        let loss = |w: &[f32]| {
            let mut y = [0f32; 3];
            shape.forward(w, &x, &mut y);
            y.iter().zip(&dy).map(|(a, b)| a * b).sum::<f32>()
        };
        for i in 0..shape.param_len() {
            let eps = 1e-2;
            let mut wp = w.clone();
            wp[i] += eps;
            let mut wm = w.clone();
            wm[i] -= eps;
            let num = (loss(&wp) - loss(&wm)) / (2.0 * eps);
            assert!(
                (num - grads[i]).abs() < 1e-2 * (1.0 + num.abs()),
                "param {i}: numeric {num} vs analytic {}",
                grads[i]
            );
        }
        // dx check
        let loss_x = |x: &[f32; 4]| {
            let mut y = [0f32; 3];
            shape.forward(&w, x, &mut y);
            y.iter().zip(&dy).map(|(a, b)| a * b).sum::<f32>()
        };
        for i in 0..4 {
            let eps = 1e-2;
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let num = (loss_x(&xp) - loss_x(&xm)) / (2.0 * eps);
            assert!((num - dx[i]).abs() < 1e-2 * (1.0 + num.abs()));
        }
    }

    #[test]
    fn relu_and_its_backward() {
        let mut v = [1.0f32, -2.0, 0.0, 3.0];
        relu_inplace(&mut v);
        assert_eq!(v, [1.0, 0.0, 0.0, 3.0]);
        let mut dv = [5.0f32, 5.0, 5.0, 5.0];
        relu_backward_inplace(&v, &mut dv);
        assert_eq!(dv, [5.0, 0.0, 0.0, 5.0]);
    }
}
