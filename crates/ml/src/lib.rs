//! # perfvec-ml
//!
//! A minimal, from-scratch deep-learning library: the PyTorch substitute
//! in this PerfVec reproduction.
//!
//! Everything the paper's modelling needs and nothing more: flat-parameter
//! layers with hand-written backward passes (verified by finite-difference
//! tests), the six sequence architectures of the Figure 6 ablation
//! ([`seq::SeqModel`]) with batch-major batched forward *and* backward
//! (`forward_batch`/[`seq::SeqModel::backward_batch`], bit-identical per
//! sequence to the scalar passes), Adam with the paper's step-decay
//! schedule, MSE loss, and deterministic lane-chunked gradient
//! parallelism ([`parallel::BatchStep`]).
//!
//! ```
//! use perfvec_ml::seq::SeqModel;
//! use perfvec_ml::adam::Adam;
//! use perfvec_ml::loss::{mse, mse_grad};
//!
//! // Train LSTM-1-8 to map a constant window to a target vector.
//! let mut model = SeqModel::lstm(4, 8, 1, 42);
//! let xs = vec![0.5f32; 3 * 4]; // T=3 steps, 4 features
//! let target = vec![0.25f32; 8];
//! let mut opt = Adam::new(model.num_params());
//! let mut params = model.get_params();
//! for _ in 0..200 {
//!     let (y, cache) = model.forward(&xs, 3);
//!     let mut dy = vec![0.0; 8];
//!     mse_grad(&y, &target, &mut dy);
//!     let mut grads = vec![0.0; model.num_params()];
//!     model.backward(&xs, 3, &cache, &dy, &mut grads);
//!     opt.step(&mut params, &grads, 1e-2);
//!     model.set_params(&params);
//! }
//! let (y, _) = model.forward(&xs, 3);
//! assert!(mse(&y, &target) < 1e-3);
//! ```

pub mod adam;
pub mod bilstm;
pub mod gru;
pub mod init;
pub mod linalg;
pub mod linear;
pub mod loss;
pub mod lstm;
pub mod mlp;
pub mod parallel;
pub mod schedule;
pub mod seq;
pub mod tensor;
pub mod transformer;

pub use adam::Adam;
pub use loss::{abs_rel_error, error_stats, mse, mse_grad};
pub use schedule::StepDecay;
pub use seq::{SeqCache, SeqModel};
