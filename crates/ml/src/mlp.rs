//! Multilayer perceptron over the *flattened* instruction window (the
//! `MLP-2-d` ablation architecture of Figure 6), plus the small MLP used
//! as the microarchitecture representation model in the DSE workflow
//! (Section VI-A).

use crate::init::seeded_rng;
use crate::linear::{relu_backward_inplace, relu_inplace, LinearShape};
use crate::tensor::{bm_to_seq, seq_to_bm};

/// An MLP: `in -> hidden (ReLU) x (L-1) -> out`.
#[derive(Debug, Clone)]
pub struct Mlp {
    shapes: Vec<LinearShape>,
    params: Vec<f32>,
}

/// Cache of layer activations for backward.
#[derive(Debug, Clone)]
pub struct MlpCache {
    /// Activation after each layer (post-ReLU for hidden layers).
    acts: Vec<Vec<f32>>,
}

/// Batch-major activations retained by [`Mlp::forward_batch_cached`]
/// for [`Mlp::backward_batch`].
#[derive(Debug, Clone)]
pub struct MlpBatchCache {
    /// Per layer: batch-major `out_dim x batch` activation (post-ReLU
    /// for hidden layers).
    acts_bm: Vec<Vec<f32>>,
    batch: usize,
}

impl MlpBatchCache {
    /// Number of sequences in the batch.
    pub fn batch(&self) -> usize {
        self.batch
    }
}

impl Mlp {
    /// Build an MLP with the given layer sizes, e.g. `[in, hid, out]`
    /// for a 2-layer network. All hidden layers use ReLU; the output
    /// layer is linear.
    pub fn new(sizes: &[usize], seed: u64) -> Mlp {
        assert!(sizes.len() >= 2);
        let shapes: Vec<LinearShape> = sizes
            .windows(2)
            .map(|w| LinearShape::new(w[0], w[1], true))
            .collect();
        let total: usize = shapes.iter().map(|s| s.param_len()).sum();
        let mut params = vec![0.0f32; total];
        let mut rng = seeded_rng(seed);
        let mut off = 0;
        for s in &shapes {
            s.init(&mut params[off..off + s.param_len()], &mut rng);
            off += s.param_len();
        }
        Mlp { shapes, params }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.shapes[0].in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.shapes.last().unwrap().out_dim
    }

    /// Number of layers (linear transforms).
    pub fn num_layers(&self) -> usize {
        self.shapes.len()
    }

    /// Flat parameters.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Flat parameters, mutable.
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn layer_param(&self, l: usize) -> &[f32] {
        let off: usize = self.shapes[..l].iter().map(|s| s.param_len()).sum();
        &self.params[off..off + self.shapes[l].param_len()]
    }

    /// Forward; returns output and cache.
    pub fn forward(&self, x: &[f32]) -> (Vec<f32>, MlpCache) {
        let mut acts: Vec<Vec<f32>> = Vec::with_capacity(self.shapes.len());
        let mut cur = x.to_vec();
        for (l, s) in self.shapes.iter().enumerate() {
            let mut y = vec![0.0f32; s.out_dim];
            s.forward(self.layer_param(l), &cur, &mut y);
            if l + 1 < self.shapes.len() {
                relu_inplace(&mut y);
            }
            acts.push(y.clone());
            cur = y;
        }
        (cur, MlpCache { acts })
    }

    /// Batch-major forward over `batch` independent flattened windows
    /// (`xs` sequence-major `batch x in_dim`; result sequence-major
    /// `batch x out_dim`). One [`LinearShape::forward_bm`] gemm per
    /// layer for the whole batch, ReLU applied elementwise on the
    /// batch-major buffer — bit-identical per sequence to
    /// [`Mlp::forward`].
    pub fn forward_batch(&self, xs: &[f32], batch: usize) -> Vec<f32> {
        let (out, _) = self.forward_batch_inner(xs, batch, false);
        out
    }

    /// Batch-major forward that retains every layer's batch-major
    /// activation for [`Mlp::backward_batch`].
    pub fn forward_batch_cached(&self, xs: &[f32], batch: usize) -> (Vec<f32>, MlpBatchCache) {
        let (out, acts_bm) = self.forward_batch_inner(xs, batch, true);
        (out, MlpBatchCache { acts_bm, batch })
    }

    fn forward_batch_inner(
        &self,
        xs: &[f32],
        batch: usize,
        keep: bool,
    ) -> (Vec<f32>, Vec<Vec<f32>>) {
        debug_assert_eq!(xs.len(), batch * self.in_dim());
        let mut cur = vec![0.0f32; self.in_dim() * batch];
        seq_to_bm(xs, &mut cur, self.in_dim(), batch);
        let mut acts_bm: Vec<Vec<f32>> =
            Vec::with_capacity(if keep { self.shapes.len() } else { 0 });
        let mut acc = vec![0.0f32; batch];
        for (l, s) in self.shapes.iter().enumerate() {
            let mut y = vec![0.0f32; s.out_dim * batch];
            s.forward_bm(self.layer_param(l), &cur, &mut y, batch, &mut acc);
            if l + 1 < self.shapes.len() {
                // ReLU is elementwise, so applying it on the batch-major
                // buffer performs exactly the scalar path's clamping.
                relu_inplace(&mut y);
            }
            if keep {
                acts_bm.push(y.clone());
            }
            cur = y;
        }
        let mut out = vec![0.0f32; batch * self.out_dim()];
        bm_to_seq(&cur, &mut out, self.out_dim(), batch);
        (out, acts_bm)
    }

    /// Batch-major backward from per-sequence upstream gradients
    /// `douts` (sequence-major `batch x out_dim`), accumulating into
    /// `grads`.
    ///
    /// Deltas are transported batch-major (ReLU mask + one
    /// [`LinearShape::backward_dx_bm`] gemm per layer); parameter
    /// gradients are then replayed per sequence ascending through
    /// [`LinearShape::backward_params`] — the scalar path's exact
    /// per-location addition order — so the accumulated `grads` are
    /// bit-identical to running [`Mlp::backward`] once per sequence in
    /// batch order.
    pub fn backward_batch(
        &self,
        xs: &[f32],
        cache: &MlpBatchCache,
        douts: &[f32],
        grads: &mut [f32],
    ) {
        let batch = cache.batch;
        debug_assert_eq!(douts.len(), batch * self.out_dim());
        debug_assert_eq!(xs.len(), batch * self.in_dim());
        let n_layers = self.shapes.len();
        let mut ends: Vec<usize> = Vec::with_capacity(n_layers);
        let mut acc = 0;
        for s in &self.shapes {
            acc += s.param_len();
            ends.push(acc);
        }
        // Delta recursion, batch-major: dys[l] is the upstream gradient
        // entering layer l's parameter update (post-ReLU-mask).
        let mut dys: Vec<Vec<f32>> = vec![Vec::new(); n_layers];
        let mut dy = vec![0.0f32; self.out_dim() * batch];
        seq_to_bm(douts, &mut dy, self.out_dim(), batch);
        for l in (0..n_layers).rev() {
            let s = self.shapes[l];
            if l + 1 < n_layers {
                relu_backward_inplace(&cache.acts_bm[l], &mut dy);
            }
            let mut dx = vec![0.0f32; s.in_dim * batch];
            if l > 0 {
                s.backward_dx_bm(self.layer_param(l), &dy, &mut dx, batch);
            }
            dys[l] = std::mem::replace(&mut dy, dx);
        }
        // Canonical parameter accumulation: per sequence (ascending),
        // per layer (descending) — each parameter location receives
        // exactly the scalar backward's addition sequence.
        let mut x_s = vec![0.0f32; self.shapes.iter().map(|s| s.in_dim).max().unwrap()];
        let mut dy_s = vec![0.0f32; self.shapes.iter().map(|s| s.out_dim).max().unwrap()];
        for seq in 0..batch {
            for l in (0..n_layers).rev() {
                let s = self.shapes[l];
                let dy_l = &dys[l];
                for (k, d) in dy_s[..s.out_dim].iter_mut().enumerate() {
                    *d = dy_l[k * batch + seq];
                }
                let x_gathered: &[f32] = if l == 0 {
                    &xs[seq * s.in_dim..(seq + 1) * s.in_dim]
                } else {
                    let below = &cache.acts_bm[l - 1];
                    for (k, x) in x_s[..s.in_dim].iter_mut().enumerate() {
                        *x = below[k * batch + seq];
                    }
                    &x_s[..s.in_dim]
                };
                let start = ends[l] - s.param_len();
                s.backward_params(x_gathered, &dy_s[..s.out_dim], &mut grads[start..ends[l]]);
            }
        }
    }

    /// Backward; accumulates into `grads` and returns the gradient
    /// w.r.t. the input.
    pub fn backward(
        &self,
        x: &[f32],
        cache: &MlpCache,
        dout: &[f32],
        grads: &mut [f32],
    ) -> Vec<f32> {
        let mut ends: Vec<usize> = Vec::with_capacity(self.shapes.len());
        let mut acc = 0;
        for s in &self.shapes {
            acc += s.param_len();
            ends.push(acc);
        }
        let mut dy = dout.to_vec();
        for l in (0..self.shapes.len()).rev() {
            let s = self.shapes[l];
            if l + 1 < self.shapes.len() {
                relu_backward_inplace(&cache.acts[l], &mut dy);
            }
            let input: &[f32] = if l == 0 { x } else { &cache.acts[l - 1] };
            let mut dx = vec![0.0f32; s.in_dim];
            let start = ends[l] - s.param_len();
            s.backward(
                self.layer_param(l),
                input,
                &dy,
                &mut grads[start..ends[l]],
                &mut dx,
            );
            dy = dx;
        }
        dy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::dot;
    use rand::Rng;

    #[test]
    fn shapes_and_sizes() {
        let m = Mlp::new(&[10, 20, 5], 0);
        assert_eq!(m.in_dim(), 10);
        assert_eq!(m.out_dim(), 5);
        assert_eq!(m.num_layers(), 2);
        assert_eq!(m.params().len(), 10 * 20 + 20 + 20 * 5 + 5);
    }

    #[test]
    fn gradient_check_params_and_input() {
        let mut m = Mlp::new(&[6, 8, 4], 13);
        let mut rng = seeded_rng(5);
        let x: Vec<f32> = (0..6).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let dout: Vec<f32> = (0..4).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let (_, cache) = m.forward(&x);
        let mut grads = vec![0.0f32; m.params().len()];
        let dx = m.backward(&x, &cache, &dout, &mut grads);

        let loss = |m: &Mlp, x: &[f32]| {
            let (o, _) = m.forward(x);
            dot(&o, &dout)
        };
        // parameter gradients
        let mut idx = 1;
        let mut checked = 0;
        while idx < m.params().len() && checked < 20 {
            let eps = 5e-3;
            let orig = m.params()[idx];
            m.params_mut()[idx] = orig + eps;
            let lp = loss(&m, &x);
            m.params_mut()[idx] = orig - eps;
            let lm = loss(&m, &x);
            m.params_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grads[idx]).abs() < 2e-2 * (1.0 + num.abs()),
                "param {idx}: {num} vs {}",
                grads[idx]
            );
            checked += 1;
            idx = idx * 2 + 1;
        }
        // input gradients
        for i in 0..x.len() {
            let eps = 5e-3;
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let num = (loss(&m, &xp) - loss(&m, &xm)) / (2.0 * eps);
            assert!((num - dx[i]).abs() < 2e-2 * (1.0 + num.abs()), "input {i}");
        }
    }

    #[test]
    fn deep_mlp_forward_runs() {
        let m = Mlp::new(&[4, 16, 16, 16, 2], 3);
        let (o, _) = m.forward(&[0.1, -0.2, 0.3, -0.4]);
        assert_eq!(o.len(), 2);
        assert!(o.iter().all(|v| v.is_finite()));
    }
}
