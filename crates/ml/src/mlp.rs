//! Multilayer perceptron over the *flattened* instruction window (the
//! `MLP-2-d` ablation architecture of Figure 6), plus the small MLP used
//! as the microarchitecture representation model in the DSE workflow
//! (Section VI-A).

use crate::init::seeded_rng;
use crate::linear::{relu_backward_inplace, relu_inplace, LinearShape};

/// An MLP: `in -> hidden (ReLU) x (L-1) -> out`.
#[derive(Debug, Clone)]
pub struct Mlp {
    shapes: Vec<LinearShape>,
    params: Vec<f32>,
}

/// Cache of layer activations for backward.
#[derive(Debug, Clone)]
pub struct MlpCache {
    /// Activation after each layer (post-ReLU for hidden layers).
    acts: Vec<Vec<f32>>,
}

impl Mlp {
    /// Build an MLP with the given layer sizes, e.g. `[in, hid, out]`
    /// for a 2-layer network. All hidden layers use ReLU; the output
    /// layer is linear.
    pub fn new(sizes: &[usize], seed: u64) -> Mlp {
        assert!(sizes.len() >= 2);
        let shapes: Vec<LinearShape> = sizes
            .windows(2)
            .map(|w| LinearShape::new(w[0], w[1], true))
            .collect();
        let total: usize = shapes.iter().map(|s| s.param_len()).sum();
        let mut params = vec![0.0f32; total];
        let mut rng = seeded_rng(seed);
        let mut off = 0;
        for s in &shapes {
            s.init(&mut params[off..off + s.param_len()], &mut rng);
            off += s.param_len();
        }
        Mlp { shapes, params }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.shapes[0].in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.shapes.last().unwrap().out_dim
    }

    /// Number of layers (linear transforms).
    pub fn num_layers(&self) -> usize {
        self.shapes.len()
    }

    /// Flat parameters.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Flat parameters, mutable.
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn layer_param(&self, l: usize) -> &[f32] {
        let off: usize = self.shapes[..l].iter().map(|s| s.param_len()).sum();
        &self.params[off..off + self.shapes[l].param_len()]
    }

    /// Forward; returns output and cache.
    pub fn forward(&self, x: &[f32]) -> (Vec<f32>, MlpCache) {
        let mut acts: Vec<Vec<f32>> = Vec::with_capacity(self.shapes.len());
        let mut cur = x.to_vec();
        for (l, s) in self.shapes.iter().enumerate() {
            let mut y = vec![0.0f32; s.out_dim];
            s.forward(self.layer_param(l), &cur, &mut y);
            if l + 1 < self.shapes.len() {
                relu_inplace(&mut y);
            }
            acts.push(y.clone());
            cur = y;
        }
        (cur, MlpCache { acts })
    }

    /// Backward; accumulates into `grads` and returns the gradient
    /// w.r.t. the input.
    pub fn backward(
        &self,
        x: &[f32],
        cache: &MlpCache,
        dout: &[f32],
        grads: &mut [f32],
    ) -> Vec<f32> {
        let mut ends: Vec<usize> = Vec::with_capacity(self.shapes.len());
        let mut acc = 0;
        for s in &self.shapes {
            acc += s.param_len();
            ends.push(acc);
        }
        let mut dy = dout.to_vec();
        for l in (0..self.shapes.len()).rev() {
            let s = self.shapes[l];
            if l + 1 < self.shapes.len() {
                relu_backward_inplace(&cache.acts[l], &mut dy);
            }
            let input: &[f32] = if l == 0 { x } else { &cache.acts[l - 1] };
            let mut dx = vec![0.0f32; s.in_dim];
            let start = ends[l] - s.param_len();
            s.backward(
                self.layer_param(l),
                input,
                &dy,
                &mut grads[start..ends[l]],
                &mut dx,
            );
            dy = dx;
        }
        dy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::dot;
    use rand::Rng;

    #[test]
    fn shapes_and_sizes() {
        let m = Mlp::new(&[10, 20, 5], 0);
        assert_eq!(m.in_dim(), 10);
        assert_eq!(m.out_dim(), 5);
        assert_eq!(m.num_layers(), 2);
        assert_eq!(m.params().len(), 10 * 20 + 20 + 20 * 5 + 5);
    }

    #[test]
    fn gradient_check_params_and_input() {
        let mut m = Mlp::new(&[6, 8, 4], 13);
        let mut rng = seeded_rng(5);
        let x: Vec<f32> = (0..6).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let dout: Vec<f32> = (0..4).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let (_, cache) = m.forward(&x);
        let mut grads = vec![0.0f32; m.params().len()];
        let dx = m.backward(&x, &cache, &dout, &mut grads);

        let loss = |m: &Mlp, x: &[f32]| {
            let (o, _) = m.forward(x);
            dot(&o, &dout)
        };
        // parameter gradients
        let mut idx = 1;
        let mut checked = 0;
        while idx < m.params().len() && checked < 20 {
            let eps = 5e-3;
            let orig = m.params()[idx];
            m.params_mut()[idx] = orig + eps;
            let lp = loss(&m, &x);
            m.params_mut()[idx] = orig - eps;
            let lm = loss(&m, &x);
            m.params_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grads[idx]).abs() < 2e-2 * (1.0 + num.abs()),
                "param {idx}: {num} vs {}",
                grads[idx]
            );
            checked += 1;
            idx = idx * 2 + 1;
        }
        // input gradients
        for i in 0..x.len() {
            let eps = 5e-3;
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let num = (loss(&m, &xp) - loss(&m, &xm)) / (2.0 * eps);
            assert!((num - dx[i]).abs() < 2e-2 * (1.0 + num.abs()), "input {i}");
        }
    }

    #[test]
    fn deep_mlp_forward_runs() {
        let m = Mlp::new(&[4, 16, 16, 16, 2], 3);
        let (o, _) = m.forward(&[0.1, -0.2, 0.3, -0.4]);
        assert_eq!(o.len(), 2);
        assert!(o.iter().all(|v| v.is_finite()));
    }
}
