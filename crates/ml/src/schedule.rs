//! Learning-rate schedules.

/// Step decay: `lr = initial * gamma^(epoch / every)` — the paper decays
/// the Adam learning rate 10x every 10 epochs (Section IV-D).
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    /// Initial learning rate.
    pub initial: f32,
    /// Multiplicative decay factor.
    pub gamma: f32,
    /// Epochs between decays.
    pub every: u32,
}

impl StepDecay {
    /// The paper's schedule: 1e-3, x0.1 every 10 epochs.
    pub fn paper_default() -> StepDecay {
        StepDecay {
            initial: 1e-3,
            gamma: 0.1,
            every: 10,
        }
    }

    /// Learning rate for a (0-based) epoch.
    pub fn lr(&self, epoch: u32) -> f32 {
        self.initial * self.gamma.powi((epoch / self.every) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedule_decays_every_ten_epochs() {
        let s = StepDecay::paper_default();
        assert_eq!(s.lr(0), 1e-3);
        assert_eq!(s.lr(9), 1e-3);
        assert!((s.lr(10) - 1e-4).abs() < 1e-10);
        assert!((s.lr(25) - 1e-5).abs() < 1e-11);
    }

    #[test]
    fn custom_schedule() {
        let s = StepDecay {
            initial: 0.01,
            gamma: 0.5,
            every: 4,
        };
        assert_eq!(s.lr(3), 0.01);
        assert_eq!(s.lr(4), 0.005);
        assert_eq!(s.lr(8), 0.0025);
    }
}
