//! Round-trip property: `Program → disassemble → parse → encode` is
//! bit-identical, over random valid programs and over every built-in
//! suite workload.

use perfvec_asm::{assemble, disassemble};
use perfvec_isa::{DataSegment, Inst, MemRef, Op, Program, Reg, DATA_BASE};
use proptest::prelude::*;

/// Deterministic splitmix-style generator, so each case is reproducible
/// from its seed alone.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn xr(&mut self) -> Reg {
        Reg::x(self.below(32) as u8)
    }

    fn fr(&mut self) -> Reg {
        Reg::f(self.below(32) as u8)
    }

    fn vr(&mut self) -> Reg {
        Reg::v(self.below(16) as u8)
    }

    fn mem(&mut self, sizes: &[u8]) -> MemRef {
        let size = sizes[self.below(sizes.len() as u64) as usize];
        let offset = self.next() as i64 % 4096;
        let base = self.xr();
        if self.below(2) == 0 {
            MemRef::base_offset(base, offset, size)
        } else {
            let scale = [1u8, 2, 4, 8, 16][self.below(5) as usize];
            MemRef::indexed(base, self.xr(), scale, offset, size)
        }
    }
}

/// One random instruction whose operands follow the builder conventions
/// (mem base/index appended to sources by `with_mem`); branch targets
/// land in `0..=n_insts`.
fn random_inst(g: &mut Gen, n_insts: u64) -> Inst {
    match g.below(17) {
        0 => {
            let op = [
                Op::Add,
                Op::Sub,
                Op::And,
                Op::Or,
                Op::Xor,
                Op::Shl,
                Op::Shr,
                Op::Sra,
                Op::Slt,
                Op::Sltu,
                Op::Mul,
                Op::Div,
                Op::Rem,
            ][g.below(13) as usize];
            let i = Inst::new(op).with_dst(g.xr()).with_src(g.xr());
            if g.below(2) == 0 {
                i.with_src(g.xr())
            } else {
                i.with_imm(g.next() as i64)
            }
        }
        1 => {
            // li into x or f (raw bits).
            let d = if g.below(2) == 0 { g.xr() } else { g.fr() };
            Inst::new(Op::Li).with_dst(d).with_imm(g.next() as i64)
        }
        2 => Inst::new(Op::Mov).with_dst(g.xr()).with_src(g.xr()),
        3 => {
            let op = [Op::Fadd, Op::Fsub, Op::Fmul, Op::Fdiv, Op::Fmin, Op::Fmax]
                [g.below(6) as usize];
            Inst::new(op)
                .with_dst(g.fr())
                .with_src(g.fr())
                .with_src(g.fr())
        }
        4 => {
            let op = [Op::Fsqrt, Op::Fneg, Op::Fmov][g.below(3) as usize];
            Inst::new(op).with_dst(g.fr()).with_src(g.fr())
        }
        5 => Inst::new(Op::Fmadd)
            .with_dst(g.fr())
            .with_src(g.fr())
            .with_src(g.fr())
            .with_src(g.fr()),
        6 => Inst::new(Op::Fclt)
            .with_dst(g.xr())
            .with_src(g.fr())
            .with_src(g.fr()),
        7 => {
            if g.below(2) == 0 {
                Inst::new(Op::Icvtf).with_dst(g.fr()).with_src(g.xr())
            } else {
                Inst::new(Op::Fcvti).with_dst(g.xr()).with_src(g.fr())
            }
        }
        8 => {
            let op = [Op::Vadd, Op::Vmul][g.below(2) as usize];
            Inst::new(op)
                .with_dst(g.vr())
                .with_src(g.vr())
                .with_src(g.vr())
        }
        9 => Inst::new(Op::Vfma)
            .with_dst(g.vr())
            .with_src(g.vr())
            .with_src(g.vr())
            .with_src(g.vr()),
        10 => {
            if g.below(2) == 0 {
                Inst::new(Op::Vsplat).with_dst(g.vr()).with_src(g.fr())
            } else {
                Inst::new(Op::Vredsum).with_dst(g.fr()).with_src(g.vr())
            }
        }
        11 => {
            let m = g.mem(&[1, 2, 4, 8]);
            if g.below(2) == 0 {
                Inst::new(Op::Ld).with_dst(g.xr()).with_mem(m)
            } else {
                Inst::new(Op::St).with_src(g.xr()).with_mem(m)
            }
        }
        12 => {
            let m = g.mem(&[4, 8]);
            if g.below(2) == 0 {
                Inst::new(Op::Fld).with_dst(g.fr()).with_mem(m)
            } else {
                Inst::new(Op::Fst).with_src(g.fr()).with_mem(m)
            }
        }
        13 => {
            let m = g.mem(&[16]);
            if g.below(2) == 0 {
                Inst::new(Op::Vld).with_dst(g.vr()).with_mem(m)
            } else {
                Inst::new(Op::Vst).with_src(g.vr()).with_mem(m)
            }
        }
        14 => {
            let op = [Op::Beq, Op::Bne, Op::Blt, Op::Bge][g.below(4) as usize];
            let i = Inst::new(op).with_src(g.xr());
            let i = if g.below(2) == 0 {
                i.with_src(g.xr())
            } else {
                i.with_imm(g.next() as i64 % 1000)
            };
            i.with_target(g.below(n_insts + 1) as u32)
        }
        15 => {
            let t = g.below(n_insts + 1) as u32;
            match g.below(3) {
                0 => Inst::new(Op::J).with_target(t),
                1 => Inst::new(Op::Jal).with_dst(Reg::LINK).with_target(t),
                _ => Inst::new(Op::Jal).with_dst(g.xr()).with_target(t),
            }
        }
        _ => match g.below(4) {
            0 => Inst::new(Op::Jr).with_src(g.xr()),
            1 => Inst::new(Op::Fence),
            2 => Inst::new(Op::Nop),
            _ => Inst::new(Op::Halt),
        },
    }
}

fn random_program(seed: u64) -> Program {
    let mut g = Gen(seed);
    let n = 1 + g.below(48);
    let insts: Vec<Inst> = (0..n).map(|_| random_inst(&mut g, n)).collect();
    let n_segs = g.below(3);
    let data: Vec<DataSegment> = (0..n_segs)
        .map(|k| {
            let len = 1 + g.below(40) as usize;
            DataSegment {
                addr: DATA_BASE + k * 4096 + g.below(64),
                bytes: (0..len).map(|_| g.next() as u8).collect(),
            }
        })
        .collect();
    // Name exercises string escaping now and then.
    let name = if g.below(4) == 0 {
        format!("prop \"{seed}\" \\ case")
    } else {
        format!("prop-{seed}")
    };
    Program {
        name,
        insts,
        data,
        entry: g.below(n) as u32,
    }
}

fn assert_roundtrip(p: &Program) {
    let text = disassemble(p);
    let back = assemble(&text, "fallback")
        .unwrap_or_else(|e| panic!("reassembly failed: {e}\n--- canonical text ---\n{text}"));
    assert_eq!(back.program.insts, p.insts, "insts differ\n{text}");
    assert_eq!(back.program.data, p.data, "data differs\n{text}");
    assert_eq!(back.program.entry, p.entry, "entry differs\n{text}");
    assert_eq!(back.program.name, p.name, "name differs\n{text}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_programs_roundtrip(seed in 0u64..u64::MAX) {
        assert_roundtrip(&random_program(seed));
    }
}

#[test]
fn every_builtin_workload_roundtrips() {
    for w in perfvec_workloads::suite() {
        let p = w.program();
        assert_roundtrip(&p);
    }
}

#[test]
fn disassembly_is_deterministic() {
    let p = random_program(42);
    assert_eq!(disassemble(&p), disassemble(&p));
}
