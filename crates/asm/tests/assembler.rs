//! Grammar, diagnostics, and harness behaviour of the assembler.

use perfvec_asm::{assemble, disassemble, execute, golden_check};
use perfvec_isa::{Op, Reg, DATA_BASE};

fn ok(src: &str) -> perfvec_asm::AsmProgram {
    assemble(src, "test").unwrap_or_else(|e| panic!("assembly failed: {e}\n{src}"))
}

fn err(src: &str) -> perfvec_asm::AsmError {
    match assemble(src, "test") {
        Ok(_) => panic!("expected assembly to fail:\n{src}"),
        Err(e) => e,
    }
}

#[test]
fn sum_loop_assembles_and_runs() {
    let ap = ok(r#"
        .name "sum"
            li x1, #0
            li x2, #0
        loop:
            add x1, x1, x2
            add x2, x2, #1
            blt x2, #10, loop
            halt
    "#);
    assert_eq!(ap.program.name, "sum");
    assert_eq!(ap.program.insts.len(), 6);
    let exec = execute(&ap, 0);
    assert!(exec.halted);
    assert!(exec.trap.is_none());
    assert_eq!(exec.emu.read_x(Reg::x(1)), 45);
}

#[test]
fn data_segment_labels_and_loads() {
    let ap = ok(r#"
        .data 0x10000000
        arr: .word 10, 20, 30
        pad: .zero 24
        tail: .byte 7, 8
            li x1, arr
            li x2, tail
            ld.8 x3, [x1 + 8]
            ld.1 x4, [x2 + 1]
            halt
    "#);
    // .zero leaves no initialized segment, so two segments exist.
    assert_eq!(ap.program.data.len(), 2);
    assert_eq!(ap.program.data[0].addr, DATA_BASE);
    assert_eq!(ap.program.data[0].bytes.len(), 24);
    assert_eq!(ap.program.data[1].addr, DATA_BASE + 24 + 24);
    let exec = execute(&ap, 0);
    assert_eq!(exec.emu.read_x(Reg::x(3)), 20);
    assert_eq!(exec.emu.read_x(Reg::x(4)), 8);
}

#[test]
fn indexed_addressing_and_stores() {
    let ap = ok(r#"
        .data
        arr: .word 1, 2, 3, 4
            li x1, arr
            li x2, #3
            ld.8 x3, [x1 + x2*8]
            st.8 x3, [x1 + x2*8 - 24]
            halt
    "#);
    let exec = execute(&ap, 0);
    assert_eq!(exec.emu.read_x(Reg::x(3)), 4);
    assert_eq!(exec.emu.memory().read_uint(DATA_BASE, 8), 4);
}

#[test]
fn entry_ret_and_code_addresses() {
    let ap = ok(r#"
        helper:
            add x1, x1, #5
            ret
        .entry main
        main:
            li x1, #1
            jal helper
            li x5, @helper
            jr x5
    "#);
    assert_eq!(ap.program.entry, 2);
    assert_eq!(ap.program.insts[1].op, Op::Jr);
    assert_eq!(ap.program.insts[1].srcs()[0], Reg::LINK);
    let exec = execute(&ap, 0);
    // main: x1=1, call helper (+5), li x5=@helper, jr → helper again
    // (+5), ret jumps back after the jal... the second return address is
    // stale, so the program loops; just check the first pass happened.
    assert!(exec.emu.read_x(Reg::x(1)) >= 6);
}

#[test]
fn fp_and_simd_grammar() {
    let ap = ok(r#"
        .data
        vec: .f32 1.0, 2.0, 3.0, 4.0
        scal: .f64 2.5
            li x1, vec
            li x2, scal
            vld v0, [x1]
            vmul v1, v0, v0
            vredsum f0, v1
            fld.8 f1, [x2]
            fmul f2, f0, f1
            fli f3, -0.5
            fmadd f4, f2, f3, f1
            halt
    "#);
    let exec = execute(&ap, 0);
    assert_eq!(exec.emu.read_f(Reg::f(0)), 30.0);
    assert_eq!(exec.emu.read_f(Reg::f(2)), 75.0);
    assert_eq!(exec.emu.read_f(Reg::f(4)), -75.0 * 0.5 + 2.5);
}

#[test]
fn golden_expectations_pass() {
    let res = golden_check(
        r#"
        ;; run: max_instrs = 1000
        ;; expect: executed = 33
        ;; expect: halted = true
        ;; expect: trap = none
        ;; expect: x1 = 45
        ;; expect: class[branch] >= 0.3
        ;; expect: class[int_alu] > 0.5
            li x1, #0
            li x2, #0
        loop:
            add x1, x1, x2
            add x2, x2, #1
            blt x2, #10, loop
            halt
        "#,
        "golden",
    );
    let summary = res.expect("golden check should pass");
    assert!(summary.contains("33 instructions"), "{summary}");
}

#[test]
fn golden_memory_and_float_expectations() {
    golden_check(
        r#"
        ;; expect: mem[0x10000000].8 = 99
        ;; expect: f0 > 1.4
        ;; expect: f0 < 1.5
        .data 0x10000000
        out: .word 0
            li x1, out
            li x2, #99
            st.8 x2, [x1]
            fli f1, 2.1
            fli f2, 1.45
            fmin f0, f1, f2
            halt
        "#,
        "mem-float",
    )
    .expect("golden check should pass");
}

#[test]
fn trapping_program_is_goldenable_when_expected() {
    let res = golden_check(
        r#"
        ;; expect: trap = bad_jump
        ;; expect: executed = 1
            li x1, #3
            jr x1
            halt
        "#,
        "trap",
    );
    res.expect("expected trap should pass the golden check");
}

#[test]
fn unexpected_trap_fails_with_source_line() {
    let res = golden_check(
        r#"
            li x1, #3
            jr x1
            halt
        "#,
        "trap",
    );
    let msg = res.expect_err("unexpected trap must fail");
    assert!(msg.contains("bad indirect jump target"), "{msg}");
    assert!(msg.contains("pc"), "{msg}");
    assert!(msg.contains("instruction index 1"), "{msg}");
    assert!(msg.contains("line 3"), "{msg}");
    assert!(msg.contains("jr x1"), "{msg}");
}

#[test]
fn failed_expectation_reports_actual_value() {
    let msg = golden_check(
        r#"
        ;; expect: x1 = 7
            li x1, #8
            halt
        "#,
        "bad",
    )
    .expect_err("wrong expectation must fail");
    assert!(msg.contains("expect x1 = 7"), "{msg}");
    assert!(msg.contains("actual 8"), "{msg}");
}

#[test]
fn run_budget_is_respected() {
    let ap = ok(r#"
        ;; run: max_instrs = 25
        loop:
            add x1, x1, #1
            j loop
    "#);
    let exec = execute(&ap, 0);
    assert_eq!(exec.executed, 25);
    assert!(!exec.halted);
    assert!(exec.trap.is_none());
}

// ---------------------------------------------------------------------------
// diagnostics
// ---------------------------------------------------------------------------

#[test]
fn duplicate_label_is_an_error() {
    let e = err("a:\n    nop\na:\n    halt\n");
    assert_eq!(e.line, 3);
    assert!(e.msg.contains("duplicate label `a`"), "{e}");
}

#[test]
fn undefined_label_is_an_error() {
    let e = err("    j nowhere\n    halt\n");
    assert!(e.msg.contains("undefined label `nowhere`"), "{e}");
    assert_eq!(e.line, 1);
}

#[test]
fn register_class_mismatch_is_an_error() {
    let e = err("    add x1, f2, x3\n    halt\n");
    assert!(e.msg.contains("must be an integer register"), "{e}");
    assert!(e.msg.contains("got `f2`"), "{e}");
}

#[test]
fn register_index_out_of_range_is_an_error() {
    let e = err("    add x1, x2, x32\n");
    assert!(e.msg.contains("register index out of range"), "{e}");
    let e = err("    vadd v16, v0, v1\n");
    assert!(e.msg.contains("register index out of range"), "{e}");
}

#[test]
fn unknown_mnemonic_is_an_error() {
    let e = err("    frobnicate x1, x2\n");
    assert!(e.msg.contains("unknown mnemonic `frobnicate`"), "{e}");
    assert_eq!((e.line, e.col), (1, 5));
}

#[test]
fn bad_scale_and_size_are_errors() {
    let e = err("    ld.8 x1, [x2 + x3*3]\n");
    assert!(e.msg.contains("index scale 3"), "{e}");
    let e = err("    ld.3 x1, [x2]\n");
    assert!(e.msg.contains("access size .3"), "{e}");
    let e = err("    vld.8 v0, [x2]\n");
    assert!(e.msg.contains("no access-size suffix"), "{e}");
}

#[test]
fn byte_range_and_data_mode_are_checked() {
    let e = err(".data\n    .byte 256\n");
    assert!(e.msg.contains("256 not in 0..=255"), "{e}");
    let e = err("    .word 1\n");
    assert!(e.msg.contains("outside a `.data` block"), "{e}");
}

#[test]
fn li_into_vector_register_is_an_error() {
    let e = err("    li v0, #1\n");
    assert!(e.msg.contains("vector register"), "{e}");
}

#[test]
fn typoed_harness_directive_is_an_error() {
    let e = err(";; expct: x1 = 3\n    halt\n");
    assert!(e.msg.contains("unknown harness directive"), "{e}");
}

#[test]
fn wrong_operand_count_is_an_error() {
    let e = err("    add x1, x2\n");
    assert!(e.msg.contains("expects 3 operand(s), got 2"), "{e}");
}

#[test]
fn empty_program_is_an_error() {
    let e = err("; nothing but comments\n");
    assert!(e.msg.contains("no instructions"), "{e}");
}

#[test]
fn branch_immediate_form_encodes_like_the_builder() {
    let ap = ok("loop:\n    beq x1, #0, loop\n    bne x1, x2, loop\n    halt\n");
    let b = &ap.program.insts[0];
    assert!(b.uses_imm);
    assert_eq!(b.srcs().len(), 1);
    assert_eq!(b.target, Some(0));
    let b = &ap.program.insts[1];
    assert!(!b.uses_imm);
    assert_eq!(b.srcs().len(), 2);
}

#[test]
fn source_lines_map_instructions() {
    let ap = ok("    nop\n\n    nop\n    halt\n");
    assert_eq!(ap.lines, vec![1, 3, 4]);
    assert_eq!(ap.line_of(2), Some(4));
    assert_eq!(ap.line_of(3), None);
}

#[test]
fn canonical_text_round_trips_by_hand() {
    let src = r#"
        .name "spot"
        .data 0x10000040
            .byte 1, 2, 3
            li x1, #268435520
            ld.4 x2, [x1 + x3*4 - 8]
            st.2 x2, [x1]
            fli f0, 1.5
            beq x2, #0, done
            jal helper
        done:
            halt
        helper:
            ret
    "#;
    let ap = ok(src);
    let text = disassemble(&ap.program);
    let back = assemble(&text, "spot").expect("canonical text reassembles");
    assert_eq!(back.program.insts, ap.program.insts);
    assert_eq!(back.program.data, ap.program.data);
    assert_eq!(back.program.entry, ap.program.entry);
    assert_eq!(back.program.name, ap.program.name);
}
