//! Golden test-runner harness.
//!
//! Executes an assembled program under [`Emulator`] and checks the
//! embedded `;; expect:` directives. The checkable quantities:
//!
//! ```text
//! ;; run: max_instrs = 50000      ; instruction budget (default 100000)
//! ;; expect: executed > 10000     ; dynamic instruction count
//! ;; expect: halted = true        ; reached `halt` (vs budget exhausted)
//! ;; expect: trap = none          ; none | pc_out_of_range | bad_jump | unsupported
//! ;; expect: x5 = 42              ; integer register value
//! ;; expect: f1 = 2.5             ; fp register value
//! ;; expect: mem[0x10000010].8 = 7   ; memory as unsigned, given size
//! ;; expect: class[branch] >= 0.2 ; fraction of executed instructions
//! ```
//!
//! Comparisons: `=` (or `==`), `!=`, `<`, `<=`, `>`, `>=`.

use crate::encoder::AsmProgram;
use crate::{assemble, disassemble};
use perfvec_isa::{EmuError, Emulator, OpClass, Reg, CODE_BASE, INST_BYTES};

/// Default instruction budget when a file has no `;; run:` directive.
pub const DEFAULT_MAX_INSTRS: u64 = 100_000;

/// Comparison operator in an `;; expect:` directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cmp {
    fn text(self) -> &'static str {
        match self {
            Cmp::Eq => "=",
            Cmp::Ne => "!=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
        }
    }

    fn holds<T: PartialOrd>(self, a: T, b: T) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
        }
    }
}

/// Left-hand side of an expectation.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpectLhs {
    Executed,
    Halted,
    Trap,
    /// Integer register `x<n>`.
    X(u8),
    /// FP register `f<n>`.
    F(u8),
    /// Memory word at `addr`, read unsigned with `size` bytes.
    Mem { addr: u64, size: u8 },
    /// Fraction of executed instructions in an [`OpClass`].
    ClassFrac(OpClass),
}

/// Right-hand side of an expectation.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpectValue {
    Int(i64),
    Float(f64),
    /// `true`, `false`, or a trap name.
    Word(String),
}

impl std::fmt::Display for ExpectValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpectValue::Int(v) => write!(f, "{v}"),
            ExpectValue::Float(v) => write!(f, "{v}"),
            ExpectValue::Word(w) => write!(f, "{w}"),
        }
    }
}

/// One `;; expect:` directive.
#[derive(Debug, Clone, PartialEq)]
pub struct Expect {
    /// 1-based source line of the directive.
    pub line: usize,
    pub lhs: ExpectLhs,
    pub cmp: Cmp,
    pub value: ExpectValue,
}

/// Where and why execution trapped.
#[derive(Debug, Clone)]
pub struct TrapInfo {
    /// The emulator error.
    pub err: EmuError,
    /// Static index of the instruction being fetched when the trap
    /// fired (out of range itself for `PcOutOfRange`).
    pub idx: u32,
    /// Instructions retired before the trap.
    pub executed: u64,
}

impl TrapInfo {
    /// Canonical short name, matched by `;; expect: trap = <name>`.
    pub fn name(&self) -> &'static str {
        trap_name(Some(&self.err))
    }
}

fn trap_name(err: Option<&EmuError>) -> &'static str {
    match err {
        None => "none",
        Some(EmuError::PcOutOfRange { .. }) => "pc_out_of_range",
        Some(EmuError::BadJumpTarget { .. }) => "bad_jump",
        Some(EmuError::UnsupportedOperand) => "unsupported",
    }
}

/// Map class names used by `;; expect: class[...]` to [`OpClass`].
pub fn class_by_name(name: &str) -> Option<OpClass> {
    OpClass::ALL.iter().copied().find(|c| class_name(*c) == name)
}

/// The `;; expect:` spelling of an [`OpClass`].
pub fn class_name(c: OpClass) -> &'static str {
    match c {
        OpClass::IntAlu => "int_alu",
        OpClass::IntMul => "int_mul",
        OpClass::IntDiv => "int_div",
        OpClass::FpAlu => "fp_alu",
        OpClass::FpMul => "fp_mul",
        OpClass::FpDiv => "fp_div",
        OpClass::Simd => "simd",
        OpClass::Load => "load",
        OpClass::Store => "store",
        OpClass::Branch => "branch",
        OpClass::Other => "other",
    }
}

/// The architectural outcome of running an assembled program.
pub struct Execution<'p> {
    /// The emulator, stopped — registers and memory are inspectable.
    pub emu: Emulator<'p>,
    /// Instructions retired.
    pub executed: u64,
    /// Whether `halt` was reached.
    pub halted: bool,
    /// The trap, if the program is broken.
    pub trap: Option<TrapInfo>,
    /// Retired instructions per [`OpClass`].
    pub class_counts: [u64; OpClass::COUNT],
}

/// Run an assembled program to its budget (`;; run:` or
/// [`DEFAULT_MAX_INSTRS`], capped by `max_cap` when nonzero), tracking
/// the fetch index so traps can be mapped back to source lines.
pub fn execute<'p>(ap: &'p AsmProgram, max_cap: u64) -> Execution<'p> {
    let mut budget = ap.run_limit.unwrap_or(DEFAULT_MAX_INSTRS);
    if max_cap != 0 {
        budget = budget.min(max_cap);
    }
    let mut emu = Emulator::new(&ap.program);
    let mut class_counts = [0u64; OpClass::COUNT];
    let mut fetch_idx = ap.program.entry as u64;
    let mut trap = None;
    while !emu.halted() && emu.executed() < budget {
        match emu.step() {
            Ok(rec) => {
                let op = ap.program.insts[rec.sidx as usize].op;
                class_counts[op.class() as usize] += 1;
                fetch_idx = rec.next_sidx as u64;
            }
            Err(err) => {
                trap = Some(TrapInfo {
                    err,
                    idx: fetch_idx as u32,
                    executed: emu.executed(),
                });
                break;
            }
        }
    }
    Execution {
        executed: emu.executed(),
        halted: emu.halted(),
        trap,
        class_counts,
        emu,
    }
}

/// A human-readable trap report carrying pc, instruction index, and
/// source line.
pub fn trap_diagnostic(ap: &AsmProgram, t: &TrapInfo) -> String {
    let pc = CODE_BASE + t.idx as u64 * INST_BYTES;
    match ap.line_of(t.idx) {
        Some(line) => {
            let text = crate::disasm::inst_text(&ap.program.insts[t.idx as usize]);
            format!(
                "trap: {} at pc {pc:#x} (instruction index {}, source line {line}: `{text}`) after {} instructions",
                t.err, t.idx, t.executed
            )
        }
        None => format!(
            "trap: {} at pc {pc:#x} (instruction index {} is outside the program, no source line) after {} instructions",
            t.err, t.idx, t.executed
        ),
    }
}

/// Evaluate every `;; expect:` directive; returns the failures.
pub fn check_expects(ap: &AsmProgram, exec: &Execution<'_>) -> Vec<String> {
    let mut failures = Vec::new();
    for e in &ap.expects {
        if let Err(msg) = check_one(ap, exec, e) {
            failures.push(msg);
        }
    }
    failures
}

fn check_one(ap: &AsmProgram, exec: &Execution<'_>, e: &Expect) -> Result<(), String> {
    let fail = |lhs: &str, actual: String| {
        Err(format!(
            "line {}: expect {lhs} {} {} failed (actual {actual})",
            e.line,
            e.cmp.text(),
            e.value
        ))
    };
    match &e.lhs {
        ExpectLhs::Executed => {
            let actual = exec.executed as i64;
            let want = int_value(e)?;
            if e.cmp.holds(actual, want) {
                Ok(())
            } else {
                fail("executed", actual.to_string())
            }
        }
        ExpectLhs::Halted => {
            let actual = exec.halted;
            let want = bool_value(e)?;
            let ok = match e.cmp {
                Cmp::Eq => actual == want,
                Cmp::Ne => actual != want,
                _ => return Err(format!("line {}: `halted` supports only = and !=", e.line)),
            };
            if ok {
                Ok(())
            } else {
                fail("halted", actual.to_string())
            }
        }
        ExpectLhs::Trap => {
            let actual = trap_name(exec.trap.as_ref().map(|t| &t.err));
            let want = match &e.value {
                ExpectValue::Word(w)
                    if matches!(
                        w.as_str(),
                        "none" | "pc_out_of_range" | "bad_jump" | "unsupported"
                    ) =>
                {
                    w.as_str()
                }
                other => {
                    return Err(format!(
                        "line {}: bad trap name `{other}` (none, pc_out_of_range, bad_jump, unsupported)",
                        e.line
                    ))
                }
            };
            let ok = match e.cmp {
                Cmp::Eq => actual == want,
                Cmp::Ne => actual != want,
                _ => return Err(format!("line {}: `trap` supports only = and !=", e.line)),
            };
            if ok {
                Ok(())
            } else {
                let detail = exec
                    .trap
                    .as_ref()
                    .map(|t| format!("; {}", trap_diagnostic(ap, t)))
                    .unwrap_or_default();
                fail("trap", format!("{actual}{detail}"))
            }
        }
        ExpectLhs::X(i) => {
            let actual = exec.emu.read_x(Reg::x(*i));
            let want = int_value(e)?;
            if e.cmp.holds(actual, want) {
                Ok(())
            } else {
                fail(&format!("x{i}"), actual.to_string())
            }
        }
        ExpectLhs::F(i) => {
            let actual = exec.emu.read_f(Reg::f(*i));
            let want = float_value(e)?;
            if e.cmp.holds(actual, want) {
                Ok(())
            } else {
                fail(&format!("f{i}"), actual.to_string())
            }
        }
        ExpectLhs::Mem { addr, size } => {
            let actual = exec.emu.memory().read_uint(*addr, *size);
            let want = int_value(e)? as u64;
            if e.cmp.holds(actual, want) {
                Ok(())
            } else {
                fail(&format!("mem[{addr:#x}].{size}"), actual.to_string())
            }
        }
        ExpectLhs::ClassFrac(c) => {
            let total = exec.executed.max(1) as f64;
            let actual = exec.class_counts[*c as usize] as f64 / total;
            let want = float_value(e)?;
            if e.cmp.holds(actual, want) {
                Ok(())
            } else {
                fail(&format!("class[{}]", class_name(*c)), format!("{actual:.4}"))
            }
        }
    }
}

fn int_value(e: &Expect) -> Result<i64, String> {
    match &e.value {
        ExpectValue::Int(v) => Ok(*v),
        other => Err(format!("line {}: expected an integer, got `{other}`", e.line)),
    }
}

fn float_value(e: &Expect) -> Result<f64, String> {
    match &e.value {
        ExpectValue::Float(v) => Ok(*v),
        ExpectValue::Int(v) => Ok(*v as f64),
        other => Err(format!("line {}: expected a number, got `{other}`", e.line)),
    }
}

fn bool_value(e: &Expect) -> Result<bool, String> {
    match &e.value {
        ExpectValue::Word(w) if w == "true" => Ok(true),
        ExpectValue::Word(w) if w == "false" => Ok(false),
        other => Err(format!(
            "line {}: expected `true` or `false`, got `{other}`",
            e.line
        )),
    }
}

/// The golden check for one `.pasm` source: assemble, verify the
/// disassembly round-trip, execute, and evaluate every expectation.
/// Returns a one-line summary on success, a failure report otherwise.
pub fn golden_check(src: &str, default_name: &str) -> Result<String, String> {
    let ap = assemble(src, default_name).map_err(|e| format!("assembly failed: {e}"))?;

    // Round-trip anchor: canonical text must re-assemble bit-identically.
    let text = disassemble(&ap.program);
    let back = assemble(&text, default_name)
        .map_err(|e| format!("round-trip reassembly failed: {e}"))?;
    if back.program.insts != ap.program.insts
        || back.program.data != ap.program.data
        || back.program.entry != ap.program.entry
        || back.program.name != ap.program.name
    {
        return Err("round-trip mismatch: disassembled text re-assembled differently".to_string());
    }

    let exec = execute(&ap, 0);
    let expects_trap = ap
        .expects
        .iter()
        .any(|e| matches!(e.lhs, ExpectLhs::Trap));
    if let Some(t) = &exec.trap {
        if !expects_trap {
            return Err(trap_diagnostic(&ap, t));
        }
    }
    let failures = check_expects(&ap, &exec);
    if !failures.is_empty() {
        return Err(failures.join("\n"));
    }
    Ok(format!(
        "{}: {} instructions, halted={}, trap={}, {} expectation(s) ok",
        ap.program.name,
        exec.executed,
        exec.halted,
        trap_name(exec.trap.as_ref().map(|t| &t.err)),
        ap.expects.len()
    ))
}
