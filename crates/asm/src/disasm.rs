//! Canonical disassembler — the round-trip anchor.
//!
//! For any [`Program`] that follows the operand conventions of
//! [`perfvec_isa::ProgramBuilder`] / this crate's encoder (memory base
//! and index registers appended to the source list by `with_mem`), the
//! emitted text re-assembles to a bit-identical program:
//! `parse(disassemble(p)) == p` over name, instructions, data, and
//! entry point. Labels are regenerated as `L<inst index>`.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use perfvec_isa::{Inst, Op, Program, Reg};

/// Emit canonical assembly text for a program.
pub fn disassemble(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".name \"{}\"", escape(&p.name));

    for seg in &p.data {
        let _ = writeln!(out, ".data {:#x}", seg.addr);
        for row in seg.bytes.chunks(16) {
            let bytes: Vec<String> = row.iter().map(|b| b.to_string()).collect();
            let _ = writeln!(out, "    .byte {}", bytes.join(", "));
        }
    }

    // Every branch target (and a nonzero entry) needs a named line.
    let mut targets: BTreeSet<u32> = p.insts.iter().filter_map(|i| i.target).collect();
    if p.entry != 0 {
        targets.insert(p.entry);
        let _ = writeln!(out, ".entry L{}", p.entry);
    }

    for (i, inst) in p.insts.iter().enumerate() {
        if targets.contains(&(i as u32)) {
            let _ = writeln!(out, "L{i}:");
        }
        let _ = writeln!(out, "    {}", inst_text(inst));
    }
    // A target one past the last instruction is legal (it traps as
    // pc-out-of-range only if actually reached); bind it to a trailing
    // label.
    if targets.contains(&(p.insts.len() as u32)) {
        let _ = writeln!(out, "L{}:", p.insts.len());
    }
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Canonical text of one instruction (no label resolution beyond the
/// `L<idx>` convention).
pub fn inst_text(inst: &Inst) -> String {
    use Op::*;
    let d = |i: usize| inst.dsts()[i];
    let s = |i: usize| inst.srcs()[i];
    match inst.op {
        Add | Sub | And | Or | Xor | Shl | Shr | Sra | Slt | Sltu | Mul | Div | Rem => {
            if inst.uses_imm {
                format!("{} {}, {}, #{}", inst.op, d(0), s(0), inst.imm)
            } else {
                format!("{} {}, {}, {}", inst.op, d(0), s(0), s(1))
            }
        }
        Li => format!("li {}, #{}", d(0), inst.imm),
        Mov | Fsqrt | Fneg | Fmov | Icvtf | Fcvti | Vsplat | Vredsum => {
            format!("{} {}, {}", inst.op, d(0), s(0))
        }
        Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax | Fclt | Vadd | Vmul => {
            format!("{} {}, {}, {}", inst.op, d(0), s(0), s(1))
        }
        Fmadd | Vfma => format!("{} {}, {}, {}, {}", inst.op, d(0), s(0), s(1), s(2)),
        Ld | Fld => format!(
            "{}.{} {}, {}",
            inst.op,
            inst.mem.expect("load without mem").size,
            d(0),
            mem_text(inst)
        ),
        Vld => format!("vld {}, {}", d(0), mem_text(inst)),
        St | Fst => format!(
            "{}.{} {}, {}",
            inst.op,
            inst.mem.expect("store without mem").size,
            s(0),
            mem_text(inst)
        ),
        Vst => format!("vst {}, {}", s(0), mem_text(inst)),
        Beq | Bne | Blt | Bge => {
            let t = inst.target.expect("cond branch without target");
            if inst.uses_imm {
                format!("{} {}, #{}, L{}", inst.op, s(0), inst.imm, t)
            } else {
                format!("{} {}, {}, L{}", inst.op, s(0), s(1), t)
            }
        }
        J => format!("j L{}", inst.target.expect("jump without target")),
        Jal => {
            let t = inst.target.expect("call without target");
            if d(0) == Reg::LINK {
                format!("jal L{t}")
            } else {
                format!("jal {}, L{t}", d(0))
            }
        }
        Jr => {
            if s(0) == Reg::LINK {
                "ret".to_string()
            } else {
                format!("jr {}", s(0))
            }
        }
        Fence => "fence".to_string(),
        Nop => "nop".to_string(),
        Halt => "halt".to_string(),
    }
}

fn mem_text(inst: &Inst) -> String {
    let m = inst.mem.expect("memory op without mem operand");
    let mut t = format!("[{}", m.base);
    if let Some(idx) = m.index {
        let _ = write!(t, " + {}*{}", idx, m.scale);
    }
    if m.offset > 0 {
        let _ = write!(t, " + {}", m.offset);
    } else if m.offset < 0 {
        // Print the magnitude; i64::MIN has none, fall back to `+`.
        match m.offset.checked_neg() {
            Some(mag) => {
                let _ = write!(t, " - {mag}");
            }
            None => {
                let _ = write!(t, " + {}", m.offset);
            }
        }
    }
    t.push(']');
    t
}
