//! Semantic pass: statements → a validated [`perfvec_isa::Program`].
//!
//! Two passes over the parsed statements: the first lays out the data
//! segment and binds every label (so forward references work), the
//! second encodes instructions against the full symbol table. All
//! validation — register classes, operand shapes, access sizes, index
//! scales, duplicate/undefined labels — happens here with line/column
//! diagnostics.

use std::collections::HashMap;

use crate::harness::Expect;
use crate::parser::{self, Operand, OperandKind, SrcInst, Stmt};
use crate::AsmError;
use perfvec_isa::{
    DataSegment, Inst, MemRef, Op, Program, Reg, RegClass, CODE_BASE, DATA_BASE, INST_BYTES,
};

/// An assembled program plus its source map and harness metadata.
pub struct AsmProgram {
    /// The encoded program.
    pub program: Program,
    /// 1-based source line of each instruction (parallel to
    /// `program.insts`).
    pub lines: Vec<u32>,
    /// `;; run: max_instrs = n`, when present.
    pub run_limit: Option<u64>,
    /// `;; expect:` directives, in source order.
    pub expects: Vec<Expect>,
}

impl AsmProgram {
    /// Source line of instruction `idx`, if it is in range.
    pub fn line_of(&self, idx: u32) -> Option<u32> {
        self.lines.get(idx as usize).copied()
    }
}

/// Assemble `.pasm` source text. `default_name` names the program when
/// the source has no `.name` directive (callers pass the file stem).
pub fn assemble(src: &str, default_name: &str) -> Result<AsmProgram, AsmError> {
    let stmts = parser::parse(src)?;

    // ---- pass 1: layout — bind labels, build data segments ----
    let mut code_labels: HashMap<String, u32> = HashMap::new();
    let mut data_labels: HashMap<String, u64> = HashMap::new();
    let mut segments: Vec<DataSegment> = Vec::new();
    let mut cur_seg: Option<DataSegment> = None;
    let mut cursor = DATA_BASE;
    let mut in_data = false;
    let mut n_insts = 0u32;
    let mut name: Option<String> = None;
    let mut entry: Option<(String, usize, usize)> = None;
    let mut run_limit: Option<u64> = None;
    let mut expects = Vec::new();

    let flush = |cur_seg: &mut Option<DataSegment>, segments: &mut Vec<DataSegment>| {
        if let Some(seg) = cur_seg.take() {
            if !seg.bytes.is_empty() {
                segments.push(seg);
            }
        }
    };

    // A label binds to the next emitted object — a data directive makes
    // it a data label at the current cursor, an instruction makes it a
    // code label — so labels are held pending until that object appears.
    // (This matters for a code label on the first line after a `.data`
    // block, which must not inherit the data mode.)
    let mut pending: Vec<(String, usize, usize)> = Vec::new();
    fn bind_pending(
        pending: &mut Vec<(String, usize, usize)>,
        as_data: bool,
        at_code: u32,
        at_data: u64,
        code_labels: &mut HashMap<String, u32>,
        data_labels: &mut HashMap<String, u64>,
    ) -> Result<(), AsmError> {
        for (name, line_no, col) in pending.drain(..) {
            let dup = if as_data {
                data_labels.insert(name.clone(), at_data).is_some()
                    || code_labels.contains_key(&name)
            } else {
                code_labels.insert(name.clone(), at_code).is_some()
                    || data_labels.contains_key(&name)
            };
            if dup {
                return Err(AsmError::new(
                    line_no,
                    col,
                    format!("duplicate label `{name}`"),
                ));
            }
        }
        Ok(())
    }

    for line in &stmts {
        match &line.stmt {
            Stmt::Name(n) => {
                if name.is_some() {
                    return Err(AsmError::new(line.no, 1, "duplicate `.name` directive"));
                }
                name = Some(n.clone());
            }
            Stmt::Entry { sym, col } => {
                if entry.is_some() {
                    return Err(AsmError::new(line.no, *col, "duplicate `.entry` directive"));
                }
                entry = Some((sym.clone(), line.no, *col));
            }
            Stmt::Data { addr } => {
                flush(&mut cur_seg, &mut segments);
                cursor = match addr {
                    Some(a) => *a,
                    // Like `ProgramBuilder`'s allocator: blocks start
                    // 64-byte aligned.
                    None => (cursor + 63) & !63,
                };
                in_data = true;
            }
            Stmt::Word(_) | Stmt::F64(_) | Stmt::F32(_) | Stmt::Byte(_) | Stmt::Zero(_)
                if !in_data =>
            {
                return Err(AsmError::new(
                    line.no,
                    1,
                    "data directive outside a `.data` block",
                ));
            }
            Stmt::Word(ws) => {
                bind_pending(&mut pending, true, n_insts, cursor, &mut code_labels, &mut data_labels)?;
                emit(&mut cur_seg, &mut cursor, ws.iter().flat_map(|w| w.to_le_bytes()))
            }
            Stmt::F64(fs) => {
                bind_pending(&mut pending, true, n_insts, cursor, &mut code_labels, &mut data_labels)?;
                emit(
                    &mut cur_seg,
                    &mut cursor,
                    fs.iter().flat_map(|f| f.to_bits().to_le_bytes()),
                )
            }
            Stmt::F32(fs) => {
                bind_pending(&mut pending, true, n_insts, cursor, &mut code_labels, &mut data_labels)?;
                emit(
                    &mut cur_seg,
                    &mut cursor,
                    fs.iter().flat_map(|f| f.to_bits().to_le_bytes()),
                )
            }
            Stmt::Byte(bs) => {
                bind_pending(&mut pending, true, n_insts, cursor, &mut code_labels, &mut data_labels)?;
                emit(&mut cur_seg, &mut cursor, bs.iter().copied())
            }
            Stmt::Zero(n) => {
                bind_pending(&mut pending, true, n_insts, cursor, &mut code_labels, &mut data_labels)?;
                flush(&mut cur_seg, &mut segments);
                cursor += n;
            }
            Stmt::Label { name, col } => {
                pending.push((name.clone(), line.no, *col));
            }
            Stmt::Inst(_) => {
                bind_pending(&mut pending, false, n_insts, cursor, &mut code_labels, &mut data_labels)?;
                if in_data {
                    flush(&mut cur_seg, &mut segments);
                    in_data = false;
                }
                n_insts += 1;
            }
            Stmt::Run { max_instrs } => {
                if run_limit.is_some() {
                    return Err(AsmError::new(line.no, 1, "duplicate `;; run:` directive"));
                }
                run_limit = Some(*max_instrs);
            }
            Stmt::Expect(e) => expects.push(e.clone()),
        }
    }
    // A trailing label (nothing emitted after it) is a code label one
    // past the last instruction — a legal branch target.
    bind_pending(&mut pending, false, n_insts, cursor, &mut code_labels, &mut data_labels)?;
    flush(&mut cur_seg, &mut segments);

    if n_insts == 0 {
        return Err(AsmError::new(1, 1, "program has no instructions"));
    }

    // ---- pass 2: encode against the full symbol table ----
    let syms = SymTable {
        code: &code_labels,
        data: &data_labels,
    };
    let mut insts = Vec::with_capacity(n_insts as usize);
    let mut lines = Vec::with_capacity(n_insts as usize);
    for line in &stmts {
        if let Stmt::Inst(si) = &line.stmt {
            insts.push(encode_inst(si, line.no, &syms)?);
            lines.push(line.no as u32);
        }
    }

    let entry_idx = match &entry {
        None => 0,
        Some((sym, no, col)) => *code_labels.get(sym).ok_or_else(|| {
            AsmError::new(*no, *col, format!("`.entry` label `{sym}` is not defined"))
        })?,
    };
    if entry_idx as usize >= insts.len() {
        let (no, col) = entry.map(|(_, no, col)| (no, col)).unwrap_or((1, 1));
        return Err(AsmError::new(
            no,
            col,
            "`.entry` label points past the last instruction",
        ));
    }

    Ok(AsmProgram {
        program: Program {
            name: name.unwrap_or_else(|| default_name.to_string()),
            insts,
            data: segments,
            entry: entry_idx,
        },
        lines,
        run_limit,
        expects,
    })
}

fn emit(
    cur_seg: &mut Option<DataSegment>,
    cursor: &mut u64,
    bytes: impl IntoIterator<Item = u8>,
) {
    let seg = cur_seg.get_or_insert_with(|| DataSegment {
        addr: *cursor,
        bytes: Vec::new(),
    });
    let before = seg.bytes.len();
    seg.bytes.extend(bytes);
    *cursor += (seg.bytes.len() - before) as u64;
}

struct SymTable<'a> {
    code: &'a HashMap<String, u32>,
    data: &'a HashMap<String, u64>,
}

// ---------------------------------------------------------------------------
// instruction encoding
// ---------------------------------------------------------------------------

fn class_name(c: RegClass) -> &'static str {
    match c {
        RegClass::Int => "integer",
        RegClass::Fp => "floating-point",
        RegClass::Vec => "vector",
    }
}

struct Enc<'a> {
    si: &'a SrcInst,
    line: usize,
    syms: &'a SymTable<'a>,
}

impl<'a> Enc<'a> {
    fn err_at(&self, col: usize, msg: impl Into<String>) -> AsmError {
        AsmError::new(self.line, col, msg)
    }

    fn mnem(&self) -> &'static str {
        self.si.op.mnemonic()
    }

    fn arity(&self, n: usize) -> Result<(), AsmError> {
        if self.si.operands.len() != n {
            return Err(self.err_at(
                self.si.col,
                format!(
                    "`{}` expects {n} operand(s), got {}",
                    self.mnem(),
                    self.si.operands.len()
                ),
            ));
        }
        Ok(())
    }

    fn operand(&self, i: usize) -> &'a Operand {
        &self.si.operands[i]
    }

    fn reg(&self, i: usize, class: RegClass) -> Result<Reg, AsmError> {
        let o = self.operand(i);
        match o.kind {
            OperandKind::Reg(r) if r.class() == class => Ok(r),
            OperandKind::Reg(r) => Err(self.err_at(
                o.col,
                format!(
                    "operand {} of `{}` must be an {} register, got `{r}`",
                    i + 1,
                    self.mnem(),
                    class_name(class)
                ),
            )),
            _ => Err(self.err_at(
                o.col,
                format!(
                    "operand {} of `{}` must be an {} register",
                    i + 1,
                    self.mnem(),
                    class_name(class)
                ),
            )),
        }
    }

    /// Register or `#imm`, for the second ALU / branch-compare operand.
    fn reg_or_imm(&self, i: usize) -> Result<Result<Reg, i64>, AsmError> {
        let o = self.operand(i);
        match o.kind {
            OperandKind::Reg(r) if r.class() == RegClass::Int => Ok(Ok(r)),
            OperandKind::Imm(v) => Ok(Err(v)),
            _ => Err(self.err_at(
                o.col,
                format!(
                    "operand {} of `{}` must be an integer register or `#imm`",
                    i + 1,
                    self.mnem()
                ),
            )),
        }
    }

    /// The immediate for `li`: `#imm`, a data label, or `@code_label`.
    fn li_imm(&self, i: usize) -> Result<i64, AsmError> {
        let o = self.operand(i);
        match &o.kind {
            OperandKind::Imm(v) => Ok(*v),
            OperandKind::Sym(s) => self.syms.data.get(s).map(|&a| a as i64).ok_or_else(|| {
                self.err_at(
                    o.col,
                    format!("unknown data label `{s}` (a code address is written `@{s}`)"),
                )
            }),
            OperandKind::CodeAddr(s) => self.code_target_of(s, o.col).map(|idx| {
                (CODE_BASE + idx as u64 * INST_BYTES) as i64
            }),
            _ => Err(self.err_at(
                o.col,
                format!("operand {} of `li` must be `#imm`, a data label, or `@label`", i + 1),
            )),
        }
    }

    fn code_target_of(&self, s: &str, col: usize) -> Result<u32, AsmError> {
        self.syms
            .code
            .get(s)
            .copied()
            .ok_or_else(|| self.err_at(col, format!("undefined label `{s}`")))
    }

    fn target(&self, i: usize) -> Result<u32, AsmError> {
        let o = self.operand(i);
        match &o.kind {
            OperandKind::Sym(s) => self.code_target_of(s, o.col),
            _ => Err(self.err_at(
                o.col,
                format!("operand {} of `{}` must be a label", i + 1, self.mnem()),
            )),
        }
    }

    fn mem(&self, i: usize, size: u8) -> Result<MemRef, AsmError> {
        let o = self.operand(i);
        let OperandKind::Mem {
            base,
            index,
            offset,
        } = &o.kind
        else {
            return Err(self.err_at(
                o.col,
                format!(
                    "operand {} of `{}` must be a memory operand `[base + idx*scale + off]`",
                    i + 1,
                    self.mnem()
                ),
            ));
        };
        match index {
            None => Ok(MemRef::base_offset(*base, *offset, size)),
            Some((idx, scale)) => {
                if !matches!(scale, 1 | 2 | 4 | 8 | 16) {
                    return Err(self.err_at(
                        o.col,
                        format!("index scale {scale} not one of 1, 2, 4, 8, 16"),
                    ));
                }
                Ok(MemRef::indexed(*base, *idx, *scale, *offset, size))
            }
        }
    }

    /// Resolve the access size from the mnemonic suffix.
    fn size(&self, allowed: &[u8], default: u8) -> Result<u8, AsmError> {
        match self.si.size {
            None => Ok(default),
            Some(s) if allowed.contains(&s) => Ok(s),
            Some(s) => Err(self.err_at(
                self.si.col,
                format!(
                    "`{}` access size .{s} not in {:?}",
                    self.mnem(),
                    allowed
                ),
            )),
        }
    }

    fn no_size_suffix(&self) -> Result<(), AsmError> {
        if self.si.size.is_some() {
            return Err(self.err_at(
                self.si.col,
                format!("`{}` takes no access-size suffix", self.mnem()),
            ));
        }
        Ok(())
    }
}

fn encode_inst(si: &SrcInst, line: usize, syms: &SymTable<'_>) -> Result<Inst, AsmError> {
    let e = Enc { si, line, syms };
    use Op::*;
    let op = si.op;
    if !op.is_mem() {
        e.no_size_suffix()?;
    }
    let inst = match op {
        // dst, src, (src | #imm)
        Add | Sub | And | Or | Xor | Shl | Shr | Sra | Slt | Sltu | Mul | Div | Rem => {
            e.arity(3)?;
            let i = Inst::new(op)
                .with_dst(e.reg(0, RegClass::Int)?)
                .with_src(e.reg(1, RegClass::Int)?);
            match e.reg_or_imm(2)? {
                Ok(r) => i.with_src(r),
                Err(v) => i.with_imm(v),
            }
        }
        Li => {
            e.arity(2)?;
            let d = match e.operand(0).kind {
                OperandKind::Reg(r) if r.class() != RegClass::Vec => r,
                OperandKind::Reg(_) => {
                    return Err(e.err_at(
                        e.operand(0).col,
                        "`li` into a vector register is unsupported",
                    ))
                }
                _ => {
                    return Err(e.err_at(
                        e.operand(0).col,
                        "operand 1 of `li` must be an integer or fp register",
                    ))
                }
            };
            Inst::new(Li).with_dst(d).with_imm(e.li_imm(1)?)
        }
        Mov => {
            e.arity(2)?;
            Inst::new(Mov)
                .with_dst(e.reg(0, RegClass::Int)?)
                .with_src(e.reg(1, RegClass::Int)?)
        }
        // fp 3-operand
        Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax => {
            e.arity(3)?;
            Inst::new(op)
                .with_dst(e.reg(0, RegClass::Fp)?)
                .with_src(e.reg(1, RegClass::Fp)?)
                .with_src(e.reg(2, RegClass::Fp)?)
        }
        Fsqrt | Fneg | Fmov => {
            e.arity(2)?;
            Inst::new(op)
                .with_dst(e.reg(0, RegClass::Fp)?)
                .with_src(e.reg(1, RegClass::Fp)?)
        }
        Fmadd => {
            e.arity(4)?;
            Inst::new(Fmadd)
                .with_dst(e.reg(0, RegClass::Fp)?)
                .with_src(e.reg(1, RegClass::Fp)?)
                .with_src(e.reg(2, RegClass::Fp)?)
                .with_src(e.reg(3, RegClass::Fp)?)
        }
        Fclt => {
            e.arity(3)?;
            Inst::new(Fclt)
                .with_dst(e.reg(0, RegClass::Int)?)
                .with_src(e.reg(1, RegClass::Fp)?)
                .with_src(e.reg(2, RegClass::Fp)?)
        }
        Icvtf => {
            e.arity(2)?;
            Inst::new(Icvtf)
                .with_dst(e.reg(0, RegClass::Fp)?)
                .with_src(e.reg(1, RegClass::Int)?)
        }
        Fcvti => {
            e.arity(2)?;
            Inst::new(Fcvti)
                .with_dst(e.reg(0, RegClass::Int)?)
                .with_src(e.reg(1, RegClass::Fp)?)
        }
        // SIMD
        Vadd | Vmul => {
            e.arity(3)?;
            Inst::new(op)
                .with_dst(e.reg(0, RegClass::Vec)?)
                .with_src(e.reg(1, RegClass::Vec)?)
                .with_src(e.reg(2, RegClass::Vec)?)
        }
        Vfma => {
            e.arity(4)?;
            Inst::new(Vfma)
                .with_dst(e.reg(0, RegClass::Vec)?)
                .with_src(e.reg(1, RegClass::Vec)?)
                .with_src(e.reg(2, RegClass::Vec)?)
                .with_src(e.reg(3, RegClass::Vec)?)
        }
        Vsplat => {
            e.arity(2)?;
            Inst::new(Vsplat)
                .with_dst(e.reg(0, RegClass::Vec)?)
                .with_src(e.reg(1, RegClass::Fp)?)
        }
        Vredsum => {
            e.arity(2)?;
            Inst::new(Vredsum)
                .with_dst(e.reg(0, RegClass::Fp)?)
                .with_src(e.reg(1, RegClass::Vec)?)
        }
        // memory
        Ld => {
            e.arity(2)?;
            let size = e.size(&[1, 2, 4, 8], 8)?;
            Inst::new(Ld)
                .with_dst(e.reg(0, RegClass::Int)?)
                .with_mem(e.mem(1, size)?)
        }
        St => {
            e.arity(2)?;
            let size = e.size(&[1, 2, 4, 8], 8)?;
            Inst::new(St)
                .with_src(e.reg(0, RegClass::Int)?)
                .with_mem(e.mem(1, size)?)
        }
        Fld => {
            e.arity(2)?;
            let size = e.size(&[4, 8], 8)?;
            Inst::new(Fld)
                .with_dst(e.reg(0, RegClass::Fp)?)
                .with_mem(e.mem(1, size)?)
        }
        Fst => {
            e.arity(2)?;
            let size = e.size(&[4, 8], 8)?;
            Inst::new(Fst)
                .with_src(e.reg(0, RegClass::Fp)?)
                .with_mem(e.mem(1, size)?)
        }
        Vld => {
            e.arity(2)?;
            e.no_size_suffix()?;
            Inst::new(Vld)
                .with_dst(e.reg(0, RegClass::Vec)?)
                .with_mem(e.mem(1, 16)?)
        }
        Vst => {
            e.arity(2)?;
            e.no_size_suffix()?;
            Inst::new(Vst)
                .with_src(e.reg(0, RegClass::Vec)?)
                .with_mem(e.mem(1, 16)?)
        }
        // control flow
        Beq | Bne | Blt | Bge => {
            e.arity(3)?;
            let i = Inst::new(op).with_src(e.reg(0, RegClass::Int)?);
            let i = match e.reg_or_imm(1)? {
                Ok(r) => i.with_src(r),
                Err(v) => i.with_imm(v),
            };
            i.with_target(e.target(2)?)
        }
        J => {
            e.arity(1)?;
            Inst::new(J).with_target(e.target(0)?)
        }
        Jal => {
            // `jal label` (link register implied) or `jal xN, label`.
            let (dst, ti) = if si.operands.len() == 2 {
                (e.reg(0, RegClass::Int)?, 1)
            } else {
                e.arity(1)?;
                (Reg::LINK, 0)
            };
            Inst::new(Jal).with_dst(dst).with_target(e.target(ti)?)
        }
        Jr => {
            e.arity(1)?;
            Inst::new(Jr).with_src(e.reg(0, RegClass::Int)?)
        }
        Fence | Nop | Halt => {
            e.arity(0)?;
            Inst::new(op)
        }
    };
    Ok(inst)
}
