//! # perfvec-asm
//!
//! A text frontend for the perfvec ISA: a line-oriented assembler
//! (mnemonic parser → validated encoder → [`perfvec_isa::Program`]), a
//! canonical disassembler (the round-trip anchor: any program the
//! builder or the parser can produce disassembles to text that
//! re-assembles bit-identically), and a golden test-runner harness that
//! executes `.pasm` files under [`perfvec_isa::Emulator`] and checks
//! embedded `;; expect:` directives.
//!
//! This is the ingestion layer that takes experiments off the built-in
//! 17-workload grid: any external program written in the grammar below
//! becomes a trace, a content-addressed cached dataset, and a served
//! prediction.
//!
//! ## Grammar (canonical form)
//!
//! ```text
//! .name "pointer-chase"        ; program name (optional)
//! .data 0x10000000             ; switch to data emission at an address
//! ring: .word 8, 16, 0, 32     ; u64 little-endian words (data label)
//!       .byte 1, 2, 3          ; raw bytes
//!       .zero 64               ; reserve zeroed bytes
//! .entry start                 ; entry label (optional, default first inst)
//!     li x1, ring              ; data labels are address immediates
//! start:
//!     ld.8 x2, [x1 + x3*8 - 8] ; loads/stores carry a size suffix
//!     beq x2, #0, done
//!     jal helper               ; call (link register x30 implied)
//!     j start
//! done:
//!     halt
//! helper:
//!     ret                      ; sugar for `jr x30`
//! ```
//!
//! Registers are `x0`..`x31`, `f0`..`f31`, `v0`..`v15`; immediates are
//! `#<int>` (decimal or `0x` hex); `@label` is the *code address* of a
//! label as an immediate. `;` starts a comment; `;;` directives carry
//! harness metadata ([`harness`]).
//!
//! All errors carry 1-based line/column positions ([`AsmError`]).

pub mod disasm;
pub mod encoder;
pub mod harness;
pub mod parser;

pub use disasm::{disassemble, inst_text};
pub use encoder::{assemble, AsmProgram};
pub use harness::{
    check_expects, execute, golden_check, trap_diagnostic, Execution, TrapInfo,
    DEFAULT_MAX_INSTRS,
};

/// An assembly-time diagnostic with a 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable message.
    pub msg: String,
}

impl AsmError {
    pub(crate) fn new(line: usize, col: usize, msg: impl Into<String>) -> AsmError {
        AsmError {
            line,
            col,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for AsmError {}
