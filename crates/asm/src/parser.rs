//! Lexical + syntactic pass: `.pasm` source text → statements.
//!
//! The parser is line-oriented. Each line holds any number of `label:`
//! bindings followed by at most one directive or instruction; `;` starts
//! a comment, and `;;` lines carry harness metadata (`;; run:` /
//! `;; expect:`, see [`crate::harness`]). All positions are 1-based.

use crate::harness::{class_by_name, Cmp, Expect, ExpectLhs, ExpectValue};
use crate::AsmError;
use perfvec_isa::{Op, Reg, RegClass};

/// One parsed source line (only lines that carry a statement survive).
pub(crate) struct Line {
    pub no: usize,
    pub stmt: Stmt,
}

/// A single parsed statement.
pub(crate) enum Stmt {
    /// `.name "..."`.
    Name(String),
    /// `.entry label`.
    Entry { sym: String, col: usize },
    /// `.data [addr]` — switch to data emission.
    Data { addr: Option<u64> },
    /// `.word a, b, ...` — u64 little-endian words.
    Word(Vec<u64>),
    /// `.f64 a, b, ...`.
    F64(Vec<f64>),
    /// `.f32 a, b, ...`.
    F32(Vec<f32>),
    /// `.byte a, b, ...`.
    Byte(Vec<u8>),
    /// `.zero n` — reserve `n` zeroed bytes (no initialized segment).
    Zero(u64),
    /// `label:`.
    Label { name: String, col: usize },
    /// An instruction.
    Inst(SrcInst),
    /// `;; run: max_instrs = n`.
    Run { max_instrs: u64 },
    /// `;; expect: lhs op value`.
    Expect(Expect),
}

/// An instruction as written, before encoding.
pub(crate) struct SrcInst {
    pub op: Op,
    /// Access-size suffix (`ld.8`), when present.
    pub size: Option<u8>,
    /// Column of the mnemonic.
    pub col: usize,
    pub operands: Vec<Operand>,
}

pub(crate) struct Operand {
    pub kind: OperandKind,
    pub col: usize,
}

pub(crate) enum OperandKind {
    Reg(Reg),
    /// `#imm`.
    Imm(i64),
    /// `[base + index*scale + offset]`.
    Mem {
        base: Reg,
        index: Option<(Reg, u8)>,
        offset: i64,
    },
    /// A bare identifier: branch-target label, or data-label address
    /// when used as an `li` immediate.
    Sym(String),
    /// `@label` — the code address of a label, as an immediate.
    CodeAddr(String),
}

/// All opcodes, for mnemonic lookup and exhaustive table tests.
pub(crate) const ALL_OPS: [Op; 49] = [
    Op::Add,
    Op::Sub,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Shl,
    Op::Shr,
    Op::Sra,
    Op::Slt,
    Op::Sltu,
    Op::Li,
    Op::Mov,
    Op::Mul,
    Op::Div,
    Op::Rem,
    Op::Fadd,
    Op::Fsub,
    Op::Fmul,
    Op::Fdiv,
    Op::Fsqrt,
    Op::Fmadd,
    Op::Fmin,
    Op::Fmax,
    Op::Fneg,
    Op::Fclt,
    Op::Icvtf,
    Op::Fcvti,
    Op::Fmov,
    Op::Vadd,
    Op::Vmul,
    Op::Vfma,
    Op::Vsplat,
    Op::Vredsum,
    Op::Ld,
    Op::St,
    Op::Fld,
    Op::Fst,
    Op::Vld,
    Op::Vst,
    Op::Beq,
    Op::Bne,
    Op::Blt,
    Op::Bge,
    Op::J,
    Op::Jal,
    Op::Jr,
    Op::Fence,
    Op::Nop,
    Op::Halt,
];

fn op_by_mnemonic(m: &str) -> Option<Op> {
    ALL_OPS.iter().copied().find(|op| op.mnemonic() == m)
}

/// Parse a full source file into statements.
pub(crate) fn parse(src: &str) -> Result<Vec<Line>, AsmError> {
    let mut out = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let no = i + 1;
        let trimmed = raw.trim_start();
        if trimmed.starts_with(";;") {
            if let Some(stmt) = parse_meta(no, raw)? {
                out.push(Line { no, stmt });
            }
            continue;
        }
        let code = strip_comment(raw);
        if code.trim().is_empty() {
            continue;
        }
        parse_code_line(no, code, &mut out)?;
    }
    Ok(out)
}

/// Truncate a line at the first `;` that is not inside a string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        } else if c == ';' {
            return &line[..i];
        }
    }
    line
}

// ---------------------------------------------------------------------------
// character cursor
// ---------------------------------------------------------------------------

struct Cur {
    chars: Vec<char>,
    i: usize,
    line: usize,
}

impl Cur {
    fn new(line: usize, text: &str) -> Cur {
        Cur {
            chars: text.chars().collect(),
            i: 0,
            line,
        }
    }

    fn col(&self) -> usize {
        self.i + 1
    }

    fn err(&self, msg: impl Into<String>) -> AsmError {
        AsmError::new(self.line, self.col(), msg)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.i += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.i += 1;
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.peek().is_none()
    }

    /// `[A-Za-z_][A-Za-z0-9_]*`, or `None` if the next char can't start one.
    fn ident(&mut self) -> Option<String> {
        match self.peek() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
            _ => return None,
        }
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                s.push(c);
                self.i += 1;
            } else {
                break;
            }
        }
        Some(s)
    }

    /// Unsigned integer literal: decimal or `0x` hex (with `_` separators).
    fn lex_uint(&mut self) -> Result<u64, AsmError> {
        let start = self.col();
        let mut digits = String::new();
        let hex = if self.peek() == Some('0') && matches!(self.peek2(), Some('x') | Some('X')) {
            self.i += 2;
            true
        } else {
            false
        };
        while let Some(c) = self.peek() {
            if c == '_' {
                self.i += 1;
            } else if c.is_ascii_hexdigit() && (hex || c.is_ascii_digit()) {
                digits.push(c);
                self.i += 1;
            } else {
                break;
            }
        }
        if digits.is_empty() {
            return Err(AsmError::new(self.line, start, "expected a number"));
        }
        let radix = if hex { 16 } else { 10 };
        u64::from_str_radix(&digits, radix)
            .map_err(|_| AsmError::new(self.line, start, format!("integer `{digits}` out of range")))
    }

    /// Signed integer literal. Decimal or hex magnitudes up to `u64::MAX`
    /// are accepted and reinterpreted as two's-complement `i64`.
    fn lex_int(&mut self) -> Result<i64, AsmError> {
        let start = self.col();
        let neg = self.eat('-');
        let mag = self.lex_uint()?;
        if neg {
            if mag > 1u64 << 63 {
                return Err(AsmError::new(
                    self.line,
                    start,
                    format!("integer -{mag} out of range for i64"),
                ));
            }
            Ok(mag.wrapping_neg() as i64)
        } else {
            Ok(mag as i64)
        }
    }

    /// Floating-point literal (also accepts plain integers).
    fn lex_f64(&mut self) -> Result<f64, AsmError> {
        let start = self.col();
        let mut s = String::new();
        let mut prev_e = false;
        while let Some(c) = self.peek() {
            let take = c.is_ascii_digit()
                || c == '.'
                || c == 'e'
                || c == 'E'
                || ((c == '-' || c == '+') && (s.is_empty() || prev_e));
            if !take {
                break;
            }
            prev_e = c == 'e' || c == 'E';
            s.push(c);
            self.i += 1;
        }
        s.parse::<f64>()
            .map_err(|_| AsmError::new(self.line, start, format!("bad float literal `{s}`")))
    }

    /// `"..."` with `\\` and `\"` escapes.
    fn lex_string(&mut self) -> Result<String, AsmError> {
        if !self.eat('"') {
            return Err(self.err("expected a quoted string"));
        }
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some('"') => return Ok(s),
                Some('\\') => match self.bump() {
                    Some('\\') => s.push('\\'),
                    Some('"') => s.push('"'),
                    _ => return Err(self.err("bad escape in string")),
                },
                Some(c) => s.push(c),
            }
        }
    }
}

/// Classify an identifier as a register name.
enum RegIdent {
    Not,
    Ok(Reg),
    OutOfRange,
}

fn reg_from_ident(s: &str) -> RegIdent {
    let mut cs = s.chars();
    let class = match cs.next() {
        Some('x') => RegClass::Int,
        Some('f') => RegClass::Fp,
        Some('v') => RegClass::Vec,
        _ => return RegIdent::Not,
    };
    let rest = cs.as_str();
    if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return RegIdent::Not;
    }
    match rest.parse::<u32>() {
        Ok(i) if i < class.count() as u32 => RegIdent::Ok(match class {
            RegClass::Int => Reg::x(i as u8),
            RegClass::Fp => Reg::f(i as u8),
            RegClass::Vec => Reg::v(i as u8),
        }),
        _ => RegIdent::OutOfRange,
    }
}

// ---------------------------------------------------------------------------
// code lines
// ---------------------------------------------------------------------------

fn parse_code_line(no: usize, code: &str, out: &mut Vec<Line>) -> Result<(), AsmError> {
    let mut cur = Cur::new(no, code);
    loop {
        if cur.at_end() {
            return Ok(());
        }
        if cur.peek() == Some('.') {
            let stmt = parse_directive(&mut cur)?;
            if !cur.at_end() {
                return Err(cur.err("trailing input after directive"));
            }
            out.push(Line { no, stmt });
            return Ok(());
        }
        let col = cur.col();
        let Some(word) = cur.ident() else {
            return Err(cur.err("expected a label, directive, or mnemonic"));
        };
        cur.skip_ws();
        if cur.eat(':') {
            out.push(Line {
                no,
                stmt: Stmt::Label { name: word, col },
            });
            continue;
        }
        let stmt = parse_inst(&mut cur, word, col)?;
        if !cur.at_end() {
            return Err(cur.err("trailing input after instruction"));
        }
        out.push(Line { no, stmt });
        return Ok(());
    }
}

fn parse_directive(cur: &mut Cur) -> Result<Stmt, AsmError> {
    let col = cur.col();
    cur.eat('.');
    let name = match cur.ident() {
        Some(n) => n,
        None => {
            // `.f64` / `.f32` start with a letter but the ident lexer
            // stops before digits only for non-alnum; handle normally.
            return Err(cur.err("expected a directive name after `.`"));
        }
    };
    cur.skip_ws();
    match name.as_str() {
        "name" => Ok(Stmt::Name(cur.lex_string()?)),
        "entry" => {
            let sym_col = cur.col();
            let sym = cur
                .ident()
                .ok_or_else(|| cur.err("`.entry` expects a label name"))?;
            Ok(Stmt::Entry { sym, col: sym_col })
        }
        "data" => {
            if cur.at_end() {
                Ok(Stmt::Data { addr: None })
            } else {
                Ok(Stmt::Data {
                    addr: Some(cur.lex_uint()?),
                })
            }
        }
        "word" => Ok(Stmt::Word(parse_list(cur, |c| Ok(c.lex_int()? as u64))?)),
        "f64" => Ok(Stmt::F64(parse_list(cur, Cur::lex_f64)?)),
        "f32" => Ok(Stmt::F32(parse_list(cur, |c| Ok(c.lex_f64()? as f32))?)),
        "byte" => Ok(Stmt::Byte(parse_list(cur, |c| {
            let col = c.col();
            let v = c.lex_int()?;
            u8::try_from(v)
                .map_err(|_| AsmError::new(c.line, col, format!("byte value {v} not in 0..=255")))
        })?)),
        "zero" => Ok(Stmt::Zero(cur.lex_uint()?)),
        _ => Err(AsmError::new(
            cur.line,
            col,
            format!("unknown directive `.{name}`"),
        )),
    }
}

fn parse_list<T>(
    cur: &mut Cur,
    mut one: impl FnMut(&mut Cur) -> Result<T, AsmError>,
) -> Result<Vec<T>, AsmError> {
    let mut out = vec![one(cur)?];
    loop {
        cur.skip_ws();
        if !cur.eat(',') {
            return Ok(out);
        }
        cur.skip_ws();
        out.push(one(cur)?);
    }
}

fn parse_inst(cur: &mut Cur, word: String, col: usize) -> Result<Stmt, AsmError> {
    // `ret` and `fli` are authoring sugar (canonical text never emits
    // `fli`; `ret` is the canonical spelling of `jr x30`).
    if word == "ret" {
        return Ok(Stmt::Inst(SrcInst {
            op: Op::Jr,
            size: None,
            col,
            operands: vec![Operand {
                kind: OperandKind::Reg(Reg::LINK),
                col,
            }],
        }));
    }
    if word == "fli" {
        cur.skip_ws();
        let reg_col = cur.col();
        let reg = parse_operand(cur)?;
        cur.skip_ws();
        if !cur.eat(',') {
            return Err(cur.err("`fli` expects `fli fN, <float>`"));
        }
        cur.skip_ws();
        let imm_col = cur.col();
        let bits = cur.lex_f64()?.to_bits() as i64;
        return Ok(Stmt::Inst(SrcInst {
            op: Op::Li,
            size: None,
            col,
            operands: vec![
                Operand {
                    kind: reg.kind,
                    col: reg_col,
                },
                Operand {
                    kind: OperandKind::Imm(bits),
                    col: imm_col,
                },
            ],
        }));
    }

    // Split an access-size suffix: `ld.8`, `fld.4`.
    let mut size = None;
    let base = word;
    if cur.peek() == Some('.') && matches!(cur.peek2(), Some(c) if c.is_ascii_digit()) {
        cur.eat('.');
        let n = cur.lex_uint()?;
        size = Some(u8::try_from(n).map_err(|_| cur.err("bad access size"))?);
    }
    let op = op_by_mnemonic(&base)
        .ok_or_else(|| AsmError::new(cur.line, col, format!("unknown mnemonic `{base}`")))?;

    let mut operands = Vec::new();
    cur.skip_ws();
    if cur.peek().is_some() {
        loop {
            cur.skip_ws();
            operands.push(parse_operand(cur)?);
            cur.skip_ws();
            if !cur.eat(',') {
                break;
            }
        }
    }
    Ok(Stmt::Inst(SrcInst {
        op,
        size,
        col,
        operands,
    }))
}

fn parse_operand(cur: &mut Cur) -> Result<Operand, AsmError> {
    let col = cur.col();
    let kind = match cur.peek() {
        Some('#') => {
            cur.eat('#');
            OperandKind::Imm(cur.lex_int()?)
        }
        Some('@') => {
            cur.eat('@');
            let sym = cur
                .ident()
                .ok_or_else(|| cur.err("expected a label after `@`"))?;
            OperandKind::CodeAddr(sym)
        }
        Some('[') => parse_mem(cur)?,
        _ => {
            let Some(word) = cur.ident() else {
                return Err(cur.err("expected an operand"));
            };
            match reg_from_ident(&word) {
                RegIdent::Ok(r) => OperandKind::Reg(r),
                RegIdent::OutOfRange => {
                    return Err(AsmError::new(
                        cur.line,
                        col,
                        format!("register index out of range in `{word}`"),
                    ))
                }
                RegIdent::Not => OperandKind::Sym(word),
            }
        }
    };
    Ok(Operand { kind, col })
}

fn parse_mem(cur: &mut Cur) -> Result<OperandKind, AsmError> {
    cur.eat('[');
    cur.skip_ws();
    let base_col = cur.col();
    let base = match cur.ident().as_deref().map(reg_from_ident) {
        Some(RegIdent::Ok(r)) if r.class() == RegClass::Int => r,
        _ => {
            return Err(AsmError::new(
                cur.line,
                base_col,
                "memory base must be an integer register",
            ))
        }
    };
    let mut index = None;
    let mut offset = 0i64;
    cur.skip_ws();
    while let Some(sign) = cur.peek().filter(|&c| c == '+' || c == '-') {
        cur.bump();
        cur.skip_ws();
        let term_col = cur.col();
        if matches!(cur.peek(), Some(c) if c.is_ascii_alphabetic()) {
            if sign == '-' {
                return Err(AsmError::new(
                    cur.line,
                    term_col,
                    "index register cannot be subtracted",
                ));
            }
            if index.is_some() {
                return Err(AsmError::new(
                    cur.line,
                    term_col,
                    "memory operand has more than one index register",
                ));
            }
            let idx = match cur.ident().as_deref().map(reg_from_ident) {
                Some(RegIdent::Ok(r)) if r.class() == RegClass::Int => r,
                _ => {
                    return Err(AsmError::new(
                        cur.line,
                        term_col,
                        "memory index must be an integer register",
                    ))
                }
            };
            cur.skip_ws();
            let scale = if cur.eat('*') {
                cur.skip_ws();
                let scale_col = cur.col();
                let s = cur.lex_uint()?;
                u8::try_from(s).map_err(|_| {
                    AsmError::new(cur.line, scale_col, format!("bad index scale {s}"))
                })?
            } else {
                1
            };
            index = Some((idx, scale));
        } else {
            let mag = cur.lex_int()?;
            let term = if sign == '-' { mag.wrapping_neg() } else { mag };
            offset = offset.wrapping_add(term);
        }
        cur.skip_ws();
    }
    if !cur.eat(']') {
        return Err(cur.err("expected `]` to close the memory operand"));
    }
    Ok(OperandKind::Mem {
        base,
        index,
        offset,
    })
}

// ---------------------------------------------------------------------------
// `;;` harness metadata
// ---------------------------------------------------------------------------

/// Parse a `;;` line. Returns `None` for prose comments; errors on a
/// directive-shaped word (`foo:`) that isn't a known directive, so a
/// typo'd `;; expct:` can never silently pass.
fn parse_meta(no: usize, raw: &str) -> Result<Option<Stmt>, AsmError> {
    let start = raw.find(";;").expect("caller checked") + 2;
    let rest = &raw[start..];
    let mut cur = Cur::new(no, rest);
    // Column bookkeeping: positions inside `rest` are offset by `start`.
    cur.i = 0;
    let text = rest.trim_start();
    if text.is_empty() {
        return Ok(None);
    }
    let head = text.split_whitespace().next().unwrap_or("");
    match head {
        "run:" => {
            cur.skip_ws();
            cur.i += "run:".len();
            cur.skip_ws();
            // `max_instrs = N` (the key is optional).
            if matches!(cur.peek(), Some(c) if c.is_ascii_alphabetic()) {
                let key = cur.ident().unwrap_or_default();
                if key != "max_instrs" {
                    return Err(AsmError::new(
                        no,
                        start + cur.col(),
                        format!("unknown run key `{key}` (expected `max_instrs`)"),
                    ));
                }
                cur.skip_ws();
                if !cur.eat('=') {
                    return Err(AsmError::new(no, start + cur.col(), "expected `=`"));
                }
                cur.skip_ws();
            }
            let max_instrs = cur
                .lex_uint()
                .map_err(|e| AsmError::new(no, start + e.col, e.msg))?;
            Ok(Some(Stmt::Run { max_instrs }))
        }
        "expect:" => {
            cur.skip_ws();
            cur.i += "expect:".len();
            let expect =
                parse_expect(&mut cur, no).map_err(|e| AsmError::new(no, start + e.col, e.msg))?;
            Ok(Some(Stmt::Expect(expect)))
        }
        h if h.ends_with(':') => Err(AsmError::new(
            no,
            start + 1,
            format!("unknown harness directive `;; {h}` (expected `run:` or `expect:`)"),
        )),
        _ => Ok(None), // prose comment
    }
}

fn parse_expect(cur: &mut Cur, line: usize) -> Result<Expect, AsmError> {
    cur.skip_ws();
    let lhs_col = cur.col();
    let lhs = if let Some(word) = cur.ident() {
        match word.as_str() {
            "executed" => ExpectLhs::Executed,
            "halted" => ExpectLhs::Halted,
            "trap" => ExpectLhs::Trap,
            "mem" => {
                if !cur.eat('[') {
                    return Err(cur.err("expected `[addr]` after `mem`"));
                }
                cur.skip_ws();
                let addr = cur.lex_uint()?;
                cur.skip_ws();
                if !cur.eat(']') {
                    return Err(cur.err("expected `]`"));
                }
                if !cur.eat('.') {
                    return Err(cur.err("expected a size suffix, e.g. `mem[0x100].8`"));
                }
                let size_col = cur.col();
                let size = cur.lex_uint()?;
                if !matches!(size, 1 | 2 | 4 | 8) {
                    return Err(AsmError::new(
                        line,
                        size_col,
                        format!("bad mem access size {size} (1, 2, 4, or 8)"),
                    ));
                }
                ExpectLhs::Mem {
                    addr,
                    size: size as u8,
                }
            }
            "class" => {
                if !cur.eat('[') {
                    return Err(cur.err("expected `[name]` after `class`"));
                }
                cur.skip_ws();
                let name_col = cur.col();
                let name = cur.ident().ok_or_else(|| cur.err("expected a class name"))?;
                let class = class_by_name(&name).ok_or_else(|| {
                    AsmError::new(line, name_col, format!("unknown op class `{name}`"))
                })?;
                cur.skip_ws();
                if !cur.eat(']') {
                    return Err(cur.err("expected `]`"));
                }
                ExpectLhs::ClassFrac(class)
            }
            other => match reg_from_ident(other) {
                RegIdent::Ok(r) if r.class() == RegClass::Int => ExpectLhs::X(r.index()),
                RegIdent::Ok(r) if r.class() == RegClass::Fp => ExpectLhs::F(r.index()),
                RegIdent::Ok(_) => {
                    return Err(AsmError::new(
                        line,
                        lhs_col,
                        "vector registers are not checkable; check memory instead",
                    ))
                }
                _ => {
                    return Err(AsmError::new(
                        line,
                        lhs_col,
                        format!("unknown expect target `{other}`"),
                    ))
                }
            },
        }
    } else {
        return Err(cur.err("expected an expect target"));
    };

    cur.skip_ws();
    let cmp_col = cur.col();
    let cmp = match (cur.bump(), cur.peek()) {
        (Some('='), Some('=')) => {
            cur.bump();
            Cmp::Eq
        }
        (Some('='), _) => Cmp::Eq,
        (Some('!'), Some('=')) => {
            cur.bump();
            Cmp::Ne
        }
        (Some('<'), Some('=')) => {
            cur.bump();
            Cmp::Le
        }
        (Some('<'), _) => Cmp::Lt,
        (Some('>'), Some('=')) => {
            cur.bump();
            Cmp::Ge
        }
        (Some('>'), _) => Cmp::Gt,
        _ => {
            return Err(AsmError::new(
                line,
                cmp_col,
                "expected a comparison (= != < <= > >=)",
            ))
        }
    };

    cur.skip_ws();
    let value = if matches!(cur.peek(), Some(c) if c.is_ascii_alphabetic()) {
        ExpectValue::Word(cur.ident().unwrap_or_default())
    } else {
        // Distinguish ints from floats by the literal's shape.
        let save = cur.i;
        match cur.lex_int() {
            Ok(v) if !matches!(cur.peek(), Some('.') | Some('e') | Some('E')) => {
                ExpectValue::Int(v)
            }
            _ => {
                cur.i = save;
                ExpectValue::Float(cur.lex_f64()?)
            }
        }
    };
    if !cur.at_end() {
        return Err(cur.err("trailing input after expect"));
    }
    Ok(Expect {
        line,
        lhs,
        cmp,
        value,
    })
}
