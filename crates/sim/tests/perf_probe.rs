//! Manual perf probe for the three simulator paths (reference,
//! per-cell flat, lockstep column). Ignored by default — `sim_bench`
//! is the real gate; this exists so kernel work can iterate without
//! rebuilding the bench crate:
//!
//! ```sh
//! cargo test -p perfvec-sim --release --test perf_probe -- --ignored --nocapture
//! ```

use perfvec_sim::reference::simulate_reference;
use perfvec_sim::sample::{training_population, DEFAULT_MARCH_SEED};
use perfvec_sim::{simulate, simulate_column, CoreKind};
use std::time::Instant;

#[test]
#[ignore = "manual timing probe, not a correctness gate"]
fn three_way_timing() {
    let trace = perfvec_workloads::by_name("specrand").unwrap().trace(20_000);
    let configs = training_population(DEFAULT_MARCH_SEED);
    let n_ooo = configs
        .iter()
        .filter(|c| c.core == CoreKind::OutOfOrder)
        .count();
    let cells = configs.len();
    let insts = (trace.len() * cells) as f64;
    println!(
        "{} records x {} machines ({} ooo / {} inorder)",
        trace.len(),
        cells,
        n_ooo,
        cells - n_ooo
    );

    // Warm every path.
    let _ = simulate(&trace, &configs[0]);
    let _ = simulate_reference(&trace, &configs[0]);
    let _ = simulate_column(&trace, &configs);

    let mut best = [f64::MAX; 3];
    for _ in 0..6 {
        let t = Instant::now();
        for c in &configs {
            let _ = simulate_reference(&trace, c);
        }
        best[0] = best[0].min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        for c in &configs {
            let _ = simulate(&trace, c);
        }
        best[1] = best[1].min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        let _ = simulate_column(&trace, &configs);
        best[2] = best[2].min(t.elapsed().as_secs_f64());
    }
    println!(
        "reference {:.3}s ({:.1} Minstr/s)",
        best[0],
        insts / best[0] / 1e6
    );
    println!(
        "flat      {:.3}s ({:.1} Minstr/s, {:.2}x)",
        best[1],
        insts / best[1] / 1e6,
        best[0] / best[1]
    );
    println!(
        "lockstep  {:.3}s ({:.1} Minstr/s, {:.2}x)",
        best[2],
        insts / best[2] / 1e6,
        best[0] / best[2]
    );
}
