//! The lockstep contract: [`perfvec_sim::simulate_column`] must be
//! **bit-identical per cell** to the per-cell simulator ([`simulate`])
//! and to the frozen reference oracle
//! ([`perfvec_sim::reference::simulate_reference`]) — same incremental
//! latencies (by IEEE bit pattern), same `mem_level`, same
//! `mispredicted`, same counters — for every machine in the column,
//! over random machine subsets and random programs. Divergent control
//! flow across the column (machines mispredicting different branches,
//! fences serializing different windows) must not couple the machines:
//! each keeps an independent fetch cursor over the shared decoded
//! trace.

use perfvec_isa::{Emulator, Program, ProgramBuilder, Reg, Trace};
use perfvec_sim::reference::simulate_reference;
use perfvec_sim::sample::{predefined_configs, sample_configs};
use perfvec_sim::{simulate, simulate_column, MicroArchConfig};
use proptest::prelude::*;

/// Pool of machines: every predefined config plus sampled OoO and
/// in-order points (the property draws a subset bitmask over this).
fn config_pool() -> Vec<MicroArchConfig> {
    let mut pool = predefined_configs();
    pool.extend(sample_configs(0xfee1_600d, 4, 3));
    pool
}

/// Select a machine subset by bitmask, preserving pool order. An empty
/// mask degenerates to the full pool so every case simulates something.
fn subset(mask: u32) -> Vec<MicroArchConfig> {
    let pool = config_pool();
    let picked: Vec<MicroArchConfig> = pool
        .iter()
        .enumerate()
        .filter(|(j, _)| mask >> j & 1 == 1)
        .map(|(_, c)| c.clone())
        .collect();
    if picked.is_empty() {
        pool
    } else {
        picked
    }
}

/// Same op-driven loop generator as `reference_identity.rs`: ALU
/// chains, masked indexed loads/stores, store-then-reload pairs,
/// fences, data-dependent branches, division, FP.
fn random_program(ops: &[u8], iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let buf = b.alloc_zeroed(8192);
    let (base, x, acc, idx, tmp, i) = (
        Reg::x(1),
        Reg::x(2),
        Reg::x(3),
        Reg::x(4),
        Reg::x(5),
        Reg::x(6),
    );
    let (fa, fb) = (Reg::f(1), Reg::f(2));
    b.li(base, buf as i64);
    b.li(x, 0x2545_f491);
    b.li(acc, 1);
    b.li(idx, 0);
    b.li(i, 0);
    b.fli(fa, 1.5);
    b.fli(fb, 0.25);
    let top = b.label();
    for &op in ops {
        match op % 16 {
            0 => {
                b.add(acc, acc, x);
            }
            1 => {
                b.muli(acc, acc, 0x41c6_4e6d);
            }
            2 => {
                b.xori(x, x, 0x5deece66);
                b.shri(tmp, x, 7);
                b.add(x, x, tmp);
            }
            3 => {
                b.andi(idx, x, 1015);
                b.ld_idx(acc, base, idx, 8, 0, 8);
            }
            4 => {
                b.andi(idx, acc, 1015);
                b.st_idx(x, base, idx, 8, 0, 8);
            }
            5 => {
                // Store-then-reload of the same slot: forwarding path.
                b.andi(idx, x, 255);
                b.st_idx(acc, base, idx, 8, 0, 8);
                b.ld_idx(tmp, base, idx, 8, 0, 8);
                b.add(acc, acc, tmp);
            }
            6 => {
                b.fence();
            }
            7 => {
                // Data-dependent forward branch: mispredict fodder.
                let skip = b.fwd_label();
                b.andi(tmp, x, 1);
                b.beq_imm(tmp, 0, skip);
                b.addi(acc, acc, 13);
                b.bind(skip);
            }
            8 => {
                b.ori(acc, acc, 3);
                b.div(tmp, x, acc);
            }
            9 => {
                b.fmul(fa, fa, fb);
            }
            10 => {
                b.fadd(fb, fb, fa);
            }
            11 => {
                b.sub(x, x, acc);
                b.slti(tmp, x, 0);
                b.add(x, x, tmp);
            }
            12 => {
                b.andi(idx, i, 127);
                b.st_idx(i, base, idx, 8, 4096, 8);
            }
            13 => {
                b.shli(tmp, acc, 1);
                b.xor(acc, acc, tmp);
            }
            14 => {
                b.andi(idx, x, 63);
                b.ld_idx(tmp, base, idx, 8, 2048, 8);
                b.add(x, x, tmp);
            }
            _ => {
                b.addi(acc, acc, 7);
            }
        }
    }
    b.addi(i, i, 1);
    b.blt_imm(i, iters, top);
    b.halt();
    b.build()
}

fn trace_of(ops: &[u8], iters: i64) -> Trace {
    let p = random_program(ops, iters);
    Emulator::new(&p)
        .run(400_000)
        .expect("random program must run to halt")
}

/// Assert every cell of a lockstep column is bit-identical to both the
/// per-cell simulator and the reference oracle.
fn assert_column_identity(t: &Trace, configs: &[MicroArchConfig], what: &str) {
    let col = simulate_column(t, configs);
    assert_eq!(col.len(), configs.len());
    for (l, c) in col.iter().zip(configs) {
        let cell = simulate(t, c);
        assert!(
            l.bits_identical(&cell),
            "{what}: lockstep vs per-cell diverged on {} ({:?} vs {:?})",
            c.name,
            l.stats,
            cell.stats
        );
        let reference = simulate_reference(t, c);
        assert!(
            l.bits_identical(&reference),
            "{what}: lockstep vs reference diverged on {} ({:?} vs {:?})",
            c.name,
            l.stats,
            reference.stats
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lockstep_column_is_bit_identical_per_cell(
        ops in prop::collection::vec(0u8..=255, 6..32),
        iters in 20i64..160,
        mask in 0u32..1u32 << 14,
    ) {
        let configs = subset(mask);
        let t = trace_of(&ops, iters);
        let col = simulate_column(&t, &configs);
        prop_assert_eq!(col.len(), configs.len());
        for (l, c) in col.iter().zip(&configs) {
            let cell = simulate(&t, c);
            prop_assert!(
                l.bits_identical(&cell),
                "lockstep vs per-cell diverged on {} ({:?} stats {:?} vs {:?})",
                c.name, ops, l.stats, cell.stats
            );
            let reference = simulate_reference(&t, c);
            prop_assert!(
                l.bits_identical(&reference),
                "lockstep vs reference diverged on {} ({:?} stats {:?} vs {:?})",
                c.name, ops, l.stats, reference.stats
            );
        }
    }

    #[test]
    fn lockstep_column_is_deterministic(
        ops in prop::collection::vec(0u8..=255, 6..24),
        iters in 20i64..120,
        mask in 0u32..1u32 << 14,
    ) {
        let configs = subset(mask);
        let t = trace_of(&ops, iters);
        let a = simulate_column(&t, &configs);
        let b = simulate_column(&t, &configs);
        for ((x, y), c) in a.iter().zip(&b).zip(&configs) {
            prop_assert!(
                x.bits_identical(y),
                "lockstep nondeterministic on {}", c.name
            );
        }
    }
}

/// Fence-heavy trace: every machine serializes its memory window at
/// every loop body, exercising the forwarding map's fence sequence and
/// the in-order barrier stall on every record of the column.
#[test]
fn fence_heavy_column_matches_per_cell_and_reference() {
    // ops ≡ 6 (mod 16) → fences, interleaved with stores and loads so
    // the fences actually order something.
    let ops = [6u8, 4, 6, 3, 6, 5, 6, 12, 6, 14, 6];
    let t = trace_of(&ops, 120);
    assert_column_identity(&t, &config_pool(), "fence-heavy");
}

/// Mispredict-heavy trace: dense data-dependent branches on an LCG
/// stream, so different predictors across the column diverge on
/// different branches and each machine's fetch cursor restarts at
/// different records.
#[test]
fn mispredict_heavy_column_matches_per_cell_and_reference() {
    // ops ≡ 7 (mod 16) → data-dependent forward branches, with LCG
    // updates (2) feeding them fresh entropy.
    let ops = [7u8, 2, 7, 7, 2, 7, 7, 2, 7, 7];
    let t = trace_of(&ops, 150);
    assert_column_identity(&t, &config_pool(), "mispredict-heavy");
}
