//! Regression tests for the store-to-load forwarding window.
//!
//! The seed simulator kept a `HashMap` from 8-byte block to the last
//! store's data-ready cycle that was never cleared: entries survived
//! memory fences and the entire trace, so a load could "forward" from a
//! store that architecturally drained thousands of instructions earlier,
//! and the table grew with the number of unique blocks touched. The
//! fixed model bounds forwarding to the youngest `sq_size` stores and
//! clears the window at fences. These tests pin both properties.

use perfvec_isa::{Emulator, ProgramBuilder, Reg, Trace};
use perfvec_sim::reference::simulate_reference;
use perfvec_sim::sample::predefined_configs;
use perfvec_sim::{simulate, MicroArchConfig};

fn cfg(name: &str) -> MicroArchConfig {
    predefined_configs()
        .into_iter()
        .find(|c| c.name == name)
        .unwrap()
}

/// Delayed-store + reload trace. The first store's data hangs off a
/// serial multiply chain, so its data-ready cycle is far in the future
/// when it dispatches; `intervening` independent stores to other blocks
/// follow; finally a load reads `buf[load_slot]` with its address tied
/// to the same chain, so it issues right as the delayed store completes
/// — the exact shape where stale forwarding changes timing.
fn delayed_store_reload(intervening: usize, load_slot: i64) -> Trace {
    let mut b = ProgramBuilder::new();
    let buf = b.alloc_zeroed(8192);
    let (base, chain, z, i) = (Reg::x(1), Reg::x(2), Reg::x(3), Reg::x(4));
    b.li(base, buf as i64);
    b.li(chain, 3);
    b.li(i, 0);
    let top = b.label();
    // Serial chain: delays the store's data far past its dispatch.
    for _ in 0..12 {
        b.muli(chain, chain, 3);
    }
    // The delayed store to block 0.
    b.st(chain, base, 0, 8);
    // Independent stores to distinct blocks (never block 0 or 1).
    for k in 0..intervening {
        b.st(i, base, 16 + 8 * k as i64, 8);
    }
    // Address depends on the chain: the load issues just after the
    // delayed store completes, inside the forwarding timing window.
    b.andi(z, chain, 0);
    b.ld_idx(z, base, z, 1, load_slot * 8, 8);
    b.add(chain, chain, z);
    b.addi(i, i, 1);
    b.blt_imm(i, 40, top);
    b.halt();
    let p = b.build();
    Emulator::new(&p).run(200_000).unwrap()
}

/// In-window control: with few intervening stores the delayed store is
/// still in the store queue, so reloading its block (slot 0) must
/// forward — and time differently from loading the never-stored
/// neighbouring block (slot 1, same cache line). This proves the trace
/// shape actually exercises the forwarding path. (o3-medium: its two
/// memory ports let the intervening stores drain beside the delayed
/// store, so the reload issues inside the forwarding timing window.)
#[test]
fn in_window_forwarding_changes_timing() {
    let c = cfg("o3-medium"); // sq_size = 36
    let hit = simulate(&delayed_store_reload(4, 0), &c);
    let miss = simulate(&delayed_store_reload(4, 1), &c);
    assert!(
        !hit.bits_identical(&miss),
        "in-window reload should forward and change timing; the staleness test below would be vacuous"
    );
}

/// The fix: once more than `sq_size` stores separate the delayed store
/// from the reload, the store has drained — the load must behave
/// exactly like a load from a block that was never stored at all (same
/// cache line, so the cache path is identical by construction). The
/// seed's unpruned map forwarded here.
#[test]
fn out_of_window_store_never_forwards() {
    let c = cfg("o3-medium"); // sq_size = 36 < 40 intervening stores
    let reload = simulate(&delayed_store_reload(40, 0), &c);
    let fresh = simulate(&delayed_store_reload(40, 1), &c);
    assert!(
        reload.bits_identical(&fresh),
        "load forwarded from a store 40 stores back — beyond the store queue"
    );
}

/// Fence-then-reload: forwarding state must not survive a fence. The
/// flat window (barrier watermark) and the reference (map clear)
/// implement the drain differently; they must agree bit-for-bit, and
/// the run must be deterministic across repeats of the same call.
#[test]
fn fence_then_reload_agrees_with_reference_and_is_deterministic() {
    let mut b = ProgramBuilder::new();
    let buf = b.alloc_zeroed(4096);
    let (base, v, i) = (Reg::x(1), Reg::x(2), Reg::x(3));
    b.li(base, buf as i64);
    b.li(i, 0);
    let top = b.label();
    b.st(i, base, 0, 8);
    b.st(i, base, 64, 8);
    b.fence();
    b.ld(v, base, 0, 8); // reload across the fence: no forwarding
    b.add(v, v, i);
    b.st(v, base, 128, 8);
    b.ld(v, base, 128, 8); // same-side reload: forwarding allowed
    b.addi(i, i, 1);
    b.blt_imm(i, 500, top);
    b.halt();
    let p = b.build();
    let t = Emulator::new(&p).run(100_000).unwrap();

    for c in predefined_configs() {
        let flat = simulate(&t, &c);
        let reference = simulate_reference(&t, &c);
        assert!(
            flat.bits_identical(&reference),
            "fence trace diverged from reference on {}",
            c.name
        );
        let again = simulate(&t, &c);
        assert!(
            flat.bits_identical(&again),
            "nondeterministic on {}",
            c.name
        );
    }
}

/// Long strided-store trace: more unique 8-byte blocks than the seed's
/// 16 384-entry prune threshold. The windowed implementations must stay
/// bounded and agree; the load at the end must see plain cache timing
/// (every stored block left the queue long ago).
#[test]
fn long_strided_store_trace_stays_bounded_and_identical() {
    let blocks = 20_000u64;
    let mut b = ProgramBuilder::new();
    let buf = b.alloc_zeroed(blocks * 8 + 64);
    let (base, idx, v) = (Reg::x(1), Reg::x(2), Reg::x(3));
    b.li(base, buf as i64);
    b.li(idx, 0);
    let top = b.label();
    b.st_idx(idx, base, idx, 8, 0, 8);
    b.addi(idx, idx, 1);
    b.blt_imm(idx, blocks as i64, top);
    b.ld(v, base, 0, 8); // block 0: stored ~20k stores ago
    b.halt();
    let p = b.build();
    let t = Emulator::new(&p).run(200_000).unwrap();
    assert!(
        t.len() as u64 > blocks * 3,
        "trace must cover the whole stride"
    );

    for name in ["o3-medium", "a53-like"] {
        let c = cfg(name);
        let flat = simulate(&t, &c);
        let reference = simulate_reference(&t, &c);
        assert!(
            flat.bits_identical(&reference),
            "strided trace diverged on {name}"
        );
    }
}
