//! The flattening contract: the dense-array simulator kernels must be
//! **bit-identical** to the reference implementation
//! ([`perfvec_sim::reference`]) — same incremental latencies (by IEEE
//! bit pattern), same `mem_level`, same `mispredicted`, same counters —
//! on random programs and random microarchitectures, and retire order
//! must stay monotone. `sim_bench` enforces the same contract on the
//! full workload suite; this test covers the long tail of programs the
//! suite does not reach (random fences, dense branch soup, strided and
//! indexed memory, division, FP).

use perfvec_isa::{Emulator, Program, ProgramBuilder, Reg, Trace};
use perfvec_sim::reference::simulate_reference;
use perfvec_sim::sample::{predefined_configs, sample_configs};
use perfvec_sim::{simulate, MicroArchConfig};
use proptest::prelude::*;

/// Pool of machines: every predefined config plus sampled OoO and
/// in-order points (the property draws an index into this).
fn config_pool() -> Vec<MicroArchConfig> {
    let mut pool = predefined_configs();
    pool.extend(sample_configs(0xfee1_600d, 4, 3));
    pool
}

/// Build a loop whose body is driven by `ops`: a mix of ALU chains,
/// masked indexed loads/stores, store-then-reload pairs, fences,
/// data-dependent branches, division, and FP — everything that touches
/// a distinct simulator path.
fn random_program(ops: &[u8], iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let buf = b.alloc_zeroed(8192);
    let (base, x, acc, idx, tmp, i) = (
        Reg::x(1),
        Reg::x(2),
        Reg::x(3),
        Reg::x(4),
        Reg::x(5),
        Reg::x(6),
    );
    let (fa, fb) = (Reg::f(1), Reg::f(2));
    b.li(base, buf as i64);
    b.li(x, 0x2545_f491);
    b.li(acc, 1);
    b.li(idx, 0);
    b.li(i, 0);
    b.fli(fa, 1.5);
    b.fli(fb, 0.25);
    let top = b.label();
    for &op in ops {
        match op % 16 {
            0 => {
                b.add(acc, acc, x);
            }
            1 => {
                b.muli(acc, acc, 0x41c6_4e6d);
            }
            2 => {
                b.xori(x, x, 0x5deece66);
                b.shri(tmp, x, 7);
                b.add(x, x, tmp);
            }
            3 => {
                // Masked indexed load: stays inside `buf`.
                b.andi(idx, x, 1015);
                b.ld_idx(acc, base, idx, 8, 0, 8);
            }
            4 => {
                // Masked indexed store.
                b.andi(idx, acc, 1015);
                b.st_idx(x, base, idx, 8, 0, 8);
            }
            5 => {
                // Store-then-reload of the same slot: forwarding path.
                b.andi(idx, x, 255);
                b.st_idx(acc, base, idx, 8, 0, 8);
                b.ld_idx(tmp, base, idx, 8, 0, 8);
                b.add(acc, acc, tmp);
            }
            6 => {
                b.fence();
            }
            7 => {
                // Data-dependent forward branch: mispredict fodder.
                let skip = b.fwd_label();
                b.andi(tmp, x, 1);
                b.beq_imm(tmp, 0, skip);
                b.addi(acc, acc, 13);
                b.bind(skip);
            }
            8 => {
                b.ori(acc, acc, 3);
                b.div(tmp, x, acc);
            }
            9 => {
                b.fmul(fa, fa, fb);
            }
            10 => {
                b.fadd(fb, fb, fa);
            }
            11 => {
                b.sub(x, x, acc);
                b.slti(tmp, x, 0);
                b.add(x, x, tmp);
            }
            12 => {
                // Strided store walk.
                b.andi(idx, i, 127);
                b.st_idx(i, base, idx, 8, 4096, 8);
            }
            13 => {
                b.shli(tmp, acc, 1);
                b.xor(acc, acc, tmp);
            }
            14 => {
                // Load feeding the LCG: load-use dependences.
                b.andi(idx, x, 63);
                b.ld_idx(tmp, base, idx, 8, 2048, 8);
                b.add(x, x, tmp);
            }
            _ => {
                b.addi(acc, acc, 7);
            }
        }
    }
    b.addi(i, i, 1);
    b.blt_imm(i, iters, top);
    b.halt();
    b.build()
}

fn trace_of(ops: &[u8], iters: i64) -> Trace {
    let p = random_program(ops, iters);
    Emulator::new(&p)
        .run(400_000)
        .expect("random program must run to halt")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flat_simulator_is_bit_identical_to_reference(
        ops in prop::collection::vec(0u8..=255, 6..32),
        iters in 20i64..160,
        cfg_pick in 0usize..1usize << 16,
    ) {
        let pool = config_pool();
        let cfg = &pool[cfg_pick % pool.len()];
        let t = trace_of(&ops, iters);
        let flat = simulate(&t, cfg);
        let reference = simulate_reference(&t, cfg);
        prop_assert!(
            flat.bits_identical(&reference),
            "flat and reference diverged on {} ({:?} stats {:?} vs {:?})",
            cfg.name, ops, flat.stats, reference.stats
        );
    }

    #[test]
    fn retire_order_is_monotone_nondecreasing(
        ops in prop::collection::vec(0u8..=255, 6..24),
        iters in 20i64..120,
        cfg_pick in 0usize..1usize << 16,
    ) {
        let pool = config_pool();
        let cfg = &pool[cfg_pick % pool.len()];
        let t = trace_of(&ops, iters);
        let r = simulate(&t, cfg);
        // Incremental latency is (retire[i] - retire[i-1]) * cycle_time:
        // monotone retirement <=> every increment is non-negative (an
        // inversion would wrap the u64 subtraction into an enormous
        // positive value, also caught here).
        let total: f64 = r.sum_incremental();
        prop_assert!(r.inc_latency_tenths.iter().all(|&x| x >= 0.0 && x as f64 <= total));
    }
}

/// The identity must also hold on real workloads end to end (quick
/// subset here; `sim_bench` runs the full suite at full trace length).
#[test]
fn workload_suite_matches_reference_on_predefined_machines() {
    for w in perfvec_workloads::suite() {
        let t = w.trace(4_000);
        for cfg in predefined_configs() {
            let flat = simulate(&t, &cfg);
            let reference = simulate_reference(&t, &cfg);
            assert!(
                flat.bits_identical(&reference),
                "{} on {}: flat {:?} vs reference {:?}",
                w.name,
                cfg.name,
                flat.stats,
                reference.stats
            );
        }
    }
}
