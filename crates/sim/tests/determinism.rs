//! Simulator determinism and cache-behaviour sanity tests.
//!
//! The timing models must be pure functions of (trace, config): PerfVec
//! training data is regenerated across processes and machines, and any
//! hidden nondeterminism would silently corrupt the learned targets.

use perfvec_isa::{Emulator, ProgramBuilder, Reg, Trace};
use perfvec_sim::sample::{predefined_configs, sample_configs};
use perfvec_sim::{simulate, CoreKind};

/// A small mixed int/fp/memory/branch loop exercising every subsystem.
fn mixed_trace(iters: i64) -> Trace {
    let mut b = ProgramBuilder::new();
    let buf = b.alloc_zeroed(4096);
    let (base, i, t0, t1) = (Reg::x(1), Reg::x(2), Reg::x(3), Reg::x(4));
    let f0 = Reg::f(0);
    b.li(base, buf as i64);
    b.li(i, 0);
    b.fli(f0, 1.25);
    let top = b.label();
    b.andi(t1, i, 511);
    b.ld_idx(t0, base, t1, 8, 0, 8);
    b.muli(t0, t0, 17);
    b.st_idx(t0, base, t1, 8, 0, 8);
    b.fmul(f0, f0, f0);
    b.addi(i, i, 1);
    b.blt_imm(i, iters, top);
    b.halt();
    let p = b.build();
    Emulator::new(&p).run(200_000).unwrap()
}

/// A loop of `n` loads walking a buffer with the given byte stride.
fn strided_trace(n: i64, stride: i64, buf_len: u64) -> Trace {
    let mut b = ProgramBuilder::new();
    let buf = b.alloc_zeroed(buf_len);
    let (addr, i, t0) = (Reg::x(1), Reg::x(2), Reg::x(3));
    let (base, mask) = (Reg::x(4), Reg::x(5));
    b.li(base, buf as i64);
    b.li(mask, buf_len as i64 - 1);
    b.li(i, 0);
    let top = b.label();
    // addr = base + (i * stride) & (buf_len - 1); buf_len is a power of two.
    b.muli(addr, i, stride);
    b.and(addr, addr, mask);
    b.add(addr, addr, base);
    b.ld(t0, addr, 0, 8);
    b.addi(i, i, 1);
    b.blt_imm(i, n, top);
    b.halt();
    let p = b.build();
    Emulator::new(&p).run(400_000).unwrap()
}

#[test]
fn repeated_simulation_is_bit_identical_for_both_core_models() {
    let trace = mixed_trace(800);
    let configs = predefined_configs();
    let inorder = configs
        .iter()
        .find(|c| c.core == CoreKind::InOrder)
        .expect("inorder config");
    let ooo = configs
        .iter()
        .find(|c| c.core == CoreKind::OutOfOrder)
        .expect("ooo config");
    for cfg in [inorder, ooo] {
        let a = simulate(&trace, cfg);
        let b = simulate(&trace, cfg);
        assert_eq!(
            a.stats.cycles, b.stats.cycles,
            "{}: cycle counts differ",
            cfg.name
        );
        assert_eq!(a.stats, b.stats, "{}: stats differ", cfg.name);
        assert_eq!(
            a.inc_latency_tenths, b.inc_latency_tenths,
            "{}: incremental latencies differ",
            cfg.name
        );
        assert_eq!(
            a.mem_level, b.mem_level,
            "{}: cache outcomes differ",
            cfg.name
        );
        assert_eq!(
            a.mispredicted, b.mispredicted,
            "{}: predictor outcomes differ",
            cfg.name
        );
    }
}

#[test]
fn fresh_emulation_reproduces_identical_simulation() {
    // Determinism end to end: re-running the *emulator* and then the
    // simulator must reproduce the same cycles as the first pipeline run.
    let t1 = mixed_trace(500);
    let t2 = mixed_trace(500);
    for cfg in predefined_configs().iter().take(4) {
        let a = simulate(&t1, cfg);
        let b = simulate(&t2, cfg);
        assert_eq!(a.stats.cycles, b.stats.cycles, "{}", cfg.name);
        assert_eq!(a.total_tenths, b.total_tenths, "{}", cfg.name);
    }
}

#[test]
fn sampled_configs_simulate_deterministically() {
    let trace = mixed_trace(300);
    for cfg in sample_configs(0xd5e7, 2, 2) {
        let a = simulate(&trace, &cfg);
        let b = simulate(&trace, &cfg);
        assert_eq!(a.stats, b.stats, "{}", cfg.name);
        assert_eq!(a.inc_latency_tenths, b.inc_latency_tenths, "{}", cfg.name);
    }
}

#[test]
fn cache_hit_rate_tracks_spatial_locality_of_strides() {
    // 4096 loads, 8-byte stride, 4 KiB working set: after the ~64 cold
    // line fills everything hits in L1 (dense spatial locality), so the
    // L1D miss rate must be tiny. The same loads at 64-byte (line-sized)
    // stride over a 1 MiB buffer touch a new line almost every access
    // and blow past L2, so misses dominate.
    let n = 4096i64;
    let dense = strided_trace(n, 8, 4 * 1024);
    let sparse = strided_trace(n, 64, 1024 * 1024);
    let cfg = predefined_configs()
        .into_iter()
        .find(|c| c.name == "o3-medium")
        .expect("o3-medium config");

    let dense_r = simulate(&dense, &cfg);
    let sparse_r = simulate(&sparse, &cfg);
    let dense_miss = dense_r.stats.l1d_misses as f64 / n as f64;
    let sparse_miss = sparse_r.stats.l1d_misses as f64 / n as f64;

    assert!(
        dense_miss < 0.05,
        "dense stride should mostly hit L1: miss rate {dense_miss:.3}"
    );
    assert!(
        sparse_miss > 0.60,
        "line-stride stream should mostly miss: {sparse_miss:.3}"
    );
    assert!(
        sparse_miss > 5.0 * dense_miss.max(1e-3),
        "locality must separate the two streams: {sparse_miss:.3} vs {dense_miss:.3}"
    );
    // The L2 must also be defeated by the 1 MiB footprint.
    assert!(
        sparse_r.stats.l2_misses > sparse_r.stats.l1d_misses / 2,
        "1 MiB stream should also miss in L2: {} L2 misses vs {} L1D misses",
        sparse_r.stats.l2_misses,
        sparse_r.stats.l1d_misses
    );
}

#[test]
fn identical_streams_have_identical_cache_stats_across_core_models() {
    // The cache hierarchy is shared substrate: for a pure load stream,
    // in-order and out-of-order cores see the same access sequence, so
    // the miss *counts* must agree even though timing differs.
    let trace = strided_trace(2048, 64, 256 * 1024);
    let configs = predefined_configs();
    let inorder = configs
        .iter()
        .find(|c| c.core == CoreKind::InOrder)
        .unwrap();
    let mut ooo = configs
        .iter()
        .find(|c| c.core == CoreKind::OutOfOrder)
        .unwrap()
        .clone();
    // Align the cache geometry so the comparison isolates the core model.
    ooo.l1i = inorder.l1i;
    ooo.l1d = inorder.l1d;
    ooo.l2 = inorder.l2;
    ooo.l2_exclusive = inorder.l2_exclusive;
    let a = simulate(&trace, inorder);
    let b = simulate(&trace, &ooo);
    assert_eq!(a.stats.l1d_misses, b.stats.l1d_misses);
    assert_eq!(a.stats.l2_misses, b.stats.l2_misses);
}
