//! Set-associative LRU caches and the two-level hierarchy used by both
//! core models.
//!
//! The hierarchy implements non-inclusive (default) or exclusive L2
//! behaviour, write-allocate stores, and a bandwidth-limited main memory
//! behind the L2 (see [`crate::memsys`]).

use crate::config::CacheConfig;
use crate::memsys::MainMemory;

/// Which level serviced an access (feeds the SimNet baseline's
/// microarchitecture-dependent features and the simulator statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum HitLevel {
    /// Not a memory access.
    None = 0,
    /// Hit in the L1 (instruction or data).
    L1 = 1,
    /// Miss in L1, hit in L2.
    L2 = 2,
    /// Missed all caches; serviced by main memory.
    Mem = 3,
}

/// One set-associative LRU cache.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `sets[set][way] = (tag, last_use)`; `u64::MAX` tag = invalid.
    sets: Vec<(u64, u64)>,
    assoc: usize,
    num_sets: u64,
    line_shift: u32,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build an empty cache.
    pub fn new(cfg: CacheConfig) -> Cache {
        let num_sets = cfg.num_sets();
        let assoc = cfg.assoc as usize;
        Cache {
            cfg,
            sets: vec![(u64::MAX, 0); (num_sets as usize) * assoc],
            assoc,
            num_sets,
            line_shift: cfg.line_bytes.trailing_zeros(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Line-granular address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line % self.num_sets) as usize;
        set * self.assoc..(set + 1) * self.assoc
    }

    /// Look up `addr`; on hit, refresh LRU state and return true.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line = self.line_of(addr);
        let tag = line / self.num_sets;
        let range = self.set_range(line);
        for w in &mut self.sets[range] {
            if w.0 == tag {
                w.1 = self.tick;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Install the line containing `addr`, evicting the LRU way if the
    /// set is full. Returns the evicted line address (line-granular), if
    /// any.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        self.tick += 1;
        let line = self.line_of(addr);
        let tag = line / self.num_sets;
        let set = line % self.num_sets;
        let range = self.set_range(line);
        let tick = self.tick;
        let ways = &mut self.sets[range];
        // Already present (e.g. racing fill): refresh.
        if let Some(w) = ways.iter_mut().find(|w| w.0 == tag) {
            w.1 = tick;
            return None;
        }
        // Free way?
        if let Some(w) = ways.iter_mut().find(|w| w.0 == u64::MAX) {
            *w = (tag, tick);
            return None;
        }
        // Evict LRU.
        let victim = ways.iter_mut().min_by_key(|w| w.1).expect("assoc >= 1");
        let evicted_line = victim.0 * self.num_sets + set;
        *victim = (tag, tick);
        Some(evicted_line)
    }

    /// Remove the line containing `addr` if present (used for exclusive
    /// L2 behaviour). Returns whether it was present.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let tag = line / self.num_sets;
        let range = self.set_range(line);
        for w in &mut self.sets[range] {
            if w.0 == tag {
                *w = (u64::MAX, 0);
                return true;
            }
        }
        false
    }

    /// Install a line given its line-granular address (for exclusive-L2
    /// victim insertion).
    pub fn fill_line(&mut self, line: u64) -> Option<u64> {
        self.fill(line << self.line_shift)
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().filter(|w| w.0 != u64::MAX).count()
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Aggregate hierarchy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// L1 instruction-cache misses.
    pub l1i_misses: u64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// L2 misses (from either L1).
    pub l2_misses: u64,
    /// Total instruction fetch accesses.
    pub ifetch_accesses: u64,
    /// Total data accesses.
    pub data_accesses: u64,
}

/// The full hierarchy: split L1s, unified L2, main memory.
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    exclusive: bool,
    mem: MainMemory,
    l1i_lat: u64,
    l1d_lat: u64,
    l2_lat: u64,
    stats: CacheStats,
}

impl Hierarchy {
    /// Build from per-level configs; `mem` must already be scaled to the
    /// core clock.
    pub fn new(
        l1i: CacheConfig,
        l1d: CacheConfig,
        l2: CacheConfig,
        exclusive: bool,
        mem: MainMemory,
    ) -> Hierarchy {
        Hierarchy {
            l1i_lat: l1i.latency as u64,
            l1d_lat: l1d.latency as u64,
            l2_lat: l2.latency as u64,
            l1i: Cache::new(l1i),
            l1d: Cache::new(l1d),
            l2: Cache::new(l2),
            exclusive,
            mem,
            stats: CacheStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// L1D hit latency in cycles (the in-order core's best-case load-use
    /// latency).
    pub fn l1d_latency(&self) -> u64 {
        self.l1d_lat
    }

    fn access_l2_then_mem(&mut self, addr: u64, now: u64, l1_victim: Option<u64>) -> (u64, HitLevel) {
        // On the miss path, latency accumulates level by level.
        let mut lat = 0;
        let level;
        if self.l2.access(addr) {
            lat += self.l2_lat;
            level = HitLevel::L2;
            if self.exclusive {
                // Line migrates up; it leaves the L2.
                self.l2.invalidate(addr);
            }
        } else {
            self.stats.l2_misses += 1;
            lat += self.l2_lat + self.mem.access(now + lat);
            level = HitLevel::Mem;
            if !self.exclusive {
                self.l2.fill(addr);
            }
        }
        // Victim from the L1 goes down into an exclusive L2.
        if self.exclusive {
            if let Some(line) = l1_victim {
                self.l2.fill_line(line);
            }
        }
        (lat, level)
    }

    /// Instruction fetch of the line containing `pc` at cycle `now`.
    /// Returns (total latency in cycles, servicing level).
    pub fn access_ifetch(&mut self, pc: u64, now: u64) -> (u64, HitLevel) {
        self.stats.ifetch_accesses += 1;
        if self.l1i.access(pc) {
            return (self.l1i_lat, HitLevel::L1);
        }
        self.stats.l1i_misses += 1;
        let victim = self.l1i.fill(pc);
        let (lat, level) = self.access_l2_then_mem(pc, now, victim);
        (self.l1i_lat + lat, level)
    }

    /// Data access at cycle `now`. Stores are write-allocate and follow
    /// the same path as loads.
    pub fn access_data(&mut self, addr: u64, now: u64) -> (u64, HitLevel) {
        self.stats.data_accesses += 1;
        if self.l1d.access(addr) {
            return (self.l1d_lat, HitLevel::L1);
        }
        self.stats.l1d_misses += 1;
        let victim = self.l1d.fill(addr);
        let (lat, level) = self.access_l2_then_mem(addr, now, victim);
        (self.l1d_lat + lat, level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MemConfig, MemKind};

    fn small_cache(size: u64, assoc: u32) -> Cache {
        Cache::new(CacheConfig { size_bytes: size, assoc, line_bytes: 64, latency: 1 })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small_cache(1024, 2);
        assert!(!c.access(0x100));
        c.fill(0x100);
        assert!(c.access(0x100));
        assert!(c.access(0x13f)); // same 64B line
        assert!(!c.access(0x140)); // next line
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2 sets * 2 ways; lines mapping to set 0: 0, 2, 4 (line index).
        let mut c = small_cache(256, 2);
        c.fill(0); // line 0 -> set 0
        c.fill(128); // line 2 -> set 0
        assert!(c.access(0)); // make line 0 the most recent
        let evicted = c.fill(256); // line 4 -> set 0: must evict line 2
        assert_eq!(evicted, Some(2));
        assert!(c.access(0));
        assert!(!c.access(128));
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut c = small_cache(1024, 4); // 16 lines
        for i in 0..100u64 {
            c.fill(i * 64);
        }
        assert!(c.resident_lines() <= 16);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_cache(1024, 2);
        c.fill(0x40);
        assert!(c.invalidate(0x40));
        assert!(!c.access(0x40));
        assert!(!c.invalidate(0x40));
    }

    fn hierarchy(exclusive: bool) -> Hierarchy {
        let l1 = CacheConfig { size_bytes: 512, assoc: 2, line_bytes: 64, latency: 2 };
        let l2 = CacheConfig { size_bytes: 4096, assoc: 4, line_bytes: 64, latency: 10 };
        let mem = MainMemory::new(MemConfig::typical(MemKind::Ddr4), 2.0);
        Hierarchy::new(l1, l1, l2, exclusive, mem)
    }

    #[test]
    fn miss_path_latency_accumulates() {
        let mut h = hierarchy(false);
        let (cold, level) = h.access_data(0x1000, 0);
        assert_eq!(level, HitLevel::Mem);
        let (l1_hit, level) = h.access_data(0x1000, 100);
        assert_eq!(level, HitLevel::L1);
        assert_eq!(l1_hit, 2);
        assert!(cold > 12); // l1 + l2 + memory
    }

    #[test]
    fn l2_serves_after_l1_eviction() {
        let mut h = hierarchy(false);
        // Fill far more lines than L1 holds (8 lines) but fewer than L2 (64).
        for i in 0..32u64 {
            h.access_data(i * 64, i);
        }
        // Line 0 was evicted from L1 but should still be in (non-exclusive) L2.
        let (_, level) = h.access_data(0, 1000);
        assert_eq!(level, HitLevel::L2);
    }

    #[test]
    fn exclusive_l2_holds_victims_only() {
        let mut h = hierarchy(true);
        let (_, lvl) = h.access_data(0, 0);
        assert_eq!(lvl, HitLevel::Mem);
        // Still resident in L1 -> L1 hit; L2 does not hold it.
        let (_, lvl) = h.access_data(0, 10);
        assert_eq!(lvl, HitLevel::L1);
        // Push 8+ new lines through the same structure to evict line 0 from L1.
        for i in 1..16u64 {
            h.access_data(i * 64, 20 + i);
        }
        // Victim should have migrated to L2.
        let (_, lvl) = h.access_data(0, 1000);
        assert_eq!(lvl, HitLevel::L2);
    }

    #[test]
    fn stats_count_misses() {
        let mut h = hierarchy(false);
        h.access_data(0, 0);
        h.access_data(0, 1);
        h.access_ifetch(0x10_000, 2);
        let s = h.stats();
        assert_eq!(s.l1d_misses, 1);
        assert_eq!(s.l1i_misses, 1);
        assert_eq!(s.data_accesses, 2);
        assert_eq!(s.ifetch_accesses, 1);
    }
}
