//! Set-associative LRU caches and the two-level hierarchy used by both
//! core models.
//!
//! The hierarchy implements non-inclusive (default) or exclusive L2
//! behaviour, write-allocate stores, and a bandwidth-limited main memory
//! behind the L2 (see [`crate::memsys`]).
//!
//! The cache state is stored as two dense set-major arrays (`tags`,
//! `last_use`) rather than a `Vec<(tag, last_use)>` of tuples: the hit
//! path touches only the tag array (one cache line covers an 8-way
//! set), and set indexing uses shift/mask whenever the set count is a
//! power of two (true for every sampled and predefined geometry —
//! division stays as a fallback for hand-built configs).
//!
//! Validity is tracked by an **epoch** packed into the high bits of
//! `last_use`: an entry is resident only if its packed timestamp
//! belongs to the current epoch. Bumping the epoch therefore
//! invalidates the whole cache in O(1), which lets a [`CachePool`]
//! recycle the multi-megabyte tag/LRU arrays across `simulate` calls
//! instead of allocating and zeroing them per call (tens of
//! microseconds per grid point on a large L2 — comparable to the
//! simulation itself at short trace lengths). Behaviour is
//! bit-identical to a freshly zeroed cache: same scan order, same
//! first-free-way fill, same first-minimum LRU victim.

use crate::config::CacheConfig;
use crate::memsys::MainMemory;

/// Bits of `last_use` reserved for the per-run access tick; the
/// remaining high bits hold the epoch. One tick per access bounds a
/// run's ticks well under 2^40 (traces are at most ~10^7 records).
const EPOCH_SHIFT: u32 = 40;

/// Epochs wrap after 2^24 − 1 pooled runs; the pool re-zeroes its
/// buffers when that happens.
const MAX_EPOCH: u64 = (1 << (64 - EPOCH_SHIFT)) - 1;

/// Which level serviced an access (feeds the SimNet baseline's
/// microarchitecture-dependent features and the simulator statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum HitLevel {
    /// Not a memory access.
    None = 0,
    /// Hit in the L1 (instruction or data).
    L1 = 1,
    /// Miss in L1, hit in L2.
    L2 = 2,
    /// Missed all caches; serviced by main memory.
    Mem = 3,
}

/// One set-associative LRU cache.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `tags[set * assoc + way]`; only meaningful where the entry's
    /// epoch is current.
    tags: Vec<u64>,
    /// Packed `(epoch << EPOCH_SHIFT) + tick` timestamps, same layout
    /// as `tags`. Entries below `epoch_base` are invalid.
    last_use: Vec<u64>,
    assoc: usize,
    num_sets: u64,
    /// Set mask / tag shift when `num_sets` is a power of two, so set
    /// and tag extraction is shift/mask instead of div/mod on the hot
    /// path.
    set_mask: u64,
    tag_shift: u32,
    pow2: bool,
    line_shift: u32,
    /// `epoch << EPOCH_SHIFT` for the current run.
    epoch_base: u64,
    tick: u64,
}

impl Cache {
    /// Build an empty cache.
    pub fn new(cfg: CacheConfig) -> Cache {
        Cache::from_buffers(cfg, Vec::new(), Vec::new(), 1)
    }

    /// Build a cache on recycled `tags`/`last_use` buffers. Entries the
    /// buffers carry from previous epochs read as invalid because their
    /// packed timestamps are below `epoch << EPOCH_SHIFT`.
    fn from_buffers(
        cfg: CacheConfig,
        mut tags: Vec<u64>,
        mut last_use: Vec<u64>,
        epoch: u64,
    ) -> Cache {
        debug_assert!((1..=MAX_EPOCH).contains(&epoch));
        let num_sets = cfg.num_sets();
        let assoc = cfg.assoc as usize;
        let ways = (num_sets as usize) * assoc;
        tags.resize(ways, 0);
        last_use.resize(ways, 0);
        let pow2 = num_sets.is_power_of_two();
        Cache {
            cfg,
            tags,
            last_use,
            assoc,
            num_sets,
            set_mask: if pow2 { num_sets - 1 } else { 0 },
            tag_shift: if pow2 { num_sets.trailing_zeros() } else { 0 },
            pow2,
            line_shift: cfg.line_bytes.trailing_zeros(),
            epoch_base: epoch << EPOCH_SHIFT,
            tick: 0,
        }
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Line-granular address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// `(set, tag)` for a line-granular address.
    #[inline]
    fn set_and_tag(&self, line: u64) -> (usize, u64) {
        if self.pow2 {
            ((line & self.set_mask) as usize, line >> self.tag_shift)
        } else {
            ((line % self.num_sets) as usize, line / self.num_sets)
        }
    }

    /// Whether the entry at `w` belongs to the current epoch.
    #[inline]
    fn valid(&self, w: usize) -> bool {
        self.last_use[w] >= self.epoch_base
    }

    /// Look up `addr`; on hit, refresh LRU state and return true.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        debug_assert!(
            self.tick < 1 << EPOCH_SHIFT,
            "run tick overflows epoch packing"
        );
        let (set, tag) = self.set_and_tag(self.line_of(addr));
        let base = set * self.assoc;
        // Branchless way scan: an early-exit compare-and-return
        // mispredicts on nearly every hit (the matching way is
        // effectively random), which costs more than unconditionally
        // scanning a handful of ways with a conditional move. At most
        // one valid way can match.
        let tags = &self.tags[base..base + self.assoc];
        let uses = &self.last_use[base..base + self.assoc];
        let mut hit = usize::MAX;
        for (w, (&t, &u)) in tags.iter().zip(uses).enumerate() {
            if t == tag && u >= self.epoch_base {
                hit = base + w;
            }
        }
        if hit != usize::MAX {
            self.last_use[hit] = self.epoch_base + self.tick;
            return true;
        }
        false
    }

    /// Install the line containing `addr`, evicting the LRU way if the
    /// set is full. Returns the evicted line address (line-granular), if
    /// any.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        self.tick += 1;
        let line = self.line_of(addr);
        let (set, tag) = self.set_and_tag(line);
        let base = set * self.assoc;
        // Already present (e.g. racing fill): refresh. Track the LRU
        // way in the same pass so a full set needs no second scan.
        let (mut victim, mut victim_use) = (base, u64::MAX);
        let mut free = None;
        for w in base..base + self.assoc {
            if !self.valid(w) {
                if free.is_none() {
                    free = Some(w);
                }
            } else if self.tags[w] == tag {
                self.last_use[w] = self.epoch_base + self.tick;
                return None;
            } else if self.last_use[w] < victim_use {
                (victim, victim_use) = (w, self.last_use[w]);
            }
        }
        // Free way?
        if let Some(w) = free {
            self.tags[w] = tag;
            self.last_use[w] = self.epoch_base + self.tick;
            return None;
        }
        // Evict LRU.
        let evicted_line = self.tags[victim] * self.num_sets + set as u64;
        self.tags[victim] = tag;
        self.last_use[victim] = self.epoch_base + self.tick;
        Some(evicted_line)
    }

    /// Remove the line containing `addr` if present (used for exclusive
    /// L2 behaviour). Returns whether it was present.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(self.line_of(addr));
        let base = set * self.assoc;
        for w in base..base + self.assoc {
            if self.tags[w] == tag && self.valid(w) {
                // Timestamp zero is below every epoch's base.
                self.last_use[w] = 0;
                return true;
            }
        }
        false
    }

    /// Install a line given its line-granular address (for exclusive-L2
    /// victim insertion).
    pub fn fill_line(&mut self, line: u64) -> Option<u64> {
        self.fill(line << self.line_shift)
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.last_use
            .iter()
            .filter(|&&t| t >= self.epoch_base)
            .count()
    }
}

/// Recycled tag/LRU buffers for one thread's cache hierarchies, plus
/// the epoch counter that invalidates them between runs. Owned by the
/// simulator scoreboard; reference implementations deliberately do not
/// use it.
#[derive(Debug, Default)]
pub struct CachePool {
    /// `tags`/`last_use` buffer pairs for L1I, L1D, L2 (in that order).
    bufs: [(Vec<u64>, Vec<u64>); 3],
    epoch: u64,
}

impl CachePool {
    /// Advance to a fresh epoch, re-zeroing the buffers on the (once
    /// per ~16M runs) wrap.
    fn next_epoch(&mut self) -> u64 {
        self.epoch += 1;
        if self.epoch > MAX_EPOCH {
            self.epoch = 1;
            for (tags, last_use) in &mut self.bufs {
                tags.clear();
                last_use.clear();
            }
        }
        self.epoch
    }
}

/// Aggregate hierarchy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// L1 instruction-cache misses.
    pub l1i_misses: u64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// L2 misses (from either L1).
    pub l2_misses: u64,
    /// Total instruction fetch accesses.
    pub ifetch_accesses: u64,
    /// Total data accesses.
    pub data_accesses: u64,
}

/// The full hierarchy: split L1s, unified L2, main memory.
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    exclusive: bool,
    mem: MainMemory,
    l1i_lat: u64,
    l1d_lat: u64,
    l2_lat: u64,
    stats: CacheStats,
}

impl Hierarchy {
    /// Build from per-level configs; `mem` must already be scaled to the
    /// core clock.
    pub fn new(
        l1i: CacheConfig,
        l1d: CacheConfig,
        l2: CacheConfig,
        exclusive: bool,
        mem: MainMemory,
    ) -> Hierarchy {
        Hierarchy {
            l1i_lat: l1i.latency as u64,
            l1d_lat: l1d.latency as u64,
            l2_lat: l2.latency as u64,
            l1i: Cache::new(l1i),
            l1d: Cache::new(l1d),
            l2: Cache::new(l2),
            exclusive,
            mem,
            stats: CacheStats::default(),
        }
    }

    /// Like [`Hierarchy::new`], but recycling `pool`'s buffers instead
    /// of allocating fresh arrays — the per-call constructor the hot
    /// simulation paths use. Return the buffers with
    /// [`Hierarchy::recycle`] when the run is done.
    pub fn from_pool(
        l1i: CacheConfig,
        l1d: CacheConfig,
        l2: CacheConfig,
        exclusive: bool,
        mem: MainMemory,
        pool: &mut CachePool,
    ) -> Hierarchy {
        let epoch = pool.next_epoch();
        let [b0, b1, b2] = &mut pool.bufs;
        let take =
            |b: &mut (Vec<u64>, Vec<u64>)| (std::mem::take(&mut b.0), std::mem::take(&mut b.1));
        let (t0, u0) = take(b0);
        let (t1, u1) = take(b1);
        let (t2, u2) = take(b2);
        Hierarchy {
            l1i_lat: l1i.latency as u64,
            l1d_lat: l1d.latency as u64,
            l2_lat: l2.latency as u64,
            l1i: Cache::from_buffers(l1i, t0, u0, epoch),
            l1d: Cache::from_buffers(l1d, t1, u1, epoch),
            l2: Cache::from_buffers(l2, t2, u2, epoch),
            exclusive,
            mem,
            stats: CacheStats::default(),
        }
    }

    /// Hand the tag/LRU buffers back to `pool` for the next run.
    pub fn recycle(self, pool: &mut CachePool) {
        pool.bufs[0] = (self.l1i.tags, self.l1i.last_use);
        pool.bufs[1] = (self.l1d.tags, self.l1d.last_use);
        pool.bufs[2] = (self.l2.tags, self.l2.last_use);
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// L1D hit latency in cycles (the in-order core's best-case load-use
    /// latency).
    pub fn l1d_latency(&self) -> u64 {
        self.l1d_lat
    }

    fn access_l2_then_mem(
        &mut self,
        addr: u64,
        now: u64,
        l1_victim: Option<u64>,
    ) -> (u64, HitLevel) {
        // On the miss path, latency accumulates level by level.
        let mut lat = 0;
        let level;
        if self.l2.access(addr) {
            lat += self.l2_lat;
            level = HitLevel::L2;
            if self.exclusive {
                // Line migrates up; it leaves the L2.
                self.l2.invalidate(addr);
            }
        } else {
            self.stats.l2_misses += 1;
            lat += self.l2_lat + self.mem.access(now + lat);
            level = HitLevel::Mem;
            if !self.exclusive {
                self.l2.fill(addr);
            }
        }
        // Victim from the L1 goes down into an exclusive L2.
        if self.exclusive {
            if let Some(line) = l1_victim {
                self.l2.fill_line(line);
            }
        }
        (lat, level)
    }

    /// Instruction fetch of the line containing `pc` at cycle `now`.
    /// Returns (total latency in cycles, servicing level).
    #[inline]
    pub fn access_ifetch(&mut self, pc: u64, now: u64) -> (u64, HitLevel) {
        self.stats.ifetch_accesses += 1;
        if self.l1i.access(pc) {
            return (self.l1i_lat, HitLevel::L1);
        }
        self.stats.l1i_misses += 1;
        let victim = self.l1i.fill(pc);
        let (lat, level) = self.access_l2_then_mem(pc, now, victim);
        (self.l1i_lat + lat, level)
    }

    /// Data access at cycle `now`. Stores are write-allocate and follow
    /// the same path as loads.
    #[inline]
    pub fn access_data(&mut self, addr: u64, now: u64) -> (u64, HitLevel) {
        self.stats.data_accesses += 1;
        if self.l1d.access(addr) {
            return (self.l1d_lat, HitLevel::L1);
        }
        self.stats.l1d_misses += 1;
        let victim = self.l1d.fill(addr);
        let (lat, level) = self.access_l2_then_mem(addr, now, victim);
        (self.l1d_lat + lat, level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MemConfig, MemKind};

    fn small_cache(size: u64, assoc: u32) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: size,
            assoc,
            line_bytes: 64,
            latency: 1,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small_cache(1024, 2);
        assert!(!c.access(0x100));
        c.fill(0x100);
        assert!(c.access(0x100));
        assert!(c.access(0x13f)); // same 64B line
        assert!(!c.access(0x140)); // next line
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2 sets * 2 ways; lines mapping to set 0: 0, 2, 4 (line index).
        let mut c = small_cache(256, 2);
        c.fill(0); // line 0 -> set 0
        c.fill(128); // line 2 -> set 0
        assert!(c.access(0)); // make line 0 the most recent
        let evicted = c.fill(256); // line 4 -> set 0: must evict line 2
        assert_eq!(evicted, Some(2));
        assert!(c.access(0));
        assert!(!c.access(128));
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut c = small_cache(1024, 4); // 16 lines
        for i in 0..100u64 {
            c.fill(i * 64);
        }
        assert!(c.resident_lines() <= 16);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_cache(1024, 2);
        c.fill(0x40);
        assert!(c.invalidate(0x40));
        assert!(!c.access(0x40));
        assert!(!c.invalidate(0x40));
    }

    #[test]
    fn non_power_of_two_sets_fall_back_to_division() {
        // 3 sets * 1 way (192 bytes / 64 / 1): exercises the div/mod
        // fallback path; behaviour must match the pow2 logic's contract.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 192,
            assoc: 1,
            line_bytes: 64,
            latency: 1,
        });
        c.fill(0); // line 0 -> set 0
        c.fill(64); // line 1 -> set 1
        c.fill(128); // line 2 -> set 2
        assert!(c.access(0) && c.access(64) && c.access(128));
        // Line 3 maps back to set 0 and must evict line 0.
        assert_eq!(c.fill(192), Some(0));
        assert!(!c.access(0));
        assert!(c.access(192));
    }

    /// A pooled cache whose buffers carry a previous run's state must
    /// behave exactly like a fresh one: stale entries are invisible as
    /// hits, count as free ways, and never pollute LRU choice.
    #[test]
    fn pooled_reuse_is_indistinguishable_from_fresh() {
        let cfg = CacheConfig {
            size_bytes: 256,
            assoc: 2,
            line_bytes: 64,
            latency: 1,
        };
        let mut pool = CachePool::default();
        let mem = || MainMemory::new(MemConfig::typical(MemKind::Ddr4), 2.0);

        // Drive an access pattern through fresh and pooled hierarchies
        // twice; the second pooled run sees dirty buffers.
        let pattern: Vec<u64> = (0..64u64).map(|i| (i * 769 + 13) % 16 * 64).collect();
        let run_fresh = || {
            let mut h = Hierarchy::new(cfg, cfg, cfg, false, mem());
            let lats: Vec<u64> = pattern.iter().map(|&a| h.access_data(a, 0).0).collect();
            (lats, h.stats())
        };
        let (fresh_lats, fresh_stats) = run_fresh();
        for _ in 0..3 {
            let mut h = Hierarchy::from_pool(cfg, cfg, cfg, false, mem(), &mut pool);
            let lats: Vec<u64> = pattern.iter().map(|&a| h.access_data(a, 0).0).collect();
            let stats = h.stats();
            h.recycle(&mut pool);
            assert_eq!(lats, fresh_lats);
            assert_eq!(stats, fresh_stats);
        }
    }

    /// Pool buffers shared across different geometries (the same
    /// scoreboard simulates many configs) must still read as empty.
    #[test]
    fn pooled_reuse_across_geometries() {
        let small = CacheConfig {
            size_bytes: 256,
            assoc: 2,
            line_bytes: 64,
            latency: 1,
        };
        let big = CacheConfig {
            size_bytes: 4096,
            assoc: 4,
            line_bytes: 64,
            latency: 2,
        };
        let mem = || MainMemory::new(MemConfig::typical(MemKind::Ddr4), 2.0);
        let mut pool = CachePool::default();
        for cfg in [small, big, small, big, small] {
            let mut fresh = Hierarchy::new(cfg, cfg, cfg, false, mem());
            let mut pooled = Hierarchy::from_pool(cfg, cfg, cfg, false, mem(), &mut pool);
            for i in 0..128u64 {
                let a = (i * 257 + 7) % 96 * 64;
                assert_eq!(fresh.access_data(a, i), pooled.access_data(a, i));
            }
            assert_eq!(fresh.stats(), pooled.stats());
            pooled.recycle(&mut pool);
        }
    }

    fn hierarchy(exclusive: bool) -> Hierarchy {
        let l1 = CacheConfig {
            size_bytes: 512,
            assoc: 2,
            line_bytes: 64,
            latency: 2,
        };
        let l2 = CacheConfig {
            size_bytes: 4096,
            assoc: 4,
            line_bytes: 64,
            latency: 10,
        };
        let mem = MainMemory::new(MemConfig::typical(MemKind::Ddr4), 2.0);
        Hierarchy::new(l1, l1, l2, exclusive, mem)
    }

    #[test]
    fn miss_path_latency_accumulates() {
        let mut h = hierarchy(false);
        let (cold, level) = h.access_data(0x1000, 0);
        assert_eq!(level, HitLevel::Mem);
        let (l1_hit, level) = h.access_data(0x1000, 100);
        assert_eq!(level, HitLevel::L1);
        assert_eq!(l1_hit, 2);
        assert!(cold > 12); // l1 + l2 + memory
    }

    #[test]
    fn l2_serves_after_l1_eviction() {
        let mut h = hierarchy(false);
        // Fill far more lines than L1 holds (8 lines) but fewer than L2 (64).
        for i in 0..32u64 {
            h.access_data(i * 64, i);
        }
        // Line 0 was evicted from L1 but should still be in (non-exclusive) L2.
        let (_, level) = h.access_data(0, 1000);
        assert_eq!(level, HitLevel::L2);
    }

    #[test]
    fn exclusive_l2_holds_victims_only() {
        let mut h = hierarchy(true);
        let (_, lvl) = h.access_data(0, 0);
        assert_eq!(lvl, HitLevel::Mem);
        // Still resident in L1 -> L1 hit; L2 does not hold it.
        let (_, lvl) = h.access_data(0, 10);
        assert_eq!(lvl, HitLevel::L1);
        // Push 8+ new lines through the same structure to evict line 0 from L1.
        for i in 1..16u64 {
            h.access_data(i * 64, 20 + i);
        }
        // Victim should have migrated to L2.
        let (_, lvl) = h.access_data(0, 1000);
        assert_eq!(lvl, HitLevel::L2);
    }

    #[test]
    fn stats_count_misses() {
        let mut h = hierarchy(false);
        h.access_data(0, 0);
        h.access_data(0, 1);
        h.access_ifetch(0x10_000, 2);
        let s = h.stats();
        assert_eq!(s.l1d_misses, 1);
        assert_eq!(s.l1i_misses, 1);
        assert_eq!(s.data_accesses, 2);
        assert_eq!(s.ifetch_accesses, 1);
    }
}
