//! Lockstep grid simulation: one trace walk, many machines.
//!
//! [`simulate_column`] decodes a trace once into a flat
//! [`perfvec_trace::DecodedTrace`] and advances machines through the
//! trace in **record segments**: every out-of-order machine of the
//! column runs one cache-sized segment of records ([`SEG`]) before any
//! machine touches the next segment. The trace decode is paid once per
//! column instead of once per (record, machine) cell, and the segment
//! tiling means each SoA record segment is pulled from memory once and
//! then served from close cache to the whole column — where the
//! per-cell row-major order re-streams the whole record buffer once
//! per machine. Machines run each segment **in pairs**
//! ([`crate::machine::OooMachine::run_span_pair`]): two independent
//! per-record dependency chains overlap on the host core, with each
//! machine's hot scalar pipeline state hoisted into registers for the
//! span. Finer interleavings (record-outer over the column, machine
//! blocks) measured slower — machine state kept falling out of
//! registers and L1 between records. In-order machines run whole-trace
//! paired spans instead: their state is tiny, so segment switches cost
//! more than the record-stream reuse saves.
//!
//! Machines are fully independent: each owns its scoreboard, rings,
//! cache hierarchy, branch state, forwarding window, and — crucially —
//! its own fetch cursor (`cur_line` / mispredict-restart state) over
//! the shared decoded buffer, so machines whose control flow diverges
//! (different mispredict patterns) stay bit-identical to their per-cell
//! runs. The span runners are literally the same code
//! ([`crate::machine`]); a machine's segment sequence covers the
//! records contiguously in order exactly as a single whole-trace span
//! does, and interleaving independent state machines cannot change any
//! machine's arithmetic.
//!
//! Observability: per-column decode/simulate wall time and a grid-cell
//! throughput gauge are recorded through `perfvec-obs`
//! ([`LockstepMetrics`]) — strictly outside the simulated state.

use crate::config::{CoreKind, MicroArchConfig};
use crate::latency::SimResult;
use crate::machine::{with_scratch, InorderMachine, MachineScratch, OooMachine, SimScratch};
use perfvec_isa::Trace;
use perfvec_obs::{Counter, Gauge, Histogram};
use std::sync::OnceLock;
use std::time::Instant;

/// Records per lockstep segment. Sized so one segment of SoA record
/// data (5 columns, ~26 bytes per record — ~100KB at 4096) stays in
/// close cache while all machines of the column run it, yet long
/// enough that each machine's state reload per segment switch
/// amortizes to noise (a few KB of hot state per ~4K records).
const SEG: usize = 4096;

/// Instrumentation for the lockstep path, shared by every thread.
pub struct LockstepMetrics {
    /// Wall time (µs) spent batch-decoding the trace, per column.
    pub column_decode_us: Histogram,
    /// Wall time (µs) spent stepping the machine column, per column.
    pub column_simulate_us: Histogram,
    /// Grid cells (machine × trace pairs) simulated via lockstep.
    pub cells: Counter,
    /// Most recent per-column throughput in grid cells per second.
    pub cells_per_sec: Gauge,
}

/// The process-wide [`LockstepMetrics`] instance.
pub fn metrics() -> &'static LockstepMetrics {
    static METRICS: OnceLock<LockstepMetrics> = OnceLock::new();
    METRICS.get_or_init(|| LockstepMetrics {
        column_decode_us: Histogram::new(),
        column_simulate_us: Histogram::new(),
        cells: Counter::new(),
        cells_per_sec: Gauge::new(),
    })
}

/// Simulate `trace` on every machine in `configs`, in lockstep, and
/// return one [`SimResult`] per config in input order. Each result is
/// bit-identical to `simulate(trace, &configs[j])` (and therefore to
/// the frozen reference oracle).
pub fn simulate_column(trace: &Trace, configs: &[MicroArchConfig]) -> Vec<SimResult> {
    with_scratch(|s| simulate_column_with(trace, configs, s))
}

fn simulate_column_with(
    trace: &Trace,
    configs: &[MicroArchConfig],
    s: &mut SimScratch,
) -> Vec<SimResult> {
    if configs.is_empty() {
        return Vec::new();
    }
    let m = metrics();

    let t_decode = Instant::now();
    s.dt.build(trace);
    m.column_decode_us.record(t_decode.elapsed().as_micros() as u64);

    let SimScratch { dt, cells } = s;
    if cells.len() < configs.len() {
        cells.resize_with(configs.len(), MachineScratch::default);
    }
    let n = dt.len();

    // Split the column by core kind so the per-record machine loops
    // stay homogeneous (one predictable dispatch per group) while the
    // caller keeps one mixed config list.
    let mut ooo: Vec<(usize, OooMachine)> = Vec::new();
    let mut inorder: Vec<(usize, InorderMachine)> = Vec::new();
    for (j, cfg) in configs.iter().enumerate() {
        match cfg.core {
            CoreKind::OutOfOrder => ooo.push((j, OooMachine::begin(cfg, n, &mut cells[j]))),
            CoreKind::InOrder => inorder.push((j, InorderMachine::begin(cfg, n, &mut cells[j]))),
        }
    }

    let t_sim = Instant::now();
    // Out-of-order machines: segment-outer, machine-inner — every
    // machine runs the same cache-resident record segment before the
    // column moves on, so the SoA streams come out of memory once per
    // column instead of once per machine. Machines run the segment in
    // pairs — two independent per-record dependency chains overlap on
    // the host core where one machine's chain (fetch → issue → retire)
    // is serial — with hot scalars register-resident for the whole
    // segment (`run_span_pair`).
    let mut lo = 0;
    while lo < n {
        let hi = (lo + SEG).min(n);
        let mut pairs = ooo.chunks_exact_mut(2);
        for pair in &mut pairs {
            let (a, b) = pair.split_at_mut(1);
            OooMachine::run_span_pair(&mut a[0].1, &mut b[0].1, dt, lo, hi);
        }
        for (_, machine) in pairs.into_remainder() {
            machine.run_span(dt, lo, hi);
        }
        lo = hi;
    }
    // In-order machines: whole-trace paired spans. Their per-machine
    // state is tiny (no rings or forwarding window), so segment
    // switches cost more than the record-stream reuse saves; the pair
    // interleaving still overlaps the two serial issue chains.
    let mut pairs = inorder.chunks_exact_mut(2);
    for pair in &mut pairs {
        let (a, b) = pair.split_at_mut(1);
        InorderMachine::run_span_pair(&mut a[0].1, &mut b[0].1, dt, 0, n);
    }
    for (_, machine) in pairs.into_remainder() {
        machine.run_span(dt, 0, n);
    }
    let sim_secs = t_sim.elapsed().as_secs_f64();
    m.column_simulate_us.record((sim_secs * 1e6) as u64);
    m.cells.add(configs.len() as u64);
    if sim_secs > 0.0 {
        m.cells_per_sec.set((configs.len() as f64 / sim_secs) as i64);
    }

    // Reassemble in the caller's config order.
    let mut out: Vec<Option<SimResult>> = (0..configs.len()).map(|_| None).collect();
    for (j, machine) in ooo {
        out[j] = Some(machine.finish(&mut cells[j]));
    }
    for (j, machine) in inorder {
        out[j] = Some(machine.finish(&mut cells[j]));
    }
    out.into_iter()
        .map(|r| r.expect("every config simulated"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::predefined_configs;
    use crate::simulate;
    use perfvec_isa::{Emulator, ProgramBuilder, Reg};

    fn mixed_trace() -> Trace {
        let mut b = ProgramBuilder::new();
        let buf = b.alloc_zeroed(1024);
        let (base, x, i) = (Reg::x(1), Reg::x(2), Reg::x(3));
        b.li(base, buf as i64);
        b.li(x, 7);
        b.li(i, 0);
        let top = b.label();
        let skip = b.fwd_label();
        b.muli(x, x, 1103515245);
        b.andi(Reg::x(4), x, 1015);
        b.st_idx(x, base, Reg::x(4), 8, 0, 8);
        b.ld_idx(Reg::x(5), base, Reg::x(4), 8, 0, 8);
        b.shri(Reg::x(6), x, 13);
        b.andi(Reg::x(6), Reg::x(6), 1);
        b.beq_imm(Reg::x(6), 0, skip);
        b.fence();
        b.bind(skip);
        b.addi(i, i, 1);
        b.blt_imm(i, 300, top);
        b.halt();
        let p = b.build();
        Emulator::new(&p).run(100_000).unwrap()
    }

    #[test]
    fn column_matches_per_cell_on_predefined_machines() {
        let t = mixed_trace();
        let configs = predefined_configs();
        let col = simulate_column(&t, &configs);
        assert_eq!(col.len(), configs.len());
        for (r, c) in col.iter().zip(&configs) {
            let cell = simulate(&t, c);
            assert!(
                r.bits_identical(&cell),
                "{}: lockstep diverged from per-cell ({:?} vs {:?})",
                c.name,
                r.stats,
                cell.stats
            );
        }
    }

    #[test]
    fn column_order_follows_config_order() {
        // Mixed kinds in an interleaved order: results must come back
        // in input order, not grouped by core kind.
        let t = mixed_trace();
        let pool = predefined_configs();
        let configs = vec![
            pool[4].clone(), // in-order
            pool[0].clone(), // ooo
            pool[5].clone(), // in-order
            pool[1].clone(), // ooo
        ];
        let col = simulate_column(&t, &configs);
        for (r, c) in col.iter().zip(&configs) {
            assert!(r.bits_identical(&simulate(&t, c)), "{}", c.name);
        }
    }

    #[test]
    fn empty_column_and_empty_config_list() {
        let t = mixed_trace();
        assert!(simulate_column(&t, &[]).is_empty());
    }

    #[test]
    fn repeated_columns_are_deterministic() {
        let t = mixed_trace();
        let configs = predefined_configs();
        let a = simulate_column(&t, &configs);
        let b = simulate_column(&t, &configs);
        for ((x, y), c) in a.iter().zip(&b).zip(&configs) {
            assert!(x.bits_identical(y), "{}", c.name);
        }
    }

    #[test]
    fn metrics_record_cells() {
        let t = mixed_trace();
        let before = metrics().cells.get();
        let _ = simulate_column(&t, &predefined_configs());
        assert!(metrics().cells.get() >= before + predefined_configs().len() as u64);
    }
}
