//! Branch direction predictors and the branch target buffer.

use crate::config::{BranchConfig, PredictorKind};

/// 2-bit saturating counter helpers.
#[inline]
fn counter_update(c: &mut u8, taken: bool) {
    if taken {
        *c = (*c + 1).min(3);
    } else {
        *c = c.saturating_sub(1);
    }
}

#[inline]
fn counter_taken(c: u8) -> bool {
    c >= 2
}

/// A direction predictor.
#[derive(Debug, Clone)]
pub enum Predictor {
    /// Always not-taken.
    StaticNotTaken,
    /// Backward taken, forward not taken.
    StaticBtfn,
    /// Per-pc table of 2-bit counters.
    Bimodal {
        /// Counter table.
        table: Vec<u8>,
        /// Index mask.
        mask: u64,
    },
    /// Global history xor pc.
    GShare {
        /// Counter table.
        table: Vec<u8>,
        /// Index mask.
        mask: u64,
        /// Global taken/not-taken shift register.
        history: u64,
        /// History mask.
        hist_mask: u64,
    },
    /// Bimodal and gshare with a per-pc chooser.
    Tournament {
        /// Bimodal component table.
        bimodal: Vec<u8>,
        /// GShare component table.
        gshare: Vec<u8>,
        /// Chooser: >=2 favours gshare.
        choice: Vec<u8>,
        /// Index mask.
        mask: u64,
        /// Global history register.
        history: u64,
        /// History mask.
        hist_mask: u64,
    },
}

impl Predictor {
    /// Build the predictor described by `cfg`.
    pub fn new(cfg: &BranchConfig) -> Predictor {
        let entries = 1usize << cfg.table_bits;
        let mask = entries as u64 - 1;
        let hist_mask = (1u64 << cfg.history_bits.min(63)) - 1;
        match cfg.kind {
            PredictorKind::StaticNotTaken => Predictor::StaticNotTaken,
            PredictorKind::StaticBtfn => Predictor::StaticBtfn,
            PredictorKind::Bimodal => Predictor::Bimodal {
                table: vec![1; entries],
                mask,
            },
            PredictorKind::GShare => Predictor::GShare {
                table: vec![1; entries],
                mask,
                history: 0,
                hist_mask,
            },
            PredictorKind::Tournament => Predictor::Tournament {
                bimodal: vec![1; entries],
                gshare: vec![1; entries],
                choice: vec![2; entries],
                mask,
                history: 0,
                hist_mask,
            },
        }
    }

    #[inline]
    fn pc_index(pc: u64, mask: u64) -> usize {
        ((pc >> 2) & mask) as usize
    }

    /// Predict the direction of the conditional branch at `pc` whose
    /// target is `target_pc` (used by the BTFN heuristic).
    pub fn predict(&self, pc: u64, target_pc: u64) -> bool {
        match self {
            Predictor::StaticNotTaken => false,
            Predictor::StaticBtfn => target_pc < pc,
            Predictor::Bimodal { table, mask } => counter_taken(table[Self::pc_index(pc, *mask)]),
            Predictor::GShare {
                table,
                mask,
                history,
                hist_mask,
            } => {
                let idx = (((pc >> 2) ^ (history & hist_mask)) & mask) as usize;
                counter_taken(table[idx])
            }
            Predictor::Tournament {
                bimodal,
                gshare,
                choice,
                mask,
                history,
                hist_mask,
            } => {
                let pci = Self::pc_index(pc, *mask);
                let gi = (((pc >> 2) ^ (history & hist_mask)) & mask) as usize;
                if counter_taken(choice[pci]) {
                    counter_taken(gshare[gi])
                } else {
                    counter_taken(bimodal[pci])
                }
            }
        }
    }

    /// Update predictor state with the resolved direction.
    pub fn update(&mut self, pc: u64, taken: bool) {
        match self {
            Predictor::StaticNotTaken | Predictor::StaticBtfn => {}
            Predictor::Bimodal { table, mask } => {
                counter_update(&mut table[Self::pc_index(pc, *mask)], taken);
            }
            Predictor::GShare {
                table,
                mask,
                history,
                hist_mask,
            } => {
                let idx = (((pc >> 2) ^ (*history & *hist_mask)) & *mask) as usize;
                counter_update(&mut table[idx], taken);
                *history = (*history << 1) | taken as u64;
            }
            Predictor::Tournament {
                bimodal,
                gshare,
                choice,
                mask,
                history,
                hist_mask,
            } => {
                let pci = Self::pc_index(pc, *mask);
                let gi = (((pc >> 2) ^ (*history & *hist_mask)) & *mask) as usize;
                let b_correct = counter_taken(bimodal[pci]) == taken;
                let g_correct = counter_taken(gshare[gi]) == taken;
                if b_correct != g_correct {
                    counter_update(&mut choice[pci], g_correct);
                }
                counter_update(&mut bimodal[pci], taken);
                counter_update(&mut gshare[gi], taken);
                *history = (*history << 1) | taken as u64;
            }
        }
    }
}

/// Direct-mapped branch target buffer.
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<(u64, u64)>, // (pc tag, target)
    mask: u64,
}

impl Btb {
    /// `entries` must be a power of two.
    pub fn new(entries: u32) -> Btb {
        let n = entries.next_power_of_two() as usize;
        Btb {
            entries: vec![(u64::MAX, 0); n],
            mask: n as u64 - 1,
        }
    }

    /// Predicted target for the branch at `pc`, if the BTB knows it.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        let e = &self.entries[((pc >> 2) & self.mask) as usize];
        (e.0 == pc).then_some(e.1)
    }

    /// Record the resolved target of the branch at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.entries[((pc >> 2) & self.mask) as usize] = (pc, target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(kind: PredictorKind) -> BranchConfig {
        BranchConfig {
            kind,
            table_bits: 10,
            history_bits: 8,
            btb_entries: 512,
        }
    }

    #[test]
    fn static_not_taken_never_predicts_taken() {
        let p = Predictor::new(&cfg(PredictorKind::StaticNotTaken));
        assert!(!p.predict(0x1000, 0x0800));
        assert!(!p.predict(0x1000, 0x2000));
    }

    #[test]
    fn btfn_predicts_backward_taken() {
        let p = Predictor::new(&cfg(PredictorKind::StaticBtfn));
        assert!(p.predict(0x1000, 0x0800)); // backward
        assert!(!p.predict(0x1000, 0x2000)); // forward
    }

    #[test]
    fn bimodal_learns_a_biased_branch() {
        let mut p = Predictor::new(&cfg(PredictorKind::Bimodal));
        for _ in 0..4 {
            p.update(0x40, true);
        }
        assert!(p.predict(0x40, 0));
        for _ in 0..4 {
            p.update(0x40, false);
        }
        assert!(!p.predict(0x40, 0));
    }

    #[test]
    fn gshare_learns_an_alternating_pattern() {
        let mut p = Predictor::new(&cfg(PredictorKind::GShare));
        // Warm up on strict alternation: taken, not-taken, ...
        let mut taken = true;
        for _ in 0..256 {
            p.update(0x80, taken);
            taken = !taken;
        }
        // After warmup, predictions should track the alternation.
        let mut correct = 0;
        for _ in 0..64 {
            if p.predict(0x80, 0) == taken {
                correct += 1;
            }
            p.update(0x80, taken);
            taken = !taken;
        }
        assert!(
            correct > 56,
            "gshare should master alternation, got {correct}/64"
        );
    }

    #[test]
    fn bimodal_cannot_learn_alternation() {
        let mut p = Predictor::new(&cfg(PredictorKind::Bimodal));
        let mut taken = true;
        let mut correct = 0;
        for i in 0..256 {
            if i >= 128 && p.predict(0x80, 0) == taken {
                correct += 1;
            }
            p.update(0x80, taken);
            taken = !taken;
        }
        assert!(
            correct <= 80,
            "bimodal should struggle with alternation, got {correct}/128"
        );
    }

    #[test]
    fn tournament_beats_both_components_on_mixed_stream() {
        let run = |kind| {
            let mut p = Predictor::new(&cfg(kind));
            let mut correct = 0u32;
            // Branch A: strongly biased taken. Branch B: alternating.
            let mut b = true;
            for i in 0..2048 {
                let (pc, taken) = if i % 2 == 0 {
                    (0x100u64, true)
                } else {
                    b = !b;
                    (0x204u64, b)
                };
                if i >= 1024 && p.predict(pc, 0) == taken {
                    correct += 1;
                }
                p.update(pc, taken);
            }
            correct
        };
        let t = run(PredictorKind::Tournament);
        let bm = run(PredictorKind::Bimodal);
        assert!(t >= bm, "tournament {t} should be at least bimodal {bm}");
        assert!(t > 960, "tournament should be near-perfect, got {t}/1024");
    }

    #[test]
    fn btb_remembers_targets() {
        let mut btb = Btb::new(16);
        assert_eq!(btb.lookup(0x1000), None);
        btb.update(0x1000, 0x2000);
        assert_eq!(btb.lookup(0x1000), Some(0x2000));
        // A colliding pc evicts.
        btb.update(0x1000 + 16 * 4, 0x3000);
        assert_eq!(btb.lookup(0x1000), None);
    }
}
