//! # perfvec-sim
//!
//! Trace-driven, cycle-level CPU timing simulation — the gem5 substitute
//! in this PerfVec reproduction.
//!
//! Given a microarchitecture-independent dynamic instruction trace from
//! [`perfvec_isa`], [`simulate`] replays it on a parameterised machine
//! ([`MicroArchConfig`]) and returns per-instruction **incremental
//! latencies** in 0.1 ns units ([`SimResult`]) — exactly the training
//! signal PerfVec's foundation model learns from.
//!
//! Two core models are provided (out-of-order with a ROB/LSQ, and a
//! scoreboarded in-order pipeline), on top of shared substrates: a
//! set-associative two-level cache hierarchy, four branch-predictor
//! families plus a BTB, functional-unit pools, and a bandwidth-limited
//! main memory in four technologies. [`sample::training_population`]
//! reproduces the paper's 77-machine dataset recipe.
//!
//! For grid generation — many machines over one trace —
//! [`simulate_column`] advances a whole machine column through the
//! trace in lockstep, amortizing the per-record walk across the column
//! while staying bit-identical per cell to [`simulate`] and to the
//! frozen [`reference`] oracle.
//!
//! ```
//! use perfvec_isa::{ProgramBuilder, Reg, Emulator};
//! use perfvec_sim::{simulate, sample::predefined_configs};
//!
//! let mut b = ProgramBuilder::new();
//! b.li(Reg::x(1), 0);
//! let top = b.label();
//! b.addi(Reg::x(1), Reg::x(1), 1);
//! b.blt_imm(Reg::x(1), 100, top);
//! b.halt();
//! let prog = b.build();
//! let trace = Emulator::new(&prog).run(10_000).unwrap();
//!
//! for cfg in predefined_configs() {
//!     let r = simulate(&trace, &cfg);
//!     assert!(r.total_tenths > 0.0);
//!     // Compositionality: incremental latencies sum to total time.
//!     assert!((r.sum_incremental() - r.total_tenths).abs() < 1e-5 * r.total_tenths);
//! }
//! ```

pub mod branch;
pub mod cache;
pub mod config;
pub mod fu;
pub mod inorder;
pub mod latency;
pub mod lockstep;
pub(crate) mod machine;
pub mod memsys;
pub mod ooo;
pub mod reference;
pub mod sample;

pub use cache::HitLevel;
pub use config::{CoreKind, MicroArchConfig};
pub use latency::{SimResult, SimStats};
pub use lockstep::simulate_column;

use perfvec_isa::Trace;

/// Simulate `trace` on `cfg`, dispatching to the configured core model.
pub fn simulate(trace: &Trace, cfg: &MicroArchConfig) -> SimResult {
    match cfg.core {
        CoreKind::OutOfOrder => ooo::simulate_ooo(trace, cfg),
        CoreKind::InOrder => inorder::simulate_inorder(trace, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfvec_isa::{Emulator, ProgramBuilder, Reg};

    #[test]
    fn dispatch_selects_core_model() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::x(1), 0);
        let top = b.label();
        b.addi(Reg::x(1), Reg::x(1), 1);
        b.blt_imm(Reg::x(1), 50, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p).run(10_000).unwrap();
        for cfg in sample::predefined_configs() {
            let r = simulate(&t, &cfg);
            assert_eq!(r.len(), t.len(), "{}", cfg.name);
            assert!(r.total_tenths > 0.0, "{}", cfg.name);
        }
    }

    #[test]
    fn same_trace_different_configs_different_times() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::x(1), 0);
        let top = b.label();
        b.muli(Reg::x(2), Reg::x(1), 17);
        b.addi(Reg::x(1), Reg::x(1), 1);
        b.blt_imm(Reg::x(1), 500, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p).run(10_000).unwrap();
        let times: Vec<f64> = sample::predefined_configs()
            .iter()
            .map(|c| simulate(&t, c).total_tenths)
            .collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!(
            max > 2.0 * min,
            "microarchitectures should differ: {times:?}"
        );
    }
}
