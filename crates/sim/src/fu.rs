//! Functional-unit pools and issue-port scheduling.
//!
//! Both core models schedule each instruction onto (a) a unit from the
//! pool matching its [`OpClass`] and (b) an issue port. Pools track the
//! cycle each unit becomes free; pipelined units free up one cycle after
//! issue, unpipelined units after their full latency.
//!
//! `issue` runs once per simulated instruction, so the unit and port
//! scans are the hottest scans in the simulator. Pools and ports are
//! stored as fixed [`FU_LANES`]-wide arrays padded with a sentinel, and
//! the earliest-free slot is found with a branchless packed-key
//! tournament ([`min_lanes`]) instead of a data-dependent compare-and-
//! branch loop whose branches are essentially random to the predictor.
//! Configurations wider than [`FU_LANES`] (none of the sampled or
//! predefined machines; possible by hand) fall back to a plain scan.

use crate::config::FuConfig;
use perfvec_isa::OpClass;

/// Widest supported fast-path pool / issue width. The sampled
/// population caps both at 8 (`sample_config`), as do the predefined
/// machines.
pub const FU_LANES: usize = 8;

/// Padding sentinel for unused lanes: larger than any reachable
/// busy-until cycle (a simulation would need ~10^18 cycles to reach
/// it), small enough that `value << LANE_BITS` cannot wrap.
const LANE_PAD: u64 = 1 << 60;

const LANE_BITS: u32 = 3;

/// The busy/free state of every functional unit plus the issue ports.
#[derive(Debug, Clone)]
pub struct FuState {
    /// `free_at[class][unit]` = next cycle the unit can accept an op;
    /// unused lanes hold [`LANE_PAD`].
    free_at: [[u64; FU_LANES]; OpClass::COUNT],
    /// One slot per issue-width lane; each issues one op per cycle.
    ports: [u64; FU_LANES],
    /// Latency per class.
    latency: [u64; OpClass::COUNT],
    /// Pipelined flag per class.
    pipelined: [bool; OpClass::COUNT],
    /// Unit count per class: single-unit pools (the common case on
    /// little cores) skip the lane tournament entirely.
    counts: [u8; OpClass::COUNT],
    /// Issue width, for the same single-port shortcut.
    width: u8,
    /// Fallback state for configs wider than [`FU_LANES`].
    slow: Option<Box<SlowFu>>,
}

/// Vec-backed fallback for hand-built configs exceeding [`FU_LANES`]
/// units or ports. Semantics identical to the fast path.
#[derive(Debug, Clone)]
struct SlowFu {
    free_at: [Vec<u64>; OpClass::COUNT],
    ports: Vec<u64>,
}

impl FuState {
    /// Build unit state from a configuration and an issue width.
    pub fn new(cfg: &FuConfig, issue_width: u8) -> FuState {
        let issue_width = issue_width.max(1) as usize;
        let mut latency = [1u64; OpClass::COUNT];
        let mut pipelined = [true; OpClass::COUNT];
        let mut counts = [1usize; OpClass::COUNT];
        for class in OpClass::ALL {
            let pool = cfg.pool_for(class);
            counts[class as usize] = pool.count.max(1) as usize;
            latency[class as usize] = pool.latency.max(1) as u64;
            pipelined[class as usize] = pool.pipelined;
        }

        let fits = issue_width <= FU_LANES && counts.iter().all(|&c| c <= FU_LANES);
        let slow = (!fits).then(|| {
            let mut free_at: [Vec<u64>; OpClass::COUNT] = Default::default();
            for (v, &c) in free_at.iter_mut().zip(&counts) {
                *v = vec![0u64; c];
            }
            Box::new(SlowFu {
                free_at,
                ports: vec![0u64; issue_width],
            })
        });

        let mut free_at = [[LANE_PAD; FU_LANES]; OpClass::COUNT];
        let mut ports = [LANE_PAD; FU_LANES];
        if fits {
            for (lanes, &c) in free_at.iter_mut().zip(&counts) {
                lanes[..c].fill(0);
            }
            ports[..issue_width].fill(0);
        }

        let mut byte_counts = [1u8; OpClass::COUNT];
        for (b, &c) in byte_counts.iter_mut().zip(&counts) {
            *b = c.min(FU_LANES) as u8;
        }
        FuState {
            free_at,
            ports,
            latency,
            pipelined,
            counts: byte_counts,
            width: issue_width.min(FU_LANES) as u8,
            slow,
        }
    }

    /// Execution latency for `class`.
    #[inline]
    pub fn latency(&self, class: OpClass) -> u64 {
        self.latency[class as usize]
    }

    /// Schedule an op of `class` that becomes ready at `ready`.
    ///
    /// Greedily picks the earliest-free unit and port; returns the issue
    /// cycle and books both resources. Selection order (first index of
    /// the minimum) is part of the bit-identity contract — do not
    /// reorder.
    #[inline]
    pub fn issue(&mut self, class: OpClass, ready: u64) -> u64 {
        if let Some(slow) = &mut self.slow {
            return slow.issue(class, ready, &self.latency, &self.pipelined);
        }
        let ci = class as usize;
        // Pools and widths of at most two — the norm on little cores —
        // need no 8-lane tournament: a min-of-two compiles to a single
        // conditional move, and unused second lanes hold [`LANE_PAD`]
        // so the same code covers one-unit pools. The branches are
        // per-class constants for a given config, so they predict
        // perfectly.
        let (ui, unit_free) = if self.counts[ci] <= 2 {
            min2(&self.free_at[ci])
        } else if self.counts[ci] <= 4 {
            min4(&self.free_at[ci])
        } else {
            min_lanes(&self.free_at[ci])
        };
        let (pi, port_free) = if self.width <= 2 {
            min2(&self.ports)
        } else if self.width <= 4 {
            min4(&self.ports)
        } else {
            min_lanes(&self.ports)
        };
        let start = ready.max(unit_free).max(port_free);
        debug_assert!(
            start + self.latency[ci] < LANE_PAD,
            "cycle count overflows lane packing"
        );
        self.ports[pi] = start + 1;
        self.free_at[ci][ui] = if self.pipelined[ci] {
            start + 1
        } else {
            start + self.latency[ci]
        };
        start
    }
}

impl SlowFu {
    fn issue(
        &mut self,
        class: OpClass,
        ready: u64,
        latency: &[u64; OpClass::COUNT],
        pipelined: &[bool; OpClass::COUNT],
    ) -> u64 {
        let ci = class as usize;
        let (ui, unit_free) = min_slot(&self.free_at[ci]);
        let (pi, port_free) = min_slot(&self.ports);
        let start = ready.max(unit_free).max(port_free);
        self.ports[pi] = start + 1;
        self.free_at[ci][ui] = if pipelined[ci] {
            start + 1
        } else {
            start + latency[ci]
        };
        start
    }
}

/// First index holding the minimum, branchlessly: each lane is packed
/// as `(value << LANE_BITS) | index`, so the u64 minimum of the packed
/// keys is the smallest value — ties resolved toward the smallest
/// index, exactly the first-of-minimum scan order the bit-identity
/// contract pins.
#[inline]
fn min_lanes(v: &[u64; FU_LANES]) -> (usize, u64) {
    let mut m = u64::MAX;
    for (i, &t) in v.iter().enumerate() {
        m = m.min((t << LANE_BITS) | i as u64);
    }
    ((m & (FU_LANES as u64 - 1)) as usize, m >> LANE_BITS)
}

/// First-of-minimum over the leading two lanes (ties go to lane 0,
/// like the full scan); lane 1 of a one-element pool holds
/// [`LANE_PAD`], so it never wins.
#[inline]
fn min2(v: &[u64; FU_LANES]) -> (usize, u64) {
    if v[1] < v[0] {
        (1, v[1])
    } else {
        (0, v[0])
    }
}

/// Packed-key first-of-minimum over the leading four lanes.
#[inline]
fn min4(v: &[u64; FU_LANES]) -> (usize, u64) {
    let mut m = v[0] << LANE_BITS;
    m = m.min((v[1] << LANE_BITS) | 1);
    m = m.min((v[2] << LANE_BITS) | 2);
    m = m.min((v[3] << LANE_BITS) | 3);
    ((m & (FU_LANES as u64 - 1)) as usize, m >> LANE_BITS)
}

fn min_slot(v: &[u64]) -> (usize, u64) {
    let mut best = (0usize, u64::MAX);
    for (i, &t) in v.iter().enumerate() {
        if t < best.1 {
            best = (i, t);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::predefined_configs;

    fn state() -> FuState {
        let cfg = predefined_configs()[0].fus;
        FuState::new(&cfg, 2)
    }

    #[test]
    fn ready_time_is_respected() {
        let mut s = state();
        assert_eq!(s.issue(OpClass::IntAlu, 10), 10);
    }

    #[test]
    fn issue_ports_limit_throughput() {
        let mut s = state(); // issue width 2
        let a = s.issue(OpClass::IntAlu, 0);
        let b = s.issue(OpClass::IntAlu, 0);
        let c = s.issue(OpClass::FpAlu, 0);
        assert_eq!((a, b), (0, 0));
        assert_eq!(c, 1, "third op in the same cycle must wait for a port");
    }

    #[test]
    fn unpipelined_divider_blocks_back_to_back_ops() {
        let cfg = predefined_configs()[0].fus;
        let mut s = FuState::new(&cfg, 8);
        let lat = s.latency(OpClass::IntDiv);
        assert!(lat > 1);
        let n_units = cfg.int_div.count as u64;
        let a = s.issue(OpClass::IntDiv, 0);
        // Saturate every divider, then one more: it must wait a full latency.
        let mut last = a;
        for _ in 1..=n_units {
            last = s.issue(OpClass::IntDiv, 0);
        }
        assert!(last >= lat, "divide should serialize on unpipelined units");
    }

    #[test]
    fn pipelined_units_accept_one_per_cycle() {
        let cfg = predefined_configs()[0].fus;
        let mut s = FuState::new(&cfg, 8);
        let n = cfg.int_alu.count as u64;
        let mut starts = Vec::new();
        for _ in 0..2 * n {
            starts.push(s.issue(OpClass::IntAlu, 0));
        }
        // With n pipelined ALUs, 2n ops fit in 2 cycles (port permitting).
        assert!(starts.iter().all(|&t| t <= 2));
    }

    /// A hand-built config wider than the fast path's lane count must
    /// behave identically through the fallback.
    #[test]
    fn wide_configs_fall_back_with_identical_semantics() {
        let mut cfg = predefined_configs()[0].fus;
        cfg.int_alu.count = 12;
        let mut wide = FuState::new(&cfg, 16);
        assert!(wide.slow.is_some());
        // 16 ALU ops at once: 12 units but 16 ports -> 12 in cycle 0.
        let starts: Vec<u64> = (0..16).map(|_| wide.issue(OpClass::IntAlu, 0)).collect();
        assert_eq!(starts.iter().filter(|&&s| s == 0).count(), 12);
        assert_eq!(starts.iter().filter(|&&s| s == 1).count(), 4);
    }

    /// The packed-key scan must pick the first index among tied minima,
    /// like the reference scan.
    #[test]
    fn min_lanes_breaks_ties_toward_first_index() {
        let v = [5u64, 3, 3, 9, 3, LANE_PAD, LANE_PAD, LANE_PAD];
        assert_eq!(min_lanes(&v), (1, 3));
        let w = [7u64; FU_LANES];
        assert_eq!(min_lanes(&w), (0, 7));
    }
}
