//! Functional-unit pools and issue-port scheduling.
//!
//! Both core models schedule each instruction onto (a) a unit from the
//! pool matching its [`OpClass`] and (b) an issue port. Pools track the
//! cycle each unit becomes free; pipelined units free up one cycle after
//! issue, unpipelined units after their full latency.

use crate::config::FuConfig;
use perfvec_isa::OpClass;

/// The busy/free state of every functional unit plus the issue ports.
#[derive(Debug, Clone)]
pub struct FuState {
    /// `free_at[class][unit]` = next cycle the unit can accept an op.
    free_at: [Vec<u64>; OpClass::COUNT],
    /// Latency per class.
    latency: [u64; OpClass::COUNT],
    /// Pipelined flag per class.
    pipelined: [bool; OpClass::COUNT],
    /// One slot per issue-width lane; each issues one op per cycle.
    ports: Vec<u64>,
}

impl FuState {
    /// Build unit state from a configuration and an issue width.
    pub fn new(cfg: &FuConfig, issue_width: u8) -> FuState {
        let mut free_at: [Vec<u64>; OpClass::COUNT] = Default::default();
        let mut latency = [1u64; OpClass::COUNT];
        let mut pipelined = [true; OpClass::COUNT];
        for class in OpClass::ALL {
            let pool = cfg.pool_for(class);
            free_at[class as usize] = vec![0u64; pool.count.max(1) as usize];
            latency[class as usize] = pool.latency.max(1) as u64;
            pipelined[class as usize] = pool.pipelined;
        }
        FuState { free_at, latency, pipelined, ports: vec![0u64; issue_width.max(1) as usize] }
    }

    /// Execution latency for `class`.
    #[inline]
    pub fn latency(&self, class: OpClass) -> u64 {
        self.latency[class as usize]
    }

    /// Schedule an op of `class` that becomes ready at `ready`.
    ///
    /// Greedily picks the earliest-free unit and port; returns the issue
    /// cycle and books both resources.
    pub fn issue(&mut self, class: OpClass, ready: u64) -> u64 {
        let ci = class as usize;
        let (ui, unit_free) = min_slot(&self.free_at[ci]);
        let (pi, port_free) = min_slot(&self.ports);
        let start = ready.max(unit_free).max(port_free);
        self.ports[pi] = start + 1;
        self.free_at[ci][ui] =
            if self.pipelined[ci] { start + 1 } else { start + self.latency[ci] };
        start
    }
}

#[inline]
fn min_slot(v: &[u64]) -> (usize, u64) {
    let mut best = (0usize, u64::MAX);
    for (i, &t) in v.iter().enumerate() {
        if t < best.1 {
            best = (i, t);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::predefined_configs;

    fn state() -> FuState {
        let cfg = predefined_configs()[0].fus;
        FuState::new(&cfg, 2)
    }

    #[test]
    fn ready_time_is_respected() {
        let mut s = state();
        assert_eq!(s.issue(OpClass::IntAlu, 10), 10);
    }

    #[test]
    fn issue_ports_limit_throughput() {
        let mut s = state(); // issue width 2
        let a = s.issue(OpClass::IntAlu, 0);
        let b = s.issue(OpClass::IntAlu, 0);
        let c = s.issue(OpClass::FpAlu, 0);
        assert_eq!((a, b), (0, 0));
        assert_eq!(c, 1, "third op in the same cycle must wait for a port");
    }

    #[test]
    fn unpipelined_divider_blocks_back_to_back_ops() {
        let cfg = predefined_configs()[0].fus;
        let mut s = FuState::new(&cfg, 8);
        let lat = s.latency(OpClass::IntDiv);
        assert!(lat > 1);
        let n_units = cfg.int_div.count as u64;
        let a = s.issue(OpClass::IntDiv, 0);
        // Saturate every divider, then one more: it must wait a full latency.
        let mut last = a;
        for _ in 1..=n_units {
            last = s.issue(OpClass::IntDiv, 0);
        }
        assert!(last >= lat, "divide should serialize on unpipelined units");
    }

    #[test]
    fn pipelined_units_accept_one_per_cycle() {
        let cfg = predefined_configs()[0].fus;
        let mut s = FuState::new(&cfg, 8);
        let n = cfg.int_alu.count as u64;
        let mut starts = Vec::new();
        for _ in 0..2 * n {
            starts.push(s.issue(OpClass::IntAlu, 0));
        }
        // With n pipelined ALUs, 2n ops fit in 2 cycles (port permitting).
        assert!(starts.iter().all(|&t| t <= 2));
    }
}
