//! Reference simulator: the pre-flattening implementation, kept as the
//! bit-identity oracle for the dense-array kernels.
//!
//! This module preserves the original data-structure choices on
//! purpose — per-way `(tag, last_use)` tuple scans with division/modulo
//! set indexing in the cache, a `HashMap` store-forwarding table,
//! branchy compare-and-swap minimum scans in the functional-unit
//! scheduler, a float `ceil()` on every main-memory access, fresh `Vec`
//! allocations per call, and per-record reads of the full
//! [`perfvec_isa::Inst`] — so that `sim_bench` and the property tests
//! can prove the optimised kernels in [`crate::ooo`], [`crate::inorder`],
//! [`crate::cache`], and [`crate::fu`] produce **bit-identical**
//! [`SimResult`]s while being much faster. The only semantic departure
//! from the seed is the store-forwarding *window*: entries here carry a
//! store sequence number, forwarding is limited to the youngest `sq`
//! stores, and the table is cleared at memory barriers — the
//! architecturally correct behaviour both implementations now share
//! (the seed let entries outlive the store queue and survive fences).
//!
//! Do not optimise this module. Its slowness is its job.

use crate::branch::{Btb, Predictor};
use crate::cache::{CacheStats, HitLevel};
use crate::config::{CacheConfig, CoreKind, FuConfig, MicroArchConfig};
use crate::latency::{RetireTracker, SimResult, SimStats};
use perfvec_isa::{OpClass, Reg, Trace};
use std::collections::HashMap;

/// Seed-structure functional-unit state: `Vec`-backed pools and ports,
/// earliest-free slot found by a branchy first-of-minimum scan.
#[derive(Debug, Clone)]
struct RefFuState {
    free_at: [Vec<u64>; OpClass::COUNT],
    latency: [u64; OpClass::COUNT],
    pipelined: [bool; OpClass::COUNT],
    ports: Vec<u64>,
}

impl RefFuState {
    fn new(cfg: &FuConfig, issue_width: u8) -> RefFuState {
        let mut free_at: [Vec<u64>; OpClass::COUNT] = Default::default();
        let mut latency = [1u64; OpClass::COUNT];
        let mut pipelined = [true; OpClass::COUNT];
        for class in OpClass::ALL {
            let pool = cfg.pool_for(class);
            free_at[class as usize] = vec![0u64; pool.count.max(1) as usize];
            latency[class as usize] = pool.latency.max(1) as u64;
            pipelined[class as usize] = pool.pipelined;
        }
        RefFuState {
            free_at,
            latency,
            pipelined,
            ports: vec![0u64; issue_width.max(1) as usize],
        }
    }

    fn latency(&self, class: OpClass) -> u64 {
        self.latency[class as usize]
    }

    fn issue(&mut self, class: OpClass, ready: u64) -> u64 {
        let ci = class as usize;
        let (ui, unit_free) = ref_min_slot(&self.free_at[ci]);
        let (pi, port_free) = ref_min_slot(&self.ports);
        let start = ready.max(unit_free).max(port_free);
        self.ports[pi] = start + 1;
        self.free_at[ci][ui] = if self.pipelined[ci] {
            start + 1
        } else {
            start + self.latency[ci]
        };
        start
    }
}

fn ref_min_slot(v: &[u64]) -> (usize, u64) {
    let mut best = (0usize, u64::MAX);
    for (i, &t) in v.iter().enumerate() {
        if t < best.1 {
            best = (i, t);
        }
    }
    best
}

/// Seed-structure main memory: same queueing model as
/// [`crate::memsys::MainMemory`], with the per-access
/// `transfer_cycles.ceil()` the seed computed on every line fill
/// (numerically identical to the precomputed value the optimised path
/// adds).
#[derive(Debug, Clone)]
struct RefMainMemory {
    latency_cycles: u64,
    transfer_cycles: f64,
    busy_until: f64,
}

impl RefMainMemory {
    const LINE_BYTES: f64 = 64.0;

    fn new(cfg: crate::config::MemConfig, freq_ghz: f64) -> RefMainMemory {
        let latency_cycles = (cfg.latency_ns * freq_ghz).round().max(1.0) as u64;
        let transfer_cycles = Self::LINE_BYTES / cfg.bandwidth_gbps * freq_ghz;
        RefMainMemory {
            latency_cycles,
            transfer_cycles,
            busy_until: 0.0,
        }
    }

    fn access(&mut self, now: u64) -> u64 {
        let start = self.busy_until.max(now as f64);
        let queue = (start - now as f64) as u64;
        self.busy_until = start + self.transfer_cycles;
        queue + self.latency_cycles + self.transfer_cycles.ceil() as u64
    }
}

/// Simulate `trace` on `cfg` with the reference implementation,
/// dispatching on the configured core kind exactly like
/// [`crate::simulate`].
pub fn simulate_reference(trace: &Trace, cfg: &MicroArchConfig) -> SimResult {
    match cfg.core {
        CoreKind::OutOfOrder => simulate_ooo_reference(trace, cfg),
        CoreKind::InOrder => simulate_inorder_reference(trace, cfg),
    }
}

/// Seed-structure set-associative LRU cache: one `(tag, last_use)`
/// tuple per way, `%`/`/` set indexing.
#[derive(Debug, Clone)]
struct RefCache {
    sets: Vec<(u64, u64)>,
    assoc: usize,
    num_sets: u64,
    line_shift: u32,
    tick: u64,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> RefCache {
        let num_sets = cfg.num_sets();
        let assoc = cfg.assoc as usize;
        RefCache {
            sets: vec![(u64::MAX, 0); (num_sets as usize) * assoc],
            assoc,
            num_sets,
            line_shift: cfg.line_bytes.trailing_zeros(),
            tick: 0,
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line % self.num_sets) as usize;
        set * self.assoc..(set + 1) * self.assoc
    }

    fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line = self.line_of(addr);
        let tag = line / self.num_sets;
        let range = self.set_range(line);
        for w in &mut self.sets[range] {
            if w.0 == tag {
                w.1 = self.tick;
                return true;
            }
        }
        false
    }

    fn fill(&mut self, addr: u64) -> Option<u64> {
        self.tick += 1;
        let line = self.line_of(addr);
        let tag = line / self.num_sets;
        let set = line % self.num_sets;
        let range = self.set_range(line);
        let tick = self.tick;
        let ways = &mut self.sets[range];
        if let Some(w) = ways.iter_mut().find(|w| w.0 == tag) {
            w.1 = tick;
            return None;
        }
        if let Some(w) = ways.iter_mut().find(|w| w.0 == u64::MAX) {
            *w = (tag, tick);
            return None;
        }
        let victim = ways.iter_mut().min_by_key(|w| w.1).expect("assoc >= 1");
        let evicted_line = victim.0 * self.num_sets + set;
        *victim = (tag, tick);
        Some(evicted_line)
    }

    fn invalidate(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let tag = line / self.num_sets;
        let range = self.set_range(line);
        for w in &mut self.sets[range] {
            if w.0 == tag {
                *w = (u64::MAX, 0);
                return true;
            }
        }
        false
    }

    fn fill_line(&mut self, line: u64) -> Option<u64> {
        self.fill(line << self.line_shift)
    }
}

/// Seed-structure hierarchy over [`RefCache`]s; mirrors
/// [`crate::cache::Hierarchy`] access-for-access, backed by the
/// seed-structure [`RefMainMemory`].
struct RefHierarchy {
    l1i: RefCache,
    l1d: RefCache,
    l2: RefCache,
    exclusive: bool,
    mem: RefMainMemory,
    l1i_lat: u64,
    l1d_lat: u64,
    l2_lat: u64,
    stats: CacheStats,
}

impl RefHierarchy {
    fn new(cfg: &MicroArchConfig) -> RefHierarchy {
        RefHierarchy {
            l1i_lat: cfg.l1i.latency as u64,
            l1d_lat: cfg.l1d.latency as u64,
            l2_lat: cfg.l2.latency as u64,
            l1i: RefCache::new(cfg.l1i),
            l1d: RefCache::new(cfg.l1d),
            l2: RefCache::new(cfg.l2),
            exclusive: cfg.l2_exclusive,
            mem: RefMainMemory::new(cfg.mem, cfg.freq_ghz),
            stats: CacheStats::default(),
        }
    }

    fn access_l2_then_mem(
        &mut self,
        addr: u64,
        now: u64,
        l1_victim: Option<u64>,
    ) -> (u64, HitLevel) {
        let mut lat = 0;
        let level;
        if self.l2.access(addr) {
            lat += self.l2_lat;
            level = HitLevel::L2;
            if self.exclusive {
                self.l2.invalidate(addr);
            }
        } else {
            self.stats.l2_misses += 1;
            lat += self.l2_lat + self.mem.access(now + lat);
            level = HitLevel::Mem;
            if !self.exclusive {
                self.l2.fill(addr);
            }
        }
        if self.exclusive {
            if let Some(line) = l1_victim {
                self.l2.fill_line(line);
            }
        }
        (lat, level)
    }

    fn access_ifetch(&mut self, pc: u64, now: u64) -> (u64, HitLevel) {
        self.stats.ifetch_accesses += 1;
        if self.l1i.access(pc) {
            return (self.l1i_lat, HitLevel::L1);
        }
        self.stats.l1i_misses += 1;
        let victim = self.l1i.fill(pc);
        let (lat, level) = self.access_l2_then_mem(pc, now, victim);
        (self.l1i_lat + lat, level)
    }

    fn access_data(&mut self, addr: u64, now: u64) -> (u64, HitLevel) {
        self.stats.data_accesses += 1;
        if self.l1d.access(addr) {
            return (self.l1d_lat, HitLevel::L1);
        }
        self.stats.l1d_misses += 1;
        let victim = self.l1d.fill(addr);
        let (lat, level) = self.access_l2_then_mem(addr, now, victim);
        (self.l1d_lat + lat, level)
    }
}

const OOO_TAKEN_REDIRECT_BUBBLE: u64 = 1;
const OOO_BTB_MISS_BUBBLE: u64 = 3;

fn simulate_ooo_reference(trace: &Trace, cfg: &MicroArchConfig) -> SimResult {
    let n = trace.len();
    let mut hier = RefHierarchy::new(cfg);
    let mut pred = Predictor::new(&cfg.branch);
    let mut btb = Btb::new(cfg.branch.btb_entries);
    let mut fus = RefFuState::new(&cfg.fus, cfg.issue_width);
    let mut retire = RetireTracker::new(cfg.retire_width);

    let mut reg_ready = [0u64; Reg::NUM_FLAT];
    let mut retire_cycles = vec![0u64; n];
    let mut mem_level = vec![HitLevel::None; n];
    let mut mispredicted = vec![false; n];

    let mut fetch_cycle = 0u64;
    let mut fetched_in_cycle = 0u8;
    let mut cur_line = u64::MAX;
    let front = cfg.front_depth as u64;

    let rob = cfg.rob_size.max(8) as usize;
    let mut rob_ring = vec![0u64; rob];
    let lq = cfg.lq_size.max(4) as usize;
    let mut lq_ring = vec![0u64; lq];
    let mut loads_seen = 0usize;
    let sq = cfg.sq_size.max(4) as usize;
    let mut sq_ring = vec![0u64; sq];
    let mut stores_seen = 0usize;

    // Store-to-load forwarding: 8-byte block -> (data-ready cycle, store
    // sequence number). The sequence number bounds forwarding to the
    // youngest `sq` stores; barriers clear the table.
    let mut store_fwd: HashMap<u64, (u64, usize)> = HashMap::new();
    let mut mem_barrier = 0u64;
    let mut max_mem_complete = 0u64;

    let mut stats = SimStats::default();

    for i in 0..n {
        let rec = &trace.records[i];
        let inst = &trace.program.insts[rec.sidx as usize];
        let class = inst.op.class();
        let pc = rec.pc();

        // ---- fetch ----
        let line = pc >> 6;
        if line != cur_line {
            let (lat, lvl) = hier.access_ifetch(pc, fetch_cycle);
            if lvl != HitLevel::L1 {
                fetch_cycle += lat;
                fetched_in_cycle = 0;
            }
            cur_line = line;
        }
        if fetched_in_cycle >= cfg.fetch_width {
            fetch_cycle += 1;
            fetched_in_cycle = 0;
        }
        let my_fetch = fetch_cycle;
        fetched_in_cycle += 1;

        // ---- dispatch ----
        let mut disp = my_fetch + front;
        let rob_slot = i % rob;
        if i >= rob {
            disp = disp.max(rob_ring[rob_slot] + 1);
        }
        if inst.op.is_load() {
            let slot = loads_seen % lq;
            if loads_seen >= lq {
                disp = disp.max(lq_ring[slot] + 1);
            }
            loads_seen += 1;
        } else if inst.op.is_store() {
            let slot = stores_seen % sq;
            if stores_seen >= sq {
                disp = disp.max(sq_ring[slot] + 1);
            }
            stores_seen += 1;
        }

        // ---- source readiness ----
        let mut ready = disp;
        for s in inst.srcs() {
            ready = ready.max(reg_ready[s.flat_id()]);
        }
        if inst.op.is_mem() {
            ready = ready.max(mem_barrier);
        }
        if inst.op.is_barrier() {
            ready = ready.max(max_mem_complete);
        }

        // ---- issue + execute ----
        let start = fus.issue(class, ready);
        let mut complete = start + fus.latency(class);
        if inst.op.is_load() {
            let (lat, lvl) = hier.access_data(rec.addr, start);
            mem_level[i] = lvl;
            complete = start + lat;
            if let Some(&(st_ready, seq)) = store_fwd.get(&(rec.addr >> 3)) {
                // Only stores still inside the store-queue window may
                // forward; older ones have drained to the cache.
                if seq + sq > stores_seen && st_ready + 1 > start && st_ready + 1 < complete {
                    complete = st_ready + 1;
                }
            }
        } else if inst.op.is_store() {
            let (_, lvl) = hier.access_data(rec.addr, start);
            mem_level[i] = lvl;
            complete = start + 1;
            store_fwd.insert(rec.addr >> 3, (complete, stores_seen));
            if store_fwd.len() > 16_384 {
                store_fwd.retain(|_, &mut (_, seq)| seq + sq > stores_seen);
            }
        }
        if inst.op.is_mem() {
            max_mem_complete = max_mem_complete.max(complete);
        }
        if inst.op.is_barrier() {
            mem_barrier = complete;
            // A fence drains the store queue: nothing before it forwards.
            store_fwd.clear();
        }
        for d in inst.dsts() {
            reg_ready[d.flat_id()] = complete;
        }

        // ---- control flow ----
        if inst.op.is_branch() {
            stats.branches += 1;
            let actual_target = rec.next_pc();
            let mispred;
            let mut bubble = 0u64;
            if inst.op.is_cond_branch() {
                let static_target = perfvec_isa::CODE_BASE
                    + inst.target.unwrap_or(0) as u64 * perfvec_isa::INST_BYTES;
                let pred_taken = pred.predict(pc, static_target);
                mispred = pred_taken != rec.taken;
                if !mispred && rec.taken {
                    bubble = if btb.lookup(pc).is_some() {
                        OOO_TAKEN_REDIRECT_BUBBLE
                    } else {
                        OOO_BTB_MISS_BUBBLE
                    };
                }
                pred.update(pc, rec.taken);
            } else if inst.op.is_indirect_branch() {
                mispred = btb.lookup(pc) != Some(actual_target);
            } else {
                mispred = false;
                bubble = if btb.lookup(pc).is_some() {
                    OOO_TAKEN_REDIRECT_BUBBLE
                } else {
                    OOO_BTB_MISS_BUBBLE
                };
            }
            if rec.taken {
                btb.update(pc, actual_target);
            }
            if mispred {
                stats.mispredicts += 1;
                mispredicted[i] = true;
                fetch_cycle = complete + 1;
                fetched_in_cycle = 0;
                cur_line = u64::MAX;
            } else if rec.taken {
                fetch_cycle = my_fetch + bubble;
                fetched_in_cycle = 0;
                cur_line = u64::MAX;
            }
        }

        // ---- retire ----
        let r = retire.schedule(complete);
        retire_cycles[i] = r;
        rob_ring[rob_slot] = r;
        if inst.op.is_load() {
            lq_ring[(loads_seen - 1) % lq] = r;
        } else if inst.op.is_store() {
            sq_ring[(stores_seen - 1) % sq] = r;
        }
    }

    let cs = hier.stats;
    stats.l1i_misses = cs.l1i_misses;
    stats.l1d_misses = cs.l1d_misses;
    stats.l2_misses = cs.l2_misses;
    stats.ifetch_accesses = cs.ifetch_accesses;
    stats.data_accesses = cs.data_accesses;

    SimResult::from_retire_cycles(
        &retire_cycles,
        cfg.cycle_tenths_ns(),
        mem_level,
        mispredicted,
        stats,
    )
}

const IO_TAKEN_REDIRECT_BUBBLE: u64 = 1;
const IO_BTB_MISS_BUBBLE: u64 = 2;

fn simulate_inorder_reference(trace: &Trace, cfg: &MicroArchConfig) -> SimResult {
    let n = trace.len();
    let mut hier = RefHierarchy::new(cfg);
    let mut pred = Predictor::new(&cfg.branch);
    let mut btb = Btb::new(cfg.branch.btb_entries);
    let mut fus = RefFuState::new(&cfg.fus, cfg.issue_width);
    let mut retire = RetireTracker::new(cfg.retire_width);

    let mut reg_ready = [0u64; Reg::NUM_FLAT];
    let mut retire_cycles = vec![0u64; n];
    let mut mem_level = vec![HitLevel::None; n];
    let mut mispredicted = vec![false; n];

    let mut fetch_cycle = 0u64;
    let mut fetched_in_cycle = 0u8;
    let mut cur_line = u64::MAX;
    let front = cfg.front_depth as u64;

    let mut last_issue = 0u64;
    let mut mem_barrier = 0u64;
    let mut max_mem_complete = 0u64;

    let mut stats = SimStats::default();

    for i in 0..n {
        let rec = &trace.records[i];
        let inst = &trace.program.insts[rec.sidx as usize];
        let class = inst.op.class();
        let pc = rec.pc();

        // ---- fetch ----
        let line = pc >> 6;
        if line != cur_line {
            let (lat, lvl) = hier.access_ifetch(pc, fetch_cycle);
            if lvl != HitLevel::L1 {
                fetch_cycle += lat;
                fetched_in_cycle = 0;
            }
            cur_line = line;
        }
        if fetched_in_cycle >= cfg.fetch_width {
            fetch_cycle += 1;
            fetched_in_cycle = 0;
        }
        let my_fetch = fetch_cycle;
        fetched_in_cycle += 1;

        // ---- issue ----
        let mut ready = (my_fetch + front).max(last_issue);
        for s in inst.srcs() {
            ready = ready.max(reg_ready[s.flat_id()]);
        }
        if inst.op.is_mem() {
            ready = ready.max(mem_barrier);
        }
        if inst.op.is_barrier() {
            ready = ready.max(max_mem_complete);
        }
        let start = fus.issue(class, ready);
        last_issue = start;

        // ---- execute ----
        let mut complete = start + fus.latency(class);
        if inst.op.is_load() {
            let (lat, lvl) = hier.access_data(rec.addr, start);
            mem_level[i] = lvl;
            complete = start + lat;
        } else if inst.op.is_store() {
            let (_, lvl) = hier.access_data(rec.addr, start);
            mem_level[i] = lvl;
            complete = start + 1;
        }
        if inst.op.is_mem() {
            max_mem_complete = max_mem_complete.max(complete);
        }
        if inst.op.is_barrier() {
            mem_barrier = complete;
        }
        for d in inst.dsts() {
            reg_ready[d.flat_id()] = complete;
        }

        // ---- control flow ----
        if inst.op.is_branch() {
            stats.branches += 1;
            let actual_target = rec.next_pc();
            let mispred;
            let mut bubble = 0u64;
            if inst.op.is_cond_branch() {
                let static_target = perfvec_isa::CODE_BASE
                    + inst.target.unwrap_or(0) as u64 * perfvec_isa::INST_BYTES;
                let pred_taken = pred.predict(pc, static_target);
                mispred = pred_taken != rec.taken;
                if !mispred && rec.taken {
                    bubble = if btb.lookup(pc).is_some() {
                        IO_TAKEN_REDIRECT_BUBBLE
                    } else {
                        IO_BTB_MISS_BUBBLE
                    };
                }
                pred.update(pc, rec.taken);
            } else if inst.op.is_indirect_branch() {
                mispred = btb.lookup(pc) != Some(actual_target);
            } else {
                mispred = false;
                bubble = if btb.lookup(pc).is_some() {
                    IO_TAKEN_REDIRECT_BUBBLE
                } else {
                    IO_BTB_MISS_BUBBLE
                };
            }
            if rec.taken {
                btb.update(pc, actual_target);
            }
            if mispred {
                stats.mispredicts += 1;
                mispredicted[i] = true;
                fetch_cycle = complete + 1;
                fetched_in_cycle = 0;
                cur_line = u64::MAX;
            } else if rec.taken {
                fetch_cycle = my_fetch + bubble;
                fetched_in_cycle = 0;
                cur_line = u64::MAX;
            }
        }

        // ---- retire ----
        retire_cycles[i] = retire.schedule(complete);
    }

    let cs = hier.stats;
    stats.l1i_misses = cs.l1i_misses;
    stats.l1d_misses = cs.l1d_misses;
    stats.l2_misses = cs.l2_misses;
    stats.ifetch_accesses = cs.ifetch_accesses;
    stats.data_accesses = cs.data_accesses;

    SimResult::from_retire_cycles(
        &retire_cycles,
        cfg.cycle_tenths_ns(),
        mem_level,
        mispredicted,
        stats,
    )
}
