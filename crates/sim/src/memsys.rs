//! Main-memory timing model.
//!
//! Latency + bandwidth model: every line fill pays the technology's idle
//! latency, and back-to-back fills additionally queue behind a
//! bandwidth-limited channel. All times are in *core* cycles; the model
//! is constructed with the core frequency so the same `MemConfig` yields
//! different cycle counts on differently clocked cores (as in gem5).

use crate::config::MemConfig;

/// Bandwidth-limited main memory.
#[derive(Debug, Clone)]
pub struct MainMemory {
    /// Idle access latency in core cycles.
    latency_cycles: u64,
    /// Channel occupancy per 64-byte line transfer, in core cycles.
    transfer_cycles: f64,
    /// `transfer_cycles.ceil()` precomputed — it is added on every
    /// access, and `ceil` + cast is not free in the hot loop.
    transfer_ceil: u64,
    /// Cycle at which the channel becomes free.
    busy_until: f64,
    /// Number of accesses serviced.
    accesses: u64,
    /// Total queueing delay accumulated (cycles).
    queue_delay: u64,
}

impl MainMemory {
    /// Line size assumed for bandwidth accounting.
    pub const LINE_BYTES: f64 = 64.0;

    /// Build a memory model for a core running at `freq_ghz`.
    pub fn new(cfg: MemConfig, freq_ghz: f64) -> MainMemory {
        let latency_cycles = (cfg.latency_ns * freq_ghz).round().max(1.0) as u64;
        // bytes/ns = bandwidth_gbps; cycles per line = bytes / (bytes/ns) * cycles/ns
        let transfer_cycles = Self::LINE_BYTES / cfg.bandwidth_gbps * freq_ghz;
        MainMemory {
            latency_cycles,
            transfer_cycles,
            transfer_ceil: transfer_cycles.ceil() as u64,
            busy_until: 0.0,
            accesses: 0,
            queue_delay: 0,
        }
    }

    /// Service a line fill issued at cycle `now`; returns its total
    /// latency in cycles (queueing + idle latency + transfer).
    #[inline]
    pub fn access(&mut self, now: u64) -> u64 {
        self.accesses += 1;
        let start = self.busy_until.max(now as f64);
        let queue = (start - now as f64) as u64;
        self.queue_delay += queue;
        self.busy_until = start + self.transfer_cycles;
        queue + self.latency_cycles + self.transfer_ceil
    }

    /// Idle latency in core cycles.
    pub fn latency_cycles(&self) -> u64 {
        self.latency_cycles
    }

    /// (accesses, total queueing delay in cycles).
    pub fn stats(&self) -> (u64, u64) {
        (self.accesses, self.queue_delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemKind;

    #[test]
    fn latency_scales_with_core_frequency() {
        let cfg = MemConfig::typical(MemKind::Ddr4);
        let slow = MainMemory::new(cfg, 1.0);
        let fast = MainMemory::new(cfg, 4.0);
        assert_eq!(fast.latency_cycles(), 4 * slow.latency_cycles());
    }

    #[test]
    fn isolated_access_pays_idle_latency() {
        let mut m = MainMemory::new(MemConfig::typical(MemKind::Ddr4), 2.0);
        let lat = m.access(1000);
        assert!(lat >= m.latency_cycles());
        // No queueing on the first access.
        assert_eq!(m.stats().1, 0);
    }

    #[test]
    fn burst_accesses_queue_behind_bandwidth() {
        let mut m = MainMemory::new(MemConfig::typical(MemKind::Ddr4), 2.0);
        let first = m.access(0);
        // Hammer the channel in the same cycle: later fills must queue.
        let mut last = first;
        for _ in 0..16 {
            last = m.access(0);
        }
        assert!(last > first);
        assert!(m.stats().1 > 0);
    }

    #[test]
    fn high_bandwidth_memory_queues_less() {
        let mut ddr = MainMemory::new(MemConfig::typical(MemKind::Ddr4), 2.0);
        let mut hbm = MainMemory::new(MemConfig::typical(MemKind::Hbm), 2.0);
        let (mut ddr_last, mut hbm_last) = (0, 0);
        for _ in 0..64 {
            ddr_last = ddr.access(0);
            hbm_last = hbm.access(0);
        }
        assert!(hbm_last < ddr_last);
    }

    #[test]
    fn channel_drains_over_time() {
        let mut m = MainMemory::new(MemConfig::typical(MemKind::Ddr4), 2.0);
        for _ in 0..8 {
            m.access(0);
        }
        let (_, q_before) = m.stats();
        // A much later access should see an idle channel again.
        let lat = m.access(1_000_000);
        let (_, q_after) = m.stats();
        assert_eq!(q_before, q_after);
        assert!(lat <= m.latency_cycles() + 64);
    }
}
