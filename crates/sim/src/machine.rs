//! Steppable machine states for the two core models.
//!
//! The timing loops from the out-of-order and in-order simulators live
//! here as `run_span` methods on [`OooMachine`] / [`InorderMachine`]:
//! all per-machine state (rings, register scoreboard, branch state,
//! cache hierarchy, fetch cursors, retire tracker) is owned by the
//! machine struct, and one call advances it through a contiguous span
//! of trace records, hoisting the hot scalar pipeline state into
//! locals for the span so it stays in registers. Both the per-cell
//! `simulate` path (one whole-trace span) and the lockstep
//! `simulate_column` path (cache-sized record segments) drive the
//! **same** span runners over the same [`DecodedTrace`], so the two
//! execution orders are bit-identical by construction — a machine's
//! span sequence covers the records contiguously in order either way,
//! and interleaving independent machines cannot change any machine's
//! arithmetic.
//!
//! Scratch buffers ([`MachineScratch`], one per concurrently live
//! machine, pooled in the thread-local [`SimScratch`]) are taken at
//! [`OooMachine::begin`] and returned at `finish`, so steady-state
//! simulation never allocates beyond the per-result output vectors.

use crate::branch::{Btb, Predictor};
use crate::cache::{CachePool, Hierarchy, HitLevel};
use crate::config::MicroArchConfig;
use crate::fu::FuState;
use crate::latency::{RetireTracker, SimResult, SimStats};
use crate::memsys::MainMemory;
use perfvec_trace::decoded::{DecodedInst, DecodedTrace, REG_SLOTS};
use std::cell::RefCell;

/// Extra front-end bubble (cycles) when a taken branch hits in the BTB.
const TAKEN_REDIRECT_BUBBLE: u64 = 1;
/// OoO front-end bubble when the target must be computed at decode (BTB
/// miss on a direct taken branch).
const OOO_BTB_MISS_BUBBLE: u64 = 3;
/// In-order front-end bubble when a taken branch misses the BTB.
const INORDER_BTB_MISS_BUBBLE: u64 = 2;

/// Store-to-load forwarding window: finds the youngest in-flight store
/// to an 8-byte block among the last store-queue's worth of stores.
///
/// Only stores with `seq + sq > stores_seen` may forward (older ones
/// have drained to the cache), so the whole structure is bounded by the
/// store-queue size and stays L1-resident regardless of trace length: a
/// ring of the last `sq` stores plus a small hash-head table chaining
/// same-hash stores newest-first through `prev`. A lookup walks the
/// chain and stops at the first out-of-window sequence number — every
/// deeper entry is older still — so the first block match is exactly
/// the youngest forwardable store, matching the reference `HashMap`
/// (whose `insert` keeps the youngest store per block) plus its window
/// check. A fence raises `fence_seq` instead of clearing: stores
/// sequenced before it never forward again.
pub(crate) struct FwdMap {
    /// `head[hash(blk)]`: sequence number of the youngest store hashed
    /// there, or `EMPTY`.
    head: Vec<u64>,
    /// Ring slot `seq & ring_mask` → that store's block address.
    blk: Vec<u64>,
    /// Ring slot → data-ready cycle.
    ready: Vec<u64>,
    /// Ring slot → previous (older) same-hash store's sequence number.
    prev: Vec<u64>,
    ring_mask: u64,
    shift: u32,
    /// Stores sequenced before this never forward (fence barrier).
    fence_seq: u64,
}

const FWD_EMPTY: u64 = u64::MAX;

impl Default for FwdMap {
    fn default() -> FwdMap {
        FwdMap::new()
    }
}

impl FwdMap {
    fn new() -> FwdMap {
        FwdMap {
            head: Vec::new(),
            blk: Vec::new(),
            ready: Vec::new(),
            prev: Vec::new(),
            ring_mask: 0,
            shift: 63,
            fence_seq: 0,
        }
    }

    /// Prepare for a simulation with store-queue size `sq`.
    fn begin(&mut self, sq: usize) {
        let ring = sq.max(8).next_power_of_two();
        let tab = (4 * ring).next_power_of_two();
        if ring as u64 != self.ring_mask + 1 || self.head.len() != tab {
            self.blk.clear();
            self.blk.resize(ring, 0);
            self.ready.clear();
            self.ready.resize(ring, 0);
            self.prev.clear();
            self.prev.resize(ring, FWD_EMPTY);
            self.head.clear();
            self.head.resize(tab, FWD_EMPTY);
            self.ring_mask = ring as u64 - 1;
            self.shift = 64 - tab.trailing_zeros();
        } else {
            self.head.fill(FWD_EMPTY);
        }
        self.fence_seq = 0;
    }

    /// Fibonacci-hash head index for `blk`.
    #[inline]
    fn head_of(&self, blk: u64) -> usize {
        (blk.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize
    }

    /// A fence publishes every prior store: loads beyond it read from
    /// the memory system, never the forwarding window. `stores_seen` is
    /// the fence-time store count.
    #[inline]
    fn fence(&mut self, stores_seen: u64) {
        self.fence_seq = stores_seen;
    }

    /// Data-ready cycle of the youngest store to `blk` still inside the
    /// forwarding window (`stores_seen` stores issued so far, queue
    /// size `sq`) and after the last fence.
    #[inline]
    fn get(&self, blk: u64, stores_seen: u64, sq: u64) -> Option<u64> {
        let mut s = self.head[self.head_of(blk)];
        while s != FWD_EMPTY && s + sq > stores_seen && s >= self.fence_seq {
            let slot = (s & self.ring_mask) as usize;
            debug_assert!(
                s + (self.ring_mask + 1) > stores_seen,
                "in-window store's ring slot must be intact"
            );
            if self.blk[slot] == blk {
                return Some(self.ready[slot]);
            }
            s = self.prev[slot];
        }
        None
    }

    /// Record store number `seq` to `blk` with its data ready at
    /// `ready`.
    #[inline]
    fn insert(&mut self, blk: u64, ready: u64, seq: u64) {
        let h = self.head_of(blk);
        let slot = (seq & self.ring_mask) as usize;
        self.blk[slot] = blk;
        self.ready[slot] = ready;
        self.prev[slot] = self.head[h];
        self.head[h] = seq;
    }
}

/// Preallocated per-machine scratch: everything a live machine borrows
/// for a run and hands back at `finish`, so repeated simulations reuse
/// their allocations. One instance per *concurrently live* machine —
/// the per-cell path uses one, a lockstep column uses one per config.
#[derive(Default)]
pub(crate) struct MachineScratch {
    pub caches: CachePool,
    pub rob_ring: Vec<u64>,
    pub lq_ring: Vec<u64>,
    pub sq_ring: Vec<u64>,
    pub fwd: FwdMap,
}

/// Reset a ring buffer to `len` zeroed slots.
fn reset(ring: &mut Vec<u64>, len: usize) {
    ring.clear();
    ring.resize(len, 0);
}

/// Per-thread simulation scratch: the reusable [`DecodedTrace`] buffer
/// plus a pool of [`MachineScratch`] cells (grown on demand by the
/// lockstep path; the per-cell path always uses cell 0).
pub(crate) struct SimScratch {
    pub dt: DecodedTrace,
    pub cells: Vec<MachineScratch>,
}

thread_local! {
    static SCRATCH: RefCell<SimScratch> = RefCell::new(SimScratch {
        dt: DecodedTrace::default(),
        cells: vec![MachineScratch::default()],
    });
}

/// Run `f` with this thread's reusable [`SimScratch`].
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut SimScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// One live out-of-order machine mid-simulation.
pub(crate) struct OooMachine {
    // Configuration-derived immutables.
    rob: usize,
    lq: usize,
    sq: usize,
    fetch_width: u8,
    front: u64,
    cycle_tenths: f64,
    // Microarchitectural substrates.
    pool: CachePool,
    hier: Hierarchy,
    pred: Predictor,
    btb: Btb,
    fus: FuState,
    retire: RetireTracker,
    // Scratch-backed buffers.
    rob_ring: Vec<u64>,
    lq_ring: Vec<u64>,
    sq_ring: Vec<u64>,
    fwd: FwdMap,
    // Register scoreboard.
    reg_ready: [u64; REG_SLOTS],
    // Queue occupancy cursors.
    loads_seen: usize,
    stores_seen: usize,
    rob_slot: usize,
    lq_slot: usize,
    sq_slot: usize,
    // Fence serialization.
    mem_barrier: u64,
    max_mem_complete: u64,
    // Fetch state.
    fetch_cycle: u64,
    fetched_in_cycle: u8,
    cur_line: u64,
    // Retirement.
    prev_retire: u64,
    // Outputs.
    inc: Vec<f32>,
    mem_level: Vec<HitLevel>,
    mispredicted: Vec<bool>,
    stats: SimStats,
}

/// The hot mutable scalars of one [`OooMachine`], hoisted out of the
/// (heap-resident) machine while a span runs. Span runners keep this in
/// a stack local and pass it to the inlined per-record step, so the
/// optimizer promotes the fields to registers — machine structs living
/// in a column `Vec` would otherwise pay a load/store round trip per
/// field per record.
#[derive(Clone, Copy)]
struct OooHot {
    loads_seen: usize,
    stores_seen: usize,
    rob_slot: usize,
    lq_slot: usize,
    sq_slot: usize,
    mem_barrier: u64,
    max_mem_complete: u64,
    fetch_cycle: u64,
    fetched_in_cycle: u8,
    cur_line: u64,
    prev_retire: u64,
    branches: u64,
    mispredicts: u64,
}

impl OooMachine {
    /// Start a machine for an `n`-record trace, borrowing `scratch`'s
    /// buffers (returned by [`OooMachine::finish`]).
    pub(crate) fn begin(cfg: &MicroArchConfig, n: usize, scratch: &mut MachineScratch) -> OooMachine {
        // Occupancy rings: dispatch waits for the entry `size`
        // instructions back to have retired.
        let rob = cfg.rob_size.max(8) as usize;
        let mut rob_ring = std::mem::take(&mut scratch.rob_ring);
        reset(&mut rob_ring, rob);
        let lq = cfg.lq_size.max(4) as usize;
        let mut lq_ring = std::mem::take(&mut scratch.lq_ring);
        reset(&mut lq_ring, lq);
        let sq = cfg.sq_size.max(4) as usize;
        let mut sq_ring = std::mem::take(&mut scratch.sq_ring);
        reset(&mut sq_ring, sq);
        // Store-to-load forwarding: a load forwards from the youngest
        // prior store to its 8-byte block that is still inside the
        // store-queue window (sequence number within `sq` of the load)
        // and younger than the last memory barrier — older stores have
        // architecturally drained, and a fence publishes everything
        // before it, so entries cannot leak across fences or the whole
        // trace.
        let mut fwd = std::mem::take(&mut scratch.fwd);
        fwd.begin(sq);
        let mut pool = std::mem::take(&mut scratch.caches);
        let hier = Hierarchy::from_pool(
            cfg.l1i,
            cfg.l1d,
            cfg.l2,
            cfg.l2_exclusive,
            MainMemory::new(cfg.mem, cfg.freq_ghz),
            &mut pool,
        );
        OooMachine {
            rob,
            lq,
            sq,
            fetch_width: cfg.fetch_width,
            front: cfg.front_depth as u64,
            cycle_tenths: cfg.cycle_tenths_ns(),
            pool,
            hier,
            pred: Predictor::new(&cfg.branch),
            btb: Btb::new(cfg.branch.btb_entries),
            fus: FuState::new(&cfg.fus, cfg.issue_width),
            retire: RetireTracker::new(cfg.retire_width),
            rob_ring,
            lq_ring,
            sq_ring,
            fwd,
            reg_ready: [0u64; REG_SLOTS],
            loads_seen: 0,
            stores_seen: 0,
            rob_slot: 0,
            lq_slot: 0,
            sq_slot: 0,
            mem_barrier: 0,
            max_mem_complete: 0,
            fetch_cycle: 0,
            fetched_in_cycle: 0,
            cur_line: u64::MAX,
            prev_retire: 0,
            inc: vec![0f32; n],
            mem_level: vec![HitLevel::None; n],
            mispredicted: vec![false; n],
            stats: SimStats::default(),
        }
    }

    /// Lift the hot mutable scalars into an [`OooHot`] for a span.
    #[inline]
    fn hot(&self) -> OooHot {
        OooHot {
            loads_seen: self.loads_seen,
            stores_seen: self.stores_seen,
            rob_slot: self.rob_slot,
            lq_slot: self.lq_slot,
            sq_slot: self.sq_slot,
            mem_barrier: self.mem_barrier,
            max_mem_complete: self.max_mem_complete,
            fetch_cycle: self.fetch_cycle,
            fetched_in_cycle: self.fetched_in_cycle,
            cur_line: self.cur_line,
            prev_retire: self.prev_retire,
            branches: self.stats.branches,
            mispredicts: self.stats.mispredicts,
        }
    }

    /// Write a span's final [`OooHot`] back into the machine.
    #[inline]
    fn put_hot(&mut self, h: OooHot) {
        self.loads_seen = h.loads_seen;
        self.stores_seen = h.stores_seen;
        self.rob_slot = h.rob_slot;
        self.lq_slot = h.lq_slot;
        self.sq_slot = h.sq_slot;
        self.mem_barrier = h.mem_barrier;
        self.max_mem_complete = h.max_mem_complete;
        self.fetch_cycle = h.fetch_cycle;
        self.fetched_in_cycle = h.fetched_in_cycle;
        self.cur_line = h.cur_line;
        self.prev_retire = h.prev_retire;
        self.stats.branches = h.branches;
        self.stats.mispredicts = h.mispredicts;
    }

    /// Advance this machine through one record. `h` is the span-local
    /// hot state (a stack local in every caller, so after inlining the
    /// fields are promoted to registers); substrates and output buffers
    /// are reached through `self`.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        h: &mut OooHot,
        d: &DecodedInst,
        i: usize,
        pc: u64,
        addr: u64,
        taken: bool,
        next_pc: u64,
    ) {
        // ---- fetch ------------------------------------------------------
        let line = pc >> 6;
        if line != h.cur_line {
            let (lat, lvl) = self.hier.access_ifetch(pc, h.fetch_cycle);
            if lvl != HitLevel::L1 {
                // A front-end miss stalls fetch until the line arrives.
                h.fetch_cycle += lat;
                h.fetched_in_cycle = 0;
            }
            h.cur_line = line;
        }
        // Branch-free width wrap: the wrap point moves with every
        // redirect, so a branch here is unpredictable.
        let wrap = h.fetched_in_cycle >= self.fetch_width;
        h.fetch_cycle += wrap as u64;
        h.fetched_in_cycle = if wrap { 0 } else { h.fetched_in_cycle };
        let my_fetch = h.fetch_cycle;
        h.fetched_in_cycle += 1;

        // ---- dispatch: structural queue occupancy ------------------------
        let mut disp = my_fetch + self.front;
        if i >= self.rob {
            disp = disp.max(self.rob_ring[h.rob_slot] + 1);
        }
        // This instruction's load- or store-queue slot (`*_seen % size`,
        // tracked by cursor).
        let mut mem_slot = usize::MAX;
        if d.is_load {
            if h.loads_seen >= self.lq {
                disp = disp.max(self.lq_ring[h.lq_slot] + 1);
            }
            mem_slot = h.lq_slot;
            h.loads_seen += 1;
            h.lq_slot += 1;
            if h.lq_slot == self.lq {
                h.lq_slot = 0;
            }
        } else if d.is_store {
            if h.stores_seen >= self.sq {
                disp = disp.max(self.sq_ring[h.sq_slot] + 1);
            }
            mem_slot = h.sq_slot;
            h.stores_seen += 1;
            h.sq_slot += 1;
            if h.sq_slot == self.sq {
                h.sq_slot = 0;
            }
        }

        // ---- source readiness --------------------------------------------
        // Nearly every instruction has at most two sources; read them
        // unconditionally (dummy-padded) and fall into a loop only for
        // the rare wider ones.
        let mut ready = disp
            .max(self.reg_ready[d.srcs[0] as usize & (REG_SLOTS - 1)])
            .max(self.reg_ready[d.srcs[1] as usize & (REG_SLOTS - 1)]);
        for k in 2..d.n_src as usize {
            ready = ready.max(self.reg_ready[d.srcs[k] as usize & (REG_SLOTS - 1)]);
        }
        if d.is_mem {
            ready = ready.max(h.mem_barrier);
        }
        if d.is_barrier {
            ready = ready.max(h.max_mem_complete);
        }

        // ---- issue + execute -----------------------------------------------
        let start = self.fus.issue(d.class, ready);
        let mut complete = start + self.fus.latency(d.class);
        if d.is_load {
            let (lat, lvl) = self.hier.access_data(addr, start);
            self.mem_level[i] = lvl;
            complete = start + lat;
            // Store-to-load forwarding beats the cache when an in-flight
            // store to the same block has (or will have) its data. The
            // map holds the youngest store per block; it forwards only
            // while still inside the store-queue window — older stores
            // have drained to the cache.
            if let Some(st_ready) = self
                .fwd
                .get(addr >> 3, h.stores_seen as u64, self.sq as u64)
            {
                if st_ready + 1 > start && st_ready + 1 < complete {
                    complete = st_ready + 1;
                }
            }
        } else if d.is_store {
            // Stores update cache state (write-allocate) and consume
            // bandwidth, but retire without waiting for the fill.
            let (_, lvl) = self.hier.access_data(addr, start);
            self.mem_level[i] = lvl;
            complete = start + 1;
            // This store's sequence number is `stores_seen` (already
            // counted at dispatch).
            self.fwd.insert(addr >> 3, complete, h.stores_seen as u64);
        }
        if d.is_mem {
            h.max_mem_complete = h.max_mem_complete.max(complete);
        }
        if d.is_barrier {
            h.mem_barrier = complete;
            self.fwd.fence(h.stores_seen as u64);
        }
        self.reg_ready[d.dsts[0] as usize & (REG_SLOTS - 1)] = complete;
        for k in 1..d.n_dst as usize {
            self.reg_ready[d.dsts[k] as usize & (REG_SLOTS - 1)] = complete;
        }

        // ---- control flow -----------------------------------------------
        if d.is_branch {
            h.branches += 1;
            let actual_target = next_pc;
            let mispred;
            let mut bubble = 0u64;
            if d.is_cond_branch {
                let pred_taken = self.pred.predict(pc, d.static_target);
                mispred = pred_taken != taken;
                if !mispred && taken {
                    bubble = if self.btb.lookup(pc).is_some() {
                        TAKEN_REDIRECT_BUBBLE
                    } else {
                        OOO_BTB_MISS_BUBBLE
                    };
                }
                self.pred.update(pc, taken);
            } else if d.is_indirect_branch {
                mispred = self.btb.lookup(pc) != Some(actual_target);
            } else {
                // Direct unconditional: direction known; BTB miss costs a
                // decode-stage redirect.
                mispred = false;
                bubble = if self.btb.lookup(pc).is_some() {
                    TAKEN_REDIRECT_BUBBLE
                } else {
                    OOO_BTB_MISS_BUBBLE
                };
            }
            if taken {
                self.btb.update(pc, actual_target);
            }
            if mispred {
                h.mispredicts += 1;
                self.mispredicted[i] = true;
                // Fetch restarts after the branch resolves. `cur_line`
                // is deliberately invalidated even when the target
                // shares the branch's line: the restarted front end
                // re-accesses the I-cache (see the
                // `mispredict_restart_reaccesses_icache` test, which
                // pins this accounting).
                h.fetch_cycle = complete + 1;
                h.fetched_in_cycle = 0;
                h.cur_line = u64::MAX;
            } else if taken {
                h.fetch_cycle = my_fetch + bubble;
                h.fetched_in_cycle = 0;
                h.cur_line = u64::MAX;
            }
        }

        // ---- retire --------------------------------------------------------
        let r = self.retire.schedule(complete);
        debug_assert!(r >= h.prev_retire, "retirement must be in order");
        self.inc[i] = ((r - h.prev_retire) as f64 * self.cycle_tenths) as f32;
        h.prev_retire = r;
        self.rob_ring[h.rob_slot] = r;
        h.rob_slot += 1;
        if h.rob_slot == self.rob {
            h.rob_slot = 0;
        }
        if d.is_load {
            self.lq_ring[mem_slot] = r;
        } else if d.is_store {
            self.sq_ring[mem_slot] = r;
        }
    }

    /// Advance this machine through records `lo..hi` of the decoded
    /// trace. The hot scalar pipeline state rides in a stack-local
    /// [`OooHot`] for the span, so the record loop keeps it in
    /// registers regardless of how the caller tiles spans across
    /// machines — the per-cell path runs one whole-trace span, the
    /// lockstep path runs cache-sized segments.
    pub(crate) fn run_span(&mut self, dt: &DecodedTrace, lo: usize, hi: usize) {
        let mut h = self.hot();
        let insts = &dt.insts[..];
        let sidx = &dt.sidx[..hi];
        let pcs = &dt.pc[..hi];
        let addrs = &dt.addr[..hi];
        let next_pcs = &dt.next_pc[..hi];
        let takens = &dt.taken[..hi];
        for i in lo..hi {
            let d = &insts[sidx[i] as usize];
            self.record(&mut h, d, i, pcs[i], addrs[i], takens[i], next_pcs[i]);
        }
        self.put_hot(h);
    }

    /// Advance two machines through records `lo..hi` in lockstep, one
    /// record at a time. The two machines are fully independent state,
    /// so their per-record work forms two parallel dependency chains
    /// the host core can overlap — a single machine's chain (fetch
    /// cycle → issue → retire, plus the cache-state loads feeding it)
    /// is serial and leaves issue slots idle. Results are bit-identical
    /// to two back-to-back [`OooMachine::run_span`] calls.
    pub(crate) fn run_span_pair(
        a: &mut OooMachine,
        b: &mut OooMachine,
        dt: &DecodedTrace,
        lo: usize,
        hi: usize,
    ) {
        let mut ha = a.hot();
        let mut hb = b.hot();
        let insts = &dt.insts[..];
        let sidx = &dt.sidx[..hi];
        let pcs = &dt.pc[..hi];
        let addrs = &dt.addr[..hi];
        let next_pcs = &dt.next_pc[..hi];
        let takens = &dt.taken[..hi];
        for i in lo..hi {
            let d = &insts[sidx[i] as usize];
            let (pc, addr, taken, next) = (pcs[i], addrs[i], takens[i], next_pcs[i]);
            a.record(&mut ha, d, i, pc, addr, taken, next);
            b.record(&mut hb, d, i, pc, addr, taken, next);
        }
        a.put_hot(ha);
        b.put_hot(hb);
    }

    /// Tear the machine down into a [`SimResult`], handing buffers back
    /// to `scratch`.
    pub(crate) fn finish(mut self, scratch: &mut MachineScratch) -> SimResult {
        let cs = self.hier.stats();
        self.hier.recycle(&mut self.pool);
        scratch.caches = self.pool;
        scratch.rob_ring = self.rob_ring;
        scratch.lq_ring = self.lq_ring;
        scratch.sq_ring = self.sq_ring;
        scratch.fwd = self.fwd;
        self.stats.l1i_misses = cs.l1i_misses;
        self.stats.l1d_misses = cs.l1d_misses;
        self.stats.l2_misses = cs.l2_misses;
        self.stats.ifetch_accesses = cs.ifetch_accesses;
        self.stats.data_accesses = cs.data_accesses;
        self.stats.cycles = self.prev_retire;
        self.stats.instructions = self.inc.len() as u64;
        SimResult {
            inc_latency_tenths: self.inc,
            total_tenths: self.prev_retire as f64 * self.cycle_tenths,
            mem_level: self.mem_level,
            mispredicted: self.mispredicted,
            stats: self.stats,
        }
    }
}

/// The hot mutable scalars of one [`InorderMachine`] (see [`OooHot`]).
#[derive(Clone, Copy)]
struct InorderHot {
    last_issue: u64,
    mem_barrier: u64,
    max_mem_complete: u64,
    fetch_cycle: u64,
    fetched_in_cycle: u8,
    cur_line: u64,
    prev_retire: u64,
    branches: u64,
    mispredicts: u64,
}

/// One live in-order (scoreboarded) machine mid-simulation.
pub(crate) struct InorderMachine {
    fetch_width: u8,
    front: u64,
    cycle_tenths: f64,
    pool: CachePool,
    hier: Hierarchy,
    pred: Predictor,
    btb: Btb,
    fus: FuState,
    retire: RetireTracker,
    reg_ready: [u64; REG_SLOTS],
    // Strict in-order issue.
    last_issue: u64,
    // Fences serialize memory.
    mem_barrier: u64,
    max_mem_complete: u64,
    fetch_cycle: u64,
    fetched_in_cycle: u8,
    cur_line: u64,
    prev_retire: u64,
    inc: Vec<f32>,
    mem_level: Vec<HitLevel>,
    mispredicted: Vec<bool>,
    stats: SimStats,
}

impl InorderMachine {
    /// Start a machine for an `n`-record trace, borrowing `scratch`'s
    /// cache buffers (returned by [`InorderMachine::finish`]).
    pub(crate) fn begin(
        cfg: &MicroArchConfig,
        n: usize,
        scratch: &mut MachineScratch,
    ) -> InorderMachine {
        let mut pool = std::mem::take(&mut scratch.caches);
        let hier = Hierarchy::from_pool(
            cfg.l1i,
            cfg.l1d,
            cfg.l2,
            cfg.l2_exclusive,
            MainMemory::new(cfg.mem, cfg.freq_ghz),
            &mut pool,
        );
        InorderMachine {
            fetch_width: cfg.fetch_width,
            front: cfg.front_depth as u64,
            cycle_tenths: cfg.cycle_tenths_ns(),
            pool,
            hier,
            pred: Predictor::new(&cfg.branch),
            btb: Btb::new(cfg.branch.btb_entries),
            fus: FuState::new(&cfg.fus, cfg.issue_width),
            retire: RetireTracker::new(cfg.retire_width),
            reg_ready: [0u64; REG_SLOTS],
            last_issue: 0,
            mem_barrier: 0,
            max_mem_complete: 0,
            fetch_cycle: 0,
            fetched_in_cycle: 0,
            cur_line: u64::MAX,
            prev_retire: 0,
            inc: vec![0f32; n],
            mem_level: vec![HitLevel::None; n],
            mispredicted: vec![false; n],
            stats: SimStats::default(),
        }
    }

    /// Lift the hot mutable scalars into an [`InorderHot`] for a span.
    #[inline]
    fn hot(&self) -> InorderHot {
        InorderHot {
            last_issue: self.last_issue,
            mem_barrier: self.mem_barrier,
            max_mem_complete: self.max_mem_complete,
            fetch_cycle: self.fetch_cycle,
            fetched_in_cycle: self.fetched_in_cycle,
            cur_line: self.cur_line,
            prev_retire: self.prev_retire,
            branches: self.stats.branches,
            mispredicts: self.stats.mispredicts,
        }
    }

    /// Write a span's final [`InorderHot`] back into the machine.
    #[inline]
    fn put_hot(&mut self, h: InorderHot) {
        self.last_issue = h.last_issue;
        self.mem_barrier = h.mem_barrier;
        self.max_mem_complete = h.max_mem_complete;
        self.fetch_cycle = h.fetch_cycle;
        self.fetched_in_cycle = h.fetched_in_cycle;
        self.cur_line = h.cur_line;
        self.prev_retire = h.prev_retire;
        self.stats.branches = h.branches;
        self.stats.mispredicts = h.mispredicts;
    }

    /// Advance this machine through one record (same contract as
    /// [`OooMachine::record`]).
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        h: &mut InorderHot,
        d: &DecodedInst,
        i: usize,
        pc: u64,
        addr: u64,
        taken: bool,
        next_pc: u64,
    ) {
        // ---- fetch (same structure as the OoO front end) ----
        let line = pc >> 6;
        if line != h.cur_line {
            let (lat, lvl) = self.hier.access_ifetch(pc, h.fetch_cycle);
            if lvl != HitLevel::L1 {
                h.fetch_cycle += lat;
                h.fetched_in_cycle = 0;
            }
            h.cur_line = line;
        }
        // Branch-free width wrap: the wrap point moves with every
        // redirect, so a branch here is unpredictable.
        let wrap = h.fetched_in_cycle >= self.fetch_width;
        h.fetch_cycle += wrap as u64;
        h.fetched_in_cycle = if wrap { 0 } else { h.fetched_in_cycle };
        let my_fetch = h.fetch_cycle;
        h.fetched_in_cycle += 1;

        // ---- issue: in order, after decode, sources ready ----
        let mut ready = (my_fetch + self.front)
            .max(h.last_issue)
            .max(self.reg_ready[d.srcs[0] as usize & (REG_SLOTS - 1)])
            .max(self.reg_ready[d.srcs[1] as usize & (REG_SLOTS - 1)]);
        for k in 2..d.n_src as usize {
            ready = ready.max(self.reg_ready[d.srcs[k] as usize & (REG_SLOTS - 1)]);
        }
        if d.is_mem {
            ready = ready.max(h.mem_barrier);
        }
        if d.is_barrier {
            ready = ready.max(h.max_mem_complete);
        }
        let start = self.fus.issue(d.class, ready);
        h.last_issue = start;

        // ---- execute ----
        let mut complete = start + self.fus.latency(d.class);
        if d.is_load {
            let (lat, lvl) = self.hier.access_data(addr, start);
            self.mem_level[i] = lvl;
            complete = start + lat;
        } else if d.is_store {
            let (_, lvl) = self.hier.access_data(addr, start);
            self.mem_level[i] = lvl;
            // Store buffer hides the fill latency.
            complete = start + 1;
        }
        if d.is_mem {
            h.max_mem_complete = h.max_mem_complete.max(complete);
        }
        if d.is_barrier {
            h.mem_barrier = complete;
        }
        self.reg_ready[d.dsts[0] as usize & (REG_SLOTS - 1)] = complete;
        for k in 1..d.n_dst as usize {
            self.reg_ready[d.dsts[k] as usize & (REG_SLOTS - 1)] = complete;
        }

        // ---- control flow ----
        if d.is_branch {
            h.branches += 1;
            let actual_target = next_pc;
            let mispred;
            let mut bubble = 0u64;
            if d.is_cond_branch {
                let pred_taken = self.pred.predict(pc, d.static_target);
                mispred = pred_taken != taken;
                if !mispred && taken {
                    bubble = if self.btb.lookup(pc).is_some() {
                        TAKEN_REDIRECT_BUBBLE
                    } else {
                        INORDER_BTB_MISS_BUBBLE
                    };
                }
                self.pred.update(pc, taken);
            } else if d.is_indirect_branch {
                mispred = self.btb.lookup(pc) != Some(actual_target);
            } else {
                mispred = false;
                bubble = if self.btb.lookup(pc).is_some() {
                    TAKEN_REDIRECT_BUBBLE
                } else {
                    INORDER_BTB_MISS_BUBBLE
                };
            }
            if taken {
                self.btb.update(pc, actual_target);
            }
            if mispred {
                h.mispredicts += 1;
                self.mispredicted[i] = true;
                // In-order branches resolve at execute; the refill cost is
                // the front-end depth (applied via the fetch->issue path).
                h.fetch_cycle = complete + 1;
                h.fetched_in_cycle = 0;
                h.cur_line = u64::MAX;
            } else if taken {
                h.fetch_cycle = my_fetch + bubble;
                h.fetched_in_cycle = 0;
                h.cur_line = u64::MAX;
            }
        }

        // ---- retire ----
        let r = self.retire.schedule(complete);
        debug_assert!(r >= h.prev_retire, "retirement must be in order");
        self.inc[i] = ((r - h.prev_retire) as f64 * self.cycle_tenths) as f32;
        h.prev_retire = r;
    }

    /// Advance this machine through records `lo..hi` of the decoded
    /// trace (same span/hoisting contract as [`OooMachine::run_span`]).
    pub(crate) fn run_span(&mut self, dt: &DecodedTrace, lo: usize, hi: usize) {
        let mut h = self.hot();
        let insts = &dt.insts[..];
        let sidx = &dt.sidx[..hi];
        let pcs = &dt.pc[..hi];
        let addrs = &dt.addr[..hi];
        let next_pcs = &dt.next_pc[..hi];
        let takens = &dt.taken[..hi];
        for i in lo..hi {
            let d = &insts[sidx[i] as usize];
            self.record(&mut h, d, i, pcs[i], addrs[i], takens[i], next_pcs[i]);
        }
        self.put_hot(h);
    }

    /// Two-machine lockstep span (same rationale as
    /// [`OooMachine::run_span_pair`]).
    pub(crate) fn run_span_pair(
        a: &mut InorderMachine,
        b: &mut InorderMachine,
        dt: &DecodedTrace,
        lo: usize,
        hi: usize,
    ) {
        let mut ha = a.hot();
        let mut hb = b.hot();
        let insts = &dt.insts[..];
        let sidx = &dt.sidx[..hi];
        let pcs = &dt.pc[..hi];
        let addrs = &dt.addr[..hi];
        let next_pcs = &dt.next_pc[..hi];
        let takens = &dt.taken[..hi];
        for i in lo..hi {
            let d = &insts[sidx[i] as usize];
            let (pc, addr, taken, next) = (pcs[i], addrs[i], takens[i], next_pcs[i]);
            a.record(&mut ha, d, i, pc, addr, taken, next);
            b.record(&mut hb, d, i, pc, addr, taken, next);
        }
        a.put_hot(ha);
        b.put_hot(hb);
    }

    /// Tear the machine down into a [`SimResult`], handing cache
    /// buffers back to `scratch`.
    pub(crate) fn finish(mut self, scratch: &mut MachineScratch) -> SimResult {
        let cs = self.hier.stats();
        self.hier.recycle(&mut self.pool);
        scratch.caches = self.pool;
        self.stats.l1i_misses = cs.l1i_misses;
        self.stats.l1d_misses = cs.l1d_misses;
        self.stats.l2_misses = cs.l2_misses;
        self.stats.ifetch_accesses = cs.ifetch_accesses;
        self.stats.data_accesses = cs.data_accesses;
        self.stats.cycles = self.prev_retire;
        self.stats.instructions = self.inc.len() as u64;
        SimResult {
            inc_latency_tenths: self.inc,
            total_tenths: self.prev_retire as f64 * self.cycle_tenths,
            mem_level: self.mem_level,
            mispredicted: self.mispredicted,
            stats: self.stats,
        }
    }
}

/// Drive one machine through a whole decoded trace — the per-cell
/// execution order (row-major: one machine, every record).
pub(crate) fn run_ooo_cell(
    dt: &DecodedTrace,
    cfg: &MicroArchConfig,
    cell: &mut MachineScratch,
) -> SimResult {
    let n = dt.len();
    let mut m = OooMachine::begin(cfg, n, cell);
    m.run_span(dt, 0, n);
    m.finish(cell)
}

/// In-order counterpart of [`run_ooo_cell`].
pub(crate) fn run_inorder_cell(
    dt: &DecodedTrace,
    cfg: &MicroArchConfig,
    cell: &mut MachineScratch,
) -> SimResult {
    let n = dt.len();
    let mut m = InorderMachine::begin(cfg, n, cell);
    m.run_span(dt, 0, n);
    m.finish(cell)
}
