//! Microarchitecture configuration.
//!
//! A [`MicroArchConfig`] fully describes one simulated machine: core
//! organization, functional units, branch prediction, cache hierarchy,
//! and main memory. It can also export itself as a flat numeric
//! [`MicroArchConfig::param_vector`] — the input the DSE
//! microarchitecture-representation model and the predictive baselines
//! consume.

use perfvec_isa::OpClass;
use perfvec_trace::fingerprint::Fingerprint;
use serde::{Deserialize, Serialize};

/// Core execution paradigm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoreKind {
    /// In-order scoreboarded pipeline.
    InOrder,
    /// Out-of-order core with a reorder buffer.
    OutOfOrder,
}

/// Branch predictor family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictorKind {
    /// Always predict not-taken.
    StaticNotTaken,
    /// Backward-taken / forward-not-taken heuristic.
    StaticBtfn,
    /// Per-pc 2-bit saturating counters.
    Bimodal,
    /// Global-history xor pc indexed 2-bit counters.
    GShare,
    /// Bimodal + gshare with a choice table.
    Tournament,
}

/// Branch prediction configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchConfig {
    /// Predictor family.
    pub kind: PredictorKind,
    /// log2 of the direction-table entry count.
    pub table_bits: u8,
    /// Global history length in bits (gshare/tournament).
    pub history_bits: u8,
    /// Number of branch-target-buffer entries (power of two).
    pub btb_entries: u32,
}

/// One cache level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways).
    pub assoc: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Access latency in core cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        (self.size_bytes / self.line_bytes as u64 / self.assoc as u64).max(1)
    }
}

/// Main-memory technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemKind {
    /// Commodity DDR4.
    Ddr4,
    /// Low-power LPDDR5.
    Lpddr5,
    /// Graphics GDDR5.
    Gddr5,
    /// High-bandwidth memory.
    Hbm,
}

/// Main-memory timing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemConfig {
    /// Technology (sets sensible defaults; kept for reporting).
    pub kind: MemKind,
    /// Idle access latency in nanoseconds.
    pub latency_ns: f64,
    /// Sustained bandwidth in GB/s.
    pub bandwidth_gbps: f64,
}

impl MemConfig {
    /// Typical timing for a memory technology.
    pub fn typical(kind: MemKind) -> MemConfig {
        let (latency_ns, bandwidth_gbps) = match kind {
            MemKind::Ddr4 => (85.0, 25.6),
            MemKind::Lpddr5 => (110.0, 51.2),
            MemKind::Gddr5 => (95.0, 112.0),
            MemKind::Hbm => (105.0, 256.0),
        };
        MemConfig {
            kind,
            latency_ns,
            bandwidth_gbps,
        }
    }
}

/// Functional-unit pool configuration: per executing [`OpClass`], how
/// many units exist, their latency, and whether they are pipelined.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FuPool {
    /// Number of units.
    pub count: u8,
    /// Execution latency in cycles.
    pub latency: u8,
    /// Pipelined units accept a new op every cycle; unpipelined units
    /// are busy for their full latency.
    pub pipelined: bool,
}

/// Functional units for every executing operation class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FuConfig {
    /// Simple integer ops.
    pub int_alu: FuPool,
    /// Integer multiply.
    pub int_mul: FuPool,
    /// Integer divide (normally unpipelined).
    pub int_div: FuPool,
    /// FP add/compare/convert.
    pub fp_alu: FuPool,
    /// FP multiply / FMA.
    pub fp_mul: FuPool,
    /// FP divide & sqrt (normally unpipelined).
    pub fp_div: FuPool,
    /// SIMD arithmetic.
    pub simd: FuPool,
    /// Load/store address + cache ports.
    pub mem_port: FuPool,
}

impl FuConfig {
    /// The pool an op class executes on. `Branch` and `Other` use the
    /// integer ALU pool; loads and stores use memory ports.
    pub fn pool_for(&self, class: OpClass) -> &FuPool {
        match class {
            OpClass::IntAlu | OpClass::Branch | OpClass::Other => &self.int_alu,
            OpClass::IntMul => &self.int_mul,
            OpClass::IntDiv => &self.int_div,
            OpClass::FpAlu => &self.fp_alu,
            OpClass::FpMul => &self.fp_mul,
            OpClass::FpDiv => &self.fp_div,
            OpClass::Simd => &self.simd,
            OpClass::Load | OpClass::Store => &self.mem_port,
        }
    }
}

/// A complete microarchitecture description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroArchConfig {
    /// Display name.
    pub name: String,
    /// Core paradigm.
    pub core: CoreKind,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Instructions fetched per cycle.
    pub fetch_width: u8,
    /// Front-end depth in stages (fetch→dispatch latency; also the
    /// in-order mispredict penalty).
    pub front_depth: u8,
    /// Issue width (instructions entering execution per cycle).
    pub issue_width: u8,
    /// Retire width (instructions leaving the ROB per cycle).
    pub retire_width: u8,
    /// Reorder-buffer entries (OoO only).
    pub rob_size: u16,
    /// Load-queue entries (OoO only).
    pub lq_size: u16,
    /// Store-queue entries (OoO only).
    pub sq_size: u16,
    /// Functional units.
    pub fus: FuConfig,
    /// Branch prediction.
    pub branch: BranchConfig,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// Exclusive L2 (victim-cache style) instead of the default
    /// non-inclusive behaviour.
    pub l2_exclusive: bool,
    /// Main memory.
    pub mem: MemConfig,
}

impl MicroArchConfig {
    /// Core cycle time in units of 0.1 ns — the paper's latency unit.
    pub fn cycle_tenths_ns(&self) -> f64 {
        10.0 / self.freq_ghz
    }

    /// Number of entries in [`MicroArchConfig::param_vector`].
    pub const PARAM_DIM: usize = 41;

    /// Flatten the configuration into a fixed-length numeric vector.
    ///
    /// Sizes are log2-scaled and everything is roughly unit-range so the
    /// vector can feed an MLP directly (the microarchitecture
    /// representation model of the DSE workflow, Section VI-A) or a
    /// linear baseline.
    pub fn param_vector(&self) -> Vec<f32> {
        let lg = |v: f64| (v.max(1.0)).log2() as f32;
        let mut p = Vec::with_capacity(Self::PARAM_DIM);
        p.push(match self.core {
            CoreKind::InOrder => 0.0,
            CoreKind::OutOfOrder => 1.0,
        });
        p.push(self.freq_ghz as f32 / 4.0);
        p.push(self.fetch_width as f32 / 8.0);
        p.push(self.front_depth as f32 / 16.0);
        p.push(self.issue_width as f32 / 8.0);
        p.push(self.retire_width as f32 / 8.0);
        p.push(lg(self.rob_size as f64) / 10.0);
        p.push(lg(self.lq_size as f64) / 8.0);
        p.push(lg(self.sq_size as f64) / 8.0);
        for pool in [
            &self.fus.int_alu,
            &self.fus.int_mul,
            &self.fus.int_div,
            &self.fus.fp_alu,
            &self.fus.fp_mul,
            &self.fus.fp_div,
            &self.fus.simd,
            &self.fus.mem_port,
        ] {
            p.push(pool.count as f32 / 8.0);
            p.push(pool.latency as f32 / 64.0);
        }
        p.push(match self.branch.kind {
            PredictorKind::StaticNotTaken => 0.0,
            PredictorKind::StaticBtfn => 0.25,
            PredictorKind::Bimodal => 0.5,
            PredictorKind::GShare => 0.75,
            PredictorKind::Tournament => 1.0,
        });
        p.push(self.branch.table_bits as f32 / 16.0);
        p.push(self.branch.history_bits as f32 / 16.0);
        p.push(lg(self.branch.btb_entries as f64) / 14.0);
        for c in [&self.l1i, &self.l1d, &self.l2] {
            p.push(lg(c.size_bytes as f64) / 24.0);
            p.push(lg(c.assoc as f64) / 5.0);
            p.push(c.latency as f32 / 32.0);
        }
        p.push(self.l2_exclusive as u8 as f32);
        p.push(lg(self.mem.latency_ns) / 8.0);
        p.push(lg(self.mem.bandwidth_gbps) / 9.0);
        debug_assert_eq!(p.len(), Self::PARAM_DIM);
        p
    }

    /// Stable 64-bit content fingerprint over canonical little-endian
    /// field bytes — the microarchitecture half of a dataset cache key.
    ///
    /// Two configurations fingerprint equal iff they simulate
    /// identically: every timing-relevant field is absorbed (floats by
    /// IEEE-754 bit pattern, enums by fixed tags), while the display
    /// `name` is deliberately excluded, so renaming a machine does not
    /// invalidate cached datasets. Never derived from `{:?}` or decimal
    /// formatting; the value is identical across runs and platforms.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fingerprint::new();
        self.hash_into(&mut h);
        h.finish()
    }

    /// Absorb this configuration's canonical bytes into `h`.
    pub fn hash_into(&self, h: &mut Fingerprint) {
        // A leading tag + layout version: bump if fields are ever
        // added/reordered so old fingerprints cannot collide with new.
        h.push_str("march-config");
        h.push_u32(1);
        h.push_u8(match self.core {
            CoreKind::InOrder => 0,
            CoreKind::OutOfOrder => 1,
        });
        h.push_f64(self.freq_ghz);
        h.push_u8(self.fetch_width);
        h.push_u8(self.front_depth);
        h.push_u8(self.issue_width);
        h.push_u8(self.retire_width);
        h.push_u16(self.rob_size);
        h.push_u16(self.lq_size);
        h.push_u16(self.sq_size);
        for pool in [
            &self.fus.int_alu,
            &self.fus.int_mul,
            &self.fus.int_div,
            &self.fus.fp_alu,
            &self.fus.fp_mul,
            &self.fus.fp_div,
            &self.fus.simd,
            &self.fus.mem_port,
        ] {
            h.push_u8(pool.count);
            h.push_u8(pool.latency);
            h.push_bool(pool.pipelined);
        }
        h.push_u8(match self.branch.kind {
            PredictorKind::StaticNotTaken => 0,
            PredictorKind::StaticBtfn => 1,
            PredictorKind::Bimodal => 2,
            PredictorKind::GShare => 3,
            PredictorKind::Tournament => 4,
        });
        h.push_u8(self.branch.table_bits);
        h.push_u8(self.branch.history_bits);
        h.push_u32(self.branch.btb_entries);
        for c in [&self.l1i, &self.l1d, &self.l2] {
            h.push_u64(c.size_bytes);
            h.push_u32(c.assoc);
            h.push_u32(c.line_bytes);
            h.push_u32(c.latency);
        }
        h.push_bool(self.l2_exclusive);
        h.push_u8(match self.mem.kind {
            MemKind::Ddr4 => 0,
            MemKind::Lpddr5 => 1,
            MemKind::Gddr5 => 2,
            MemKind::Hbm => 3,
        });
        h.push_f64(self.mem.latency_ns);
        h.push_f64(self.mem.bandwidth_gbps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::predefined_configs;

    #[test]
    fn param_vector_has_declared_dim() {
        for c in predefined_configs() {
            let v = c.param_vector();
            assert_eq!(v.len(), MicroArchConfig::PARAM_DIM, "{}", c.name);
        }
    }

    #[test]
    fn param_vector_is_roughly_normalized() {
        for c in predefined_configs() {
            for (i, x) in c.param_vector().iter().enumerate() {
                assert!(
                    x.is_finite() && *x >= 0.0 && *x <= 1.5,
                    "{} param {i} = {x}",
                    c.name
                );
            }
        }
    }

    #[test]
    fn cycle_time_matches_frequency() {
        let mut c = predefined_configs().remove(0);
        c.freq_ghz = 2.0;
        assert!((c.cycle_tenths_ns() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cache_set_count() {
        let c = CacheConfig {
            size_bytes: 32 * 1024,
            assoc: 4,
            line_bytes: 64,
            latency: 2,
        };
        assert_eq!(c.num_sets(), 128);
    }

    #[test]
    fn fingerprint_ignores_name_but_sees_every_timing_field() {
        let base = predefined_configs().remove(0);
        let mut renamed = base.clone();
        renamed.name = "anything-else".into();
        assert_eq!(base.fingerprint(), renamed.fingerprint());

        let mut f = base.clone();
        f.freq_ghz += 1e-9; // sub-formatting-precision change must register
        assert_ne!(base.fingerprint(), f.fingerprint());

        let mut c = base.clone();
        c.l1d.size_bytes *= 2;
        assert_ne!(base.fingerprint(), c.fingerprint());

        let mut p = base.clone();
        p.fus.int_div.pipelined = !p.fus.int_div.pipelined;
        assert_ne!(base.fingerprint(), p.fingerprint());
    }

    #[test]
    fn fingerprints_are_pinned_across_runs_and_platforms() {
        // Regression pins: these exact values must never drift between
        // runs, platforms, or compiler versions. If an intentional
        // change to the config layout or hashing scheme alters them,
        // bump the layout version in `hash_into` and re-pin.
        let fps: Vec<u64> = predefined_configs()
            .iter()
            .map(|c| c.fingerprint())
            .collect();
        let pinned: [u64; 7] = [
            0x6d02a64d861ba0ec, // o3-big
            0xbd099246dff1fdfd, // o3-medium
            0x93c5b3eac49f2e61, // o3-little
            0xd36459af05de7638, // o3-wide
            0x4db1df962b9aa489, // cortex-a7-like
            0x0974626e5e13d3d7, // a53-like
            0xa5c92e6cf8305e66, // scalar-simple
        ];
        assert_eq!(fps.len(), pinned.len());
        for (i, (&got, &want)) in fps.iter().zip(&pinned).enumerate() {
            assert_eq!(got, want, "config {i} ({})", predefined_configs()[i].name);
        }
    }

    #[test]
    fn typical_memories_are_ordered_by_bandwidth() {
        let d = MemConfig::typical(MemKind::Ddr4);
        let h = MemConfig::typical(MemKind::Hbm);
        assert!(h.bandwidth_gbps > d.bandwidth_gbps);
    }
}
