//! Out-of-order core timing model.
//!
//! Trace-driven approximation of a modern OoO pipeline with the
//! structural features that matter for instruction-level timing:
//!
//! * in-order fetch with I-cache misses, fetch-width limits, taken-branch
//!   redirect bubbles, BTB misses, and full mispredict restarts;
//! * dispatch gated by ROB / load-queue / store-queue occupancy;
//! * dataflow issue: an instruction starts when its sources are ready, a
//!   functional unit of its class is free, and an issue port is free;
//! * load latencies from the cache hierarchy, with store-to-load
//!   forwarding; stores drain through a store queue;
//! * fences serialize memory;
//! * in-order, width-limited retirement (which defines incremental
//!   latency).

use crate::branch::{Btb, Predictor};
use crate::cache::{Hierarchy, HitLevel};
use crate::config::MicroArchConfig;
use crate::fu::FuState;
use crate::latency::{RetireTracker, SimResult, SimStats};
use crate::memsys::MainMemory;
use perfvec_isa::{Reg, Trace};
use std::collections::HashMap;

/// Extra front-end bubble (cycles) when a taken branch hits in the BTB.
const TAKEN_REDIRECT_BUBBLE: u64 = 1;
/// Front-end bubble when the target must be computed at decode (BTB miss
/// on a direct taken branch).
const BTB_MISS_BUBBLE: u64 = 3;

/// Simulate `trace` on the out-of-order machine `cfg`.
pub fn simulate_ooo(trace: &Trace, cfg: &MicroArchConfig) -> SimResult {
    let n = trace.len();
    let mut hier = Hierarchy::new(
        cfg.l1i,
        cfg.l1d,
        cfg.l2,
        cfg.l2_exclusive,
        MainMemory::new(cfg.mem, cfg.freq_ghz),
    );
    let mut pred = Predictor::new(&cfg.branch);
    let mut btb = Btb::new(cfg.branch.btb_entries);
    let mut fus = FuState::new(&cfg.fus, cfg.issue_width);
    let mut retire = RetireTracker::new(cfg.retire_width);

    let mut reg_ready = [0u64; Reg::NUM_FLAT];
    let mut retire_cycles = vec![0u64; n];
    let mut mem_level = vec![HitLevel::None; n];
    let mut mispredicted = vec![false; n];

    // Fetch state.
    let mut fetch_cycle = 0u64;
    let mut fetched_in_cycle = 0u8;
    let mut cur_line = u64::MAX;
    let front = cfg.front_depth as u64;

    // Occupancy rings: dispatch waits for the entry `size` instructions
    // back to have retired.
    let rob = cfg.rob_size.max(8) as usize;
    let mut rob_ring = vec![0u64; rob];
    let lq = cfg.lq_size.max(4) as usize;
    let mut lq_ring = vec![0u64; lq];
    let mut loads_seen = 0usize;
    let sq = cfg.sq_size.max(4) as usize;
    let mut sq_ring = vec![0u64; sq];
    let mut stores_seen = 0usize;

    // Store-to-load forwarding: 8-byte block -> data-ready cycle.
    let mut store_fwd: HashMap<u64, u64> = HashMap::new();
    // Fence serialization.
    let mut mem_barrier = 0u64;
    let mut max_mem_complete = 0u64;

    let mut stats = SimStats::default();

    for i in 0..n {
        let rec = &trace.records[i];
        let inst = &trace.program.insts[rec.sidx as usize];
        let class = inst.op.class();
        let pc = rec.pc();

        // ---- fetch ------------------------------------------------------
        let line = pc >> 6;
        if line != cur_line {
            let (lat, lvl) = hier.access_ifetch(pc, fetch_cycle);
            if lvl != HitLevel::L1 {
                // A front-end miss stalls fetch until the line arrives.
                fetch_cycle += lat;
                fetched_in_cycle = 0;
            }
            cur_line = line;
        }
        if fetched_in_cycle >= cfg.fetch_width {
            fetch_cycle += 1;
            fetched_in_cycle = 0;
        }
        let my_fetch = fetch_cycle;
        fetched_in_cycle += 1;

        // ---- dispatch: structural queue occupancy ------------------------
        let mut disp = my_fetch + front;
        let rob_slot = i % rob;
        if i >= rob {
            disp = disp.max(rob_ring[rob_slot] + 1);
        }
        if inst.op.is_load() {
            let slot = loads_seen % lq;
            if loads_seen >= lq {
                disp = disp.max(lq_ring[slot] + 1);
            }
            loads_seen += 1;
        } else if inst.op.is_store() {
            let slot = stores_seen % sq;
            if stores_seen >= sq {
                disp = disp.max(sq_ring[slot] + 1);
            }
            stores_seen += 1;
        }

        // ---- source readiness --------------------------------------------
        let mut ready = disp;
        for s in inst.srcs() {
            ready = ready.max(reg_ready[s.flat_id()]);
        }
        if inst.op.is_mem() {
            ready = ready.max(mem_barrier);
        }
        if inst.op.is_barrier() {
            ready = ready.max(max_mem_complete);
        }

        // ---- issue + execute -----------------------------------------------
        let start = fus.issue(class, ready);
        let mut complete = start + fus.latency(class);
        if inst.op.is_load() {
            let (lat, lvl) = hier.access_data(rec.addr, start);
            mem_level[i] = lvl;
            complete = start + lat;
            // Store-to-load forwarding beats the cache when an in-flight
            // store to the same block has (or will have) its data.
            if let Some(&st_ready) = store_fwd.get(&(rec.addr >> 3)) {
                if st_ready + 1 > start && st_ready + 1 < complete {
                    complete = st_ready + 1;
                }
            }
        } else if inst.op.is_store() {
            // Stores update cache state (write-allocate) and consume
            // bandwidth, but retire without waiting for the fill.
            let (_, lvl) = hier.access_data(rec.addr, start);
            mem_level[i] = lvl;
            complete = start + 1;
            store_fwd.insert(rec.addr >> 3, complete);
            if store_fwd.len() > 16_384 {
                store_fwd.retain(|_, &mut t| t + 64 > start);
            }
        }
        if inst.op.is_mem() {
            max_mem_complete = max_mem_complete.max(complete);
        }
        if inst.op.is_barrier() {
            mem_barrier = complete;
        }
        for d in inst.dsts() {
            reg_ready[d.flat_id()] = complete;
        }

        // ---- control flow -----------------------------------------------
        if inst.op.is_branch() {
            stats.branches += 1;
            let actual_target = rec.next_pc();
            let mispred;
            let mut bubble = 0u64;
            if inst.op.is_cond_branch() {
                let static_target =
                    perfvec_isa::CODE_BASE + inst.target.unwrap_or(0) as u64 * perfvec_isa::INST_BYTES;
                let pred_taken = pred.predict(pc, static_target);
                mispred = pred_taken != rec.taken;
                if !mispred && rec.taken {
                    bubble = if btb.lookup(pc).is_some() { TAKEN_REDIRECT_BUBBLE } else { BTB_MISS_BUBBLE };
                }
                pred.update(pc, rec.taken);
            } else if inst.op.is_indirect_branch() {
                mispred = btb.lookup(pc) != Some(actual_target);
            } else {
                // Direct unconditional: direction known; BTB miss costs a
                // decode-stage redirect.
                mispred = false;
                bubble = if btb.lookup(pc).is_some() { TAKEN_REDIRECT_BUBBLE } else { BTB_MISS_BUBBLE };
            }
            if rec.taken {
                btb.update(pc, actual_target);
            }
            if mispred {
                stats.mispredicts += 1;
                mispredicted[i] = true;
                // Fetch restarts after the branch resolves.
                fetch_cycle = complete + 1;
                fetched_in_cycle = 0;
                cur_line = u64::MAX;
            } else if rec.taken {
                fetch_cycle = my_fetch + bubble;
                fetched_in_cycle = 0;
                cur_line = u64::MAX;
            }
        }

        // ---- retire --------------------------------------------------------
        let r = retire.schedule(complete);
        retire_cycles[i] = r;
        rob_ring[rob_slot] = r;
        if inst.op.is_load() {
            lq_ring[(loads_seen - 1) % lq] = r;
        } else if inst.op.is_store() {
            sq_ring[(stores_seen - 1) % sq] = r;
        }
    }

    let cs = hier.stats();
    stats.l1i_misses = cs.l1i_misses;
    stats.l1d_misses = cs.l1d_misses;
    stats.l2_misses = cs.l2_misses;

    SimResult::from_retire_cycles(
        &retire_cycles,
        cfg.cycle_tenths_ns(),
        mem_level,
        mispredicted,
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::predefined_configs;
    use perfvec_isa::{Emulator, ProgramBuilder, Reg};

    fn cfg(name: &str) -> MicroArchConfig {
        predefined_configs().into_iter().find(|c| c.name == name).unwrap()
    }

    fn alu_loop_trace(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new();
        let (a, c, i) = (Reg::x(1), Reg::x(3), Reg::x(4));
        b.li(a, 1);
        b.li(c, 3);
        b.li(i, 0);
        let top = b.label();
        // A chain of independent adds: plenty of ILP.
        b.add(Reg::x(5), a, c);
        b.add(Reg::x(6), a, c);
        b.add(Reg::x(7), a, c);
        b.add(Reg::x(8), a, c);
        b.addi(i, i, 1);
        b.blt_imm(i, iters, top);
        b.halt();
        let p = b.build();
        Emulator::new(&p).run(1_000_000).unwrap()
    }

    #[test]
    fn wide_core_beats_narrow_core_on_ilp() {
        let t = alu_loop_trace(500);
        let big = simulate_ooo(&t, &cfg("o3-big"));
        let little = simulate_ooo(&t, &cfg("o3-little"));
        assert!(big.stats.ipc() > 1.5 * little.stats.ipc(),
            "big {} vs little {}", big.stats.ipc(), little.stats.ipc());
    }

    #[test]
    fn dependency_chain_limits_ipc() {
        let mut b = ProgramBuilder::new();
        let a = Reg::x(1);
        b.li(a, 0);
        let top = b.label();
        // Serial dependency chain: IPC must be ~1 even on a wide core.
        b.addi(a, a, 1);
        b.addi(a, a, 1);
        b.addi(a, a, 1);
        b.addi(a, a, 1);
        b.blt_imm(a, 4000, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p).run(1_000_000).unwrap();
        let r = simulate_ooo(&t, &cfg("o3-big"));
        assert!(r.stats.ipc() < 2.0, "serial chain IPC should be low, got {}", r.stats.ipc());
    }

    #[test]
    fn pointer_chase_pays_memory_latency() {
        // Build a random cyclic permutation and chase it: every load misses
        // a small cache and depends on the previous load.
        let n = 4096usize; // 32 KiB of u64 — larger than o3-little's 16 KiB L1D
        let mut next = vec![0u64; n];
        // A simple LCG permutation walk (stride pattern defeating LRU).
        for (i, nx) in next.iter_mut().enumerate() {
            *nx = ((i * 769 + 257) % n) as u64 * 8;
        }
        let mut b = ProgramBuilder::new();
        let arr = b.alloc_u64_slice(&next);
        let (base, p, i) = (Reg::x(1), Reg::x(2), Reg::x(3));
        b.li(base, arr as i64);
        b.li(p, 0);
        b.li(i, 0);
        let top = b.label();
        b.ld_idx(p, base, p, 1, 0, 8); // p = mem[base + p]
        b.addi(i, i, 1);
        b.blt_imm(i, 8000, top);
        b.halt();
        let prog = b.build();
        let t = Emulator::new(&prog).run(100_000).unwrap();

        let r = simulate_ooo(&t, &cfg("o3-little"));
        let alu = simulate_ooo(&alu_loop_trace(2000), &cfg("o3-little"));
        assert!(r.stats.l1d_misses > 1000, "expected many L1D misses, got {}", r.stats.l1d_misses);
        assert!(
            r.stats.ipc() < 0.5 * alu.stats.ipc(),
            "pointer chase should be much slower: {} vs {}",
            r.stats.ipc(),
            alu.stats.ipc()
        );
    }

    #[test]
    fn random_branches_cause_mispredicts() {
        // Branch direction depends on a pseudo-random bit: near-50% miss
        // rate on every predictor.
        let mut b = ProgramBuilder::new();
        let (x, i, bit) = (Reg::x(1), Reg::x(2), Reg::x(3));
        b.li(x, 12345);
        b.li(i, 0);
        let top = b.label();
        let skip = b.fwd_label();
        b.muli(x, x, 1103515245);
        b.addi(x, x, 12345);
        b.shri(bit, x, 16);
        b.andi(bit, bit, 1);
        b.beq_imm(bit, 0, skip);
        b.addi(Reg::x(5), Reg::x(5), 1);
        b.bind(skip);
        b.addi(i, i, 1);
        b.blt_imm(i, 3000, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p).run(100_000).unwrap();
        let r = simulate_ooo(&t, &cfg("o3-big"));
        assert!(
            r.stats.mispredict_rate() > 0.1,
            "random branches should mispredict, rate {}",
            r.stats.mispredict_rate()
        );
    }

    #[test]
    fn total_time_equals_sum_of_incremental_latencies() {
        let t = alu_loop_trace(300);
        for c in predefined_configs().iter().filter(|c| c.core == crate::config::CoreKind::OutOfOrder)
        {
            let r = simulate_ooo(&t, c);
            assert!(
                (r.sum_incremental() - r.total_tenths).abs() < 1e-6 * r.total_tenths.max(1.0),
                "{}",
                c.name
            );
        }
    }

    #[test]
    fn higher_frequency_is_faster_in_wall_time() {
        let t = alu_loop_trace(400);
        let mut fast = cfg("o3-medium");
        let mut slow = fast.clone();
        fast.freq_ghz = 4.0;
        slow.freq_ghz = 1.0;
        let rf = simulate_ooo(&t, &fast);
        let rs = simulate_ooo(&t, &slow);
        assert!(rf.total_tenths < rs.total_tenths);
    }

    #[test]
    fn store_load_forwarding_is_fast() {
        let mut b = ProgramBuilder::new();
        let buf = b.alloc_zeroed(64);
        let (base, v, i) = (Reg::x(1), Reg::x(2), Reg::x(3));
        b.li(base, buf as i64);
        b.li(i, 0);
        let top = b.label();
        b.st(i, base, 0, 8);
        b.ld(v, base, 0, 8); // immediately reload the same address
        b.addi(i, i, 1);
        b.blt_imm(i, 2000, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p).run(100_000).unwrap();
        let r = simulate_ooo(&t, &cfg("o3-medium"));
        // Near-perfect locality plus forwarding: should be fast.
        assert!(r.stats.ipc() > 1.0, "forwarding loop IPC {}", r.stats.ipc());
        assert!(r.stats.l1d_misses <= 2);
    }
}
