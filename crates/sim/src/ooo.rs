//! Out-of-order core timing model.
//!
//! Trace-driven approximation of a modern OoO pipeline with the
//! structural features that matter for instruction-level timing:
//!
//! * in-order fetch with I-cache misses, fetch-width limits, taken-branch
//!   redirect bubbles, BTB misses, and full mispredict restarts;
//! * dispatch gated by ROB / load-queue / store-queue occupancy;
//! * dataflow issue: an instruction starts when its sources are ready, a
//!   functional unit of its class is free, and an issue port is free;
//! * load latencies from the cache hierarchy, with store-to-load
//!   forwarding; stores drain through a store queue;
//! * fences serialize memory;
//! * in-order, width-limited retirement (which defines incremental
//!   latency).
//!
//! The timing loop itself lives in [`crate::machine::OooMachine`]: the
//! trace is batch-decoded into a flat [`perfvec_trace::DecodedTrace`]
//! (hoisting every `Op` predicate, operand `flat_id`, and PC
//! computation out of the per-record path) and the machine state steps
//! through it record by record. The same step function also powers the
//! lockstep grid simulator ([`crate::lockstep::simulate_column`]), so
//! the two paths are bit-identical by construction.

use crate::config::MicroArchConfig;
use crate::latency::SimResult;
use crate::machine::{run_ooo_cell, with_scratch};
use perfvec_isa::Trace;

/// Simulate `trace` on the out-of-order machine `cfg`.
pub fn simulate_ooo(trace: &Trace, cfg: &MicroArchConfig) -> SimResult {
    with_scratch(|s| {
        s.dt.build(trace);
        let (dt, cells) = (&s.dt, &mut s.cells);
        run_ooo_cell(dt, cfg, &mut cells[0])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::predefined_configs;
    use perfvec_isa::{Emulator, ProgramBuilder, Reg};

    fn cfg(name: &str) -> MicroArchConfig {
        predefined_configs()
            .into_iter()
            .find(|c| c.name == name)
            .unwrap()
    }

    fn alu_loop_trace(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new();
        let (a, c, i) = (Reg::x(1), Reg::x(3), Reg::x(4));
        b.li(a, 1);
        b.li(c, 3);
        b.li(i, 0);
        let top = b.label();
        // A chain of independent adds: plenty of ILP.
        b.add(Reg::x(5), a, c);
        b.add(Reg::x(6), a, c);
        b.add(Reg::x(7), a, c);
        b.add(Reg::x(8), a, c);
        b.addi(i, i, 1);
        b.blt_imm(i, iters, top);
        b.halt();
        let p = b.build();
        Emulator::new(&p).run(1_000_000).unwrap()
    }

    #[test]
    fn wide_core_beats_narrow_core_on_ilp() {
        let t = alu_loop_trace(500);
        let big = simulate_ooo(&t, &cfg("o3-big"));
        let little = simulate_ooo(&t, &cfg("o3-little"));
        assert!(
            big.stats.ipc() > 1.5 * little.stats.ipc(),
            "big {} vs little {}",
            big.stats.ipc(),
            little.stats.ipc()
        );
    }

    #[test]
    fn dependency_chain_limits_ipc() {
        let mut b = ProgramBuilder::new();
        let a = Reg::x(1);
        b.li(a, 0);
        let top = b.label();
        // Serial dependency chain: IPC must be ~1 even on a wide core.
        b.addi(a, a, 1);
        b.addi(a, a, 1);
        b.addi(a, a, 1);
        b.addi(a, a, 1);
        b.blt_imm(a, 4000, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p).run(1_000_000).unwrap();
        let r = simulate_ooo(&t, &cfg("o3-big"));
        assert!(
            r.stats.ipc() < 2.0,
            "serial chain IPC should be low, got {}",
            r.stats.ipc()
        );
    }

    #[test]
    fn pointer_chase_pays_memory_latency() {
        // Build a random cyclic permutation and chase it: every load misses
        // a small cache and depends on the previous load.
        let n = 4096usize; // 32 KiB of u64 — larger than o3-little's 16 KiB L1D
        let mut next = vec![0u64; n];
        // A simple LCG permutation walk (stride pattern defeating LRU).
        for (i, nx) in next.iter_mut().enumerate() {
            *nx = ((i * 769 + 257) % n) as u64 * 8;
        }
        let mut b = ProgramBuilder::new();
        let arr = b.alloc_u64_slice(&next);
        let (base, p, i) = (Reg::x(1), Reg::x(2), Reg::x(3));
        b.li(base, arr as i64);
        b.li(p, 0);
        b.li(i, 0);
        let top = b.label();
        b.ld_idx(p, base, p, 1, 0, 8); // p = mem[base + p]
        b.addi(i, i, 1);
        b.blt_imm(i, 8000, top);
        b.halt();
        let prog = b.build();
        let t = Emulator::new(&prog).run(100_000).unwrap();

        let r = simulate_ooo(&t, &cfg("o3-little"));
        let alu = simulate_ooo(&alu_loop_trace(2000), &cfg("o3-little"));
        assert!(
            r.stats.l1d_misses > 1000,
            "expected many L1D misses, got {}",
            r.stats.l1d_misses
        );
        assert!(
            r.stats.ipc() < 0.5 * alu.stats.ipc(),
            "pointer chase should be much slower: {} vs {}",
            r.stats.ipc(),
            alu.stats.ipc()
        );
    }

    #[test]
    fn random_branches_cause_mispredicts() {
        // Branch direction depends on a pseudo-random bit: near-50% miss
        // rate on every predictor.
        let mut b = ProgramBuilder::new();
        let (x, i, bit) = (Reg::x(1), Reg::x(2), Reg::x(3));
        b.li(x, 12345);
        b.li(i, 0);
        let top = b.label();
        let skip = b.fwd_label();
        b.muli(x, x, 1103515245);
        b.addi(x, x, 12345);
        b.shri(bit, x, 16);
        b.andi(bit, bit, 1);
        b.beq_imm(bit, 0, skip);
        b.addi(Reg::x(5), Reg::x(5), 1);
        b.bind(skip);
        b.addi(i, i, 1);
        b.blt_imm(i, 3000, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p).run(100_000).unwrap();
        let r = simulate_ooo(&t, &cfg("o3-big"));
        assert!(
            r.stats.mispredict_rate() > 0.1,
            "random branches should mispredict, rate {}",
            r.stats.mispredict_rate()
        );
    }

    /// Pin of the mispredict-restart fetch accounting: a full mispredict
    /// redirect invalidates `cur_line`, so the restarted front end
    /// performs a fresh I-cache access even when the target shares the
    /// mispredicted branch's cache line. This is intentional (the
    /// pipeline refetches after a squash; the line is normally still
    /// L1-resident, so it costs an access, not a miss). The test
    /// recomputes the expected access count from the trace and the
    /// simulator's own redirect decisions and requires an exact match.
    #[test]
    fn mispredict_restart_reaccesses_icache() {
        // Random branches inside a loop small enough that branch and
        // target share fetch lines most of the time.
        let mut b = ProgramBuilder::new();
        let (x, i, bit) = (Reg::x(1), Reg::x(2), Reg::x(3));
        b.li(x, 98765);
        b.li(i, 0);
        let top = b.label();
        let skip = b.fwd_label();
        b.muli(x, x, 1103515245);
        b.addi(x, x, 12345);
        b.shri(bit, x, 16);
        b.andi(bit, bit, 1);
        b.beq_imm(bit, 0, skip);
        b.addi(Reg::x(5), Reg::x(5), 1);
        b.bind(skip);
        b.addi(i, i, 1);
        b.blt_imm(i, 2000, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p).run(100_000).unwrap();
        let c = cfg("o3-medium");
        let r = simulate_ooo(&t, &c);
        assert!(
            r.stats.mispredicts > 100,
            "need real restarts, got {}",
            r.stats.mispredicts
        );

        // Replay the front end's line accounting: an access whenever the
        // fetch line changes, plus an unconditional invalidation after
        // every mispredict or taken branch.
        let mut expected = 0u64;
        let mut cur_line = u64::MAX;
        for (k, rec) in t.records.iter().enumerate() {
            let line = rec.pc() >> 6;
            if line != cur_line {
                expected += 1;
                cur_line = line;
            }
            let inst = t.inst(k);
            if inst.op.is_branch() && (r.mispredicted[k] || rec.taken) {
                cur_line = u64::MAX;
            }
        }
        assert_eq!(
            r.stats.ifetch_accesses, expected,
            "front-end fetch accounting changed: restarts must re-access the I-cache"
        );
    }

    #[test]
    fn total_time_equals_sum_of_incremental_latencies() {
        let t = alu_loop_trace(300);
        for c in predefined_configs()
            .iter()
            .filter(|c| c.core == crate::config::CoreKind::OutOfOrder)
        {
            let r = simulate_ooo(&t, c);
            assert!(
                (r.sum_incremental() - r.total_tenths).abs() < 1e-6 * r.total_tenths.max(1.0),
                "{}",
                c.name
            );
        }
    }

    #[test]
    fn higher_frequency_is_faster_in_wall_time() {
        let t = alu_loop_trace(400);
        let mut fast = cfg("o3-medium");
        let mut slow = fast.clone();
        fast.freq_ghz = 4.0;
        slow.freq_ghz = 1.0;
        let rf = simulate_ooo(&t, &fast);
        let rs = simulate_ooo(&t, &slow);
        assert!(rf.total_tenths < rs.total_tenths);
    }

    #[test]
    fn store_load_forwarding_is_fast() {
        let mut b = ProgramBuilder::new();
        let buf = b.alloc_zeroed(64);
        let (base, v, i) = (Reg::x(1), Reg::x(2), Reg::x(3));
        b.li(base, buf as i64);
        b.li(i, 0);
        let top = b.label();
        b.st(i, base, 0, 8);
        b.ld(v, base, 0, 8); // immediately reload the same address
        b.addi(i, i, 1);
        b.blt_imm(i, 2000, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p).run(100_000).unwrap();
        let r = simulate_ooo(&t, &cfg("o3-medium"));
        // Near-perfect locality plus forwarding: should be fast.
        assert!(r.stats.ipc() > 1.0, "forwarding loop IPC {}", r.stats.ipc());
        assert!(r.stats.l1d_misses <= 2);
    }

    #[test]
    fn results_are_identical_across_repeated_calls() {
        // The reusable thread-local scratch must not leak state
        // between simulations (also exercised with interleaved configs).
        let t = alu_loop_trace(200);
        let t2 = alu_loop_trace(137);
        let first = simulate_ooo(&t, &cfg("o3-big"));
        let _ = simulate_ooo(&t2, &cfg("o3-little"));
        let again = simulate_ooo(&t, &cfg("o3-big"));
        assert_eq!(first.stats, again.stats);
        assert_eq!(
            first
                .inc_latency_tenths
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            again
                .inc_latency_tenths
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>()
        );
    }
}
