//! Out-of-order core timing model.
//!
//! Trace-driven approximation of a modern OoO pipeline with the
//! structural features that matter for instruction-level timing:
//!
//! * in-order fetch with I-cache misses, fetch-width limits, taken-branch
//!   redirect bubbles, BTB misses, and full mispredict restarts;
//! * dispatch gated by ROB / load-queue / store-queue occupancy;
//! * dataflow issue: an instruction starts when its sources are ready, a
//!   functional unit of its class is free, and an issue port is free;
//! * load latencies from the cache hierarchy, with store-to-load
//!   forwarding; stores drain through a store queue;
//! * fences serialize memory;
//! * in-order, width-limited retirement (which defines incremental
//!   latency).
//!
//! The inner loop works off dense preallocated arrays: the static
//! program is decoded once per call into a flat [`DecodedInst`] table
//! (hoisting every `Op` predicate and operand `flat_id` out of the
//! per-record path), the occupancy rings and retire buffer live in a
//! thread-local [`Scoreboard`] reused across calls, and store-to-load
//! forwarding uses a ring-indexed window bounded by the store-queue
//! size (see below) instead of a growing hash map.

use crate::branch::{Btb, Predictor};
use crate::cache::{CachePool, Hierarchy, HitLevel};
use crate::config::MicroArchConfig;
use crate::fu::FuState;
use crate::latency::{RetireTracker, SimResult, SimStats};
use crate::memsys::MainMemory;
use perfvec_isa::{OpClass, Program, Reg, Trace, MAX_DST, MAX_SRC};
use std::cell::RefCell;

/// Register scoreboard size: [`Reg::NUM_FLAT`] rounded up to a power
/// of two, so masked indexing (`& (REG_SLOTS - 1)`) provably stays in
/// bounds and the hot loops carry no bounds checks.
pub(crate) const REG_SLOTS: usize = Reg::NUM_FLAT.next_power_of_two();

/// Dummy operand slots in the spare `REG_SLOTS` range above
/// `Reg::NUM_FLAT` (80): decoded operand lists are padded with these so
/// the hot loops can read the first sources and write the first
/// destination unconditionally. The source dummy is never written and
/// the destination dummy is never read, so padding cannot create
/// dependencies.
pub(crate) const DUMMY_SRC: u8 = (REG_SLOTS - 2) as u8;
pub(crate) const DUMMY_DST: u8 = (REG_SLOTS - 1) as u8;

/// Extra front-end bubble (cycles) when a taken branch hits in the BTB.
const TAKEN_REDIRECT_BUBBLE: u64 = 1;
/// Front-end bubble when the target must be computed at decode (BTB miss
/// on a direct taken branch).
const BTB_MISS_BUBBLE: u64 = 3;

/// One statically decoded instruction: opcode predicates, class, and
/// operand flat ids resolved once per `simulate` call instead of once
/// per dynamic record.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DecodedInst {
    pub class: OpClass,
    pub is_load: bool,
    pub is_store: bool,
    pub is_mem: bool,
    pub is_barrier: bool,
    pub is_branch: bool,
    pub is_cond_branch: bool,
    pub is_indirect_branch: bool,
    pub n_src: u8,
    pub n_dst: u8,
    /// `flat_id()` of each valid source register (fits: `Reg::NUM_FLAT`
    /// is 80).
    pub srcs: [u8; MAX_SRC],
    /// `flat_id()` of each valid destination register.
    pub dsts: [u8; MAX_DST],
    /// Static branch target address (the predictor's taken-target key
    /// for conditional branches).
    pub static_target: u64,
}

/// Decode `program` into `out` (reusing its allocation).
pub(crate) fn decode_program(program: &Program, out: &mut Vec<DecodedInst>) {
    out.clear();
    out.reserve(program.insts.len());
    for inst in &program.insts {
        let mut srcs = [DUMMY_SRC; MAX_SRC];
        for (k, s) in inst.srcs().iter().enumerate() {
            srcs[k] = s.flat_id() as u8;
        }
        let mut dsts = [DUMMY_DST; MAX_DST];
        for (k, d) in inst.dsts().iter().enumerate() {
            dsts[k] = d.flat_id() as u8;
        }
        out.push(DecodedInst {
            class: inst.op.class(),
            is_load: inst.op.is_load(),
            is_store: inst.op.is_store(),
            is_mem: inst.op.is_mem(),
            is_barrier: inst.op.is_barrier(),
            is_branch: inst.op.is_branch(),
            is_cond_branch: inst.op.is_cond_branch(),
            is_indirect_branch: inst.op.is_indirect_branch(),
            n_src: inst.srcs().len() as u8,
            n_dst: inst.dsts().len() as u8,
            srcs,
            dsts,
            static_target: perfvec_isa::CODE_BASE
                + inst.target.unwrap_or(0) as u64 * perfvec_isa::INST_BYTES,
        });
    }
}

/// Preallocated per-thread simulation scratch, reused across
/// `simulate_*` calls so the hot loop never allocates (beyond the
/// per-result `mem_level`/`mispredicted` vectors, which are moved into
/// the returned [`SimResult`]).
pub(crate) struct Scoreboard {
    pub decoded: Vec<DecodedInst>,
    pub caches: CachePool,
    rob_ring: Vec<u64>,
    lq_ring: Vec<u64>,
    sq_ring: Vec<u64>,
    fwd: FwdMap,
}

impl Scoreboard {
    fn new() -> Scoreboard {
        Scoreboard {
            decoded: Vec::new(),
            caches: CachePool::default(),
            rob_ring: Vec::new(),
            lq_ring: Vec::new(),
            sq_ring: Vec::new(),
            fwd: FwdMap::new(),
        }
    }

    /// Reset a ring buffer to `len` zeroed slots.
    fn reset(ring: &mut Vec<u64>, len: usize) {
        ring.clear();
        ring.resize(len, 0);
    }
}

/// Store-to-load forwarding window: finds the youngest in-flight store
/// to an 8-byte block among the last store-queue's worth of stores.
///
/// Only stores with `seq + sq > stores_seen` may forward (older ones
/// have drained to the cache), so the whole structure is bounded by the
/// store-queue size and stays L1-resident regardless of trace length: a
/// ring of the last `sq` stores plus a small hash-head table chaining
/// same-hash stores newest-first through `prev`. A lookup walks the
/// chain and stops at the first out-of-window sequence number — every
/// deeper entry is older still — so the first block match is exactly
/// the youngest forwardable store, matching the reference `HashMap`
/// (whose `insert` keeps the youngest store per block) plus its window
/// check. A fence raises `fence_seq` instead of clearing: stores
/// sequenced before it never forward again.
struct FwdMap {
    /// `head[hash(blk)]`: sequence number of the youngest store hashed
    /// there, or `EMPTY`.
    head: Vec<u64>,
    /// Ring slot `seq & ring_mask` → that store's block address.
    blk: Vec<u64>,
    /// Ring slot → data-ready cycle.
    ready: Vec<u64>,
    /// Ring slot → previous (older) same-hash store's sequence number.
    prev: Vec<u64>,
    ring_mask: u64,
    shift: u32,
    /// Stores sequenced before this never forward (fence barrier).
    fence_seq: u64,
}

const FWD_EMPTY: u64 = u64::MAX;

impl FwdMap {
    fn new() -> FwdMap {
        FwdMap {
            head: Vec::new(),
            blk: Vec::new(),
            ready: Vec::new(),
            prev: Vec::new(),
            ring_mask: 0,
            shift: 63,
            fence_seq: 0,
        }
    }

    /// Prepare for a simulation with store-queue size `sq`.
    fn begin(&mut self, sq: usize) {
        let ring = sq.max(8).next_power_of_two();
        let tab = (4 * ring).next_power_of_two();
        if ring as u64 != self.ring_mask + 1 || self.head.len() != tab {
            self.blk.clear();
            self.blk.resize(ring, 0);
            self.ready.clear();
            self.ready.resize(ring, 0);
            self.prev.clear();
            self.prev.resize(ring, FWD_EMPTY);
            self.head.clear();
            self.head.resize(tab, FWD_EMPTY);
            self.ring_mask = ring as u64 - 1;
            self.shift = 64 - tab.trailing_zeros();
        } else {
            self.head.fill(FWD_EMPTY);
        }
        self.fence_seq = 0;
    }

    /// Fibonacci-hash head index for `blk`.
    #[inline]
    fn head_of(&self, blk: u64) -> usize {
        (blk.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize
    }

    /// A fence publishes every prior store: loads beyond it read from
    /// the memory system, never the forwarding window. `stores_seen` is
    /// the fence-time store count.
    #[inline]
    fn fence(&mut self, stores_seen: u64) {
        self.fence_seq = stores_seen;
    }

    /// Data-ready cycle of the youngest store to `blk` still inside the
    /// forwarding window (`stores_seen` stores issued so far, queue
    /// size `sq`) and after the last fence.
    #[inline]
    fn get(&self, blk: u64, stores_seen: u64, sq: u64) -> Option<u64> {
        let mut s = self.head[self.head_of(blk)];
        while s != FWD_EMPTY && s + sq > stores_seen && s >= self.fence_seq {
            let slot = (s & self.ring_mask) as usize;
            debug_assert!(
                s + (self.ring_mask + 1) > stores_seen,
                "in-window store's ring slot must be intact"
            );
            if self.blk[slot] == blk {
                return Some(self.ready[slot]);
            }
            s = self.prev[slot];
        }
        None
    }

    /// Record store number `seq` to `blk` with its data ready at
    /// `ready`.
    #[inline]
    fn insert(&mut self, blk: u64, ready: u64, seq: u64) {
        let h = self.head_of(blk);
        let slot = (seq & self.ring_mask) as usize;
        self.blk[slot] = blk;
        self.ready[slot] = ready;
        self.prev[slot] = self.head[h];
        self.head[h] = seq;
    }
}

thread_local! {
    static SCOREBOARD: RefCell<Scoreboard> = RefCell::new(Scoreboard::new());
}

/// Run `f` with this thread's reusable [`Scoreboard`].
pub(crate) fn with_scoreboard<R>(f: impl FnOnce(&mut Scoreboard) -> R) -> R {
    SCOREBOARD.with(|sb| f(&mut sb.borrow_mut()))
}

/// Simulate `trace` on the out-of-order machine `cfg`.
pub fn simulate_ooo(trace: &Trace, cfg: &MicroArchConfig) -> SimResult {
    with_scoreboard(|sb| simulate_ooo_with(trace, cfg, sb))
}

fn simulate_ooo_with(trace: &Trace, cfg: &MicroArchConfig, sb: &mut Scoreboard) -> SimResult {
    let n = trace.len();

    decode_program(&trace.program, &mut sb.decoded);

    // Occupancy rings: dispatch waits for the entry `size` instructions
    // back to have retired.
    let rob = cfg.rob_size.max(8) as usize;
    Scoreboard::reset(&mut sb.rob_ring, rob);
    let lq = cfg.lq_size.max(4) as usize;
    Scoreboard::reset(&mut sb.lq_ring, lq);
    let mut loads_seen = 0usize;
    let sq = cfg.sq_size.max(4) as usize;
    Scoreboard::reset(&mut sb.sq_ring, sq);
    let mut stores_seen = 0usize;

    // Store-to-load forwarding: a load forwards from the youngest prior
    // store to its 8-byte block that is still inside the store-queue
    // window (sequence number within `sq` of the load) and younger than
    // the last memory barrier — older stores have architecturally
    // drained, and a fence publishes everything before it, so entries
    // cannot leak across fences or the whole trace.
    sb.fwd.begin(sq);

    // One destructure instead of per-iteration field loads: each piece
    // of scratch becomes an independent borrow the optimiser can keep
    // in registers.
    let Scoreboard {
        decoded,
        caches,
        rob_ring,
        lq_ring,
        sq_ring,
        fwd,
        ..
    } = sb;
    let decoded = &decoded[..];

    let mut hier = Hierarchy::from_pool(
        cfg.l1i,
        cfg.l1d,
        cfg.l2,
        cfg.l2_exclusive,
        MainMemory::new(cfg.mem, cfg.freq_ghz),
        &mut *caches,
    );
    let mut pred = Predictor::new(&cfg.branch);
    let mut btb = Btb::new(cfg.branch.btb_entries);
    let mut fus = FuState::new(&cfg.fus, cfg.issue_width);
    let mut retire = RetireTracker::new(cfg.retire_width);

    let mut reg_ready = [0u64; REG_SLOTS];
    let mut mem_level = vec![HitLevel::None; n];
    let mut mispredicted = vec![false; n];

    // Incremental latency is produced inline as instructions retire
    // (one pass, no second sweep over the retire array; the reference
    // keeps the seed's two-pass `from_retire_cycles`). The arithmetic
    // is expression-for-expression the same, so results stay
    // bit-identical.
    let mut inc = vec![0f32; n];
    let cycle_tenths = cfg.cycle_tenths_ns();
    let mut prev_retire = 0u64;

    // Fetch state.
    let mut fetch_cycle = 0u64;
    let mut fetched_in_cycle = 0u8;
    let mut cur_line = u64::MAX;
    let front = cfg.front_depth as u64;

    // Ring cursors, advanced by wrap-around instead of `%` — the ring
    // sizes are runtime values, so a modulo here is a hardware divide
    // on the hottest path of the whole simulator.
    let mut rob_slot = 0usize;
    let mut lq_slot = 0usize;
    let mut sq_slot = 0usize;

    // Fence serialization.
    let mut mem_barrier = 0u64;
    let mut max_mem_complete = 0u64;

    let mut stats = SimStats::default();

    for i in 0..n {
        let rec = &trace.records[i];
        let d = &decoded[rec.sidx as usize];
        let pc = rec.pc();

        // ---- fetch ------------------------------------------------------
        let line = pc >> 6;
        if line != cur_line {
            let (lat, lvl) = hier.access_ifetch(pc, fetch_cycle);
            if lvl != HitLevel::L1 {
                // A front-end miss stalls fetch until the line arrives.
                fetch_cycle += lat;
                fetched_in_cycle = 0;
            }
            cur_line = line;
        }
        // Branch-free width wrap: the wrap point moves with every
        // redirect, so a branch here is unpredictable.
        let wrap = fetched_in_cycle >= cfg.fetch_width;
        fetch_cycle += wrap as u64;
        fetched_in_cycle = if wrap { 0 } else { fetched_in_cycle };
        let my_fetch = fetch_cycle;
        fetched_in_cycle += 1;

        // ---- dispatch: structural queue occupancy ------------------------
        let mut disp = my_fetch + front;
        if i >= rob {
            disp = disp.max(rob_ring[rob_slot] + 1);
        }
        // This instruction's load- or store-queue slot (`*_seen % size`,
        // tracked by cursor).
        let mut mem_slot = usize::MAX;
        if d.is_load {
            if loads_seen >= lq {
                disp = disp.max(lq_ring[lq_slot] + 1);
            }
            mem_slot = lq_slot;
            loads_seen += 1;
            lq_slot += 1;
            if lq_slot == lq {
                lq_slot = 0;
            }
        } else if d.is_store {
            if stores_seen >= sq {
                disp = disp.max(sq_ring[sq_slot] + 1);
            }
            mem_slot = sq_slot;
            stores_seen += 1;
            sq_slot += 1;
            if sq_slot == sq {
                sq_slot = 0;
            }
        }

        // ---- source readiness --------------------------------------------
        // Nearly every instruction has at most two sources; read them
        // unconditionally (dummy-padded) and fall into a loop only for
        // the rare wider ones.
        let mut ready = disp
            .max(reg_ready[d.srcs[0] as usize & (REG_SLOTS - 1)])
            .max(reg_ready[d.srcs[1] as usize & (REG_SLOTS - 1)]);
        for k in 2..d.n_src as usize {
            ready = ready.max(reg_ready[d.srcs[k] as usize & (REG_SLOTS - 1)]);
        }
        if d.is_mem {
            ready = ready.max(mem_barrier);
        }
        if d.is_barrier {
            ready = ready.max(max_mem_complete);
        }

        // ---- issue + execute -----------------------------------------------
        let start = fus.issue(d.class, ready);
        let mut complete = start + fus.latency(d.class);
        if d.is_load {
            let (lat, lvl) = hier.access_data(rec.addr, start);
            mem_level[i] = lvl;
            complete = start + lat;
            // Store-to-load forwarding beats the cache when an in-flight
            // store to the same block has (or will have) its data. The
            // map holds the youngest store per block; it forwards only
            // while still inside the store-queue window — older stores
            // have drained to the cache.
            if let Some(st_ready) = fwd.get(rec.addr >> 3, stores_seen as u64, sq as u64) {
                if st_ready + 1 > start && st_ready + 1 < complete {
                    complete = st_ready + 1;
                }
            }
        } else if d.is_store {
            // Stores update cache state (write-allocate) and consume
            // bandwidth, but retire without waiting for the fill.
            let (_, lvl) = hier.access_data(rec.addr, start);
            mem_level[i] = lvl;
            complete = start + 1;
            // This store's sequence number is `stores_seen` (already
            // counted at dispatch).
            fwd.insert(rec.addr >> 3, complete, stores_seen as u64);
        }
        if d.is_mem {
            max_mem_complete = max_mem_complete.max(complete);
        }
        if d.is_barrier {
            mem_barrier = complete;
            fwd.fence(stores_seen as u64);
        }
        reg_ready[d.dsts[0] as usize & (REG_SLOTS - 1)] = complete;
        for k in 1..d.n_dst as usize {
            reg_ready[d.dsts[k] as usize & (REG_SLOTS - 1)] = complete;
        }

        // ---- control flow -----------------------------------------------
        if d.is_branch {
            stats.branches += 1;
            let actual_target = rec.next_pc();
            let mispred;
            let mut bubble = 0u64;
            if d.is_cond_branch {
                let pred_taken = pred.predict(pc, d.static_target);
                mispred = pred_taken != rec.taken;
                if !mispred && rec.taken {
                    bubble = if btb.lookup(pc).is_some() {
                        TAKEN_REDIRECT_BUBBLE
                    } else {
                        BTB_MISS_BUBBLE
                    };
                }
                pred.update(pc, rec.taken);
            } else if d.is_indirect_branch {
                mispred = btb.lookup(pc) != Some(actual_target);
            } else {
                // Direct unconditional: direction known; BTB miss costs a
                // decode-stage redirect.
                mispred = false;
                bubble = if btb.lookup(pc).is_some() {
                    TAKEN_REDIRECT_BUBBLE
                } else {
                    BTB_MISS_BUBBLE
                };
            }
            if rec.taken {
                btb.update(pc, actual_target);
            }
            if mispred {
                stats.mispredicts += 1;
                mispredicted[i] = true;
                // Fetch restarts after the branch resolves. `cur_line`
                // is deliberately invalidated even when the target
                // shares the branch's line: the restarted front end
                // re-accesses the I-cache (see the
                // `mispredict_restart_reaccesses_icache` test, which
                // pins this accounting).
                fetch_cycle = complete + 1;
                fetched_in_cycle = 0;
                cur_line = u64::MAX;
            } else if rec.taken {
                fetch_cycle = my_fetch + bubble;
                fetched_in_cycle = 0;
                cur_line = u64::MAX;
            }
        }

        // ---- retire --------------------------------------------------------
        let r = retire.schedule(complete);
        debug_assert!(r >= prev_retire, "retirement must be in order");
        inc[i] = ((r - prev_retire) as f64 * cycle_tenths) as f32;
        prev_retire = r;
        rob_ring[rob_slot] = r;
        rob_slot += 1;
        if rob_slot == rob {
            rob_slot = 0;
        }
        if d.is_load {
            lq_ring[mem_slot] = r;
        } else if d.is_store {
            sq_ring[mem_slot] = r;
        }
    }

    let cs = hier.stats();
    hier.recycle(caches);
    stats.l1i_misses = cs.l1i_misses;
    stats.l1d_misses = cs.l1d_misses;
    stats.l2_misses = cs.l2_misses;
    stats.ifetch_accesses = cs.ifetch_accesses;
    stats.data_accesses = cs.data_accesses;
    stats.cycles = prev_retire;
    stats.instructions = n as u64;

    SimResult {
        inc_latency_tenths: inc,
        total_tenths: prev_retire as f64 * cycle_tenths,
        mem_level,
        mispredicted,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::predefined_configs;
    use perfvec_isa::{Emulator, ProgramBuilder, Reg};

    fn cfg(name: &str) -> MicroArchConfig {
        predefined_configs()
            .into_iter()
            .find(|c| c.name == name)
            .unwrap()
    }

    fn alu_loop_trace(iters: i64) -> Trace {
        let mut b = ProgramBuilder::new();
        let (a, c, i) = (Reg::x(1), Reg::x(3), Reg::x(4));
        b.li(a, 1);
        b.li(c, 3);
        b.li(i, 0);
        let top = b.label();
        // A chain of independent adds: plenty of ILP.
        b.add(Reg::x(5), a, c);
        b.add(Reg::x(6), a, c);
        b.add(Reg::x(7), a, c);
        b.add(Reg::x(8), a, c);
        b.addi(i, i, 1);
        b.blt_imm(i, iters, top);
        b.halt();
        let p = b.build();
        Emulator::new(&p).run(1_000_000).unwrap()
    }

    #[test]
    fn wide_core_beats_narrow_core_on_ilp() {
        let t = alu_loop_trace(500);
        let big = simulate_ooo(&t, &cfg("o3-big"));
        let little = simulate_ooo(&t, &cfg("o3-little"));
        assert!(
            big.stats.ipc() > 1.5 * little.stats.ipc(),
            "big {} vs little {}",
            big.stats.ipc(),
            little.stats.ipc()
        );
    }

    #[test]
    fn dependency_chain_limits_ipc() {
        let mut b = ProgramBuilder::new();
        let a = Reg::x(1);
        b.li(a, 0);
        let top = b.label();
        // Serial dependency chain: IPC must be ~1 even on a wide core.
        b.addi(a, a, 1);
        b.addi(a, a, 1);
        b.addi(a, a, 1);
        b.addi(a, a, 1);
        b.blt_imm(a, 4000, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p).run(1_000_000).unwrap();
        let r = simulate_ooo(&t, &cfg("o3-big"));
        assert!(
            r.stats.ipc() < 2.0,
            "serial chain IPC should be low, got {}",
            r.stats.ipc()
        );
    }

    #[test]
    fn pointer_chase_pays_memory_latency() {
        // Build a random cyclic permutation and chase it: every load misses
        // a small cache and depends on the previous load.
        let n = 4096usize; // 32 KiB of u64 — larger than o3-little's 16 KiB L1D
        let mut next = vec![0u64; n];
        // A simple LCG permutation walk (stride pattern defeating LRU).
        for (i, nx) in next.iter_mut().enumerate() {
            *nx = ((i * 769 + 257) % n) as u64 * 8;
        }
        let mut b = ProgramBuilder::new();
        let arr = b.alloc_u64_slice(&next);
        let (base, p, i) = (Reg::x(1), Reg::x(2), Reg::x(3));
        b.li(base, arr as i64);
        b.li(p, 0);
        b.li(i, 0);
        let top = b.label();
        b.ld_idx(p, base, p, 1, 0, 8); // p = mem[base + p]
        b.addi(i, i, 1);
        b.blt_imm(i, 8000, top);
        b.halt();
        let prog = b.build();
        let t = Emulator::new(&prog).run(100_000).unwrap();

        let r = simulate_ooo(&t, &cfg("o3-little"));
        let alu = simulate_ooo(&alu_loop_trace(2000), &cfg("o3-little"));
        assert!(
            r.stats.l1d_misses > 1000,
            "expected many L1D misses, got {}",
            r.stats.l1d_misses
        );
        assert!(
            r.stats.ipc() < 0.5 * alu.stats.ipc(),
            "pointer chase should be much slower: {} vs {}",
            r.stats.ipc(),
            alu.stats.ipc()
        );
    }

    #[test]
    fn random_branches_cause_mispredicts() {
        // Branch direction depends on a pseudo-random bit: near-50% miss
        // rate on every predictor.
        let mut b = ProgramBuilder::new();
        let (x, i, bit) = (Reg::x(1), Reg::x(2), Reg::x(3));
        b.li(x, 12345);
        b.li(i, 0);
        let top = b.label();
        let skip = b.fwd_label();
        b.muli(x, x, 1103515245);
        b.addi(x, x, 12345);
        b.shri(bit, x, 16);
        b.andi(bit, bit, 1);
        b.beq_imm(bit, 0, skip);
        b.addi(Reg::x(5), Reg::x(5), 1);
        b.bind(skip);
        b.addi(i, i, 1);
        b.blt_imm(i, 3000, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p).run(100_000).unwrap();
        let r = simulate_ooo(&t, &cfg("o3-big"));
        assert!(
            r.stats.mispredict_rate() > 0.1,
            "random branches should mispredict, rate {}",
            r.stats.mispredict_rate()
        );
    }

    /// Pin of the mispredict-restart fetch accounting: a full mispredict
    /// redirect invalidates `cur_line`, so the restarted front end
    /// performs a fresh I-cache access even when the target shares the
    /// mispredicted branch's cache line. This is intentional (the
    /// pipeline refetches after a squash; the line is normally still
    /// L1-resident, so it costs an access, not a miss). The test
    /// recomputes the expected access count from the trace and the
    /// simulator's own redirect decisions and requires an exact match.
    #[test]
    fn mispredict_restart_reaccesses_icache() {
        // Random branches inside a loop small enough that branch and
        // target share fetch lines most of the time.
        let mut b = ProgramBuilder::new();
        let (x, i, bit) = (Reg::x(1), Reg::x(2), Reg::x(3));
        b.li(x, 98765);
        b.li(i, 0);
        let top = b.label();
        let skip = b.fwd_label();
        b.muli(x, x, 1103515245);
        b.addi(x, x, 12345);
        b.shri(bit, x, 16);
        b.andi(bit, bit, 1);
        b.beq_imm(bit, 0, skip);
        b.addi(Reg::x(5), Reg::x(5), 1);
        b.bind(skip);
        b.addi(i, i, 1);
        b.blt_imm(i, 2000, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p).run(100_000).unwrap();
        let c = cfg("o3-medium");
        let r = simulate_ooo(&t, &c);
        assert!(
            r.stats.mispredicts > 100,
            "need real restarts, got {}",
            r.stats.mispredicts
        );

        // Replay the front end's line accounting: an access whenever the
        // fetch line changes, plus an unconditional invalidation after
        // every mispredict or taken branch.
        let mut expected = 0u64;
        let mut cur_line = u64::MAX;
        for (k, rec) in t.records.iter().enumerate() {
            let line = rec.pc() >> 6;
            if line != cur_line {
                expected += 1;
                cur_line = line;
            }
            let inst = t.inst(k);
            if inst.op.is_branch() && (r.mispredicted[k] || rec.taken) {
                cur_line = u64::MAX;
            }
        }
        assert_eq!(
            r.stats.ifetch_accesses, expected,
            "front-end fetch accounting changed: restarts must re-access the I-cache"
        );
    }

    #[test]
    fn total_time_equals_sum_of_incremental_latencies() {
        let t = alu_loop_trace(300);
        for c in predefined_configs()
            .iter()
            .filter(|c| c.core == crate::config::CoreKind::OutOfOrder)
        {
            let r = simulate_ooo(&t, c);
            assert!(
                (r.sum_incremental() - r.total_tenths).abs() < 1e-6 * r.total_tenths.max(1.0),
                "{}",
                c.name
            );
        }
    }

    #[test]
    fn higher_frequency_is_faster_in_wall_time() {
        let t = alu_loop_trace(400);
        let mut fast = cfg("o3-medium");
        let mut slow = fast.clone();
        fast.freq_ghz = 4.0;
        slow.freq_ghz = 1.0;
        let rf = simulate_ooo(&t, &fast);
        let rs = simulate_ooo(&t, &slow);
        assert!(rf.total_tenths < rs.total_tenths);
    }

    #[test]
    fn store_load_forwarding_is_fast() {
        let mut b = ProgramBuilder::new();
        let buf = b.alloc_zeroed(64);
        let (base, v, i) = (Reg::x(1), Reg::x(2), Reg::x(3));
        b.li(base, buf as i64);
        b.li(i, 0);
        let top = b.label();
        b.st(i, base, 0, 8);
        b.ld(v, base, 0, 8); // immediately reload the same address
        b.addi(i, i, 1);
        b.blt_imm(i, 2000, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p).run(100_000).unwrap();
        let r = simulate_ooo(&t, &cfg("o3-medium"));
        // Near-perfect locality plus forwarding: should be fast.
        assert!(r.stats.ipc() > 1.0, "forwarding loop IPC {}", r.stats.ipc());
        assert!(r.stats.l1d_misses <= 2);
    }

    #[test]
    fn results_are_identical_across_repeated_calls() {
        // The reusable thread-local scoreboard must not leak state
        // between simulations (also exercised with interleaved configs).
        let t = alu_loop_trace(200);
        let t2 = alu_loop_trace(137);
        let first = simulate_ooo(&t, &cfg("o3-big"));
        let _ = simulate_ooo(&t2, &cfg("o3-little"));
        let again = simulate_ooo(&t, &cfg("o3-big"));
        assert_eq!(first.stats, again.stats);
        assert_eq!(
            first
                .inc_latency_tenths
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            again
                .inc_latency_tenths
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>()
        );
    }
}
