//! Microarchitecture sampling.
//!
//! Reproduces the paper's dataset recipe (Section IV-C): a tool that
//! randomly samples valid configurations across processor, cache, and
//! memory knobs, plus seven predefined configurations (four out-of-order,
//! three in-order). The default training population is 60 random
//! out-of-order + 10 random in-order + the 7 predefined = 77 machines.

use crate::config::{
    BranchConfig, CacheConfig, CoreKind, FuConfig, FuPool, MemConfig, MemKind, MicroArchConfig,
    PredictorKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's default training-population size.
pub const DEFAULT_POPULATION: usize = 77;

/// The workspace-wide default seed for [`training_population`]: the
/// harness trains against this population, and the serving stack
/// re-derives it to map `MicroArchConfig`s onto checkpoint table rows —
/// so every consumer must agree on one value, defined here.
pub const DEFAULT_MARCH_SEED: u64 = 0x7711_2024;

fn pool(count: u8, latency: u8, pipelined: bool) -> FuPool {
    FuPool {
        count,
        latency,
        pipelined,
    }
}

fn kib(k: u64) -> u64 {
    k * 1024
}

fn cache(size_kb: u64, assoc: u32, latency: u32) -> CacheConfig {
    CacheConfig {
        size_bytes: kib(size_kb),
        assoc,
        line_bytes: 64,
        latency,
    }
}

/// The seven predefined configurations (4 out-of-order, 3 in-order),
/// standing in for gem5's stock CPU configs. `cortex-a7-like` is the
/// model used by the DSE and loop-tiling case studies (Section VI).
pub fn predefined_configs() -> Vec<MicroArchConfig> {
    let ooo_fus = FuConfig {
        int_alu: pool(4, 1, true),
        int_mul: pool(2, 3, true),
        int_div: pool(1, 20, false),
        fp_alu: pool(2, 3, true),
        fp_mul: pool(2, 4, true),
        fp_div: pool(1, 14, false),
        simd: pool(2, 3, true),
        mem_port: pool(2, 1, true),
    };
    let little_fus = FuConfig {
        int_alu: pool(2, 1, true),
        int_mul: pool(1, 4, true),
        int_div: pool(1, 26, false),
        fp_alu: pool(1, 4, true),
        fp_mul: pool(1, 5, true),
        fp_div: pool(1, 18, false),
        simd: pool(1, 4, true),
        mem_port: pool(1, 1, true),
    };
    let tournament = BranchConfig {
        kind: PredictorKind::Tournament,
        table_bits: 12,
        history_bits: 12,
        btb_entries: 4096,
    };
    let bimodal = BranchConfig {
        kind: PredictorKind::Bimodal,
        table_bits: 10,
        history_bits: 0,
        btb_entries: 512,
    };

    vec![
        MicroArchConfig {
            name: "o3-big".into(),
            core: CoreKind::OutOfOrder,
            freq_ghz: 3.0,
            fetch_width: 8,
            front_depth: 12,
            issue_width: 8,
            retire_width: 8,
            rob_size: 192,
            lq_size: 72,
            sq_size: 56,
            fus: ooo_fus,
            branch: tournament,
            l1i: cache(32, 4, 2),
            l1d: cache(32, 8, 3),
            l2: cache(1024, 16, 12),
            l2_exclusive: false,
            mem: MemConfig::typical(MemKind::Ddr4),
        },
        MicroArchConfig {
            name: "o3-medium".into(),
            core: CoreKind::OutOfOrder,
            freq_ghz: 2.5,
            fetch_width: 4,
            front_depth: 10,
            issue_width: 4,
            retire_width: 4,
            rob_size: 128,
            lq_size: 48,
            sq_size: 36,
            fus: ooo_fus,
            branch: tournament,
            l1i: cache(32, 4, 2),
            l1d: cache(32, 4, 2),
            l2: cache(512, 8, 10),
            l2_exclusive: false,
            mem: MemConfig::typical(MemKind::Ddr4),
        },
        MicroArchConfig {
            name: "o3-little".into(),
            core: CoreKind::OutOfOrder,
            freq_ghz: 2.0,
            fetch_width: 2,
            front_depth: 8,
            issue_width: 2,
            retire_width: 2,
            rob_size: 64,
            lq_size: 24,
            sq_size: 20,
            fus: little_fus,
            branch: bimodal,
            l1i: cache(16, 2, 1),
            l1d: cache(16, 4, 2),
            l2: cache(256, 8, 9),
            l2_exclusive: false,
            mem: MemConfig::typical(MemKind::Lpddr5),
        },
        MicroArchConfig {
            name: "o3-wide".into(),
            core: CoreKind::OutOfOrder,
            freq_ghz: 3.5,
            fetch_width: 6,
            front_depth: 14,
            issue_width: 6,
            retire_width: 6,
            rob_size: 256,
            lq_size: 96,
            sq_size: 72,
            fus: ooo_fus,
            branch: tournament,
            l1i: cache(64, 8, 3),
            l1d: cache(64, 8, 3),
            l2: cache(2048, 16, 14),
            l2_exclusive: false,
            mem: MemConfig::typical(MemKind::Hbm),
        },
        MicroArchConfig {
            name: "cortex-a7-like".into(),
            core: CoreKind::InOrder,
            freq_ghz: 1.6,
            fetch_width: 2,
            front_depth: 8,
            issue_width: 2,
            retire_width: 2,
            rob_size: 0,
            lq_size: 0,
            sq_size: 0,
            fus: little_fus,
            branch: bimodal,
            l1i: cache(32, 2, 1),
            l1d: cache(32, 4, 1),
            l2: cache(512, 8, 8),
            l2_exclusive: false,
            mem: MemConfig::typical(MemKind::Lpddr5),
        },
        MicroArchConfig {
            name: "a53-like".into(),
            core: CoreKind::InOrder,
            freq_ghz: 2.0,
            fetch_width: 2,
            front_depth: 8,
            issue_width: 2,
            retire_width: 2,
            rob_size: 0,
            lq_size: 0,
            sq_size: 0,
            fus: little_fus,
            branch: BranchConfig {
                kind: PredictorKind::GShare,
                table_bits: 11,
                history_bits: 9,
                btb_entries: 1024,
            },
            l1i: cache(32, 2, 1),
            l1d: cache(32, 4, 1),
            l2: cache(1024, 16, 10),
            l2_exclusive: false,
            mem: MemConfig::typical(MemKind::Lpddr5),
        },
        MicroArchConfig {
            name: "scalar-simple".into(),
            core: CoreKind::InOrder,
            freq_ghz: 1.0,
            fetch_width: 1,
            front_depth: 5,
            issue_width: 1,
            retire_width: 1,
            rob_size: 0,
            lq_size: 0,
            sq_size: 0,
            fus: little_fus,
            branch: BranchConfig {
                kind: PredictorKind::StaticBtfn,
                table_bits: 4,
                history_bits: 0,
                btb_entries: 64,
            },
            l1i: cache(8, 1, 1),
            l1d: cache(8, 2, 1),
            l2: cache(256, 4, 8),
            l2_exclusive: false,
            mem: MemConfig::typical(MemKind::Ddr4),
        },
    ]
}

/// Randomly sample one valid configuration of the requested kind.
pub fn sample_config(rng: &mut StdRng, core: CoreKind, name: String) -> MicroArchConfig {
    let ooo = core == CoreKind::OutOfOrder;
    let freq_choices = [1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0];
    let freq_ghz = freq_choices[rng.gen_range(0..freq_choices.len())];
    let width: u8 = if ooo {
        rng.gen_range(2..=8)
    } else {
        rng.gen_range(1..=2)
    };
    let fus = FuConfig {
        int_alu: pool(rng.gen_range(1..=width.max(2)), 1, true),
        int_mul: pool(rng.gen_range(1..=2), rng.gen_range(2..=5), true),
        int_div: pool(1, rng.gen_range(8..=40), false),
        fp_alu: pool(rng.gen_range(1..=3), rng.gen_range(2..=6), true),
        fp_mul: pool(rng.gen_range(1..=3), rng.gen_range(3..=6), true),
        fp_div: pool(1, rng.gen_range(8..=30), false),
        simd: pool(rng.gen_range(1..=3), rng.gen_range(2..=6), true),
        mem_port: pool(rng.gen_range(1..=3).min(width), 1, true),
    };
    let kind = if ooo {
        match rng.gen_range(0..4) {
            0 => PredictorKind::Bimodal,
            1 | 2 => PredictorKind::GShare,
            _ => PredictorKind::Tournament,
        }
    } else {
        match rng.gen_range(0..4) {
            0 => PredictorKind::StaticBtfn,
            1 | 2 => PredictorKind::Bimodal,
            _ => PredictorKind::GShare,
        }
    };
    let branch = BranchConfig {
        kind,
        table_bits: rng.gen_range(8..=14),
        history_bits: rng.gen_range(4..=14),
        btb_entries: 1 << rng.gen_range(8..=12),
    };
    let l1_sizes = [4u64, 8, 16, 32, 64, 128];
    let l1i = cache(
        l1_sizes[rng.gen_range(0..l1_sizes.len())],
        1 << rng.gen_range(0..=3),
        rng.gen_range(1..=3),
    );
    let l1d = cache(
        l1_sizes[rng.gen_range(0..l1_sizes.len())],
        1 << rng.gen_range(0..=3),
        rng.gen_range(1..=4),
    );
    let l2_sizes = [256u64, 512, 1024, 2048, 4096, 8192];
    let l2 = cache(
        l2_sizes[rng.gen_range(0..l2_sizes.len())],
        1 << rng.gen_range(2..=4),
        rng.gen_range(6..=20),
    );
    let mem_kind = match rng.gen_range(0..4) {
        0 => MemKind::Ddr4,
        1 => MemKind::Lpddr5,
        2 => MemKind::Gddr5,
        _ => MemKind::Hbm,
    };
    let mut mem = MemConfig::typical(mem_kind);
    mem.latency_ns *= rng.gen_range(0.7..1.4);
    mem.bandwidth_gbps *= rng.gen_range(0.7..1.4);

    MicroArchConfig {
        name,
        core,
        freq_ghz,
        fetch_width: width,
        front_depth: rng.gen_range(5..=16),
        issue_width: width,
        retire_width: if ooo {
            rng.gen_range(width.max(2) - 1..=width)
        } else {
            width
        },
        rob_size: if ooo { rng.gen_range(32..=320) } else { 0 },
        lq_size: if ooo { rng.gen_range(16..=96) } else { 0 },
        sq_size: if ooo { rng.gen_range(12..=72) } else { 0 },
        fus,
        branch,
        l1i,
        l1d,
        l2,
        l2_exclusive: rng.gen_bool(0.1),
        mem,
    }
}

/// Sample `n_ooo` out-of-order and `n_inorder` in-order configurations.
pub fn sample_configs(seed: u64, n_ooo: usize, n_inorder: usize) -> Vec<MicroArchConfig> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n_ooo + n_inorder);
    for i in 0..n_ooo {
        out.push(sample_config(
            &mut rng,
            CoreKind::OutOfOrder,
            format!("rand-ooo-{i}"),
        ));
    }
    for i in 0..n_inorder {
        out.push(sample_config(
            &mut rng,
            CoreKind::InOrder,
            format!("rand-io-{i}"),
        ));
    }
    out
}

/// The paper's 77-machine training population: 60 random out-of-order +
/// 10 random in-order + 7 predefined.
pub fn training_population(seed: u64) -> Vec<MicroArchConfig> {
    let mut v = sample_configs(seed, 60, 10);
    v.extend(predefined_configs());
    debug_assert_eq!(v.len(), DEFAULT_POPULATION);
    v
}

/// Ten *unseen* configurations for the generalization experiment
/// (Figure 5); uses a disjoint seed stream from
/// [`training_population`].
pub fn unseen_population(seed: u64) -> Vec<MicroArchConfig> {
    let mut v = sample_configs(seed ^ 0x5eed_0ff5_e7f0_0d5e, 8, 2);
    for (i, c) in v.iter_mut().enumerate() {
        c.name = format!("unseen-{i}");
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_has_paper_size_and_mix() {
        let pop = training_population(7);
        assert_eq!(pop.len(), 77);
        let ooo = pop
            .iter()
            .filter(|c| c.core == CoreKind::OutOfOrder)
            .count();
        let io = pop.iter().filter(|c| c.core == CoreKind::InOrder).count();
        assert_eq!(ooo, 64); // 60 random + 4 predefined
        assert_eq!(io, 13); // 10 random + 3 predefined
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        assert_eq!(training_population(42), training_population(42));
        assert_ne!(training_population(42), training_population(43));
    }

    #[test]
    fn unseen_population_is_disjoint_from_training() {
        let train = training_population(42);
        let unseen = unseen_population(42);
        assert_eq!(unseen.len(), 10);
        for u in &unseen {
            assert!(train.iter().all(|t| t.param_vector() != u.param_vector()));
        }
    }

    #[test]
    fn sampled_configs_are_valid() {
        for c in training_population(1) {
            assert!(c.freq_ghz >= 1.0 && c.freq_ghz <= 4.0);
            assert!(c.issue_width >= 1);
            assert!(c.l1d.num_sets() >= 1);
            assert!(c.l2.size_bytes > c.l1d.size_bytes);
            if c.core == CoreKind::OutOfOrder {
                assert!(c.rob_size >= 32);
            }
            // Parameter vector stays well-formed for every sample.
            assert_eq!(c.param_vector().len(), MicroArchConfig::PARAM_DIM);
        }
    }

    #[test]
    fn a7_config_exists_for_case_studies() {
        assert!(predefined_configs()
            .iter()
            .any(|c| c.name == "cortex-a7-like"));
    }
}
