//! In-order core timing model.
//!
//! Scoreboarded in-order pipeline (Cortex-A7/A53 flavour): instructions
//! issue strictly in program order, stall on source operands (loads block
//! at first use), share the front end's fetch/branch behaviour with the
//! OoO model, and retire in order. The timing loop lives in
//! [`crate::machine::InorderMachine`] and is shared with the lockstep
//! grid simulator.

use crate::config::MicroArchConfig;
use crate::latency::SimResult;
use crate::machine::{run_inorder_cell, with_scratch};
use perfvec_isa::Trace;

/// Simulate `trace` on the in-order machine `cfg`.
pub fn simulate_inorder(trace: &Trace, cfg: &MicroArchConfig) -> SimResult {
    with_scratch(|s| {
        s.dt.build(trace);
        let (dt, cells) = (&s.dt, &mut s.cells);
        run_inorder_cell(dt, cfg, &mut cells[0])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ooo::simulate_ooo;
    use crate::sample::predefined_configs;
    use perfvec_isa::{Emulator, ProgramBuilder, Reg};

    fn cfg(name: &str) -> MicroArchConfig {
        predefined_configs()
            .into_iter()
            .find(|c| c.name == name)
            .unwrap()
    }

    fn ilp_trace() -> Trace {
        let mut b = ProgramBuilder::new();
        let (a, c, i) = (Reg::x(1), Reg::x(3), Reg::x(4));
        b.li(a, 1);
        b.li(c, 3);
        b.li(i, 0);
        let top = b.label();
        b.add(Reg::x(5), a, c);
        b.add(Reg::x(6), a, c);
        b.add(Reg::x(7), a, c);
        b.add(Reg::x(8), a, c);
        b.addi(i, i, 1);
        b.blt_imm(i, 1000, top);
        b.halt();
        let p = b.build();
        Emulator::new(&p).run(1_000_000).unwrap()
    }

    #[test]
    fn inorder_ipc_bounded_by_issue_width() {
        let t = ilp_trace();
        let c = cfg("cortex-a7-like"); // dual issue
        let r = simulate_inorder(&t, &c);
        assert!(r.stats.ipc() <= c.issue_width as f64 + 1e-9);
        assert!(
            r.stats.ipc() > 0.4,
            "should still make progress, ipc {}",
            r.stats.ipc()
        );
    }

    #[test]
    fn ooo_core_outruns_inorder_core_on_same_trace() {
        let t = ilp_trace();
        let io = simulate_inorder(&t, &cfg("a53-like"));
        let ooo = simulate_ooo(&t, &cfg("o3-big"));
        assert!(ooo.stats.ipc() > io.stats.ipc());
    }

    #[test]
    fn scalar_core_is_slowest() {
        let t = ilp_trace();
        let scalar = simulate_inorder(&t, &cfg("scalar-simple"));
        let dual = simulate_inorder(&t, &cfg("a53-like"));
        assert!(scalar.stats.ipc() <= 1.0 + 1e-9);
        assert!(dual.stats.cycles < scalar.stats.cycles);
    }

    #[test]
    fn incremental_latency_sums_for_inorder_cores() {
        let t = ilp_trace();
        for c in predefined_configs()
            .iter()
            .filter(|c| c.core == crate::config::CoreKind::InOrder)
        {
            let r = simulate_inorder(&t, c);
            assert!(
                (r.sum_incremental() - r.total_tenths).abs() < 1e-6 * r.total_tenths.max(1.0),
                "{}",
                c.name
            );
        }
    }

    #[test]
    fn load_use_stall_hurts_inorder_more() {
        // load -> immediate use chain
        let mut b = ProgramBuilder::new();
        let buf = b.alloc_u64_slice(&vec![1u64; 512]);
        let (base, v, i) = (Reg::x(1), Reg::x(2), Reg::x(3));
        b.li(base, buf as i64);
        b.li(i, 0);
        let top = b.label();
        b.ld_idx(v, base, i, 8, 0, 8);
        b.add(Reg::x(5), v, v); // uses the load immediately
        b.addi(i, i, 1);
        b.andi(i, i, 511);
        b.addi(Reg::x(6), Reg::x(6), 1);
        b.blt_imm(Reg::x(6), 2000, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p).run(100_000).unwrap();
        let io = simulate_inorder(&t, &cfg("a53-like"));
        let ooo = simulate_ooo(&t, &cfg("o3-medium"));
        assert!(ooo.stats.ipc() > io.stats.ipc());
    }
}
