//! In-order core timing model.
//!
//! Scoreboarded in-order pipeline (Cortex-A7/A53 flavour): instructions
//! issue strictly in program order, stall on source operands (loads block
//! at first use), share the front end's fetch/branch behaviour with the
//! OoO model, and retire in order.

use crate::branch::{Btb, Predictor};
use crate::cache::{Hierarchy, HitLevel};
use crate::config::MicroArchConfig;
use crate::fu::FuState;
use crate::latency::{RetireTracker, SimResult, SimStats};
use crate::memsys::MainMemory;
use crate::ooo::{decode_program, with_scoreboard, Scoreboard, REG_SLOTS};
use perfvec_isa::Trace;

/// Bubble for a correctly predicted taken branch.
const TAKEN_REDIRECT_BUBBLE: u64 = 1;
/// Bubble when a taken branch misses the BTB.
const BTB_MISS_BUBBLE: u64 = 2;

/// Simulate `trace` on the in-order machine `cfg`.
pub fn simulate_inorder(trace: &Trace, cfg: &MicroArchConfig) -> SimResult {
    with_scoreboard(|sb| simulate_inorder_with(trace, cfg, sb))
}

fn simulate_inorder_with(trace: &Trace, cfg: &MicroArchConfig, sb: &mut Scoreboard) -> SimResult {
    let n = trace.len();
    let mut hier = Hierarchy::from_pool(
        cfg.l1i,
        cfg.l1d,
        cfg.l2,
        cfg.l2_exclusive,
        MainMemory::new(cfg.mem, cfg.freq_ghz),
        &mut sb.caches,
    );
    let mut pred = Predictor::new(&cfg.branch);
    let mut btb = Btb::new(cfg.branch.btb_entries);
    let mut fus = FuState::new(&cfg.fus, cfg.issue_width);
    let mut retire = RetireTracker::new(cfg.retire_width);

    decode_program(&trace.program, &mut sb.decoded);
    let decoded = &sb.decoded[..];

    let mut reg_ready = [0u64; REG_SLOTS];
    let mut mem_level = vec![HitLevel::None; n];
    let mut mispredicted = vec![false; n];

    // Incremental latency computed inline at retirement, exactly like
    // the out-of-order loop (see `simulate_ooo_with`).
    let mut inc = vec![0f32; n];
    let cycle_tenths = cfg.cycle_tenths_ns();
    let mut prev_retire = 0u64;

    let mut fetch_cycle = 0u64;
    let mut fetched_in_cycle = 0u8;
    let mut cur_line = u64::MAX;
    let front = cfg.front_depth as u64;

    // Strict in-order issue.
    let mut last_issue = 0u64;
    // Fences serialize memory.
    let mut mem_barrier = 0u64;
    let mut max_mem_complete = 0u64;

    let mut stats = SimStats::default();

    for i in 0..n {
        let rec = &trace.records[i];
        let d = &decoded[rec.sidx as usize];
        let pc = rec.pc();

        // ---- fetch (same structure as the OoO front end) ----
        let line = pc >> 6;
        if line != cur_line {
            let (lat, lvl) = hier.access_ifetch(pc, fetch_cycle);
            if lvl != HitLevel::L1 {
                fetch_cycle += lat;
                fetched_in_cycle = 0;
            }
            cur_line = line;
        }
        // Branch-free width wrap: the wrap point moves with every
        // redirect, so a branch here is unpredictable.
        let wrap = fetched_in_cycle >= cfg.fetch_width;
        fetch_cycle += wrap as u64;
        fetched_in_cycle = if wrap { 0 } else { fetched_in_cycle };
        let my_fetch = fetch_cycle;
        fetched_in_cycle += 1;

        // ---- issue: in order, after decode, sources ready ----
        let mut ready = (my_fetch + front)
            .max(last_issue)
            .max(reg_ready[d.srcs[0] as usize & (REG_SLOTS - 1)])
            .max(reg_ready[d.srcs[1] as usize & (REG_SLOTS - 1)]);
        for k in 2..d.n_src as usize {
            ready = ready.max(reg_ready[d.srcs[k] as usize & (REG_SLOTS - 1)]);
        }
        if d.is_mem {
            ready = ready.max(mem_barrier);
        }
        if d.is_barrier {
            ready = ready.max(max_mem_complete);
        }
        let start = fus.issue(d.class, ready);
        last_issue = start;

        // ---- execute ----
        let mut complete = start + fus.latency(d.class);
        if d.is_load {
            let (lat, lvl) = hier.access_data(rec.addr, start);
            mem_level[i] = lvl;
            complete = start + lat;
        } else if d.is_store {
            let (_, lvl) = hier.access_data(rec.addr, start);
            mem_level[i] = lvl;
            // Store buffer hides the fill latency.
            complete = start + 1;
        }
        if d.is_mem {
            max_mem_complete = max_mem_complete.max(complete);
        }
        if d.is_barrier {
            mem_barrier = complete;
        }
        reg_ready[d.dsts[0] as usize & (REG_SLOTS - 1)] = complete;
        for k in 1..d.n_dst as usize {
            reg_ready[d.dsts[k] as usize & (REG_SLOTS - 1)] = complete;
        }

        // ---- control flow ----
        if d.is_branch {
            stats.branches += 1;
            let actual_target = rec.next_pc();
            let mispred;
            let mut bubble = 0u64;
            if d.is_cond_branch {
                let pred_taken = pred.predict(pc, d.static_target);
                mispred = pred_taken != rec.taken;
                if !mispred && rec.taken {
                    bubble = if btb.lookup(pc).is_some() {
                        TAKEN_REDIRECT_BUBBLE
                    } else {
                        BTB_MISS_BUBBLE
                    };
                }
                pred.update(pc, rec.taken);
            } else if d.is_indirect_branch {
                mispred = btb.lookup(pc) != Some(actual_target);
            } else {
                mispred = false;
                bubble = if btb.lookup(pc).is_some() {
                    TAKEN_REDIRECT_BUBBLE
                } else {
                    BTB_MISS_BUBBLE
                };
            }
            if rec.taken {
                btb.update(pc, actual_target);
            }
            if mispred {
                stats.mispredicts += 1;
                mispredicted[i] = true;
                // In-order branches resolve at execute; the refill cost is
                // the front-end depth (applied via the fetch->issue path).
                fetch_cycle = complete + 1;
                fetched_in_cycle = 0;
                cur_line = u64::MAX;
            } else if rec.taken {
                fetch_cycle = my_fetch + bubble;
                fetched_in_cycle = 0;
                cur_line = u64::MAX;
            }
        }

        // ---- retire ----
        let r = retire.schedule(complete);
        debug_assert!(r >= prev_retire, "retirement must be in order");
        inc[i] = ((r - prev_retire) as f64 * cycle_tenths) as f32;
        prev_retire = r;
    }

    let cs = hier.stats();
    hier.recycle(&mut sb.caches);
    stats.l1i_misses = cs.l1i_misses;
    stats.l1d_misses = cs.l1d_misses;
    stats.l2_misses = cs.l2_misses;
    stats.ifetch_accesses = cs.ifetch_accesses;
    stats.data_accesses = cs.data_accesses;
    stats.cycles = prev_retire;
    stats.instructions = n as u64;

    SimResult {
        inc_latency_tenths: inc,
        total_tenths: prev_retire as f64 * cycle_tenths,
        mem_level,
        mispredicted,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ooo::simulate_ooo;
    use crate::sample::predefined_configs;
    use perfvec_isa::{Emulator, ProgramBuilder, Reg};

    fn cfg(name: &str) -> MicroArchConfig {
        predefined_configs()
            .into_iter()
            .find(|c| c.name == name)
            .unwrap()
    }

    fn ilp_trace() -> Trace {
        let mut b = ProgramBuilder::new();
        let (a, c, i) = (Reg::x(1), Reg::x(3), Reg::x(4));
        b.li(a, 1);
        b.li(c, 3);
        b.li(i, 0);
        let top = b.label();
        b.add(Reg::x(5), a, c);
        b.add(Reg::x(6), a, c);
        b.add(Reg::x(7), a, c);
        b.add(Reg::x(8), a, c);
        b.addi(i, i, 1);
        b.blt_imm(i, 1000, top);
        b.halt();
        let p = b.build();
        Emulator::new(&p).run(1_000_000).unwrap()
    }

    #[test]
    fn inorder_ipc_bounded_by_issue_width() {
        let t = ilp_trace();
        let c = cfg("cortex-a7-like"); // dual issue
        let r = simulate_inorder(&t, &c);
        assert!(r.stats.ipc() <= c.issue_width as f64 + 1e-9);
        assert!(
            r.stats.ipc() > 0.4,
            "should still make progress, ipc {}",
            r.stats.ipc()
        );
    }

    #[test]
    fn ooo_core_outruns_inorder_core_on_same_trace() {
        let t = ilp_trace();
        let io = simulate_inorder(&t, &cfg("a53-like"));
        let ooo = simulate_ooo(&t, &cfg("o3-big"));
        assert!(ooo.stats.ipc() > io.stats.ipc());
    }

    #[test]
    fn scalar_core_is_slowest() {
        let t = ilp_trace();
        let scalar = simulate_inorder(&t, &cfg("scalar-simple"));
        let dual = simulate_inorder(&t, &cfg("a53-like"));
        assert!(scalar.stats.ipc() <= 1.0 + 1e-9);
        assert!(dual.stats.cycles < scalar.stats.cycles);
    }

    #[test]
    fn incremental_latency_sums_for_inorder_cores() {
        let t = ilp_trace();
        for c in predefined_configs()
            .iter()
            .filter(|c| c.core == crate::config::CoreKind::InOrder)
        {
            let r = simulate_inorder(&t, c);
            assert!(
                (r.sum_incremental() - r.total_tenths).abs() < 1e-6 * r.total_tenths.max(1.0),
                "{}",
                c.name
            );
        }
    }

    #[test]
    fn load_use_stall_hurts_inorder_more() {
        // load -> immediate use chain
        let mut b = ProgramBuilder::new();
        let buf = b.alloc_u64_slice(&vec![1u64; 512]);
        let (base, v, i) = (Reg::x(1), Reg::x(2), Reg::x(3));
        b.li(base, buf as i64);
        b.li(i, 0);
        let top = b.label();
        b.ld_idx(v, base, i, 8, 0, 8);
        b.add(Reg::x(5), v, v); // uses the load immediately
        b.addi(i, i, 1);
        b.andi(i, i, 511);
        b.addi(Reg::x(6), Reg::x(6), 1);
        b.blt_imm(Reg::x(6), 2000, top);
        b.halt();
        let p = b.build();
        let t = Emulator::new(&p).run(100_000).unwrap();
        let io = simulate_inorder(&t, &cfg("a53-like"));
        let ooo = simulate_ooo(&t, &cfg("o3-medium"));
        assert!(ooo.stats.ipc() > io.stats.ipc());
    }
}
