//! Simulation results: retire scheduling, incremental latencies, and
//! summary statistics.
//!
//! The paper's prediction target is the **incremental latency** of each
//! instruction: "the time length that an instruction stays active in the
//! processor after all of its predecessors exit" (Section III-B). With
//! in-order retirement this is `retire[i] − retire[i−1]` (clamped at
//! zero), and the sum of incremental latencies telescopes to the total
//! execution time — the property that makes program representations
//! compositional.

use crate::cache::HitLevel;

/// In-order retirement scheduler shared by both core models: enforces
/// monotone retire times and the configured retire width per cycle.
#[derive(Debug, Clone)]
pub struct RetireTracker {
    width: u8,
    last_cycle: u64,
    count_in_cycle: u8,
}

impl RetireTracker {
    /// Tracker enforcing at most `width` retirements per cycle.
    pub fn new(width: u8) -> RetireTracker {
        RetireTracker {
            width: width.max(1),
            last_cycle: 0,
            count_in_cycle: 0,
        }
    }

    /// Schedule the retirement of an instruction that completes
    /// execution at cycle `complete`; returns its retire cycle.
    ///
    /// Written branch-free: this runs once per simulated instruction
    /// and its conditions flip with the retire pattern, so a
    /// compare-and-branch form mispredicts constantly.
    #[inline]
    pub fn schedule(&mut self, complete: u64) -> u64 {
        let mut r = (complete + 1).max(self.last_cycle);
        r += (r == self.last_cycle && self.count_in_cycle >= self.width) as u64;
        let fresh = r > self.last_cycle;
        self.count_in_cycle = if fresh { 1 } else { self.count_in_cycle + 1 };
        self.last_cycle = r;
        r
    }

    /// The most recent retire cycle.
    pub fn last_cycle(&self) -> u64 {
        self.last_cycle
    }
}

/// Aggregate counters from one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Total cycles to retire the whole trace.
    pub cycles: u64,
    /// Executed instruction count.
    pub instructions: u64,
    /// L1I misses.
    pub l1i_misses: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Conditional/indirect branch mispredictions.
    pub mispredicts: u64,
    /// Executed branch instructions.
    pub branches: u64,
    /// I-cache accesses issued by the front end (one per fetch-line
    /// change; pins the restart-refetch accounting).
    pub ifetch_accesses: u64,
    /// D-cache accesses issued by loads and stores.
    pub data_accesses: u64,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Misprediction rate over executed branches.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

/// The output of one (trace, microarchitecture) simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Per-instruction incremental latency, in 0.1 ns units (the paper's
    /// latency unit).
    pub inc_latency_tenths: Vec<f32>,
    /// Total execution time in 0.1 ns units.
    pub total_tenths: f64,
    /// Which level serviced each instruction's memory access
    /// ([`HitLevel::None`] for non-memory ops). Microarchitecture-
    /// *dependent*: consumed by the SimNet baseline, never by PerfVec.
    pub mem_level: Vec<HitLevel>,
    /// Whether each instruction was a mispredicted branch
    /// (microarchitecture-dependent; for the SimNet baseline).
    pub mispredicted: Vec<bool>,
    /// Summary counters.
    pub stats: SimStats,
}

impl SimResult {
    /// Assemble a result from per-instruction retire cycles.
    ///
    /// `retire_cycles` must be monotone non-decreasing (in-order
    /// retirement); `cycle_tenths` converts cycles to 0.1 ns.
    pub fn from_retire_cycles(
        retire_cycles: &[u64],
        cycle_tenths: f64,
        mem_level: Vec<HitLevel>,
        mispredicted: Vec<bool>,
        mut stats: SimStats,
    ) -> SimResult {
        let mut inc = Vec::with_capacity(retire_cycles.len());
        let mut prev = 0u64;
        for &r in retire_cycles {
            debug_assert!(r >= prev, "retirement must be in order");
            inc.push(((r - prev) as f64 * cycle_tenths) as f32);
            prev = r;
        }
        stats.cycles = prev;
        stats.instructions = retire_cycles.len() as u64;
        let total_tenths = prev as f64 * cycle_tenths;
        SimResult {
            inc_latency_tenths: inc,
            total_tenths,
            mem_level,
            mispredicted,
            stats,
        }
    }

    /// Number of simulated instructions.
    pub fn len(&self) -> usize {
        self.inc_latency_tenths.len()
    }

    /// True when the trace was empty.
    pub fn is_empty(&self) -> bool {
        self.inc_latency_tenths.is_empty()
    }

    /// Sum of incremental latencies — equal to
    /// [`SimResult::total_tenths`] up to accumulation rounding, which
    /// property tests assert.
    pub fn sum_incremental(&self) -> f64 {
        self.inc_latency_tenths.iter().map(|&x| x as f64).sum()
    }

    /// Bit-exact equality with `other`: incremental latencies compared
    /// by their IEEE-754 bit patterns (no epsilon), plus `mem_level`,
    /// `mispredicted`, and all [`SimStats`] counters. This is the
    /// contract the dense-array simulator kernels are held to against
    /// the reference implementation.
    pub fn bits_identical(&self, other: &SimResult) -> bool {
        self.inc_latency_tenths.len() == other.inc_latency_tenths.len()
            && self
                .inc_latency_tenths
                .iter()
                .zip(&other.inc_latency_tenths)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self.total_tenths.to_bits() == other.total_tenths.to_bits()
            && self.mem_level == other.mem_level
            && self.mispredicted == other.mispredicted
            && self.stats == other.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retire_is_monotone_and_width_limited() {
        let mut t = RetireTracker::new(2);
        // Four instructions all complete at cycle 5.
        let r: Vec<u64> = (0..4).map(|_| t.schedule(5)).collect();
        assert_eq!(r, vec![6, 6, 7, 7]);
    }

    #[test]
    fn late_completion_pushes_retirement() {
        let mut t = RetireTracker::new(4);
        assert_eq!(t.schedule(10), 11);
        // An older-but-slower instruction already retired at 11; a fast
        // successor cannot retire before it.
        assert_eq!(t.schedule(3), 11);
        assert_eq!(t.schedule(20), 21);
    }

    #[test]
    fn incremental_latencies_sum_to_total() {
        let retire = vec![2u64, 2, 5, 9, 9, 10];
        let r = SimResult::from_retire_cycles(&retire, 5.0, vec![], vec![], SimStats::default());
        assert_eq!(r.total_tenths, 50.0);
        assert!((r.sum_incremental() - r.total_tenths).abs() < 1e-9);
        assert_eq!(r.inc_latency_tenths[0], 10.0); // first retires at cycle 2
        assert_eq!(r.inc_latency_tenths[1], 0.0); // same-cycle retire => zero
    }

    #[test]
    fn stats_derive_ipc() {
        let retire = vec![1u64, 2, 3, 4];
        let r = SimResult::from_retire_cycles(&retire, 10.0, vec![], vec![], SimStats::default());
        assert_eq!(r.stats.cycles, 4);
        assert_eq!(r.stats.instructions, 4);
        assert!((r.stats.ipc() - 1.0).abs() < 1e-12);
    }
}
