//! Ithemal-like baseline (Mendis et al., ICML'19).
//!
//! An LSTM that predicts the latency of a **basic block** (a handful of
//! instructions between branches) from the instruction sequence, trained
//! per microarchitecture. As the paper notes (Table III), this family
//! cannot scale past basic blocks — ML models cannot ingest billions of
//! tokens — so whole-program prediction means running the model per
//! block, and dynamic effects across blocks (caches!) are invisible.

use perfvec_ml::adam::Adam;
use perfvec_ml::parallel::BatchStep;
use perfvec_ml::seq::SeqModel;
use perfvec_trace::features::Matrix;
use perfvec_trace::NUM_FEATURES;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A dynamic basic block: a run of instructions ending at a taken-or-not
/// branch boundary.
#[derive(Debug, Clone)]
pub struct Block {
    /// First instruction index (inclusive).
    pub start: usize,
    /// Last instruction index (exclusive).
    pub end: usize,
}

/// Split a trace into dynamic basic blocks using the branch flag of the
/// feature matrix (feature 9 = is-branch), capped at `max_len`.
pub fn split_blocks(features: &Matrix, max_len: usize) -> Vec<Block> {
    let mut blocks = Vec::new();
    let mut start = 0usize;
    for i in 0..features.rows {
        let is_branch = features.row(i)[9] > 0.5;
        let len = i + 1 - start;
        if is_branch || len >= max_len {
            blocks.push(Block { start, end: i + 1 });
            start = i + 1;
        }
    }
    if start < features.rows {
        blocks.push(Block {
            start,
            end: features.rows,
        });
    }
    blocks
}

/// Per-microarchitecture basic-block latency model.
pub struct Ithemal {
    lstm: SeqModel,
    scale: f32,
    max_len: usize,
}

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct IthemalConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Max block length.
    pub max_len: usize,
    /// Epochs.
    pub epochs: u32,
    /// Batch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
    /// Batch-major gradient step: equal-length blocks of a lane chunk
    /// share one `forward_batch`/`backward_batch` pair (default). The
    /// scalar per-block step remains for ablation; both are
    /// deterministic, but grouping reorders the float accumulation, so
    /// compare runs only within one mode.
    pub batched: bool,
}

impl Default for IthemalConfig {
    fn default() -> IthemalConfig {
        IthemalConfig {
            hidden: 24,
            max_len: 16,
            epochs: 40,
            batch: 32,
            lr: 1e-2,
            seed: 0x17e,
            batched: true,
        }
    }
}

/// One lane chunk of basic blocks through the batch-major kernels:
/// blocks are grouped by (equal) length — a `forward_batch`
/// requirement — in stable first-appearance order, and each group runs
/// one `forward_batch_cached`/`backward_batch` pair. Each block's
/// forward/backward is bit-identical to its scalar pass; only the
/// accumulation order differs from the scalar step (group-major instead
/// of item-major), which is why Ithemal exposes the mode as a config
/// knob rather than claiming cross-mode bit-parity.
fn batched_block_pass(
    lstm: &SeqModel,
    features: &Matrix,
    blocks: &[Block],
    targets: &[f32],
    scale: f32,
    items: &[usize],
    grads: &mut [f32],
) -> f64 {
    let d = lstm.out_dim();
    let mut loss = 0.0f64;
    let mut lengths: Vec<usize> = Vec::new();
    for &b in items {
        let t = blocks[b].end - blocks[b].start;
        if !lengths.contains(&t) {
            lengths.push(t);
        }
    }
    let mut xs: Vec<f32> = Vec::new();
    let mut group: Vec<usize> = Vec::new();
    for &t in &lengths {
        group.clear();
        group.extend(
            items
                .iter()
                .copied()
                .filter(|&b| blocks[b].end - blocks[b].start == t),
        );
        let bn = group.len();
        xs.clear();
        for &b in &group {
            xs.extend_from_slice(
                &features.data[blocks[b].start * NUM_FEATURES..blocks[b].end * NUM_FEATURES],
            );
        }
        let (ys, cache) = lstm.forward_batch_cached(&xs, t, bn);
        let mut douts = vec![0.0f32; bn * d];
        for (li, &b) in group.iter().enumerate() {
            let pred: f32 = ys[li * d..(li + 1) * d].iter().sum();
            let err = pred - targets[b] / scale;
            loss += (err * err) as f64;
            douts[li * d..(li + 1) * d].fill(2.0 * err);
        }
        lstm.backward_batch(&xs, t, bn, &cache, &douts, grads);
    }
    loss
}

impl Ithemal {
    /// Train on one machine: block targets are the summed incremental
    /// latencies of the block's instructions.
    pub fn train(features: &Matrix, latencies: &[f32], cfg: &IthemalConfig) -> Ithemal {
        let blocks = split_blocks(features, cfg.max_len);
        let targets: Vec<f32> = blocks
            .iter()
            .map(|b| latencies[b.start..b.end].iter().sum::<f32>())
            .collect();
        let mean = (targets.iter().map(|t| t.abs() as f64).sum::<f64>()
            / targets.len().max(1) as f64) as f32;
        let scale = mean.max(1e-3);

        let mut lstm = SeqModel::lstm(NUM_FEATURES, cfg.hidden, 1, cfg.seed);
        // Readout: the sum over hidden units (each tanh-bounded), which
        // gives the head enough range without a separate linear layer.
        let mut opt = Adam::new(lstm.num_params());
        let mut order: Vec<usize> = (0..blocks.len()).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let step = BatchStep::new();
        // Scalar per-block pass, shared by the scalar mode and the
        // batched mode's singleton groups.
        let scalar_item = |b: usize, grads: &mut [f32], lstm: &SeqModel| -> f64 {
            let blk = &blocks[b];
            let t = blk.end - blk.start;
            let xs = &features.data[blk.start * NUM_FEATURES..blk.end * NUM_FEATURES];
            let (y, cache) = lstm.forward(xs, t);
            let pred: f32 = y.iter().sum();
            let err = pred - targets[b] / scale;
            let dout = vec![2.0 * err; y.len()];
            lstm.backward(xs, t, &cache, &dout, grads);
            (err * err) as f64
        };
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch) {
                let (_, grads) = if cfg.batched {
                    step.accumulate(chunk.len(), lstm.num_params(), |range, grads| {
                        batched_block_pass(
                            &lstm,
                            features,
                            &blocks,
                            &targets,
                            scale,
                            &chunk[range],
                            grads,
                        )
                    })
                } else {
                    step.accumulate_items(chunk.len(), lstm.num_params(), |i, grads| {
                        scalar_item(chunk[i], grads, &lstm)
                    })
                };
                let inv = 1.0 / chunk.len() as f32;
                let g: Vec<f32> = grads.iter().map(|v| v * inv).collect();
                let mut p = lstm.get_params();
                opt.step(&mut p, &g, cfg.lr);
                lstm.set_params(&p);
            }
        }
        Ithemal {
            lstm,
            scale,
            max_len: cfg.max_len,
        }
    }

    /// Predict one block's latency (0.1 ns).
    pub fn predict_block(&self, features: &Matrix, block: &Block) -> f64 {
        let t = block.end - block.start;
        let xs = &features.data[block.start * NUM_FEATURES..block.end * NUM_FEATURES];
        (self.lstm.forward(xs, t).0.iter().sum::<f32>() * self.scale) as f64
    }

    /// Whole-program prediction by summing per-block predictions — the
    /// block-at-a-time cost profile of Table III.
    pub fn predict_total_tenths(&self, features: &Matrix) -> f64 {
        split_blocks(features, self.max_len)
            .iter()
            .map(|b| self.predict_block(features, b))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfvec_sim::sample::predefined_configs;
    use perfvec_sim::simulate;
    use perfvec_trace::features::{extract_features, FeatureMask};
    use perfvec_workloads::by_name;

    #[test]
    fn blocks_partition_the_trace() {
        let trace = by_name("deepsjeng").unwrap().trace(3_000);
        let f = extract_features(&trace, FeatureMask::Full);
        let blocks = split_blocks(&f, 16);
        assert_eq!(
            blocks.iter().map(|b| b.end - b.start).sum::<usize>(),
            f.rows
        );
        assert!(blocks.windows(2).all(|w| w[0].end == w[1].start));
        assert!(blocks.iter().all(|b| b.end - b.start <= 16));
        // A branchy kernel has many short blocks.
        assert!(blocks.len() > f.rows / 16);
    }

    #[test]
    fn ithemal_fits_blocks_on_its_machine() {
        let trace = by_name("specrand").unwrap().trace(4_000);
        let cfg = &predefined_configs()[1];
        let sim = simulate(&trace, cfg);
        let f = extract_features(&trace, FeatureMask::Full);
        let model = Ithemal::train(&f, &sim.inc_latency_tenths, &IthemalConfig::default());
        let pred = model.predict_total_tenths(&f);
        let err = (pred - sim.total_tenths).abs() / sim.total_tenths;
        assert!(err < 0.30, "Ithemal-like total error {err:.3}");
    }

    #[test]
    fn scalar_step_fits_comparably_to_batched() {
        // Both step modes must train to a working model (the modes
        // reorder float accumulation across equal-length groups, so the
        // comparison is on prediction quality, not bits).
        let trace = by_name("specrand").unwrap().trace(3_000);
        let cfg = &predefined_configs()[1];
        let sim = simulate(&trace, cfg);
        let f = extract_features(&trace, FeatureMask::Full);
        let base = IthemalConfig {
            epochs: 20,
            ..IthemalConfig::default()
        };
        for batched in [true, false] {
            let model = Ithemal::train(
                &f,
                &sim.inc_latency_tenths,
                &IthemalConfig {
                    batched,
                    ..base.clone()
                },
            );
            let pred = model.predict_total_tenths(&f);
            let err = (pred - sim.total_tenths).abs() / sim.total_tenths;
            assert!(err < 0.35, "batched={batched}: total error {err:.3}");
        }
    }
}
