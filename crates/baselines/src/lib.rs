//! # perfvec-baselines
//!
//! The comparison systems of the paper's Tables III and IV, each
//! implemented at the same scale as the PerfVec reproduction:
//!
//! * [`simnet`] — per-instruction latency model on
//!   microarchitecture-*dependent* features (SimNet, SIGMETRICS'22);
//! * [`ithemal`] — per-machine basic-block LSTM (Ithemal, ICML'19);
//! * [`prog_specific`] — per-program MLP over configuration parameters
//!   (Ipek et al., ASPLOS'06);
//! * [`cross_program`] — cross-program linear predictor with program
//!   signatures and per-program calibration (Dubach et al., MICRO'07);
//! * [`actboost`] — AdaBoost.R2 + active sampling (Li et al., DAC'16).
//!
//! Together they realize the paper's central contrast: every baseline is
//! bound to a program and/or a microarchitecture, while PerfVec's
//! representations are reusable across both.

pub mod actboost;
pub mod cross_program;
pub mod ithemal;
pub mod prog_specific;
pub mod simnet;

pub use actboost::{ActBoost, ActBoostConfig};
pub use cross_program::{signature, CrossProgramModel};
pub use ithemal::{Ithemal, IthemalConfig};
pub use prog_specific::{ProgSpecificConfig, ProgSpecificModel};
pub use simnet::{simnet_features, SimNet, SimNetConfig};
