//! ActBoost-like baseline (Li et al., DAC'16).
//!
//! AdaBoost.R2 over small MLP weak learners with statistical/active
//! sampling of the design space: train on an initial sample, iteratively
//! add the configurations where the current ensemble is most uncertain
//! (largest disagreement among weak learners), retrain. Per-program like
//! the other predictive-DSE baselines.

use perfvec_ml::adam::Adam;
use perfvec_ml::mlp::Mlp;
use perfvec_sim::MicroArchConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One weak learner with its AdaBoost weight.
struct Weak {
    mlp: Mlp,
    beta_log: f64,
}

/// AdaBoost.R2 regression ensemble over configuration parameters.
pub struct ActBoost {
    weaks: Vec<Weak>,
    scale: f32,
}

/// Hyperparameters.
#[derive(Debug, Clone)]
pub struct ActBoostConfig {
    /// Number of boosting rounds.
    pub rounds: usize,
    /// Weak-learner hidden width.
    pub hidden: usize,
    /// Weak-learner epochs (full batch).
    pub epochs: u32,
    /// Weak-learner learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for ActBoostConfig {
    fn default() -> ActBoostConfig {
        ActBoostConfig {
            rounds: 6,
            hidden: 8,
            epochs: 300,
            lr: 1e-2,
            seed: 0xacb,
        }
    }
}

fn train_weak(
    xs: &[Vec<f32>],
    ys: &[f32],
    weights: &[f64],
    cfg: &ActBoostConfig,
    seed: u64,
) -> Mlp {
    let mut mlp = Mlp::new(&[xs[0].len(), cfg.hidden, 1], seed);
    let mut opt = Adam::new(mlp.params().len());
    let wsum: f64 = weights.iter().sum();
    for _ in 0..cfg.epochs {
        let mut grads = vec![0.0f32; mlp.params().len()];
        for ((x, &y), &w) in xs.iter().zip(ys).zip(weights) {
            let (out, cache) = mlp.forward(x);
            let err = out[0] - y;
            let g = 2.0 * err * (w / wsum) as f32;
            mlp.backward(x, &cache, &[g], &mut grads);
        }
        let mut p = mlp.params().to_vec();
        opt.step(&mut p, &grads, cfg.lr);
        mlp.params_mut().copy_from_slice(&p);
    }
    mlp
}

impl ActBoost {
    /// Train AdaBoost.R2 from `(config, total time)` samples.
    pub fn train(samples: &[(&MicroArchConfig, f64)], cfg: &ActBoostConfig) -> ActBoost {
        assert!(samples.len() >= 2);
        let xs: Vec<Vec<f32>> = samples.iter().map(|(c, _)| c.param_vector()).collect();
        let scale = (samples.iter().map(|(_, t)| t.abs()).sum::<f64>() / samples.len() as f64)
            .max(1e-9) as f32;
        let ys: Vec<f32> = samples.iter().map(|(_, t)| *t as f32 / scale).collect();
        let n = xs.len();
        let mut weights = vec![1.0f64 / n as f64; n];
        let mut weaks = Vec::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        for round in 0..cfg.rounds {
            let mlp = train_weak(&xs, &ys, &weights, cfg, cfg.seed ^ (round as u64 * 7919));
            // AdaBoost.R2 loss update.
            let errs: Vec<f64> = xs
                .iter()
                .zip(&ys)
                .map(|(x, &y)| (mlp.forward(x).0[0] - y).abs() as f64)
                .collect();
            let emax = errs.iter().cloned().fold(1e-12, f64::max);
            let losses: Vec<f64> = errs.iter().map(|e| e / emax).collect();
            let eps: f64 = weights.iter().zip(&losses).map(|(w, l)| w * l).sum::<f64>()
                / weights.iter().sum::<f64>();
            let eps = eps.clamp(1e-6, 0.499);
            let beta = eps / (1.0 - eps);
            for (w, l) in weights.iter_mut().zip(&losses) {
                *w *= beta.powf(1.0 - l);
            }
            // Renormalize with a floor to avoid degenerate collapse.
            let sum: f64 = weights.iter().sum();
            for w in &mut weights {
                *w = (*w / sum).max(1e-9);
            }
            weaks.push(Weak {
                mlp,
                beta_log: (1.0 / beta).ln(),
            });
            // Mild stochastic perturbation mirrors the statistical
            // sampling component.
            let _ = rng.gen::<u64>();
        }
        ActBoost { weaks, scale }
    }

    /// Weighted-median prediction (AdaBoost.R2 combination rule).
    pub fn predict(&self, config: &MicroArchConfig) -> f64 {
        let x = config.param_vector();
        let mut preds: Vec<(f64, f64)> = self
            .weaks
            .iter()
            .map(|w| ((w.mlp.forward(&x).0[0] * self.scale) as f64, w.beta_log))
            .collect();
        preds.sort_by(|a, b| a.0.total_cmp(&b.0));
        let half: f64 = preds.iter().map(|p| p.1).sum::<f64>() / 2.0;
        let mut acc = 0.0;
        for (v, w) in &preds {
            acc += w;
            if acc >= half {
                return *v;
            }
        }
        preds.last().map(|p| p.0).unwrap_or(0.0)
    }

    /// Ensemble disagreement at a configuration (active-learning
    /// acquisition score): the spread of weak-learner predictions.
    pub fn disagreement(&self, config: &MicroArchConfig) -> f64 {
        let x = config.param_vector();
        let preds: Vec<f64> = self
            .weaks
            .iter()
            .map(|w| (w.mlp.forward(&x).0[0] * self.scale) as f64)
            .collect();
        let lo = preds.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = preds.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    }
}

/// One active-learning DSE iteration: given the already-simulated set
/// and the remaining pool, pick the `batch` pool entries with the
/// highest ensemble disagreement.
pub fn select_active<'a>(
    model: &ActBoost,
    pool: &[&'a MicroArchConfig],
    batch: usize,
) -> Vec<&'a MicroArchConfig> {
    let mut scored: Vec<(f64, &MicroArchConfig)> =
        pool.iter().map(|c| (model.disagreement(c), *c)).collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
    scored.into_iter().take(batch).map(|(_, c)| c).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfvec_sim::sample::sample_configs;
    use perfvec_sim::simulate;
    use perfvec_workloads::by_name;

    #[test]
    fn boosting_fits_its_training_set() {
        let trace = by_name("specrand").unwrap().trace(2_500);
        let configs = sample_configs(21, 10, 2);
        let samples: Vec<(&MicroArchConfig, f64)> = configs
            .iter()
            .map(|c| (c, simulate(&trace, c).total_tenths))
            .collect();
        let model = ActBoost::train(&samples, &ActBoostConfig::default());
        let err: f64 = samples
            .iter()
            .map(|(c, t)| (model.predict(c) - t).abs() / t)
            .sum::<f64>()
            / samples.len() as f64;
        assert!(err < 0.35, "ActBoost train error {err:.3}");
    }

    #[test]
    fn active_selection_returns_requested_count() {
        let trace = by_name("specrand").unwrap().trace(1_500);
        let configs = sample_configs(22, 8, 0);
        let samples: Vec<(&MicroArchConfig, f64)> = configs
            .iter()
            .take(4)
            .map(|c| (c, simulate(&trace, c).total_tenths))
            .collect();
        let model = ActBoost::train(
            &samples,
            &ActBoostConfig {
                rounds: 3,
                ..Default::default()
            },
        );
        let pool: Vec<&MicroArchConfig> = configs[4..].iter().collect();
        let picked = select_active(&model, &pool, 2);
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn weighted_median_is_robust_to_one_bad_weak() {
        // With several weaks, a single diverging one cannot dominate the
        // weighted median; sanity-check predictions stay finite/positive.
        let trace = by_name("xz").unwrap().trace(1_500);
        let configs = sample_configs(23, 6, 1);
        let samples: Vec<(&MicroArchConfig, f64)> = configs
            .iter()
            .map(|c| (c, simulate(&trace, c).total_tenths))
            .collect();
        let model = ActBoost::train(&samples, &ActBoostConfig::default());
        for (c, _) in &samples {
            let p = model.predict(c);
            assert!(p.is_finite() && p > 0.0);
        }
    }
}
