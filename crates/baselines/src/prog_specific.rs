//! Program-specific predictive models (Ipek et al., ASPLOS'06 flavour).
//!
//! One MLP **per program**: microarchitecture configuration parameters
//! in, total execution time out. Accurate after enough training
//! simulations of *that* program, but — the generality failure the paper
//! targets — a new program means a new model and a new simulation
//! campaign.

use perfvec_ml::adam::Adam;
use perfvec_ml::mlp::Mlp;
use perfvec_sim::MicroArchConfig;

/// A per-program configuration-to-time model.
pub struct ProgSpecificModel {
    mlp: Mlp,
    scale: f32,
}

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct ProgSpecificConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Epochs (full-batch; sample counts are tiny).
    pub epochs: u32,
    /// Learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for ProgSpecificConfig {
    fn default() -> ProgSpecificConfig {
        ProgSpecificConfig {
            hidden: 16,
            epochs: 600,
            lr: 5e-3,
            seed: 0x9513,
        }
    }
}

impl ProgSpecificModel {
    /// Train from `(configuration, total time)` pairs obtained by
    /// simulating the target program.
    pub fn train(
        samples: &[(&MicroArchConfig, f64)],
        cfg: &ProgSpecificConfig,
    ) -> ProgSpecificModel {
        assert!(!samples.is_empty());
        let xs: Vec<Vec<f32>> = samples.iter().map(|(c, _)| c.param_vector()).collect();
        let scale = (samples.iter().map(|(_, t)| t.abs()).sum::<f64>() / samples.len() as f64)
            .max(1e-9) as f32;
        let ys: Vec<f32> = samples.iter().map(|(_, t)| *t as f32 / scale).collect();
        let mut mlp = Mlp::new(&[xs[0].len(), cfg.hidden, 1], cfg.seed);
        let mut opt = Adam::new(mlp.params().len());
        for _ in 0..cfg.epochs {
            let mut grads = vec![0.0f32; mlp.params().len()];
            for (x, &y) in xs.iter().zip(&ys) {
                let (out, cache) = mlp.forward(x);
                let err = out[0] - y;
                mlp.backward(x, &cache, &[2.0 * err / xs.len() as f32], &mut grads);
            }
            let mut p = mlp.params().to_vec();
            opt.step(&mut p, &grads, cfg.lr);
            mlp.params_mut().copy_from_slice(&p);
        }
        ProgSpecificModel { mlp, scale }
    }

    /// Predict the program's total time (0.1 ns) on a configuration.
    pub fn predict(&self, config: &MicroArchConfig) -> f64 {
        (self.mlp.forward(&config.param_vector()).0[0] * self.scale) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfvec_sim::sample::sample_configs;
    use perfvec_sim::simulate;
    use perfvec_workloads::by_name;

    #[test]
    fn interpolates_between_training_configs() {
        let trace = by_name("specrand").unwrap().trace(3_000);
        let configs = sample_configs(11, 14, 2);
        let times: Vec<f64> = configs
            .iter()
            .map(|c| simulate(&trace, c).total_tenths)
            .collect();
        // Train on 12, hold out 4.
        let train: Vec<(&MicroArchConfig, f64)> = configs
            .iter()
            .take(12)
            .zip(times.iter().take(12))
            .map(|(c, &t)| (c, t))
            .collect();
        let model = ProgSpecificModel::train(&train, &ProgSpecificConfig::default());
        // Training configs must fit well.
        let train_err: f64 = train
            .iter()
            .map(|(c, t)| (model.predict(c) - t).abs() / t)
            .sum::<f64>()
            / train.len() as f64;
        assert!(train_err < 0.15, "train error {train_err:.3}");
        // Held-out error is finite and bounded (generalizes somewhat
        // within the sampled family).
        let ho_err: f64 = configs[12..]
            .iter()
            .zip(&times[12..])
            .map(|(c, &t)| (model.predict(c) - t).abs() / t)
            .sum::<f64>()
            / 4.0;
        assert!(ho_err < 1.0, "held-out error {ho_err:.3}");
    }
}
