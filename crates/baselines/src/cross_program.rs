//! Cross-program linear predictor (Dubach et al., MICRO'07 flavour).
//!
//! A single linear model over microarchitecture parameters plus a cheap
//! program *signature* (instruction-class mix), trained on a corpus of
//! (program, configuration, time) observations. Transfers to a new
//! program with only a handful of calibration simulations — cheaper than
//! program-specific models, but the linear form and coarse signature cap
//! its accuracy, and it still needs target-program runs (Table III/IV).

use perfvec_isa::Trace;
use perfvec_ml::linalg::ridge_solve;
use perfvec_sim::MicroArchConfig;

/// Program signature: executed-instruction class fractions.
pub fn signature(trace: &Trace) -> Vec<f32> {
    let mix = trace.class_mix();
    let total = trace.len().max(1) as f32;
    mix.iter().map(|&c| c as f32 / total).collect()
}

/// Feature vector for one (signature, configuration) pair: the two
/// blocks plus their outer-product interactions with the clock-relevant
/// leading parameters (keeps the model linear but lets program mix
/// modulate machine sensitivity).
fn features(sig: &[f32], config: &MicroArchConfig) -> Vec<f64> {
    let arch = config.param_vector();
    let mut f: Vec<f64> = Vec::with_capacity(1 + sig.len() + arch.len() + sig.len() * 4);
    f.push(1.0);
    f.extend(sig.iter().map(|&v| v as f64));
    f.extend(arch.iter().map(|&v| v as f64));
    // interactions with core kind, frequency, widths
    for &a in arch.iter().take(4) {
        for &s in sig {
            f.push((a * s) as f64);
        }
    }
    f
}

/// The fitted cross-program model (linear in [`features`], predicting
/// log-time for positivity).
pub struct CrossProgramModel {
    w: Vec<f64>,
    n_features: usize,
}

impl CrossProgramModel {
    /// Fit on a corpus of `(signature, config, total time)` samples.
    pub fn train(samples: &[(Vec<f32>, &MicroArchConfig, f64)]) -> CrossProgramModel {
        assert!(!samples.is_empty());
        let n = features(&samples[0].0, samples[0].1).len();
        let mut xtx = vec![0.0f64; n * n];
        let mut xty = vec![0.0f64; n];
        for (sig, cfg, t) in samples {
            let x = features(sig, cfg);
            let y = t.max(1.0).ln();
            for i in 0..n {
                for j in 0..n {
                    xtx[i * n + j] += x[i] * x[j];
                }
                xty[i] += x[i] * y;
            }
        }
        let w = ridge_solve(&xtx, &xty, n, 1e-4 * samples.len() as f64)
            .expect("ridge system is positive definite");
        CrossProgramModel { w, n_features: n }
    }

    /// Predict total time (0.1 ns) for a program signature on a
    /// configuration.
    pub fn predict(&self, sig: &[f32], config: &MicroArchConfig) -> f64 {
        let x = features(sig, config);
        debug_assert_eq!(x.len(), self.n_features);
        let log_t: f64 = x.iter().zip(&self.w).map(|(a, b)| a * b).sum();
        log_t.clamp(-20.0, 60.0).exp()
    }

    /// Calibrate to a new program: rescale by the geometric-mean ratio
    /// over a few observed (config, time) pairs.
    pub fn calibration(&self, sig: &[f32], observed: &[(&MicroArchConfig, f64)]) -> f64 {
        if observed.is_empty() {
            return 1.0;
        }
        let log_ratio: f64 = observed
            .iter()
            .map(|(c, t)| (t.max(1.0) / self.predict(sig, c).max(1e-9)).ln())
            .sum::<f64>()
            / observed.len() as f64;
        log_ratio.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfvec_sim::sample::sample_configs;
    use perfvec_sim::simulate;
    use perfvec_workloads::{by_name, training_suite};

    #[test]
    fn signature_sums_to_one() {
        let t = by_name("xz").unwrap().trace(2_000);
        let s = signature(&t);
        assert_eq!(s.len(), perfvec_isa::OpClass::COUNT);
        let sum: f32 = s.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn transfers_across_programs_with_calibration() {
        let configs = sample_configs(3, 10, 2);
        // Corpus: three training programs on all configs.
        let mut corpus = Vec::new();
        for w in training_suite().iter().take(3) {
            let trace = w.trace(2_500);
            let sig = signature(&trace);
            for c in &configs {
                corpus.push((sig.clone(), c, simulate(&trace, c).total_tenths));
            }
        }
        let model = CrossProgramModel::train(&corpus);

        // New program: calibrate on 3 configs, evaluate on the rest.
        let target = by_name("perlbench").unwrap().trace(2_500);
        let sig = signature(&target);
        let times: Vec<f64> = configs
            .iter()
            .map(|c| simulate(&target, c).total_tenths)
            .collect();
        let obs: Vec<(&MicroArchConfig, f64)> = configs
            .iter()
            .take(3)
            .zip(times.iter().take(3))
            .map(|(c, &t)| (c, t))
            .collect();
        let k = model.calibration(&sig, &obs);
        let err: f64 = configs[3..]
            .iter()
            .zip(&times[3..])
            .map(|(c, &t)| ((model.predict(&sig, c) * k) - t).abs() / t)
            .sum::<f64>()
            / (configs.len() - 3) as f64;
        assert!(err < 0.8, "cross-program transfer error {err:.3}");
    }
}
