//! SimNet-like baseline (Li et al., SIGMETRICS'22).
//!
//! SimNet predicts each instruction's latency from
//! **microarchitecture-dependent** features (cache hit level, branch
//! misprediction) plus instruction context, then "simulates" the program
//! by predicting every instruction in order. Two consequences the paper
//! contrasts with PerfVec (Table III):
//!
//! * a model is bound to one microarchitecture — the inputs themselves
//!   (hit levels, mispredicts) change with the machine;
//! * prediction cost is linear in trace length (per-instruction model
//!   evaluation), vs PerfVec's single dot product from reusable
//!   representations.

use perfvec_ml::adam::Adam;
use perfvec_ml::mlp::Mlp;
use perfvec_ml::parallel::BatchStep;
use perfvec_sim::SimResult;
use perfvec_trace::features::Matrix;
use perfvec_trace::NUM_FEATURES;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Microarchitecture-dependent per-instruction feature width:
/// 51 base features + hit-level one-hot (4) + mispredict flag.
pub const SIMNET_FEATURES: usize = NUM_FEATURES + 5;

/// Build SimNet's input matrix for one (trace, machine) pair.
pub fn simnet_features(base: &Matrix, sim: &SimResult) -> Matrix {
    let n = base.rows;
    let mut m = Matrix::zeros(n, SIMNET_FEATURES);
    for i in 0..n {
        let row = m.row_mut(i);
        row[..NUM_FEATURES].copy_from_slice(base.row(i));
        let lvl = sim.mem_level[i];
        row[NUM_FEATURES + lvl as usize] = 1.0;
        row[NUM_FEATURES + 4] = sim.mispredicted[i] as u8 as f32;
    }
    m
}

/// A per-microarchitecture SimNet model.
pub struct SimNet {
    mlp: Mlp,
    /// Target normalization scale (mean |latency|).
    scale: f32,
}

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct SimNetConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Epochs.
    pub epochs: u32,
    /// Batch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
}

impl Default for SimNetConfig {
    fn default() -> SimNetConfig {
        SimNetConfig {
            hidden: 32,
            epochs: 12,
            batch: 64,
            lr: 3e-3,
            seed: 0x51e7,
        }
    }
}

impl SimNet {
    /// Train on one machine's data: `features` from [`simnet_features`],
    /// targets are that machine's incremental latencies (0.1 ns).
    pub fn train(features: &Matrix, latencies: &[f32], cfg: &SimNetConfig) -> SimNet {
        assert_eq!(features.rows, latencies.len());
        let mean = (latencies.iter().map(|&t| t.abs() as f64).sum::<f64>()
            / latencies.len().max(1) as f64) as f32;
        let scale = mean.max(1e-3);
        let mut mlp = Mlp::new(&[SIMNET_FEATURES, cfg.hidden, 1], cfg.seed);
        let mut opt = Adam::new(mlp.params().len());
        let mut order: Vec<usize> = (0..features.rows).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // The shared deterministic lane-chunked step (the MLP has no
        // batch-major kernels, so every lane runs the scalar pass; the
        // chunk tree still makes runs bit-reproducible on any core
        // count).
        let step = BatchStep::new();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch) {
                let (_, grads) =
                    step.accumulate_items(chunk.len(), mlp.params().len(), |b, grads| {
                        let i = chunk[b];
                        let (y, cache) = mlp.forward(features.row(i));
                        let err = y[0] - latencies[i] / scale;
                        mlp.backward(features.row(i), &cache, &[2.0 * err], grads);
                        (err * err) as f64
                    });
                let inv = 1.0 / chunk.len() as f32;
                let g: Vec<f32> = grads.iter().map(|v| v * inv).collect();
                let mut p = mlp.params().to_vec();
                opt.step(&mut p, &g, cfg.lr);
                mlp.params_mut().copy_from_slice(&p);
            }
        }
        SimNet { mlp, scale }
    }

    /// Predict one instruction's incremental latency (0.1 ns).
    pub fn predict_one(&self, row: &[f32]) -> f64 {
        (self.mlp.forward(row).0[0] * self.scale) as f64
    }

    /// "Simulate" the program: predict every instruction in order and
    /// sum — the per-instruction cost the paper contrasts with PerfVec.
    pub fn predict_total_tenths(&self, features: &Matrix) -> f64 {
        (0..features.rows)
            .map(|i| self.predict_one(features.row(i)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfvec_sim::sample::predefined_configs;
    use perfvec_sim::{simulate, HitLevel};
    use perfvec_trace::features::{extract_features, FeatureMask};
    use perfvec_workloads::by_name;

    #[test]
    fn simnet_fits_one_machine_reasonably() {
        let trace = by_name("specrand").unwrap().trace(4_000);
        let cfg = &predefined_configs()[1];
        let sim = simulate(&trace, cfg);
        let base = extract_features(&trace, FeatureMask::Full);
        let feats = simnet_features(&base, &sim);
        let model = SimNet::train(&feats, &sim.inc_latency_tenths, &SimNetConfig::default());
        let pred = model.predict_total_tenths(&feats);
        let truth = sim.total_tenths;
        let err = (pred - truth).abs() / truth;
        assert!(err < 0.25, "SimNet total error {err:.3} on its own machine");
    }

    #[test]
    fn features_include_hit_levels() {
        let trace = by_name("mcf").unwrap().trace(3_000);
        let cfg = &predefined_configs()[2];
        let sim = simulate(&trace, cfg);
        let base = extract_features(&trace, FeatureMask::Full);
        let feats = simnet_features(&base, &sim);
        assert_eq!(feats.cols, SIMNET_FEATURES);
        // Pointer chasing on a small cache must mark some memory-level hits.
        let mem_hits: f32 = (0..feats.rows)
            .map(|i| feats.row(i)[NUM_FEATURES + HitLevel::Mem as usize])
            .sum();
        assert!(mem_hits > 0.0, "expected memory-level accesses in mcf");
    }

    #[test]
    fn simnet_inputs_change_across_machines() {
        // The microarchitecture-dependence the paper criticizes: the same
        // trace yields different SimNet inputs on different machines.
        let trace = by_name("mcf").unwrap().trace(3_000);
        let base = extract_features(&trace, FeatureMask::Full);
        let cfgs = predefined_configs();
        let a = simnet_features(&base, &simulate(&trace, &cfgs[0]));
        let b = simnet_features(&base, &simulate(&trace, &cfgs[6]));
        assert_ne!(a.data, b.data);
    }
}
