//! Criterion: timing-simulator throughput (instructions/second) for the
//! out-of-order and in-order core models — the substrate cost every
//! experiment pays per (program, machine) pair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use perfvec_sim::sample::predefined_configs;
use perfvec_sim::simulate;
use perfvec_workloads::by_name;

fn bench_simulator(c: &mut Criterion) {
    let trace = by_name("xz").unwrap().trace(10_000);
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(10);
    for name in ["o3-big", "o3-little", "cortex-a7-like", "scalar-simple"] {
        let cfg = predefined_configs()
            .into_iter()
            .find(|c| c.name == name)
            .unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| simulate(&trace, cfg))
        });
    }
    g.finish();
}

fn bench_workload_mix(c: &mut Criterion) {
    let cfg = predefined_configs().remove(1);
    let mut g = c.benchmark_group("simulator_by_workload");
    g.sample_size(10);
    for name in ["specrand", "mcf", "lbm"] {
        let trace = by_name(name).unwrap().trace(10_000);
        g.throughput(Throughput::Elements(trace.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), &trace, |b, t| {
            b.iter(|| simulate(t, &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulator, bench_workload_mix);
criterion_main!(benches);
