//! Criterion: end-to-end building blocks of the figure harnesses —
//! dataset generation for one (program, machine-population) pair, and
//! the DSE inner loop (grid sweep by dot products vs one simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use perfvec::data::build_program_data;
use perfvec::dse::{cache_param_vector, with_cache_sizes, CacheGrid};
use perfvec_sim::sample::predefined_configs;
use perfvec_sim::simulate;
use perfvec_trace::features::FeatureMask;
use perfvec_workloads::by_name;

fn bench_dataset_generation(c: &mut Criterion) {
    let trace = by_name("specrand").unwrap().trace(5_000);
    let configs = predefined_configs();
    let mut g = c.benchmark_group("dataset");
    g.sample_size(10);
    g.bench_function("one_program_7_machines", |b| {
        b.iter(|| build_program_data("s", &trace, &configs, FeatureMask::Full))
    });
    g.finish();
}

fn bench_dse_loop(c: &mut Criterion) {
    let base = predefined_configs()
        .into_iter()
        .find(|c| c.name == "cortex-a7-like")
        .unwrap();
    let grid = CacheGrid::default();
    let trace = by_name("specrand").unwrap().trace(5_000);
    let mut g = c.benchmark_group("dse");
    g.sample_size(10);
    // Ground-truth path: one simulation per grid point.
    g.bench_function("simulate_one_grid_point", |b| {
        let cfg = with_cache_sizes(&base, 32, 1024);
        b.iter(|| simulate(&trace, &cfg))
    });
    // PerfVec path: predict the whole 36-point grid with dot products.
    g.bench_function("predict_full_grid_dots", |b| {
        let rp = [0.3f32; 32];
        let m = vec![0.2f32; 32];
        b.iter(|| {
            grid.points()
                .iter()
                .map(|&(l1, l2)| {
                    let p = cache_param_vector(l1, l2);
                    let s: f32 = rp.iter().zip(&m).map(|(a, b)| a * b).sum();
                    s as f64 * (p[0] + p[1]) as f64
                })
                .sum::<f64>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dataset_generation, bench_dse_loop);
criterion_main!(benches);
