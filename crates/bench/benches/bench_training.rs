//! Criterion: the training-cost claims in microbenchmark form.
//!
//! (a) Section IV-B: a training step with instruction-representation
//! **reuse** has near-constant cost in the number of sampled
//! microarchitectures, while the naive procedure is linear in it (both
//! measured on the scalar step, which is the only form the naive
//! procedure has).
//!
//! (b) The batch-major refactor: at fixed `k`, the batched gradient
//! step (`forward_batch`/`backward_batch` per lane chunk) beats the
//! scalar per-window step at the same seed and batch size — for the
//! paper's LSTM and for the ablation zoo's attention (Transformer) and
//! bidirectional (biLSTM) architectures, which share the same
//! lane-blocked batch-major kernel substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perfvec::data::build_program_data;
use perfvec::foundation::{ArchKind, ArchSpec};
use perfvec::trainer::{train_foundation, TrainConfig};
use perfvec_ml::schedule::StepDecay;
use perfvec_sim::sample::training_population;
use perfvec_trace::features::FeatureMask;
use perfvec_workloads::by_name;

fn bench_cfg(reuse: bool, batched: bool) -> TrainConfig {
    arch_cfg(ArchSpec::default_lstm(16), reuse, batched)
}

fn arch_cfg(arch: ArchSpec, reuse: bool, batched: bool) -> TrainConfig {
    TrainConfig {
        arch,
        context: 8,
        epochs: 1,
        batch_size: 32,
        windows_per_epoch: 64,
        val_windows: 0,
        schedule: StepDecay::paper_default(),
        reuse,
        batched,
        ..TrainConfig::default()
    }
}

fn bench_reuse_vs_naive(c: &mut Criterion) {
    let configs = training_population(7);
    let data = [build_program_data(
        "xz",
        &by_name("xz").unwrap().trace(3_000),
        &configs,
        FeatureMask::Full,
    )];
    let mut g = c.benchmark_group("train_epoch");
    g.sample_size(10);
    for k in [5usize, 20] {
        let keep: Vec<usize> = (0..k).collect();
        let subset = vec![data[0].with_march_subset(&keep)];
        for reuse in [true, false] {
            // Scalar step in both arms: the naive procedure has no
            // batched form, and the comparison isolates reuse.
            let cfg = bench_cfg(reuse, false);
            let label = format!("k={k}/{}", if reuse { "reuse" } else { "naive" });
            g.bench_with_input(BenchmarkId::from_parameter(label), &subset, |b, subset| {
                b.iter(|| train_foundation(subset, &cfg))
            });
        }
    }
    g.finish();
}

fn bench_batched_vs_scalar_step(c: &mut Criterion) {
    let configs = training_population(7);
    let data = vec![build_program_data(
        "xz",
        &by_name("xz").unwrap().trace(3_000),
        &configs,
        FeatureMask::Full,
    )];
    let mut g = c.benchmark_group("train_step");
    g.sample_size(10);
    for batched in [false, true] {
        let cfg = bench_cfg(true, batched);
        let label = if batched { "batched" } else { "scalar" };
        g.bench_with_input(BenchmarkId::from_parameter(label), &data, |b, data| {
            b.iter(|| train_foundation(data, &cfg))
        });
    }
    g.finish();
}

/// Batched vs scalar training step for the model-zoo architectures
/// whose batch-major paths go beyond the recurrent cell: the
/// Transformer (attention, layer norm, FFN) and the biLSTM (dual
/// direction stacks over a shared reversed window block).
fn bench_batched_vs_scalar_zoo(c: &mut Criterion) {
    let configs = training_population(7);
    let data = vec![build_program_data(
        "xz",
        &by_name("xz").unwrap().trace(3_000),
        &configs,
        FeatureMask::Full,
    )];
    for (name, kind) in [
        ("transformer", ArchKind::Transformer),
        ("bilstm", ArchKind::BiLstm),
    ] {
        let mut g = c.benchmark_group(format!("train_step_{name}"));
        g.sample_size(10);
        let arch = ArchSpec {
            kind,
            layers: 2,
            dim: 16,
        };
        for batched in [false, true] {
            let cfg = arch_cfg(arch, true, batched);
            let label = if batched { "batched" } else { "scalar" };
            g.bench_with_input(BenchmarkId::from_parameter(label), &data, |b, data| {
                b.iter(|| train_foundation(data, &cfg))
            });
        }
        g.finish();
    }
}

criterion_group!(
    benches,
    bench_reuse_vs_naive,
    bench_batched_vs_scalar_step,
    bench_batched_vs_scalar_zoo
);
criterion_main!(benches);
