//! Criterion: microarchitecture-independent feature extraction
//! throughput (Table I pipeline: stack distances, branch entropies,
//! operand encoding).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use perfvec_trace::features::{extract_features, FeatureMask};
use perfvec_trace::stack_distance::StackDistance;
use perfvec_workloads::by_name;

fn bench_extraction(c: &mut Criterion) {
    let trace = by_name("xz").unwrap().trace(10_000);
    let mut g = c.benchmark_group("features");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(10);
    g.bench_function("extract_51_features", |b| {
        b.iter(|| extract_features(&trace, FeatureMask::Full))
    });
    g.finish();
}

fn bench_stack_distance(c: &mut Criterion) {
    // A mixed-locality address stream.
    let addrs: Vec<u64> = (0..10_000u64).map(|i| (i * 2654435761) % 4096).collect();
    let mut g = c.benchmark_group("stack_distance");
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.sample_size(10);
    g.bench_function("fenwick_online", |b| {
        b.iter(|| {
            let mut sd = StackDistance::with_capacity(addrs.len());
            let mut acc = 0u64;
            for &a in &addrs {
                let d = sd.access(a);
                if d != u64::MAX {
                    acc = acc.wrapping_add(d);
                }
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_extraction, bench_stack_distance);
criterion_main!(benches);
