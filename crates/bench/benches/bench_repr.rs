//! Criterion: program-representation generation (the one-time PerfVec
//! cost per program) — windowed exact mode vs the streaming LSTM fast
//! path — and the per-prediction dot product that follows.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use perfvec::compose::{program_representation, program_representation_streaming};
use perfvec::foundation::{ArchSpec, Foundation};
use perfvec::predict::predict_total_tenths;
use perfvec_trace::features::{extract_features, FeatureMask};
use perfvec_workloads::by_name;

fn bench_representation(c: &mut Criterion) {
    let trace = by_name("xz").unwrap().trace(5_000);
    let feats = extract_features(&trace, FeatureMask::Full);
    let f = Foundation::new(ArchSpec::default_lstm(32), 12, 1.0, 7);
    let mut g = c.benchmark_group("representation");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(10);
    g.bench_function("windowed (c=12)", |b| {
        b.iter(|| program_representation(&f, &feats))
    });
    g.bench_function("streaming", |b| {
        b.iter(|| program_representation_streaming(&f, &feats, 4_096, 64).unwrap())
    });
    g.finish();
}

fn bench_prediction(c: &mut Criterion) {
    // After representations exist, a prediction is just a dot product —
    // the "instant" entry of Table III.
    let rp = vec![0.5f32; 32];
    let m = vec![0.25f32; 32];
    let mut g = c.benchmark_group("prediction");
    g.bench_function("dot_product_d32", |b| {
        b.iter(|| predict_total_tenths(&rp, &m, 1.0))
    });
    g.finish();
}

criterion_group!(benches, bench_representation, bench_prediction);
criterion_main!(benches);
