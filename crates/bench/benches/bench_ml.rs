//! Criterion: sequence-model forward/backward step cost for the
//! Figure 6 architecture families at the reproduction's default size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perfvec_ml::seq::SeqModel;
use perfvec_trace::NUM_FEATURES;

fn bench_forward(c: &mut Criterion) {
    let (d, w) = (32usize, 13usize);
    let xs = vec![0.1f32; w * NUM_FEATURES];
    let models = vec![
        SeqModel::linear(NUM_FEATURES, d, w, 1),
        SeqModel::mlp(NUM_FEATURES, d, w, 2),
        SeqModel::gru(NUM_FEATURES, d, 2, 3),
        SeqModel::lstm(NUM_FEATURES, d, 2, 4),
        SeqModel::transformer(NUM_FEATURES, d, 2, 5),
    ];
    let mut g = c.benchmark_group("seq_forward");
    g.sample_size(20);
    for m in &models {
        g.bench_with_input(BenchmarkId::from_parameter(m.describe()), m, |b, m| {
            b.iter(|| m.forward(&xs, w))
        });
    }
    g.finish();
}

fn bench_forward_backward(c: &mut Criterion) {
    let (d, w) = (32usize, 13usize);
    let xs = vec![0.1f32; w * NUM_FEATURES];
    let m = SeqModel::lstm(NUM_FEATURES, d, 2, 4);
    let dout = vec![1.0f32; d];
    let mut g = c.benchmark_group("seq_train_step");
    g.sample_size(20);
    g.bench_function("LSTM-2-32 fwd+bwd", |b| {
        b.iter(|| {
            let (_, cache) = m.forward(&xs, w);
            let mut grads = vec![0.0f32; m.num_params()];
            m.backward(&xs, w, &cache, &dout, &mut grads);
            grads
        })
    });
    g.finish();
}

criterion_group!(benches, bench_forward, bench_forward_backward);
criterion_main!(benches);
