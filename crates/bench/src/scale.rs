//! Experiment scales.
//!
//! The paper trains an LSTM-2-256 with a 255-instruction context on
//! 737 M instructions for 50 epochs on 8xA100. `Quick` reproduces every
//! protocol at single-core laptop scale; `Full` pushes sizes up for
//! longer runs (still CPU-feasible).

use perfvec::foundation::ArchSpec;
use perfvec::trainer::TrainConfig;
use perfvec_ml::schedule::StepDecay;

/// True when `name` appears verbatim among the process arguments.
///
/// Shared parser for the harness-wide boolean flags every figure/table
/// binary accepts (`--no-cache`; `--scale` takes a value and is parsed
/// by [`Scale::from_args`]).
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// The value of `--name V` or `--name=V` among the process arguments,
/// if present.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == name) {
        return args.get(i + 1).cloned();
    }
    let eq = format!("{name}=");
    args.iter()
        .find_map(|a| a.strip_prefix(&eq).map(str::to_string))
}

/// Parse the value of `--name V` (or `--name=V`), defaulting only when
/// the flag is entirely absent.
///
/// A flag that is *present* but unparseable — or present with its
/// value missing — aborts with exit code 2 instead of silently falling
/// back: harness flags gate regressions (`--assert-speedup`), and a
/// typo that quietly disabled a gate would let exactly the regression
/// it guards against land with CI green.
pub fn arg_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    let eq = format!("{name}=");
    let present = std::env::args().any(|a| a == name || a.starts_with(&eq));
    if !present {
        return default;
    }
    match arg_value(name) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad value {v:?} for {name}");
            std::process::exit(2);
        }),
        None => {
            eprintln!("missing value for {name}");
            std::process::exit(2);
        }
    }
}

/// Experiment scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale runs (default; what `EXPERIMENTS.md` records).
    Quick,
    /// `Quick`'s protocol with machine-adaptive dataset sharding: cold
    /// grid generation is sized from detected RAM and cores (see
    /// [`crate::shard::ShardPlan`]). Scale never changes *what* is
    /// computed — outputs are byte-identical to `Quick` — only how
    /// generation is scheduled.
    Auto,
    /// Larger traces, wider models, more epochs.
    Full,
}

impl Scale {
    /// Parse from process args (`--scale quick|full|auto`), default
    /// `Quick`.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for i in 0..args.len() {
            if args[i] == "--scale" {
                if let Some(v) = args.get(i + 1) {
                    return match v.as_str() {
                        "full" => Scale::Full,
                        "auto" => Scale::Auto,
                        _ => Scale::Quick,
                    };
                }
            }
        }
        Scale::Quick
    }

    /// Dynamic instructions collected per workload trace.
    pub fn trace_len(&self) -> u64 {
        match self {
            Scale::Quick | Scale::Auto => 20_000,
            Scale::Full => 60_000,
        }
    }

    /// Training configuration for the foundation model.
    pub fn train_config(&self) -> TrainConfig {
        match self {
            Scale::Quick | Scale::Auto => TrainConfig {
                arch: ArchSpec::default_lstm(32),
                context: 12,
                epochs: 26,
                batch_size: 32,
                windows_per_epoch: 6_000,
                val_windows: 2_000,
                schedule: StepDecay {
                    initial: 5e-3,
                    gamma: 0.3,
                    every: 9,
                },
                ..TrainConfig::default()
            },
            Scale::Full => TrainConfig {
                arch: ArchSpec::default_lstm(64),
                context: 24,
                epochs: 30,
                batch_size: 32,
                windows_per_epoch: 12_000,
                val_windows: 4_000,
                schedule: StepDecay {
                    initial: 3e-3,
                    gamma: 0.3,
                    every: 10,
                },
                ..TrainConfig::default()
            },
        }
    }

    /// Seed for microarchitecture sampling (kept constant so quick and
    /// full runs see the same 77 machines, and so served checkpoints
    /// line up with the serve stack's default population).
    pub fn march_seed(&self) -> u64 {
        perfvec_sim::sample::DEFAULT_MARCH_SEED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full() {
        assert!(Scale::Quick.trace_len() < Scale::Full.trace_len());
        let q = Scale::Quick.train_config();
        let f = Scale::Full.train_config();
        assert!(q.arch.dim <= f.arch.dim);
        assert!(q.epochs <= f.epochs);
    }

    #[test]
    fn auto_matches_quick_protocol_exactly() {
        // `auto` is a scheduling choice, never a protocol change: any
        // divergence here would silently invalidate cached datasets and
        // recorded experiment numbers.
        assert_eq!(Scale::Auto.trace_len(), Scale::Quick.trace_len());
        assert_eq!(Scale::Auto.march_seed(), Scale::Quick.march_seed());
        let a = Scale::Auto.train_config();
        let q = Scale::Quick.train_config();
        assert_eq!(a.arch.dim, q.arch.dim);
        assert_eq!(a.context, q.context);
        assert_eq!(a.epochs, q.epochs);
        assert_eq!(a.windows_per_epoch, q.windows_per_epoch);
    }
}
